(* Timed net backends in the verified explorer.

   Covers the Backend abstraction (link wire times, tick quantisation),
   the relative-deadline state encoding, the transfer-completion wait
   leg, the differential soundness harness (brute-force vs dedup vs
   parallel on the timed scenarios), and the persistent-memo net-key
   regression. Everything here is deterministic; the randomized
   property tests draw from a fixed-seed Uldma_util.Rng. *)

open Uldma_util
module Link = Uldma_net.Link
module Backend = Uldma_net.Backend
module Kernel = Uldma_os.Kernel
module Explorer = Uldma_verify.Explorer
module Oracle = Uldma_verify.Oracle
module Scenario = Uldma_workload.Scenario

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let atm155 = Backend.linked Link.atm155

(* ------------------------------------------------------------------ *)
(* Property tests: link wire times and tick quantisation (fixed-seed
   randomized parameters) *)

let random_link rng =
  {
    Link.name = "random";
    bytes_per_s = float_of_int (Rng.int_in rng ~lo:1_000_000 ~hi:1_000_000_000);
    latency_ps = Rng.int_in rng ~lo:0 ~hi:(Units.us 20.0);
  }

let test_wire_time_monotone () =
  let rng = Rng.create ~seed:0x11ed in
  for _ = 1 to 500 do
    let link = random_link rng in
    let n1 = Rng.int_in rng ~lo:0 ~hi:65_536 in
    let n2 = n1 + Rng.int_in rng ~lo:0 ~hi:65_536 in
    let w1 = Link.wire_time_ps link n1 and w2 = Link.wire_time_ps link n2 in
    if w1 > w2 then
      Alcotest.failf "wire_time_ps not monotone: %d bytes -> %d ps but %d bytes -> %d ps" n1 w1
        n2 w2;
    if n1 > 0 && w1 < link.Link.latency_ps then
      Alcotest.failf "wire time %d ps below the link latency %d ps" w1 link.Link.latency_ps
  done

let test_quantise_properties () =
  let rng = Rng.create ~seed:0x7ac5 in
  for _ = 1 to 1000 do
    let tick_ps = Rng.int_in rng ~lo:1 ~hi:Units.(us 5.0) in
    let ps = Rng.int_in rng ~lo:0 ~hi:Units.(us 100.0) in
    let q = Backend.quantise ~tick_ps ps in
    if q mod tick_ps <> 0 then Alcotest.failf "quantise(%d, tick %d) = %d not a tick multiple" ps tick_ps q;
    if q < ps then Alcotest.failf "quantise rounded %d down to %d (tick %d)" ps q tick_ps;
    if q - ps >= tick_ps then
      Alcotest.failf "quantise overshot: %d -> %d with tick %d" ps q tick_ps;
    if ps > 0 && q = 0 then
      Alcotest.failf "nonzero duration %d quantised to zero ticks (tick %d)" ps tick_ps
  done;
  checki "zero stays zero" 0 (Backend.quantise ~tick_ps:1000 0)

let test_linked_duration_never_zero () =
  let rng = Rng.create ~seed:0xd00d in
  for _ = 1 to 500 do
    let link = random_link rng in
    let tick_ps = Rng.int_in rng ~lo:1 ~hi:Units.(us 5.0) in
    let b = Backend.linked ~tick_ps link in
    let n = Rng.int_in rng ~lo:1 ~hi:65_536 in
    let d = Backend.duration_ps b n in
    if d <= 0 then
      Alcotest.failf "%d-byte transfer got duration %d on a timed backend (tick %d)" n d tick_ps;
    if d mod tick_ps <> 0 then Alcotest.failf "duration %d not a multiple of tick %d" d tick_ps
  done

(* ------------------------------------------------------------------ *)
(* Backend basics *)

let test_backend_basics () =
  checki "null duration" 0 (Backend.duration_ps Backend.null 4096);
  checkb "null of_string" true (Backend.of_string "null" = Ok Backend.Null);
  (match Backend.of_string ~tick_ps:7 "atm155" with
  | Ok (Backend.Linked { link; tick_ps }) ->
    Alcotest.(check string) "link name" "ATM 155Mbps" link.Link.name;
    checki "tick carried" 7 tick_ps
  | Ok Backend.Null | Error _ -> Alcotest.fail "atm155 did not parse as a linked backend");
  checkb "unknown rejected" true (Result.is_error (Backend.of_string "token-ring"));
  Alcotest.(check string) "null cache key" "null" (Backend.cache_key Backend.null);
  checkb "tick is part of the cache key" true
    (Backend.cache_key (Backend.linked ~tick_ps:1000 Link.atm155)
    <> Backend.cache_key (Backend.linked ~tick_ps:2000 Link.atm155));
  checkb "tick <= 0 rejected" true
    (match Backend.linked ~tick_ps:0 Link.atm155 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Explorer plumbing shared below *)

let explore ?dedup ?jobs ?memo_file ?memo_key ?memo_net build =
  let s = build () in
  Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ?dedup ?jobs ?memo_file
    ?memo_key ?memo_net ~check:(Scenario.oracle_check s) ()

let kind_name = function
  | Oracle.Unattributed_transfer _ -> "unattributed"
  | Oracle.Rights_violation _ -> "rights"
  | Oracle.Phantom_success _ -> "phantom"
  | Oracle.Lost_transfer _ -> "lost"

let canon (r : _ Explorer.result) =
  List.map (fun (v, schedule) -> (kind_name v, schedule)) r.Explorer.violations

(* ------------------------------------------------------------------ *)
(* Null backend: explicitly passing it must be indistinguishable from
   the default, down to the fresh-kernel state encoding *)

let test_null_backend_is_the_default () =
  let plain = Scenario.rep5 () and explicit = Scenario.rep5 ~net:Backend.null () in
  Alcotest.(check string)
    "fresh-kernel encodings equal"
    (Kernel.state_encoding plain.Scenario.kernel)
    (Kernel.state_encoding explicit.Scenario.kernel);
  let r1 = explore (fun () -> Scenario.rep5 ()) in
  let r2 = explore (fun () -> Scenario.rep5 ~net:Backend.null ()) in
  checki "paths" r1.Explorer.paths r2.Explorer.paths;
  checki "states" r1.Explorer.states_visited r2.Explorer.states_visited;
  checki "dedup hits" r1.Explorer.dedup_hits r2.Explorer.dedup_hits;
  checkb "violations" true (canon r1 = canon r2)

(* The PR-3 baselines: the deadline fields added to the encoding are
   constant under Null, so the state partition — not just the result —
   is exactly what it was. *)
let test_null_baselines_pinned () =
  let r5 = explore (fun () -> Scenario.rep5 ()) in
  checki "rep5 schedules" 462 r5.Explorer.paths;
  checki "rep5 dedup states" 191 r5.Explorer.states_visited;
  checkb "rep5 complete" false r5.Explorer.truncated;
  let f5 = explore (fun () -> Scenario.fig5 ()) in
  checki "fig5 schedules" 126 f5.Explorer.paths;
  checki "fig5 violations" 9 (List.length f5.Explorer.violations);
  checkb "no wait legs under Null" true
    (List.for_all
       (fun (_, schedule) -> not (List.mem Explorer.wait_leg schedule))
       f5.Explorer.violations)

(* ------------------------------------------------------------------ *)
(* Timed exploration behaviour *)

let test_timed_rep5_safe_and_merged () =
  let null = explore (fun () -> Scenario.rep5 ()) in
  let timed = explore (fun () -> Scenario.rep5 ~net:atm155 ()) in
  checkb "complete" false timed.Explorer.truncated;
  checki "still safe" 0 (List.length timed.Explorer.violations);
  checkb "wait legs open extra schedules" true (timed.Explorer.paths > null.Explorer.paths);
  (* the relative-deadline encoding must still merge commuting
     prefixes: strictly fewer states than schedules = dedup_ratio > 1 *)
  checkb "dedup ratio > 1" true (timed.Explorer.states_visited < timed.Explorer.paths);
  checkb "dedup hits occur" true (timed.Explorer.dedup_hits > 0)

let test_timed_fig5_still_vulnerable () =
  checki "wait_leg is -2" (-2) Explorer.wait_leg;
  let timed = explore (fun () -> Scenario.fig5 ~net:atm155 ()) in
  checkb "complete" false timed.Explorer.truncated;
  checkb "attack found" true (timed.Explorer.violations <> []);
  checkb "some violating schedule waits on the wire" true
    (List.exists
       (fun (_, schedule) -> List.mem Explorer.wait_leg schedule)
       timed.Explorer.violations)

(* ------------------------------------------------------------------ *)
(* Differential soundness: brute-force (no dedup) vs dedup vs jobs
   {2,4} on all three timed scenarios — identical path counts and
   identical violation sets, or the relative-deadline encoding merged
   states it should not have *)

let test_timed_differential () =
  List.iter
    (fun (name, build) ->
      let brute = explore ~dedup:false build in
      checkb (name ^ " brute complete") false brute.Explorer.truncated;
      List.iter
        (fun (what, r) ->
          checki
            (Printf.sprintf "%s %s paths" name what)
            brute.Explorer.paths r.Explorer.paths;
          checkb (Printf.sprintf "%s %s violations" name what) true (canon r = canon brute))
        [
          ("dedup", explore build);
          ("jobs=2", explore ~jobs:2 build);
          ("jobs=4", explore ~jobs:4 build);
        ])
    [
      ("fig5", fun () -> Scenario.fig5 ~net:atm155 ());
      ("rep5", fun () -> Scenario.rep5 ~net:atm155 ());
      ("key-based", fun () -> Scenario.key_contested ~net:atm155 ());
    ]

(* ------------------------------------------------------------------ *)
(* Persistent memo: the net backend is part of the section key *)

let with_temp_memo f =
  let file = Filename.temp_file "uldma_test_timed_memo" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let test_persist_keyed_by_net () =
  with_temp_memo @@ fun file ->
  let null_build () = Scenario.rep5 () in
  let timed_build () = Scenario.rep5 ~net:atm155 () in
  let timed_net = Backend.cache_key atm155 in
  (* warm the cache with the Null run *)
  let cold = explore ~memo_file:file ~memo_key:"rep5" null_build in
  let warm = explore ~memo_file:file ~memo_key:"rep5" null_build in
  checki "null warm start skips everything" 0 warm.Explorer.states_visited;
  checki "null warm paths" cold.Explorer.paths warm.Explorer.paths;
  (* the timed run shares scenario name and memo file but NOT the
     backend: it must not reuse the Null section (a Null summary's
     subtree counts are wrong for a timed tree) *)
  let fresh_timed = explore timed_build in
  let timed = explore ~memo_file:file ~memo_key:"rep5" ~memo_net:timed_net timed_build in
  checkb "timed run not warm-started from the Null section" true
    (timed.Explorer.states_visited > 0);
  checki "timed paths match a memo-less run" fresh_timed.Explorer.paths timed.Explorer.paths;
  checki "timed states match a memo-less run" fresh_timed.Explorer.states_visited
    timed.Explorer.states_visited;
  (* and the timed section, once saved, warm-starts only itself *)
  let timed_warm = explore ~memo_file:file ~memo_key:"rep5" ~memo_net:timed_net timed_build in
  checki "timed warm start skips everything" 0 timed_warm.Explorer.states_visited;
  checki "timed warm paths" fresh_timed.Explorer.paths timed_warm.Explorer.paths;
  let null_again = explore ~memo_file:file ~memo_key:"rep5" null_build in
  checki "null section undisturbed" 0 null_again.Explorer.states_visited

let test_persist_load_requires_matching_net () =
  with_temp_memo @@ fun file ->
  let s = Scenario.rep5 () in
  let root = Kernel.fingerprint s.Scenario.kernel in
  Uldma_verify.Memo.Persist.save ~file ~scenario:"x" ~net:"null" ~root
    [ ("enc", { Uldma_verify.Memo.Persist.p_paths = 7; p_stuck = 0 }) ];
  checkb "same net loads" true
    (Uldma_verify.Memo.Persist.load ~file ~scenario:"x" ~net:"null" ~root <> None);
  checkb "other net does not" true
    (Uldma_verify.Memo.Persist.load ~file ~scenario:"x" ~net:(Backend.cache_key atm155) ~root
    = None)

(* ------------------------------------------------------------------ *)
(* Kernel-level wait mechanics *)

let test_advance_to_next_completion () =
  let s = Scenario.rep5 ~net:atm155 () in
  let kernel = s.Scenario.kernel in
  checkb "nothing in flight at the root" true (Kernel.next_transfer_deadline kernel = None);
  checkb "advance refuses with nothing in flight" false (Kernel.advance_to_next_completion kernel);
  (* the victim's five emit accesses start the transfer *)
  Scenario.run_legs s Scenario.[ V; V; V; V; V ];
  let tr =
    match Scenario.transfers s with
    | [ tr ] -> tr
    | l -> Alcotest.failf "expected exactly one transfer, got %d" (List.length l)
  in
  checkb "transfer has wire time" true (tr.Uldma_dma.Transfer.duration > 0);
  checki "duration is tick-quantised" 0 (tr.Uldma_dma.Transfer.duration mod Backend.default_tick_ps);
  let deadline =
    match Kernel.next_transfer_deadline kernel with
    | Some at -> at
    | None -> Alcotest.fail "no deadline while the transfer is in flight"
  in
  checkb "remaining time positive" true
    (Uldma_dma.Transfer.remaining_ps tr ~now:(Kernel.now_ps kernel) > 0);
  checkb "advance succeeds" true (Kernel.advance_to_next_completion kernel);
  checki "clock landed on the deadline" deadline (Kernel.now_ps kernel);
  checki "nothing remaining afterwards" 0
    (Uldma_dma.Transfer.remaining_ps tr ~now:(Kernel.now_ps kernel));
  checkb "no further deadline" true (Kernel.next_transfer_deadline kernel = None);
  checkb "second advance refuses" false (Kernel.advance_to_next_completion kernel)

(* The encoding is relative to now, never to the absolute clock: two
   states differing only in how much idle time they accumulated must
   merge, while a state whose in-flight transfer has less wire time
   left must not. *)
let test_encoding_relative_to_now () =
  (* Null backend, nothing in flight: absolute time is invisible *)
  let s = Scenario.rep5 () in
  Scenario.run_legs s Scenario.[ V; V ];
  let a = Kernel.snapshot s.Scenario.kernel and b = Kernel.snapshot s.Scenario.kernel in
  Uldma_bus.Clock.advance (Kernel.clock b) 12_345;
  Alcotest.(check string)
    "idle time alone does not split states" (Kernel.state_encoding a) (Kernel.state_encoding b);
  (* timed backend, transfer in flight: the remaining wire time IS part
     of the state, so the same idle time now separates them *)
  let st = Scenario.rep5 ~net:atm155 () in
  Scenario.run_legs st Scenario.[ V; V; V; V; V ];
  let c = Kernel.snapshot st.Scenario.kernel and d = Kernel.snapshot st.Scenario.kernel in
  Alcotest.(check string)
    "identical snapshots encode equally" (Kernel.state_encoding c) (Kernel.state_encoding d);
  Uldma_bus.Clock.advance (Kernel.clock d) 12_345;
  checkb "remaining wire time is visible" true
    (Kernel.state_encoding c <> Kernel.state_encoding d)

let () =
  Alcotest.run "timed"
    [
      ( "link-properties",
        [
          Alcotest.test_case "wire time monotone in bytes" `Quick test_wire_time_monotone;
          Alcotest.test_case "tick quantisation" `Quick test_quantise_properties;
          Alcotest.test_case "linked durations nonzero" `Quick test_linked_duration_never_zero;
        ] );
      ("backend", [ Alcotest.test_case "basics" `Quick test_backend_basics ]);
      ( "null-equivalence",
        [
          Alcotest.test_case "explicit null = default" `Quick test_null_backend_is_the_default;
          Alcotest.test_case "PR-3 baselines pinned" `Quick test_null_baselines_pinned;
        ] );
      ( "timed-exploration",
        [
          Alcotest.test_case "rep5 safe, states merge" `Quick test_timed_rep5_safe_and_merged;
          Alcotest.test_case "fig5 still vulnerable" `Quick test_timed_fig5_still_vulnerable;
          Alcotest.test_case "wait mechanics" `Quick test_advance_to_next_completion;
          Alcotest.test_case "encoding is clock-relative" `Quick test_encoding_relative_to_now;
        ] );
      ( "differential",
        [ Alcotest.test_case "brute = dedup = jobs 2/4" `Slow test_timed_differential ] );
      ( "persist",
        [
          Alcotest.test_case "net in the section key" `Quick test_persist_keyed_by_net;
          Alcotest.test_case "load requires matching net" `Quick
            test_persist_load_requires_matching_net;
        ] );
    ]
