(* End-to-end tests for the core library: every initiation mechanism
   moves real bytes through a real machine, protection is enforced by
   the MMU on the shadow aliases, atomics work through all variants,
   and the Api catalog is consistent. *)

open Uldma_mem
open Uldma_cpu
open Uldma_os
open Uldma_dma
module Mech = Uldma.Mech
module Api = Uldma.Api
module Stub_loop = Uldma_workload.Stub_loop

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let config ?(mechanism = Engine.Ext_shadow) () =
  {
    Kernel.default_config with
    Kernel.ram_size = 64 * Layout.page_size;
    mechanism;
    backend = Kernel.Local { bytes_per_s = 1e9 };
  }

type rig = {
  kernel : Kernel.t;
  process : Process.t;
  src : int;
  dst : int;
  result_va : int;
}

let make_rig (mech : Mech.t) =
  let kernel =
    Kernel.create
      (match mech.Mech.engine_mechanism with
      | Some mechanism -> config ~mechanism ()
      | None -> config ())
  in
  let process = Kernel.spawn kernel ~name:mech.Mech.name ~program:[||] () in
  let src = Kernel.alloc_pages kernel process ~n:2 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel process ~n:2 ~perms:Perms.read_write in
  let result_va = Kernel.alloc_pages kernel process ~n:1 ~perms:Perms.read_write in
  let prepared =
    mech.Mech.prepare kernel process ~src:{ Mech.vaddr = src; pages = 2 }
      ~dst:{ Mech.vaddr = dst; pages = 2 }
  in
  ({ kernel; process; src; dst; result_va }, prepared)

let fill_pattern rig =
  for i = 0 to 63 do
    Kernel.write_user rig.kernel rig.process (rig.src + (8 * i)) (i * 3)
  done

let pattern_arrived rig =
  let ok = ref true in
  for i = 0 to 63 do
    if Kernel.read_user rig.kernel rig.process (rig.dst + (8 * i)) <> i * 3 then ok := false
  done;
  !ok

let run_one_dma (mech : Mech.t) =
  let rig, prepared = make_rig mech in
  fill_pattern rig;
  Process.set_program rig.process
    (Stub_loop.build_single ~vsrc:rig.src ~vdst:rig.dst ~size:512 ~result_va:rig.result_va
       ~emit_dma:prepared.Mech.emit_dma);
  (match Kernel.run rig.kernel ~max_steps:100_000 () with
  | Kernel.All_exited -> ()
  | Kernel.Max_steps | Kernel.Predicate -> Alcotest.fail "did not finish");
  rig

(* each mechanism, end to end: data moves, the stub sees success *)
let test_mechanism_moves_data (mech : Mech.t) () =
  let rig = run_one_dma mech in
  checki "stub saw success" 1 (Stub_loop.read_successes rig.kernel rig.process ~result_va:rig.result_va);
  checkb "bytes arrived" true (pattern_arrived rig);
  checki "exactly one transfer" 1 (List.length (Engine.transfers (Kernel.engine rig.kernel)));
  checkb "process exited cleanly" true (rig.process.Process.state = Process.Exited Process.Normal)

let test_kernel_modification_flags () =
  let flagged =
    List.filter (fun m -> m.Mech.requires_kernel_modification) Api.all |> List.map (fun m -> m.Mech.name)
  in
  Alcotest.(check (list string))
    "prior-art baselines plus the related-work mechanisms"
    [ "shrimp-2"; "flash"; "iommu"; "capio" ]
    flagged

let test_paper_mechanisms_unmodified_kernel () =
  (* the paper's pitch: its mechanisms run on an unmodified kernel *)
  List.iter
    (fun (mech : Mech.t) ->
      let rig = run_one_dma mech in
      checkb (mech.Mech.name ^ " leaves the kernel unmodified") false
        (Kernel.kernel_modified rig.kernel))
    Api.no_kernel_modification

let test_baselines_install_hooks () =
  List.iter
    (fun name ->
      let rig = run_one_dma (Api.find_exn name) in
      checkb (name ^ " required a kernel modification") true (Kernel.kernel_modified rig.kernel))
    [ "shrimp-2"; "flash" ]

(* protection: the shadow alias of a read-only destination page is
   read-only, so passing it as a DMA destination faults in the MMU
   before anything reaches the engine *)
let test_ext_shadow_readonly_dst_faults () =
  let kernel = Kernel.create (config ()) in
  let p = Kernel.spawn kernel ~name:"evil" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_only in
  (match Kernel.alloc_dma_context kernel p with Some _ -> () | None -> Alcotest.fail "ctx");
  ignore (Kernel.map_shadow_alias kernel p ~vaddr:src ~n:1 ~window:`Dma : int);
  ignore (Kernel.map_shadow_alias kernel p ~vaddr:dst ~n:1 ~window:`Dma : int);
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Process.set_program p
    (Stub_loop.build_single ~vsrc:src ~vdst:dst ~size:64 ~result_va
       ~emit_dma:Uldma.Ext_shadow.emit_dma);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  (match p.Process.state with
  | Process.Exited (Process.Killed_fault _) -> ()
  | s -> Alcotest.failf "expected fault kill, got %a" Process.pp_state s);
  checki "no transfer" 0 (List.length (Engine.transfers (Kernel.engine kernel)))

(* a process with no shadow mapping at all cannot reach the engine *)
let test_no_alias_no_access () =
  let kernel = Kernel.create (config ()) in
  let p = Kernel.spawn kernel ~name:"blind" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Process.set_program p
    (Asm.assemble_list
       [
         Isa.Li (1, src + Vm.shadow_va_offset);
         Isa.Store (1, 0, 2) (* unmapped shadow page *);
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  match p.Process.state with
  | Process.Exited (Process.Killed_fault _) -> ()
  | s -> Alcotest.failf "expected fault kill, got %a" Process.pp_state s

(* key-based: a stub armed with the wrong key is rejected *)
let test_key_dma_wrong_key_rejected () =
  let kernel = Kernel.create (config ~mechanism:Engine.Key_based ()) in
  let p = Kernel.spawn kernel ~name:"guesser" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let context, key, context_page_va =
    match Kernel.alloc_dma_context kernel p with Some x -> x | None -> Alcotest.fail "ctx"
  in
  ignore (Kernel.map_shadow_alias kernel p ~vaddr:src ~n:1 ~window:`Dma : int);
  ignore (Kernel.map_shadow_alias kernel p ~vaddr:dst ~n:1 ~window:`Dma : int);
  let wrong = Uldma.Key_dma.key_context_word ~key:(key lxor 1) ~context in
  Process.set_program p
    (Stub_loop.build_single ~vsrc:src ~vdst:dst ~size:64 ~result_va
       ~emit_dma:(Uldma.Key_dma.emit_dma_with ~key:wrong ~context_page_va));
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  checki "stub saw failure" 0 (Stub_loop.read_successes kernel p ~result_va);
  checki "nothing started" 0 (List.length (Engine.transfers (Kernel.engine kernel)));
  checkb "key rejections counted" true
    ((Engine.counters (Kernel.engine kernel)).Engine.key_rejected >= 2)

(* shrimp-1 ignores the destination argument: data lands on the twin *)
let test_shrimp1_fixed_destination () =
  let mech = Api.find_exn "shrimp-1" in
  let rig, prepared = make_rig mech in
  fill_pattern rig;
  let elsewhere = Kernel.alloc_pages rig.kernel rig.process ~n:1 ~perms:Perms.read_write in
  Process.set_program rig.process
    (Stub_loop.build_single ~vsrc:rig.src ~vdst:elsewhere ~size:512 ~result_va:rig.result_va
       ~emit_dma:prepared.Mech.emit_dma);
  ignore (Kernel.run rig.kernel ~max_steps:100_000 () : Kernel.run_result);
  checkb "data on the mapped-out twin, not vdst" true (pattern_arrived rig);
  checki "elsewhere untouched" 0 (Kernel.read_user rig.kernel rig.process elsewhere)

(* pal: the PAL function is installed once and is 4 instructions *)
let test_pal_body_fits () =
  checkb "within the 16-instruction limit" true
    (Array.length Uldma.Pal_dma.pal_body <= Pal.max_instructions)

let test_mech_regions_validated () =
  let kernel = Kernel.create (config ()) in
  let p = Kernel.spawn kernel ~name:"x" ~program:[||] () in
  checkb "unaligned region rejected" true
    (try
       ignore
         (Uldma.Kernel_dma.mech.Mech.prepare kernel p ~src:{ Mech.vaddr = 17; pages = 1 }
            ~dst:{ Mech.vaddr = 0; pages = 1 }
          : Mech.prepared);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Atomics *)

let atomic_rig variant =
  let mechanism =
    match Uldma.Atomic.engine_mechanism variant with
    | Some m -> m
    | None -> Engine.Ext_shadow
  in
  let kernel = Kernel.create (config ~mechanism ()) in
  let p = Kernel.spawn kernel ~name:"atomic" ~program:[||] () in
  let counter = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let prepared = Uldma.Atomic.prepare variant kernel p ~region:{ Mech.vaddr = counter; pages = 1 } in
  (kernel, p, counter, prepared)

let test_atomic_add variant () =
  let kernel, p, counter, prepared = atomic_rig variant in
  Kernel.write_user kernel p counter 100;
  let asm = Asm.create () in
  Asm.li asm 1 counter;
  Asm.li asm 5 7;
  prepared.Uldma.Atomic.emit_add asm ~operand:5;
  Asm.halt asm;
  Process.set_program p (Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  checki "old value returned" 100 (Regfile.get p.Process.ctx.Cpu.regs 0);
  checki "incremented" 107 (Kernel.read_user kernel p counter)

let test_atomic_fetch_store variant () =
  let kernel, p, counter, prepared = atomic_rig variant in
  Kernel.write_user kernel p counter 4;
  let asm = Asm.create () in
  Asm.li asm 1 counter;
  Asm.li asm 5 9;
  prepared.Uldma.Atomic.emit_fetch_store asm ~operand:5;
  Asm.halt asm;
  Process.set_program p (Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  checki "old value" 4 (Regfile.get p.Process.ctx.Cpu.regs 0);
  checki "swapped" 9 (Kernel.read_user kernel p counter)

let test_atomic_cas variant () =
  let kernel, p, counter, prepared = atomic_rig variant in
  Kernel.write_user kernel p counter 5;
  let asm = Asm.create () in
  (* successful CAS 5 -> 6 *)
  Asm.li asm 1 counter;
  Asm.li asm 5 5;
  Asm.li asm 6 6;
  prepared.Uldma.Atomic.emit_cas asm ~expected:5 ~desired:6;
  Asm.mov asm 10 0;
  (* failing CAS: expects 5 but the cell now holds 6 *)
  Asm.li asm 1 counter;
  Asm.li asm 5 5;
  Asm.li asm 6 77;
  prepared.Uldma.Atomic.emit_cas asm ~expected:5 ~desired:6;
  Asm.halt asm;
  Process.set_program p (Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  checki "first cas returned old" 5 (Regfile.get p.Process.ctx.Cpu.regs 10);
  checki "second cas returned current" 6 (Regfile.get p.Process.ctx.Cpu.regs 0);
  checki "cell is 6 (second cas failed)" 6 (Kernel.read_user kernel p counter)

(* ------------------------------------------------------------------ *)
(* Api *)

let test_api_catalog () =
  checki "thirteen mechanisms" 13 (List.length Api.all);
  checki "matrix6 rows" 6 (List.length Api.matrix6);
  checki "table1 rows" 4 (List.length Api.table1);
  checkb "names unique" true
    (List.length (List.sort_uniq compare Api.names) = List.length Api.names);
  checkb "find" true (Api.find "ext-shadow" <> None);
  checkb "find missing" true (Api.find "nonsense" = None);
  checkb "find_exn raises" true
    (try
       ignore (Api.find_exn "nonsense" : Mech.t);
       false
     with Invalid_argument _ -> true)

let test_api_kernel_config () =
  let c = Api.kernel_config (Api.find_exn "key-based") in
  checkb "mechanism set" true (c.Kernel.mechanism = Engine.Key_based);
  let c2 = Api.kernel_config (Api.find_exn "kernel") in
  checkb "kernel path keeps base" true (c2.Kernel.mechanism = Kernel.default_config.Kernel.mechanism)

let test_api_access_counts () =
  (* the paper's headline: 2 to 5 accesses, all issued from user level *)
  List.iter
    (fun (name, expected) -> checki name expected (Api.find_exn name).Mech.ni_accesses)
    [ ("ext-shadow", 2); ("rep-args", 5); ("key-based", 4); ("rep-args-3", 3); ("rep-args-4", 4) ]

let mechanism_cases =
  List.map
    (fun (mech : Mech.t) ->
      Alcotest.test_case (mech.Mech.name ^ " moves data") `Quick (test_mechanism_moves_data mech))
    (List.filter (fun m -> m.Mech.name <> "rep-args-3" && m.Mech.name <> "rep-args-4") Api.all)
(* the deliberately vulnerable variants are exercised in the attack and
   verification suites; they also move data, but are not part of the
   supported API surface *)

let atomic_cases =
  List.concat_map
    (fun variant ->
      let name = Uldma.Atomic.variant_name variant in
      [
        Alcotest.test_case (name ^ " add") `Quick (test_atomic_add variant);
        Alcotest.test_case (name ^ " fetch_store") `Quick (test_atomic_fetch_store variant);
        Alcotest.test_case (name ^ " cas") `Quick (test_atomic_cas variant);
      ])
    [
      Uldma.Atomic.Kernel_initiated;
      Uldma.Atomic.Ext_shadow_initiated;
      Uldma.Atomic.Key_initiated;
      Uldma.Atomic.Pal_initiated;
    ]

let () =
  Alcotest.run "core"
    [
      ("mechanisms", mechanism_cases);
      ( "protection",
        [
          Alcotest.test_case "kernel modification flags" `Quick test_kernel_modification_flags;
          Alcotest.test_case "paper mechanisms: unmodified kernel" `Quick
            test_paper_mechanisms_unmodified_kernel;
          Alcotest.test_case "baselines install hooks" `Quick test_baselines_install_hooks;
          Alcotest.test_case "read-only destination faults" `Quick
            test_ext_shadow_readonly_dst_faults;
          Alcotest.test_case "no alias, no access" `Quick test_no_alias_no_access;
          Alcotest.test_case "wrong key rejected" `Quick test_key_dma_wrong_key_rejected;
          Alcotest.test_case "shrimp-1 fixed destination" `Quick test_shrimp1_fixed_destination;
          Alcotest.test_case "pal body fits" `Quick test_pal_body_fits;
          Alcotest.test_case "regions validated" `Quick test_mech_regions_validated;
        ] );
      ("atomics", atomic_cases);
      ( "api",
        [
          Alcotest.test_case "catalog" `Quick test_api_catalog;
          Alcotest.test_case "kernel_config" `Quick test_api_kernel_config;
          Alcotest.test_case "access counts" `Quick test_api_access_counts;
        ] );
    ]
