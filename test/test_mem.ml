(* Tests for the mem library: layout, perms, phys_mem. *)

open Uldma_mem

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_page_math () =
  checki "page size" 8192 Layout.page_size;
  checki "page of 0" 0 (Layout.page_of 0);
  checki "page of 8191" 0 (Layout.page_of 8191);
  checki "page of 8192" 1 (Layout.page_of 8192);
  checki "page base" 8192 (Layout.page_base 8200);
  checki "page offset" 8 (Layout.page_offset 8200);
  checkb "aligned" true (Layout.is_page_aligned 16384);
  checkb "unaligned" false (Layout.is_page_aligned 16385);
  checkb "word aligned" true (Layout.is_word_aligned 16);
  checkb "word unaligned" false (Layout.is_word_aligned 17)

let test_layout_mmio () =
  checkb "mmio base above ram limit" true (Layout.mmio_base >= Layout.max_ram_size / 4);
  checkb "kernel page is first" true (Layout.kernel_control_page = Layout.mmio_base);
  checkb "context 0 after kernel page" true
    (Layout.context_page 0 = Layout.mmio_base + Layout.page_size);
  checkb "in_mmio base" true (Layout.in_mmio Layout.mmio_base);
  checkb "in_mmio limit" false (Layout.in_mmio Layout.mmio_limit);
  checkb "ram not mmio" false (Layout.in_mmio 0)

let test_layout_context_pages () =
  for i = 0 to Layout.max_contexts - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "inverse of context_page %d" i)
      (Some i)
      (Layout.context_of_mmio (Layout.context_page i + 64))
  done;
  Alcotest.(check (option int)) "kernel page has no context" None
    (Layout.context_of_mmio Layout.kernel_control_page);
  Alcotest.check_raises "context page out of range" (Invalid_argument "Layout.context_page: 8")
    (fun () -> ignore (Layout.context_page 8 : int))

let test_layout_shadow_bit () =
  checkb "shadow tagged" true (Layout.is_shadow (1 lsl Layout.shadow_bit_index));
  checkb "plain not shadow" false (Layout.is_shadow 0x1234);
  checkb "mmio not shadow" false (Layout.is_shadow Layout.mmio_base)

let test_layout_remote_window () =
  checkb "base in remote" true (Layout.in_remote Layout.remote_base);
  checkb "limit not in remote" false (Layout.in_remote Layout.remote_limit);
  checkb "mmio not remote" false (Layout.in_remote Layout.mmio_base);
  checki "offset roundtrip" 0x1234 (Layout.remote_offset (Layout.remote_base + 0x1234));
  checkb "disjoint from mmio" true (Layout.remote_base >= Layout.mmio_limit);
  checkb "below the shadow context field" true
    (Layout.remote_limit <= 1 lsl Layout.context_field_shift)

let test_layout_in_ram () =
  checkb "0 in ram" true (Layout.in_ram ~ram_size:8192 0);
  checkb "8191 in ram" true (Layout.in_ram ~ram_size:8192 8191);
  checkb "8192 not" false (Layout.in_ram ~ram_size:8192 8192);
  checkb "negative not" false (Layout.in_ram ~ram_size:8192 (-1))

(* ------------------------------------------------------------------ *)
(* Perms *)

let all_perms = [ Perms.none; Perms.read_only; Perms.write_only; Perms.read_write ]

let test_perms_basic () =
  checkb "rw allows read" true (Perms.allows_read Perms.read_write);
  checkb "rw allows write" true (Perms.allows_write Perms.read_write);
  checkb "ro denies write" false (Perms.allows_write Perms.read_only);
  checkb "wo denies read" false (Perms.allows_read Perms.write_only);
  checkb "none denies all" false
    (Perms.allows_read Perms.none || Perms.allows_write Perms.none)

let test_perms_subsumes () =
  List.iter
    (fun p -> checkb "rw subsumes all" true (Perms.subsumes Perms.read_write p))
    all_perms;
  List.iter (fun p -> checkb "all subsume none" true (Perms.subsumes p Perms.none)) all_perms;
  checkb "ro does not subsume rw" false (Perms.subsumes Perms.read_only Perms.read_write);
  checkb "reflexive" true (List.for_all (fun p -> Perms.subsumes p p) all_perms)

let test_perms_lattice () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb "union subsumes both" true
            (Perms.subsumes (Perms.union a b) a && Perms.subsumes (Perms.union a b) b);
          checkb "both subsume inter" true
            (Perms.subsumes a (Perms.inter a b) && Perms.subsumes b (Perms.inter a b)))
        all_perms)
    all_perms

let test_perms_to_string () =
  Alcotest.(check string) "rw" "rw" (Perms.to_string Perms.read_write);
  Alcotest.(check string) "ro" "r-" (Perms.to_string Perms.read_only);
  Alcotest.(check string) "none" "--" (Perms.to_string Perms.none)

(* ------------------------------------------------------------------ *)
(* Phys_mem *)

let mem () = Phys_mem.create ~size:(8 * Layout.page_size)

let test_mem_create_checks () =
  Alcotest.check_raises "unaligned size"
    (Invalid_argument "Phys_mem.create: size 100 not page-aligned") (fun () ->
      ignore (Phys_mem.create ~size:100 : Phys_mem.t))

let test_mem_zero_initialised () =
  let m = mem () in
  checki "word 0" 0 (Phys_mem.load_word m 0);
  checki "last word" 0 (Phys_mem.load_word m (Phys_mem.size m - 8))

let test_mem_word_roundtrip () =
  let m = mem () in
  Phys_mem.store_word m 64 0x1234_5678_9abc;
  checki "roundtrip" 0x1234_5678_9abc (Phys_mem.load_word m 64);
  Phys_mem.store_word m 72 (-42);
  checki "negative value" (-42) (Phys_mem.load_word m 72)

let test_mem_byte_roundtrip () =
  let m = mem () in
  Phys_mem.store_byte m 3 0xab;
  checki "byte" 0xab (Phys_mem.load_byte m 3);
  Phys_mem.store_byte m 4 0x1ff;
  checki "byte truncated" 0xff (Phys_mem.load_byte m 4)

let test_mem_faults () =
  let m = mem () in
  let size = Phys_mem.size m in
  Alcotest.check_raises "oob load" (Phys_mem.Fault size) (fun () ->
      ignore (Phys_mem.load_word m size : int));
  Alcotest.check_raises "misaligned" (Phys_mem.Fault 3) (fun () ->
      ignore (Phys_mem.load_word m 3 : int));
  Alcotest.check_raises "negative" (Phys_mem.Fault (-8)) (fun () ->
      ignore (Phys_mem.load_word m (-8) : int));
  Alcotest.check_raises "oob blit" (Phys_mem.Fault (size - 4)) (fun () ->
      Phys_mem.blit m ~src:(size - 4) ~dst:0 ~len:8)

let test_mem_blit () =
  let m = mem () in
  Phys_mem.fill m ~addr:0 ~len:16 ~byte:0x5a;
  Phys_mem.blit m ~src:0 ~dst:100 ~len:16;
  checki "copied byte" 0x5a (Phys_mem.load_byte m 100);
  checki "copied byte 15" 0x5a (Phys_mem.load_byte m 115);
  checki "beyond untouched" 0 (Phys_mem.load_byte m 116)

let test_mem_blit_overlap () =
  let m = mem () in
  for i = 0 to 15 do
    Phys_mem.store_byte m i i
  done;
  Phys_mem.blit m ~src:0 ~dst:4 ~len:12;
  (* forward overlap must behave like memmove *)
  for i = 0 to 11 do
    checki (Printf.sprintf "dst[%d]" i) i (Phys_mem.load_byte m (4 + i))
  done

let test_mem_checksum_equal () =
  let m = mem () in
  Phys_mem.fill m ~addr:0 ~len:64 ~byte:7;
  Phys_mem.fill m ~addr:64 ~len:64 ~byte:7;
  checki "equal ranges checksum" (Phys_mem.checksum m ~addr:0 ~len:64)
    (Phys_mem.checksum m ~addr:64 ~len:64);
  Phys_mem.store_byte m 65 8;
  checkb "different checksum" true
    (Phys_mem.checksum m ~addr:0 ~len:64 <> Phys_mem.checksum m ~addr:64 ~len:64)

let test_mem_copy_independent () =
  let m = mem () in
  Phys_mem.store_word m 0 111;
  let m2 = Phys_mem.copy m in
  Phys_mem.store_word m2 0 222;
  checki "original untouched" 111 (Phys_mem.load_word m 0);
  checki "copy updated" 222 (Phys_mem.load_word m2 0)

let test_mem_equal_range () =
  let a = mem () and b = mem () in
  Phys_mem.fill a ~addr:8 ~len:32 ~byte:1;
  Phys_mem.fill b ~addr:8 ~len:32 ~byte:1;
  checkb "equal" true (Phys_mem.equal_range a b ~addr:8 ~len:32);
  Phys_mem.store_byte b 9 2;
  checkb "unequal" false (Phys_mem.equal_range a b ~addr:8 ~len:32)

(* --- copy-on-write semantics --- *)

let test_mem_cow_sharing () =
  let m = mem () in
  checki "fresh RAM owns no pages" 0 (Phys_mem.owned_pages m);
  Phys_mem.store_word m 0 1;
  checki "first write faults in one page" 1 (Phys_mem.owned_pages m);
  let child = Phys_mem.copy m in
  checki "snapshot un-owns the parent" 0 (Phys_mem.owned_pages m);
  checki "child owns nothing yet" 0 (Phys_mem.owned_pages child);
  Phys_mem.store_word child 0 2;
  checki "child write faults in its own page" 1 (Phys_mem.owned_pages child);
  checki "parent still un-owned" 0 (Phys_mem.owned_pages m);
  checki "parent value intact" 1 (Phys_mem.load_word m 0);
  checki "child value" 2 (Phys_mem.load_word child 0)

let test_mem_cow_siblings () =
  let parent = mem () in
  Phys_mem.store_word parent 64 10;
  let a = Phys_mem.copy parent and b = Phys_mem.copy parent in
  Phys_mem.store_word a 64 20;
  Phys_mem.store_word b (2 * Layout.page_size) 30;
  checki "parent untouched by a" 10 (Phys_mem.load_word parent 64);
  checki "parent untouched by b" 0 (Phys_mem.load_word parent (2 * Layout.page_size));
  checki "a sees own write" 20 (Phys_mem.load_word a 64);
  checki "a blind to b's write" 0 (Phys_mem.load_word a (2 * Layout.page_size));
  checki "b inherits parent page" 10 (Phys_mem.load_word b 64);
  checkb "shared pages equal for free" true
    (Phys_mem.equal_range parent b ~addr:0 ~len:Layout.page_size)

let test_mem_touched_tracking () =
  let m = mem () in
  checki "fresh RAM touched nothing" 0 (Phys_mem.touched_count m);
  Phys_mem.store_word m 0 1;
  Phys_mem.store_word m 8 2;
  checki "two writes to one page touch one page" 1 (Phys_mem.touched_count m);
  Phys_mem.store_word m (2 * Layout.page_size) 3;
  checki "write to another page" 2 (Phys_mem.touched_count m);
  let seen = ref [] in
  Phys_mem.iter_touched m (fun i _ -> seen := i :: !seen);
  Alcotest.(check (list int)) "touched indices" [ 0; 2 ] (List.sort compare !seen);
  (* copies inherit the touched set: the pages that may differ from an
     all-zero RAM are the same for parent and child *)
  let child = Phys_mem.copy m in
  checki "child inherits touched" 2 (Phys_mem.touched_count child);
  Phys_mem.store_word child (3 * Layout.page_size) 4;
  checki "child write adds" 3 (Phys_mem.touched_count child);
  checki "parent unaffected" 2 (Phys_mem.touched_count m)

let test_mem_iter_diverged () =
  let root = mem () in
  Phys_mem.store_word root 0 1;
  let a = Phys_mem.copy root in
  (* a fork that has written nothing shares every page with the root *)
  let n = ref 0 in
  Phys_mem.iter_diverged a ~baseline:root (fun _ _ -> incr n);
  checki "fresh fork diverges nowhere" 0 !n;
  (* one write diverges exactly that page, even though the touched set
     also holds the root's page 0 *)
  Phys_mem.store_word a (2 * Layout.page_size) 42;
  let seen = ref [] in
  Phys_mem.iter_diverged a ~baseline:root (fun i _ -> seen := i :: !seen);
  Alcotest.(check (list int)) "diverged pages" [ 2 ] !seen;
  (* rewriting a root-touched page diverges it too (CoW gives the fork
     its own Bytes even when the content ends up identical) *)
  Phys_mem.store_word a 0 1;
  let seen = ref [] in
  Phys_mem.iter_diverged a ~baseline:root (fun i _ -> seen := i :: !seen);
  Alcotest.(check (list int)) "after page-0 write" [ 0; 2 ] (List.sort compare !seen);
  checkb "size mismatch rejected" true
    (try
       Phys_mem.iter_diverged a ~baseline:(Phys_mem.create ~size:Layout.page_size) (fun _ _ -> ());
       false
     with Invalid_argument _ -> true)

let test_mem_cow_blit_fill_across_pages () =
  let m = mem () in
  (* pattern crossing the page 0/1 boundary *)
  let src = Layout.page_size - 100 in
  for i = 0 to 199 do
    Phys_mem.store_byte m (src + i) (i land 0xff)
  done;
  let snap = Phys_mem.copy m in
  (* blit in the child across the page 2/3 boundary, from a range that
     is still shared with the parent *)
  let dst = (3 * Layout.page_size) - 77 in
  Phys_mem.blit snap ~src ~dst ~len:200;
  for i = 0 to 199 do
    checki (Printf.sprintf "blitted[%d]" i) (i land 0xff) (Phys_mem.load_byte snap (dst + i))
  done;
  checki "parent dst range untouched" 0 (Phys_mem.load_byte m dst);
  checkb "source range still equal" true (Phys_mem.equal_range m snap ~addr:src ~len:200);
  (* whole-page zero fill re-shares the zero page instead of dirtying *)
  let before = Phys_mem.owned_pages snap in
  Phys_mem.fill snap ~addr:(2 * Layout.page_size) ~len:(2 * Layout.page_size) ~byte:0;
  checkb "zero fill releases private pages" true (Phys_mem.owned_pages snap < before);
  checki "zeroed" 0 (Phys_mem.load_byte snap dst);
  checki "parent still untouched" 0 (Phys_mem.load_byte m dst)

(* --- per-page digest cache --- *)

let test_mem_digest_cache () =
  let m = mem () in
  (* untouched pages share the zero-page digest without hashing *)
  let z0 = Phys_mem.page_digest m 0 in
  checkb "all zero pages digest equal" true (Phys_mem.page_digest m 1 = z0);
  checki "zero-page shortcut hashes nothing" 0 (Phys_mem.digest_fills m);
  (* a write invalidates: the next digest is recomputed and differs *)
  Phys_mem.store_word m 0 0x1234;
  let d1 = Phys_mem.page_digest m 0 in
  checkb "digest changed by write" true (d1 <> z0);
  checki "one real hash" 1 (Phys_mem.digest_fills m);
  checkb "cache hit returns same digest" true (Phys_mem.page_digest m 0 = d1);
  checki "cache hit costs no fill" 1 (Phys_mem.digest_fills m);
  (* writing a page again invalidates its slot even when already owned *)
  Phys_mem.store_word m 8 0x9abc;
  let d1' = Phys_mem.page_digest m 0 in
  checkb "second write changes the digest" true (d1' <> d1);
  checki "and costs one more hash" 2 (Phys_mem.digest_fills m)

let test_mem_digest_cache_survives_copy () =
  let m = mem () in
  Phys_mem.store_word m 0 0x1234;
  let d1 = Phys_mem.page_digest m 0 in
  (* a COW child reuses the shared page's cached digest for free *)
  let child = Phys_mem.copy m in
  checkb "child reuses parent's cached digest" true (Phys_mem.page_digest child 0 = d1);
  checki "child hashed nothing" 0 (Phys_mem.digest_fills child);
  (* writing the child invalidates only the child's slot *)
  Phys_mem.store_word child 0 0x5678;
  let d2 = Phys_mem.page_digest child 0 in
  checkb "child digest diverged" true (d2 <> d1);
  checki "child paid one hash" 1 (Phys_mem.digest_fills child);
  checkb "parent digest untouched" true (Phys_mem.page_digest m 0 = d1);
  checki "parent paid nothing extra" 1 (Phys_mem.digest_fills m);
  (* digests are content digests: an independent instance with the same
     bytes agrees *)
  let other = mem () in
  Phys_mem.store_word other 0 0x1234;
  checkb "content-equal pages digest equal" true (Phys_mem.page_digest other 0 = d1);
  (* a whole-page zero fill re-shares the zero page and its digest *)
  let z0 = Phys_mem.page_digest other 1 in
  Phys_mem.fill child ~addr:0 ~len:Layout.page_size ~byte:0;
  checkb "zero-filled page back to the zero digest" true (Phys_mem.page_digest child 0 = z0);
  checki "via the shortcut, not a hash" 1 (Phys_mem.digest_fills child)

(* A random op script applied identically to a COW Phys_mem and to an
   eager Bytes oracle, with a snapshot taken mid-script: afterwards the
   parent must match the oracle state at the snapshot point and the
   child the final oracle state, under load/checksum/equal_range. *)
let mem_cow_matches_eager_oracle =
  let size = 4 * Layout.page_size in
  let oracle_checksum oracle =
    let acc = ref 0 in
    Bytes.iter (fun c -> acc := ((!acc * 131) + Char.code c) land max_int) oracle;
    !acc
  in
  let apply_op mem oracle (kind, a, b, len) =
    let addr = a mod (size - 512) in
    let len = 1 + (len mod 500) in
    match kind mod 4 with
    | 0 ->
      Phys_mem.store_byte mem addr (b land 0xff);
      Bytes.set oracle addr (Char.chr (b land 0xff))
    | 1 ->
      let addr = addr land lnot 7 in
      Phys_mem.store_word mem addr b;
      Bytes.set_int64_le oracle addr (Int64.of_int b)
    | 2 ->
      Phys_mem.fill mem ~addr ~len ~byte:(b land 0xff);
      Bytes.fill oracle addr len (Char.chr (b land 0xff))
    | _ ->
      let dst = b mod (size - 512) in
      Phys_mem.blit mem ~src:addr ~dst ~len;
      let tmp = Bytes.sub oracle addr len in
      Bytes.blit tmp 0 oracle dst len
  in
  let gen_op =
    QCheck2.Gen.(quad (int_range 0 3) (int_range 0 (size - 1)) (int_range 0 max_int) nat)
  in
  qtest ~count:50 "phys_mem: COW snapshot matches eager-copy oracle"
    QCheck2.Gen.(pair (list_size (int_range 0 30) gen_op) (list_size (int_range 0 30) gen_op))
    (fun (ops_before, ops_after) ->
      let m = Phys_mem.create ~size in
      let oracle = Bytes.make size '\000' in
      List.iter (apply_op m oracle) ops_before;
      let child = Phys_mem.copy m in
      let oracle_at_snap = Bytes.copy oracle in
      (* diverge: child follows the script, parent stays put *)
      List.iter (apply_op child oracle) ops_after;
      Phys_mem.checksum m ~addr:0 ~len:size = oracle_checksum oracle_at_snap
      && Phys_mem.checksum child ~addr:0 ~len:size = oracle_checksum oracle
      && Phys_mem.equal_range m child ~addr:0 ~len:size = Bytes.equal oracle_at_snap oracle)

let mem_word_roundtrip_prop =
  qtest "phys_mem: word store/load roundtrip"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range (-1000000) 1000000))
    (fun (slot, v) ->
      let m = Phys_mem.create ~size:Layout.page_size in
      let addr = slot mod (Layout.page_size / 8) * 8 in
      Phys_mem.store_word m addr v;
      Phys_mem.load_word m addr = v)

let mem_blit_preserves_content =
  qtest "phys_mem: blit copies exactly len bytes"
    QCheck2.Gen.(triple (int_range 0 255) (int_range 1 256) (int_range 0 256))
    (fun (byte, len, gap) ->
      let m = Phys_mem.create ~size:Layout.page_size in
      Phys_mem.fill m ~addr:0 ~len ~byte;
      let dst = len + gap in
      if dst + len > Layout.page_size then true
      else begin
        Phys_mem.blit m ~src:0 ~dst ~len;
        Phys_mem.equal_range m m ~addr:0 ~len
        && Phys_mem.checksum m ~addr:0 ~len = Phys_mem.checksum m ~addr:dst ~len
      end)

let () =
  Alcotest.run "mem"
    [
      ( "layout",
        [
          Alcotest.test_case "page math" `Quick test_layout_page_math;
          Alcotest.test_case "mmio window" `Quick test_layout_mmio;
          Alcotest.test_case "context pages" `Quick test_layout_context_pages;
          Alcotest.test_case "shadow bit" `Quick test_layout_shadow_bit;
          Alcotest.test_case "remote window" `Quick test_layout_remote_window;
          Alcotest.test_case "in_ram" `Quick test_layout_in_ram;
        ] );
      ( "perms",
        [
          Alcotest.test_case "basic" `Quick test_perms_basic;
          Alcotest.test_case "subsumes" `Quick test_perms_subsumes;
          Alcotest.test_case "lattice" `Quick test_perms_lattice;
          Alcotest.test_case "to_string" `Quick test_perms_to_string;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "create checks" `Quick test_mem_create_checks;
          Alcotest.test_case "zero initialised" `Quick test_mem_zero_initialised;
          Alcotest.test_case "word roundtrip" `Quick test_mem_word_roundtrip;
          Alcotest.test_case "byte roundtrip" `Quick test_mem_byte_roundtrip;
          Alcotest.test_case "faults" `Quick test_mem_faults;
          Alcotest.test_case "blit" `Quick test_mem_blit;
          Alcotest.test_case "blit overlap" `Quick test_mem_blit_overlap;
          Alcotest.test_case "checksum" `Quick test_mem_checksum_equal;
          Alcotest.test_case "copy independent" `Quick test_mem_copy_independent;
          Alcotest.test_case "equal_range" `Quick test_mem_equal_range;
          Alcotest.test_case "cow page sharing" `Quick test_mem_cow_sharing;
          Alcotest.test_case "cow sibling isolation" `Quick test_mem_cow_siblings;
          Alcotest.test_case "cow blit/fill across pages" `Quick
            test_mem_cow_blit_fill_across_pages;
          Alcotest.test_case "digest cache invalidation" `Quick test_mem_digest_cache;
          Alcotest.test_case "digest cache survives copy" `Quick
            test_mem_digest_cache_survives_copy;
          Alcotest.test_case "touched-page tracking" `Quick test_mem_touched_tracking;
          Alcotest.test_case "iter_diverged" `Quick test_mem_iter_diverged;
          mem_cow_matches_eager_oracle;
          mem_word_roundtrip_prop;
          mem_blit_preserves_content;
        ] );
    ]
