(* Tests for the verification layer (oracle + interleaving explorer)
   and the attack scenarios: reproduces Figs. 5, 6, the SHRIMP/FLASH
   races, and machine-checks §3.3.1 exhaustively and by randomized
   campaign. *)

open Uldma_os
open Uldma_dma
module Oracle = Uldma_verify.Oracle
module Explorer = Uldma_verify.Explorer
module Scenario = Uldma_workload.Scenario

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let has_violation pred report = List.exists pred report.Oracle.violations

let is_unattributed = function Oracle.Unattributed_transfer _ -> true | _ -> false
let is_lost = function Oracle.Lost_transfer _ -> true | _ -> false
let is_phantom = function Oracle.Phantom_success _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Oracle on hand-built runs *)

let clean_run () =
  (* an uncontested ext-shadow DMA: the oracle must pass it *)
  let s = Scenario.rep5_with_retry () in
  Scenario.finish s ();
  s

let test_oracle_accepts_clean_run () =
  let s = clean_run () in
  let report = Scenario.report s in
  checkb "ok" true (Oracle.ok report);
  checki "one transfer checked" 1 report.Oracle.transfers_checked;
  checki "one intent" 1 report.Oracle.intents_checked

let test_oracle_flags_missing_intent () =
  let s = clean_run () in
  (* drop the intent: the transfer becomes unattributable *)
  let report =
    Oracle.check ~kernel:s.Scenario.kernel ~intents:[] ~reported_successes:[]
  in
  checkb "unattributed" true (has_violation is_unattributed report)

let test_oracle_flags_phantom () =
  let s = clean_run () in
  (* claim two successes when only one transfer started *)
  let report =
    Oracle.check ~kernel:s.Scenario.kernel ~intents:s.Scenario.intents
      ~reported_successes:[ (s.Scenario.victim.Process.pid, 2) ]
  in
  checkb "phantom" true (has_violation is_phantom report)

let test_oracle_flags_lost () =
  let s = clean_run () in
  let report =
    Oracle.check ~kernel:s.Scenario.kernel ~intents:s.Scenario.intents
      ~reported_successes:[ (s.Scenario.victim.Process.pid, 0) ]
  in
  checkb "lost" true (has_violation is_lost report)

let test_oracle_flags_rights_violation () =
  let s = clean_run () in
  (* declare an intent into memory the victim has no mapping for at
     all: psrc/pdst are raw physical addresses the process never saw *)
  let bogus =
    {
      Oracle.pid = s.Scenario.victim.Process.pid;
      vsrc = 0x7000_0000;
      vdst = 0x7000_2000;
      psrc = 0;
      pdst = 0;
      size = 64;
      requests = 1;
    }
  in
  let report =
    Oracle.check ~kernel:s.Scenario.kernel ~intents:[ bogus ] ~reported_successes:[]
  in
  checkb "rights violation" true
    (has_violation (function Oracle.Rights_violation _ -> true | _ -> false) report)

(* ------------------------------------------------------------------ *)
(* Scripted attacks: the paper's figures *)

let test_fig5_attack_reproduces () =
  let s = Scenario.fig5 () in
  Scenario.run_legs s Scenario.fig5_schedule;
  Scenario.finish s ();
  let report = Scenario.report s in
  (* the attacker started C -> B: unattributable *)
  checkb "argument mixing detected" true (has_violation is_unattributed report);
  checki "exactly one transfer" 1 (List.length (Scenario.transfers s));
  (* the transfer's destination is the victim's B *)
  (match (Scenario.transfers s, s.Scenario.intents) with
  | [ tr ], [ intent ] ->
    checki "into victim's destination" intent.Oracle.pdst tr.Transfer.dst;
    checkb "from attacker's data, not victim's source" true
      (tr.Transfer.src <> intent.Oracle.psrc)
  | _ -> Alcotest.fail "expected one transfer and one intent");
  checki "victim saw no success" 0 (Scenario.victim_successes s)

let test_fig6_attack_reproduces () =
  let s = Scenario.fig6 () in
  Scenario.run_legs s Scenario.fig6_schedule;
  Scenario.finish s ();
  let report = Scenario.report s in
  (* the transfer is the victim's own (A -> B), but the victim was told
     it failed: a lost transfer *)
  checkb "started-but-reported-failed" true (has_violation is_lost report);
  checkb "no unattributed transfer" false (has_violation is_unattributed report);
  checki "one transfer" 1 (List.length (Scenario.transfers s));
  checki "victim saw failure" Status.failure (Scenario.victim_last_status s)

let test_shrimp2_race_unmodified_kernel () =
  let s = Scenario.shrimp2_race ~hook:false in
  Scenario.run_legs s Scenario.shrimp2_schedule;
  Scenario.finish s ();
  checkb "kernel unmodified" false (Kernel.kernel_modified s.Scenario.kernel);
  let report = Scenario.report s in
  checkb "mixed arguments" true (has_violation is_unattributed report)

let test_shrimp2_race_with_hook () =
  let s = Scenario.shrimp2_race ~hook:true in
  Scenario.run_legs s Scenario.shrimp2_schedule;
  Scenario.finish s ();
  checkb "kernel modified" true (Kernel.kernel_modified s.Scenario.kernel);
  let report = Scenario.report s in
  checkb "safe" true (Oracle.ok report);
  checki "race prevented: nothing started" 0 (List.length (Scenario.transfers s))

let test_flash_race_unmodified_kernel () =
  let s = Scenario.flash_race ~hook:false in
  Scenario.run_legs s Scenario.shrimp2_schedule;
  Scenario.finish s ();
  checkb "mixed arguments" true (has_violation is_unattributed (Scenario.report s))

let test_flash_race_with_hook () =
  let s = Scenario.flash_race ~hook:true in
  Scenario.run_legs s Scenario.shrimp2_schedule;
  Scenario.finish s ();
  checkb "safe" true (Oracle.ok (Scenario.report s))

let test_ext_stateless_race_safe () =
  let s = Scenario.ext_stateless_race () in
  Scenario.run_legs s Scenario.shrimp2_schedule;
  Scenario.finish s ();
  checkb "kernel unmodified" false (Kernel.kernel_modified s.Scenario.kernel);
  checkb "safe" true (Oracle.ok (Scenario.report s));
  checki "race prevented" 0 (List.length (Scenario.transfers s))

let test_rep5_resists_fig5_schedule () =
  (* the exact Fig. 5 interleaving applied to the five-access method *)
  let s = Scenario.rep5 () in
  Scenario.run_legs s Scenario.fig5_schedule;
  Scenario.finish s ();
  checkb "safe" true (Oracle.ok (Scenario.report s))

(* ------------------------------------------------------------------ *)
(* Explorer *)

let explore_with ?dedup ?paranoid_memo ?jobs ?memo_cap ?memo_file ?memo_key ?max_paths scenario =
  let s = scenario () in
  Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ?dedup ?paranoid_memo
    ?jobs ?memo_cap ?memo_file ?memo_key ?max_paths ~check:(Scenario.oracle_check s) ()

let explore scenario = explore_with scenario

let test_explorer_rep5_safe_all_schedules () =
  let r = explore (fun () -> Scenario.rep5 ()) in
  checkb "complete" false r.Explorer.truncated;
  checkb "many schedules" true (r.Explorer.paths > 100);
  checki "no violations" 0 (List.length r.Explorer.violations)

let test_explorer_rep3_finds_fig5 () =
  let r = explore (fun () -> Scenario.fig5 ()) in
  checkb "complete" false r.Explorer.truncated;
  checkb "violations found" true (List.length r.Explorer.violations > 0);
  (* at least one of them is the argument-mixing attack *)
  checkb "unattributed transfer among them" true
    (List.exists (fun (v, _) -> is_unattributed v) r.Explorer.violations)

let test_explorer_rep4_finds_fig6 () =
  let r = explore Scenario.fig6 in
  checkb "violations found" true (List.length r.Explorer.violations > 0);
  checkb "lost transfer among them" true
    (List.exists (fun (v, _) -> is_lost v) r.Explorer.violations)

let test_explorer_rep5_resists_store_splice () =
  (* the S(X) S(X) L(X) adversary trying to exfiltrate the victim's A
     into its own page X *)
  let r = explore Scenario.rep5_splice in
  checkb "complete" false r.Explorer.truncated;
  checki "no violations" 0 (List.length r.Explorer.violations)

let test_explorer_contested_mechanisms_safe () =
  List.iter
    (fun (name, scenario) ->
      let r = explore scenario in
      if r.Explorer.truncated then Alcotest.failf "%s: truncated" name;
      if r.Explorer.violations <> [] then
        Alcotest.failf "%s: %d violating schedules" name (List.length r.Explorer.violations))
    [
      ("ext-shadow", Scenario.ext_shadow_contested);
      ("key-based", (fun () -> Scenario.key_contested ()));
      ("pal", Scenario.pal_contested);
      ("iommu", (fun () -> Scenario.iommu_contested ()));
      ("capio", (fun () -> Scenario.capio_contested ()));
      ("iommu-fig5", (fun () -> Scenario.iommu_fig5 ()));
      ("capio-fig5", (fun () -> Scenario.capio_fig5 ()));
    ]

(* the CAPIO laundering accomplice: a victim capability replayed
   through the accomplice's own register context must be rejected
   [Bad_capability] — and the attempt must actually reach the engine,
   otherwise this test would pass vacuously *)
let launder_rejects engine ~pid:accomplice_pid reason =
  List.exists
    (function
      | Engine.Rejected { reason = r; pid; _ } -> r = reason && pid = accomplice_pid
      | Engine.Started _ | Engine.Atomic_done _ -> false)
    (Engine.events engine)

let test_capio_launder_rejected_concrete () =
  (* accomplice fires first, while the victim (and its caps) are alive:
     the context binding rejects the replay as Bad_capability *)
  let s = Scenario.capio_launder () in
  Scenario.run_legs s [ Scenario.M; Scenario.M; Scenario.M; Scenario.M ];
  Scenario.finish s ();
  let engine = Kernel.engine s.Scenario.kernel in
  let accomplice_pid = s.Scenario.attacker.Process.pid in
  checkb "laundering rejected Bad_capability" true
    (launder_rejects engine ~pid:accomplice_pid Engine.Bad_capability);
  checki "only the victim's transfer started" 1 (List.length (Engine.transfers engine));
  checkb "oracle clean" true (Oracle.ok (Scenario.report s))

let test_capio_launder_rejected_after_victim_exit () =
  (* the other phase: once the victim exits, its caps are revoked by
     pid, so a late replay is rejected Revoked_capability instead —
     still never fires *)
  let s = Scenario.capio_launder () in
  Scenario.finish s ();
  let engine = Kernel.engine s.Scenario.kernel in
  let accomplice_pid = s.Scenario.attacker.Process.pid in
  checkb "late replay rejected Revoked_capability" true
    (launder_rejects engine ~pid:accomplice_pid Engine.Revoked_capability);
  checki "only the victim's transfer started" 1 (List.length (Engine.transfers engine))

let test_explorer_capio_launder_safe () =
  let r = explore (fun () -> Scenario.capio_launder ()) in
  checkb "not truncated" false r.Explorer.truncated;
  checki "no violating schedule" 0 (List.length r.Explorer.violations)

(* unmap shootdown: a granted capability dies with its mapping, and
   dies as *revoked* (distinguishable from never-granted) *)
let test_kernel_unmap_revokes_caps () =
  let kernel = Scenario.make_kernel Engine.Capio in
  let p = Kernel.spawn kernel ~name:"p" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
  (match Kernel.alloc_dma_context kernel p with
  | Some _ -> ()
  | None -> Alcotest.fail "no context");
  let value =
    match Kernel.grant_dma_cap kernel p ~vaddr:va ~len:64 ~rights:Uldma_mem.Perms.read_write with
    | Some v -> v
    | None -> Alcotest.fail "grant refused"
  in
  let engine = Kernel.engine kernel in
  let find () = Capability.find (Engine.capabilities engine) ~value in
  (match find () with
  | Some c -> checkb "live before unmap" false c.Capability.revoked
  | None -> Alcotest.fail "cap not installed");
  Kernel.unmap_pages kernel p ~vaddr:va ~n:1;
  match find () with
  | Some c -> checkb "revoked after unmap" true c.Capability.revoked
  | None -> Alcotest.fail "revoked cap must stay findable (Revoked <> Bad)"

let test_kernel_grant_rejects_bad_ranges () =
  let kernel = Scenario.make_kernel Engine.Capio in
  let p = Kernel.spawn kernel ~name:"p" ~program:[||] () in
  (match Kernel.alloc_dma_context kernel p with
  | Some _ -> ()
  | None -> Alcotest.fail "no context");
  let ro = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_only in
  checkb "write right on read-only page refused" true
    (Kernel.grant_dma_cap kernel p ~vaddr:ro ~len:64 ~rights:Uldma_mem.Perms.read_write = None);
  checkb "unmapped range refused" true
    (Kernel.grant_dma_cap kernel p ~vaddr:(50 * Uldma_mem.Layout.page_size) ~len:64
       ~rights:Uldma_mem.Perms.read_only
    = None)

let test_explorer_schedules_recorded () =
  let r = explore (fun () -> Scenario.fig5 ()) in
  match r.Explorer.violations with
  | (_, schedule) :: _ ->
    checkb "non-trivial schedule" true (List.length schedule >= 3);
    checkb "mentions both pids" true
      (List.exists (fun pid -> pid = 1) schedule && List.exists (fun pid -> pid = 2) schedule)
  | [] -> Alcotest.fail "expected a violating schedule"

let test_explorer_root_untouched () =
  let s = Scenario.rep5 () in
  let pids = [ s.Scenario.victim.Process.pid ] in
  ignore (Explorer.explore ~root:s.Scenario.kernel ~pids ~check:(fun _ -> None) ());
  checkb "root still runnable" true (Kernel.runnable_pids s.Scenario.kernel <> []);
  checki "root clock untouched" 0 (Kernel.now_ps s.Scenario.kernel)

let test_explorer_max_paths_truncates () =
  let s = Scenario.rep5 () in
  let pids = [ s.Scenario.victim.Process.pid; s.Scenario.attacker.Process.pid ] in
  let r = Explorer.explore ~root:s.Scenario.kernel ~pids ~max_paths:3 ~check:(fun _ -> None) () in
  checkb "truncated" true r.Explorer.truncated

(* A pid that spins forever without touching the NI makes every leg
   through it [`Stuck]. Regression: a stuck leg used to poison the
   whole exploration (global truncation, siblings abandoned); now only
   that branch is pruned and the siblings keep being expanded. *)
let test_explorer_stuck_leg_prunes_branch_only () =
  let kernel = Kernel.create Kernel.default_config in
  let spinner = Kernel.spawn kernel ~name:"spinner" ~program:[| Uldma_cpu.Isa.Jmp 0 |] () in
  let worker =
    Kernel.spawn kernel ~name:"worker" ~program:[| Uldma_cpu.Isa.Nop; Uldma_cpu.Isa.Halt |] ()
  in
  let r =
    Explorer.explore ~root:kernel ~pids:[ spinner.Process.pid; worker.Process.pid ]
      ~max_instructions_per_leg:100 ~dedup:false ~check:(fun _ -> None) ()
  in
  checkb "not globally truncated" false r.Explorer.truncated;
  (* the spinner is stuck both at the root and after the worker's exit:
     proof the sibling branch survived the first stuck leg *)
  checkb "several stuck legs recorded" true (r.Explorer.stuck_legs >= 2);
  checkb "sibling branch expanded" true (r.Explorer.states_visited >= 2)

(* Canonical form of a violation list for cross-configuration
   comparison: constructor kind + violating schedule. The payloads are
   NOT compared: a memo hit re-emits the violation value computed on
   the first-discovered commuting prefix, whose simulated timestamps
   (e.g. Transfer.at inside Unattributed_transfer) legitimately differ
   from a later prefix's even though the engine-visible outcome is the
   same — that is exactly the state abstraction dedup merges on. *)
let canon_violations (r : _ Explorer.result) =
  List.map
    (fun (v, schedule) ->
      ( (match v with
        | Oracle.Unattributed_transfer _ -> "unattributed"
        | Oracle.Rights_violation _ -> "rights"
        | Oracle.Phantom_success _ -> "phantom"
        | Oracle.Lost_transfer _ -> "lost"),
        schedule ))
    r.Explorer.violations

(* Equality invariant of the memoization: with the real oracle
   attached, dedup on/off must report the same schedules and the same
   violation kinds, in the same order (the golden Fig. 8 table relies
   on this). *)
let test_explorer_dedup_equivalence () =
  List.iter
    (fun scenario ->
      let on = explore scenario in
      let off = explore_with ~dedup:false scenario in
      checki "paths equal" off.Explorer.paths on.Explorer.paths;
      checkb "violations identical, in order" true (canon_violations on = canon_violations off);
      checki "no dedup hits when off" 0 off.Explorer.dedup_hits)
    [ (fun () -> Scenario.fig5 ()); (fun () -> Scenario.rep5 ()) ]

(* Same invariant across worker-domain counts: the parallel driver
   concatenates per-subtree results in the sequential DFS order, so
   any --jobs must reproduce the jobs=1 schedules exactly. *)
let test_explorer_jobs_determinism () =
  List.iter
    (fun scenario ->
      let seq = explore scenario in
      List.iter
        (fun jobs ->
          let par = explore_with ~jobs scenario in
          checki (Printf.sprintf "jobs=%d paths" jobs) seq.Explorer.paths par.Explorer.paths;
          checkb
            (Printf.sprintf "jobs=%d violations identical, in order" jobs)
            true
            (canon_violations seq = canon_violations par);
          checkb (Printf.sprintf "jobs=%d complete" jobs) false par.Explorer.truncated)
        [ 2; 4 ])
    [ (fun () -> Scenario.fig5 ()); (fun () -> Scenario.rep5 ()) ]

let test_explorer_dedup_reduces_states () =
  let on = explore (fun () -> Scenario.rep5 ()) in
  let off = explore_with ~dedup:false (fun () -> Scenario.rep5 ()) in
  checkb "fewer states than schedules" true (on.Explorer.states_visited < on.Explorer.paths);
  checkb "fewer states than brute force" true
    (on.Explorer.states_visited < off.Explorer.states_visited);
  checkb "dedup hits recorded" true (on.Explorer.dedup_hits > 0);
  checki "brute force visits every interior node at least once" off.Explorer.states_visited
    (off.Explorer.states_visited + off.Explorer.dedup_hits)

(* Regression for the work-stealing driver, in two parts — the two
   pieces of [Explorer.result] whose assembly actually differs between
   the sequential DFS and the re-split/steal/sort pipeline.

   (a) stuck-leg accounting: a deliberately spinning third pid makes
   stuck legs appear at every surviving node, and the global counter
   must agree at every job count. (A pid that never reaches an NI
   access also never exits, so no schedule completes — paths = 0 is
   the documented pruning semantics, which the parallel driver must
   reproduce too, published-and-stolen subtrees included.)

   (b) violation re-emission order: rep5_contested3's ~1.4e3 collusion
   violations flow through memo re-emission AND the parallel
   rank-lexicographic sort; every job count must deliver them in the
   sequential order. *)
let test_explorer_jobs_stuck_and_violation_order () =
  let run_spinner jobs =
    let s = Scenario.fig5 () in
    let spinner =
      Kernel.spawn s.Scenario.kernel ~name:"spinner" ~program:[| Uldma_cpu.Isa.Jmp 0 |] ()
    in
    Explorer.explore ~root:s.Scenario.kernel
      ~pids:(Scenario.explore_pids s @ [ spinner.Process.pid ])
      ~max_instructions_per_leg:100 ~jobs ~check:(Scenario.oracle_check s) ()
  in
  let seq = run_spinner 1 in
  checkb "spinner makes stuck legs" true (seq.Explorer.stuck_legs > 0);
  List.iter
    (fun jobs ->
      let par = run_spinner jobs in
      checki (Printf.sprintf "spinner jobs=%d paths" jobs) seq.Explorer.paths par.Explorer.paths;
      checki
        (Printf.sprintf "spinner jobs=%d stuck legs" jobs)
        seq.Explorer.stuck_legs par.Explorer.stuck_legs)
    [ 2; 4 ];
  let run_contested jobs =
    let s = Scenario.rep5_contested3 () in
    Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ~jobs
      ~check:(Scenario.oracle_check s) ()
  in
  let seq = run_contested 1 in
  checkb "many violations to order" true (List.length seq.Explorer.violations > 100);
  List.iter
    (fun jobs ->
      let par = run_contested jobs in
      checki (Printf.sprintf "contested jobs=%d paths" jobs) seq.Explorer.paths
        par.Explorer.paths;
      checkb
        (Printf.sprintf "contested jobs=%d violations identical, in order" jobs)
        true
        (canon_violations seq = canon_violations par))
    [ 2; 4 ]

(* The bounded memo is a cost knob, never a result knob: a cap small
   enough to force constant eviction must re-derive the identical
   answer, just visiting more states. *)
let test_explorer_bounded_memo_equivalence () =
  let base = explore (fun () -> Scenario.rep5 ()) in
  let capped = explore_with ~memo_cap:32 (fun () -> Scenario.rep5 ()) in
  checkb "evictions happened" true (capped.Explorer.evictions > 0);
  checkb "still complete" false capped.Explorer.truncated;
  checki "paths equal" base.Explorer.paths capped.Explorer.paths;
  checkb "violations identical, in order" true (canon_violations base = canon_violations capped);
  checkb "eviction costs re-expansion" true
    (capped.Explorer.states_visited >= base.Explorer.states_visited);
  checki "default cap evicts nothing here" 0 base.Explorer.evictions

(* Persistent cross-scenario cache: a warm run of an independently
   rebuilt scenario reuses the saved safe summaries (fewer expansions,
   same answer), while a different memo_key falls back to cold because
   the stored section's root fingerprint cannot match. *)
let test_explorer_memo_file_warm_start () =
  let file = Filename.temp_file "uldma_memo" ".bin" in
  Sys.remove file;
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let cold = explore_with ~memo_file:file ~memo_key:"rep5" (fun () -> Scenario.rep5 ()) in
      checkb "cache file written" true (Sys.file_exists file);
      let warm = explore_with ~memo_file:file ~memo_key:"rep5" (fun () -> Scenario.rep5 ()) in
      checki "paths equal" cold.Explorer.paths warm.Explorer.paths;
      checkb "violations identical" true (canon_violations cold = canon_violations warm);
      checkb "warm run expands fewer states" true
        (warm.Explorer.states_visited < cold.Explorer.states_visited);
      checkb "warm run hits the cache" true (warm.Explorer.dedup_hits > 0);
      (* same file, different scenario under a reused key: the root
         fingerprint guard must reject the section, not corrupt results *)
      let other = explore_with ~memo_file:file ~memo_key:"rep5" (fun () -> Scenario.fig5 ()) in
      let plain = explore (fun () -> Scenario.fig5 ()) in
      checki "foreign section ignored: paths" plain.Explorer.paths other.Explorer.paths;
      checkb "foreign section ignored: violations" true
        (canon_violations plain = canon_violations other))

(* Three-process contested tree (1680 schedules): every jobs level and
   dedup off must agree exactly — this is the shape where the
   work-stealing driver actually re-splits interior nodes. *)
let test_explorer_3proc_determinism () =
  let small () = Scenario.ext_shadow_contested3 ~victim_repeat:1 ~tenant_repeat:1 () in
  let seq = explore small in
  checki "multinomial (3,3,3) schedule count" 1680 seq.Explorer.paths;
  checki "safe" 0 (List.length seq.Explorer.violations);
  let nodedup = explore_with ~dedup:false small in
  checki "no-dedup paths" seq.Explorer.paths nodedup.Explorer.paths;
  List.iter
    (fun jobs ->
      let par = explore_with ~jobs small in
      checki (Printf.sprintf "jobs=%d paths" jobs) seq.Explorer.paths par.Explorer.paths;
      checkb (Printf.sprintf "jobs=%d complete" jobs) false par.Explorer.truncated;
      checkb
        (Printf.sprintf "jobs=%d violations identical" jobs)
        true
        (canon_violations seq = canon_violations par))
    [ 2; 4 ]

(* Truncation under parallelism: the lease mechanism must make a
   clipped parallel run reproduce the sequential clipped frontier
   exactly — same path count, same violation list in the same order,
   same truncated flag — at every jobs level. Two shapes: the safe
   ext-shadow-3 tree (clipping only the count) and rep5-contested3
   with the budget landing *inside* the violation region (clipping the
   violation list mid-stream, the hard case for per-task leases). *)
let test_explorer_truncated_parallel_leases () =
  List.iter
    (fun (label, scenario, max_paths, expect_viol) ->
      let seq = explore_with ~max_paths scenario in
      checkb (label ^ " seq truncated") true seq.Explorer.truncated;
      checki (label ^ " seq clipped exactly at budget") max_paths seq.Explorer.paths;
      if expect_viol then
        checkb (label ^ " budget lands inside the violation region") true
          (seq.Explorer.violations <> []);
      List.iter
        (fun jobs ->
          let par = explore_with ~jobs ~max_paths scenario in
          checkb (Printf.sprintf "%s jobs=%d truncated" label jobs) true par.Explorer.truncated;
          checki (Printf.sprintf "%s jobs=%d clipped paths" label jobs) seq.Explorer.paths
            par.Explorer.paths;
          checkb
            (Printf.sprintf "%s jobs=%d clipped violations identical, in order" label jobs)
            true
            (canon_violations seq = canon_violations par);
          checkb
            (Printf.sprintf "%s jobs=%d lease splits bounded by publications" label jobs)
            true
            (par.Explorer.lease_splits <= par.Explorer.publications))
        [ 2; 4 ])
    [
      ("ext-shadow-3", (fun () -> Scenario.ext_shadow_contested3 ()), 5_000, false);
      ("rep5-3", (fun () -> Scenario.rep5_contested3 ()), 300_000, true);
    ]

(* rep5 vs two colluding adversaries: the victim's §3.3.1 property
   holds across all ~6.3e5 schedules — every violation the strict
   oracle reports is an unattributed transfer wholly between the
   colluders' own pages (the consent-based collusion channel), never
   touching A or B and never lying to the victim. *)
let test_explorer_rep5_contested3_victim_safe () =
  let s = Scenario.rep5_contested3 () in
  let victim_pages =
    List.filter_map
      (fun (base, name) -> if name = "A" || name = "B" then Some base else None)
      s.Scenario.labels
  in
  checki "both victim pages labelled" 2 (List.length victim_pages);
  let r =
    Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
      ~check:(Scenario.oracle_check s) ()
  in
  checkb "complete" false r.Explorer.truncated;
  checkb "collusion channel found" true (r.Explorer.violations <> []);
  List.iter
    (fun (v, _) ->
      match v with
      | Oracle.Unattributed_transfer tr ->
        let touches addr =
          List.mem (Uldma_mem.Layout.page_base addr) victim_pages
        in
        if touches tr.Uldma_dma.Transfer.src || touches tr.Uldma_dma.Transfer.dst then
          Alcotest.failf "collusion transfer touches a victim page: %#x -> %#x"
            tr.Uldma_dma.Transfer.src tr.Uldma_dma.Transfer.dst
      | Oracle.Rights_violation _ | Oracle.Phantom_success _ | Oracle.Lost_transfer _ ->
        Alcotest.fail "victim-visible violation (expected only collusion transfers)")
    r.Explorer.violations

(* Satellite of the memo rework: shard selection hashes the whole key,
   so long keys sharing a prefix (exactly what root-relative state
   encodings look like) still spread over the shards. *)
let test_memo_shard_balance () =
  let module Memo = Uldma_verify.Memo in
  let prefix = String.make 500 'k' in
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    let key = Printf.sprintf "%s|%d" prefix i in
    Hashtbl.replace seen (Memo.shard_of_string ~shards:64 key) ()
  done;
  checkb "long shared-prefix keys spread over shards" true (Hashtbl.length seen >= 16);
  (* and FNV-1a really reads past the prefix *)
  checkb "suffix changes the hash" false
    (Int64.equal (Memo.fnv1a64 (prefix ^ "a")) (Memo.fnv1a64 (prefix ^ "b")))

(* Fingerprint-keyed dedup (the default) against paranoid full-string
   keying: identical results, strictly fewer bytes hashed. The paranoid
   leg materialises every encoding string, so its bytes_hashed is the
   sum of all encoding lengths; the fingerprint leg streams walk tokens
   and reuses cached page digests, so it must come in under that. *)
let test_explorer_paranoid_equivalence () =
  let fp = explore (fun () -> Scenario.rep5 ()) in
  let par = explore_with ~paranoid_memo:true (fun () -> Scenario.rep5 ()) in
  checki "paths equal" fp.Explorer.paths par.Explorer.paths;
  checki "states equal" fp.Explorer.states_visited par.Explorer.states_visited;
  checki "dedup hits equal" fp.Explorer.dedup_hits par.Explorer.dedup_hits;
  checkb "violations identical, in order" true (canon_violations fp = canon_violations par);
  checkb "both legs account hashing work" true
    (fp.Explorer.bytes_hashed > 0 && par.Explorer.bytes_hashed > 0);
  checkb "fingerprinting hashes fewer bytes than string keying" true
    (fp.Explorer.bytes_hashed < par.Explorer.bytes_hashed);
  (* last-leg elision: a node's final leg advances the parent in place,
     so snapshots stay strictly below expanded states + seed *)
  checkb "snapshots elided on final legs" true
    (fp.Explorer.snapshots < fp.Explorer.states_visited + 1)

(* Regression: [Memo.length] used to sum hot + cold sizes, double
   counting a key alive in both generations after a cold-hit promotion. *)
let test_memo_length_distinct () =
  let module Memo = Uldma_verify.Memo in
  let t = Memo.create ~shards:1 ~cap:4 ~locked:false in
  List.iter (fun k -> Memo.add t k k) [ "a"; "b"; "c"; "d" ];
  (* cap reached: the generations rotated, all four keys are now cold *)
  checki "all four resident after rotation" 4 (Memo.length t);
  (* a cold hit promotes the key back into hot: alive in BOTH tables *)
  checkb "cold hit found" true (Memo.find t "a" = Some "a");
  checki "promoted key counts once" 4 (Memo.length t);
  (* iter must agree with length on the de-duplicated view *)
  let seen = ref [] in
  Memo.iter t (fun k _ -> seen := k :: !seen);
  checki "iter visits each key once" 4 (List.length !seen);
  Alcotest.(check (list string)) "the four keys" [ "a"; "b"; "c"; "d" ]
    (List.sort compare !seen)

(* The persistent cache's tmp file is pid-unique, so a stale tmp from a
   crashed or concurrent run can never be renamed over [file] by this
   run — and this run's save must succeed around any such garbage. *)
let test_memo_persist_unique_tmp () =
  let module Persist = Uldma_verify.Memo.Persist in
  let file = Filename.temp_file "uldma_memo" ".bin" in
  Sys.remove file;
  let stale_fixed = file ^ ".tmp" in
  let stale_pid = file ^ ".99999999.tmp" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ file; stale_fixed; stale_pid ])
    (fun () ->
      (* plant garbage under both the legacy fixed tmp name and a
         foreign pid-suffixed one *)
      let plant f =
        let oc = open_out_bin f in
        output_string oc "not a memo file";
        close_out oc
      in
      plant stale_fixed;
      plant stale_pid;
      Persist.save ~file ~scenario:"s" ~net:"null" ~root:7L
        [ ("k", { Persist.p_paths = 3; p_stuck = 0 }) ];
      checkb "file written" true (Sys.file_exists file);
      checkb "this run's tmp renamed away" false
        (Sys.file_exists (Printf.sprintf "%s.%d.tmp" file (Unix.getpid ())));
      checkb "foreign tmps untouched" true
        (Sys.file_exists stale_fixed && Sys.file_exists stale_pid);
      match Persist.load ~file ~scenario:"s" ~net:"null" ~root:7L with
      | None -> Alcotest.fail "saved section did not load back"
      | Some tbl ->
        checki "one entry" 1 (Hashtbl.length tbl);
        checkb "entry intact" true
          (Hashtbl.find_opt tbl "k" = Some { Persist.p_paths = 3; p_stuck = 0 }))

(* Fingerprint keys and encoding strings must induce the same equality
   relation on states. Randomized: two kernels built from the same
   scenario, each mutated by a random word-store script, agree on their
   encodings iff they agree on their fingerprint keys; and replaying
   one script must reproduce its key exactly. A fingerprint collision
   between distinct encodings would need both 63-bit lanes to collide
   (~2^-126), far below what this test could ever draw. *)
let explorer_fp_iff_encoding =
  let build ops =
    let s = Scenario.rep5 () in
    let k = s.Scenario.kernel in
    let ram = Kernel.ram k in
    let nslots = Uldma_mem.Phys_mem.size ram / 8 in
    List.iter
      (fun (slot, v) -> Uldma_mem.Phys_mem.store_word ram (slot mod nslots * 8) v)
      ops;
    k
  in
  let key k = fst (Kernel.state_key ~paranoid:false k) in
  let gen_ops =
    QCheck2.Gen.(list_size (int_range 0 10) (pair nat (int_range 0 0xffff)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"explorer: fingerprint equality iff encoding equality" ~count:60
       (QCheck2.Gen.pair gen_ops gen_ops)
       (fun (ops_a, ops_b) ->
         let a = build ops_a and b = build ops_b in
         let same_enc = Kernel.state_encoding a = Kernel.state_encoding b in
         let same_key = key a = key b in
         (* determinism: replaying a script reproduces its key *)
         key (build ops_a) = key a && same_enc = same_key))

(* The fingerprint hashes only engine-visible state: two independently
   built copies of a scenario agree, and advancing one NI-access leg
   changes it while leaving the root's untouched. *)
let test_kernel_fingerprint_stability () =
  let a = (Scenario.rep5 ()).Scenario.kernel and b = (Scenario.rep5 ()).Scenario.kernel in
  Alcotest.(check string) "identical builds encode identically"
    (Kernel.state_encoding a) (Kernel.state_encoding b);
  checkb "identical builds fingerprint identically" true
    (Int64.equal (Kernel.fingerprint a) (Kernel.fingerprint b));
  let before = Kernel.fingerprint a in
  let fork = Kernel.snapshot a in
  checkb "snapshot leaves the fingerprint alone" true
    (Int64.equal before (Kernel.fingerprint a));
  (match Explorer.advance_one_leg fork 1 ~max_instructions:2000 with
  | `Progress | `Exited -> ()
  | `Stuck -> Alcotest.fail "unexpected stuck leg");
  checkb "a leg changes the fork's fingerprint" false
    (Int64.equal before (Kernel.fingerprint fork));
  checkb "...but not the root's" true (Int64.equal before (Kernel.fingerprint a));
  (* the root-relative encoding starts empty on the RAM side and grows
     only with diverged pages, so it stays much shorter than the
     absolute one *)
  checkb "relative encoding is compact" true
    (String.length (Kernel.state_encoding ~relative_to:a fork)
    < String.length (Kernel.state_encoding fork))

let test_advance_one_leg () =
  let s = Scenario.rep5 () in
  let kernel = Kernel.copy s.Scenario.kernel in
  (* one leg = up to and including the process's next NI access *)
  (match Explorer.advance_one_leg kernel s.Scenario.victim.Process.pid ~max_instructions:500 with
  | `Progress -> ()
  | `Exited | `Stuck -> Alcotest.fail "expected progress");
  checkb "victim still mid-stub" true
    (List.mem s.Scenario.victim.Process.pid (Kernel.runnable_pids kernel))

(* Kernel snapshots share RAM copy-on-write and page tables by
   persistent-map sharing; driving one fork through a whole scenario
   must leave the root and a sibling fork bit-identical. *)
let test_kernel_snapshot_isolation () =
  List.iter
    (fun (name, scenario) ->
      let s = scenario () in
      let root = s.Scenario.kernel in
      let root_ram = Kernel.ram root in
      let ram_len = Uldma_mem.Phys_mem.size root_ram in
      let sum_before = Uldma_mem.Phys_mem.checksum root_ram ~addr:0 ~len:ram_len in
      let a = Kernel.snapshot root and b = Kernel.snapshot root in
      (* run fork [a] to completion, interleaving both pids *)
      let pids = [ s.Scenario.victim.Process.pid; s.Scenario.attacker.Process.pid ] in
      let budget = ref 100 in
      while Kernel.runnable_pids a <> [] && !budget > 0 do
        decr budget;
        List.iter
          (fun pid -> ignore (Explorer.advance_one_leg a pid ~max_instructions:2000))
          pids
      done;
      if !budget = 0 then Alcotest.failf "%s: fork did not quiesce" name;
      checkb (name ^ ": fork made progress") true (Kernel.now_ps a > 0);
      checki (name ^ ": root clock untouched") 0 (Kernel.now_ps root);
      checki (name ^ ": root RAM untouched") sum_before
        (Uldma_mem.Phys_mem.checksum root_ram ~addr:0 ~len:ram_len);
      checki (name ^ ": sibling clock untouched") 0 (Kernel.now_ps b);
      checkb (name ^ ": sibling RAM identical to root") true
        (Uldma_mem.Phys_mem.equal_range root_ram (Kernel.ram b) ~addr:0 ~len:ram_len);
      (* the untouched sibling must still be fully usable *)
      checkb (name ^ ": sibling still runnable") true (Kernel.runnable_pids b <> []))
    [ ("fig5", (fun () -> Scenario.fig5 ())); ("rep5", (fun () -> Scenario.rep5 ())) ]

let test_timeline_reproduces_fig5 () =
  let s = Scenario.fig5 () in
  Scenario.run_legs s Scenario.fig5_schedule;
  Scenario.finish s ();
  let rendered = List.map (fun (_, actor, access) -> (actor, access)) (Scenario.access_timeline s) in
  Alcotest.(check (list (pair string string)))
    "the Fig. 5 interleaving diagram"
    [
      ("victim", "LOAD FROM shadow(A)");
      ("attacker", "STORE 0x100 TO shadow(foo)");
      ("attacker", "LOAD FROM shadow(foo)");
      ("attacker", "LOAD FROM shadow(C)");
      ("victim", "STORE 0x100 TO shadow(B)");
      ("attacker", "LOAD FROM shadow(C)");
      ("victim", "LOAD FROM shadow(A)");
    ]
    rendered

let test_timeline_labels () =
  let s = Scenario.fig5 () in
  checkb "A labelled" true
    (List.exists (fun (_, name) -> name = "A") s.Scenario.labels);
  let a_paddr = (List.find (fun (_, name) -> name = "A") s.Scenario.labels) |> fst in
  Alcotest.(check string) "shadow naming" "shadow(A)"
    (Scenario.label_of_paddr s (Uldma_mmu.Shadow.encode a_paddr));
  Alcotest.(check string) "offset naming" "A+0x40" (Scenario.label_of_paddr s (a_paddr + 0x40))

(* ------------------------------------------------------------------ *)
(* Randomized campaigns *)

let test_campaign_rep5_random_schedules () =
  for seed = 1 to 25 do
    let s = Scenario.rep5_with_retry () in
    Scenario.run_random s ~seed ~switch_probability:0.3;
    let report = Scenario.report s in
    if not (Oracle.ok report) then
      Alcotest.failf "seed %d: %a" seed Oracle.pp_report report;
    checki
      (Printf.sprintf "seed %d: exactly one success" seed)
      1 (Scenario.victim_successes s)
  done

let test_campaign_rep3_eventually_broken () =
  (* random NI-access interleavings of victim and attacker: the
     three-access variant must break for some of them (the explorer
     says 9 of the 126 leg schedules are violating) *)
  let rng = Uldma_util.Rng.create ~seed:99 in
  let broken = ref false in
  for _ = 1 to 120 do
    if not !broken then begin
      let legs = Array.of_list (Scenario.[ V; V; V ] @ Scenario.[ M; M; M; M ]) in
      Uldma_util.Rng.shuffle rng legs;
      let s = Scenario.fig5 () in
      Scenario.run_legs s (Array.to_list legs);
      Scenario.finish s ();
      if not (Oracle.ok (Scenario.report s)) then broken := true
    end
  done;
  checkb "found a breaking schedule" true !broken

let test_campaign_key_based_two_users () =
  (* two key-based users under heavy preemption: private contexts keep
     them safe with an unmodified kernel *)
  let config =
    {
      Kernel.default_config with
      Kernel.mechanism = Engine.Key_based;
      ram_size = 64 * Uldma_mem.Layout.page_size;
      sched = Sched.Random_preempt { probability = 0.3; seed = 11 };
    }
  in
  let kernel = Kernel.create config in
  let intents = ref [] and reported = ref [] in
  let mech = Uldma.Api.find_exn "key-based" in
  let users =
    List.map
      (fun name ->
        let p = Kernel.spawn kernel ~name ~program:[||] () in
        let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
        let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
        let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
        let prepared =
          mech.Uldma.Mech.prepare kernel p ~src:{ Uldma.Mech.vaddr = src; pages = 1 }
            ~dst:{ Uldma.Mech.vaddr = dst; pages = 1 }
        in
        Process.set_program p
          (Uldma_workload.Stub_loop.build_repeat ~n:20 ~vsrc:src ~vdst:dst ~size:128 ~result_va
             ~emit_dma:prepared.Uldma.Mech.emit_dma);
        intents :=
          Oracle.intent_of_regions kernel p ~vsrc:src ~vdst:dst ~size:128 ~requests:20 :: !intents;
        (p, result_va))
      [ "user1"; "user2" ]
  in
  ignore (Kernel.run kernel ~max_steps:2_000_000 () : Kernel.run_result);
  List.iter
    (fun ((p : Process.t), result_va) ->
      reported :=
        (p.Process.pid, Uldma_workload.Stub_loop.read_successes kernel p ~result_va) :: !reported)
    users;
  let report = Oracle.check ~kernel ~intents:!intents ~reported_successes:!reported in
  if not (Oracle.ok report) then Alcotest.failf "%a" Oracle.pp_report report;
  checki "40 transfers" 40 (List.length (Engine.transfers (Kernel.engine kernel)))

let test_campaign_ext_shadow_two_users () =
  let config =
    {
      Kernel.default_config with
      Kernel.mechanism = Engine.Ext_shadow;
      ram_size = 64 * Uldma_mem.Layout.page_size;
      sched = Sched.Random_preempt { probability = 0.3; seed = 5 };
    }
  in
  let kernel = Kernel.create config in
  let mech = Uldma.Api.find_exn "ext-shadow" in
  let finished = ref [] in
  List.iter
    (fun name ->
      let p = Kernel.spawn kernel ~name ~program:[||] () in
      let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
      let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
      let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
      let prepared =
        mech.Uldma.Mech.prepare kernel p ~src:{ Uldma.Mech.vaddr = src; pages = 1 }
          ~dst:{ Uldma.Mech.vaddr = dst; pages = 1 }
      in
      Process.set_program p
        (Uldma_workload.Stub_loop.build_repeat ~n:20 ~vsrc:src ~vdst:dst ~size:128 ~result_va
           ~emit_dma:prepared.Uldma.Mech.emit_dma);
      finished := (p, result_va) :: !finished)
    [ "user1"; "user2"; "user3" ];
  ignore (Kernel.run kernel ~max_steps:2_000_000 () : Kernel.run_result);
  List.iter
    (fun ((p : Process.t), result_va) ->
      checki
        (p.Process.name ^ " all succeeded")
        20
        (Uldma_workload.Stub_loop.read_successes kernel p ~result_va))
    !finished;
  checki "60 transfers" 60 (List.length (Engine.transfers (Kernel.engine kernel)))

(* ------------------------------------------------------------------ *)
(* Campaign engine: cross-candidate shared memoization *)

module Synth = Uldma_workload.Synth
module Campaign = Uldma_verify.Campaign

let canon_result (r : _ Explorer.result) =
  (r.Explorer.paths, r.Explorer.truncated, canon_violations r)

(* Shared-memo exploration must be warmth-independent: explore a
   randomly mutated accomplice program against a memo pre-warmed by its
   sibling candidates and cold in a private table — identical path
   counts and violation lists. Programs are drawn from the raw (not
   canonicalised) grammar, so the memo also sees symmetric duplicates. *)
let campaign_shared_vs_cold =
  let gen_ops =
    QCheck2.Gen.(
      list_size (int_range 1 3)
        (map2
           (fun store page -> if store then Synth.S page else Synth.L page)
           bool (int_range 0 1)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"campaign: shared-memo vs cold equivalence" ~count:12
       ~print:(fun (a, b) -> Synth.mnemonic a ^ " / " ^ Synth.mnemonic b)
       (QCheck2.Gen.pair gen_ops gen_ops)
       (fun (warm_ops, ops) ->
         let base = Synth.make_base (Synth.Rep Seq_matcher.Five) in
         let s = Synth.base_scenario base in
         let pids = Scenario.explore_pids s in
         let check = Scenario.oracle_check s in
         let baseline = s.Scenario.kernel in
         (* candidates snapshot the base: build them sequentially *)
         let warm = Synth.candidate base warm_ops in
         let cand = Synth.candidate base ops in
         let cold =
           Explorer.explore ~root:cand.Campaign.c_root ~pids ~check ()
         in
         let sm = Explorer.create_shared ~locked:false () in
         Explorer.bump_generation sm;
         ignore
           (Explorer.explore ~root:warm.Campaign.c_root ~pids ~baseline ~shared:sm
              ?key_tag:warm.Campaign.c_key_tag ~check ()
             : _ Explorer.result);
         let shared =
           Explorer.explore ~root:cand.Campaign.c_root ~pids ~baseline ~shared:sm
             ?key_tag:cand.Campaign.c_key_tag ~check ()
         in
         canon_result shared = canon_result cold))

(* Campaign.run is deterministic in --jobs: the per-candidate results
   of the slots=2 family agree at jobs 1, 2 and 4, and warm-starting
   shows up as cross-candidate hits. *)
let test_campaign_jobs_determinism () =
  let run jobs =
    let cr = Synth.run_cell ~slots:2 ~jobs (Synth.Rep Seq_matcher.Five) in
    (Array.map canon_result cr.Synth.cr_results, cr.Synth.cr_stats, cr.Synth.cr_cell)
  in
  let r1, stats1, cell1 = run 1 in
  let r2, _, cell2 = run 2 in
  let r4, _, cell4 = run 4 in
  checki "family size" 10 (Array.length r1);
  checkb "jobs=2 identical to jobs=1" true (r1 = r2);
  checkb "jobs=4 identical to jobs=1" true (r1 = r4);
  Alcotest.(check string) "catalogue row identical at jobs 2" (Synth.catalogue_row cell1)
    (Synth.catalogue_row cell2);
  Alcotest.(check string) "catalogue row identical at jobs 4" (Synth.catalogue_row cell1)
    (Synth.catalogue_row cell4);
  checkb "cross-candidate memo hits recorded" true (stats1.Campaign.g_hits > 0);
  checkb "outer-level split engaged" true
    (let outer, inner = Campaign.split_jobs ~jobs:4 ~candidates:10 in
     outer = 4 && inner = 1)

(* Satellite: Memo.Persist.save must merge, not clobber. Two sections
   written through separate save calls both survive, and two domains
   saving different sections concurrently (the campaign shape: several
   scenarios finishing at once) lose neither. *)
let test_memo_persist_concurrent_save () =
  let module Persist = Uldma_verify.Memo.Persist in
  let file = Filename.temp_file "uldma_memo" ".bin" in
  Sys.remove file;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ file; file ^ ".lock" ])
    (fun () ->
      let entry n = [ (Printf.sprintf "k%d" n, { Persist.p_paths = n; p_stuck = 0 }) ] in
      (* sequential merge-on-save: section "b" must not clobber "a" *)
      Persist.save ~file ~scenario:"a" ~net:"null" ~root:1L (entry 1);
      Persist.save ~file ~scenario:"b" ~net:"null" ~root:2L (entry 2);
      checkb "first section survives a later save" true
        (Persist.load ~file ~scenario:"a" ~net:"null" ~root:1L <> None);
      checkb "second section present" true
        (Persist.load ~file ~scenario:"b" ~net:"null" ~root:2L <> None);
      (* concurrent saves of distinct sections: both must survive *)
      let domains =
        List.init 4 (fun i ->
            Domain.spawn (fun () ->
                let scenario = Printf.sprintf "conc%d" i in
                Persist.save ~file ~scenario ~net:"null" ~root:(Int64.of_int (10 + i))
                  (entry (10 + i))))
      in
      List.iter Domain.join domains;
      List.iteri
        (fun i () ->
          let scenario = Printf.sprintf "conc%d" i in
          match Persist.load ~file ~scenario ~net:"null" ~root:(Int64.of_int (10 + i)) with
          | None -> Alcotest.failf "concurrent section %s lost" scenario
          | Some tbl -> checki (scenario ^ " intact") 1 (Hashtbl.length tbl))
        [ (); (); (); () ];
      checkb "earlier sections still alive after the race" true
        (Persist.load ~file ~scenario:"a" ~net:"null" ~root:1L <> None
        && Persist.load ~file ~scenario:"b" ~net:"null" ~root:2L <> None))

let () =
  Alcotest.run "verify"
    [
      ( "oracle",
        [
          Alcotest.test_case "accepts clean run" `Quick test_oracle_accepts_clean_run;
          Alcotest.test_case "flags missing intent" `Quick test_oracle_flags_missing_intent;
          Alcotest.test_case "flags phantom success" `Quick test_oracle_flags_phantom;
          Alcotest.test_case "flags lost transfer" `Quick test_oracle_flags_lost;
          Alcotest.test_case "flags rights violation" `Quick test_oracle_flags_rights_violation;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "Fig. 5 on rep-args-3" `Quick test_fig5_attack_reproduces;
          Alcotest.test_case "Fig. 6 on rep-args-4" `Quick test_fig6_attack_reproduces;
          Alcotest.test_case "shrimp-2 race, unmodified kernel" `Quick
            test_shrimp2_race_unmodified_kernel;
          Alcotest.test_case "shrimp-2 race, hook installed" `Quick test_shrimp2_race_with_hook;
          Alcotest.test_case "flash race, unmodified kernel" `Quick
            test_flash_race_unmodified_kernel;
          Alcotest.test_case "flash race, hook installed" `Quick test_flash_race_with_hook;
          Alcotest.test_case "ext-stateless race safe, unmodified kernel" `Quick
            test_ext_stateless_race_safe;
          Alcotest.test_case "rep-args-5 resists Fig. 5 schedule" `Quick
            test_rep5_resists_fig5_schedule;
          Alcotest.test_case "timeline reproduces Fig. 5 diagram" `Quick
            test_timeline_reproduces_fig5;
          Alcotest.test_case "timeline labels" `Quick test_timeline_labels;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "rep-5 safe under all schedules" `Slow
            test_explorer_rep5_safe_all_schedules;
          Alcotest.test_case "rep-3: finds Fig. 5" `Quick test_explorer_rep3_finds_fig5;
          Alcotest.test_case "rep-4: finds Fig. 6" `Quick test_explorer_rep4_finds_fig6;
          Alcotest.test_case "rep-5 resists store splice" `Slow
            test_explorer_rep5_resists_store_splice;
          Alcotest.test_case "contested: ext-shadow/key/pal/iommu/capio safe" `Slow
            test_explorer_contested_mechanisms_safe;
          Alcotest.test_case "capio launder rejected (concrete run)" `Quick
            test_capio_launder_rejected_concrete;
          Alcotest.test_case "capio launder rejected after victim exit" `Quick
            test_capio_launder_rejected_after_victim_exit;
          Alcotest.test_case "capio launder safe under all schedules" `Quick
            test_explorer_capio_launder_safe;
          Alcotest.test_case "unmap revokes capabilities" `Quick test_kernel_unmap_revokes_caps;
          Alcotest.test_case "grant refuses bad ranges" `Quick test_kernel_grant_rejects_bad_ranges;
          Alcotest.test_case "violating schedule recorded" `Quick test_explorer_schedules_recorded;
          Alcotest.test_case "root untouched" `Quick test_explorer_root_untouched;
          Alcotest.test_case "max_paths truncates" `Quick test_explorer_max_paths_truncates;
          Alcotest.test_case "stuck leg prunes branch only" `Quick
            test_explorer_stuck_leg_prunes_branch_only;
          Alcotest.test_case "dedup on/off equivalence" `Slow test_explorer_dedup_equivalence;
          Alcotest.test_case "jobs determinism" `Slow test_explorer_jobs_determinism;
          Alcotest.test_case "dedup reduces states" `Slow test_explorer_dedup_reduces_states;
          Alcotest.test_case "jobs: stuck legs + violation order" `Slow
            test_explorer_jobs_stuck_and_violation_order;
          Alcotest.test_case "bounded memo equivalence" `Slow
            test_explorer_bounded_memo_equivalence;
          Alcotest.test_case "memo file warm start" `Slow test_explorer_memo_file_warm_start;
          Alcotest.test_case "3-process determinism" `Slow test_explorer_3proc_determinism;
          Alcotest.test_case "truncated parallel leases" `Slow
            test_explorer_truncated_parallel_leases;
          Alcotest.test_case "rep5 vs two colluders: victim safe" `Slow
            test_explorer_rep5_contested3_victim_safe;
          Alcotest.test_case "memo shard balance" `Quick test_memo_shard_balance;
          Alcotest.test_case "paranoid vs fingerprint keying" `Slow
            test_explorer_paranoid_equivalence;
          Alcotest.test_case "memo length counts distinct keys" `Quick test_memo_length_distinct;
          Alcotest.test_case "persist tmp file is pid-unique" `Quick test_memo_persist_unique_tmp;
          explorer_fp_iff_encoding;
          Alcotest.test_case "kernel fingerprint stability" `Quick
            test_kernel_fingerprint_stability;
          Alcotest.test_case "advance_one_leg" `Quick test_advance_one_leg;
          Alcotest.test_case "kernel snapshot isolation" `Quick test_kernel_snapshot_isolation;
        ] );
      ( "campaign-engine",
        [
          campaign_shared_vs_cold;
          Alcotest.test_case "jobs determinism + catalogue stability" `Slow
            test_campaign_jobs_determinism;
          Alcotest.test_case "persist concurrent save merges" `Quick
            test_memo_persist_concurrent_save;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "rep-5 random schedules" `Slow test_campaign_rep5_random_schedules;
          Alcotest.test_case "rep-3 eventually broken" `Slow test_campaign_rep3_eventually_broken;
          Alcotest.test_case "key-based multi-user" `Quick test_campaign_key_based_two_users;
          Alcotest.test_case "ext-shadow multi-user" `Quick test_campaign_ext_shadow_two_users;
        ] );
    ]
