(* Tests for the observability layer: trace sink, counters, exporters,
   and the Session front-end that surfaces them. *)

open Uldma_obs
module Session = Uldma.Session

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let ev i = Trace.Engine_match { step = i }

let emit_n sink n =
  for i = 1 to n do
    Trace.emit sink ~at:(i * 10) ~machine:0 ~pid:1 (ev i)
  done

let steps sink =
  List.filter_map
    (fun (r : Trace.record) ->
      match r.Trace.kind with Trace.Engine_match { step } -> Some step | _ -> None)
    (Trace.events sink)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_basics () =
  let sink = Trace.create () in
  checkb "created enabled" true (Trace.enabled sink);
  emit_n sink 3;
  checki "three events" 3 (Trace.total sink);
  checki "none dropped" 0 (Trace.dropped sink);
  (match Trace.events sink with
  | [ a; _; c ] ->
    checki "oldest first" 10 a.Trace.at;
    checki "newest last" 30 c.Trace.at;
    checki "machine stamped" 0 a.Trace.machine;
    checki "pid stamped" 1 c.Trace.pid
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l));
  Trace.clear sink;
  checki "cleared" 0 (Trace.total sink)

let test_trace_disabled_noop () =
  let sink = Trace.create () in
  Trace.set_enabled sink false;
  emit_n sink 100;
  checki "disabled: nothing recorded" 0 (Trace.total sink);
  checki "disabled: no machine ids" 0 (Trace.register_machine sink);
  checki "disabled: machine id stays 0" 0 (Trace.register_machine sink);
  Trace.set_enabled sink true;
  emit_n sink 1;
  checki "re-enabled: records again" 1 (Trace.total sink);
  (* the null sink is permanently off *)
  checki "null records nothing" 0 (Trace.total Trace.null);
  Trace.emit Trace.null ~at:0 ~machine:0 ~pid:0 (ev 1);
  checki "null still empty" 0 (Trace.total Trace.null);
  Alcotest.check_raises "null cannot be enabled"
    (Invalid_argument "Trace.set_enabled: the null sink stays disabled") (fun () ->
      Trace.set_enabled Trace.null true)

let test_trace_ring_wraparound () =
  let sink = Trace.create ~cap:8 () in
  emit_n sink 8;
  checki "at cap: nothing dropped" 0 (Trace.dropped sink);
  Alcotest.(check (list int)) "at cap: all retained" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (steps sink);
  emit_n sink 3;
  (* emit_n restarts at 1, so the window is 4..8 then 1..3 *)
  checki "total keeps counting" 11 (Trace.total sink);
  checki "three dropped" 3 (Trace.dropped sink);
  Alcotest.(check (list int)) "window slid, oldest first" [ 4; 5; 6; 7; 8; 1; 2; 3 ] (steps sink)

let test_trace_machine_registry () =
  let sink = Trace.create () in
  checki "first machine" 0 (Trace.register_machine sink);
  checki "second machine" 1 (Trace.register_machine sink);
  checki "third machine" 2 (Trace.register_machine sink)

let test_trace_ambient () =
  checkb "default ambient is null" true (Trace.ambient () == Trace.null);
  let sink = Trace.create () in
  Trace.with_ambient sink (fun () ->
      checkb "installed inside the scope" true (Trace.ambient () == sink));
  checkb "restored after the scope" true (Trace.ambient () == Trace.null);
  (try Trace.with_ambient sink (fun () -> failwith "boom") with Failure _ -> ());
  checkb "restored after an exception" true (Trace.ambient () == Trace.null)

let test_trace_absorb () =
  (* the parallel explorer merges worker-local sinks into the root one *)
  let dst = Trace.create () and src = Trace.create () in
  emit_n dst 2;
  emit_n src 3;
  Trace.absorb dst src;
  checki "totals added" 5 (Trace.total dst);
  Alcotest.(check (list int)) "events appended in order" [ 1; 2; 1; 2; 3 ] (steps dst);
  checki "source unchanged" 3 (Trace.total src);
  (* a disabled destination drops the absorbed events but still counts
     them, like any other emission race with set_enabled *)
  let off = Trace.create () in
  Trace.set_enabled off false;
  Trace.absorb off src;
  checkb "null sink refuses" true
    (try
       Trace.absorb Trace.null src;
       false
     with Invalid_argument _ -> true)

let test_trace_explorer_kinds () =
  let sink = Trace.create () in
  Trace.emit sink ~at:0 ~machine:0 ~pid:(-1) (Trace.Explorer_steal { depth = 2 });
  Trace.emit sink ~at:1 ~machine:0 ~pid:(-1) (Trace.Explorer_dedup { depth = 3 });
  (match Trace.events sink with
  | [ a; b ] ->
    Alcotest.(check string) "steal name" "explorer_steal" (Trace.kind_name a.Trace.kind);
    Alcotest.(check string) "dedup name" "explorer_dedup" (Trace.kind_name b.Trace.kind);
    Alcotest.(check string) "steal layer" "verify"
      (Trace.layer_name (Trace.layer_of_kind a.Trace.kind));
    Alcotest.(check string) "dedup layer" "verify"
      (Trace.layer_name (Trace.layer_of_kind b.Trace.kind))
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  let rendered = Format.asprintf "%a" Trace.pp_record (List.hd (Trace.events sink)) in
  checkb "args rendered" true (contains rendered "depth=2")

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counters_basic () =
  let c = Counters.create () in
  checki "untouched counter reads 0" 0 (Counters.value c "os.syscalls");
  Counters.incr c "os.syscalls";
  Counters.incr c "os.syscalls";
  Counters.add c "bus.busy_ps" 500;
  checki "incr twice" 2 (Counters.value c "os.syscalls");
  checki "add" 500 (Counters.value c "bus.busy_ps");
  Alcotest.(check (list string))
    "names sorted" [ "bus.busy_ps"; "os.syscalls" ] (Counters.counter_names c)

let test_counters_histogram () =
  let c = Counters.create () in
  Alcotest.(check bool) "empty histogram" true (Counters.summarize c "lat" = None);
  List.iter (Counters.observe c "lat") [ 1; 2; 3; 100; (-5) ];
  (match Counters.summarize c "lat" with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
    checki "count" 5 s.Counters.count;
    checki "min clamps negatives to 0" 0 s.Counters.min;
    checki "max" 100 s.Counters.max;
    checki "sum" 106 s.Counters.sum);
  checkb "buckets non-empty ascending" true
    (let b = Counters.buckets c "lat" in
     b <> [] && List.sort compare b = b)

let test_counters_merge_rows () =
  let a = Counters.create () and b = Counters.create () in
  Counters.incr a "x";
  Counters.add b "x" 4;
  Counters.observe b "h" 7;
  Counters.merge_into ~dst:a b;
  checki "merged counter" 5 (Counters.value a "x");
  checkb "merged histogram" true (Counters.summarize a "h" <> None);
  checkb "rows include both" true (List.length (Counters.rows a) = 2)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let traced_sink () =
  let sink = Trace.create () in
  let m = Trace.register_machine sink in
  Trace.emit sink ~at:100 ~machine:m ~pid:1 (Trace.Syscall_enter { sysno = 3 });
  (* a transfer whose completion is stamped in the future, before an
     earlier instant event: the Chrome exporter must re-sort *)
  Trace.emit sink ~at:900 ~machine:m ~pid:1
    (Trace.Transfer_complete { src = 0x2000; dst = 0x4000; size = 64 });
  Trace.emit sink ~at:200 ~machine:m ~pid:1
    (Trace.Transfer_start { src = 0x2000; dst = 0x4000; size = 64; duration = 700 });
  Trace.emit sink ~at:300 ~machine:m ~pid:1 (Trace.Syscall_exit { sysno = 3 });
  sink

let test_export_jsonl () =
  let sink = traced_sink () in
  let path = Filename.temp_file "uldma_test" ".jsonl" in
  Export.to_file `Jsonl path sink;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  checki "one line per event" 4 (List.length lines);
  List.iter
    (fun l ->
      checkb "line looks like a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  checkb "emission order preserved" true
    (match lines with first :: _ -> contains first "syscall_enter" | [] -> false)

let test_export_chrome_sorted () =
  let sink = traced_sink () in
  let path = Filename.temp_file "uldma_test" ".json" in
  Export.to_file `Chrome path sink;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  checkb "has traceEvents array" true (contains s "\"traceEvents\"");
  (* the future-stamped completion must appear last despite being
     emitted second *)
  let pos_of needle =
    let nn = String.length needle in
    let rec go i =
      if i + nn > String.length s then Alcotest.failf "missing %s" needle
      else if String.sub s i nn = needle then i
      else go (i + 1)
    in
    go 0
  in
  checkb "ts-sorted: start before complete" true
    (pos_of "transfer_start" < pos_of "transfer_complete");
  checkb "ts-sorted: syscall_exit before complete" true
    (pos_of "syscall_exit" < pos_of "transfer_complete");
  checkb "transfer_start is a duration event" true (contains s "\"ph\":\"X\"")

let test_export_summary () =
  let sink = traced_sink () in
  let rendered = Uldma_util.Tbl.render (Export.summary sink) in
  List.iter
    (fun needle ->
      checkb (needle ^ " in summary") true (contains rendered needle))
    [ "os"; "dma"; "syscall_enter"; "transfer_start" ]

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_quickstart () =
  let s = Session.create ~mech:"ext-shadow" () in
  let p = Session.process s ~name:"app" ~src_pages:1 ~dst_pages:1 () in
  Session.dma_once s p;
  Session.run_exn s ~max_steps:100_000;
  checki "one success" 1 (Session.successes s p);
  checkb "status non-negative" true (Session.last_status s p >= 0);
  let m = Session.metrics s in
  checkb "os.instructions counted" true (Counters.value m "os.instructions" > 0);
  checkb "dma.transfers_started counted" true (Counters.value m "dma.transfers_started" = 1)

let test_session_loop_and_unknown_mech () =
  let s = Session.create ~mech:"rep-args" () in
  let p = Session.process s ~name:"looper" () in
  Session.dma_stub ~iterations:25 s p;
  Session.run_exn s ~max_steps:1_000_000;
  checki "all iterations succeed" 25 (Session.successes s p);
  Alcotest.check_raises "unknown mechanism"
    (Invalid_argument "Api.find_exn: unknown mechanism \"no-such-mech\"") (fun () ->
      ignore (Session.create ~mech:"no-such-mech" () : Session.t))

let test_session_traced () =
  let sink = Trace.create () in
  Trace.set_enabled sink true;
  let s = Session.create ~mech:"ext-shadow" ~trace:sink () in
  let p = Session.process s ~name:"traced" ~src_pages:1 ~dst_pages:1 () in
  Session.dma_once s p;
  Session.run_exn s ~max_steps:100_000;
  checkb "session reports its sink" true (Session.trace s == sink);
  checkb "events recorded" true (Trace.total sink > 0);
  let kinds =
    List.sort_uniq compare (List.map (fun r -> Trace.kind_name r.Trace.kind) (Trace.events sink))
  in
  List.iter
    (fun k -> checkb (k ^ " present") true (List.mem k kinds))
    [ "instr_retired"; "uncached_access"; "transfer_start"; "engine_decode" ]

let test_session_untraced_is_silent () =
  (* no ambient sink, no ?trace: the machine runs on the null sink *)
  let s = Session.create ~mech:"ext-shadow" () in
  let p = Session.process s ~name:"silent" ~src_pages:1 ~dst_pages:1 () in
  Session.dma_once s p;
  Session.run_exn s ~max_steps:100_000;
  checkb "null sink" true (Session.trace s == Trace.null);
  checki "nothing recorded" 0 (Trace.total Trace.null)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "machine registry" `Quick test_trace_machine_registry;
          Alcotest.test_case "ambient install/restore" `Quick test_trace_ambient;
          Alcotest.test_case "absorb merges sinks" `Quick test_trace_absorb;
          Alcotest.test_case "explorer kinds" `Quick test_trace_explorer_kinds;
        ] );
      ( "counters",
        [
          Alcotest.test_case "counters" `Quick test_counters_basic;
          Alcotest.test_case "histograms" `Quick test_counters_histogram;
          Alcotest.test_case "merge and rows" `Quick test_counters_merge_rows;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick test_export_jsonl;
          Alcotest.test_case "chrome sorted" `Quick test_export_chrome_sorted;
          Alcotest.test_case "summary" `Quick test_export_summary;
        ] );
      ( "session",
        [
          Alcotest.test_case "quickstart" `Quick test_session_quickstart;
          Alcotest.test_case "loop + unknown mech" `Quick test_session_loop_and_unknown_mech;
          Alcotest.test_case "traced session" `Quick test_session_traced;
          Alcotest.test_case "untraced is silent" `Quick test_session_untraced_is_silent;
        ] );
    ]
