(* Tests for the cluster-service layer: the percentile reporter, the
   N-node mesh and its Session front door, the deprecated duplex-era
   wrappers, and the KV load generator's determinism and batching
   behaviour. *)

module Percentile = Uldma_obs.Percentile
module Backend = Uldma_net.Backend
module Kv = Uldma_workload.Kv_load
module Kernel = Uldma_os.Kernel

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Percentile *)

let test_percentile_exact () =
  (* sub_bits = 10: every value up to 1024 lands in a width-1 bucket,
     so nearest-rank percentiles over 1..1000 are exact *)
  let t = Percentile.create ~sub_bits:10 () in
  checki "empty p50" 0 (Percentile.percentile t 0.50);
  checki "empty count" 0 (Percentile.count t);
  for v = 1 to 1000 do
    Percentile.record t v
  done;
  checki "count" 1000 (Percentile.count t);
  checki "total" 500_500 (Percentile.total t);
  checki "min" 1 (Percentile.min_value t);
  checki "max" 1000 (Percentile.max_value t);
  checki "p50" 500 (Percentile.percentile t 0.50);
  checki "p99" 990 (Percentile.percentile t 0.99);
  checki "p999" 999 (Percentile.percentile t 0.999);
  checki "p100 = max" 1000 (Percentile.percentile t 1.0);
  checki "p0 = rank 1" 1 (Percentile.percentile t 0.0);
  Alcotest.(check (float 1e-9)) "mean" 500.5 (Percentile.mean t)

let test_percentile_negative_clamp () =
  let t = Percentile.create () in
  Percentile.record t (-5);
  checki "clamped to 0" 0 (Percentile.max_value t);
  checki "p50 of {0}" 0 (Percentile.percentile t 0.5)

let test_percentile_merge () =
  let a = Percentile.create () and b = Percentile.create () in
  for v = 1 to 100 do
    Percentile.record a v
  done;
  for v = 101 to 200 do
    Percentile.record b v
  done;
  Percentile.merge_into ~dst:a b;
  checki "merged count" 200 (Percentile.count a);
  checki "merged max" 200 (Percentile.max_value a);
  checki "merged min" 1 (Percentile.min_value a);
  checki "merged total" 20_100 (Percentile.total a);
  let t16 = Percentile.create ~sub_bits:16 () in
  Alcotest.check_raises "sub_bits mismatch" (Invalid_argument "Percentile.merge_into: sub_bits mismatch")
    (fun () -> Percentile.merge_into ~dst:a t16)

(* every recorded value quantises to a bucket whose bounds bracket it
   and whose upper bound overstates it by at most 2^-sub_bits *)
let prop_percentile_rounding =
  qtest "bucket bounds bracket within 2^-sub_bits"
    QCheck2.Gen.(int_range 0 (1 lsl 40))
    (fun v ->
      let t = Percentile.create () in
      let lo, hi = Percentile.bucket_bounds t v in
      let eps = Percentile.max_relative_error t in
      lo <= v && v <= hi && float_of_int hi <= (float_of_int (max v 1) *. (1.0 +. eps)))

(* a percentile estimate never understates and overstates by at most
   the quantisation bound (single-value histogram: p100 is clamped to
   the exact max; interior ranks report bucket upper bounds) *)
let prop_percentile_estimate =
  qtest "estimate in [exact, exact*(1+eps)]"
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 1_000_000))
    (fun vs ->
      let t = Percentile.create () in
      List.iter (Percentile.record t) vs;
      let sorted = List.sort compare vs in
      let n = List.length sorted in
      let eps = Percentile.max_relative_error t in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
          let exact = List.nth sorted (min (rank - 1) (n - 1)) in
          let est = Percentile.percentile t q in
          exact <= est && float_of_int est <= (float_of_int (max exact 1) *. (1.0 +. eps)))
        [ 0.5; 0.9; 0.99; 0.999 ])

(* ------------------------------------------------------------------ *)
(* Backend.of_string validation (the CLI's --net / --tick-ps gate) *)

let test_backend_of_string_errors () =
  (match Backend.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error e ->
    checkb "names the offender" true (contains e "bogus");
    checkb "lists valid spellings" true
      (contains e "atm155" && contains e "atm622" && contains e "gigabit" && contains e "hic"
      && contains e "null"));
  (match Backend.of_string ~tick_ps:0 "atm155" with
  | Ok _ -> Alcotest.fail "tick_ps 0 accepted"
  | Error e -> checkb "tick 0 rejected" true (contains e "positive"));
  (match Backend.of_string ~tick_ps:(-5) "atm155" with
  | Ok _ -> Alcotest.fail "negative tick_ps accepted"
  | Error e -> checkb "negative tick rejected" true (contains e "positive"));
  match Backend.of_string ~tick_ps:1000 "gigabit" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid spelling rejected: %s" e

(* ------------------------------------------------------------------ *)
(* The N-node mesh *)

(* a 3-node cluster where node 0 writes into node 2 explicitly (not
   its successor): the node field in the remote offset must route the
   packets across the mesh *)
let test_three_node_explicit_dst () =
  let open Uldma_os in
  let module C = Uldma.Cluster in
  let cluster = Uldma.Session.cluster_exn ~net:"gigabit" ~nodes:3 () in
  checki "three nodes" 3 (C.nodes cluster);
  let words = 16 in
  let src = 0 and dst = 2 in
  let p = Kernel.spawn (C.node cluster src) ~name:"xwrite" ~program:[||] () in
  let peer_ram = (Kernel.config (C.node cluster dst)).Kernel.ram_size in
  let target = peer_ram - Uldma_mem.Layout.page_size in
  let vaddr =
    C.map_remote cluster ~src ~dst p ~remote_paddr:target ~n:1
      ~perms:Uldma_mem.Perms.read_write
  in
  let open Uldma_cpu in
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "loop" in
  Asm.li asm 10 vaddr;
  Asm.li asm 11 words;
  Asm.li asm 12 0;
  Asm.label asm loop;
  Asm.store asm ~base:10 ~off:0 12;
  Asm.add asm 10 10 (Isa.Imm 8);
  Asm.add asm 12 12 (Isa.Imm 1);
  Asm.blt asm 12 11 loop;
  Asm.halt asm;
  Process.set_program p (Asm.assemble asm);
  (match C.run cluster () with
  | C.All_exited -> ()
  | C.Max_steps | C.Predicate -> Alcotest.fail "cluster did not converge");
  checki "all bytes landed on node 2" (words * 8) (C.write_bytes_into cluster 2);
  checki "nothing landed on node 1" 0 (C.write_bytes_into cluster 1);
  let ram = Kernel.ram (C.node cluster dst) in
  for i = 0 to words - 1 do
    checki
      (Printf.sprintf "word %d" i)
      i
      (Uldma_mem.Phys_mem.load_word ram (target + (8 * i)))
  done

let test_cluster_bounds () =
  let config = Kernel.default_config in
  Alcotest.check_raises "1 node rejected"
    (Invalid_argument "Cluster.create: nodes must be in 2..62 (got 1)") (fun () ->
      ignore (Uldma.Cluster.create ~nodes:1 ~config () : Uldma.Cluster.t));
  Alcotest.check_raises "63 nodes rejected"
    (Invalid_argument "Cluster.create: nodes must be in 2..62 (got 63)") (fun () ->
      ignore (Uldma.Cluster.create ~nodes:63 ~config () : Uldma.Cluster.t));
  checkb "remote_paddr rejects oversized offsets" true
    (try
       ignore (Uldma.Cluster.remote_paddr ~node:0 (1 lsl 26) : int);
       false
     with Invalid_argument _ -> true)

let test_session_cluster_errors () =
  let err = function Ok _ -> Alcotest.fail "expected Error" | Error e -> e in
  let e = err (Uldma.Session.cluster ~net:"token-ring" ~nodes:3 ()) in
  checkb "bad net names spellings" true (contains e "token-ring" && contains e "atm155");
  let e = err (Uldma.Session.cluster ~nodes:1 ()) in
  checkb "bad node count" true (contains e "nodes");
  let e = err (Uldma.Session.cluster ~mech:"warp-drive" ~nodes:2 ()) in
  checkb "bad mech lists mechanisms" true (contains e "warp-drive" && contains e "ext-shadow");
  let e = err (Uldma.Session.cluster ~tick_ps:0 ~nodes:2 ()) in
  checkb "bad tick" true (contains e "positive");
  match Uldma.Session.cluster ~net:"null" ~mech:"ext-shadow" ~nodes:2 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid cluster rejected: %s" e

(* the duplex-era wrappers must be identities onto the 2-node mesh *)
let test_legacy_wrapper_identity () =
  let module SC = Uldma_sim.Cluster in
  let cluster = SC.create ~link:Uldma_net.Link.gigabit ~config:Kernel.default_config in
  checki "legacy create is 2 nodes" 2 (SC.nodes cluster);
  checkb "sender is node 0" true (SC.sender cluster == SC.node cluster 0);
  checkb "receiver_ram is node 1's RAM" true
    (SC.receiver_ram cluster == Kernel.ram (SC.node cluster 1));
  checkb "netif is the 0->1 channel" true
    (SC.netif cluster == SC.mesh_netif cluster ~src:0 ~dst:1)

(* ------------------------------------------------------------------ *)
(* KV load generation *)

let small_params =
  { Kv.default_params with Kv.nodes = 3; clients = 30; transfers = 3_000; seed = 11 }

let cal () =
  match Kv.calibrate ~iterations:64 small_params.Kv.mech with
  | Ok c -> c
  | Error e -> Alcotest.failf "calibrate failed: %s" e

let test_calibrate () =
  let c = cal () in
  checkb "doorbell cost positive" true (c.Kv.initiation_ps > 0);
  checkb "descriptor cost positive" true (c.Kv.submit_ps > 0);
  checkb "doorbell dwarfs descriptor" true (c.Kv.initiation_ps > c.Kv.submit_ps);
  match Kv.calibrate "warp-drive" with
  | Ok _ -> Alcotest.fail "unknown mechanism accepted"
  | Error e -> checkb "unknown mechanism named" true (contains e "warp-drive")

let test_kv_determinism () =
  let cal = cal () in
  let net =
    match Backend.of_string "atm155" with Ok b -> b | Error e -> Alcotest.failf "%s" e
  in
  let a = Kv.run small_params ~cal ~net and b = Kv.run small_params ~cal ~net in
  checki "same transfers" a.Kv.transfers b.Kv.transfers;
  checki "same GET split" a.Kv.gets b.Kv.gets;
  checki "same doorbells" a.Kv.doorbells b.Kv.doorbells;
  checki "same makespan" a.Kv.sim_ps b.Kv.sim_ps;
  checki "same wire bytes" a.Kv.wire_bytes b.Kv.wire_bytes;
  checki "same p999" (Percentile.percentile a.Kv.latency 0.999)
    (Percentile.percentile b.Kv.latency 0.999);
  let c = Kv.run { small_params with Kv.seed = 12 } ~cal ~net in
  checkb "different seed changes the trace" true
    (c.Kv.sim_ps <> a.Kv.sim_ps || c.Kv.gets <> a.Kv.gets)

let test_kv_accounting () =
  let cal = cal () in
  let net =
    match Backend.of_string "gigabit" with Ok b -> b | Error e -> Alcotest.failf "%s" e
  in
  let r = Kv.run small_params ~cal ~net in
  checki "all transfers completed" small_params.Kv.transfers r.Kv.transfers;
  checki "GETs + PUTs = transfers" r.Kv.transfers (r.Kv.gets + r.Kv.puts);
  checki "latency samples = transfers" r.Kv.transfers (Percentile.count r.Kv.latency);
  checkb "batching amortises doorbells" true
    (r.Kv.doorbells < r.Kv.transfers && r.Kv.doorbells > 0);
  checkb "headers make wire > payload" true (r.Kv.wire_bytes > r.Kv.value_bytes);
  checkb "positive makespan" true (r.Kv.sim_ps > 0)

let test_kv_batching_speedup () =
  let cal = cal () in
  let net =
    match Backend.of_string "gigabit" with Ok b -> b | Error e -> Alcotest.failf "%s" e
  in
  let batch1 = Kv.run { small_params with Kv.batch = 1 } ~cal ~net in
  let batched = Kv.run small_params ~cal ~net in
  let sp = Kv.transfers_per_s batched /. Kv.transfers_per_s batch1 in
  checkb (Printf.sprintf "batch=%d beats batch=1 on gigabit (%.2fx)" small_params.Kv.batch sp)
    true (sp > 1.02)

let test_kv_validate () =
  let bad f = match Kv.validate_params f with Ok _ -> false | Error _ -> true in
  checkb "0 clients" true (bad { small_params with Kv.clients = 0 });
  checkb "0 transfers" true (bad { small_params with Kv.transfers = 0 });
  checkb "0 batch" true (bad { small_params with Kv.batch = 0 });
  checkb "0 window" true (bad { small_params with Kv.window = 0 });
  checkb "0 value size" true (bad { small_params with Kv.value_size = 0 });
  checkb "get_ratio > 1" true (bad { small_params with Kv.get_ratio = 1.5 });
  checkb "1 node" true (bad { small_params with Kv.nodes = 1 });
  checkb "good params pass" true
    (match Kv.validate_params small_params with Ok _ -> true | Error _ -> false)

let () =
  Alcotest.run "cluster"
    [
      ( "percentile",
        [
          Alcotest.test_case "exact on 1..1000" `Quick test_percentile_exact;
          Alcotest.test_case "negative clamp" `Quick test_percentile_negative_clamp;
          Alcotest.test_case "merge" `Quick test_percentile_merge;
          prop_percentile_rounding;
          prop_percentile_estimate;
        ] );
      ( "backend",
        [ Alcotest.test_case "of_string validation" `Quick test_backend_of_string_errors ] );
      ( "mesh",
        [
          Alcotest.test_case "3-node explicit destination" `Quick test_three_node_explicit_dst;
          Alcotest.test_case "bounds" `Quick test_cluster_bounds;
          Alcotest.test_case "session errors" `Quick test_session_cluster_errors;
          Alcotest.test_case "legacy wrappers" `Quick test_legacy_wrapper_identity;
        ] );
      ( "kv",
        [
          Alcotest.test_case "calibrate" `Quick test_calibrate;
          Alcotest.test_case "determinism" `Quick test_kv_determinism;
          Alcotest.test_case "accounting" `Quick test_kv_accounting;
          Alcotest.test_case "batching speedup" `Quick test_kv_batching_speedup;
          Alcotest.test_case "validate_params" `Quick test_kv_validate;
        ] );
    ]
