(* Golden-output regression tests.

   The simulator is fully deterministic (integer picosecond clock, no
   wall-clock or global Random anywhere), so the rendered experiment
   tables are bit-for-bit stable. These tests pin the attack
   reproductions and security tables against checked-in golden files;
   regenerate them with `dune exec tools/gen_golden.exe` after an
   intentional behaviour change, and review the diff. *)

let golden_ids =
  [
    "fig5_attack3";
    "fig6_attack4";
    "fig2_shrimp";
    "fig8_proof";
    "ablate_wbuf";
    "key_security";
    "crossover";
    "disk_vs_net";
  ]

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden id () =
  let expected = read_file (Filename.concat "golden" (id ^ ".txt")) in
  match Uldma_sim.Experiments.find id with
  | None -> Alcotest.failf "experiment %s missing from the registry" id
  | Some e ->
    let actual = Uldma_util.Tbl.render (e.Uldma_sim.Experiments.run ()) in
    if actual <> expected then
      Alcotest.failf
        "%s drifted from its golden output.\n--- expected ---\n%s\n--- actual ---\n%s\n(regenerate with `dune exec tools/gen_golden.exe` if intentional)"
        id expected actual

(* The Null net backend must reproduce the checked-in Fig. 8 table
   byte-for-byte: re-explore the three scenarios that now take a [?net]
   parameter, passing [Backend.null] explicitly, and compare each
   result against the corresponding row parsed back out of
   golden/fig8_proof.txt. This pins "timed backends change nothing
   unless asked for" at the level of the published numbers, not just
   the internal counters. *)

let fig8_rows () =
  let lines = String.split_on_char '\n' (read_file (Filename.concat "golden" "fig8_proof.txt")) in
  List.filter_map
    (fun line ->
      match String.split_on_char '|' line with
      | "" :: cells when List.length cells >= 5 ->
        let cells = List.map String.trim cells in
        Some (List.nth cells 0, (List.nth cells 1, List.nth cells 2, List.nth cells 3, List.nth cells 4))
      | _ -> None)
    lines

let test_null_matches_fig8 () =
  let module Scenario = Uldma_workload.Scenario in
  let module Explorer = Uldma_verify.Explorer in
  let rows = fig8_rows () in
  List.iter
    (fun (variant, build) ->
      let expected =
        match List.assoc_opt variant rows with
        | Some r -> r
        | None -> Alcotest.failf "row %S missing from golden/fig8_proof.txt" variant
      in
      let s : Scenario.t = build () in
      let r =
        Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
          ~max_paths:1_000_000 ~check:(Scenario.oracle_check s) ()
      in
      let actual =
        ( string_of_int r.Explorer.paths,
          string_of_int (List.length r.Explorer.violations),
          (if r.Explorer.truncated then "TRUNCATED" else "yes"),
          if r.Explorer.violations = [] then "SAFE under all schedules" else "VULNERABLE" )
      in
      if actual <> expected then
        let show (a, b, c, d) = Printf.sprintf "(%s, %s, %s, %s)" a b c d in
        Alcotest.failf "%s under the explicit Null backend: got %s, golden row says %s" variant
          (show actual) (show expected))
    [
      ("rep-args-3 (Fig. 5)", fun () -> Scenario.fig5 ~net:Uldma_net.Backend.null ());
      ("rep-args-5 (Fig. 7)", fun () -> Scenario.rep5 ~net:Uldma_net.Backend.null ());
      ("key-based, two tenants", fun () -> Scenario.key_contested ~net:Uldma_net.Backend.null ());
    ]

let () =
  Alcotest.run "golden"
    [
      ( "experiments",
        List.map (fun id -> Alcotest.test_case id `Slow (test_golden id)) golden_ids );
      ( "null-backend",
        [ Alcotest.test_case "explicit Null reproduces Fig. 8 rows" `Slow test_null_matches_fig8 ]
      );
    ]
