(* Tests for the bus library: clock, timing, write buffer, bus routing. *)

open Uldma_util
open Uldma_mem
open Uldma_bus

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock () =
  let c = Clock.create () in
  checki "starts at 0" 0 (Clock.now c);
  Clock.advance c 100;
  Clock.advance c 50;
  checki "accumulates" 150 (Clock.now c);
  let c2 = Clock.copy c in
  Clock.advance c2 10;
  checki "copy independent" 150 (Clock.now c)

(* ------------------------------------------------------------------ *)
(* Timing *)

let tm = Timing.alpha3000_300

let test_timing_cycles () =
  checki "cpu cycle" 6667 (Timing.cpu_cycle_ps tm);
  checki "bus cycle" 80_000 (Timing.bus_cycle_ps tm);
  checki "store crossing" (7 * 80_000) (Timing.uncached_ps tm Txn.Store);
  checki "load crossing" (5 * 80_000) (Timing.uncached_ps tm Txn.Load)

let test_timing_kernel_costs () =
  (* the Table 1 anchor: the empty syscall is ~15.3 us at 150 MHz *)
  let syscall_us = Units.to_us (Timing.syscall_ps tm) in
  checkb "syscall in 1000-5000 cycle range" true (syscall_us > 6.0 && syscall_us < 34.0);
  checkb "ctx switch positive" true (Timing.context_switch_ps tm > 0);
  checkb "pal cheaper than syscall" true (Timing.pal_call_ps tm < Timing.syscall_ps tm)

let test_timing_presets () =
  checki "pci33" 33_000_000 Timing.pci33.Timing.bus_hz;
  checki "pci66" 66_000_000 Timing.pci66.Timing.bus_hz;
  checkb "faster bus = cheaper crossing" true
    (Timing.uncached_ps Timing.pci66 Txn.Store < Timing.uncached_ps tm Txn.Store)

let test_timing_with () =
  let t2 = Timing.with_bus_hz tm 50_000_000 in
  checki "bus set" 50_000_000 t2.Timing.bus_hz;
  checki "cpu untouched" tm.Timing.cpu_hz t2.Timing.cpu_hz;
  let t3 = Timing.with_syscall_cycles tm 5000 in
  checki "syscall set" 5000 t3.Timing.syscall_cpu_cycles

(* ------------------------------------------------------------------ *)
(* Write buffer *)

let collect () =
  let out = ref [] in
  let emit ~paddr ~value = out := (paddr, value) :: !out in
  (out, emit)

let emitted out = List.rev !out

let test_wbuf_ordered_passthrough () =
  let wb = Write_buffer.create Write_buffer.Ordered in
  let out, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:1;
  Write_buffer.store wb ~emit ~paddr:16 ~value:2;
  Alcotest.(check (list (pair int int))) "immediate" [ (8, 1); (16, 2) ] (emitted out);
  checkb "nothing pending" true (Write_buffer.pending wb = []);
  checkb "loads go to bus" true (Write_buffer.load wb ~paddr:8 = `To_bus)

let bypass = Write_buffer.Bypass { forward = true; collapse = true }

let test_wbuf_bypass_buffers () =
  let wb = Write_buffer.create bypass in
  let out, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:1;
  Alcotest.(check (list (pair int int))) "nothing emitted" [] (emitted out);
  Alcotest.(check (list (pair int int))) "pending" [ (8, 1) ] (Write_buffer.pending wb)

let test_wbuf_collapse () =
  let wb = Write_buffer.create bypass in
  let out, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:1;
  Write_buffer.store wb ~emit ~paddr:8 ~value:2;
  Alcotest.(check (list (pair int int))) "collapsed" [ (8, 2) ] (Write_buffer.pending wb);
  Write_buffer.barrier wb ~emit;
  Alcotest.(check (list (pair int int))) "only latest value reaches the bus" [ (8, 2) ]
    (emitted out)

let test_wbuf_no_collapse_mode () =
  let wb = Write_buffer.create (Write_buffer.Bypass { forward = true; collapse = false }) in
  let out, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:1;
  Write_buffer.store wb ~emit ~paddr:8 ~value:2;
  Alcotest.(check (list (pair int int)))
    "both buffered" [ (8, 1); (8, 2) ] (Write_buffer.pending wb);
  ignore (emitted out)

let test_wbuf_forwarding () =
  let wb = Write_buffer.create bypass in
  let _, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:42;
  (match Write_buffer.load wb ~paddr:8 with
  | `Forwarded v -> checki "forwarded latest" 42 v
  | `To_bus -> Alcotest.fail "expected forwarding");
  checkb "other address to bus" true (Write_buffer.load wb ~paddr:16 = `To_bus);
  checkb "store stays buffered after forward" true (Write_buffer.pending wb <> [])

let test_wbuf_no_forward_mode () =
  let wb = Write_buffer.create (Write_buffer.Bypass { forward = false; collapse = true }) in
  let _, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:42;
  checkb "load bypasses without forwarding" true (Write_buffer.load wb ~paddr:8 = `To_bus)

let test_wbuf_barrier_fifo () =
  let wb = Write_buffer.create bypass in
  let out, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:1;
  Write_buffer.store wb ~emit ~paddr:16 ~value:2;
  Write_buffer.store wb ~emit ~paddr:24 ~value:3;
  Write_buffer.barrier wb ~emit;
  Alcotest.(check (list (pair int int)))
    "drained oldest first" [ (8, 1); (16, 2); (24, 3) ] (emitted out);
  checkb "empty after barrier" true (Write_buffer.pending wb = [])

let test_wbuf_capacity_drain () =
  let wb = Write_buffer.create ~capacity:2 bypass in
  let out, emit = collect () in
  Write_buffer.store wb ~emit ~paddr:8 ~value:1;
  Write_buffer.store wb ~emit ~paddr:16 ~value:2;
  Write_buffer.store wb ~emit ~paddr:24 ~value:3;
  Alcotest.(check (list (pair int int))) "oldest spilled" [ (8, 1) ] (emitted out);
  checki "two still pending" 2 (List.length (Write_buffer.pending wb))

let wbuf_barrier_empties =
  qtest "write_buffer: after a barrier nothing is pending"
    QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 7) (int_range 0 100)))
    (fun stores ->
      let wb = Write_buffer.create bypass in
      let _, emit = collect () in
      List.iter (fun (slot, value) -> Write_buffer.store wb ~emit ~paddr:(slot * 8) ~value) stores;
      Write_buffer.barrier wb ~emit;
      Write_buffer.pending wb = [])

let wbuf_forward_returns_latest =
  qtest "write_buffer: forwarding returns the most recent store"
    QCheck2.Gen.(list_size (int_range 1 4) (int_range 0 100))
    (fun values ->
      let wb = Write_buffer.create (Write_buffer.Bypass { forward = true; collapse = false }) in
      let _, emit = collect () in
      List.iter (fun value -> Write_buffer.store wb ~emit ~paddr:8 ~value) values;
      match (Write_buffer.load wb ~paddr:8, List.rev values) with
      | `Forwarded v, last :: _ -> v = last
      | `To_bus, _ | `Forwarded _, [] -> false)

(* model-based fuzz for the bypass buffer: compare against a reference
   bounded FIFO with collapse and store-to-load forwarding *)
let wbuf_model_fuzz =
  qtest "write_buffer: agrees with a reference queue" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (triple (int_range 0 2) (int_range 0 5) (int_range 0 99)))
    (fun script ->
      let wb = Write_buffer.create ~capacity:4 bypass in
      let model = ref [] (* oldest first *) in
      let emitted_real = ref [] and emitted_model = ref [] in
      let emit_real ~paddr ~value = emitted_real := (paddr, value) :: !emitted_real in
      let emit_model paddr value = emitted_model := (paddr, value) :: !emitted_model in
      let model_store paddr value =
        if List.mem_assoc paddr !model then
          model := List.map (fun (p, v) -> if p = paddr then (p, value) else (p, v)) !model
        else begin
          model := !model @ [ (paddr, value) ];
          if List.length !model > 4 then begin
            match !model with
            | (p, v) :: rest ->
              model := rest;
              emit_model p v
            | [] -> ()
          end
        end
      in
      List.for_all
        (fun (op, slot, value) ->
          let paddr = slot * 8 in
          match op with
          | 0 ->
            Write_buffer.store wb ~emit:emit_real ~paddr ~value;
            model_store paddr value;
            true
          | 1 -> (
            let expected =
              List.fold_left (fun acc (p, v) -> if p = paddr then Some v else acc) None !model
            in
            match (Write_buffer.load wb ~paddr, expected) with
            | `Forwarded v, Some v' -> v = v'
            | `To_bus, None -> true
            | `Forwarded _, None | `To_bus, Some _ -> false)
          | _ ->
            Write_buffer.barrier wb ~emit:emit_real;
            List.iter (fun (p, v) -> emit_model p v) !model;
            model := [];
            true)
        script
      && !emitted_real = !emitted_model
      && Write_buffer.pending wb = !model)

(* ------------------------------------------------------------------ *)
(* Bus *)

let make_bus ?trace_cap () =
  let clock = Clock.create () in
  let ram = Phys_mem.create ~size:(4 * Layout.page_size) in
  (Bus.create ?trace_cap ~clock ~timing:tm ~ram (), clock, ram)

let test_bus_ram_roundtrip () =
  let bus, _, ram = make_bus () in
  Bus.store bus ~pid:1 ~cacheable:true 64 77;
  checki "via bus" 77 (Bus.load bus ~pid:1 ~cacheable:true 64);
  checki "in ram" 77 (Phys_mem.load_word ram 64)

let test_bus_charges_time () =
  let bus, clock, _ = make_bus () in
  let t0 = Clock.now clock in
  Bus.store bus ~pid:1 ~cacheable:true 64 1;
  let cached_cost = Clock.now clock - t0 in
  checki "cached store costs one cpu cycle" (Timing.cached_access_ps tm) cached_cost;
  let t1 = Clock.now clock in
  Bus.store bus ~pid:1 ~cacheable:false 64 1;
  checki "uncached store costs bus cycles" (Timing.uncached_ps tm Txn.Store) (Clock.now clock - t1);
  let t2 = Clock.now clock in
  ignore (Bus.load bus ~pid:1 ~cacheable:false 64 : int);
  checki "uncached load costs bus cycles" (Timing.uncached_ps tm Txn.Load) (Clock.now clock - t2)

let test_bus_device_claim () =
  let bus, _, _ = make_bus () in
  let seen = ref [] in
  Bus.register_device bus
    {
      Bus.claims = (fun paddr -> paddr >= 0x1000_0000);
      handle =
        (fun txn ->
          seen := txn :: !seen;
          match txn.Txn.op with Txn.Load -> 99 | Txn.Store -> 0);
    };
  Bus.store bus ~pid:3 ~cacheable:false 0x1000_0008 5;
  checki "device load reply" 99 (Bus.load bus ~pid:3 ~cacheable:false 0x1000_0000);
  checki "device saw both" 2 (List.length !seen);
  (match !seen with
  | [ load_txn; store_txn ] ->
    checki "store value" 5 store_txn.Txn.value;
    checki "provenance pid" 3 load_txn.Txn.pid
  | _ -> Alcotest.fail "expected two transactions");
  (* RAM unaffected by device-claimed access *)
  checki "ram untouched" 0 (Bus.load bus ~pid:3 ~cacheable:true 8)

let test_bus_error () =
  let bus, _, ram = make_bus () in
  let beyond = Phys_mem.size ram + 64 in
  Alcotest.check_raises "unclaimed address" (Bus.Bus_error beyond) (fun () ->
      ignore (Bus.load bus ~pid:1 ~cacheable:false beyond : int))

let test_bus_trace () =
  let bus, _, _ = make_bus () in
  Bus.set_trace bus true;
  Bus.store bus ~pid:1 ~cacheable:false 8 1;
  ignore (Bus.load bus ~pid:2 ~cacheable:false 8 : int);
  (* cached accesses are not engine-visible and not traced *)
  Bus.store bus ~pid:1 ~cacheable:true 16 1;
  let trace = Bus.trace bus in
  checki "two uncached txns" 2 (List.length trace);
  (match trace with
  | [ first; second ] ->
    checkb "order preserved" true (first.Txn.op = Txn.Store && second.Txn.op = Txn.Load)
  | _ -> Alcotest.fail "trace length");
  Bus.clear_trace bus;
  checki "cleared" 0 (List.length (Bus.trace bus))

let test_bus_trace_ring () =
  let bus, _, _ = make_bus ~trace_cap:4 () in
  checki "cap recorded" 4 (Bus.trace_cap bus);
  Bus.set_trace bus true;
  for i = 1 to 7 do
    Bus.store bus ~pid:1 ~cacheable:false (8 * i) i
  done;
  checki "all transactions counted" 7 (Bus.trace_len bus);
  let trace = Bus.trace bus in
  checki "retained window is capped" 4 (List.length trace);
  Alcotest.(check (list int))
    "window holds the newest, oldest first" [ 4; 5; 6; 7 ]
    (List.map (fun t -> t.Txn.value) trace);
  Bus.set_trace bus false;
  checki "disabling clears the count" 0 (Bus.trace_len bus)

let test_bus_trace_wraparound () =
  let values bus = List.map (fun t -> t.Txn.value) (Bus.trace bus) in
  let bus, _, _ = make_bus ~trace_cap:4 () in
  Bus.set_trace bus true;
  (* exactly at cap: the window still holds everything *)
  for i = 1 to 4 do
    Bus.store bus ~pid:1 ~cacheable:false (8 * i) i
  done;
  checki "at cap: counted" 4 (Bus.trace_len bus);
  Alcotest.(check (list int)) "at cap: all retained" [ 1; 2; 3; 4 ] (values bus);
  (* several full wraps past the cap: trace_len grows by exactly one
     per transaction while the window slides *)
  let prev = ref (Bus.trace_len bus) in
  for i = 5 to 19 do
    Bus.store bus ~pid:1 ~cacheable:false (8 * ((i mod 4) + 1)) i;
    checki "trace_len monotone +1" (!prev + 1) (Bus.trace_len bus);
    prev := Bus.trace_len bus
  done;
  checki "everything counted past cap" 19 (Bus.trace_len bus);
  Alcotest.(check (list int)) "window slid to the newest" [ 16; 17; 18; 19 ] (values bus);
  (* a copy keeps the cap and tracing flag, starts an empty window,
     and wraps independently of the original *)
  let clock = Clock.create () in
  let ram = Phys_mem.create ~size:(4 * Layout.page_size) in
  let snap = Bus.copy bus ~ram ~clock in
  checki "copy keeps cap" 4 (Bus.trace_cap snap);
  checki "copy window empty" 0 (List.length (Bus.trace snap));
  for i = 1 to 6 do
    Bus.store snap ~pid:1 ~cacheable:false 8 (100 + i)
  done;
  Alcotest.(check (list int)) "copy wraps on its own" [ 103; 104; 105; 106 ] (values snap);
  Alcotest.(check (list int)) "original window unaffected" [ 16; 17; 18; 19 ] (values bus)

let test_bus_pid_counters () =
  let bus, _, _ = make_bus () in
  checki "fresh pid" 0 (Bus.pid_access_count bus 1);
  (* counted even with tracing off, kernel pid -1 included *)
  Bus.store bus ~pid:1 ~cacheable:false 8 1;
  ignore (Bus.load bus ~pid:1 ~cacheable:false 8 : int);
  Bus.store bus ~pid:(-1) ~cacheable:false 16 2;
  Bus.store bus ~pid:1 ~cacheable:true 24 3;
  (* cached: not engine-visible *)
  checki "pid 1 uncached accesses" 2 (Bus.pid_access_count bus 1);
  checki "kernel accesses" 1 (Bus.pid_access_count bus (-1));
  checki "unseen pid" 0 (Bus.pid_access_count bus 99);
  Bus.store bus ~pid:200 ~cacheable:false 32 4;
  (* forces counter growth *)
  checki "large pid" 1 (Bus.pid_access_count bus 200);
  checki "pid 1 unaffected" 2 (Bus.pid_access_count bus 1)

let test_bus_device_dispatch_order () =
  let bus, _, _ = make_bus () in
  let hits = ref [] in
  let dev tag =
    {
      Bus.claims = (fun paddr -> paddr >= 0x1000_0000);
      handle =
        (fun _ ->
          hits := tag :: !hits;
          tag);
    }
  in
  for tag = 1 to 10 do
    Bus.register_device bus (dev tag)
  done;
  (* overlapping claims: first registered wins *)
  checki "first device wins" 1 (Bus.load bus ~pid:1 ~cacheable:false 0x1000_0000);
  Alcotest.(check (list int)) "only the winner handled it" [ 1 ] !hits

let test_bus_copy_carries_accounting () =
  let bus, _, _ = make_bus () in
  Bus.set_trace bus true;
  Bus.store bus ~pid:1 ~cacheable:false 8 1;
  Bus.store bus ~pid:2 ~cacheable:false 16 2;
  let clock = Clock.create () in
  let ram = Phys_mem.create ~size:(4 * Layout.page_size) in
  let snap = Bus.copy bus ~ram ~clock in
  checki "busy_ps carried" (Bus.busy_ps bus) (Bus.busy_ps snap);
  checki "pid 1 counter carried" 1 (Bus.pid_access_count snap 1);
  checki "pid 2 counter carried" 1 (Bus.pid_access_count snap 2);
  checki "trace window starts empty" 0 (List.length (Bus.trace snap));
  Bus.store snap ~pid:1 ~cacheable:false 8 3;
  checki "snap counter advances" 2 (Bus.pid_access_count snap 1);
  checki "original counter unaffected" 1 (Bus.pid_access_count bus 1);
  (* tracing flag carried: the snapshot records its own transactions *)
  checki "snap traces independently" 1 (List.length (Bus.trace snap));
  checki "original trace intact" 2 (List.length (Bus.trace bus))

let () =
  Alcotest.run "bus"
    [
      ("clock", [ Alcotest.test_case "advance/copy" `Quick test_clock ]);
      ( "timing",
        [
          Alcotest.test_case "cycle costs" `Quick test_timing_cycles;
          Alcotest.test_case "kernel costs" `Quick test_timing_kernel_costs;
          Alcotest.test_case "presets" `Quick test_timing_presets;
          Alcotest.test_case "with_* combinators" `Quick test_timing_with;
        ] );
      ( "write_buffer",
        [
          Alcotest.test_case "ordered passthrough" `Quick test_wbuf_ordered_passthrough;
          Alcotest.test_case "bypass buffers" `Quick test_wbuf_bypass_buffers;
          Alcotest.test_case "collapse" `Quick test_wbuf_collapse;
          Alcotest.test_case "no-collapse mode" `Quick test_wbuf_no_collapse_mode;
          Alcotest.test_case "store-to-load forwarding" `Quick test_wbuf_forwarding;
          Alcotest.test_case "no-forward mode" `Quick test_wbuf_no_forward_mode;
          Alcotest.test_case "barrier drains FIFO" `Quick test_wbuf_barrier_fifo;
          Alcotest.test_case "capacity drain" `Quick test_wbuf_capacity_drain;
          wbuf_barrier_empties;
          wbuf_forward_returns_latest;
          wbuf_model_fuzz;
        ] );
      ( "bus",
        [
          Alcotest.test_case "ram roundtrip" `Quick test_bus_ram_roundtrip;
          Alcotest.test_case "charges time" `Quick test_bus_charges_time;
          Alcotest.test_case "device claim" `Quick test_bus_device_claim;
          Alcotest.test_case "bus error" `Quick test_bus_error;
          Alcotest.test_case "trace" `Quick test_bus_trace;
          Alcotest.test_case "trace ring cap" `Quick test_bus_trace_ring;
          Alcotest.test_case "trace ring wraparound" `Quick test_bus_trace_wraparound;
          Alcotest.test_case "per-pid counters" `Quick test_bus_pid_counters;
          Alcotest.test_case "device dispatch order" `Quick test_bus_device_dispatch_order;
          Alcotest.test_case "copy carries accounting" `Quick test_bus_copy_carries_accounting;
        ] );
    ]
