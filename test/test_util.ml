(* Tests for the util library: rng, stats, tbl, units. *)

open Uldma_util

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  checkb "different first draw" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.int64 a : int64);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues the stream" (Rng.int64 a) (Rng.int64 b);
  ignore (Rng.int64 a : int64);
  ignore (Rng.int64 a : int64);
  (* b has drawn once, a three times: streams diverge positionally *)
  checkb "independent positions" true (Rng.int64 a <> Rng.int64 b)

let test_rng_split () =
  let a = Rng.create ~seed:3 in
  let child = Rng.split a in
  checkb "child differs from parent continuation" true (Rng.int64 child <> Rng.int64 a)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create ~seed:12 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r ~lo:(-5) ~hi:5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_covers () =
  let r = Rng.create ~seed:13 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 8) <- true
  done;
  Array.iteri (fun i s -> checkb (Printf.sprintf "value %d drawn" i) true s) seen

let test_rng_chance_extremes () =
  let r = Rng.create ~seed:14 in
  checkb "p=0 never" false (Rng.chance r 0.0);
  checkb "p=1 always" true (Rng.chance r 1.0);
  checkb "p<0 never" false (Rng.chance r (-0.5));
  checkb "p>1 always" true (Rng.chance r 1.5)

let test_rng_chance_rate () =
  let r = Rng.create ~seed:15 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.chance r 0.3 then incr hits
  done;
  checkb "roughly 30%" true (!hits > 2600 && !hits < 3400)

let test_rng_float_bounds () =
  let r = Rng.create ~seed:16 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    checkb "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_pick () =
  let r = Rng.create ~seed:17 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    checkb "member" true (Array.mem (Rng.pick r arr) arr)
  done;
  checki "singleton list" 42 (Rng.pick_list r [ 42 ])

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:18 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_dma_key_width () =
  let r = Rng.create ~seed:19 in
  for _ = 1 to 1000 do
    let k = Rng.dma_key r in
    checkb "58-bit non-negative" true (k >= 0 && k < 1 lsl 58)
  done

let test_rng_bool_balanced () =
  let r = Rng.create ~seed:20 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  checkb "roughly balanced" true (!trues > 4500 && !trues < 5500)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_known () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  checki "n" 4 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4.0 s.Stats.max

let test_stats_singleton () =
  let s = Stats.of_list [ 7.5 ] in
  check (Alcotest.float 1e-9) "mean" 7.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "stddev" 0.0 s.Stats.stddev;
  check (Alcotest.float 1e-9) "p99" 7.5 s.Stats.p99

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.of_array: empty sample") (fun () ->
      ignore (Stats.of_list [] : Stats.summary))

let test_stats_percentile () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 |] in
  check (Alcotest.float 1e-9) "p50" 5.0 (Stats.percentile sorted 0.5);
  check (Alcotest.float 1e-9) "p100" 10.0 (Stats.percentile sorted 1.0);
  check (Alcotest.float 1e-9) "p0 clamps" 1.0 (Stats.percentile sorted 0.0)

let test_stats_stddev () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check (Alcotest.float 1e-6) "sample stddev" 2.13809 s.Stats.stddev

let float_list_gen = QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))

let stats_mean_bounded =
  qtest "stats: min <= mean <= max" float_list_gen (fun l ->
      match l with
      | [] -> true
      | _ :: _ ->
        let s = Stats.of_list l in
        s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let stats_percentiles_monotone =
  qtest "stats: p50 <= p95 <= p99 <= max" float_list_gen (fun l ->
      match l with
      | [] -> true
      | _ :: _ ->
        let s = Stats.of_list l in
        s.Stats.p50 <= s.Stats.p95 && s.Stats.p95 <= s.Stats.p99 && s.Stats.p99 <= s.Stats.max)

(* ------------------------------------------------------------------ *)
(* Tbl *)

let test_tbl_arity () =
  let t = Tbl.create ~title:"t" ~columns:[ ("a", Tbl.Left); ("b", Tbl.Right) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Tbl.add_row: 1 cells for 2 columns (table \"t\")") (fun () ->
      Tbl.add_row t [ "x" ])

let test_tbl_render_contains () =
  let t = Tbl.create ~title:"My table" ~columns:[ ("name", Tbl.Left); ("v", Tbl.Right) ] in
  Tbl.add_row t [ "alpha"; "1" ];
  Tbl.add_rule t;
  Tbl.add_row t [ "beta"; "22" ];
  let s = Tbl.render t in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle -> checkb (Printf.sprintf "contains %S" needle) true (contains needle))
    [ "My table"; "alpha"; "beta"; "22"; "name" ]

let test_tbl_right_align () =
  let t = Tbl.create ~title:"t" ~columns:[ ("v", Tbl.Right) ] in
  Tbl.add_row t [ "7" ];
  Tbl.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Tbl.render t) in
  checkb "7 is right-aligned" true (List.exists (fun l -> l = "|   7 |") lines)

let test_tbl_csv () =
  let t = Tbl.create ~title:"t" ~columns:[ ("a", Tbl.Left); ("b", Tbl.Left) ] in
  Tbl.add_row t [ "x,y"; "plain" ];
  Tbl.add_rule t;
  Tbl.add_row t [ "quo\"te"; "z" ];
  checks "csv" "a,b\n\"x,y\",plain\n\"quo\"\"te\",z\n" (Tbl.to_csv t)

let test_tbl_cells () =
  checks "cell_f trims" "1.5" (Tbl.cell_f 1.5);
  checks "cell_f keeps one decimal" "2.0" (Tbl.cell_f 2.0);
  checks "cell_us" "18.6" (Tbl.cell_us 18.6)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_conversions () =
  checki "1ns" 1000 (Units.ns 1.0);
  checki "1us" 1_000_000 (Units.us 1.0);
  check (Alcotest.float 1e-9) "roundtrip" 2.5 (Units.to_ns (Units.ns 2.5));
  check (Alcotest.float 1e-9) "us roundtrip" 18.6 (Units.to_us (Units.us 18.6))

let test_units_cycles () =
  checki "150MHz cycle" 6667 (Units.cycle_ps ~hz:150_000_000);
  checki "12.5MHz cycle" 80_000 (Units.cycle_ps ~hz:12_500_000);
  checki "7 bus cycles" 560_000 (Units.cycles ~hz:12_500_000 7)

let test_units_sizes () =
  checki "4 KiB" 4096 (Units.kib 4);
  checki "2 MiB" (2 * 1024 * 1024) (Units.mib 2)

let test_units_bandwidth () =
  check (Alcotest.float 1.0) "155 Mbps in B/s" 19_375_000.0 (Units.mbps 155.0);
  (* 1 KiB at ~19.4 MB/s is ~52.9 us *)
  let t = Units.transfer_ps ~bytes_per_s:(Units.mbps 155.0) 1024 in
  checkb "52-54us" true (t > Units.us 52.0 && t < Units.us 54.0);
  checki "zero bytes" 0 (Units.transfer_ps ~bytes_per_s:1e9 0)

let test_units_pp () =
  checks "ns" "1.5 ns" (Format.asprintf "%a" Units.pp_time 1500);
  checks "us" "18.60 us" (Format.asprintf "%a" Units.pp_time (Units.us 18.6));
  checks "bytes" "64 B" (Format.asprintf "%a" Units.pp_bytes 64);
  checks "kib" "4 KiB" (Format.asprintf "%a" Units.pp_bytes 4096)

let units_transfer_monotone =
  qtest "units: transfer time monotone in size"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (a, b) ->
      let t n = Units.transfer_ps ~bytes_per_s:1e8 n in
      if a <= b then t a <= t b else t b <= t a)

(* ------------------------------------------------------------------ *)
(* Fp128 (streaming two-lane fingerprint) *)

let test_fp128_deterministic () =
  let feed t =
    Fp128.add_tag t 'P';
    Fp128.add_int t 42;
    Fp128.add_string t "hello";
    Fp128.add_bytes t (Bytes.of_string "\x00\x01\xff")
  in
  let a = Fp128.create () and b = Fp128.create () in
  feed a;
  feed b;
  checks "same feeds, same key" (Fp128.key a) (Fp128.key b);
  checki "key is 16 bytes" 16 (String.length (Fp128.key a));
  checki "fed counts ints as 8, tags as 1, strings as 8+len" (1 + 8 + 13 + 11) (Fp128.fed a);
  (* lanes is a read, not a finalisation: feeding more still works *)
  let l1 = Fp128.lanes a in
  Fp128.add_int a 7;
  checkb "more input changes the lanes" true (Fp128.lanes a <> l1);
  Fp128.reset a;
  feed a;
  checks "reset replays from scratch" (Fp128.key b) (Fp128.key a)

let test_fp128_domain_separation () =
  (* a tag must never alias the int with the same code: 'A' vs 65 *)
  let a = Fp128.create () and b = Fp128.create () in
  Fp128.add_tag a 'A';
  Fp128.add_int b (Char.code 'A');
  checkb "tag vs int differ" true (Fp128.key a <> Fp128.key b);
  (* length prefixes keep concatenation unambiguous: "ab"+"c" vs "a"+"bc" *)
  let c = Fp128.create () and d = Fp128.create () in
  Fp128.add_string c "ab";
  Fp128.add_string c "c";
  Fp128.add_string d "a";
  Fp128.add_string d "bc";
  checkb "string boundaries matter" true (Fp128.key c <> Fp128.key d)

let test_fp128_digest () =
  let p1 = Bytes.make 8192 'x' and p2 = Bytes.make 8192 'x' in
  checkb "equal content, equal digest" true (Fp128.digest p1 = Fp128.digest p2);
  Bytes.set p2 8191 'y';
  checkb "last byte matters" true (Fp128.digest p1 <> Fp128.digest p2);
  Bytes.set p2 8191 'x';
  Bytes.set p2 0 'y';
  checkb "first byte matters" true (Fp128.digest p1 <> Fp128.digest p2)

(* Collision-power meta-check. The real keys are 126-bit, so an
   in-test collision can never be observed directly; instead truncate
   one finalised lane to 12 bits and verify the birthday statistics
   come out as hashing theory predicts — n = 4096 draws into m = 4096
   buckets must leave roughly m(1 - e^-1) ~ 2589 distinct values. A
   biased mixer (the failure this test has power against) would show
   up as far fewer distinct truncated values; a broken test harness
   (e.g. feeding equal inputs) as zero full-width distinctness. *)
let test_fp128_truncated_collision_power () =
  let rng = Rng.create ~seed:0x5eed in
  let n = 4096 in
  let full = Hashtbl.create n and trunc = Hashtbl.create n in
  for _ = 1 to n do
    let t = Fp128.create () in
    (* a random-length walk of random words, like a small state encoding *)
    for _ = 0 to 2 + Rng.int rng 6 do
      Fp128.add_int t (Rng.dma_key rng)
    done;
    let lo, _ = Fp128.lanes t in
    Hashtbl.replace full (Fp128.key t) ();
    Hashtbl.replace trunc (lo land 0xfff) ()
  done;
  checki "no full-width collisions across 4096 draws" n (Hashtbl.length full);
  let distinct = Hashtbl.length trunc in
  checkb
    (Printf.sprintf "12-bit truncation shows birthday collisions (distinct=%d)" distinct)
    true
    (distinct > 2200 && distinct < 2950)

(* ------------------------------------------------------------------ *)
(* Ws_deque (Chase–Lev work-stealing deque) *)

let test_ws_deque_owner_lifo () =
  let d = Ws_deque.create () in
  checkb "empty pop" true (Ws_deque.pop d = None);
  Ws_deque.push d 1;
  Ws_deque.push d 2;
  Ws_deque.push d 3;
  checki "size" 3 (Ws_deque.size d);
  checkb "pop newest" true (Ws_deque.pop d = Some 3);
  checkb "then next" true (Ws_deque.pop d = Some 2);
  checkb "then oldest" true (Ws_deque.pop d = Some 1);
  checkb "then empty" true (Ws_deque.pop d = None);
  checki "size after drain" 0 (Ws_deque.size d)

let test_ws_deque_steal_fifo () =
  let d = Ws_deque.create () in
  Ws_deque.push d 1;
  Ws_deque.push d 2;
  Ws_deque.push d 3;
  checkb "steal oldest" true (Ws_deque.steal d = Some 1);
  checkb "steal next" true (Ws_deque.steal d = Some 2);
  checkb "owner gets the rest" true (Ws_deque.pop d = Some 3);
  checkb "steal empty" true (Ws_deque.steal d = None)

let test_ws_deque_grow () =
  (* push far past the 16-slot initial buffer, with interleaved pops
     and steals so the logical indices wrap several superseded buffers *)
  let d = Ws_deque.create () in
  let popped = ref [] and stolen = ref [] in
  for i = 1 to 1000 do
    Ws_deque.push d i;
    if i mod 3 = 0 then
      match Ws_deque.pop d with Some v -> popped := v :: !popped | None -> ()
  done;
  let rec drain () =
    match Ws_deque.steal d with
    | Some v ->
      stolen := v :: !stolen;
      drain ()
    | None -> ()
  in
  drain ();
  let all = List.sort compare (!popped @ !stolen) in
  checki "nothing lost or duplicated" 1000 (List.length all);
  checkb "exactly 1..1000" true (all = List.init 1000 (fun i -> i + 1));
  checkb "stolen side is FIFO" true (List.rev !stolen = List.sort compare !stolen)

(* Conservation under real contention: one owner domain pushing and
   popping while three thieves steal. Every pushed element must be
   consumed exactly once, whichever side wins each race. *)
let test_ws_deque_concurrent_conservation () =
  let d = Ws_deque.create () in
  let n = 20_000 in
  let stop = Atomic.make false in
  let thief () =
    let got = ref [] in
    while not (Atomic.get stop) do
      match Ws_deque.steal d with
      | Some v -> got := v :: !got
      | None -> Domain.cpu_relax ()
    done;
    (* final sweep so nothing is left when the owner finished early *)
    let rec sweep () =
      match Ws_deque.steal d with
      | Some v ->
        got := v :: !got;
        sweep ()
      | None -> ()
    in
    sweep ();
    !got
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  let owner_got = ref [] in
  for i = 1 to n do
    Ws_deque.push d i;
    if i land 1 = 0 then
      match Ws_deque.pop d with Some v -> owner_got := v :: !owner_got | None -> ()
  done;
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
      owner_got := v :: !owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join thieves in
  let all = List.sort compare (stolen @ !owner_got) in
  checki "every element consumed exactly once" n (List.length all);
  checkb "the elements are exactly 1..n" true (all = List.init n (fun i -> i + 1))

(* Steal-burst on a near-empty deque: the hard Chase–Lev window is the
   single-element race, where the owner's pop and every thief's steal
   CAS the same top index. The adaptive publication cutoff makes this
   the common case (a worker publishes one task at a time and often
   pops it straight back), so hammer it: the owner pushes elements one
   or two at a time and immediately tries to pop, while a burst of
   thieves steals whatever appears. Every element must be consumed
   exactly once — a lost CAS must lose the *element* to exactly one
   winner, never duplicate it, never drop it. *)
let test_ws_deque_steal_burst_near_empty () =
  let d = Ws_deque.create () in
  let n = 4_000 in
  let stop = Atomic.make false in
  let thief () =
    let got = ref [] in
    while not (Atomic.get stop) do
      match Ws_deque.steal d with
      | Some v -> got := v :: !got
      | None -> Domain.cpu_relax ()
    done;
    let rec sweep () =
      match Ws_deque.steal d with
      | Some v ->
        got := v :: !got;
        sweep ()
      | None -> ()
    in
    sweep ();
    !got
  in
  let thieves = List.init 4 (fun _ -> Domain.spawn thief) in
  let owner_got = ref [] in
  let try_pop () =
    match Ws_deque.pop d with Some v -> owner_got := v :: !owner_got | None -> ()
  in
  for i = 1 to n do
    Ws_deque.push d i;
    (* keep the deque hovering at 0–2 elements: pop right back most of
       the time so nearly every steal races the owner for the last one *)
    if i land 3 <> 0 then try_pop ()
  done;
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
      owner_got := v :: !owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join thieves in
  let all = List.sort compare (stolen @ !owner_got) in
  checki "every element consumed exactly once" n (List.length all);
  checkb "the elements are exactly 1..n" true (all = List.init n (fun i -> i + 1));
  checki "deque left empty" 0 (Ws_deque.size d)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "chance rate" `Quick test_rng_chance_rate;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "pick membership" `Quick test_rng_pick;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "dma_key width" `Quick test_rng_dma_key_width;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
        ] );
      ( "fp128",
        [
          Alcotest.test_case "deterministic" `Quick test_fp128_deterministic;
          Alcotest.test_case "domain separation" `Quick test_fp128_domain_separation;
          Alcotest.test_case "page digest" `Quick test_fp128_digest;
          Alcotest.test_case "truncated collision power" `Quick
            test_fp128_truncated_collision_power;
        ] );
      ( "ws_deque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_ws_deque_owner_lifo;
          Alcotest.test_case "steal FIFO" `Quick test_ws_deque_steal_fifo;
          Alcotest.test_case "grow preserves elements" `Quick test_ws_deque_grow;
          Alcotest.test_case "concurrent conservation" `Slow
            test_ws_deque_concurrent_conservation;
          Alcotest.test_case "steal burst near empty" `Slow
            test_ws_deque_steal_burst_near_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          stats_mean_bounded;
          stats_percentiles_monotone;
        ] );
      ( "tbl",
        [
          Alcotest.test_case "arity mismatch" `Quick test_tbl_arity;
          Alcotest.test_case "render contains content" `Quick test_tbl_render_contains;
          Alcotest.test_case "right alignment" `Quick test_tbl_right_align;
          Alcotest.test_case "csv escaping" `Quick test_tbl_csv;
          Alcotest.test_case "cell formatting" `Quick test_tbl_cells;
        ] );
      ( "units",
        [
          Alcotest.test_case "conversions" `Quick test_units_conversions;
          Alcotest.test_case "cycles" `Quick test_units_cycles;
          Alcotest.test_case "sizes" `Quick test_units_sizes;
          Alcotest.test_case "bandwidth" `Quick test_units_bandwidth;
          Alcotest.test_case "pretty printing" `Quick test_units_pp;
          units_transfer_monotone;
        ] );
    ]
