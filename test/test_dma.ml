(* Tests for the dma library: the sequence matcher, register contexts,
   atomic ops, transfers, and the engine's per-mechanism decoders. *)

open Uldma_util
open Uldma_mem
open Uldma_mmu
open Uldma_bus
open Uldma_dma

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Seq_matcher *)

let feed m op paddr value = Seq_matcher.feed m op ~paddr ~value

let fired = function Seq_matcher.Fired _ -> true | Seq_matcher.Accepted | Seq_matcher.Rejected -> false

let test_matcher_five_happy () =
  let m = Seq_matcher.create Seq_matcher.Five in
  let d = 0x1000 and s = 0x2000 and size = 64 in
  checkb "s1" true (feed m Txn.Store d size = Seq_matcher.Accepted);
  checkb "l2" true (feed m Txn.Load s 0 = Seq_matcher.Accepted);
  checkb "s3" true (feed m Txn.Store d size = Seq_matcher.Accepted);
  checkb "l4" true (feed m Txn.Load s 0 = Seq_matcher.Accepted);
  match feed m Txn.Load d 0 with
  | Seq_matcher.Fired f ->
    checki "src" s f.Seq_matcher.src;
    checki "dst" d f.Seq_matcher.dst;
    checki "size" size f.Seq_matcher.size;
    checki "reset after fire" 0 (Seq_matcher.position m)
  | Seq_matcher.Accepted | Seq_matcher.Rejected -> Alcotest.fail "expected fire"

let test_matcher_three_happy () =
  let m = Seq_matcher.create Seq_matcher.Three in
  let d = 0x1000 and s = 0x2000 in
  ignore (feed m Txn.Load s 0);
  ignore (feed m Txn.Store d 32);
  checkb "fires" true (fired (feed m Txn.Load s 0))

let test_matcher_four_happy () =
  let m = Seq_matcher.create Seq_matcher.Four in
  let d = 0x1000 and s = 0x2000 in
  ignore (feed m Txn.Store d 32);
  ignore (feed m Txn.Load s 0);
  ignore (feed m Txn.Store d 32);
  checkb "fires" true (fired (feed m Txn.Load s 0))

let test_matcher_lengths () =
  checki "three" 3 (Seq_matcher.sequence_length Seq_matcher.Three);
  checki "four" 4 (Seq_matcher.sequence_length Seq_matcher.Four);
  checki "five" 5 (Seq_matcher.sequence_length Seq_matcher.Five)

let test_matcher_wrong_address_resets () =
  let m = Seq_matcher.create Seq_matcher.Five in
  ignore (feed m Txn.Store 0x1000 64);
  ignore (feed m Txn.Load 0x2000 0);
  (* third access to a different destination: reset *)
  checkb "rejected" true (feed m Txn.Store 0x3000 64 = Seq_matcher.Rejected);
  (* but the offender seeds a new sequence *)
  checki "position 1" 1 (Seq_matcher.position m)

let test_matcher_size_mismatch_resets () =
  let m = Seq_matcher.create Seq_matcher.Five in
  ignore (feed m Txn.Store 0x1000 64);
  ignore (feed m Txn.Load 0x2000 0);
  checkb "size changed" true (feed m Txn.Store 0x1000 65 = Seq_matcher.Rejected)

let test_matcher_wrong_op_resets () =
  let m = Seq_matcher.create Seq_matcher.Five in
  ignore (feed m Txn.Store 0x1000 64);
  (* second access must be a load *)
  checkb "store rejected" true (feed m Txn.Store 0x2000 64 = Seq_matcher.Rejected);
  (* the offending store seeds a fresh sequence (dest=0x2000) *)
  ignore (feed m Txn.Load 0x4000 0);
  ignore (feed m Txn.Store 0x2000 64);
  ignore (feed m Txn.Load 0x4000 0);
  checkb "new sequence completes" true (fired (feed m Txn.Load 0x2000 0))

let test_matcher_load_cannot_seed_five () =
  let m = Seq_matcher.create Seq_matcher.Five in
  checkb "lone load rejected" true (feed m Txn.Load 0x1000 0 = Seq_matcher.Rejected);
  checki "no seed" 0 (Seq_matcher.position m)

let test_matcher_fig5_stream () =
  (* the Fig. 5 interleaving at transaction level (Three variant) *)
  let m = Seq_matcher.create Seq_matcher.Three in
  let a = 0x1000 and b = 0x2000 and c = 0x3000 and foo = 0x4000 in
  ignore (feed m Txn.Load a 0) (* V: 1 *);
  ignore (feed m Txn.Store foo 8 (* M *));
  ignore (feed m Txn.Load foo 0 (* M: no DMA started *));
  ignore (feed m Txn.Load c 0 (* M: seeds new sequence *));
  ignore (feed m Txn.Store b 64 (* V: 5 *));
  match feed m Txn.Load c 0 with
  | Seq_matcher.Fired f ->
    checki "malicious source" c f.Seq_matcher.src;
    checki "victim destination" b f.Seq_matcher.dst
  | Seq_matcher.Accepted | Seq_matcher.Rejected -> Alcotest.fail "Fig. 5 attack should fire"

let test_matcher_fig6_stream () =
  let m = Seq_matcher.create Seq_matcher.Four in
  let a = 0x1000 and b = 0x2000 in
  ignore (feed m Txn.Store b 64 (* V *));
  ignore (feed m Txn.Load a 0 (* V *));
  ignore (feed m Txn.Store b 64 (* V *));
  checkb "attacker's load completes it" true (fired (feed m Txn.Load a 0 (* M *)));
  (* the victim's own final load is now rejected *)
  checkb "victim told failure" true (feed m Txn.Load a 0 = Seq_matcher.Rejected)

let test_matcher_copy_independent () =
  let m = Seq_matcher.create Seq_matcher.Five in
  ignore (feed m Txn.Store 0x1000 64);
  let m2 = Seq_matcher.copy m in
  Seq_matcher.reset m2;
  checki "original keeps position" 1 (Seq_matcher.position m);
  checki "copy reset" 0 (Seq_matcher.position m2)

(* after arbitrary noise on disjoint addresses, a clean five-access
   sequence always fires on its final load *)
let matcher_clean_sequence_fires =
  qtest "seq_matcher: clean sequence fires after disjoint noise"
    QCheck2.Gen.(list_size (int_range 0 12) (pair bool (int_range 0 7)))
    (fun noise ->
      let m = Seq_matcher.create Seq_matcher.Five in
      List.iter
        (fun (is_store, slot) ->
          let paddr = 0x10_0000 + (slot * 8) in
          ignore (feed m (if is_store then Txn.Store else Txn.Load) paddr 99))
        noise;
      let d = 0x1000 and s = 0x2000 in
      ignore (feed m Txn.Store d 64);
      ignore (feed m Txn.Load s 0);
      ignore (feed m Txn.Store d 64);
      ignore (feed m Txn.Load s 0);
      match feed m Txn.Load d 0 with
      | Seq_matcher.Fired f -> f.Seq_matcher.src = s && f.Seq_matcher.dst = d && f.Seq_matcher.size = 64
      | Seq_matcher.Accepted | Seq_matcher.Rejected -> false)

(* a fire implies the last five accesses were exactly the pattern *)
let matcher_fire_implies_pattern =
  qtest "seq_matcher: Fired implies a well-formed suffix" ~count:500
    QCheck2.Gen.(list_size (int_range 5 40) (triple bool (int_range 0 3) (int_range 1 4)))
    (fun stream ->
      let m = Seq_matcher.create Seq_matcher.Five in
      let history = ref [] in
      List.for_all
        (fun (is_store, slot, size) ->
          let op = if is_store then Txn.Store else Txn.Load in
          let paddr = 0x1000 + (slot * 8) in
          history := (op, paddr, size) :: !history;
          match feed m op paddr size with
          | Seq_matcher.Fired f -> (
            match !history with
            | (Txn.Load, a5, _) :: (Txn.Load, a4, _) :: (Txn.Store, a3, v3)
              :: (Txn.Load, a2, _) :: (Txn.Store, a1, v1) :: _ ->
              a1 = a3 && a3 = a5 && a2 = a4 && v1 = v3 && f.Seq_matcher.dst = a1
              && f.Seq_matcher.src = a2 && f.Seq_matcher.size = v1
            | _ -> false)
          | Seq_matcher.Accepted | Seq_matcher.Rejected -> true)
        stream)

(* ------------------------------------------------------------------ *)
(* Context_file *)

let test_ctx_create_bounds () =
  checkb "zero rejected" true
    (try
       ignore (Context_file.create ~n:0 : Context_file.t);
       false
     with Invalid_argument _ -> true);
  checkb "nine rejected" true
    (try
       ignore (Context_file.create ~n:9 : Context_file.t);
       false
     with Invalid_argument _ -> true);
  checki "length" 4 (Context_file.length (Context_file.create ~n:4))

let test_ctx_slots_alternate () =
  let t = Context_file.create ~n:2 in
  let c = Context_file.get t 0 in
  Context_file.push_address c 0x100;
  Context_file.push_address c 0x200;
  Alcotest.(check (option int)) "dest first" (Some 0x100) c.Context_file.dest;
  Alcotest.(check (option int)) "src second" (Some 0x200) c.Context_file.src;
  checkb "not ready without size" true (Context_file.args_ready c = None);
  c.Context_file.size <- Some 64;
  Alcotest.(check (option (triple int int int)))
    "ready" (Some (0x200, 0x100, 64)) (Context_file.args_ready c)

let test_ctx_third_push_wraps () =
  let t = Context_file.create ~n:1 in
  let c = Context_file.get t 0 in
  List.iter (Context_file.push_address c) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "dest overwritten" (Some 3) c.Context_file.dest

let test_ctx_clear_and_reset () =
  let t = Context_file.create ~n:1 in
  let c = Context_file.get t 0 in
  Context_file.set_key t ~context:0 ~key:42;
  Context_file.push_address c 0x100;
  c.Context_file.size <- Some 8;
  c.Context_file.status <- -1;
  Context_file.clear_args c;
  checkb "args cleared" true (c.Context_file.dest = None && c.Context_file.size = None);
  checki "key preserved" 42 c.Context_file.key;
  checki "status preserved by clear" (-1) c.Context_file.status;
  Context_file.reset c;
  checki "status reset" 0 c.Context_file.status

let test_ctx_get_bounds () =
  let t = Context_file.create ~n:2 in
  checkb "get_opt in range" true (Context_file.get_opt t 1 <> None);
  checkb "get_opt out of range" true (Context_file.get_opt t 2 = None);
  checkb "get raises" true
    (try
       ignore (Context_file.get t 5 : Context_file.context);
       false
     with Invalid_argument _ -> true)

let test_ctx_copy_independent () =
  let t = Context_file.create ~n:2 in
  Context_file.set_key t ~context:0 ~key:7;
  let t2 = Context_file.copy t in
  Context_file.set_key t2 ~context:0 ~key:9;
  checki "original key" 7 (Context_file.get t 0).Context_file.key

(* ------------------------------------------------------------------ *)
(* Atomic_op *)

let test_atomic_encode_decode () =
  let p = Atomic_op.accumulate Atomic_op.P_none (Atomic_op.encode_add 5) in
  checkb "add ready" true (p = Atomic_op.P_ready (Atomic_op.Add 5));
  let p = Atomic_op.accumulate Atomic_op.P_none (Atomic_op.encode_fetch_store 9) in
  checkb "fetch_store ready" true (p = Atomic_op.P_ready (Atomic_op.Fetch_store 9))

let test_atomic_cas_two_halves () =
  let p = Atomic_op.accumulate Atomic_op.P_none (Atomic_op.encode_cas_expected 3) in
  checkb "half" true (p = Atomic_op.P_cas_expected 3);
  let p = Atomic_op.accumulate p (Atomic_op.encode_cas_new 8) in
  checkb "complete" true (p = Atomic_op.P_ready (Atomic_op.Cas { expected = 3; new_value = 8 }))

let test_atomic_cas_out_of_order () =
  let p = Atomic_op.accumulate Atomic_op.P_none (Atomic_op.encode_cas_new 8) in
  checkb "new without expected resets" true (p = Atomic_op.P_none)

let test_atomic_bad_opcode () =
  checkb "opcode 9 resets" true (Atomic_op.accumulate Atomic_op.P_none ((5 lsl 4) lor 9) = Atomic_op.P_none)

let test_atomic_negative_operand () =
  let p = Atomic_op.accumulate Atomic_op.P_none (Atomic_op.encode_add (-4)) in
  checkb "negative add" true (p = Atomic_op.P_ready (Atomic_op.Add (-4)))

let execute_on value op =
  let cell = ref value in
  let old = Atomic_op.execute op ~read:(fun _ -> !cell) ~write:(fun _ v -> cell := v) ~target:0 in
  (old, !cell)

let test_atomic_execute () =
  Alcotest.(check (pair int int)) "add" (10, 13) (execute_on 10 (Atomic_op.Add 3));
  Alcotest.(check (pair int int)) "fetch_store" (10, 99) (execute_on 10 (Atomic_op.Fetch_store 99));
  Alcotest.(check (pair int int)) "cas hit" (10, 11)
    (execute_on 10 (Atomic_op.Cas { expected = 10; new_value = 11 }));
  Alcotest.(check (pair int int)) "cas miss" (10, 10)
    (execute_on 10 (Atomic_op.Cas { expected = 9; new_value = 11 }))

(* ------------------------------------------------------------------ *)
(* Transfer *)

let test_transfer_remaining () =
  let tr =
    { Transfer.src = 0; dst = 0; size = 1000; context = None; pid = 1; started_at = 100; duration = 1000 }
  in
  checki "at start" 1000 (Transfer.remaining tr ~now:100);
  checki "half way" 500 (Transfer.remaining tr ~now:600);
  checki "done" 0 (Transfer.remaining tr ~now:1100);
  checki "past" 0 (Transfer.remaining tr ~now:9999);
  checki "end_time" 1100 (Transfer.end_time tr)

let test_transfer_null_backend () =
  let tr =
    { Transfer.src = 0; dst = 0; size = 64; context = None; pid = 1; started_at = 0;
      duration = Transfer.null_backend.Transfer.duration_ps 64 }
  in
  checki "instant" 0 (Transfer.remaining tr ~now:0)

let test_transfer_local_backend () =
  let ram = Phys_mem.create ~size:Layout.page_size in
  let b = Transfer.local_backend ram ~setup_ps:100 ~bytes_per_s:1e9 in
  Phys_mem.fill ram ~addr:0 ~len:16 ~byte:7;
  b.Transfer.copy ~src:0 ~dst:128 ~len:16;
  checki "copied" 7 (Phys_mem.load_byte ram 128);
  b.Transfer.write_word 256 77;
  checki "word io" 77 (b.Transfer.read_word 256);
  checkb "duration includes setup" true (b.Transfer.duration_ps 0 >= 100)

(* ------------------------------------------------------------------ *)
(* Engine *)

let ram_pages = 16

let make_engine ?(mechanism = Engine.Key_based) ?(local = false) ?n_contexts () =
  let clock = Clock.create () in
  let ram = Phys_mem.create ~size:(ram_pages * Layout.page_size) in
  let backend =
    if local then Transfer.local_backend ram ~setup_ps:1000 ~bytes_per_s:1e9
    else Transfer.null_backend
  in
  let engine =
    Engine.create ~clock ~backend ~ram_size:(Phys_mem.size ram) ~mechanism ?n_contexts ()
  in
  (engine, clock, ram)

let dstore ?(pid = 1) engine paddr value =
  ignore ((Engine.device engine).Bus.handle { Txn.op = Txn.Store; paddr; value; pid; at = 0 } : int)

let dload ?(pid = 1) engine paddr =
  (Engine.device engine).Bus.handle { Txn.op = Txn.Load; paddr; value = 0; pid; at = 0 }

let control offset = Layout.kernel_control_page + offset

let started engine = List.length (Engine.transfers engine)

let test_engine_claims () =
  let engine, _, _ = make_engine () in
  let d = Engine.device engine in
  checkb "mmio" true (d.Bus.claims Layout.mmio_base);
  checkb "shadow" true (d.Bus.claims (Shadow.encode 0x100));
  checkb "ram" false (d.Bus.claims 0x100)

let test_engine_kernel_path () =
  let engine, _, _ = make_engine () in
  dstore engine (control Regmap.k_source) 0x100;
  dstore engine (control Regmap.k_dest) 0x2000;
  dstore engine (control Regmap.k_size) 64;
  checki "one transfer" 1 (started engine);
  (match Engine.transfers engine with
  | [ tr ] ->
    checki "src" 0x100 tr.Transfer.src;
    checki "dst" 0x2000 tr.Transfer.dst;
    checki "size" 64 tr.Transfer.size;
    checkb "no context" true (tr.Transfer.context = None)
  | _ -> Alcotest.fail "transfers");
  checki "status complete" 0 (dload engine (control Regmap.k_status))

let test_engine_kernel_bad_range () =
  let engine, _, _ = make_engine () in
  dstore engine (control Regmap.k_source) (ram_pages * Layout.page_size);
  dstore engine (control Regmap.k_dest) 0;
  dstore engine (control Regmap.k_size) 64;
  checki "nothing started" 0 (started engine);
  checki "status failure" Status.failure (dload engine (control Regmap.k_status));
  checki "rejected counter" 1 (Engine.counters engine).Engine.rejected

let test_engine_kernel_zero_size () =
  let engine, _, _ = make_engine () in
  dstore engine (control Regmap.k_source) 0;
  dstore engine (control Regmap.k_dest) 64;
  dstore engine (control Regmap.k_size) 0;
  checki "zero size rejected" 0 (started engine)

let key_word key context = (key lsl 4) lor context

let test_engine_key_path () =
  let engine, _, _ = make_engine ~mechanism:Engine.Key_based () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  dstore engine (control (Regmap.key_offset ~context:1)) 0xbeef;
  (* dest then src through the shadow window *)
  dstore engine (Shadow.encode 0x3000) (key_word 0xbeef 1);
  dstore engine (Shadow.encode 0x1000) (key_word 0xbeef 1);
  (* size through the context page, then the initiating load *)
  dstore engine (Layout.context_page 1 + Regmap.c_size) 128;
  let status = dload engine (Layout.context_page 1) in
  checki "started" 1 (started engine);
  checki "status" 0 status;
  match Engine.transfers engine with
  | [ tr ] ->
    checki "src" 0x1000 tr.Transfer.src;
    checki "dst" 0x3000 tr.Transfer.dst;
    Alcotest.(check (option int)) "context" (Some 1) tr.Transfer.context
  | _ -> Alcotest.fail "transfers"

let test_engine_key_rejects_wrong_key () =
  let engine, _, _ = make_engine ~mechanism:Engine.Key_based () in
  dstore engine (control (Regmap.key_offset ~context:0)) 0xbeef;
  dstore engine (Shadow.encode 0x3000) (key_word 0xdead 0);
  dstore engine (Shadow.encode 0x1000) (key_word 0xdead 0);
  dstore engine (Layout.context_page 0) 128;
  checki "go load fails" Status.failure (dload engine (Layout.context_page 0));
  checki "nothing started" 0 (started engine);
  checki "key rejections" 2 (Engine.counters engine).Engine.key_rejected

let test_engine_key_rejects_bad_context () =
  let engine, _, _ = make_engine ~mechanism:Engine.Key_based ~n_contexts:2 () in
  dstore engine (Shadow.encode 0x3000) (key_word 0 7);
  checki "nothing deposited" 0 (started engine);
  checkb "no-context event" true
    (List.exists
       (function
         | Engine.Rejected { reason = Engine.No_context; _ } -> true
         | Engine.Rejected _ | Engine.Started _ | Engine.Atomic_done _ -> false)
       (Engine.events engine))

let test_engine_key_shadow_load_unsupported () =
  let engine, _, _ = make_engine ~mechanism:Engine.Key_based () in
  checki "load from shadow fails" Status.failure (dload engine (Shadow.encode 0x1000))

let test_engine_key_interrupted_resumes () =
  (* deposits survive arbitrary interleaving because the context is
     private: deposit dest, let another process bang on its own
     context, then finish *)
  let engine, _, _ = make_engine ~mechanism:Engine.Key_based () in
  dstore engine (control (Regmap.key_offset ~context:0)) 111;
  dstore engine (control (Regmap.key_offset ~context:1)) 222;
  dstore engine (Shadow.encode 0x3000) (key_word 111 0);
  (* other process's full initiation on context 1 *)
  dstore engine ~pid:2 (Shadow.encode 0x5000) (key_word 222 1);
  dstore engine ~pid:2 (Shadow.encode 0x4000) (key_word 222 1);
  dstore engine ~pid:2 (Layout.context_page 1) 32;
  checki "ctx1 started" 0 (dload engine ~pid:2 (Layout.context_page 1));
  (* original process resumes *)
  dstore engine (Shadow.encode 0x1000) (key_word 111 0);
  dstore engine (Layout.context_page 0) 64;
  checki "ctx0 started" 0 (dload engine (Layout.context_page 0));
  checki "both transfers" 2 (started engine);
  match Engine.transfers engine with
  | [ t1; t2 ] ->
    checki "ctx1 src" 0x4000 t1.Transfer.src;
    checki "ctx0 src" 0x1000 t2.Transfer.src;
    checki "ctx0 dst intact" 0x3000 t2.Transfer.dst
  | _ -> Alcotest.fail "expected two transfers"

let test_engine_ext_shadow_path () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow () in
  dstore engine (Shadow.encode_ctx ~context:2 0x3000) 64;
  checki "fires on load" 0 (dload engine (Shadow.encode_ctx ~context:2 0x1000));
  (match Engine.transfers engine with
  | [ tr ] ->
    checki "src" 0x1000 tr.Transfer.src;
    checki "dst" 0x3000 tr.Transfer.dst;
    Alcotest.(check (option int)) "context" (Some 2) tr.Transfer.context
  | _ -> Alcotest.fail "transfers");
  (* args consumed: a second load fails *)
  checki "consumed" Status.failure (dload engine (Shadow.encode_ctx ~context:2 0x1000))

let test_engine_ext_shadow_context_isolation () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow () in
  dstore engine (Shadow.encode_ctx ~context:0 0x3000) 64;
  (* load on a different context: its own slot is empty *)
  checki "other context empty" Status.failure (dload engine (Shadow.encode_ctx ~context:1 0x1000));
  checki "nothing started" 0 (started engine);
  (* context 0 still holds its argument *)
  checki "context 0 fires" 0 (dload engine (Shadow.encode_ctx ~context:0 0x1000))

let test_engine_ext_shadow_bad_context () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow ~n_contexts:2 () in
  dstore engine (Shadow.encode_ctx ~context:3 0x3000) 64;
  checki "no context" Status.failure (dload engine (Shadow.encode_ctx ~context:3 0x1000));
  checki "nothing started" 0 (started engine)

let test_engine_ext_stateless_pair () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow_stateless () in
  dstore engine (Shadow.encode_ctx ~context:2 0x3000) 64;
  checki "matched pair fires" 0 (dload engine (Shadow.encode_ctx ~context:2 0x1000));
  checki "started" 1 (started engine)

let test_engine_ext_stateless_mismatch () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow_stateless () in
  dstore engine ~pid:1 (Shadow.encode_ctx ~context:0 0x3000) 64;
  (* interloper's store replaces the pending pair half with ctx 1 *)
  dstore engine ~pid:2 (Shadow.encode_ctx ~context:1 0x5000) 64;
  checki "mismatched pair rejected" Status.failure
    (dload engine ~pid:1 (Shadow.encode_ctx ~context:0 0x1000));
  checki "nothing started" 0 (started engine);
  checkb "wrong-context event" true
    (List.exists
       (function
         | Engine.Rejected { reason = Engine.Wrong_context; _ } -> true
         | Engine.Rejected _ | Engine.Started _ | Engine.Atomic_done _ -> false)
       (Engine.events engine))

let test_engine_shared_slot_atomic_stateless () =
  (* the shared atomic slot also serves the contextless engine (used
     by PAL-wrapped atomics on that personality) *)
  let engine, _, ram = make_engine ~mechanism:Engine.Ext_shadow_stateless ~local:true () in
  Phys_mem.store_word ram 0x800 9;
  let a = Shadow.encode_atomic ~context:0 0x800 in
  dstore engine a (Atomic_op.encode_add 4);
  checki "old value" 9 (dload engine a);
  checki "applied" 13 (Phys_mem.load_word ram 0x800)

let test_engine_shared_slot_atomic_target_mismatch () =
  let engine, _, ram = make_engine ~mechanism:Engine.Shrimp_two_step ~local:true () in
  Phys_mem.store_word ram 0x800 9;
  dstore engine (Shadow.encode_atomic ~context:0 0x800) (Atomic_op.encode_add 4);
  checki "different target rejected" Status.failure
    (dload engine (Shadow.encode_atomic ~context:0 0x900));
  checki "untouched" 9 (Phys_mem.load_word ram 0x800);
  (* the slot was consumed by the failed load *)
  checki "slot cleared" Status.failure (dload engine (Shadow.encode_atomic ~context:0 0x800))

let test_engine_two_step () =
  let engine, _, _ = make_engine ~mechanism:Engine.Shrimp_two_step () in
  dstore engine (Shadow.encode 0x3000) 64;
  checki "fires" 0 (dload engine (Shadow.encode 0x1000));
  checki "started" 1 (started engine);
  checki "pending consumed" Status.failure (dload engine (Shadow.encode 0x1000))

let test_engine_two_step_invalidate () =
  let engine, _, _ = make_engine ~mechanism:Engine.Shrimp_two_step () in
  dstore engine (Shadow.encode 0x3000) 64;
  (* the SHRIMP context-switch hook *)
  dstore engine (control Regmap.k_invalidate) 0;
  checki "pending gone" Status.failure (dload engine (Shadow.encode 0x1000));
  checki "nothing started" 0 (started engine)

let test_engine_two_step_overwrite_race () =
  (* the unprotected race: a second store overwrites the pending dest *)
  let engine, _, _ = make_engine ~mechanism:Engine.Shrimp_two_step () in
  dstore engine ~pid:1 (Shadow.encode 0x3000) 64;
  dstore engine ~pid:2 (Shadow.encode 0x5000) 64;
  ignore (dload engine ~pid:1 (Shadow.encode 0x1000) : int);
  match Engine.transfers engine with
  | [ tr ] -> checki "wrong destination won" 0x5000 tr.Transfer.dst
  | _ -> Alcotest.fail "expected the mixed transfer"

let test_engine_flash_gates_on_pid () =
  let engine, _, _ = make_engine ~mechanism:Engine.Flash () in
  Engine.set_current_pid engine 1;
  dstore engine ~pid:1 (Shadow.encode 0x3000) 64;
  (* context switch: the modified kernel updates the register *)
  Engine.set_current_pid engine 2;
  dstore engine ~pid:2 (Shadow.encode 0x5000) 64;
  Engine.set_current_pid engine 1;
  checki "victim load rejected (pending is pid 2's)" Status.failure
    (dload engine ~pid:1 (Shadow.encode 0x1000));
  checki "nothing started" 0 (started engine);
  (* a clean uninterrupted initiation works *)
  dstore engine ~pid:1 (Shadow.encode 0x3000) 64;
  checki "clean initiation" 0 (dload engine ~pid:1 (Shadow.encode 0x1000))

let test_engine_mapped_out () =
  let engine, _, _ = make_engine ~mechanism:Engine.Shrimp_mapped () in
  Engine.map_out engine ~src_page:0x2000 ~dst_page:0x8000;
  Alcotest.(check (option int)) "mapped" (Some 0x8000) (Engine.mapped_out_dst engine ~src_page:0x2000);
  dstore engine (Shadow.encode 0x2040) 64;
  (match Engine.transfers engine with
  | [ tr ] ->
    checki "src" 0x2040 tr.Transfer.src;
    checki "dst twin + offset" 0x8040 tr.Transfer.dst
  | _ -> Alcotest.fail "expected transfer");
  checki "status load" 0 (dload engine (Shadow.encode 0x2040))

let test_engine_mapped_out_via_control_page () =
  let engine, _, _ = make_engine ~mechanism:Engine.Shrimp_mapped () in
  dstore engine (control Regmap.k_map_out_src) 0x2000;
  dstore engine (control Regmap.k_map_out_dst) 0x6000;
  Alcotest.(check (option int)) "installed" (Some 0x6000)
    (Engine.mapped_out_dst engine ~src_page:0x2000)

let test_engine_mapped_out_missing () =
  let engine, _, _ = make_engine ~mechanism:Engine.Shrimp_mapped () in
  dstore engine (Shadow.encode 0x2000) 64;
  checki "nothing started" 0 (started engine);
  checki "status reports failure" Status.failure (dload engine (Shadow.encode 0x2000))

let test_engine_rep_five () =
  let engine, _, _ = make_engine ~mechanism:(Engine.Rep_args Seq_matcher.Five) () in
  let sd = Shadow.encode 0x3000 and ss = Shadow.encode 0x1000 in
  dstore engine sd 64;
  checki "mid-sequence load" Status.in_progress (dload engine ss);
  dstore engine sd 64;
  checki "second load" Status.in_progress (dload engine ss);
  checki "final load starts" 0 (dload engine sd);
  checki "started" 1 (started engine)

let test_engine_rep_broken_sequence_status () =
  let engine, _, _ = make_engine ~mechanism:(Engine.Rep_args Seq_matcher.Five) () in
  checki "lone load = failure" Status.failure (dload engine (Shadow.encode 0x1000));
  checki "counted" 1 (Engine.counters engine).Engine.rejected

let test_engine_local_backend_copies () =
  let engine, clock, ram = make_engine ~mechanism:Engine.Ext_shadow ~local:true () in
  Phys_mem.fill ram ~addr:0x1000 ~len:256 ~byte:0x5a;
  dstore engine (Shadow.encode_ctx ~context:0 0x4000) 256;
  let status = dload engine (Shadow.encode_ctx ~context:0 0x1000) in
  checkb "remaining positive at start" true (status > 0);
  checkb "bytes moved" true (Phys_mem.equal_range ram ram ~addr:0x1000 ~len:0 || Phys_mem.load_byte ram 0x4000 = 0x5a);
  checki "last byte" 0x5a (Phys_mem.load_byte ram (0x4000 + 255));
  (* status decays to 0 as time passes *)
  Clock.advance clock (Units.us 1000.0);
  checki "complete later" 0 (Engine.context_status engine 0)

let test_engine_atomic_kernel_regs () =
  let engine, _, ram = make_engine ~local:true () in
  Phys_mem.store_word ram 0x800 10;
  dstore engine (control Regmap.k_atomic_target) 0x800;
  dstore engine (control Regmap.k_atomic_op) (Atomic_op.encode_add 5);
  checki "old value" 10 (dload engine (control Regmap.k_atomic_op));
  checki "cell updated" 15 (Phys_mem.load_word ram 0x800);
  (* CAS through two stores *)
  dstore engine (control Regmap.k_atomic_target) 0x800;
  dstore engine (control Regmap.k_atomic_op) (Atomic_op.encode_cas_expected 15);
  dstore engine (control Regmap.k_atomic_op) (Atomic_op.encode_cas_new 99);
  checki "cas old" 15 (dload engine (control Regmap.k_atomic_op));
  checki "cas applied" 99 (Phys_mem.load_word ram 0x800)

let test_engine_atomic_ext_window () =
  let engine, _, ram = make_engine ~mechanism:Engine.Ext_shadow ~local:true () in
  Phys_mem.store_word ram 0x800 7;
  let a = Shadow.encode_atomic ~context:1 0x800 in
  dstore engine a (Atomic_op.encode_add 3);
  checki "old" 7 (dload engine a);
  checki "new" 10 (Phys_mem.load_word ram 0x800);
  checki "atomics counter" 1 (Engine.counters engine).Engine.atomics

let test_engine_atomic_ext_target_mismatch () =
  let engine, _, ram = make_engine ~mechanism:Engine.Ext_shadow ~local:true () in
  Phys_mem.store_word ram 0x800 7;
  dstore engine (Shadow.encode_atomic ~context:0 0x800) (Atomic_op.encode_add 3);
  (* load from a different target: rejected, pending cleared *)
  checki "mismatch" Status.failure (dload engine (Shadow.encode_atomic ~context:0 0x900));
  checki "cell untouched" 7 (Phys_mem.load_word ram 0x800)

let test_engine_atomic_key_window () =
  let engine, _, ram = make_engine ~mechanism:Engine.Key_based ~local:true () in
  Phys_mem.store_word ram 0x800 50;
  dstore engine (control (Regmap.key_offset ~context:0)) 0xfeed;
  dstore engine (Shadow.encode_atomic ~context:0 0x800) (key_word 0xfeed 0);
  dstore engine (Layout.context_page 0 + Regmap.c_atomic) (Atomic_op.encode_fetch_store 3);
  checki "old via context page" 50 (dload engine (Layout.context_page 0 + Regmap.c_atomic));
  checki "swapped" 3 (Phys_mem.load_word ram 0x800)

let test_engine_atomic_unaligned_rejected () =
  let engine, _, _ = make_engine ~local:true () in
  dstore engine (control Regmap.k_atomic_target) 0x803;
  dstore engine (control Regmap.k_atomic_op) (Atomic_op.encode_add 1);
  checki "unaligned" Status.failure (dload engine (control Regmap.k_atomic_op))

let test_engine_key_change_wipes_context () =
  let engine, _, _ = make_engine ~mechanism:Engine.Key_based () in
  dstore engine (control (Regmap.key_offset ~context:0)) 111;
  (* old owner deposits both addresses but is descheduled before go *)
  dstore engine (Shadow.encode 0x3000) (key_word 111 0);
  dstore engine (Shadow.encode 0x1000) (key_word 111 0);
  (* the OS reassigns the context to a new owner *)
  dstore engine (control (Regmap.key_offset ~context:0)) 222;
  (* the new owner stores a size and goes: must NOT fire with the old
     owner's addresses *)
  dstore engine ~pid:2 (Layout.context_page 0) 64;
  checki "go rejected" Status.failure (dload engine ~pid:2 (Layout.context_page 0));
  checki "nothing started" 0 (started engine);
  (* the old key no longer deposits *)
  dstore engine (Shadow.encode 0x5000) (key_word 111 0);
  checkb "old key dead" true
    ((Context_file.get (Engine.contexts engine) 0).Context_file.dest = None)

let test_engine_shrimp1_remote_twin () =
  (* SHRIMP-1's real design: the mapped-out twin lives on ANOTHER
     workstation — a remote-window page *)
  let engine, _, ram = make_engine ~mechanism:Engine.Shrimp_mapped ~local:true () in
  Phys_mem.fill ram ~addr:0x2000 ~len:32 ~byte:0x42;
  Engine.map_out engine ~src_page:0x2000 ~dst_page:(Layout.remote_base + 0x6000);
  dstore engine (Shadow.encode 0x2000) 32;
  checki "transfer started" 1 (started engine);
  (match Engine.take_outbound engine with
  | [ p ] ->
    checki "peer twin page" 0x6000 p.Engine.remote_addr;
    checki "payload" 0x42 (Char.code (Bytes.get p.Engine.payload 0))
  | _ -> Alcotest.fail "expected one packet");
  checki "no local write" 0 (Phys_mem.load_byte ram 0x6000)

let test_engine_mailbox_register () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow () in
  dstore engine (control (Regmap.mailbox_offset ~context:1)) 0x4000;
  Alcotest.(check (option int)) "mailbox set" (Some 0x4000)
    (Context_file.get (Engine.contexts engine) 1).Context_file.mailbox;
  dstore engine (control (Regmap.mailbox_offset ~context:1)) 0;
  Alcotest.(check (option int)) "mailbox cleared" None
    (Context_file.get (Engine.contexts engine) 1).Context_file.mailbox

let test_engine_remote_word_store () =
  let engine, _, _ = make_engine () in
  dstore engine (Layout.remote_base + 0x4010) 999;
  (match Engine.take_outbound engine with
  | [ p ] ->
    checki "remote address" 0x4010 p.Engine.remote_addr;
    checki "payload is the word" 999 (Int64.to_int (Bytes.get_int64_le p.Engine.payload 0))
  | _ -> Alcotest.fail "expected one packet");
  checki "drained" 0 (List.length (Engine.take_outbound engine));
  checki "counted" 1 (Engine.counters engine).Engine.remote_sends

let test_engine_remote_load_rejected () =
  let engine, _, _ = make_engine () in
  checki "remote load fails" Status.failure (dload engine (Layout.remote_base + 0x4000))

let test_engine_remote_dma_ships_payload () =
  let engine, _, ram = make_engine ~mechanism:Engine.Ext_shadow ~local:true () in
  Phys_mem.fill ram ~addr:0x1000 ~len:64 ~byte:0x7e;
  dstore engine (Shadow.encode_ctx ~context:0 (Layout.remote_base + 0x8000)) 64;
  let status = dload engine (Shadow.encode_ctx ~context:0 0x1000) in
  checkb "accepted" true (status >= 0);
  (match Engine.take_outbound engine with
  | [ p ] ->
    checki "peer address" 0x8000 p.Engine.remote_addr;
    checki "payload length" 64 (Bytes.length p.Engine.payload);
    checki "payload content" 0x7e (Char.code (Bytes.get p.Engine.payload 63))
  | _ -> Alcotest.fail "expected one packet");
  (* local RAM at the raw offset must NOT have been written *)
  checki "no local copy" 0 (Phys_mem.load_byte ram 0x8000)

let test_engine_remote_dma_range_checked () =
  let engine, _, _ = make_engine ~mechanism:Engine.Ext_shadow () in
  (* destination straddles the end of the remote window *)
  dstore engine (Shadow.encode_ctx ~context:0 (Layout.remote_limit - 8)) 64;
  checki "rejected" Status.failure (dload engine (Shadow.encode_ctx ~context:0 0x1000));
  checki "nothing shipped" 0 (List.length (Engine.take_outbound engine))

let test_engine_events_ordering () =
  let engine, _, _ = make_engine () in
  dstore engine (control Regmap.k_source) 0;
  dstore engine (control Regmap.k_dest) 64;
  dstore engine (control Regmap.k_size) 8;
  dstore engine (control Regmap.k_source) (1 lsl 40);
  dstore engine (control Regmap.k_size) 8;
  (match Engine.events engine with
  | [ Engine.Started _; Engine.Rejected { reason = Engine.Bad_range; _ } ] -> ()
  | _ -> Alcotest.fail "expected started-then-rejected");
  Engine.clear_events engine;
  checki "cleared" 0 (List.length (Engine.events engine))

(* fuzz: arbitrary user traffic through the user-reachable windows of a
   key-based engine, with no knowledge of the key, never starts a DMA *)
let engine_fuzz_key_no_transfers =
  qtest "engine fuzz: keyless traffic never starts a DMA (key-based)" ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 60)
        (triple bool (int_range 0 5) (int_range 0 ((1 lsl 30) - 1))))
    (fun stream ->
      let engine, _, _ = make_engine ~mechanism:Engine.Key_based () in
      (* a real, unguessable key guards every context *)
      List.iter
        (fun context ->
          dstore engine (control (Regmap.key_offset ~context)) ((0x5eC2e7 lsl 30) lor context))
        [ 0; 1; 2; 3 ];
      List.iter
        (fun (is_store, addr_kind, value) ->
          let paddr =
            match addr_kind with
            | 0 | 1 -> Shadow.encode ((value * 8) land 0xffff)
            | 2 -> Shadow.encode_ctx ~context:(value land 3) ((value * 16) land 0xffff)
            | 3 -> Shadow.encode_atomic ~context:(value land 3) ((value * 8) land 0xffff)
            | 4 -> Layout.context_page (value land 3) + (value land 0xf8)
            | _ -> Shadow.encode (value land 0xfff8)
          in
          if is_store then dstore engine ~pid:(2 + (value land 1)) paddr value
          else ignore (dload engine ~pid:(2 + (value land 1)) paddr : int))
        stream;
      Engine.transfers engine = [] && (Engine.counters engine).Engine.started = 0)

(* fuzz: whatever traffic any mechanism sees, every started transfer
   stays within RAM and the counters agree with the log *)
let engine_fuzz_invariants =
  qtest "engine fuzz: transfers in RAM, counters consistent" ~count:200
    QCheck2.Gen.(
      pair (int_range 0 5)
        (list_size (int_range 0 60) (triple bool (int_range 0 4) (int_range 0 ((1 lsl 20) - 1)))))
    (fun (mech_idx, stream) ->
      let mechanism =
        match mech_idx with
        | 0 -> Engine.Shrimp_two_step
        | 1 -> Engine.Flash
        | 2 -> Engine.Key_based
        | 3 -> Engine.Ext_shadow
        | 4 -> Engine.Rep_args Seq_matcher.Five
        | _ -> Engine.Shrimp_mapped
      in
      let engine, _, _ = make_engine ~mechanism () in
      Engine.map_out engine ~src_page:0x2000 ~dst_page:0x4000;
      List.iter
        (fun (is_store, addr_kind, value) ->
          let paddr =
            match addr_kind with
            | 0 -> Shadow.encode (value land 0x1ffff8)
            | 1 -> Shadow.encode_ctx ~context:(value land 3) (value land 0x1ffff8)
            | 2 -> Shadow.encode_atomic ~context:(value land 3) (value land 0x1ffff8)
            | 3 -> Layout.context_page (value land 3) + (value land 0xf8)
            | _ -> control (value land 0xf8)
          in
          if is_store then dstore engine ~pid:(1 + (value land 1)) paddr value
          else ignore (dload engine ~pid:(1 + (value land 1)) paddr : int))
        stream;
      let transfers = Engine.transfers engine in
      List.length transfers = (Engine.counters engine).Engine.started
      && List.for_all
           (fun (tr : Transfer.t) ->
             tr.Transfer.size > 0
             && tr.Transfer.src >= 0
             && tr.Transfer.src + tr.Transfer.size <= ram_pages * Layout.page_size
             && tr.Transfer.dst >= 0
             && tr.Transfer.dst + tr.Transfer.size <= ram_pages * Layout.page_size)
           transfers)

(* ------------------------------------------------------------------ *)
(* IOMMU virtual-address initiation *)

let ctx_page context = Layout.context_page context

let iommu_fire ?(pid = 1) engine ~context ~vsrc ~vdst ~size =
  dstore ~pid engine (ctx_page context + Regmap.c_arg_src) vsrc;
  dstore ~pid engine (ctx_page context + Regmap.c_arg_dst) vdst;
  dstore ~pid engine (ctx_page context + Regmap.c_size) size;
  dload ~pid engine (ctx_page context)

let reject_reasons engine =
  List.filter_map
    (function
      | Engine.Rejected { reason; _ } -> Some reason
      | Engine.Started _ | Engine.Atomic_done _ -> None)
    (Engine.events engine)

let iommu_table () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:1 (Pte.make ~frame:2 ~perms:Perms.read_write ());
  Page_table.map pt ~vpage:3 (Pte.make ~frame:4 ~perms:Perms.read_write ());
  pt

let test_engine_iommu_path () =
  let engine, _, _ = make_engine ~mechanism:Engine.Iommu () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  Engine.iommu_bind engine ~context:1 ~table:(iommu_table ());
  let status = iommu_fire engine ~context:1 ~vsrc:(Layout.page_size + 0x40) ~vdst:(3 * Layout.page_size) ~size:64 in
  checki "status" 0 status;
  (match Engine.transfers engine with
  | [ tr ] ->
    checki "src translated" ((2 * Layout.page_size) + 0x40) tr.Transfer.src;
    checki "dst translated" (4 * Layout.page_size) tr.Transfer.dst;
    Alcotest.(check (option int)) "context" (Some 1) tr.Transfer.context
  | _ -> Alcotest.fail "transfers");
  let s = Engine.iotlb_stats engine in
  checki "cold fire walks both pages" 2 s.Uldma_mmu.Iotlb.misses;
  (* the second initiation reuses the cached translations *)
  ignore (iommu_fire engine ~context:1 ~vsrc:(Layout.page_size + 0x40) ~vdst:(3 * Layout.page_size) ~size:64 : int);
  let s = Engine.iotlb_stats engine in
  checki "warm fire hits" 2 s.Uldma_mmu.Iotlb.hits;
  checki "no extra walks" 2 s.Uldma_mmu.Iotlb.misses

let test_engine_iommu_not_present () =
  let engine, _, _ = make_engine ~mechanism:Engine.Iommu () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  Engine.iommu_bind engine ~context:1 ~table:(iommu_table ());
  checki "unmapped src fails" Status.failure
    (iommu_fire engine ~context:1 ~vsrc:(9 * Layout.page_size) ~vdst:(3 * Layout.page_size) ~size:64);
  checkb "not-present reject" true (List.mem Engine.Not_present (reject_reasons engine));
  checki "nothing started" 0 (started engine)

let test_engine_iommu_rights () =
  (* a read-only destination page translates but fails the access
     check — also Not_present, like a real IOMMU's translation fault *)
  let engine, _, _ = make_engine ~mechanism:Engine.Iommu () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  let pt = iommu_table () in
  Page_table.map pt ~vpage:3 (Pte.make ~frame:4 ~perms:Perms.read_only ());
  Engine.iommu_bind engine ~context:1 ~table:pt;
  checki "read-only dst fails" Status.failure
    (iommu_fire engine ~context:1 ~vsrc:Layout.page_size ~vdst:(3 * Layout.page_size) ~size:64);
  checkb "not-present reject" true (List.mem Engine.Not_present (reject_reasons engine))

let test_engine_iommu_unbound () =
  let engine, _, _ = make_engine ~mechanism:Engine.Iommu () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  checki "no table bound" Status.failure
    (iommu_fire engine ~context:1 ~vsrc:Layout.page_size ~vdst:(3 * Layout.page_size) ~size:64);
  checkb "not-present reject" true (List.mem Engine.Not_present (reject_reasons engine))

let test_engine_iommu_invalidate_refetches () =
  let engine, _, _ = make_engine ~mechanism:Engine.Iommu () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  let pt = iommu_table () in
  Engine.iommu_bind engine ~context:1 ~table:pt;
  ignore (iommu_fire engine ~context:1 ~vsrc:Layout.page_size ~vdst:(3 * Layout.page_size) ~size:64 : int);
  (* the OS remaps the source page and shoots down its entry; the next
     fire must walk again and see the new frame *)
  Page_table.map pt ~vpage:1 (Pte.make ~frame:5 ~perms:Perms.read_write ());
  Engine.iotlb_invalidate engine ~vpage:1;
  ignore (iommu_fire engine ~context:1 ~vsrc:Layout.page_size ~vdst:(3 * Layout.page_size) ~size:64 : int);
  (match Engine.transfers engine with
  | [ _; tr ] -> checki "re-walked src" (5 * Layout.page_size) tr.Transfer.src
  | _ -> Alcotest.fail "expected two transfers");
  (* stale entry without shootdown would have kept firing from frame 2;
     a full flush (context switch) forces both pages to re-walk *)
  let misses_before = (Engine.iotlb_stats engine).Uldma_mmu.Iotlb.misses in
  Engine.iotlb_flush engine;
  ignore (iommu_fire engine ~context:1 ~vsrc:Layout.page_size ~vdst:(3 * Layout.page_size) ~size:64 : int);
  let misses_after = (Engine.iotlb_stats engine).Uldma_mmu.Iotlb.misses in
  checki "post-flush fire re-walks both pages" (misses_before + 2) misses_after

(* ------------------------------------------------------------------ *)
(* CAPIO capability-checked initiation *)

let install_cap engine ~value ~base ~len ~context ~pid ~read ~write =
  dstore engine (control Regmap.k_cap_value) value;
  dstore engine (control Regmap.k_cap_base) base;
  dstore engine (control Regmap.k_cap_len) len;
  let meta =
    context lor (if read then 0x100 else 0) lor (if write then 0x200 else 0) lor (pid lsl 16)
  in
  dstore engine (control Regmap.k_cap_commit) meta

let capio_fire ?(pid = 1) engine ~context ~cap_src ~cap_dst ~size =
  dstore ~pid engine (ctx_page context + Regmap.c_arg_src) cap_src;
  dstore ~pid engine (ctx_page context + Regmap.c_arg_dst) cap_dst;
  dstore ~pid engine (ctx_page context + Regmap.c_size) size;
  dload ~pid engine (ctx_page context)

let capio_engine () =
  let engine, _, _ = make_engine ~mechanism:Engine.Capio ~n_contexts:4 () in
  Engine.set_context_owner engine ~context:1 ~pid:(Some 1);
  install_cap engine ~value:0xCAFE ~base:0x1000 ~len:128 ~context:1 ~pid:1 ~read:true
    ~write:false;
  install_cap engine ~value:0xD00D ~base:0x3000 ~len:128 ~context:1 ~pid:1 ~read:false
    ~write:true;
  engine

let test_engine_capio_path () =
  let engine = capio_engine () in
  checki "status" 0 (capio_fire engine ~context:1 ~cap_src:0xCAFE ~cap_dst:0xD00D ~size:128);
  match Engine.transfers engine with
  | [ tr ] ->
    checki "src from cap base" 0x1000 tr.Transfer.src;
    checki "dst from cap base" 0x3000 tr.Transfer.dst;
    checki "size" 128 tr.Transfer.size
  | _ -> Alcotest.fail "transfers"

let test_engine_capio_forged () =
  let engine = capio_engine () in
  checki "forged value fails" Status.failure
    (capio_fire engine ~context:1 ~cap_src:0xBAD ~cap_dst:0xD00D ~size:64);
  checkb "bad-capability reject" true (List.mem Engine.Bad_capability (reject_reasons engine));
  checki "nothing started" 0 (started engine)

let test_engine_capio_foreign_context () =
  (* the laundering move: a victim's capability replayed through the
     accomplice's own context is as bad as a forged one *)
  let engine = capio_engine () in
  Engine.set_context_owner engine ~context:2 ~pid:(Some 2);
  checki "foreign context fails" Status.failure
    (capio_fire ~pid:2 engine ~context:2 ~cap_src:0xCAFE ~cap_dst:0xD00D ~size:64);
  checkb "bad-capability reject" true (List.mem Engine.Bad_capability (reject_reasons engine));
  checki "nothing started" 0 (started engine)

let test_engine_capio_revoked () =
  let engine = capio_engine () in
  dstore engine (control Regmap.k_cap_revoke) 0xCAFE;
  checki "revoked fails" Status.failure
    (capio_fire engine ~context:1 ~cap_src:0xCAFE ~cap_dst:0xD00D ~size:64);
  checkb "revoked (not bad) reject" true
    (List.mem Engine.Revoked_capability (reject_reasons engine));
  checkb "no bad_capability mislabel" false
    (List.mem Engine.Bad_capability (reject_reasons engine));
  checki "nothing started" 0 (started engine)

let test_engine_capio_revoked_by_range () =
  (* unmap shootdown: revoking by physical range kills the cap *)
  let engine = capio_engine () in
  Engine.revoke_caps_range engine ~base:0x3000 ~len:Layout.page_size;
  checki "range-revoked fails" Status.failure
    (capio_fire engine ~context:1 ~cap_src:0xCAFE ~cap_dst:0xD00D ~size:64);
  checkb "revoked reject" true (List.mem Engine.Revoked_capability (reject_reasons engine))

let test_engine_capio_out_of_range () =
  let engine = capio_engine () in
  checki "oversized fails" Status.failure
    (capio_fire engine ~context:1 ~cap_src:0xCAFE ~cap_dst:0xD00D ~size:256);
  checkb "bad-range reject" true (List.mem Engine.Bad_range (reject_reasons engine));
  checki "nothing started" 0 (started engine)

let test_engine_capio_rights () =
  (* the write-only cap cannot source a transfer, nor the read-only
     cap sink one *)
  let engine = capio_engine () in
  checki "write-only src fails" Status.failure
    (capio_fire engine ~context:1 ~cap_src:0xD00D ~cap_dst:0xCAFE ~size:64);
  checkb "bad-capability reject" true (List.mem Engine.Bad_capability (reject_reasons engine));
  checki "nothing started" 0 (started engine)

let test_engine_capio_pid_revocation () =
  let engine = capio_engine () in
  Engine.revoke_caps_pid engine ~pid:1;
  checki "dead owner's caps fail" Status.failure
    (capio_fire engine ~context:1 ~cap_src:0xCAFE ~cap_dst:0xD00D ~size:64);
  checkb "revoked reject" true (List.mem Engine.Revoked_capability (reject_reasons engine))

let test_engine_copy_independent () =
  let engine, clock, ram = make_engine () in
  dstore engine (Shadow.encode 0x3000) (key_word 0 0);
  let copy =
    Engine.copy engine ~clock:(Clock.copy clock)
      ~backend:(Transfer.local_backend (Phys_mem.copy ram) ~setup_ps:0 ~bytes_per_s:1e9)
  in
  dstore copy (control Regmap.k_source) 0;
  dstore copy (control Regmap.k_dest) 64;
  dstore copy (control Regmap.k_size) 8;
  checki "copy started one" 1 (started copy);
  checki "original untouched" 0 (started engine)

let () =
  Alcotest.run "dma"
    [
      ( "seq_matcher",
        [
          Alcotest.test_case "five happy path" `Quick test_matcher_five_happy;
          Alcotest.test_case "three happy path" `Quick test_matcher_three_happy;
          Alcotest.test_case "four happy path" `Quick test_matcher_four_happy;
          Alcotest.test_case "lengths" `Quick test_matcher_lengths;
          Alcotest.test_case "wrong address resets" `Quick test_matcher_wrong_address_resets;
          Alcotest.test_case "size mismatch resets" `Quick test_matcher_size_mismatch_resets;
          Alcotest.test_case "wrong op resets and reseeds" `Quick test_matcher_wrong_op_resets;
          Alcotest.test_case "load cannot seed five" `Quick test_matcher_load_cannot_seed_five;
          Alcotest.test_case "Fig. 5 stream" `Quick test_matcher_fig5_stream;
          Alcotest.test_case "Fig. 6 stream" `Quick test_matcher_fig6_stream;
          Alcotest.test_case "copy independent" `Quick test_matcher_copy_independent;
          matcher_clean_sequence_fires;
          matcher_fire_implies_pattern;
        ] );
      ( "context_file",
        [
          Alcotest.test_case "create bounds" `Quick test_ctx_create_bounds;
          Alcotest.test_case "slots alternate" `Quick test_ctx_slots_alternate;
          Alcotest.test_case "third push wraps" `Quick test_ctx_third_push_wraps;
          Alcotest.test_case "clear and reset" `Quick test_ctx_clear_and_reset;
          Alcotest.test_case "get bounds" `Quick test_ctx_get_bounds;
          Alcotest.test_case "copy independent" `Quick test_ctx_copy_independent;
        ] );
      ( "atomic_op",
        [
          Alcotest.test_case "encode/decode" `Quick test_atomic_encode_decode;
          Alcotest.test_case "cas halves" `Quick test_atomic_cas_two_halves;
          Alcotest.test_case "cas out of order" `Quick test_atomic_cas_out_of_order;
          Alcotest.test_case "bad opcode" `Quick test_atomic_bad_opcode;
          Alcotest.test_case "negative operand" `Quick test_atomic_negative_operand;
          Alcotest.test_case "execute" `Quick test_atomic_execute;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "remaining" `Quick test_transfer_remaining;
          Alcotest.test_case "null backend" `Quick test_transfer_null_backend;
          Alcotest.test_case "local backend" `Quick test_transfer_local_backend;
        ] );
      ( "engine",
        [
          Alcotest.test_case "claims" `Quick test_engine_claims;
          Alcotest.test_case "kernel path" `Quick test_engine_kernel_path;
          Alcotest.test_case "kernel bad range" `Quick test_engine_kernel_bad_range;
          Alcotest.test_case "kernel zero size" `Quick test_engine_kernel_zero_size;
          Alcotest.test_case "key path" `Quick test_engine_key_path;
          Alcotest.test_case "key rejects wrong key" `Quick test_engine_key_rejects_wrong_key;
          Alcotest.test_case "key rejects bad context" `Quick test_engine_key_rejects_bad_context;
          Alcotest.test_case "key shadow load unsupported" `Quick
            test_engine_key_shadow_load_unsupported;
          Alcotest.test_case "key interrupted resumes" `Quick test_engine_key_interrupted_resumes;
          Alcotest.test_case "ext-shadow path" `Quick test_engine_ext_shadow_path;
          Alcotest.test_case "ext-shadow context isolation" `Quick
            test_engine_ext_shadow_context_isolation;
          Alcotest.test_case "ext-shadow bad context" `Quick test_engine_ext_shadow_bad_context;
          Alcotest.test_case "ext-stateless pair" `Quick test_engine_ext_stateless_pair;
          Alcotest.test_case "shared-slot atomic (stateless)" `Quick
            test_engine_shared_slot_atomic_stateless;
          Alcotest.test_case "shared-slot atomic mismatch" `Quick
            test_engine_shared_slot_atomic_target_mismatch;
          Alcotest.test_case "ext-stateless mismatch" `Quick test_engine_ext_stateless_mismatch;
          Alcotest.test_case "two-step" `Quick test_engine_two_step;
          Alcotest.test_case "two-step invalidate" `Quick test_engine_two_step_invalidate;
          Alcotest.test_case "two-step overwrite race" `Quick test_engine_two_step_overwrite_race;
          Alcotest.test_case "flash gates on pid" `Quick test_engine_flash_gates_on_pid;
          Alcotest.test_case "mapped out" `Quick test_engine_mapped_out;
          Alcotest.test_case "mapped out via control page" `Quick
            test_engine_mapped_out_via_control_page;
          Alcotest.test_case "mapped out missing" `Quick test_engine_mapped_out_missing;
          Alcotest.test_case "rep five statuses" `Quick test_engine_rep_five;
          Alcotest.test_case "iommu path + iotlb reuse" `Quick test_engine_iommu_path;
          Alcotest.test_case "iommu not present" `Quick test_engine_iommu_not_present;
          Alcotest.test_case "iommu rights fault" `Quick test_engine_iommu_rights;
          Alcotest.test_case "iommu unbound context" `Quick test_engine_iommu_unbound;
          Alcotest.test_case "iommu invalidate refetches" `Quick
            test_engine_iommu_invalidate_refetches;
          Alcotest.test_case "capio path" `Quick test_engine_capio_path;
          Alcotest.test_case "capio forged" `Quick test_engine_capio_forged;
          Alcotest.test_case "capio foreign context" `Quick test_engine_capio_foreign_context;
          Alcotest.test_case "capio revoked" `Quick test_engine_capio_revoked;
          Alcotest.test_case "capio revoked by range" `Quick test_engine_capio_revoked_by_range;
          Alcotest.test_case "capio out of range" `Quick test_engine_capio_out_of_range;
          Alcotest.test_case "capio rights" `Quick test_engine_capio_rights;
          Alcotest.test_case "capio pid revocation" `Quick test_engine_capio_pid_revocation;
          Alcotest.test_case "rep broken sequence" `Quick test_engine_rep_broken_sequence_status;
          Alcotest.test_case "local backend copies" `Quick test_engine_local_backend_copies;
          Alcotest.test_case "atomic via kernel regs" `Quick test_engine_atomic_kernel_regs;
          Alcotest.test_case "atomic via ext window" `Quick test_engine_atomic_ext_window;
          Alcotest.test_case "atomic target mismatch" `Quick test_engine_atomic_ext_target_mismatch;
          Alcotest.test_case "atomic via key window" `Quick test_engine_atomic_key_window;
          Alcotest.test_case "atomic unaligned rejected" `Quick
            test_engine_atomic_unaligned_rejected;
          Alcotest.test_case "key change wipes context" `Quick
            test_engine_key_change_wipes_context;
          Alcotest.test_case "shrimp-1 remote twin" `Quick test_engine_shrimp1_remote_twin;
          Alcotest.test_case "mailbox register" `Quick test_engine_mailbox_register;
          Alcotest.test_case "remote word store" `Quick test_engine_remote_word_store;
          Alcotest.test_case "remote load rejected" `Quick test_engine_remote_load_rejected;
          Alcotest.test_case "remote DMA ships payload" `Quick test_engine_remote_dma_ships_payload;
          Alcotest.test_case "remote DMA range checked" `Quick test_engine_remote_dma_range_checked;
          Alcotest.test_case "events ordering" `Quick test_engine_events_ordering;
          Alcotest.test_case "copy independent" `Quick test_engine_copy_independent;
          engine_fuzz_key_no_transfers;
          engine_fuzz_invariants;
        ] );
    ]
