(* Tests for the sim library: the measurement harness reproduces
   Table 1 within tolerance, sweeps behave monotonically, the cluster
   delivers bytes, and the experiment registry is sound. *)

open Uldma_util
open Uldma_mem
open Uldma_os
module Mech = Uldma.Mech
module Api = Uldma.Api
module Measure = Uldma_sim.Measure
module Experiments = Uldma_sim.Experiments
module Cluster = Uldma_sim.Cluster
module Link = Uldma_net.Link

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Measure: Table 1 within tolerance *)

let paper = [ ("kernel", 18.6); ("ext-shadow", 1.1); ("rep-args", 2.6); ("key-based", 2.3) ]

let measure name = Measure.initiation ~iterations:400 (Api.find_exn name)

let test_table1_tolerances () =
  List.iter
    (fun (name, expected) ->
      let r = measure name in
      let error = abs_float (r.Measure.us_per_initiation -. expected) /. expected in
      if error > 0.12 then
        Alcotest.failf "%s: measured %.2f us vs paper %.1f us (%.0f%% off)" name
          r.Measure.us_per_initiation expected (100.0 *. error))
    paper

let test_table1_all_succeed () =
  List.iter
    (fun (name, _) ->
      let r = measure name in
      checki (name ^ " successes") r.Measure.iterations r.Measure.successes)
    paper

let test_order_of_magnitude () =
  (* "all user-level DMA methods perform about an order of magnitude
     better than the kernel-based DMA" *)
  let kernel = (measure "kernel").Measure.us_per_initiation in
  List.iter
    (fun name ->
      let user = (measure name).Measure.us_per_initiation in
      checkb (name ^ " ~10x better") true (kernel /. user > 6.0))
    [ "ext-shadow"; "rep-args"; "key-based"; "pal" ]

let test_ext_shadow_fastest () =
  (* "Best of all methods is the Extended Shadow Addressing" *)
  let ext = (measure "ext-shadow").Measure.us_per_initiation in
  List.iter
    (fun name ->
      checkb (name ^ " slower than ext-shadow") true
        ((measure name).Measure.us_per_initiation >= ext))
    [ "kernel"; "rep-args"; "key-based"; "pal" ]

let test_user_methods_scale_with_accesses () =
  (* "The other user-level DMA methods take 2.3-2.6 us, which is also
     expected since they use twice as many accesses" *)
  let ext = (measure "ext-shadow").Measure.us_per_initiation in
  let key = (measure "key-based").Measure.us_per_initiation in
  let ratio = key /. ext in
  checkb "about twice" true (ratio > 1.6 && ratio < 2.6)

let test_bus_speed_helps_user_more () =
  let base = Kernel.default_config in
  let fast = { base with Kernel.timing = Uldma_bus.Timing.pci66 } in
  let m b mech = (Measure.initiation ~base:b ~iterations:200 (Api.find_exn mech)).Measure.us_per_initiation in
  let ext_speedup = m base "ext-shadow" /. m fast "ext-shadow" in
  let kernel_speedup = m base "kernel" /. m fast "kernel" in
  checkb "user methods gain more from a faster bus" true (ext_speedup > kernel_speedup);
  checkb "ext gains substantially" true (ext_speedup > 2.0)

let test_syscall_cost_only_hits_kernel_path () =
  let slow =
    { Kernel.default_config with
      Kernel.timing = Uldma_bus.Timing.with_syscall_cycles Uldma_bus.Timing.alpha3000_300 5000 }
  in
  let m b mech = (Measure.initiation ~base:b ~iterations:200 (Api.find_exn mech)).Measure.us_per_initiation in
  checkb "kernel path slows" true (m slow "kernel" > m Kernel.default_config "kernel" *. 1.5);
  let delta = abs_float (m slow "ext-shadow" -. m Kernel.default_config "ext-shadow") in
  checkb "user path indifferent" true (delta < 0.01)

let test_atomic_measurements () =
  let k = Measure.atomic_add_initiation ~iterations:300 Uldma.Atomic.Kernel_initiated in
  let e = Measure.atomic_add_initiation ~iterations:300 Uldma.Atomic.Ext_shadow_initiated in
  let key = Measure.atomic_add_initiation ~iterations:300 Uldma.Atomic.Key_initiated in
  checki "kernel counter" 300 k.Measure.final_counter;
  checki "ext counter" 300 e.Measure.final_counter;
  checki "key counter" 300 key.Measure.final_counter;
  checkb "user-level much cheaper" true (k.Measure.us_per_op /. e.Measure.us_per_op > 5.0);
  checkb "ext cheaper than key" true (e.Measure.us_per_op < key.Measure.us_per_op)

let test_contention_latency () =
  let r = Measure.initiation_under_contention ~runs:40 (Api.find_exn "ext-shadow") in
  let s = r.Measure.latency_us in
  checkb "median above uncontended latency" true (s.Stats.p50 > 1.0);
  checkb "tail at least the median" true (s.Stats.p95 >= s.Stats.p50);
  (* the PAL stub cannot be preempted mid-sequence: its median beats
     the interruptible two-access stub under the same contention *)
  let pal = Measure.initiation_under_contention ~runs:40 (Api.find_exn "pal") in
  checkb "pal median tight" true (pal.Measure.latency_us.Stats.p50 <= s.Stats.p50 +. 1.0)

(* ------------------------------------------------------------------ *)
(* Cluster *)

let remote_buffer_paddr = 20 * Layout.page_size

let test_cluster_delivery () =
  let cluster =
    Cluster.create ~link:Link.atm155
      ~config:
        {
          Kernel.default_config with
          Kernel.ram_size = 64 * Layout.page_size;
          backend = Kernel.Local { bytes_per_s = 1e9 };
        }
  in
  let kernel = Cluster.sender cluster in
  let p = Kernel.spawn kernel ~name:"send" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst =
    Kernel.map_remote_pages kernel p ~remote_paddr:remote_buffer_paddr ~n:1
      ~perms:Perms.read_write
  in
  for i = 0 to 31 do
    Kernel.write_user kernel p (src + (8 * i)) (i + 1)
  done;
  Process.set_program p
    (Uldma_cpu.Asm.assemble_list
       [
         Uldma_cpu.Isa.Li (1, src);
         Uldma_cpu.Isa.Li (2, dst);
         Uldma_cpu.Isa.Li (3, 256);
         Uldma_cpu.Isa.Li (0, Sysno.sys_dma);
         Uldma_cpu.Isa.Syscall;
         Uldma_cpu.Isa.Halt;
       ]);
  ignore (Kernel.run kernel ~max_steps:100_000 () : Kernel.run_result);
  checki "packet settled" 1 (Cluster.settle cluster);
  checki "bytes delivered" 256 (Cluster.bytes_delivered cluster);
  checki "first word on receiver" 1
    (Phys_mem.load_word (Cluster.receiver_ram cluster) remote_buffer_paddr);
  checki "last word on receiver" 32
    (Phys_mem.load_word (Cluster.receiver_ram cluster) (remote_buffer_paddr + 248));
  checkb "arrival after wire time" true
    (Cluster.last_arrival_ps cluster >= Link.wire_time_ps Link.atm155 256)

let test_cluster_user_level_remote_dma () =
  (* the Telegraphos use case end to end: an ext-shadow user-level DMA
     whose destination is mapped remote memory *)
  let mech = Api.find_exn "ext-shadow" in
  let config =
    Api.kernel_config mech
      ~base:
        {
          Kernel.default_config with
          Kernel.ram_size = 64 * Layout.page_size;
          backend = Kernel.Local { bytes_per_s = 1e9 };
        }
  in
  let cluster = Cluster.create ~link:Link.gigabit ~config in
  let kernel = Cluster.sender cluster in
  let p = Kernel.spawn kernel ~name:"send" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst =
    Kernel.map_remote_pages kernel p ~remote_paddr:remote_buffer_paddr ~n:1
      ~perms:Perms.read_write
  in
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let prepared =
    mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages = 1 }
      ~dst:{ Mech.vaddr = dst; pages = 1 }
  in
  Kernel.write_user kernel p src 0xcafef00d;
  Process.set_program p
    (Uldma_workload.Stub_loop.build_single ~vsrc:src ~vdst:dst ~size:128 ~result_va
       ~emit_dma:prepared.Mech.emit_dma);
  ignore (Kernel.run kernel ~max_steps:100_000 () : Kernel.run_result);
  checki "stub saw success" 1 (Uldma_workload.Stub_loop.read_successes kernel p ~result_va);
  checki "one packet" 1 (Cluster.settle cluster);
  checki "payload on peer" 0xcafef00d
    (Phys_mem.load_word (Cluster.receiver_ram cluster) remote_buffer_paddr);
  checkb "kernel unmodified" false (Kernel.kernel_modified kernel)

let test_cluster_remote_word_store () =
  (* a plain uncached store to a remote page is a one-word packet *)
  let cluster =
    Cluster.create ~link:Link.gigabit
      ~config:{ Kernel.default_config with Kernel.ram_size = 64 * Layout.page_size }
  in
  let kernel = Cluster.sender cluster in
  let p = Kernel.spawn kernel ~name:"poker" ~program:[||] () in
  let dst =
    Kernel.map_remote_pages kernel p ~remote_paddr:remote_buffer_paddr ~n:1
      ~perms:Perms.read_write
  in
  Process.set_program p
    (Uldma_cpu.Asm.assemble_list
       [
         Uldma_cpu.Isa.Li (1, dst + 16);
         Uldma_cpu.Isa.Li (2, 4242);
         Uldma_cpu.Isa.Store (1, 0, 2);
         Uldma_cpu.Isa.Halt;
       ]);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  checki "one packet" 1 (Cluster.settle cluster);
  checki "word on peer" 4242
    (Phys_mem.load_word (Cluster.receiver_ram cluster) (remote_buffer_paddr + 16))

let test_cluster_ordering () =
  let nif = Uldma_net.Netif.create ~link:Link.gigabit in
  Uldma_net.Netif.send nif ~now:0 ~dst_paddr:0 ~payload:(Bytes.make 1000 'a');
  Uldma_net.Netif.send nif ~now:0 ~dst_paddr:8 ~payload:(Bytes.make 10 'b');
  (* serialisation: the second packet departs after the first *)
  checki "both in flight" 2 (Uldma_net.Netif.in_flight nif);
  let order = ref [] in
  ignore (Uldma_net.Netif.drain_all nif (fun p -> order := p.Uldma_net.Netif.dst_paddr :: !order));
  Alcotest.(check (list int)) "fifo" [ 0; 8 ] (List.rev !order)

let test_netif_serialisation () =
  let nif = Uldma_net.Netif.create ~link:Link.atm155 in
  (* two back-to-back sends: the second serialises after the first *)
  Uldma_net.Netif.send nif ~now:0 ~dst_paddr:0 ~payload:(Bytes.make 1024 'x');
  Uldma_net.Netif.send nif ~now:0 ~dst_paddr:0 ~payload:(Bytes.make 1024 'y');
  let arrivals = ref [] in
  ignore (Uldma_net.Netif.drain_all nif (fun p -> arrivals := p.Uldma_net.Netif.arrive_at :: !arrivals));
  (match List.rev !arrivals with
  | [ a1; a2 ] ->
    let serialisation = Units.transfer_ps ~bytes_per_s:Link.atm155.Link.bytes_per_s 1024 in
    checki "second delayed by one serialisation" (a1 + serialisation) a2
  | _ -> Alcotest.fail "expected two arrivals");
  checki "delivered count" 2 (Uldma_net.Netif.delivered nif)

let test_netif_poll_respects_time () =
  let nif = Uldma_net.Netif.create ~link:Link.atm155 in
  Uldma_net.Netif.send nif ~now:0 ~dst_paddr:0 ~payload:(Bytes.make 64 'x');
  checki "too early" 0 (Uldma_net.Netif.poll nif ~now:1 (fun _ -> ()));
  let arrival = match Uldma_net.Netif.next_arrival nif with Some a -> a | None -> 0 in
  checki "on time" 1 (Uldma_net.Netif.poll nif ~now:arrival (fun _ -> ()));
  checki "queue empty" 0 (Uldma_net.Netif.in_flight nif)

let test_link_wire_times () =
  checkb "atm155 slower than gigabit" true
    (Link.wire_time_ps Link.atm155 4096 > Link.wire_time_ps Link.gigabit 4096);
  checkb "bigger is slower" true
    (Link.wire_time_ps Link.atm155 4096 > Link.wire_time_ps Link.atm155 64)

let test_cluster_remote_atomic () =
  (* one-sided cluster: the atomic executes on receiver RAM and the
     old value flies back into the sender's mailbox word *)
  let config =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * Layout.page_size;
      mechanism = Uldma_dma.Engine.Ext_shadow;
      backend = Kernel.Local { bytes_per_s = 1e9 };
    }
  in
  let cluster = Cluster.create ~link:Link.gigabit ~config in
  let kernel = Cluster.sender cluster in
  let p = Kernel.spawn kernel ~name:"adder" ~program:[||] () in
  let mailbox = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let remote = Kernel.map_remote_pages kernel p ~remote_paddr:remote_buffer_paddr ~n:1 ~perms:Perms.read_write in
  let prepared =
    Uldma.Atomic.prepare Uldma.Atomic.Ext_shadow_initiated kernel p
      ~region:{ Mech.vaddr = remote; pages = 1 }
  in
  Kernel.set_atomic_mailbox kernel p ~vaddr:mailbox;
  Phys_mem.store_word (Cluster.receiver_ram cluster) remote_buffer_paddr 40;
  let asm = Uldma_cpu.Asm.create () in
  Uldma_cpu.Asm.li asm 1 remote;
  Uldma_cpu.Asm.li asm 5 2;
  prepared.Uldma.Atomic.emit_add asm ~operand:5;
  Uldma_cpu.Asm.halt asm;
  Process.set_program p (Uldma_cpu.Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  ignore (Cluster.settle cluster : int);
  checki "executed at receiver" 42 (Phys_mem.load_word (Cluster.receiver_ram cluster) remote_buffer_paddr);
  checki "old value delivered to mailbox" 40 (Kernel.read_user kernel p mailbox)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_snapshot () =
  let config = { Kernel.default_config with Kernel.ram_size = 64 * Layout.page_size } in
  let kernel = Kernel.create config in
  let spawn name n =
    let p = Kernel.spawn kernel ~name ~program:[||] () in
    let asm = Uldma_cpu.Asm.create () in
    let loop = Uldma_cpu.Asm.fresh_label asm "l" in
    Uldma_cpu.Asm.li asm 10 0;
    Uldma_cpu.Asm.li asm 11 n;
    Uldma_cpu.Asm.label asm loop;
    Uldma_cpu.Asm.add asm 10 10 (Uldma_cpu.Isa.Imm 1);
    Uldma_cpu.Asm.blt asm 10 11 loop;
    Uldma_cpu.Asm.halt asm;
    Process.set_program p (Uldma_cpu.Asm.assemble asm)
  in
  spawn "light" 50;
  spawn "heavy" 500;
  ignore (Kernel.run kernel () : Kernel.run_result);
  let m = Uldma_sim.Metrics.snapshot kernel in
  checki "two processes" 2 (List.length m.Uldma_sim.Metrics.processes);
  let shares = List.map (fun r -> r.Uldma_sim.Metrics.share) m.Uldma_sim.Metrics.processes in
  checkb "shares sum to ~1" true (abs_float (List.fold_left ( +. ) 0.0 shares -. 1.0) < 0.01);
  (match m.Uldma_sim.Metrics.processes with
  | [ light; heavy ] ->
    checkb "heavy ran ~10x the instructions" true
      (heavy.Uldma_sim.Metrics.instructions > 8 * light.Uldma_sim.Metrics.instructions);
    checkb "heavy got more cpu" true
      (heavy.Uldma_sim.Metrics.cpu_time_us > light.Uldma_sim.Metrics.cpu_time_us)
  | _ -> Alcotest.fail "rows");
  checkb "fairness spread > 1" true (Uldma_sim.Metrics.fairness_spread m > 1.0);
  checkb "renders" true
    (String.length (Tbl.render (Uldma_sim.Metrics.to_table m)) > 100)

let test_metrics_fair_round_robin () =
  let config =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * Layout.page_size;
      sched = Sched.Round_robin { quantum = 5 };
    }
  in
  let kernel = Kernel.create config in
  List.iter
    (fun name ->
      let p = Kernel.spawn kernel ~name ~program:[||] () in
      let asm = Uldma_cpu.Asm.create () in
      let loop = Uldma_cpu.Asm.fresh_label asm "l" in
      Uldma_cpu.Asm.li asm 10 0;
      Uldma_cpu.Asm.li asm 11 300;
      Uldma_cpu.Asm.label asm loop;
      Uldma_cpu.Asm.add asm 10 10 (Uldma_cpu.Isa.Imm 1);
      Uldma_cpu.Asm.blt asm 10 11 loop;
      Uldma_cpu.Asm.halt asm;
      Process.set_program p (Uldma_cpu.Asm.assemble asm))
    [ "a"; "b"; "c" ];
  ignore (Kernel.run kernel () : Kernel.run_result);
  let m = Uldma_sim.Metrics.snapshot kernel in
  checkb "equal work, near-equal time" true (Uldma_sim.Metrics.fairness_spread m < 1.15)

(* ------------------------------------------------------------------ *)
(* Duplex / ping-pong *)

let test_duplex_pingpong_orders () =
  let rtt send = Experiments.pingpong_rtt ~link:Link.gigabit ~send ~rounds:5 in
  let store = rtt Experiments.Remote_store in
  let ext = rtt Experiments.Ext_shadow_dma in
  let kernel = rtt Experiments.Kernel_dma in
  checkb "store cheapest" true (store <= ext);
  checkb "user DMA beats kernel DMA" true (ext < kernel);
  (* RTT must at least cover two wire crossings *)
  let floor_us = 2.0 *. Units.to_us (Link.wire_time_ps Link.gigabit 8) in
  checkb "causally consistent" true (store >= floor_us)

let test_duplex_basic_delivery () =
  let config = { Kernel.default_config with Kernel.ram_size = 64 * Layout.page_size } in
  let d = Uldma_sim.Duplex.create ~link:Link.gigabit ~config_a:config ~config_b:config in
  let ka = Uldma_sim.Duplex.kernel d Uldma_sim.Duplex.A in
  let kb = Uldma_sim.Duplex.kernel d Uldma_sim.Duplex.B in
  let a = Kernel.spawn ka ~name:"a" ~program:[||] () in
  let b = Kernel.spawn kb ~name:"b" ~program:(Uldma_cpu.Asm.assemble_list [ Uldma_cpu.Isa.Halt ]) () in
  let flag_b = Kernel.alloc_pages kb b ~n:1 ~perms:Perms.read_write in
  let peer = Kernel.user_paddr kb b flag_b in
  let remote = Kernel.map_remote_pages ka a ~remote_paddr:peer ~n:1 ~perms:Perms.read_write in
  Process.set_program a
    (Uldma_cpu.Asm.assemble_list
       Uldma_cpu.Isa.[ Li (1, remote); Li (2, 31337); Store (1, 0, 2); Halt ]);
  checkb "converges" true (Uldma_sim.Duplex.run d () = Uldma_sim.Duplex.All_exited);
  checki "word landed on B" 31337 (Kernel.read_user kb b flag_b);
  checki "one packet to B" 1 (Uldma_sim.Duplex.packets_delivered d Uldma_sim.Duplex.B);
  checki "none to A" 0 (Uldma_sim.Duplex.packets_delivered d Uldma_sim.Duplex.A)

let test_duplex_remote_atomic () =
  (* node A performs fetch-and-add on a counter living on node B; the
     old value comes back into A's kernel-set mailbox *)
  let config =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * Layout.page_size;
      mechanism = Uldma_dma.Engine.Ext_shadow;
      backend = Kernel.Local { bytes_per_s = 1e9 };
    }
  in
  let d = Uldma_sim.Duplex.create ~link:Link.gigabit ~config_a:config ~config_b:config in
  let ka = Uldma_sim.Duplex.kernel d Uldma_sim.Duplex.A in
  let kb = Uldma_sim.Duplex.kernel d Uldma_sim.Duplex.B in
  let b = Kernel.spawn kb ~name:"owner" ~program:(Uldma_cpu.Asm.assemble_list [ Uldma_cpu.Isa.Halt ]) () in
  let counter = Kernel.alloc_pages kb b ~n:1 ~perms:Perms.read_write in
  Kernel.write_user kb b counter 500;
  let a = Kernel.spawn ka ~name:"adder" ~program:[||] () in
  let mailbox = Kernel.alloc_pages ka a ~n:1 ~perms:Perms.read_write in
  let remote =
    Kernel.map_remote_pages ka a ~remote_paddr:(Kernel.user_paddr kb b counter) ~n:1
      ~perms:Perms.read_write
  in
  let prepared =
    Uldma.Atomic.prepare Uldma.Atomic.Ext_shadow_initiated ka a
      ~region:{ Mech.vaddr = remote; pages = 1 }
  in
  Kernel.set_atomic_mailbox ka a ~vaddr:mailbox;
  let sentinel = 0x5e47 in
  Kernel.write_user ka a mailbox sentinel;
  let asm = Uldma_cpu.Asm.create () in
  Uldma_cpu.Asm.li asm 1 remote;
  Uldma_cpu.Asm.li asm 5 7;
  prepared.Uldma.Atomic.emit_add asm ~operand:5;
  Uldma_cpu.Asm.mov asm 10 0 (* immediate status: in progress *);
  (* spin until the reply lands in the mailbox *)
  let spin = Uldma_cpu.Asm.fresh_label asm "spin" in
  Uldma_cpu.Asm.li asm 11 mailbox;
  Uldma_cpu.Asm.li asm 12 sentinel;
  Uldma_cpu.Asm.label asm spin;
  Uldma_cpu.Asm.load asm 13 ~base:11 ~off:0;
  Uldma_cpu.Asm.beq asm 13 12 spin;
  Uldma_cpu.Asm.halt asm;
  Process.set_program a (Uldma_cpu.Asm.assemble asm);
  checkb "converges" true (Uldma_sim.Duplex.run d () = Uldma_sim.Duplex.All_exited);
  checki "status was in-progress" Uldma_dma.Status.in_progress
    (Uldma_cpu.Regfile.get a.Process.ctx.Uldma_cpu.Cpu.regs 10);
  checki "old value in mailbox" 500
    (Uldma_cpu.Regfile.get a.Process.ctx.Uldma_cpu.Cpu.regs 13);
  checki "counter incremented on B" 507 (Kernel.read_user kb b counter)

let test_remote_atomic_requires_mailbox () =
  (* without a kernel-set mailbox, the engine refuses the remote op *)
  let config =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * Layout.page_size;
      mechanism = Uldma_dma.Engine.Ext_shadow;
      backend = Kernel.Local { bytes_per_s = 1e9 };
    }
  in
  let kernel = Kernel.create config in
  let p = Kernel.spawn kernel ~name:"x" ~program:[||] () in
  let remote = Kernel.map_remote_pages kernel p ~remote_paddr:0x8000 ~n:1 ~perms:Perms.read_write in
  let prepared =
    Uldma.Atomic.prepare Uldma.Atomic.Ext_shadow_initiated kernel p
      ~region:{ Mech.vaddr = remote; pages = 1 }
  in
  let asm = Uldma_cpu.Asm.create () in
  Uldma_cpu.Asm.li asm 1 remote;
  Uldma_cpu.Asm.li asm 5 1;
  prepared.Uldma.Atomic.emit_add asm ~operand:5;
  Uldma_cpu.Asm.halt asm;
  Process.set_program p (Uldma_cpu.Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:10_000 () : Kernel.run_result);
  checki "rejected" Uldma_dma.Status.failure (Uldma_cpu.Regfile.get p.Process.ctx.Uldma_cpu.Cpu.regs 0);
  checki "nothing shipped" 0
    (List.length (Uldma_dma.Engine.take_outbound (Kernel.engine kernel)))

(* ------------------------------------------------------------------ *)
(* Experiments registry *)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
  checki "twenty-one experiments" 21 (List.length ids)

let test_registry_find () =
  checkb "table1 present" true (Experiments.find "table1" <> None);
  checkb "missing" true (Experiments.find "nope" = None)

let test_registry_paper_refs () =
  List.iter
    (fun e -> checkb (e.Experiments.id ^ " has a paper ref") true (e.Experiments.paper_ref <> ""))
    Experiments.all

let test_cheap_experiments_run () =
  (* the scripted-attack experiments are cheap; run them and sanity
     check they produce non-empty tables *)
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e ->
        let tbl = e.Experiments.run () in
        checkb (id ^ " renders") true (String.length (Tbl.render tbl) > 100)
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "fig2_shrimp"; "fig5_attack3"; "fig6_attack4"; "key_security"; "ablate_wbuf" ]

let () =
  Alcotest.run "sim"
    [
      ( "table1",
        [
          Alcotest.test_case "within 12% of the paper" `Slow test_table1_tolerances;
          Alcotest.test_case "all initiations succeed" `Slow test_table1_all_succeed;
          Alcotest.test_case "order of magnitude" `Slow test_order_of_magnitude;
          Alcotest.test_case "ext-shadow fastest" `Slow test_ext_shadow_fastest;
          Alcotest.test_case "scales with accesses" `Slow test_user_methods_scale_with_accesses;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "bus speed helps user methods more" `Slow
            test_bus_speed_helps_user_more;
          Alcotest.test_case "syscall cost only hits kernel path" `Slow
            test_syscall_cost_only_hits_kernel_path;
          Alcotest.test_case "atomic measurements" `Slow test_atomic_measurements;
          Alcotest.test_case "contention latency" `Slow test_contention_latency;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "delivery" `Quick test_cluster_delivery;
          Alcotest.test_case "user-level remote DMA" `Quick test_cluster_user_level_remote_dma;
          Alcotest.test_case "remote word store" `Quick test_cluster_remote_word_store;
          Alcotest.test_case "remote atomic via cluster" `Quick test_cluster_remote_atomic;
          Alcotest.test_case "ordering" `Quick test_cluster_ordering;
          Alcotest.test_case "netif serialisation" `Quick test_netif_serialisation;
          Alcotest.test_case "netif poll timing" `Quick test_netif_poll_respects_time;
          Alcotest.test_case "wire times" `Quick test_link_wire_times;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot" `Quick test_metrics_snapshot;
          Alcotest.test_case "round-robin fairness" `Quick test_metrics_fair_round_robin;
        ] );
      ( "duplex",
        [
          Alcotest.test_case "basic delivery" `Quick test_duplex_basic_delivery;
          Alcotest.test_case "ping-pong ordering" `Slow test_duplex_pingpong_orders;
          Alcotest.test_case "remote atomic round trip" `Quick test_duplex_remote_atomic;
          Alcotest.test_case "remote atomic requires mailbox" `Quick
            test_remote_atomic_requires_mailbox;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "paper refs" `Quick test_registry_paper_refs;
          Alcotest.test_case "cheap experiments run" `Slow test_cheap_experiments_run;
        ] );
    ]
