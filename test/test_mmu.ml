(* Tests for the mmu library: shadow algebra, PTEs, page tables, TLB,
   address spaces. *)

open Uldma_mem
open Uldma_mmu

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Shadow *)

let test_shadow_roundtrip () =
  let paddr = 0x12_3458 in
  let s = Shadow.encode paddr in
  checkb "tagged" true (Shadow.is_shadow s);
  let d = Shadow.decode_exn s in
  checki "paddr back" paddr d.Shadow.paddr;
  checki "context 0" 0 d.Shadow.context;
  checkb "not atomic" false d.Shadow.atomic

let test_shadow_context () =
  let s = Shadow.encode_ctx ~context:3 0x4000 in
  let d = Shadow.decode_exn s in
  checki "context" 3 d.Shadow.context;
  checki "paddr" 0x4000 d.Shadow.paddr

let test_shadow_atomic_window () =
  let s = Shadow.encode_atomic ~context:2 0x8000 in
  let d = Shadow.decode_exn s in
  checkb "atomic" true d.Shadow.atomic;
  checki "context" 2 d.Shadow.context;
  checki "paddr" 0x8000 d.Shadow.paddr;
  checkb "dma window not atomic" false (Shadow.decode_exn (Shadow.encode 0x8000)).Shadow.atomic

let test_shadow_rejects () =
  checkb "negative paddr" true
    (try
       ignore (Shadow.encode (-8) : int);
       false
     with Invalid_argument _ -> true);
  checkb "context too large" true
    (try
       ignore (Shadow.encode_ctx ~context:(Shadow.max_context + 1) 0 : int);
       false
     with Invalid_argument _ -> true);
  checkb "paddr too large" true
    (try
       ignore (Shadow.encode (1 lsl Layout.context_field_shift) : int);
       false
     with Invalid_argument _ -> true)

let test_shadow_decode_plain () =
  Alcotest.(check bool) "plain decodes to None" true (Shadow.decode 0x1234 = None);
  Alcotest.check_raises "decode_exn on plain"
    (Invalid_argument "Shadow.decode_exn: 0x1234 is not a shadow address") (fun () ->
      ignore (Shadow.decode_exn 0x1234 : Shadow.decoded))

let test_shadow_frame () =
  let frame = 5 in
  let sframe = Shadow.shadow_frame_of_frame ~context:1 frame in
  let paddr_via_frame = (sframe lsl Layout.page_shift) lor 64 in
  let d = Shadow.decode_exn paddr_via_frame in
  checki "context survives paging" 1 d.Shadow.context;
  checki "address reassembles" ((frame lsl Layout.page_shift) lor 64) d.Shadow.paddr

let shadow_roundtrip_prop =
  qtest "shadow: decode . encode = id"
    QCheck2.Gen.(pair (int_range 0 Shadow.max_context) (int_range 0 ((1 lsl 30) - 1)))
    (fun (context, paddr) ->
      let d = Shadow.decode_exn (Shadow.encode_ctx ~context paddr) in
      d.Shadow.context = context && d.Shadow.paddr = paddr && not d.Shadow.atomic)

let shadow_atomic_roundtrip_prop =
  qtest "shadow: atomic decode . encode = id"
    QCheck2.Gen.(pair (int_range 0 Shadow.max_context) (int_range 0 ((1 lsl 30) - 1)))
    (fun (context, paddr) ->
      let d = Shadow.decode_exn (Shadow.encode_atomic ~context paddr) in
      d.Shadow.context = context && d.Shadow.paddr = paddr && d.Shadow.atomic)

(* ------------------------------------------------------------------ *)
(* Page_table *)

let pte frame perms = Pte.make ~frame ~perms ()

let test_pt_map_find () =
  let t = Page_table.create () in
  Page_table.map t ~vpage:4 (pte 10 Perms.read_write);
  checkb "found" true (Page_table.find t ~vpage:4 <> None);
  checkb "absent" true (Page_table.find t ~vpage:5 = None);
  checki "cardinal" 1 (Page_table.cardinal t)

let test_pt_remap () =
  let t = Page_table.create () in
  Page_table.map t ~vpage:4 (pte 10 Perms.read_write);
  Page_table.map t ~vpage:4 (pte 11 Perms.read_only);
  (match Page_table.find t ~vpage:4 with
  | Some p -> checki "replaced frame" 11 p.Pte.frame
  | None -> Alcotest.fail "mapping lost");
  checki "still one entry" 1 (Page_table.cardinal t)

let test_pt_unmap () =
  let t = Page_table.create () in
  Page_table.map t ~vpage:4 (pte 10 Perms.read_write);
  Page_table.unmap t ~vpage:4;
  checkb "gone" true (Page_table.find t ~vpage:4 = None)

let test_pt_mapped_range () =
  let t = Page_table.create () in
  for v = 2 to 4 do
    Page_table.map t ~vpage:v (pte v Perms.read_write)
  done;
  Page_table.map t ~vpage:5 (pte 5 Perms.read_only);
  let base = 2 * Layout.page_size in
  checkb "3 pages rw" true
    (Page_table.mapped_range t ~vaddr:base ~len:(3 * Layout.page_size) ~perms:Perms.read_write);
  checkb "4th page not writable" false
    (Page_table.mapped_range t ~vaddr:base ~len:(4 * Layout.page_size) ~perms:Perms.read_write);
  checkb "4 pages readable" true
    (Page_table.mapped_range t ~vaddr:base ~len:(4 * Layout.page_size) ~perms:Perms.read_only);
  checkb "hole detected" false
    (Page_table.mapped_range t ~vaddr:0 ~len:Layout.page_size ~perms:Perms.read_only);
  checkb "empty range ok" true (Page_table.mapped_range t ~vaddr:0 ~len:0 ~perms:Perms.read_write);
  checkb "sub-page range" true
    (Page_table.mapped_range t ~vaddr:(base + 100) ~len:8 ~perms:Perms.read_write)

let test_pt_copy_independent () =
  let t = Page_table.create () in
  Page_table.map t ~vpage:1 (pte 1 Perms.read_write);
  let t2 = Page_table.copy t in
  Page_table.unmap t2 ~vpage:1;
  checkb "original keeps entry" true (Page_table.find t ~vpage:1 <> None)

(* ------------------------------------------------------------------ *)
(* Tlb *)

let test_tlb_miss_then_hit () =
  let tlb = Tlb.create () and pt = Page_table.create () in
  Page_table.map pt ~vpage:7 (pte 3 Perms.read_write);
  (match Tlb.translate tlb pt ~vpage:7 with
  | Some (_, `Miss) -> ()
  | Some (_, `Hit) -> Alcotest.fail "expected miss"
  | None -> Alcotest.fail "expected entry");
  (match Tlb.translate tlb pt ~vpage:7 with
  | Some (_, `Hit) -> ()
  | Some (_, `Miss) -> Alcotest.fail "expected hit"
  | None -> Alcotest.fail "expected entry");
  let stats = Tlb.stats tlb in
  checki "hits" 1 stats.Tlb.hits;
  checki "misses" 1 stats.Tlb.misses

let test_tlb_unmapped () =
  let tlb = Tlb.create () and pt = Page_table.create () in
  checkb "no mapping" true (Tlb.translate tlb pt ~vpage:1 = None)

let test_tlb_flush () =
  let tlb = Tlb.create () and pt = Page_table.create () in
  Page_table.map pt ~vpage:7 (pte 3 Perms.read_write);
  ignore (Tlb.translate tlb pt ~vpage:7);
  Tlb.flush tlb;
  match Tlb.translate tlb pt ~vpage:7 with
  | Some (_, `Miss) -> ()
  | Some (_, `Hit) | None -> Alcotest.fail "flush should force a miss"

let test_tlb_invalidate () =
  let tlb = Tlb.create () and pt = Page_table.create () in
  Page_table.map pt ~vpage:7 (pte 3 Perms.read_write);
  ignore (Tlb.translate tlb pt ~vpage:7);
  Tlb.invalidate tlb ~vpage:7;
  checkb "probe misses" true (Tlb.lookup tlb ~vpage:7 = None)

let test_tlb_conflict_eviction () =
  (* direct-mapped: vpages 1 and 65 share slot 1 in a 64-entry TLB *)
  let tlb = Tlb.create ~slots:64 () and pt = Page_table.create () in
  Page_table.map pt ~vpage:1 (pte 1 Perms.read_write);
  Page_table.map pt ~vpage:65 (pte 2 Perms.read_write);
  ignore (Tlb.translate tlb pt ~vpage:1);
  ignore (Tlb.translate tlb pt ~vpage:65);
  checkb "1 evicted" true (Tlb.lookup tlb ~vpage:1 = None);
  checkb "65 cached" true (Tlb.lookup tlb ~vpage:65 <> None)

let test_tlb_power_of_two () =
  Alcotest.check_raises "slots must be power of two"
    (Invalid_argument "Tlb.create: slots must be a power of two") (fun () ->
      ignore (Tlb.create ~slots:48 () : Tlb.t))

(* ------------------------------------------------------------------ *)
(* Iotlb *)

let iotlb_encode_str t =
  let b = Buffer.create 128 in
  Uldma_util.Enc.(Iotlb.encode (Buf b) t);
  Buffer.contents b

(* op scripts over a 64-vpage space: map (with OS shootdown), unmap
   (with shootdown), translate, flush — the discipline Os.Kernel
   follows, under which the cache must agree with a direct walk *)
type iotlb_op = Imap of int * int | Iunmap of int | Itranslate of int | Iflush

let iotlb_script_with_flush_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (map
         (fun (op, vpage, frame) ->
           match op with
           | 0 | 1 | 2 -> Imap (vpage, frame + 100)
           | 3 -> Iunmap vpage
           | 4 | 5 | 6 | 7 | 8 -> Itranslate vpage
           | _ -> Iflush)
         (triple (int_range 0 9) (int_range 0 63) (int_range 0 63))))

let iotlb_apply iotlb pt = function
  | Imap (vpage, frame) ->
    Page_table.map pt ~vpage (pte frame Perms.read_write);
    Iotlb.invalidate iotlb ~vpage
  | Iunmap vpage ->
    Page_table.unmap pt ~vpage;
    Iotlb.invalidate iotlb ~vpage
  | Itranslate vpage -> ignore (Iotlb.translate iotlb pt ~vpage)
  | Iflush -> Iotlb.flush iotlb

(* 1. under the OS shootdown discipline, every translate agrees with a
   direct page-table walk — hit, miss-and-fill, or fault alike *)
let iotlb_agrees_with_walk_prop =
  qtest "iotlb: translate agrees with direct walk" iotlb_script_with_flush_gen (fun script ->
      let iotlb = Iotlb.create ~sets:4 ~ways:2 () in
      let pt = Page_table.create () in
      List.for_all
        (fun op ->
          (match op with
          | Itranslate vpage -> (
            match (Iotlb.translate iotlb pt ~vpage, Page_table.find pt ~vpage) with
            | (`Hit got | `Miss got), Some want -> Pte.equal got want
            | `Fault, None -> true
            | (`Hit _ | `Miss _), None | `Fault, Some _ -> false)
          | _ ->
            iotlb_apply iotlb pt op;
            true)
          &&
          (* the cache never grows past its geometry and never caches
             a page the table no longer maps *)
          List.length (Iotlb.entries iotlb) <= 4 * 2
          && List.for_all
               (fun (vpage, cached) ->
                 match Page_table.find pt ~vpage with
                 | Some want -> Pte.equal cached want
                 | None -> false)
               (Iotlb.entries iotlb))
        script)

(* 2. miss/refill/invalidate determinism: the same script on two fresh
   caches leaves identical entries, statistics and encodings *)
let iotlb_determinism_prop =
  qtest "iotlb: refill/invalidate deterministic" iotlb_script_with_flush_gen (fun script ->
      let run () =
        let iotlb = Iotlb.create ~sets:4 ~ways:2 () in
        let pt = Page_table.create () in
        List.iter (fun op -> iotlb_apply iotlb pt op) script;
        (iotlb, pt)
      in
      let a, _ = run () in
      let b, _ = run () in
      Iotlb.entries a = Iotlb.entries b
      && Iotlb.stats a = Iotlb.stats b
      && String.equal (iotlb_encode_str a) (iotlb_encode_str b))

(* 3. encoding equality <=> same reachable contents: a copy encodes
   equal and then behaves identically under any shared future stream,
   while any content-changing step separates the encodings *)
let iotlb_encode_iff_contents_prop =
  qtest "iotlb: encode equality iff same contents"
    QCheck2.Gen.(pair iotlb_script_with_flush_gen (list_size (int_range 1 30) (int_range 0 63)))
    (fun (script, probes) ->
      let iotlb = Iotlb.create ~sets:4 ~ways:2 () in
      let pt = Page_table.create () in
      List.iter (fun op -> iotlb_apply iotlb pt op) script;
      let snap = Iotlb.copy iotlb in
      String.equal (iotlb_encode_str snap) (iotlb_encode_str iotlb)
      && (* equal encodings evolve identically: same hit/miss stream *)
      List.for_all
        (fun vpage ->
          Page_table.map pt ~vpage:(vpage land 7) (pte (vpage + 200) Perms.read_write);
          let tag = function `Hit _ -> 0 | `Miss _ -> 1 | `Fault -> 2 in
          tag (Iotlb.translate iotlb pt ~vpage) = tag (Iotlb.translate snap pt ~vpage)
          && String.equal (iotlb_encode_str snap) (iotlb_encode_str iotlb))
        probes
      &&
      (* and a content change separates them: filling a fresh page on
         one side only must change its encoding *)
      let before = iotlb_encode_str iotlb in
      Iotlb.fill iotlb ~vpage:999 (pte 999 Perms.read_write);
      not (String.equal before (iotlb_encode_str iotlb)))

let test_iotlb_untagged_flush_and_walk_cost () =
  (* flush resets contents *and* victim cursors: a post-flush refill
     re-derives everything from the table, and statistics record the
     charged walks *)
  let iotlb = Iotlb.create () in
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:7 (pte 3 Perms.read_write);
  (match Iotlb.translate iotlb pt ~vpage:7 with
  | `Miss _ -> ()
  | `Hit _ | `Fault -> Alcotest.fail "cold lookup must walk");
  (match Iotlb.translate iotlb pt ~vpage:7 with
  | `Hit _ -> ()
  | `Miss _ | `Fault -> Alcotest.fail "second lookup must hit");
  Iotlb.flush iotlb;
  (match Iotlb.translate iotlb pt ~vpage:7 with
  | `Miss _ -> ()
  | `Hit _ | `Fault -> Alcotest.fail "flush must force a re-walk");
  let s = Iotlb.stats iotlb in
  checki "hits" 1 s.Iotlb.hits;
  checki "misses (charged walks)" 2 s.Iotlb.misses

(* ------------------------------------------------------------------ *)
(* Addr_space *)

let space_with_page ~vpage ~frame ~perms =
  let s = Addr_space.create () in
  Addr_space.map_page s ~vpage (pte frame perms);
  s

let test_space_translate () =
  let s = space_with_page ~vpage:2 ~frame:9 ~perms:Perms.read_write in
  let va = (2 * Layout.page_size) + 24 in
  match Addr_space.translate s Addr_space.Read va with
  | Ok tr ->
    checki "paddr" ((9 * Layout.page_size) + 24) tr.Addr_space.paddr;
    checkb "cacheable" true tr.Addr_space.cacheable
  | Error _ -> Alcotest.fail "translation failed"

let test_space_protection () =
  let s = space_with_page ~vpage:2 ~frame:9 ~perms:Perms.read_only in
  let va = 2 * Layout.page_size in
  (match Addr_space.translate s Addr_space.Write va with
  | Error (Addr_space.Protection (bad_va, Addr_space.Write)) -> checki "faulting va" va bad_va
  | Error _ | Ok _ -> Alcotest.fail "expected write protection fault");
  match Addr_space.translate s Addr_space.Read va with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "read should pass"

let test_space_no_mapping () =
  let s = Addr_space.create () in
  match Addr_space.translate s Addr_space.Read 0x5000 with
  | Error (Addr_space.No_mapping va) -> checki "va" 0x5000 va
  | Error _ | Ok _ -> Alcotest.fail "expected no-mapping fault"

let test_space_translate_exn () =
  let s = Addr_space.create () in
  checkb "raises Page_fault" true
    (try
       ignore (Addr_space.translate_exn s Addr_space.Read 0 : Addr_space.translation);
       false
     with Addr_space.Page_fault (Addr_space.No_mapping 0) -> true)

let test_space_peek () =
  let s = space_with_page ~vpage:1 ~frame:4 ~perms:Perms.none in
  (* peek ignores permissions *)
  Alcotest.(check (option int))
    "peek"
    (Some ((4 * Layout.page_size) + 8))
    (Addr_space.peek_paddr s (Layout.page_size + 8));
  Alcotest.(check (option int)) "peek unmapped" None (Addr_space.peek_paddr s 0)

let test_space_uncacheable_page () =
  let s = Addr_space.create () in
  Addr_space.map_page s ~vpage:3 (Pte.make ~cacheable:false ~frame:1 ~perms:Perms.read_write ());
  match Addr_space.translate s Addr_space.Read (3 * Layout.page_size) with
  | Ok tr -> checkb "uncacheable" false tr.Addr_space.cacheable
  | Error _ -> Alcotest.fail "translation failed"

let test_space_check_range () =
  let s = space_with_page ~vpage:0 ~frame:1 ~perms:Perms.read_write in
  checkb "in-page range" true
    (Addr_space.check_range s ~vaddr:0 ~len:Layout.page_size ~perms:Perms.read_write);
  checkb "spills to unmapped page" false
    (Addr_space.check_range s ~vaddr:0 ~len:(Layout.page_size + 1) ~perms:Perms.read_write)

let test_space_copy_independent () =
  let s = space_with_page ~vpage:0 ~frame:1 ~perms:Perms.read_write in
  let s2 = Addr_space.copy s in
  Addr_space.unmap_page s2 ~vpage:0;
  checkb "original still mapped" true (Addr_space.find_page s ~vpage:0 <> None);
  checkb "copy unmapped" true (Addr_space.find_page s2 ~vpage:0 = None)

let test_space_map_invalidates_tlb () =
  let s = space_with_page ~vpage:0 ~frame:1 ~perms:Perms.read_write in
  ignore (Addr_space.translate s Addr_space.Read 0);
  (* remap page 0 to a different frame; translation must see it *)
  Addr_space.map_page s ~vpage:0 (pte 2 Perms.read_write);
  match Addr_space.translate s Addr_space.Read 0 with
  | Ok tr -> checki "new frame" (2 * Layout.page_size) tr.Addr_space.paddr
  | Error _ -> Alcotest.fail "translation failed"

let space_translate_offset_prop =
  qtest "addr_space: translation preserves page offset"
    QCheck2.Gen.(pair (int_range 0 100) (int_range 0 (Layout.page_size - 1)))
    (fun (vpage, off) ->
      let s = space_with_page ~vpage ~frame:(vpage + 7) ~perms:Perms.read_write in
      match Addr_space.translate s Addr_space.Read ((vpage * Layout.page_size) + off) with
      | Ok tr -> Layout.page_offset tr.Addr_space.paddr = off
      | Error _ -> false)

(* model-based fuzz: a random map/unmap/translate script against a
   pure association-list reference *)
let addr_space_model_fuzz =
  qtest "addr_space: agrees with a reference model" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 2) (int_range 0 15) (int_range 0 3)))
    (fun script ->
      let space = Addr_space.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, vpage, perm_code) ->
          let perms =
            match perm_code with
            | 0 -> Perms.none
            | 1 -> Perms.read_only
            | 2 -> Perms.write_only
            | _ -> Perms.read_write
          in
          match op with
          | 0 ->
            let entry = pte (vpage + 100) perms in
            Addr_space.map_page space ~vpage entry;
            Hashtbl.replace model vpage entry;
            true
          | 1 ->
            Addr_space.unmap_page space ~vpage;
            Hashtbl.remove model vpage;
            true
          | _ -> (
            let va = (vpage * Layout.page_size) + 8 in
            let got = Addr_space.translate space Addr_space.Read va in
            match (got, Hashtbl.find_opt model vpage) with
            | Ok tr, Some entry ->
              Perms.allows_read entry.Pte.perms
              && tr.Addr_space.paddr = (entry.Pte.frame * Layout.page_size) + 8
            | Error (Addr_space.Protection _), Some entry ->
              not (Perms.allows_read entry.Pte.perms)
            | Error (Addr_space.No_mapping _), None -> true
            | Ok _, None | Error (Addr_space.No_mapping _), Some _
            | Error (Addr_space.Protection _), None ->
              false))
        script)

let () =
  Alcotest.run "mmu"
    [
      ( "shadow",
        [
          Alcotest.test_case "roundtrip" `Quick test_shadow_roundtrip;
          Alcotest.test_case "context field" `Quick test_shadow_context;
          Alcotest.test_case "atomic window" `Quick test_shadow_atomic_window;
          Alcotest.test_case "rejects bad input" `Quick test_shadow_rejects;
          Alcotest.test_case "plain addresses" `Quick test_shadow_decode_plain;
          Alcotest.test_case "frame encoding" `Quick test_shadow_frame;
          shadow_roundtrip_prop;
          shadow_atomic_roundtrip_prop;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "map/find" `Quick test_pt_map_find;
          Alcotest.test_case "remap replaces" `Quick test_pt_remap;
          Alcotest.test_case "unmap" `Quick test_pt_unmap;
          Alcotest.test_case "mapped_range" `Quick test_pt_mapped_range;
          Alcotest.test_case "copy independent" `Quick test_pt_copy_independent;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "miss then hit" `Quick test_tlb_miss_then_hit;
          Alcotest.test_case "unmapped" `Quick test_tlb_unmapped;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
          Alcotest.test_case "conflict eviction" `Quick test_tlb_conflict_eviction;
          Alcotest.test_case "power-of-two slots" `Quick test_tlb_power_of_two;
        ] );
      ( "iotlb",
        [
          Alcotest.test_case "untagged flush + walk charge" `Quick
            test_iotlb_untagged_flush_and_walk_cost;
          iotlb_agrees_with_walk_prop;
          iotlb_determinism_prop;
          iotlb_encode_iff_contents_prop;
        ] );
      ( "addr_space",
        [
          Alcotest.test_case "translate" `Quick test_space_translate;
          Alcotest.test_case "protection fault" `Quick test_space_protection;
          Alcotest.test_case "no mapping" `Quick test_space_no_mapping;
          Alcotest.test_case "translate_exn" `Quick test_space_translate_exn;
          Alcotest.test_case "peek ignores perms" `Quick test_space_peek;
          Alcotest.test_case "uncacheable page" `Quick test_space_uncacheable_page;
          Alcotest.test_case "check_range" `Quick test_space_check_range;
          Alcotest.test_case "copy independent" `Quick test_space_copy_independent;
          Alcotest.test_case "remap invalidates TLB" `Quick test_space_map_invalidates_tlb;
          space_translate_offset_prop;
          addr_space_model_fuzz;
        ] );
    ]
