(* check-trace — end-to-end validator of the observability layer,
   wired into `dune runtest`:

   1. runs a small traced workload (four Table-1 measurements
      including the iommu and capio mechanisms, a rejected capio
      laundering attempt, the Fig. 5 attack, a bounded rep5
      exploration) under an ambient sink and checks the trace covers
      >= 6 event kinds from >= 4 layers and specifically contains
      iotlb_miss / iotlb_fill / cap_check / engine_reject;
   2. exports the Chrome trace_event JSON, re-parses it with a local
      JSON reader and checks timestamps are monotone per machine (pid);
   3. checks the disabled path really is a no-op (no events recorded);
   4. checks the explorer's dedup/parallel soundness invariant: with
      the real Fig. 8 oracle attached, dedup on/off and jobs=1/2 must
      report identical path counts and identical (sorted) violation
      sets on fig5 (violating), rep5 (safe) and a small three-process
      contested workload (which exercises the work-stealing re-split
      path), and rep5 dedup must visit strictly fewer states than it
      counts schedules;
   5. re-measures explorer throughput with tracing disabled and
      compares against the recorded baseline (argv.(1), normally
      _results/BENCH_explorer.json): fails only below baseline/5, a
      deliberately loose bound so loaded CI machines do not flake. *)

module Trace = Uldma_obs.Trace
module Export = Uldma_obs.Export
module Scenario = Uldma_workload.Scenario
module Explorer = Uldma_verify.Explorer

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check-trace: " ^ s); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader (objects, arrays, strings, numbers, atoms) — *)
(* enough to re-parse our own exporter's output without dependencies. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad_json "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise (Bad_json (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'u' ->
          (* keep the escape verbatim; we never compare unicode *)
          Buffer.add_string buf "\\u"
        | c -> Buffer.add_char buf c);
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); skip_ws (); members ((key, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | c -> raise (Bad_json (Printf.sprintf "in object: %c" c))
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | c -> raise (Bad_json (Printf.sprintf "in array: %c" c))
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        advance ()
      done;
      if !pos = start then raise (Bad_json (Printf.sprintf "junk at %d" start));
      Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json (Printf.sprintf "trailing junk at %d" !pos));
  v

let member key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> fail "JSON object is missing %S" key)
  | _ -> fail "expected a JSON object holding %S" key

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)

let traced_workload () =
  ignore
    (Uldma_sim.Measure.initiation ~iterations:20 (Uldma.Api.find_exn "ext-shadow")
      : Uldma_sim.Measure.result);
  ignore
    (Uldma_sim.Measure.initiation ~iterations:10 (Uldma.Api.find_exn "kernel")
      : Uldma_sim.Measure.result);
  (* the IOMMU path emits iotlb_miss/iotlb_fill, the CAPIO path
     cap_check{ok} — both must appear in the kind coverage below *)
  ignore
    (Uldma_sim.Measure.initiation ~iterations:5 (Uldma.Api.find_exn "iommu")
      : Uldma_sim.Measure.result);
  ignore
    (Uldma_sim.Measure.initiation ~iterations:5 (Uldma.Api.find_exn "capio")
      : Uldma_sim.Measure.result);
  (* and a denied cap_check plus its engine_reject: the laundering
     accomplice fires first, while the victim's caps are live *)
  let l = Scenario.capio_launder () in
  Scenario.run_legs l [ Scenario.M; Scenario.M; Scenario.M; Scenario.M ];
  Scenario.finish l ();
  let s = Scenario.fig5 () in
  Scenario.run_legs s Scenario.fig5_schedule;
  Scenario.finish s ();
  let r = Scenario.rep5 () in
  let pids =
    [ r.Scenario.victim.Uldma_os.Process.pid; r.Scenario.attacker.Uldma_os.Process.pid ]
  in
  ignore
    (Explorer.explore ~root:r.Scenario.kernel ~pids ~max_paths:50 ~check:(fun _ -> None) ()
      : _ Explorer.result)

let explore_rep5 () =
  let s = Scenario.rep5 () in
  let pids =
    [ s.Scenario.victim.Uldma_os.Process.pid; s.Scenario.attacker.Uldma_os.Process.pid ]
  in
  Explorer.explore ~root:s.Scenario.kernel ~pids ~max_paths:1_000_000 ~check:(fun _ -> None) ()

(* Exploration with the full Fig. 8 oracle attached, so the soundness
   invariant below compares real violation sets, not just path counts. *)
let explore_checked ?dedup ?jobs scenario =
  let s = scenario () in
  Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ?dedup ?jobs
    ~max_paths:1_000_000 ~check:(Scenario.oracle_check s) ()

let () =
  (* 1. coverage of a traced run *)
  let sink = Trace.create () in
  Trace.set_enabled sink true;
  Trace.with_ambient sink traced_workload;
  let kinds = Hashtbl.create 16 and layers = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.record) ->
      Hashtbl.replace kinds (Trace.kind_name r.Trace.kind) ();
      Hashtbl.replace layers (Trace.layer_name (Trace.layer_of_kind r.Trace.kind)) ())
    (Trace.events sink);
  if Trace.total sink = 0 then fail "traced workload recorded no events";
  if Hashtbl.length kinds < 6 then fail "only %d distinct event kinds (need >= 6)" (Hashtbl.length kinds);
  if Hashtbl.length layers < 4 then fail "only %d distinct layers (need >= 4)" (Hashtbl.length layers);
  (* the IOMMU/CAPIO engine paths must be visible in the trace, by
     name: a cold IOTLB walk (miss + fill) from the iommu measurement,
     and a capability verdict (the capio measurement gives ok=true,
     the laundering accomplice a denial) *)
  List.iter
    (fun kind ->
      if not (Hashtbl.mem kinds kind) then fail "traced workload missing event kind %S" kind)
    [ "iotlb_miss"; "iotlb_fill"; "cap_check"; "engine_reject" ];

  (* 2. the Chrome export parses and is time-ordered per machine *)
  let tmp = Filename.temp_file "uldma_check_trace" ".json" in
  Export.to_file `Chrome tmp sink;
  let doc =
    match parse_json (read_file tmp) with
    | doc -> doc
    | exception Bad_json msg -> fail "Chrome trace does not parse: %s" msg
  in
  let events = match member "traceEvents" doc with Arr l -> l | _ -> fail "traceEvents not an array" in
  if List.length events < 100 then fail "suspiciously small Chrome trace (%d events)" (List.length events);
  let last_ts = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let pid = match member "pid" ev with Num f -> int_of_float f | _ -> fail "pid not a number" in
      let ts = match member "ts" ev with Num f -> f | _ -> fail "ts not a number" in
      (match Hashtbl.find_opt last_ts pid with
      | Some prev when ts < prev ->
        fail "timestamps not monotone on machine %d: %.6f after %.6f" pid ts prev
      | _ -> ());
      Hashtbl.replace last_ts pid ts;
      match member "ph" ev with
      | Str ("X" | "i") -> ()
      | Str ph -> fail "unexpected phase %S" ph
      | _ -> fail "ph not a string")
    events;
  Sys.remove tmp;

  (* 3. disabled sinks record nothing *)
  let off = Trace.create () in
  Trace.set_enabled off false;
  Trace.with_ambient off (fun () ->
      ignore
        (Uldma_sim.Measure.initiation ~iterations:5 (Uldma.Api.find_exn "ext-shadow")
          : Uldma_sim.Measure.result));
  if Trace.total off <> 0 then fail "disabled sink recorded %d events" (Trace.total off);

  (* 4. soundness invariant of the dedup/parallel explorer: turning
     memoization off or splitting the search over domains must change
     neither the number of schedules nor the (sorted) violation set.
     fig5 exercises the violating side of the oracle, rep5 the safe
     side; rep5 additionally demonstrates that memoization visits
     strictly fewer states than there are schedules. *)
  List.iter
    (fun (name, scenario, expect_violations) ->
      let base = explore_checked scenario in
      let nodedup = explore_checked ~dedup:false scenario in
      let par = explore_checked ~jobs:2 scenario in
      (* compare violation kinds + schedules, not payloads: a memo hit
         re-emits the first-discovered prefix's violation value, whose
         simulated timestamps legitimately differ between commuting
         prefixes that dedup merges *)
      let canon (r : _ Explorer.result) =
        List.sort compare
          (List.map
             (fun (v, schedule) ->
               ( (match v with
                 | Uldma_verify.Oracle.Unattributed_transfer _ -> "unattributed"
                 | Uldma_verify.Oracle.Rights_violation _ -> "rights"
                 | Uldma_verify.Oracle.Phantom_success _ -> "phantom"
                 | Uldma_verify.Oracle.Lost_transfer _ -> "lost"),
                 schedule ))
             r.Explorer.violations)
      in
      if nodedup.Explorer.paths <> base.Explorer.paths then
        fail "%s: dedup changed the path count (%d with, %d without)" name base.Explorer.paths
          nodedup.Explorer.paths;
      if par.Explorer.paths <> base.Explorer.paths then
        fail "%s: jobs=2 changed the path count (%d vs %d)" name par.Explorer.paths
          base.Explorer.paths;
      if canon nodedup <> canon base then fail "%s: dedup changed the violation set" name;
      if canon par <> canon base then fail "%s: jobs=2 changed the violation set" name;
      if expect_violations && base.Explorer.violations = [] then
        fail "%s: oracle found no violations (expected some)" name;
      if (not expect_violations) && base.Explorer.violations <> [] then
        fail "%s: oracle found %d violations (expected none)" name
          (List.length base.Explorer.violations);
      Printf.printf
        "check-trace: %s invariant ok (%d paths, %d violations; %d states with dedup, %d without)\n"
        name base.Explorer.paths
        (List.length base.Explorer.violations)
        base.Explorer.states_visited nodedup.Explorer.states_visited)
    [
      ("fig5", (fun () -> Scenario.fig5 ()), true);
      ("rep5", (fun () -> Scenario.rep5 ()), false);
      (* three processes: exercises the work-stealing re-split path
         (two-process trees rarely leave a sibling worth publishing)
         at a size small enough for runtest *)
      ( "ext-shadow-3 (small)",
        (fun () -> Scenario.ext_shadow_contested3 ~victim_repeat:1 ~tenant_repeat:1 ()),
        false );
      (* a timed backend: transfers have real (tick-quantised) wire
         time, so the tree gains transfer-completion wait legs and the
         encoding's relative-deadline fields do real work; the same
         dedup/jobs agreement must hold *)
      ( "rep5 --net atm155 (timed)",
        (fun () -> Scenario.rep5 ~net:(Uldma_net.Backend.linked Uldma_net.Link.atm155) ()),
        false );
      (* the two kernel-modification mechanisms: IOTLB state must not
         leak through the dedup encoding (iommu), and the laundering
         accomplice must be rejected under every schedule (capio) *)
      ("iommu (contested)", (fun () -> Scenario.iommu_contested ()), false);
      ("capio-launder", (fun () -> Scenario.capio_launder ()), false);
    ];
  let r5 = explore_checked (fun () -> Scenario.rep5 ()) in
  if r5.Explorer.states_visited >= r5.Explorer.paths then
    fail "rep5: dedup visited %d states for %d paths (expected strictly fewer)"
      r5.Explorer.states_visited r5.Explorer.paths;

  (* 5. tracing-disabled explorer throughput vs the recorded baseline.
     [_results/] is invisible to dune (leading underscore), so locate
     the baseline by walking up from the cwd (which, under `dune
     runtest`, is inside _build/) unless a path was given. *)
  let baseline_file =
    if Array.length Sys.argv > 1 then (if Sys.file_exists Sys.argv.(1) then Some Sys.argv.(1) else None)
    else begin
      let rec up dir n =
        if n = 0 then None
        else
          let candidate = Filename.concat dir (Filename.concat "_results" "BENCH_explorer.json") in
          if Sys.file_exists candidate then Some candidate
          else
            let parent = Filename.dirname dir in
            if parent = dir then None else up parent (n - 1)
      in
      up (Sys.getcwd ()) 6
    end
  in
  let baseline =
    match baseline_file with
    | None -> None
    | Some path -> (
      match member "paths_per_sec" (member "explorer" (parse_json (read_file path))) with
      | Num f -> Some f
      | _ -> fail "baseline %s: explorer.paths_per_sec not a number" path)
  in
  (match baseline with
  | None -> prerr_endline "check-trace: no baseline file; skipping throughput comparison"
  | Some base ->
    ignore (explore_rep5 () : _ Explorer.result) (* warm up *);
    let t0 = Unix.gettimeofday () in
    let r = explore_rep5 () in
    let secs = Unix.gettimeofday () -. t0 in
    let rate = float_of_int r.Explorer.paths /. secs in
    if rate < base /. 5.0 then
      fail "explorer throughput collapsed: %.0f paths/s vs baseline %.0f" rate base;
    Printf.printf "check-trace: explorer %.0f paths/s (baseline %.0f)\n" rate base);
  Printf.printf "check-trace ok: %d events, %d kinds, %d layers, Chrome export valid\n"
    (Trace.total sink) (Hashtbl.length kinds) (Hashtbl.length layers)
