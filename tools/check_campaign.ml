(* Campaign differential checker (CI: @campaign-smoke).

   Proves on a small candidate family that the campaign engine is pure
   acceleration:

   1. shared-vs-cold soundness — every candidate's (paths, truncated,
      violations as kind + schedule) from a shared-memo campaign run
      equals a cold sequential Explorer.explore of the same candidate;
   2. jobs determinism — campaign runs at --jobs 1 and --jobs 2 (twice)
      produce identical per-candidate results and identical catalogue
      rows (including the results fingerprint);
   3. sharing actually shares — the shared run expands no more states
      than the cold runs did in aggregate, and strictly fewer when the
      family has more than a handful of candidates.

   Exit 0 on success, 1 on any mismatch. *)

module Explorer = Uldma_verify.Explorer
module Synth = Uldma_workload.Synth
module Scenario = Uldma_workload.Scenario

let slots = ref 2
let exact = ref false
let repeat = ref 1
let jobs2 = ref 2
let max_paths = ref 1_000_000
let verbose = ref false
let subject = ref (Synth.Rep Uldma_dma.Seq_matcher.Five)

let usage () =
  prerr_endline
    "usage: check_campaign [--slots N] [--exact] [--repeat N] [--jobs N] [--max-paths N] \
     [--mech rep3|rep4|rep5|pal|key|ext|iommu|capio] [--verbose]";
  exit 2

let rec parse = function
  | [] -> ()
  | "--slots" :: v :: rest ->
    slots := int_of_string v;
    parse rest
  | "--mech" :: v :: rest ->
    (match Synth.subject_of_string v with
    | Some s -> subject := s
    | None -> usage ());
    parse rest
  | "--exact" :: rest ->
    exact := true;
    parse rest
  | "--repeat" :: v :: rest ->
    repeat := int_of_string v;
    parse rest
  | "--jobs" :: v :: rest ->
    jobs2 := int_of_string v;
    parse rest
  | "--max-paths" :: v :: rest ->
    max_paths := int_of_string v;
    parse rest
  | "--verbose" :: rest ->
    verbose := true;
    parse rest
  | _ -> usage ()

(* the warmth- and jobs-independent projection of a result *)
let canon (r : _ Explorer.result) =
  ( r.Explorer.paths,
    r.Explorer.truncated,
    List.map (fun (v, sched) -> (Synth.kind_name v, sched)) r.Explorer.violations )

let fail = ref false

let check_eq what i a b =
  if a <> b then begin
    fail := true;
    Printf.eprintf "MISMATCH: candidate %d: %s differs\n%!" i what
  end

let () =
  parse (List.tl (Array.to_list Sys.argv));
  let subject = !subject in
  (* cold baseline: every candidate explored sequentially with its own
     private memo, no baseline/tag decoration *)
  let base = Synth.make_base ~repeat:!repeat subject in
  let ops = Synth.enumerate ~exact:!exact ~slots:!slots () in
  let candidates = Array.map (Synth.candidate base) ops in
  let scenario = Synth.base_scenario base in
  let pids = Scenario.explore_pids scenario in
  let check = Scenario.oracle_check scenario in
  let cold_states = ref 0 in
  let cold_hits = ref 0 in
  let cold_bytes = ref 0 in
  let cold_snaps = ref 0 in
  let t0 = Unix.gettimeofday () in
  let cold =
    Array.map
      (fun (c : _ Uldma_verify.Campaign.candidate) ->
        let r =
          Explorer.explore ~root:c.Uldma_verify.Campaign.c_root ~pids
            ~max_paths:!max_paths ~check ()
        in
        cold_states := !cold_states + r.Explorer.states_visited;
        cold_hits := !cold_hits + r.Explorer.dedup_hits;
        cold_bytes := !cold_bytes + r.Explorer.bytes_hashed;
        cold_snaps := !cold_snaps + r.Explorer.snapshots;
        canon r)
      candidates
  in
  let cold_secs = Unix.gettimeofday () -. t0 in
  let run_campaign jobs =
    let t0 = Unix.gettimeofday () in
    let cr =
      Synth.run_cell ~repeat:!repeat ~slots:!slots ~exact:!exact ~jobs ~max_paths:!max_paths
        subject
    in
    (cr, Unix.gettimeofday () -. t0)
  in
  let shared1, shared1_secs = run_campaign 1 in
  let shared2, _ = run_campaign !jobs2 in
  let shared2', _ = run_campaign !jobs2 in
  let n = Array.length candidates in
  for i = 0 to n - 1 do
    let c1 = canon shared1.Synth.cr_results.(i) in
    check_eq "shared(jobs=1) vs cold" i c1 cold.(i);
    check_eq "shared(jobs=2) vs shared(jobs=1)" i (canon shared2.Synth.cr_results.(i)) c1;
    check_eq "shared(jobs=2) repeat" i
      (canon shared2'.Synth.cr_results.(i))
      (canon shared2.Synth.cr_results.(i))
  done;
  let row r = Synth.catalogue_row r.Synth.cr_cell in
  if row shared1 <> row shared2 then begin
    fail := true;
    Printf.eprintf "MISMATCH: catalogue row jobs=1 vs jobs=%d\n  %s\n  %s\n%!" !jobs2
      (row shared1) (row shared2)
  end;
  if row shared2 <> row shared2' then begin
    fail := true;
    Printf.eprintf "MISMATCH: catalogue row not reproducible at jobs=%d\n%!" !jobs2
  end;
  let shared_states = shared1.Synth.cr_stats.Uldma_verify.Campaign.g_states in
  if shared_states > !cold_states then begin
    fail := true;
    Printf.eprintf "REGRESSION: shared memo expanded more states (%d) than cold (%d)\n%!"
      shared_states !cold_states
  end;
  if n > 8 && shared_states >= !cold_states then begin
    fail := true;
    Printf.eprintf "REGRESSION: no cross-candidate sharing (%d shared vs %d cold states)\n%!"
      shared_states !cold_states
  end;
  if !verbose || !fail then
    Printf.printf
      "check_campaign: %d candidates, cold %d states %.2fs, shared %d states %.2fs (%.2fx states, \
       %.2fx time), witness %s\n%!"
      n !cold_states cold_secs shared_states shared1_secs
      (float_of_int !cold_states /. float_of_int (max 1 shared_states))
      (cold_secs /. Float.max 1e-9 shared1_secs)
      shared1.Synth.cr_cell.Synth.cell_witness;
  if !verbose then begin
    Printf.printf
      "check_campaign: arrivals cold %d (%d hits) vs shared %d (%d hits), %.2fx\n%!"
      (!cold_states + !cold_hits) !cold_hits
      (shared_states + shared1.Synth.cr_stats.Uldma_verify.Campaign.g_hits)
      shared1.Synth.cr_stats.Uldma_verify.Campaign.g_hits
      (float_of_int (!cold_states + !cold_hits)
      /. float_of_int (max 1 (shared_states + shared1.Synth.cr_stats.Uldma_verify.Campaign.g_hits)));
    let shared_bytes, shared_snaps =
      Array.fold_left
        (fun (b, s) (r : _ Explorer.result) ->
          (b + r.Explorer.bytes_hashed, s + r.Explorer.snapshots))
        (0, 0) shared1.Synth.cr_results
    in
    Printf.printf
      "check_campaign: hashed cold %d B, shared %d B; snapshots cold %d, shared %d\n%!"
      !cold_bytes shared_bytes !cold_snaps shared_snaps
  end;
  if !fail then exit 1;
  Printf.printf "campaign differential OK: %d candidates, state ratio %.2fx, catalogue stable at jobs 1/%d\n%!"
    n
    (float_of_int !cold_states /. float_of_int (max 1 shared_states))
    !jobs2
