(* Differential soundness harness for the timed explorer.

   For each (scenario, net backend) pair, the brute-force exploration
   (dedup off, one domain) is the ground truth: it expands every
   schedule with no memoization and no cross-domain scheduling. Every
   other configuration — dedup on, and dedup on with 2 and 4 worker
   domains — must reproduce its path count, its violation set (oracle
   kind + schedule), and even the violation order. Any disagreement
   means the relative-deadline state encoding merged two states that
   were not actually equivalent (or the work-stealing driver lost or
   duplicated a subtree), so this harness is the machine check behind
   DESIGN.md 5e's soundness argument.

   Exit 0 when every cell agrees, 1 on any mismatch. --quick runs a
   subset sized for `dune runtest`; the full matrix (all scenarios x
   all backends x jobs 1/2/4) is the CI leg.

   With --allow-truncated a brute-force run clipped at --max-paths is
   not a complaint but the point: the truncation-lease mechanism
   (DESIGN.md 5f) promises that a clipped parallel run reproduces the
   clipped sequential frontier exactly, so CI drives this harness with
   a deliberately small --max-paths to differential-test the leases
   themselves. Equality stays exact either way. *)

module Scenario = Uldma_workload.Scenario
module Explorer = Uldma_verify.Explorer
module Oracle = Uldma_verify.Oracle
module Backend = Uldma_net.Backend
module Link = Uldma_net.Link

let failures = ref 0

let complain fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "diff-explore: MISMATCH: %s\n%!" msg)
    fmt

let kind_name = function
  | Oracle.Unattributed_transfer _ -> "unattributed"
  | Oracle.Rights_violation _ -> "rights"
  | Oracle.Phantom_success _ -> "phantom"
  | Oracle.Lost_transfer _ -> "lost"

(* violation identity = oracle kind + full schedule (schedules are
   unique per terminal); payloads carry simulated timestamps that
   legitimately differ between merged prefixes *)
let canon (r : _ Explorer.result) =
  List.map (fun (v, schedule) -> (kind_name v, schedule)) r.Explorer.violations

let explore ?dedup ?paranoid_memo ?jobs ~max_paths build =
  let s = build () in
  Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ?dedup ?paranoid_memo
    ?jobs ~max_paths ~check:(Scenario.oracle_check s) ()

let run_cell ~label ~max_paths ~jobs_list ~paranoid_all ~allow_truncated build =
  let brute = explore ~dedup:false ~max_paths build in
  if brute.Explorer.truncated && not allow_truncated then
    complain "%s: brute-force run truncated at %d paths; raise --max-paths" label
      brute.Explorer.paths;
  let brute_canon = canon brute in
  let check what (r : _ Explorer.result) =
    if r.Explorer.paths <> brute.Explorer.paths then
      complain "%s: %s counted %d paths, brute-force %d" label what r.Explorer.paths
        brute.Explorer.paths;
    if canon r <> brute_canon then
      complain "%s: %s violation set/order differs from brute-force (%d vs %d violations)" label
        what
        (List.length r.Explorer.violations)
        (List.length brute.Explorer.violations);
    if r.Explorer.truncated <> brute.Explorer.truncated then
      complain "%s: %s truncated=%b but brute-force truncated=%b" label what r.Explorer.truncated
        brute.Explorer.truncated
  in
  let dedup = explore ~max_paths build in
  check "dedup" dedup;
  (* paranoid leg: same dedup walk keyed on full encoding strings, under
     which key equality is exactly state equality. Both it and the
     fingerprint-keyed runs must match brute-force, so a fingerprint
     collision that merged two distinct states would surface here as a
     fingerprint-vs-brute (hence fingerprint-vs-paranoid) disagreement. *)
  check "paranoid" (explore ~paranoid_memo:true ~max_paths build);
  List.iter
    (fun jobs -> check (Printf.sprintf "jobs=%d" jobs) (explore ~jobs ~max_paths build))
    jobs_list;
  if paranoid_all then
    List.iter
      (fun jobs ->
        check
          (Printf.sprintf "paranoid jobs=%d" jobs)
          (explore ~paranoid_memo:true ~jobs ~max_paths build))
      jobs_list;
  (* paths-per-expanded-state: the tree-collapse factor; distinct from
     the bench's dedup_ratio (hits / node arrivals) *)
  let paths_per_state =
    if dedup.Explorer.states_visited = 0 then 0.0
    else float_of_int dedup.Explorer.paths /. float_of_int dedup.Explorer.states_visited
  in
  Printf.printf
    "diff-explore: %-28s ok (%d paths%s, %d violations, %d dedup states, %.2f paths/state, brute \
     %d states)\n\
     %!"
    label brute.Explorer.paths
    (if brute.Explorer.truncated then " clipped" else "")
    (List.length brute.Explorer.violations)
    dedup.Explorer.states_visited paths_per_state brute.Explorer.states_visited

(* the six-mechanism matrix plus the dedicated adversarial scenarios.
   `Timed scenarios run under every backend; `Untimed ones have no
   wire-time variant and contribute only their null cell. *)
let scenarios =
  [
    ("fig5", `Timed (fun net -> Scenario.fig5 ?net ()));
    ("rep5", `Timed (fun net -> Scenario.rep5 ?net ()));
    ("key-based", `Timed (fun net -> Scenario.key_contested ?net ()));
    ("pal", `Untimed (fun () -> Scenario.pal_contested ()));
    ("ext-shadow", `Untimed (fun () -> Scenario.ext_shadow_contested ()));
    ("iommu", `Timed (fun net -> Scenario.iommu_contested ?net ()));
    ("capio", `Timed (fun net -> Scenario.capio_contested ?net ()));
    ("iommu-fig5", `Timed (fun net -> Scenario.iommu_fig5 ?net ()));
    ("capio-fig5", `Timed (fun net -> Scenario.capio_fig5 ?net ()));
    ("capio-launder", `Timed (fun net -> Scenario.capio_launder ?net ()));
  ]

(* the --quick sample: one cell per matrix mechanism (null backend)
   plus two timed cells, sized for `dune runtest` *)
let quick_cells =
  [
    ("rep5", "null");
    ("rep5", "atm155");
    ("key-based", "null");
    ("pal", "null");
    ("ext-shadow", "null");
    ("iommu", "atm155");
    ("capio", "null");
    ("capio-launder", "null");
  ]

let backends ~tick_ps =
  [
    ("null", None);
    ("atm155", Some (Backend.linked ~tick_ps Link.atm155));
    ("atm622", Some (Backend.linked ~tick_ps Link.atm622));
    ("hic", Some (Backend.linked ~tick_ps Link.hic1355));
  ]

let usage () =
  prerr_endline
    "usage: diff_explore [--quick] [--scenario \
     fig5|rep5|key-based|pal|ext-shadow|iommu|capio|iommu-fig5|capio-fig5|capio-launder|all] \
     [--net null|atm155|atm622|gigabit|hic|all] [--tick-ps N] [--jobs N,N,...] [--max-paths N] \
     [--allow-truncated] [--paranoid-vs-fingerprint]";
  exit 2

let () =
  let quick = ref false in
  let scenario_filter = ref "all" in
  let net_filter = ref "all" in
  let tick_ps = ref Backend.default_tick_ps in
  let jobs_list = ref [ 2; 4 ] in
  let max_paths = ref 2_000_000 in
  let allow_truncated = ref false in
  let paranoid_all = ref false in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--allow-truncated" :: rest ->
      allow_truncated := true;
      parse rest
    | "--paranoid-vs-fingerprint" :: rest ->
      (* run the paranoid string-keyed explorer at every jobs value too,
         not just sequentially — the CI leg proving fingerprint-keyed
         and paranoid runs identical across the whole matrix *)
      paranoid_all := true;
      parse rest
    | "--scenario" :: v :: rest ->
      scenario_filter := v;
      parse rest
    | "--net" :: v :: rest ->
      net_filter := v;
      parse rest
    | "--tick-ps" :: v :: rest ->
      tick_ps := int_of_string v;
      parse rest
    | "--jobs" :: v :: rest ->
      jobs_list := List.map int_of_string (String.split_on_char ',' v);
      parse rest
    | "--max-paths" :: v :: rest ->
      max_paths := int_of_string v;
      parse rest
    | _ -> usage ()
  in
  (match parse (List.tl (Array.to_list Sys.argv)) with
  | () -> ()
  | exception Failure _ -> usage ());
  let scenarios =
    if !scenario_filter = "all" then scenarios
    else
      match List.assoc_opt !scenario_filter scenarios with
      | Some f -> [ (!scenario_filter, f) ]
      | None -> usage ()
  in
  let backends =
    let all = backends ~tick_ps:!tick_ps in
    if !net_filter = "all" then all
    else
      match Backend.of_string ~tick_ps:!tick_ps !net_filter with
      | Ok Backend.Null -> [ ("null", None) ]
      | Ok b -> [ (!net_filter, Some b) ]
      | Error msg ->
        prerr_endline msg;
        usage ()
  in
  let jobs_list = if !quick then [ 2 ] else !jobs_list in
  (* one cell per (scenario, supported backend); untimed scenarios only
     have their null cell *)
  let cells =
    List.concat_map
      (fun (sname, kind) ->
        match kind with
        | `Timed f ->
          List.map (fun (bname, net) -> (sname, bname, fun () -> f net)) backends
        | `Untimed f ->
          if List.mem_assoc "null" backends then [ (sname, "null", fun () -> f ()) ] else [])
      scenarios
  in
  let cells =
    if !quick then
      List.filter (fun (sname, bname, _) -> List.mem (sname, bname) quick_cells) cells
    else cells
  in
  if cells = [] then begin
    prerr_endline "diff_explore: no cells match the scenario/net filters";
    usage ()
  end;
  List.iter
    (fun (sname, bname, build) ->
      run_cell
        ~label:(Printf.sprintf "%s --net %s" sname bname)
        ~max_paths:!max_paths ~jobs_list ~paranoid_all:!paranoid_all
        ~allow_truncated:!allow_truncated build)
    cells;
  if !failures > 0 then begin
    Printf.printf "diff-explore: %d mismatching cell(s)\n" !failures;
    exit 1
  end;
  print_endline "diff-explore: all configurations agree"
