(* Cluster-service smoke + determinism gate (the @cluster-smoke leg).

   1. Instruction-level: a 3-node Session.cluster mesh moves a remote-
      store burst end to end (every byte accounted for).
   2. Load generator: a reduced 3-node x 2-backend KV run (10^4
      transfers) must produce a byte-identical BENCH_cluster.json when
      repeated with the same seed (modulo the wall_seconds line), obey
      basic percentile sanity (p50 <= p99 <= p999 <= max), and show
      doorbell batching beating batch=1 on the fast link.

   Exit 0 = all gates pass. *)

let fail = ref false

let check name ok =
  Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") name;
  if not ok then fail := true

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let strip_wall json =
  String.split_on_char '\n' json
  |> List.filter (fun line -> not (contains ~sub:"wall_seconds" line))
  |> String.concat "\n"

let () =
  Printf.printf "cluster-smoke: instruction-level mesh burst\n";
  let nodes = 3 and words = 64 in
  let cluster = Uldma.Session.cluster_exn ~net:"gigabit" ~nodes () in
  let bytes, packets = Uldma_workload.Kv_load.cosim_burst cluster ~words in
  check
    (Printf.sprintf "burst delivers %d bytes (%d packets)" bytes packets)
    (bytes = nodes * words * 8 && packets >= nodes * words);

  Printf.printf "cluster-smoke: 3-node x 2-backend load generation\n";
  let p =
    {
      Uldma_workload.Kv_load.default_params with
      Uldma_workload.Kv_load.nodes;
      clients = 60;
      transfers = 10_000;
      seed = 7;
    }
  in
  let cal =
    match Uldma_workload.Kv_load.calibrate p.Uldma_workload.Kv_load.mech with
    | Ok c -> c
    | Error e -> failwith e
  in
  check
    (Printf.sprintf "calibration: initiation %d ps, submit %d ps" cal.initiation_ps cal.submit_ps)
    (cal.initiation_ps > 0 && cal.submit_ps > 0);
  let backends =
    List.map
      (fun name ->
        match Uldma_net.Backend.of_string name with
        | Ok b -> (name, b)
        | Error e -> failwith e)
      [ "atm155"; "gigabit" ]
  in
  let report wall =
    let sweep = Uldma_workload.Kv_load.sweep p ~cal backends in
    let batch1 =
      Uldma_workload.Kv_load.run
        { p with Uldma_workload.Kv_load.batch = 1 }
        ~cal ~net:(List.assoc "gigabit" backends)
    in
    let batched = Uldma_workload.Kv_load.run p ~cal ~net:(List.assoc "gigabit" backends) in
    let r =
      {
        Uldma_workload.Kv_load.Report.params = p;
        cal;
        headline_net = "atm155";
        sweep;
        batching = { Uldma_workload.Kv_load.Report.bat_net = "gigabit"; batch1; batched };
        cosim_nodes = nodes;
        cosim_bytes = bytes;
        cosim_packets = packets;
      }
    in
    (r, Uldma_workload.Kv_load.Report.to_json ~wall_seconds:wall r)
  in
  let r1, json1 = report 1.0 in
  let _r2, json2 = report 2.0 in
  check "same seed => byte-identical report (modulo wall_seconds)"
    (strip_wall json1 = strip_wall json2 && json1 <> json2);
  List.iter
    (fun (name, r) ->
      let pc q = Uldma_obs.Percentile.percentile r.Uldma_workload.Kv_load.latency q in
      check
        (Printf.sprintf "%s: p50 %d <= p99 %d <= p999 %d <= max %d ps" name (pc 0.50) (pc 0.99)
           (pc 0.999)
           (Uldma_obs.Percentile.max_value r.Uldma_workload.Kv_load.latency))
        (pc 0.50 <= pc 0.99
        && pc 0.99 <= pc 0.999
        && pc 0.999 <= Uldma_obs.Percentile.max_value r.Uldma_workload.Kv_load.latency
        && pc 0.50 > 0))
    r1.Uldma_workload.Kv_load.Report.sweep;
  let sp = Uldma_workload.Kv_load.Report.speedup r1.Uldma_workload.Kv_load.Report.batching in
  check
    (Printf.sprintf "doorbell batching (batch=%d) beats batch=1: %.2fx" p.batch sp)
    (sp > 1.02);
  if !fail then begin
    Printf.printf "cluster-smoke: FAILED\n";
    exit 1
  end
  else Printf.printf "cluster-smoke: all gates passed\n"
