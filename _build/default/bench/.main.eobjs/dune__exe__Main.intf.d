bench/main.mli:
