bench/smoke.mli:
