bench/smoke.ml: Printf Uldma Uldma_os Uldma_sim Uldma_verify Uldma_workload
