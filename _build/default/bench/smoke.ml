(* @bench-smoke — a seconds-scale exercise of the perf-critical paths,
   wired into `dune runtest` so they cannot bit-rot between full bench
   runs: one small exhaustive exploration (fig5, known 126 schedules)
   and a 10-iteration initiation measurement. Exits non-zero on any
   deviation. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("bench-smoke: " ^ s); exit 1) fmt

let () =
  let s = Uldma_workload.Scenario.fig5 () in
  let pids =
    [
      s.Uldma_workload.Scenario.victim.Uldma_os.Process.pid;
      s.Uldma_workload.Scenario.attacker.Uldma_os.Process.pid;
    ]
  in
  let r =
    Uldma_verify.Explorer.explore ~root:s.Uldma_workload.Scenario.kernel ~pids
      ~check:(fun _ -> None) ()
  in
  if r.Uldma_verify.Explorer.truncated then fail "fig5 exploration truncated";
  if r.Uldma_verify.Explorer.paths <> 126 then
    fail "fig5 exploration found %d schedules, expected 126" r.Uldma_verify.Explorer.paths;
  let m = Uldma_sim.Measure.initiation ~iterations:10 (Uldma.Api.find_exn "ext-shadow") in
  if m.Uldma_sim.Measure.successes <> 10 then
    fail "ext-shadow initiation: %d/10 succeeded" m.Uldma_sim.Measure.successes;
  Printf.printf "bench-smoke ok: fig5 %d schedules, ext-shadow %.2f us/initiation\n"
    r.Uldma_verify.Explorer.paths m.Uldma_sim.Measure.us_per_initiation
