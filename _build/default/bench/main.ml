(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper from the
   simulator (simulated time; see EXPERIMENTS.md for paper-vs-measured).

   Part 2 runs Bechamel micro-benchmarks of the *simulator itself*
   (real wall-clock time per simulated initiation path) — one
   Test.make per Table 1 row plus the attack-reproduction machinery —
   so regressions in the implementation are visible independently of
   the simulated-clock results. *)

module Experiments = Uldma_sim.Experiments
module Sim_measure = Uldma_sim.Measure
module Api = Uldma.Api

let line = String.make 78 '='

let results_dir = "_results"

let write_csv id tbl =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat results_dir (id ^ ".csv")) in
  output_string oc (Uldma_util.Tbl.to_csv tbl);
  close_out oc

let run_experiments () =
  Printf.printf "%s\nPart 1: paper reproduction (simulated time)\n%s\n\n" line line;
  List.iter
    (fun (e : Experiments.experiment) ->
      Printf.printf "--- %s [%s] ---\n%!" e.Experiments.id e.Experiments.paper_ref;
      let tbl = e.Experiments.run () in
      Uldma_util.Tbl.print tbl;
      write_csv e.Experiments.id tbl)
    Experiments.all;
  Printf.printf "(CSV copies of every table written to %s/)\n" results_dir

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

let initiation_test name =
  let mech = Api.find_exn name in
  Test.make ~name:("simulate 10x " ^ name)
    (Staged.stage (fun () -> ignore (Sim_measure.initiation ~iterations:10 mech : Sim_measure.result)))

let attack_test =
  Test.make ~name:"simulate fig5 attack"
    (Staged.stage (fun () ->
         let s = Uldma_workload.Scenario.fig5 () in
         Uldma_workload.Scenario.run_legs s Uldma_workload.Scenario.fig5_schedule;
         Uldma_workload.Scenario.finish s ()))

let explorer_test =
  Test.make ~name:"explore rep5 schedules"
    (Staged.stage (fun () ->
         let s = Uldma_workload.Scenario.rep5 () in
         let pids =
           [
             s.Uldma_workload.Scenario.victim.Uldma_os.Process.pid;
             s.Uldma_workload.Scenario.attacker.Uldma_os.Process.pid;
           ]
         in
         ignore
           (Uldma_verify.Explorer.explore ~root:s.Uldma_workload.Scenario.kernel ~pids
              ~max_paths:50 ~check:(fun _ -> None) ())))

let tests =
  Test.make_grouped ~name:"uldma"
    ([ initiation_test "kernel"; initiation_test "ext-shadow"; initiation_test "rep-args";
       initiation_test "key-based"; initiation_test "pal" ]
    @ [ attack_test; explorer_test ])

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.8) ~kde:None () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_bench_results results =
  Printf.printf "\n%s\nPart 2: simulator micro-benchmarks (real time, bechamel OLS)\n%s\n\n" line
    line;
  let tbl =
    Uldma_util.Tbl.create ~title:"wall-clock cost of the simulation paths"
      ~columns:[ ("benchmark", Uldma_util.Tbl.Left); ("time per run", Uldma_util.Tbl.Right) ]
  in
  Hashtbl.iter
    (fun _instance tbl_by_name ->
      Hashtbl.iter
        (fun name ols ->
          let cell =
            match Analyze.OLS.estimates ols with
            | Some (time :: _) -> Format.asprintf "%a" Uldma_util.Units.pp_time (int_of_float (time *. 1000.0))
            | Some [] | None -> "n/a"
          in
          Uldma_util.Tbl.add_row tbl [ name; cell ])
        tbl_by_name)
    results;
  Uldma_util.Tbl.print tbl

let () =
  run_experiments ();
  let results = benchmark () in
  print_bench_results results;
  print_endline "done."
