type op = Load | Store

type t = { op : op; paddr : int; value : int; pid : int; at : Uldma_util.Units.ps }

type view = { v_op : op; v_paddr : int; v_value : int }

let view t = { v_op = t.op; v_paddr = t.paddr; v_value = t.value }

let pp_op ppf = function
  | Load -> Format.pp_print_string ppf "LOAD"
  | Store -> Format.pp_print_string ppf "STORE"

let pp ppf t =
  Format.fprintf ppf "%a %#x%s (pid %d, %a)" pp_op t.op t.paddr
    (match t.op with Store -> Printf.sprintf " <- %#x" t.value | Load -> "")
    t.pid Uldma_util.Units.pp_time t.at
