(** The I/O bus: routes physical accesses to RAM or to a memory-mapped
    device (the DMA engine), charging simulated time per crossing.

    Device claims are registered by the machine at construction time;
    an access that neither RAM nor a device claims raises
    [Bus_error]. *)

type t

exception Bus_error of int

type device = {
  claims : int -> bool;
  handle : Txn.t -> int; (** returns the load reply; ignored for stores *)
}

val create : clock:Clock.t -> timing:Timing.t -> ram:Uldma_mem.Phys_mem.t -> t

val clock : t -> Clock.t
val timing : t -> Timing.t
val ram : t -> Uldma_mem.Phys_mem.t
val set_timing : t -> Timing.t -> unit

val register_device : t -> device -> unit
(** Devices are probed in registration order. *)

val load : t -> pid:int -> cacheable:bool -> int -> int
(** Word load. Cacheable accesses must target RAM and are charged the
    cache-hit cost; uncacheable accesses are charged bus cycles and are
    visible to devices. *)

val store : t -> pid:int -> cacheable:bool -> int -> int -> unit

val set_trace : t -> bool -> unit
val trace : t -> Txn.t list
(** Recorded transactions, oldest first (only while tracing). *)

val clear_trace : t -> unit

val busy_ps : t -> Uldma_util.Units.ps
(** Cumulative time the bus spent on uncached crossings — utilization
    numerator for the accounting report. *)

val copy : t -> ram:Uldma_mem.Phys_mem.t -> clock:Clock.t -> t
(** Snapshot with the given already-copied RAM and clock. Devices are
    carried over by reference and must be re-registered by the caller
    if they hold state. *)
