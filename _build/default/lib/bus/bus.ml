open Uldma_mem

exception Bus_error of int

type device = { claims : int -> bool; handle : Txn.t -> int }

type t = {
  clock : Clock.t;
  mutable timing : Timing.t;
  ram : Phys_mem.t;
  mutable devices : device list; (* registration order *)
  mutable tracing : bool;
  mutable trace : Txn.t list; (* newest first *)
  mutable busy_ps : int; (* cumulative uncached-crossing time *)
}

let create ~clock ~timing ~ram =
  { clock; timing; ram; devices = []; tracing = false; trace = []; busy_ps = 0 }

let clock t = t.clock
let timing t = t.timing
let ram t = t.ram
let set_timing t timing = t.timing <- timing

let register_device t d = t.devices <- t.devices @ [ d ]

let find_device t paddr = List.find_opt (fun d -> d.claims paddr) t.devices

let record t txn = if t.tracing then t.trace <- txn :: t.trace

let uncached_access t ~pid op paddr value =
  t.busy_ps <- t.busy_ps + Timing.uncached_ps t.timing op;
  Clock.advance t.clock (Timing.uncached_ps t.timing op);
  let txn = { Txn.op; paddr; value; pid; at = Clock.now t.clock } in
  record t txn;
  match find_device t paddr with
  | Some d -> d.handle txn
  | None ->
    if paddr >= 0 && paddr + Layout.word_size <= Phys_mem.size t.ram then begin
      match op with
      | Txn.Load -> Phys_mem.load_word t.ram paddr
      | Txn.Store ->
        Phys_mem.store_word t.ram paddr value;
        0
    end
    else raise (Bus_error paddr)

let load t ~pid ~cacheable paddr =
  if cacheable then begin
    Clock.advance t.clock (Timing.cached_access_ps t.timing);
    if paddr >= 0 && paddr + Layout.word_size <= Phys_mem.size t.ram then
      Phys_mem.load_word t.ram paddr
    else raise (Bus_error paddr)
  end
  else uncached_access t ~pid Txn.Load paddr 0

let store t ~pid ~cacheable paddr value =
  if cacheable then begin
    Clock.advance t.clock (Timing.cached_access_ps t.timing);
    if paddr >= 0 && paddr + Layout.word_size <= Phys_mem.size t.ram then
      Phys_mem.store_word t.ram paddr value
    else raise (Bus_error paddr)
  end
  else ignore (uncached_access t ~pid Txn.Store paddr value)

let set_trace t on =
  t.tracing <- on;
  if not on then t.trace <- []

let trace t = List.rev t.trace

let clear_trace t = t.trace <- []

let busy_ps t = t.busy_ps

let copy t ~ram ~clock =
  {
    clock;
    timing = t.timing;
    ram;
    devices = [];
    tracing = t.tracing;
    trace = t.trace;
    busy_ps = t.busy_ps;
  }
