lib/bus/timing.ml: Printf Txn Uldma_util Units
