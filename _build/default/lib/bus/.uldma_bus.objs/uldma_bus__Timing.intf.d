lib/bus/timing.mli: Txn Uldma_util
