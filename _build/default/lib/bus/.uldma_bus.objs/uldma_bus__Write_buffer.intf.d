lib/bus/write_buffer.mli:
