lib/bus/clock.mli: Format Uldma_util
