lib/bus/txn.mli: Format Uldma_util
