lib/bus/write_buffer.ml: List
