lib/bus/txn.ml: Format Printf Uldma_util
