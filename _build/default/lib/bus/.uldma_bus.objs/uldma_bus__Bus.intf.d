lib/bus/bus.mli: Clock Timing Txn Uldma_mem Uldma_util
