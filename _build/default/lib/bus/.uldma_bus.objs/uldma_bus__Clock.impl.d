lib/bus/clock.ml: Uldma_util
