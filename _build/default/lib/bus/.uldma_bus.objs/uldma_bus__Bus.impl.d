lib/bus/bus.ml: Array Clock Layout List Phys_mem Timing Txn Uldma_mem
