lib/bus/bus.ml: Clock Layout List Phys_mem Timing Txn Uldma_mem
