(** Bus transactions as seen by memory-mapped devices.

    A transaction carries the issuing process id as *provenance* for
    the test oracle and for the FLASH baseline (whose modified kernel
    tells the engine who is running). Protection-mechanism decoders
    must not see it: they receive a [view]. *)

type op = Load | Store

type t = {
  op : op;
  paddr : int;
  value : int; (** store payload; 0 for loads *)
  pid : int; (** issuing process (provenance only) *)
  at : Uldma_util.Units.ps; (** issue time *)
}

type view = { v_op : op; v_paddr : int; v_value : int }

val view : t -> view
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
