type t = { mutable now : Uldma_util.Units.ps }

let create () = { now = 0 }
let copy t = { now = t.now }
let now t = t.now

let advance t d =
  assert (d >= 0);
  t.now <- t.now + d

let pp ppf t = Uldma_util.Units.pp_time ppf t.now
