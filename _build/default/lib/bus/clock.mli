(** The machine's simulated clock, in integer picoseconds. *)

type t

val create : unit -> t
val copy : t -> t
val now : t -> Uldma_util.Units.ps
val advance : t -> Uldma_util.Units.ps -> unit
(** Advance by a non-negative duration. *)

val pp : Format.formatter -> t -> unit
