open Uldma_mem
open Uldma_cpu
open Uldma_os
module Mech = Uldma.Mech

type loop_spec = {
  iterations : int;
  transfer_size : int;
  src_base : int;
  dst_base : int;
  pages : int;
  result_va : int;
}

(* register assignments private to the harness loop (the mechanism
   stubs clobber r0-r3 and r20-r28 only) *)
let r_i = 10
let r_n = 11
let r_src = 12
let r_dst = 13
let r_mask = 14
let r_offset = 15
let r_successes = 16
let r_result = 17

let zero = Regfile.zero_reg

let emit_success_count asm =
  let skip = Asm.fresh_label asm "skip_count" in
  Asm.blt asm Mech.reg_status zero skip;
  Asm.add asm r_successes r_successes (Isa.Imm 1);
  Asm.label asm skip

let emit_epilogue asm ~result_va =
  Asm.li asm r_result result_va;
  Asm.store asm ~base:r_result ~off:0 r_successes;
  Asm.store asm ~base:r_result ~off:8 Mech.reg_status;
  Asm.halt asm

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let build_loop spec ~emit_dma =
  if not (is_power_of_two spec.pages) then
    invalid_arg "Stub_loop.build_loop: pages must be a power of two";
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "loop" in
  Asm.li asm r_i 0;
  Asm.li asm r_n spec.iterations;
  Asm.li asm r_src spec.src_base;
  Asm.li asm r_dst spec.dst_base;
  Asm.li asm r_mask (spec.pages - 1);
  Asm.li asm r_successes 0;
  Asm.label asm loop;
  (* successive DMAs use different pages: offset = (i mod pages) << 13 *)
  Asm.and_ asm r_offset r_i (Isa.Reg r_mask);
  Asm.shl asm r_offset r_offset Layout.page_shift;
  Asm.add asm Mech.reg_vsrc r_src (Isa.Reg r_offset);
  Asm.add asm Mech.reg_vdst r_dst (Isa.Reg r_offset);
  Asm.li asm Mech.reg_size spec.transfer_size;
  emit_dma asm;
  emit_success_count asm;
  Asm.add asm r_i r_i (Isa.Imm 1);
  Asm.blt asm r_i r_n loop;
  emit_epilogue asm ~result_va:spec.result_va;
  Asm.assemble asm

let build_repeat ~n ~vsrc ~vdst ~size ~result_va ~emit_dma =
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "loop" in
  Asm.li asm r_i 0;
  Asm.li asm r_n n;
  Asm.li asm r_successes 0;
  Asm.label asm loop;
  Asm.li asm Mech.reg_vsrc vsrc;
  Asm.li asm Mech.reg_vdst vdst;
  Asm.li asm Mech.reg_size size;
  emit_dma asm;
  emit_success_count asm;
  Asm.add asm r_i r_i (Isa.Imm 1);
  Asm.blt asm r_i r_n loop;
  emit_epilogue asm ~result_va;
  Asm.assemble asm

let build_single ~vsrc ~vdst ~size ~result_va ~emit_dma =
  build_repeat ~n:1 ~vsrc ~vdst ~size ~result_va ~emit_dma

let read_successes kernel p ~result_va = Kernel.read_user kernel p result_va

let read_last_status kernel p ~result_va = Kernel.read_user kernel p (result_va + 8)
