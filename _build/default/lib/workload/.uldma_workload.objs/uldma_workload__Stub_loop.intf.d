lib/workload/stub_loop.mli: Uldma_cpu Uldma_os
