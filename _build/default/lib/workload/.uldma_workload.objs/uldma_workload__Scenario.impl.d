lib/workload/scenario.ml: Asm Engine Isa Kernel Layout List Perms Printf Process Sched Seq_matcher Stub_loop Uldma Uldma_bus Uldma_cpu Uldma_dma Uldma_mem Uldma_mmu Uldma_os Uldma_verify Vm
