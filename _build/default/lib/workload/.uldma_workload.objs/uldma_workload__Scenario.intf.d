lib/workload/scenario.mli: Uldma_dma Uldma_os Uldma_util Uldma_verify
