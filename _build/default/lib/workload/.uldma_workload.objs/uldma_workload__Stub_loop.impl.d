lib/workload/stub_loop.ml: Asm Isa Kernel Layout Regfile Uldma Uldma_cpu Uldma_mem Uldma_os
