lib/workload/generator.mli: Uldma Uldma_cpu Uldma_os Uldma_util
