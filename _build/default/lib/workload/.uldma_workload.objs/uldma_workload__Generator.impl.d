lib/workload/generator.ml: Asm Isa Kernel Layout List Perms Phys_mem Process Regfile Rng Uldma Uldma_cpu Uldma_dma Uldma_mem Uldma_os Uldma_util Units
