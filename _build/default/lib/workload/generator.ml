open Uldma_util
open Uldma_mem
open Uldma_cpu
open Uldma_os
module Mech = Uldma.Mech

type request = { src_page : int; dst_page : int; size : int }

type plan = { pages : int; requests : request list; seed : int }

let random_plan rng ~pages ~requests ~max_size =
  let max_size = min max_size Layout.page_size in
  let make _ =
    {
      src_page = Rng.int rng pages;
      dst_page = Rng.int rng pages;
      size = Rng.int_in rng ~lo:8 ~hi:max_size land lnot 7;
    }
  in
  { pages; requests = List.init requests make; seed = Rng.int rng max_int }

let r_successes = 16
let r_result = 17

let build_program plan ~src_base ~dst_base ~result_va ~emit_dma =
  let asm = Asm.create () in
  Asm.li asm r_successes 0;
  List.iter
    (fun request ->
      Asm.li asm Mech.reg_vsrc (src_base + (request.src_page * Layout.page_size));
      Asm.li asm Mech.reg_vdst (dst_base + (request.dst_page * Layout.page_size));
      Asm.li asm Mech.reg_size request.size;
      emit_dma asm;
      let skip = Asm.fresh_label asm "skip" in
      Asm.blt asm Mech.reg_status Regfile.zero_reg skip;
      Asm.add asm r_successes r_successes (Isa.Imm 1);
      Asm.label asm skip)
    plan.requests;
  Asm.li asm r_result result_va;
  Asm.store asm ~base:r_result ~off:0 r_successes;
  Asm.halt asm;
  Asm.assemble asm

type outcome = {
  successes : int;
  transfers : int;
  dst_checksum : int;
  simulated_us : float;
  kernel_modified : bool;
}

let busy_loop_program iterations =
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "busy" in
  Asm.li asm 10 0;
  Asm.li asm 11 iterations;
  Asm.label asm loop;
  Asm.add asm 12 12 (Isa.Imm 1);
  Asm.add asm 10 10 (Isa.Imm 1);
  Asm.blt asm 10 11 loop;
  Asm.halt asm;
  Asm.assemble asm

let run plan ~(mech : Mech.t) ~sched ~with_interference =
  let base =
    {
      Kernel.default_config with
      Kernel.ram_size = (64 + (4 * plan.pages)) * Layout.page_size;
      backend = Kernel.Local { bytes_per_s = 1e9 };
      sched;
    }
  in
  let config = Uldma.Api.kernel_config ~base mech in
  let kernel = Kernel.create config in
  let p = Kernel.spawn kernel ~name:("diff-" ^ mech.Mech.name) ~program:[||] () in
  let src_base = Kernel.alloc_pages kernel p ~n:plan.pages ~perms:Perms.read_write in
  let dst_base = Kernel.alloc_pages kernel p ~n:plan.pages ~perms:Perms.read_write in
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  (* deterministic source pattern, independent of the mechanism *)
  let pattern = Rng.create ~seed:plan.seed in
  for w = 0 to (plan.pages * Layout.page_size / 8) - 1 do
    Kernel.write_user kernel p (src_base + (8 * w)) (Rng.int pattern (1 lsl 30))
  done;
  let prepared =
    mech.Mech.prepare kernel p
      ~src:{ Mech.vaddr = src_base; pages = plan.pages }
      ~dst:{ Mech.vaddr = dst_base; pages = plan.pages }
  in
  Process.set_program p
    (build_program plan ~src_base ~dst_base ~result_va ~emit_dma:prepared.Mech.emit_dma);
  if with_interference then
    ignore (Kernel.spawn kernel ~name:"busy" ~program:(busy_loop_program 5000) () : Process.t);
  let t0 = Kernel.now_ps kernel in
  (match Kernel.run kernel ~max_steps:5_000_000 () with
  | Kernel.All_exited -> ()
  | Kernel.Max_steps | Kernel.Predicate ->
    failwith ("Generator.run: " ^ mech.Mech.name ^ " did not finish"));
  let dst_paddr = Kernel.user_paddr kernel p dst_base in
  {
    successes = Kernel.read_user kernel p result_va;
    transfers = List.length (Uldma_dma.Engine.transfers (Kernel.engine kernel));
    dst_checksum =
      Phys_mem.checksum (Kernel.ram kernel) ~addr:dst_paddr ~len:(plan.pages * Layout.page_size);
    simulated_us = Units.to_us (Kernel.now_ps kernel - t0);
    kernel_modified = Kernel.kernel_modified kernel;
  }
