(** Random DMA workload generation and differential execution.

    A [plan] is a mechanism-independent list of transfer requests over
    a page region plus a deterministic source-data seed. [run] executes
    the same plan through any initiation mechanism on a fresh machine;
    because machines are constructed identically, the destination
    region's physical contents must be byte-identical across all
    correct mechanisms — the differential oracle the test suite uses.

    (SHRIMP-1 is excluded from differential comparison by its nature:
    its destination is the source page's mapped-out twin, not the
    requested destination.) *)

type request = { src_page : int; dst_page : int; size : int }

type plan = { pages : int; requests : request list; seed : int }

val random_plan : Uldma_util.Rng.t -> pages:int -> requests:int -> max_size:int -> plan
(** Word-aligned sizes in [\[8, max_size\]]; pages drawn uniformly. *)

type outcome = {
  successes : int; (** initiations the program saw succeed *)
  transfers : int; (** transfers the engine started *)
  dst_checksum : int; (** checksum of the whole destination region *)
  simulated_us : float;
  kernel_modified : bool;
}

val run :
  plan -> mech:Uldma.Mech.t -> sched:Uldma_os.Sched.policy -> with_interference:bool -> outcome
(** Execute the plan on a fresh machine configured for [mech].
    [with_interference] adds a compute-only process so the DMA program
    is preempted mid-sequence under preemptive schedulers. *)

val build_program :
  plan ->
  src_base:int ->
  dst_base:int ->
  result_va:int ->
  emit_dma:(Uldma_cpu.Asm.t -> unit) ->
  Uldma_cpu.Isa.instr array
(** The generated user program (exposed for tests). *)
