open Uldma_cpu
open Uldma_os

let emit_dma asm =
  (* Only the source's shadow alias is touched; the twin mapping
     supplies the destination. The paper uses one compare-and-exchange;
     our ISA splits it into the store (arguments) and a status load. *)
  Asm.add asm Mech.reg_shadow_src Mech.reg_vsrc (Isa.Imm Vm.shadow_va_offset);
  Asm.store asm ~base:Mech.reg_shadow_src ~off:0 Mech.reg_size;
  Asm.mb asm;
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0

let prepare kernel process ~src ~dst =
  Mech.check_prepared src dst;
  if dst.Mech.pages < src.Mech.pages then
    invalid_arg "Shrimp1.prepare: dst region smaller than src region";
  Mech.map_dma_aliases kernel process ~src ~dst;
  for i = 0 to src.Mech.pages - 1 do
    let page_va = src.Mech.vaddr + (i * Uldma_mem.Layout.page_size) in
    let twin_va = dst.Mech.vaddr + (i * Uldma_mem.Layout.page_size) in
    let twin_paddr = Kernel.user_paddr kernel process twin_va in
    Kernel.map_out_page kernel process ~vaddr:page_va ~dst_paddr:twin_paddr
  done;
  { Mech.emit_dma }

let mech =
  {
    Mech.name = "shrimp-1";
    engine_mechanism = Some Uldma_dma.Engine.Shrimp_mapped;
    requires_kernel_modification = false;
    ni_accesses = 2;
    prepare;
  }
