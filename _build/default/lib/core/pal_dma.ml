open Uldma_cpu
open Uldma_os

let pal_index = 1

(* DMA(vsource, vdestination, size):
     STORE size TO shadow(vdestination)
     LOAD return_status FROM shadow(vsource)
   executed in PAL mode, i.e. uninterrupted. *)
let pal_body =
  [|
    Isa.Add (Mech.reg_shadow_dst, Mech.reg_vdst, Isa.Imm Vm.shadow_va_offset);
    Isa.Add (Mech.reg_shadow_src, Mech.reg_vsrc, Isa.Imm Vm.shadow_va_offset);
    Isa.Store (Mech.reg_shadow_dst, 0, Mech.reg_size);
    Isa.Load (Mech.reg_status, Mech.reg_shadow_src, 0);
  |]

let emit_dma asm = Asm.call_pal asm pal_index

let prepare kernel process ~src ~dst =
  Mech.check_prepared src dst;
  (match Kernel.install_pal kernel ~index:pal_index pal_body with
  | Ok () -> ()
  | Error msg -> failwith ("Pal_dma.prepare: " ^ msg));
  Mech.map_dma_aliases kernel process ~src ~dst;
  { Mech.emit_dma }

let mech =
  {
    Mech.name = "pal";
    engine_mechanism = Some Uldma_dma.Engine.Shrimp_two_step;
    requires_kernel_modification = false;
    ni_accesses = 2;
    prepare;
  }
