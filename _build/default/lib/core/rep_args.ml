open Uldma_cpu
open Uldma_dma

let failure_reg = Mech.reg_scratch2

let emit_failure_constant asm = Asm.li asm failure_reg Status.failure

(* 1: LOAD status1 FROM shadow(vsource)
   2: STORE size TO shadow(vdestination)
   3: LOAD status2 FROM shadow(vsource) *)
let emit_dma_three asm =
  Mech.emit_shadow_addresses asm;
  Asm.load asm Mech.reg_scratch0 ~base:Mech.reg_shadow_src ~off:0;
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  Asm.mb asm;
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0

(* 1: STORE size TO shadow(vdestination)
   2: LOAD return_status1 FROM shadow(vsource)
   3: STORE size TO shadow(vdestination)
   4: LOAD return_status2 FROM shadow(vsource) *)
let emit_dma_four asm =
  Mech.emit_shadow_addresses asm;
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  Asm.mb asm;
  Asm.load asm Mech.reg_scratch0 ~base:Mech.reg_shadow_src ~off:0;
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  Asm.mb asm;
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0

let emit_five_body asm ~with_barriers ~on_failure =
  let mb () = if with_barriers then Asm.mb asm in
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  mb ();
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0;
  on_failure ();
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  mb ();
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0;
  on_failure ();
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_dst ~off:0;
  on_failure ()

(* Fig. 7, including "If (return_status == DMA_FAILURE) goto 1". *)
let emit_dma_five asm =
  let retry = Asm.fresh_label asm "rep5_retry" in
  Mech.emit_shadow_addresses asm;
  emit_failure_constant asm;
  Asm.label asm retry;
  emit_five_body asm ~with_barriers:true ~on_failure:(fun () ->
      Asm.beq asm Mech.reg_status failure_reg retry)

let emit_dma_five_no_retry asm =
  Mech.emit_shadow_addresses asm;
  emit_five_body asm ~with_barriers:true ~on_failure:(fun () -> ())

let emit_dma_five_no_retry_no_mb asm =
  Mech.emit_shadow_addresses asm;
  emit_five_body asm ~with_barriers:false ~on_failure:(fun () -> ())

let emit_of_variant = function
  | Seq_matcher.Three -> emit_dma_three
  | Seq_matcher.Four -> emit_dma_four
  | Seq_matcher.Five -> emit_dma_five

let variant_name = function
  | Seq_matcher.Three -> "rep-args-3"
  | Seq_matcher.Four -> "rep-args-4"
  | Seq_matcher.Five -> "rep-args"

let mech_of_variant variant =
  let emit = emit_of_variant variant in
  let prepare kernel process ~src ~dst =
    Mech.check_prepared src dst;
    Mech.map_dma_aliases kernel process ~src ~dst;
    { Mech.emit_dma = emit }
  in
  {
    Mech.name = variant_name variant;
    engine_mechanism = Some (Uldma_dma.Engine.Rep_args variant);
    requires_kernel_modification = false;
    ni_accesses = Seq_matcher.sequence_length variant;
    prepare;
  }

let mech = mech_of_variant Seq_matcher.Five
