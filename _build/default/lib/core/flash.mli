(** The FLASH solution (§2.6) — prior-art baseline.

    The same two-access sequence as SHRIMP-2, but "the context switch
    handler informs the DMA engine about which process is currently
    running", and the engine refuses to combine arguments deposited
    under different current-process values. Requires the kernel's
    context-switch handler to be modified; [prepare] installs the hook
    by default. *)

val mech : Mech.t

val prepare_raw :
  install_hook:bool ->
  Uldma_os.Kernel.t ->
  Uldma_os.Process.t ->
  src:Mech.region ->
  dst:Mech.region ->
  Mech.prepared

val emit_dma : Uldma_cpu.Asm.t -> unit
