(** User-level atomic operations (§3.5).

    Network interfaces offering a NOW shared-memory abstraction
    (Telegraphos, Dolphin SCI) expose atomic_add / fetch_and_store /
    compare_and_swap on remote or local memory. Initiating them from
    the kernel "would result in significant overhead, since the
    operating system overhead would be much higher than the time it
    takes to do the atomic operation itself" — so the paper adapts its
    user-level DMA mechanisms to atomic operations, which are simpler:
    only one physical address is needed.

    Conventions: r1 = virtual target address; the operand(s) live in
    the registers given to the emitters; the result (the target's old
    value) is returned in r0 (-1 on failure, which is also a possible
    old value — callers that store -1 should use the kernel variant).

    Variants:
    - [Kernel_initiated]: syscall baseline.
    - [Ext_shadow_initiated]: 2 NI accesses through the atomic shadow
      window, protected by the context id in the physical address.
    - [Key_initiated]: 3-4 NI accesses; the target address is passed
      with a KEY#CONTEXT_ID store, opcode+operand through the process's
      register-context page.
    - [Pal_initiated]: 2 NI accesses through the engine's *shared*
      atomic slot, wrapped in a PAL call so the pair cannot be
      interleaved (the sec. 2.7 trick applied to sec. 3.5; Alpha
      only). *)

type variant = Kernel_initiated | Ext_shadow_initiated | Key_initiated | Pal_initiated

val variant_name : variant -> string

val engine_mechanism : variant -> Uldma_dma.Engine.mechanism option
(** Engine personality required ([None] = any). *)

type prepared = {
  emit_add : Uldma_cpu.Asm.t -> operand:Uldma_cpu.Isa.reg -> unit;
  emit_fetch_store : Uldma_cpu.Asm.t -> operand:Uldma_cpu.Isa.reg -> unit;
  emit_cas : Uldma_cpu.Asm.t -> expected:Uldma_cpu.Isa.reg -> desired:Uldma_cpu.Isa.reg -> unit;
  ni_accesses : int; (** per add/fetch_store initiation *)
}

val prepare :
  variant -> Uldma_os.Kernel.t -> Uldma_os.Process.t -> region:Mech.region -> prepared
(** Set up the mechanism for atomic targets inside [region] (maps the
    atomic shadow window, allocates a context/key, installs the PAL
    functions — as each variant needs). *)

val pal_op_index : int
(** PAL slot used by [Pal_initiated] for add/fetch_store. *)

val pal_cas_index : int
(** PAL slot used by [Pal_initiated] for compare-and-swap. *)
