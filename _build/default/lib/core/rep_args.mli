(** Repeated passing of arguments (§3.3) — the paper's other novel
    mechanism, in all three historical variants.

    - [Three]: Dubnicki's LOAD-STORE-LOAD. Breakable (Fig. 5): a
      malicious process can splice its own source address into a
      victim's sequence and transfer its data into the victim's
      destination.
    - [Four]: the "obvious extension". Breakable (Fig. 6): the attacker
      can complete the victim's sequence, so the transfer starts but
      the victim is told it failed.
    - [Five] (Fig. 7): STORE LOAD STORE LOAD LOAD with the retry loop;
      proven safe in §3.3.1 (and machine-checked by Uldma_verify).

    Memory barriers follow each store, matching the paper's Table 1
    methodology ("a memory barrier was used to make sure that repeated
    accesses to the same address were not collapsed in (or serviced by)
    the write buffer").

    [mech] is the five-access method; [mech_of_variant] exposes the
    vulnerable ones for the attack-reproduction experiments. *)

val mech : Mech.t
val mech_of_variant : Uldma_dma.Seq_matcher.variant -> Mech.t

val emit_dma_three : Uldma_cpu.Asm.t -> unit
val emit_dma_four : Uldma_cpu.Asm.t -> unit
val emit_dma_five : Uldma_cpu.Asm.t -> unit
(** The Fig. 7 sequence, including the goto-on-failure retry loop. *)

val emit_dma_five_no_retry : Uldma_cpu.Asm.t -> unit
(** One pass of the five-access sequence without the retry loop — used
    by interleaving-exploration tests that need bounded programs. *)

val emit_dma_five_no_retry_no_mb : Uldma_cpu.Asm.t -> unit
(** The same pass with the memory barriers stripped — exists solely so
    the write-buffer ablation can demonstrate the hazard the paper's
    barriers prevent. Do not use in applications. *)
