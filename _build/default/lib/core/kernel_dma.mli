(** Kernel-level DMA initiation (Fig. 1) — the traditional baseline.

    The stub is a single system call; the kernel translates both
    addresses in software, checks permissions over the whole range, and
    programs the engine's (kernel-only) control registers with three
    stores and a status load, all uninterrupted in kernel mode. *)

val mech : Mech.t

val emit_dma : Uldma_cpu.Asm.t -> unit
(** li r0, sys_dma; syscall. *)
