(** The first SHRIMP solution (§2.4) — prior-art baseline.

    Every communication page is "mapped out" to a fixed twin page; a
    DMA can only copy a page region onto its twin, so a single shadow
    access (carrying the source address in its address wires and the
    size as data) is enough, and atomicity is trivial. "This solution,
    although correct, is of limited functionality": the destination
    argument in r2 is *ignored* — the data always lands on the twin.

    [prepare] installs, for every page of [src], its corresponding
    page of [dst] as the mapped-out twin. *)

val mech : Mech.t

val emit_dma : Uldma_cpu.Asm.t -> unit
(** store size to shadow(vsrc) (fires); load status back. *)
