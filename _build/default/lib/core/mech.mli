(** Shared types and conventions for the DMA-initiation mechanisms.

    {2 Calling convention of every emitted DMA stub}

    On entry: r1 = virtual source address, r2 = virtual destination
    address, r3 = size in bytes. On exit: r0 = engine status (negative
    = failure; otherwise bytes remaining, §3.1). Registers r20-r28 are
    clobbered. The generated sequences are the paper's figures
    verbatim, modulo the address-computation instructions every real
    stub needs (a shadow alias of data address [a] always lives at
    [a + Vm.shadow_va_offset], so one Add suffices).

    {2 Setup protocol}

    [prepare kernel process ~src ~dst] performs all one-time kernel
    services the mechanism needs for those data regions (shadow
    mappings, register context + key allocation, PAL installation,
    mapped-out twins, baseline kernel hooks) and returns the code
    emitters. Setup uses only standard, unmodified-kernel services for
    the paper's four mechanisms; [requires_kernel_modification] is true
    exactly for the SHRIMP-2 and FLASH baselines. *)

type region = { vaddr : int; pages : int }

val region_bytes : region -> int

type prepared = { emit_dma : Uldma_cpu.Asm.t -> unit }

type t = {
  name : string;
  engine_mechanism : Uldma_dma.Engine.mechanism option;
      (** engine personality the NI must be configured with; [None]
          means any (the kernel path works on every personality) *)
  requires_kernel_modification : bool;
  ni_accesses : int; (** uncached NI crossings per initiation *)
  prepare : Uldma_os.Kernel.t -> Uldma_os.Process.t -> src:region -> dst:region -> prepared;
}

(** {2 Register-use constants} *)

val reg_vsrc : int
val reg_vdst : int
val reg_size : int
val reg_status : int

val reg_shadow_dst : int (** r20 *)

val reg_shadow_src : int (** r21 *)

val reg_scratch0 : int (** r22 *)

val reg_scratch1 : int (** r23 *)

val reg_scratch2 : int (** r24 *)

(** {2 Shared emit/setup helpers} *)

val emit_shadow_addresses : Uldma_cpu.Asm.t -> unit
(** r20 <- shadow(vdst); r21 <- shadow(vsrc). *)

val map_dma_aliases :
  Uldma_os.Kernel.t -> Uldma_os.Process.t -> src:region -> dst:region -> unit
(** Create DMA-window shadow aliases for both regions (once if they
    coincide). *)

val check_prepared : region -> region -> unit
(** Validate page alignment; raises [Invalid_argument]. *)
