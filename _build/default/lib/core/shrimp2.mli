(** The second SHRIMP solution (§2.5, Fig. 2) — prior-art baseline.

    Two shadow accesses pass dest+size and then source; but if the
    process is preempted between them, another process's arguments can
    mix with its own. SHRIMP's fix: "the operating system must
    invalidate any partially initiated user-level DMA transfer on every
    context switch" — i.e. a modified kernel. [prepare] installs that
    hook by default; pass [~install_hook:false] (via [prepare_raw]) to
    reproduce the unsafe behaviour. *)

val mech : Mech.t

val prepare_raw :
  install_hook:bool ->
  Uldma_os.Kernel.t ->
  Uldma_os.Process.t ->
  src:Mech.region ->
  dst:Mech.region ->
  Mech.prepared

val emit_dma : Uldma_cpu.Asm.t -> unit
