(** Extended shadow addressing (§3.2, Fig. 4) — the paper's fastest
    mechanism and one of its two novel contributions.

    The process's register-context id is burned into the *physical*
    shadow addresses by the OS when it creates the shadow mappings, so
    the engine can sort concurrent argument streams into per-process
    register contexts with zero extra accesses:

    {v
    STORE size          TO   shadow_ctx(vdestination)
    LOAD  return_status FROM shadow_ctx(vsource)
    v}

    Two NI accesses per initiation; no kernel modification. *)

val mech : Mech.t

val mech_stateless : Mech.t
(** The same two-access protocol against §3.2's no-register-context
    engine, which pairs consecutive STORE/LOAD accesses and starts the
    DMA only when both carry the same context id. Still atomic across
    preemption with an unmodified kernel: an interloper's accesses
    carry its own context bits and make the pair mismatch. *)

val emit_dma : Uldma_cpu.Asm.t -> unit
