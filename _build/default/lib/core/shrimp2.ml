open Uldma_cpu
open Uldma_os

let emit_dma asm =
  Mech.emit_shadow_addresses asm;
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0

let prepare_raw ~install_hook kernel process ~src ~dst =
  Mech.check_prepared src dst;
  if install_hook then Kernel.install_shrimp_hook kernel;
  Mech.map_dma_aliases kernel process ~src ~dst;
  { Mech.emit_dma }

let prepare kernel process ~src ~dst = prepare_raw ~install_hook:true kernel process ~src ~dst

let mech =
  {
    Mech.name = "shrimp-2";
    engine_mechanism = Some Uldma_dma.Engine.Shrimp_two_step;
    requires_kernel_modification = true;
    ni_accesses = 2;
    prepare;
  }
