(** The PAL-code approach (§2.7).

    The two-access SHRIMP-2 sequence, wrapped in an Alpha PAL call so
    it executes uninterruptibly — atomicity without kernel
    modification, but host-processor-specific ("we believe that systems
    equipped with the Alpha processor should use this method"; it was
    incorporated into the Telegraphos I network interface).

    Installation of the PAL function is a privileged, one-time
    operation; invoking it is not. *)

val pal_index : int
(** The PAL slot the user-level-DMA function is installed in. *)

val pal_body : Uldma_cpu.Isa.instr array
(** The 4-instruction uninterruptible body. *)

val mech : Mech.t

val emit_dma : Uldma_cpu.Asm.t -> unit
(** A single [Call_pal] instruction. *)
