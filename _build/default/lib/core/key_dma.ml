open Uldma_cpu
open Uldma_os

let key_context_word ~key ~context = (key lsl 4) lor context

let emit_dma_with ~key ~context_page_va asm =
  let keyword = Mech.reg_scratch0 and ctx_page = Mech.reg_scratch1 in
  Asm.li asm keyword key;
  Asm.li asm ctx_page context_page_va;
  Mech.emit_shadow_addresses asm;
  (* STORE KEY#CONTEXT_ID TO shadow(vdestination) — pass destination *)
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 keyword;
  (* STORE KEY#CONTEXT_ID TO shadow(vsource) — pass source *)
  Asm.store asm ~base:Mech.reg_shadow_src ~off:0 keyword;
  (* STORE size TO REGISTER_CONTEXT *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_size Mech.reg_size;
  (* drain the write buffer so the status load cannot be forwarded *)
  Asm.mb asm;
  (* LOAD return_status FROM REGISTER_CONTEXT — initiates *)
  Asm.load asm Mech.reg_status ~base:ctx_page ~off:Uldma_dma.Regmap.c_size

let prepare kernel process ~src ~dst =
  Mech.check_prepared src dst;
  let context, key, context_page_va =
    match (process.Process.dma_context, process.Process.dma_key) with
    | Some context, Some key -> (context, key, Vm.context_page_va)
    | _, _ -> (
      match Kernel.alloc_dma_context kernel process with
      | Some assignment -> assignment
      | None -> failwith "Key_dma.prepare: no free register context")
  in
  Mech.map_dma_aliases kernel process ~src ~dst;
  let key = key_context_word ~key ~context in
  { Mech.emit_dma = emit_dma_with ~key ~context_page_va }

let mech =
  {
    Mech.name = "key-based";
    engine_mechanism = Some Uldma_dma.Engine.Key_based;
    requires_kernel_modification = false;
    ni_accesses = 4;
    prepare;
  }
