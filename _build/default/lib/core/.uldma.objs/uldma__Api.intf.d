lib/core/api.mli: Mech Uldma_os
