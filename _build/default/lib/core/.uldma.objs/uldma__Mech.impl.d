lib/core/mech.ml: Asm Isa Kernel Process Uldma_cpu Uldma_dma Uldma_mem Uldma_os Vm
