lib/core/rep_args.mli: Mech Uldma_cpu Uldma_dma
