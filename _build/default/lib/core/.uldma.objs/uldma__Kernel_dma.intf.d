lib/core/kernel_dma.mli: Mech Uldma_cpu
