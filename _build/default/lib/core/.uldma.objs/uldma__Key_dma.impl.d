lib/core/key_dma.ml: Asm Kernel Mech Process Uldma_cpu Uldma_dma Uldma_os Vm
