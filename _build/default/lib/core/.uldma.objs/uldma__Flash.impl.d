lib/core/flash.ml: Kernel Mech Process Shrimp2 Uldma_dma Uldma_os
