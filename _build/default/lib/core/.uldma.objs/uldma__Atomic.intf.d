lib/core/atomic.mli: Mech Uldma_cpu Uldma_dma Uldma_os
