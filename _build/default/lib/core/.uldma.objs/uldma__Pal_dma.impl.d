lib/core/pal_dma.ml: Asm Isa Kernel Mech Uldma_cpu Uldma_dma Uldma_os Vm
