lib/core/ext_shadow.mli: Mech Uldma_cpu
