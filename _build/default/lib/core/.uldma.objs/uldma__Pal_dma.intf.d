lib/core/pal_dma.mli: Mech Uldma_cpu
