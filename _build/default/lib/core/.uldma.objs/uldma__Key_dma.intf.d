lib/core/key_dma.mli: Mech Uldma_cpu
