lib/core/rep_args.ml: Asm Mech Seq_matcher Status Uldma_cpu Uldma_dma
