lib/core/shrimp2.mli: Mech Uldma_cpu Uldma_os
