lib/core/kernel_dma.ml: Asm Mech Sysno Uldma_cpu Uldma_os
