lib/core/ext_shadow.ml: Asm Kernel Mech Process Uldma_cpu Uldma_dma Uldma_os
