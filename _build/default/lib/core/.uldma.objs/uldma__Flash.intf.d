lib/core/flash.mli: Mech Uldma_cpu Uldma_os
