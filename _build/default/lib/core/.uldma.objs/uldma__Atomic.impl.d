lib/core/atomic.ml: Asm Atomic_op Engine Isa Kernel Key_dma Mech Process Regmap Sysno Uldma_cpu Uldma_dma Uldma_os Vm
