lib/core/shrimp2.ml: Asm Kernel Mech Uldma_cpu Uldma_dma Uldma_os
