lib/core/shrimp1.ml: Asm Isa Kernel Mech Uldma_cpu Uldma_dma Uldma_mem Uldma_os Vm
