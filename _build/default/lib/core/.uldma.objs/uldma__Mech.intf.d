lib/core/mech.mli: Uldma_cpu Uldma_dma Uldma_os
