lib/core/shrimp1.mli: Mech Uldma_cpu
