lib/core/api.ml: Ext_shadow Flash Kernel Kernel_dma Key_dma List Mech Pal_dma Printf Rep_args Shrimp1 Shrimp2 Uldma_dma Uldma_os
