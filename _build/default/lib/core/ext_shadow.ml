open Uldma_cpu
open Uldma_os

let emit_dma asm =
  Mech.emit_shadow_addresses asm;
  (* STORE size TO shadow_ctx(vdestination) *)
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_size;
  (* LOAD return_status FROM shadow_ctx(vsource) *)
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_src ~off:0

let prepare kernel process ~src ~dst =
  Mech.check_prepared src dst;
  (match process.Process.dma_context with
  | Some _ -> ()
  | None -> (
    match Kernel.alloc_dma_context kernel process with
    | Some _ -> ()
    | None -> failwith "Ext_shadow.prepare: no free register context"));
  Mech.map_dma_aliases kernel process ~src ~dst;
  { Mech.emit_dma }

let mech =
  {
    Mech.name = "ext-shadow";
    engine_mechanism = Some Uldma_dma.Engine.Ext_shadow;
    requires_kernel_modification = false;
    ni_accesses = 2;
    prepare;
  }

let mech_stateless =
  {
    Mech.name = "ext-shadow-stateless";
    engine_mechanism = Some Uldma_dma.Engine.Ext_shadow_stateless;
    requires_kernel_modification = false;
    ni_accesses = 2;
    prepare;
  }
