open Uldma_cpu
open Uldma_os

let emit_dma asm =
  Asm.li asm Mech.reg_status Sysno.sys_dma;
  Asm.syscall asm

let prepare _kernel _process ~src ~dst =
  Mech.check_prepared src dst;
  { Mech.emit_dma }

let mech =
  {
    Mech.name = "kernel";
    engine_mechanism = None;
    requires_kernel_modification = false;
    ni_accesses = 4;
    prepare;
  }
