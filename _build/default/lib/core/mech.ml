open Uldma_cpu
open Uldma_os

type region = { vaddr : int; pages : int }

let region_bytes r = r.pages * Uldma_mem.Layout.page_size

type prepared = { emit_dma : Asm.t -> unit }

type t = {
  name : string;
  engine_mechanism : Uldma_dma.Engine.mechanism option;
  requires_kernel_modification : bool;
  ni_accesses : int;
  prepare : Kernel.t -> Process.t -> src:region -> dst:region -> prepared;
}

let reg_vsrc = 1
let reg_vdst = 2
let reg_size = 3
let reg_status = 0

let reg_shadow_dst = 20
let reg_shadow_src = 21
let reg_scratch0 = 22
let reg_scratch1 = 23
let reg_scratch2 = 24

let emit_shadow_addresses asm =
  Asm.add asm reg_shadow_dst reg_vdst (Isa.Imm Vm.shadow_va_offset);
  Asm.add asm reg_shadow_src reg_vsrc (Isa.Imm Vm.shadow_va_offset)

let check_prepared src dst =
  let check r =
    if not (Uldma_mem.Layout.is_page_aligned r.vaddr) || r.pages <= 0 then
      invalid_arg "Mech.prepare: regions must be page-aligned and non-empty"
  in
  check src;
  check dst

let map_dma_aliases kernel process ~src ~dst =
  ignore (Kernel.map_shadow_alias kernel process ~vaddr:src.vaddr ~n:src.pages ~window:`Dma : int);
  if dst.vaddr <> src.vaddr then
    ignore (Kernel.map_shadow_alias kernel process ~vaddr:dst.vaddr ~n:dst.pages ~window:`Dma : int)
