open Uldma_cpu
open Uldma_os
open Uldma_dma

type variant = Kernel_initiated | Ext_shadow_initiated | Key_initiated | Pal_initiated

let variant_name = function
  | Kernel_initiated -> "atomic/kernel"
  | Ext_shadow_initiated -> "atomic/ext-shadow"
  | Key_initiated -> "atomic/key-based"
  | Pal_initiated -> "atomic/pal"

let engine_mechanism = function
  | Kernel_initiated -> None
  | Ext_shadow_initiated -> Some Engine.Ext_shadow
  | Key_initiated -> Some Engine.Key_based
  | Pal_initiated -> Some Engine.Shrimp_two_step

type prepared = {
  emit_add : Asm.t -> operand:Isa.reg -> unit;
  emit_fetch_store : Asm.t -> operand:Isa.reg -> unit;
  emit_cas : Asm.t -> expected:Isa.reg -> desired:Isa.reg -> unit;
  ni_accesses : int;
}

let reg_target = Mech.reg_vsrc (* r1: virtual target address *)

(* ---------------- kernel baseline ---------------- *)

let kernel_syscall asm ~op ~arg1 ~arg2 =
  Asm.li asm 2 op;
  Asm.mov asm 3 arg1;
  (match arg2 with Some r -> Asm.mov asm 4 r | None -> ());
  Asm.li asm 0 Sysno.sys_atomic;
  Asm.syscall asm

let kernel_prepared =
  {
    emit_add = (fun asm ~operand -> kernel_syscall asm ~op:Sysno.atomic_add ~arg1:operand ~arg2:None);
    emit_fetch_store =
      (fun asm ~operand -> kernel_syscall asm ~op:Sysno.atomic_fetch_store ~arg1:operand ~arg2:None);
    emit_cas =
      (fun asm ~expected ~desired ->
        kernel_syscall asm ~op:Sysno.atomic_cas ~arg1:expected ~arg2:(Some desired));
    ni_accesses = 3;
  }

(* ---------------- shared encoding helper ---------------- *)

(* scratch <- (operand << 4) | opcode *)
let emit_encode asm ~scratch ~operand ~opcode =
  Asm.shl asm scratch operand 4;
  Asm.or_ asm scratch scratch (Isa.Imm opcode)

(* ---------------- extended shadow addressing ---------------- *)

let emit_atomic_shadow_addr asm =
  Asm.add asm Mech.reg_shadow_dst reg_target (Isa.Imm Vm.atomic_va_offset)

let ext_one_op opcode asm ~operand =
  emit_atomic_shadow_addr asm;
  emit_encode asm ~scratch:Mech.reg_scratch0 ~operand ~opcode;
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_scratch0;
  Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_dst ~off:0

let ext_prepared =
  {
    emit_add = ext_one_op Atomic_op.opcode_add;
    emit_fetch_store = ext_one_op Atomic_op.opcode_fetch_store;
    emit_cas =
      (fun asm ~expected ~desired ->
        emit_atomic_shadow_addr asm;
        emit_encode asm ~scratch:Mech.reg_scratch0 ~operand:expected
          ~opcode:Atomic_op.opcode_cas_expected;
        Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_scratch0;
        emit_encode asm ~scratch:Mech.reg_scratch0 ~operand:desired ~opcode:Atomic_op.opcode_cas_new;
        Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_scratch0;
        Asm.load asm Mech.reg_status ~base:Mech.reg_shadow_dst ~off:0);
    ni_accesses = 2;
  }

(* ---------------- key-based ---------------- *)

let key_one_op ~keyword ~context_page_va opcode asm ~operand =
  emit_atomic_shadow_addr asm;
  Asm.li asm Mech.reg_scratch1 keyword;
  (* pass the physical target, authenticated by the key *)
  Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_scratch1;
  emit_encode asm ~scratch:Mech.reg_scratch0 ~operand ~opcode;
  Asm.li asm Mech.reg_scratch2 context_page_va;
  Asm.store asm ~base:Mech.reg_scratch2 ~off:Regmap.c_atomic Mech.reg_scratch0;
  Asm.mb asm;
  Asm.load asm Mech.reg_status ~base:Mech.reg_scratch2 ~off:Regmap.c_atomic

let key_prepared ~keyword ~context_page_va =
  {
    emit_add = key_one_op ~keyword ~context_page_va Atomic_op.opcode_add;
    emit_fetch_store = key_one_op ~keyword ~context_page_va Atomic_op.opcode_fetch_store;
    emit_cas =
      (fun asm ~expected ~desired ->
        emit_atomic_shadow_addr asm;
        Asm.li asm Mech.reg_scratch1 keyword;
        Asm.store asm ~base:Mech.reg_shadow_dst ~off:0 Mech.reg_scratch1;
        Asm.li asm Mech.reg_scratch2 context_page_va;
        emit_encode asm ~scratch:Mech.reg_scratch0 ~operand:expected
          ~opcode:Atomic_op.opcode_cas_expected;
        Asm.store asm ~base:Mech.reg_scratch2 ~off:Regmap.c_atomic Mech.reg_scratch0;
        emit_encode asm ~scratch:Mech.reg_scratch0 ~operand:desired ~opcode:Atomic_op.opcode_cas_new;
        Asm.store asm ~base:Mech.reg_scratch2 ~off:Regmap.c_atomic Mech.reg_scratch0;
        Asm.mb asm;
        Asm.load asm Mech.reg_status ~base:Mech.reg_scratch2 ~off:Regmap.c_atomic);
    ni_accesses = 3;
  }

(* ---------------- PAL-wrapped shared slot ---------------- *)

let pal_op_index = 3
let pal_cas_index = 4

(* Entry conditions for both bodies: r20 = atomic shadow alias of the
   target; r22 (and r23 for CAS) = encoded operation words. *)
let pal_op_body =
  [| Isa.Store (Mech.reg_shadow_dst, 0, Mech.reg_scratch0); Isa.Load (Mech.reg_status, Mech.reg_shadow_dst, 0) |]

let pal_cas_body =
  [|
    Isa.Store (Mech.reg_shadow_dst, 0, Mech.reg_scratch0);
    Isa.Store (Mech.reg_shadow_dst, 0, Mech.reg_scratch1);
    Isa.Load (Mech.reg_status, Mech.reg_shadow_dst, 0);
  |]

let pal_one_op opcode asm ~operand =
  emit_atomic_shadow_addr asm;
  emit_encode asm ~scratch:Mech.reg_scratch0 ~operand ~opcode;
  Asm.call_pal asm pal_op_index

let pal_prepared =
  {
    emit_add = pal_one_op Atomic_op.opcode_add;
    emit_fetch_store = pal_one_op Atomic_op.opcode_fetch_store;
    emit_cas =
      (fun asm ~expected ~desired ->
        emit_atomic_shadow_addr asm;
        emit_encode asm ~scratch:Mech.reg_scratch0 ~operand:expected
          ~opcode:Atomic_op.opcode_cas_expected;
        emit_encode asm ~scratch:Mech.reg_scratch1 ~operand:desired
          ~opcode:Atomic_op.opcode_cas_new;
        Asm.call_pal asm pal_cas_index);
    ni_accesses = 2;
  }

(* ---------------- setup ---------------- *)

let ensure_context kernel process =
  match (process.Process.dma_context, process.Process.dma_key) with
  | Some context, Some key -> (context, key)
  | _, _ -> (
    match Kernel.alloc_dma_context kernel process with
    | Some (context, key, _) -> (context, key)
    | None -> failwith "Atomic.prepare: no free register context")

let prepare variant kernel process ~region =
  match variant with
  | Kernel_initiated -> kernel_prepared
  | Ext_shadow_initiated ->
    let _ = ensure_context kernel process in
    ignore
      (Kernel.map_shadow_alias kernel process ~vaddr:region.Mech.vaddr ~n:region.Mech.pages
         ~window:`Atomic
        : int);
    ext_prepared
  | Key_initiated ->
    let context, key = ensure_context kernel process in
    ignore
      (Kernel.map_shadow_alias kernel process ~vaddr:region.Mech.vaddr ~n:region.Mech.pages
         ~window:`Atomic
        : int);
    key_prepared
      ~keyword:(Key_dma.key_context_word ~key ~context)
      ~context_page_va:Vm.context_page_va
  | Pal_initiated ->
    (match Kernel.install_pal kernel ~index:pal_op_index pal_op_body with
    | Ok () -> ()
    | Error msg -> failwith ("Atomic.prepare: " ^ msg));
    (match Kernel.install_pal kernel ~index:pal_cas_index pal_cas_body with
    | Ok () -> ()
    | Error msg -> failwith ("Atomic.prepare: " ^ msg));
    ignore
      (Kernel.map_shadow_alias kernel process ~vaddr:region.Mech.vaddr ~n:region.Mech.pages
         ~window:`Atomic
        : int);
    pal_prepared
