(** Key-based user-level DMA (§3.1, Fig. 3) — one of the paper's two
    novel mechanisms.

    The OS gives the process a register context and a secret ~60-bit
    key; every address-passing store carries KEY#CONTEXT_ID as its
    data, so the engine can check the writer is entitled to that
    context without knowing who is running:

    {v
    STORE KEY#CONTEXT_ID TO shadow(vdestination)
    STORE KEY#CONTEXT_ID TO shadow(vsource)
    STORE size           TO REGISTER_CONTEXT
    LOAD  return_status  FROM REGISTER_CONTEXT
    v}

    Both addresses travel in store *address* wires (which is why a
    process needs r/w access to the source — §3.1 discusses this);
    interruption mid-sequence is harmless because each process has its
    own context. Four NI accesses; no kernel modification. *)

val mech : Mech.t

val key_context_word : key:int -> context:int -> int
(** The KEY#CONTEXT_ID data word: [(key << 4) | context]. *)

val emit_dma_with : key:int -> context_page_va:int -> Uldma_cpu.Asm.t -> unit
