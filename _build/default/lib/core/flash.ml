open Uldma_os

let emit_dma = Shrimp2.emit_dma

let prepare_raw ~install_hook kernel process ~src ~dst =
  Mech.check_prepared src dst;
  if install_hook then begin
    Kernel.install_flash_hook kernel;
    (* the engine must know who is running from the very first
       instruction, not only from the first context switch *)
    Uldma_dma.Engine.set_current_pid (Kernel.engine kernel) process.Process.pid
  end;
  Mech.map_dma_aliases kernel process ~src ~dst;
  { Mech.emit_dma }

let prepare kernel process ~src ~dst = prepare_raw ~install_hook:true kernel process ~src ~dst

let mech =
  {
    Mech.name = "flash";
    engine_mechanism = Some Uldma_dma.Engine.Flash;
    requires_kernel_modification = true;
    ni_accesses = 2;
    prepare;
  }
