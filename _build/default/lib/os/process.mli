(** User processes as the kernel sees them. *)

type exit_reason =
  | Normal
  | Killed_fault of Uldma_mmu.Addr_space.fault
  | Killed of string

type state =
  | Ready
  | Blocked_until of Uldma_util.Units.ps
      (** sleeping or awaiting a DMA completion; runnable again once the
          clock reaches the wake time *)
  | Exited of exit_reason

type t = {
  pid : int;
  name : string;
  ctx : Uldma_cpu.Cpu.ctx;
  addr_space : Uldma_mmu.Addr_space.t;
  superuser : bool;
  mutable state : state;
  mutable dma_context : int option; (** register context the OS assigned *)
  mutable dma_key : int option; (** key for the key-based mechanism *)
  mutable next_va : int; (** bump allocator for fresh virtual pages *)
  mutable instructions_retired : int;
  mutable syscalls : int;
  mutable cpu_time_ps : Uldma_util.Units.ps;
      (** simulated time attributed to this process (instruction issue,
          memory traffic, and trap handling on its behalf) *)
}

val make : pid:int -> name:string -> program:Uldma_cpu.Isa.instr array -> superuser:bool -> t

val copy : t -> t

val set_program : t -> Uldma_cpu.Isa.instr array -> unit
(** Replace the program and reset the pc — used because mechanism setup
    (context allocation, shadow mappings) must happen before the stub
    code embedding its results can be generated. *)

val is_runnable : t -> bool
val kill : t -> exit_reason -> unit
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit

val initial_va : int
(** First user virtual address handed out by [next_va] (64 KiB). *)
