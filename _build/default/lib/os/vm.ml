open Uldma_mem

type t = { mutable free : int list; total : int; mutable n_free : int }

let reserved_frames = 16

let create ~ram_size =
  let frames = ram_size / Layout.page_size in
  if frames <= reserved_frames then invalid_arg "Vm.create: RAM too small";
  let free = ref [] in
  for f = frames - 1 downto reserved_frames do
    free := f :: !free
  done;
  { free = !free; total = frames - reserved_frames; n_free = frames - reserved_frames }

let copy t = { t with free = t.free }

let alloc_frame t =
  match t.free with
  | [] -> None
  | f :: rest ->
    t.free <- rest;
    t.n_free <- t.n_free - 1;
    Some f

let free_frame t f =
  t.free <- f :: t.free;
  t.n_free <- t.n_free + 1

let frames_free t = t.n_free

let shadow_va_offset = 0x4000_0000
let atomic_va_offset = 0x8000_0000
let context_page_va = 0x2000_0000
