lib/os/sysno.mli:
