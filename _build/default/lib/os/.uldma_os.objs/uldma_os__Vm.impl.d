lib/os/vm.ml: Layout Uldma_mem
