lib/os/sysno.ml:
