lib/os/sched.mli:
