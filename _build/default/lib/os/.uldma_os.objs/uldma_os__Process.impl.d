lib/os/process.ml: Addr_space Cpu Format Uldma_cpu Uldma_mmu Uldma_util
