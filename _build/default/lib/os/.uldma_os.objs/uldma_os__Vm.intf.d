lib/os/vm.mli:
