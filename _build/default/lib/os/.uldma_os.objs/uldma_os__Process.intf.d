lib/os/process.mli: Format Uldma_cpu Uldma_mmu Uldma_util
