lib/os/kernel.mli: Process Sched Uldma_bus Uldma_cpu Uldma_dma Uldma_io Uldma_mem Uldma_util
