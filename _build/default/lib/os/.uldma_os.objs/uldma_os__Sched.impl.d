lib/os/sched.ml: List Rng Uldma_util
