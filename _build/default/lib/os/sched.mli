(** The kernel scheduler.

    Preemption granularity is the single instruction: the scheduler is
    consulted before every user instruction, which is exactly the
    adversarial power the paper's atomicity arguments must survive
    ("if a process is interrupted while trying to start a DMA ...").

    - [Run_to_completion]: no preemption (single-process latency runs).
    - [Round_robin]: preempt every [quantum] instructions, cycling
      through runnable pids in pid order.
    - [Scripted]: an explicit pid per step — the tool for reproducing
      Fig. 5 / Fig. 6 interleavings exactly. When the script runs out,
      scheduling continues round-robin with quantum 1. A scripted pid
      that is not runnable falls through to the round-robin choice.
    - [Random_preempt]: before each instruction, switch to a uniformly
      random runnable process with probability [probability]
      (deterministic in [seed]) — the randomized attack campaigns. *)

type policy =
  | Run_to_completion
  | Round_robin of { quantum : int }
  | Scripted of int list
  | Random_preempt of { probability : float; seed : int }

type t

val create : policy -> t
val copy : t -> t
val policy : t -> policy

val pick : t -> current:int option -> runnable:int list -> int option
(** Choose the pid to execute the next instruction; [None] iff
    [runnable] is empty. [runnable] must be sorted ascending. *)

val note_switch : t -> unit
(** Inform the scheduler a context switch took place (the quantum
    counter starts at the switched-to process's first instruction). *)
