open Uldma_mmu
open Uldma_cpu

type exit_reason = Normal | Killed_fault of Addr_space.fault | Killed of string

type state = Ready | Blocked_until of Uldma_util.Units.ps | Exited of exit_reason

type t = {
  pid : int;
  name : string;
  ctx : Cpu.ctx;
  addr_space : Addr_space.t;
  superuser : bool;
  mutable state : state;
  mutable dma_context : int option;
  mutable dma_key : int option;
  mutable next_va : int;
  mutable instructions_retired : int;
  mutable syscalls : int;
  mutable cpu_time_ps : Uldma_util.Units.ps;
}

let initial_va = 0x10000

let make ~pid ~name ~program ~superuser =
  {
    pid;
    name;
    ctx = Cpu.make_ctx program;
    addr_space = Addr_space.create ();
    superuser;
    state = Ready;
    dma_context = None;
    dma_key = None;
    next_va = initial_va;
    instructions_retired = 0;
    syscalls = 0;
    cpu_time_ps = 0;
  }

let copy t =
  { t with ctx = Cpu.copy_ctx t.ctx; addr_space = Addr_space.copy t.addr_space }

let set_program t program =
  t.ctx.Cpu.program <- program;
  t.ctx.Cpu.pc <- 0

let is_runnable t = t.state = Ready

let kill t reason = t.state <- Exited reason

let pp_state ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Blocked_until at -> Format.fprintf ppf "blocked until %a" Uldma_util.Units.pp_time at
  | Exited Normal -> Format.pp_print_string ppf "exited"
  | Exited (Killed_fault f) -> Format.fprintf ppf "killed (%a)" Addr_space.pp_fault f
  | Exited (Killed msg) -> Format.fprintf ppf "killed (%s)" msg

let pp ppf t = Format.fprintf ppf "[%d:%s %a]" t.pid t.name pp_state t.state
