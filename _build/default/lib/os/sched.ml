open Uldma_util

type policy =
  | Run_to_completion
  | Round_robin of { quantum : int }
  | Scripted of int list
  | Random_preempt of { probability : float; seed : int }

type t = {
  policy : policy;
  mutable since_switch : int;
  mutable script : int list;
  rng : Rng.t;
}

let create policy =
  let seed = match policy with Random_preempt { seed; _ } -> seed | _ -> 0 in
  let script = match policy with Scripted s -> s | _ -> [] in
  { policy; since_switch = 0; script; rng = Rng.create ~seed }

let copy t = { t with rng = Rng.copy t.rng }

let policy t = t.policy

(* next runnable pid strictly after [current] in cyclic pid order *)
let next_after current runnable =
  match List.find_opt (fun pid -> pid > current) runnable with
  | Some pid -> pid
  | None -> List.hd runnable

let round_robin t ~quantum ~current ~runnable =
  match current with
  | Some cur when List.mem cur runnable ->
    if t.since_switch >= quantum then next_after cur runnable else cur
  | Some cur -> next_after cur runnable
  | None -> List.hd runnable

let pick t ~current ~runnable =
  match runnable with
  | [] -> None
  | _ :: _ ->
    let chosen =
      match t.policy with
      | Run_to_completion -> (
        match current with
        | Some cur when List.mem cur runnable -> cur
        | Some _ | None -> List.hd runnable)
      | Round_robin { quantum } -> round_robin t ~quantum ~current ~runnable
      | Scripted _ -> (
        match t.script with
        | pid :: rest ->
          t.script <- rest;
          if List.mem pid runnable then pid else round_robin t ~quantum:1 ~current ~runnable
        | [] -> round_robin t ~quantum:1 ~current ~runnable)
      | Random_preempt { probability; _ } -> (
        match current with
        | Some cur when List.mem cur runnable ->
          if Rng.chance t.rng probability then List.nth runnable (Rng.int t.rng (List.length runnable))
          else cur
        | Some _ | None -> List.nth runnable (Rng.int t.rng (List.length runnable)))
    in
    (match current with
    | Some cur when cur = chosen -> t.since_switch <- t.since_switch + 1
    | Some _ | None -> t.since_switch <- 1);
    Some chosen

let note_switch t = t.since_switch <- max t.since_switch 1
