(** Physical frame allocator and the virtual-address conventions the
    kernel uses when building user address spaces. *)

type t

val create : ram_size:int -> t
(** Frames 0..15 are reserved for the kernel. *)

val copy : t -> t
val alloc_frame : t -> int option
val free_frame : t -> int -> unit
val frames_free : t -> int

val shadow_va_offset : int
(** A process's shadow alias of data page [v] lives at
    [v + shadow_va_offset] — a fixed offset, so user stubs compute
    shadow addresses with a single Add. *)

val atomic_va_offset : int
(** Same, for the atomic-operation shadow window (§3.5). *)

val context_page_va : int
(** Where the process's register-context page is mapped. *)
