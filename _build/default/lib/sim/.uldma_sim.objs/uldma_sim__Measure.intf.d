lib/sim/measure.mli: Uldma Uldma_os Uldma_util
