lib/sim/experiments.mli: Uldma_net Uldma_util
