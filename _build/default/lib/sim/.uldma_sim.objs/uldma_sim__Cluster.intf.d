lib/sim/cluster.mli: Uldma_mem Uldma_net Uldma_os Uldma_util
