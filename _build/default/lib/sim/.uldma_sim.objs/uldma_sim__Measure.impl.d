lib/sim/measure.ml: Asm Isa Kernel List Perms Process Sched Stats Uldma Uldma_cpu Uldma_mem Uldma_os Uldma_util Uldma_workload Units
