lib/sim/duplex.mli: Uldma_net Uldma_os Uldma_util
