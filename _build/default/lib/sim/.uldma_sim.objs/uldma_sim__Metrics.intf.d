lib/sim/metrics.mli: Uldma_os Uldma_util
