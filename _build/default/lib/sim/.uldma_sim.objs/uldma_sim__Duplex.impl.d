lib/sim/duplex.ml: Bytes Char Engine Int64 Kernel List Netif Phys_mem Uldma_bus Uldma_dma Uldma_mem Uldma_net Uldma_os
