lib/sim/metrics.ml: Engine Format Kernel List Printf Process Tbl Uldma_bus Uldma_dma Uldma_os Uldma_util Units
