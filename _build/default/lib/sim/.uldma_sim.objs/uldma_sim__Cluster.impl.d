lib/sim/cluster.ml: Bytes Char Engine Hashtbl Int64 Kernel List Netif Phys_mem Uldma_bus Uldma_dma Uldma_mem Uldma_net Uldma_os Uldma_util Units
