(** A minimal two-node NOW: a sender machine whose DMA engine ships
    remote-window writes over a link, and a receiver node modelled as
    remote physical memory.

    The convention is Telegraphos's: the kernel maps peer-node memory
    into a process with [Kernel.map_remote_pages]; stores and DMA
    destinations naming that window leave the sender as packets
    ([Uldma_dma.Engine.take_outbound]); [pump] moves them over the link
    and applies arrivals to receiver RAM at their peer physical
    address. Local DMA (both endpoints in sender RAM) keeps working
    side by side through the configured backend. *)

type t

val create : link:Uldma_net.Link.t -> config:Uldma_os.Kernel.config -> t

val sender : t -> Uldma_os.Kernel.t
val receiver_ram : t -> Uldma_mem.Phys_mem.t
val netif : t -> Uldma_net.Netif.t

val pump : t -> int
(** Enqueue packets for transfers started since the last pump, then
    deliver everything whose arrival time has passed. Returns packets
    delivered. *)

val settle : t -> int
(** Deliver all in-flight packets regardless of time (end of run);
    advances the sender clock to the last arrival. *)

val bytes_delivered : t -> int
val last_arrival_ps : t -> Uldma_util.Units.ps
