(** The latency-measurement harness for Table 1 and its sweeps.

    Reproduces the paper's methodology (§3.4): a single process
    initiates [iterations] DMA operations in a loop, successive
    operations on different pages "so as to eliminate any caching
    effects", with no payload movement ([Null] backend — "No DMA data
    transfer was actually performed"); the average initiation time is
    the simulated-clock delta divided by the iteration count. *)

type result = {
  mechanism : string;
  iterations : int;
  successes : int; (** initiations the stub saw succeed (should = iterations) *)
  total_us : float;
  us_per_initiation : float;
  ni_accesses : int; (** engine-visible accesses per initiation, by design *)
}

val initiation :
  ?base:Uldma_os.Kernel.config ->
  ?iterations:int ->
  ?transfer_size:int ->
  Uldma.Mech.t ->
  result
(** Defaults: the paper's setup (alpha3000_300 timing, [Null] backend,
    1000 iterations, 1 KiB nominal size). *)

type contention_result = {
  mechanism : string;
  runs : int;
  latency_us : Uldma_util.Stats.summary;
}

val initiation_under_contention : ?runs:int -> Uldma.Mech.t -> contention_result
(** Wall-clock latency of one complete initiation while a compute
    process preempts at random instruction boundaries (25% per
    instruction), across [runs] seeds — the user-visible latency tail,
    including mid-stub preemptions and any retries they cause. *)

type atomic_result = {
  variant : string;
  iterations : int;
  us_per_op : float;
  final_counter : int; (** must equal [iterations] — correctness check *)
}

val atomic_add_initiation :
  ?base:Uldma_os.Kernel.config -> ?iterations:int -> Uldma.Atomic.variant -> atomic_result
(** A loop of user-initiated atomic_add(1) on one counter word; the
    backend is [Local] so the adds are real. *)
