(** A magnetic-disk model.

    The paper's opening contrast: "DMA has been heavily used to
    transfer data between (fast) main memory and (slow) magnetic disks
    ... since the overhead of the operating system involvement in the
    initiation of a DMA was small compared to the DMA data transfer
    itself, no attempt was made to allow user applications to start DMA
    operations" — network transfers broke that assumption. This model
    supplies the disk side of that comparison: millisecond-scale
    service times (seek + rotational latency + media transfer) against
    which an 18.6 µs syscall is indeed negligible.

    Service time: seek is distance-dependent
    ([min + span*sqrt(d/blocks)]), rotation costs half a revolution on
    average, transfer is block_size over the media rate. The head
    position persists across requests, so sequential access is cheap
    and random access pays. *)

type geometry = {
  name : string;
  rpm : int;
  avg_seek_ms : float; (** average (1/3-stroke) seek *)
  bytes_per_s : float; (** media transfer rate *)
  block_size : int;
  blocks : int;
  controller_setup_ps : Uldma_util.Units.ps;
}

val disk_1996 : geometry
(** A mid-90s SCSI disk: 5400 rpm, 9 ms average seek, 5 MB/s media. *)

val disk_modern : geometry
(** 7200 rpm, 8 ms seek, 160 MB/s media — faster media, same
    mechanical latencies. *)

type t

val create : geometry -> t
val copy : t -> t
val geometry : t -> geometry

val service_time : t -> block:int -> Uldma_util.Units.ps
(** Time to service a request at [block] from the current head
    position, without moving the head. *)

val read_block : t -> block:int -> (Bytes.t * Uldma_util.Units.ps, string) result
(** The block's contents and the service time; moves the head. *)

val write_block : t -> block:int -> Bytes.t -> (Uldma_util.Units.ps, string) result
(** Writes exactly [block_size] bytes; moves the head. *)

val head : t -> int
val requests_served : t -> int
