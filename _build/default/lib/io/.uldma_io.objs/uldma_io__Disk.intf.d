lib/io/disk.mli: Bytes Uldma_util
