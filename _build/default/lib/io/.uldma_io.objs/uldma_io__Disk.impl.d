lib/io/disk.ml: Bytes Printf Uldma_util Units
