open Uldma_util

type geometry = {
  name : string;
  rpm : int;
  avg_seek_ms : float;
  bytes_per_s : float;
  block_size : int;
  blocks : int;
  controller_setup_ps : Units.ps;
}

let disk_1996 =
  {
    name = "1996 SCSI disk (5400 rpm)";
    rpm = 5400;
    avg_seek_ms = 9.0;
    bytes_per_s = 5e6;
    block_size = 4096;
    blocks = 262_144 (* 1 GB *);
    controller_setup_ps = Units.us 50.0;
  }

let disk_modern =
  {
    name = "modern disk (7200 rpm)";
    rpm = 7200;
    avg_seek_ms = 8.0;
    bytes_per_s = 160e6;
    block_size = 4096;
    blocks = 16_777_216;
    controller_setup_ps = Units.us 20.0;
  }

type t = {
  geometry : geometry;
  image : Bytes.t;
  mutable head : int;
  mutable requests : int;
}

let create geometry =
  if geometry.blocks <= 0 || geometry.block_size <= 0 then invalid_arg "Disk.create";
  (* back only a modest prefix with real bytes; the timing model covers
     the whole geometry *)
  let backed = min geometry.blocks 1024 in
  {
    geometry;
    image = Bytes.make (backed * geometry.block_size) '\000';
    head = 0;
    requests = 0;
  }

let copy t = { t with image = Bytes.copy t.image }

let geometry t = t.geometry

let backed_blocks t = Bytes.length t.image / t.geometry.block_size

let seek_ps t ~from ~target =
  if from = target then Units.us 100.0 (* settle only *)
  else
    let distance = float_of_int (abs (target - from)) /. float_of_int t.geometry.blocks in
    (* a + b*sqrt(d), calibrated so the 1/3-stroke seek equals avg_seek *)
    let avg = t.geometry.avg_seek_ms in
    Units.us (1000.0 *. ((0.3 *. avg) +. (0.7 *. avg *. sqrt (distance *. 3.0))))

let rotational_ps t =
  (* half a revolution on average *)
  Units.us (0.5 *. 60_000_000.0 /. float_of_int t.geometry.rpm /. 1000.0 *. 1000.0)

let transfer_ps t = Units.transfer_ps ~bytes_per_s:t.geometry.bytes_per_s t.geometry.block_size

let service_time t ~block =
  t.geometry.controller_setup_ps + seek_ps t ~from:t.head ~target:block + rotational_ps t
  + transfer_ps t

let check_block t block =
  if block < 0 || block >= t.geometry.blocks then
    Error (Printf.sprintf "block %d outside disk (%d blocks)" block t.geometry.blocks)
  else Ok ()

let serve t ~block =
  let time = service_time t ~block in
  t.head <- block;
  t.requests <- t.requests + 1;
  time

let read_block t ~block =
  match check_block t block with
  | Error _ as e -> e
  | Ok () ->
    let time = serve t ~block in
    let data =
      if block < backed_blocks t then
        Bytes.sub t.image (block * t.geometry.block_size) t.geometry.block_size
      else Bytes.make t.geometry.block_size '\000'
    in
    Ok (data, time)

let write_block t ~block data =
  if Bytes.length data <> t.geometry.block_size then
    Error
      (Printf.sprintf "write of %d bytes; block size is %d" (Bytes.length data)
         t.geometry.block_size)
  else
    match check_block t block with
    | Error _ as e -> e
    | Ok () ->
      let time = serve t ~block in
      if block < backed_blocks t then
        Bytes.blit data 0 t.image (block * t.geometry.block_size) t.geometry.block_size;
      Ok time

let head t = t.head

let requests_served t = t.requests
