(** The CPU register file. Register 31 is hardwired to zero, as on the
    Alpha. *)

type t

val zero_reg : int

val create : unit -> t
val copy : t -> t

val get : t -> Isa.reg -> int
val set : t -> Isa.reg -> int -> unit
(** Writes to register 31 are discarded. *)

val to_list : t -> int list
val pp : Format.formatter -> t -> unit
