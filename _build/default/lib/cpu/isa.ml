type reg = int [@@deriving show, eq]

let num_regs = 32

type operand = Reg of reg | Imm of int [@@deriving show, eq]

type instr =
  | Li of reg * int
  | Mov of reg * reg
  | Add of reg * reg * operand
  | Sub of reg * reg * operand
  | And_ of reg * reg * operand
  | Or_ of reg * reg * operand
  | Xor of reg * reg * operand
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Load of reg * reg * int
  | Store of reg * int * reg
  | Mb
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Jmp of int
  | Syscall
  | Call_pal of int
  | Nop
  | Halt
[@@deriving show, eq]

let is_branch = function
  | Beq _ | Bne _ | Blt _ | Jmp _ -> true
  | Li _ | Mov _ | Add _ | Sub _ | And_ _ | Or_ _ | Xor _ | Shl _ | Shr _ | Load _
  | Store _ | Mb | Syscall | Call_pal _ | Nop | Halt ->
    false

let reg_ok r = r >= 0 && r < num_regs

let operand_regs = function Reg r -> [ r ] | Imm _ -> []

let regs_of = function
  | Li (rd, _) -> [ rd ]
  | Mov (rd, rs) -> [ rd; rs ]
  | Add (rd, rs, op) | Sub (rd, rs, op) | And_ (rd, rs, op) | Or_ (rd, rs, op) | Xor (rd, rs, op)
    ->
    rd :: rs :: operand_regs op
  | Shl (rd, rs, _) | Shr (rd, rs, _) -> [ rd; rs ]
  | Load (rd, rb, _) -> [ rd; rb ]
  | Store (rb, _, rv) -> [ rb; rv ]
  | Beq (ra, rb, _) | Bne (ra, rb, _) | Blt (ra, rb, _) -> [ ra; rb ]
  | Mb | Jmp _ | Syscall | Call_pal _ | Nop | Halt -> []

let validate instr =
  let bad = List.filter (fun r -> not (reg_ok r)) (regs_of instr) in
  match bad with
  | [] -> Ok ()
  | r :: _ -> Error (Printf.sprintf "bad register r%d in %s" r (show_instr instr))

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm v -> if v >= 4096 then Format.fprintf ppf "%#x" v else Format.fprintf ppf "%d" v

let pp_asm ppf = function
  | Li (rd, v) ->
    if v >= 4096 || v <= -4096 then Format.fprintf ppf "li    r%d, %#x" rd v
    else Format.fprintf ppf "li    r%d, %d" rd v
  | Mov (rd, rs) -> Format.fprintf ppf "mov   r%d, r%d" rd rs
  | Add (rd, rs, op) -> Format.fprintf ppf "add   r%d, r%d, %a" rd rs pp_operand op
  | Sub (rd, rs, op) -> Format.fprintf ppf "sub   r%d, r%d, %a" rd rs pp_operand op
  | And_ (rd, rs, op) -> Format.fprintf ppf "and   r%d, r%d, %a" rd rs pp_operand op
  | Or_ (rd, rs, op) -> Format.fprintf ppf "or    r%d, r%d, %a" rd rs pp_operand op
  | Xor (rd, rs, op) -> Format.fprintf ppf "xor   r%d, r%d, %a" rd rs pp_operand op
  | Shl (rd, rs, n) -> Format.fprintf ppf "shl   r%d, r%d, %d" rd rs n
  | Shr (rd, rs, n) -> Format.fprintf ppf "shr   r%d, r%d, %d" rd rs n
  | Load (rd, rb, off) -> Format.fprintf ppf "load  r%d, [r%d+%d]" rd rb off
  | Store (rb, off, rv) -> Format.fprintf ppf "store [r%d+%d], r%d" rb off rv
  | Mb -> Format.pp_print_string ppf "mb"
  | Beq (ra, rb, tgt) -> Format.fprintf ppf "beq   r%d, r%d, %d" ra rb tgt
  | Bne (ra, rb, tgt) -> Format.fprintf ppf "bne   r%d, r%d, %d" ra rb tgt
  | Blt (ra, rb, tgt) -> Format.fprintf ppf "blt   r%d, r%d, %d" ra rb tgt
  | Jmp tgt -> Format.fprintf ppf "jmp   %d" tgt
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Call_pal n -> Format.fprintf ppf "call_pal %d" n
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"

let pp_listing ppf program =
  Array.iteri (fun i instr -> Format.fprintf ppf "%3d:  %a@." i pp_asm instr) program
