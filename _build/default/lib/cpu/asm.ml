type slot =
  | Fixed of Isa.instr
  | Branch_sym of (int -> Isa.instr) * string (* build from resolved target *)

type t = {
  mutable slots : slot list; (* newest first *)
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable gensym : int;
}

let create () = { slots = []; count = 0; labels = Hashtbl.create 16; gensym = 0 }

let label t name =
  if Hashtbl.mem t.labels name then
    invalid_arg (Printf.sprintf "Asm.label: %S redefined" name);
  Hashtbl.replace t.labels name t.count

let fresh_label t prefix =
  t.gensym <- t.gensym + 1;
  Printf.sprintf "%s__%d" prefix t.gensym

let here t = t.count

let push t slot =
  t.slots <- slot :: t.slots;
  t.count <- t.count + 1

let emit t i = push t (Fixed i)

let li t rd v = emit t (Isa.Li (rd, v))
let mov t rd rs = emit t (Isa.Mov (rd, rs))
let add t rd rs op = emit t (Isa.Add (rd, rs, op))
let sub t rd rs op = emit t (Isa.Sub (rd, rs, op))
let and_ t rd rs op = emit t (Isa.And_ (rd, rs, op))
let or_ t rd rs op = emit t (Isa.Or_ (rd, rs, op))
let xor t rd rs op = emit t (Isa.Xor (rd, rs, op))
let shl t rd rs n = emit t (Isa.Shl (rd, rs, n))
let shr t rd rs n = emit t (Isa.Shr (rd, rs, n))
let load t rd ~base ~off = emit t (Isa.Load (rd, base, off))
let store t ~base ~off rv = emit t (Isa.Store (base, off, rv))
let mb t = emit t Isa.Mb
let beq t ra rb lbl = push t (Branch_sym ((fun tgt -> Isa.Beq (ra, rb, tgt)), lbl))
let bne t ra rb lbl = push t (Branch_sym ((fun tgt -> Isa.Bne (ra, rb, tgt)), lbl))
let blt t ra rb lbl = push t (Branch_sym ((fun tgt -> Isa.Blt (ra, rb, tgt)), lbl))
let jmp t lbl = push t (Branch_sym ((fun tgt -> Isa.Jmp tgt), lbl))
let syscall t = emit t Isa.Syscall
let call_pal t n = emit t (Isa.Call_pal n)
let nop t = emit t Isa.Nop
let halt t = emit t Isa.Halt

let raw t i = emit t i

let assemble t =
  let resolve lbl =
    match Hashtbl.find_opt t.labels lbl with
    | Some target -> target
    | None -> failwith (Printf.sprintf "Asm.assemble: undefined label %S" lbl)
  in
  let instrs =
    List.rev_map
      (function Fixed i -> i | Branch_sym (build, lbl) -> build (resolve lbl))
      t.slots
  in
  let program = Array.of_list instrs in
  Array.iter
    (fun i ->
      match Isa.validate i with
      | Ok () -> ()
      | Error msg -> failwith ("Asm.assemble: " ^ msg))
    program;
  program

let assemble_list instrs =
  let t = create () in
  List.iter (raw t) instrs;
  assemble t
