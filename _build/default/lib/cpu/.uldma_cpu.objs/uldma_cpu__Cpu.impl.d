lib/cpu/cpu.pp.ml: Addr_space Array Format Isa Regfile Uldma_mmu Uldma_util
