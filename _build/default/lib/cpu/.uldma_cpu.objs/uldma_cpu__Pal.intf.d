lib/cpu/pal.pp.mli: Isa
