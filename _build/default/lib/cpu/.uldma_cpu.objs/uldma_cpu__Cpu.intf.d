lib/cpu/cpu.pp.mli: Format Isa Regfile Uldma_mmu Uldma_util
