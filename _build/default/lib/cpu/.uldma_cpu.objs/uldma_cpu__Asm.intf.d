lib/cpu/asm.pp.mli: Isa
