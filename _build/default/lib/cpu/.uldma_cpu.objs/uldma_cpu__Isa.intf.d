lib/cpu/isa.pp.mli: Format
