lib/cpu/regfile.pp.ml: Array Format Isa Printf
