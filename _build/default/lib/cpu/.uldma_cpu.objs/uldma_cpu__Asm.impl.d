lib/cpu/asm.pp.ml: Array Hashtbl Isa List Printf
