lib/cpu/pal.pp.ml: Array Isa List Printf
