lib/cpu/regfile.pp.mli: Format Isa
