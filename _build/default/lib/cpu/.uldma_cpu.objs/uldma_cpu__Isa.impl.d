lib/cpu/isa.pp.ml: Array Format List Ppx_deriving_runtime Printf
