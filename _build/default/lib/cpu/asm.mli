(** A two-pass assembler: emit instructions with symbolic branch
    labels, then [assemble] into an [Isa.instr array] with absolute
    targets.

    All DMA initiation stubs, workload programs and adversary programs
    are built through this module. *)

type t

val create : unit -> t

val label : t -> string -> unit
(** Define a label at the current position. Raises [Invalid_argument]
    on redefinition. *)

val fresh_label : t -> string -> string
(** A unique label name with the given prefix (for emit helpers that
    need internal labels). *)

val here : t -> int
(** Current instruction count. *)

(** {1 Emitters} — one per instruction. Branch emitters take labels. *)

val li : t -> Isa.reg -> int -> unit
val mov : t -> Isa.reg -> Isa.reg -> unit
val add : t -> Isa.reg -> Isa.reg -> Isa.operand -> unit
val sub : t -> Isa.reg -> Isa.reg -> Isa.operand -> unit
val and_ : t -> Isa.reg -> Isa.reg -> Isa.operand -> unit
val or_ : t -> Isa.reg -> Isa.reg -> Isa.operand -> unit
val xor : t -> Isa.reg -> Isa.reg -> Isa.operand -> unit
val shl : t -> Isa.reg -> Isa.reg -> int -> unit
val shr : t -> Isa.reg -> Isa.reg -> int -> unit
val load : t -> Isa.reg -> base:Isa.reg -> off:int -> unit
val store : t -> base:Isa.reg -> off:int -> Isa.reg -> unit
val mb : t -> unit
val beq : t -> Isa.reg -> Isa.reg -> string -> unit
val bne : t -> Isa.reg -> Isa.reg -> string -> unit
val blt : t -> Isa.reg -> Isa.reg -> string -> unit
val jmp : t -> string -> unit
val syscall : t -> unit
val call_pal : t -> int -> unit
val nop : t -> unit
val halt : t -> unit

val raw : t -> Isa.instr -> unit
(** Emit a pre-built instruction (branch targets already absolute). *)

val assemble : t -> Isa.instr array
(** Resolve labels. Raises [Failure] on undefined labels or invalid
    registers. The builder remains usable (assembling is a snapshot). *)

val assemble_list : Isa.instr list -> Isa.instr array
(** Convenience for label-free programs. *)
