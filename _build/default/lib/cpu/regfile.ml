type t = int array

let zero_reg = 31

let create () = Array.make Isa.num_regs 0

let copy = Array.copy

let check r = if r < 0 || r >= Isa.num_regs then invalid_arg (Printf.sprintf "Regfile: r%d" r)

let get t r =
  check r;
  if r = zero_reg then 0 else t.(r)

let set t r v =
  check r;
  if r <> zero_reg then t.(r) <- v

let to_list = Array.to_list

let pp ppf t =
  Array.iteri (fun i v -> if v <> 0 then Format.fprintf ppf "r%d=%#x " i v) t
