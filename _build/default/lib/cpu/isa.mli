(** The simulated RISC instruction set.

    Deliberately Alpha-flavoured: load/store word architecture, a
    memory barrier ([Mb], the Alpha's [MB]), a [Syscall] trap and
    [Call_pal] for PALcode (paper §2.7). Branch targets are absolute
    instruction indices after assembly (the assembler resolves symbolic
    labels). All user-level DMA initiation sequences in the paper are
    expressible — and expressed — in this ISA. *)

type reg = int
(** Register number, 0..31. *)

val num_regs : int

type operand = Reg of reg | Imm of int

type instr =
  | Li of reg * int (** rd <- constant *)
  | Mov of reg * reg
  | Add of reg * reg * operand
  | Sub of reg * reg * operand
  | And_ of reg * reg * operand
  | Or_ of reg * reg * operand
  | Xor of reg * reg * operand
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Load of reg * reg * int (** rd <- mem\[rbase + offset\] *)
  | Store of reg * int * reg (** mem\[rbase + offset\] <- rv *)
  | Mb (** memory barrier: drain the write buffer *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int (** signed < *)
  | Jmp of int
  | Syscall (** number in r0, args in r1..r5, result in r0 *)
  | Call_pal of int (** invoke installed PAL function *)
  | Nop
  | Halt

val pp_instr : Format.formatter -> instr -> unit
val show_instr : instr -> string
val equal_instr : instr -> instr -> bool

val pp_asm : Format.formatter -> instr -> unit
(** Assembly-style rendering: [store \[r20+0\], r3], [beq r0, r24, 7]. *)

val pp_listing : Format.formatter -> instr array -> unit
(** Numbered program listing with branch targets resolved to line
    numbers — used by the CLI's [stub] command to print each
    mechanism's generated initiation sequence (the paper's figures). *)

val is_branch : instr -> bool

val validate : instr -> (unit, string) result
(** Check register numbers and branch-target sanity cannot be verified
    here (targets need the program length); registers are. *)
