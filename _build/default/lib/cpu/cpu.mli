(** The instruction interpreter.

    [step] executes exactly one instruction of a context against a
    [host] — the machine-provided view of translation, memory, time and
    traps — and reports what happened. The machine (in the sim library)
    owns the loop, the scheduler, and trap handling; keeping the
    interpreter to single steps is what makes instruction-granularity
    preemption, scripted interleavings, and exhaustive schedule
    exploration possible. *)

type ctx = { regs : Regfile.t; mutable pc : int; mutable program : Isa.instr array }

val make_ctx : Isa.instr array -> ctx
val copy_ctx : ctx -> ctx

type outcome =
  | Continue
  | Halted (** [Halt] or fell off the end of the program *)
  | Syscall_trap (** [Syscall] executed; number/args are in the registers *)
  | Pal_trap of int (** [Call_pal n] executed *)
  | Fault of Uldma_mmu.Addr_space.fault

type host = {
  translate :
    Uldma_mmu.Addr_space.access -> int -> (Uldma_mmu.Addr_space.translation, Uldma_mmu.Addr_space.fault) result;
  load : cacheable:bool -> int -> int; (** physical load (via write buffer + bus) *)
  store : cacheable:bool -> int -> int -> unit;
  barrier : unit -> unit; (** [Mb]: drain the write buffer *)
  charge : Uldma_util.Units.ps -> unit; (** advance simulated time *)
  instruction_ps : Uldma_util.Units.ps;
  tlb_miss_ps : Uldma_util.Units.ps;
  memory_barrier_ps : Uldma_util.Units.ps;
}

val step : ctx -> host -> outcome
(** Execute one instruction, charging its cost. On [Fault] the pc is
    left at the faulting instruction. [Syscall_trap]/[Pal_trap] return
    with the pc already advanced past the trap instruction. *)

val run_subprogram : Regfile.t -> Isa.instr array -> host -> outcome
(** Execute a complete (trap-free) instruction sequence on the given
    registers without any possibility of preemption — the PAL-mode
    execution primitive. Returns [Halted] on normal completion, or the
    first [Fault]. Raises [Invalid_argument] if the body traps. *)

val pp_outcome : Format.formatter -> outcome -> unit
