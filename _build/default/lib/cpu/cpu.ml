open Uldma_mmu

type ctx = { regs : Regfile.t; mutable pc : int; mutable program : Isa.instr array }

let make_ctx program = { regs = Regfile.create (); pc = 0; program }

let copy_ctx c = { regs = Regfile.copy c.regs; pc = c.pc; program = c.program }

type outcome = Continue | Halted | Syscall_trap | Pal_trap of int | Fault of Addr_space.fault

type host = {
  translate : Addr_space.access -> int -> (Addr_space.translation, Addr_space.fault) result;
  load : cacheable:bool -> int -> int;
  store : cacheable:bool -> int -> int -> unit;
  barrier : unit -> unit;
  charge : Uldma_util.Units.ps -> unit;
  instruction_ps : Uldma_util.Units.ps;
  tlb_miss_ps : Uldma_util.Units.ps;
  memory_barrier_ps : Uldma_util.Units.ps;
}

let operand_value regs = function Isa.Reg r -> Regfile.get regs r | Isa.Imm v -> v

let memory_access host access vaddr =
  match host.translate access vaddr with
  | Error f -> Error f
  | Ok tr ->
    if tr.Addr_space.hit = `Miss then host.charge host.tlb_miss_ps;
    Ok tr

let step ctx host =
  if ctx.pc < 0 || ctx.pc >= Array.length ctx.program then Halted
  else begin
    let instr = ctx.program.(ctx.pc) in
    host.charge host.instruction_ps;
    let regs = ctx.regs in
    let next () =
      ctx.pc <- ctx.pc + 1;
      Continue
    in
    match instr with
    | Isa.Li (rd, v) ->
      Regfile.set regs rd v;
      next ()
    | Isa.Mov (rd, rs) ->
      Regfile.set regs rd (Regfile.get regs rs);
      next ()
    | Isa.Add (rd, rs, op) ->
      Regfile.set regs rd (Regfile.get regs rs + operand_value regs op);
      next ()
    | Isa.Sub (rd, rs, op) ->
      Regfile.set regs rd (Regfile.get regs rs - operand_value regs op);
      next ()
    | Isa.And_ (rd, rs, op) ->
      Regfile.set regs rd (Regfile.get regs rs land operand_value regs op);
      next ()
    | Isa.Or_ (rd, rs, op) ->
      Regfile.set regs rd (Regfile.get regs rs lor operand_value regs op);
      next ()
    | Isa.Xor (rd, rs, op) ->
      Regfile.set regs rd (Regfile.get regs rs lxor operand_value regs op);
      next ()
    | Isa.Shl (rd, rs, n) ->
      Regfile.set regs rd (Regfile.get regs rs lsl n);
      next ()
    | Isa.Shr (rd, rs, n) ->
      Regfile.set regs rd (Regfile.get regs rs lsr n);
      next ()
    | Isa.Load (rd, rb, off) -> (
      let vaddr = Regfile.get regs rb + off in
      match memory_access host Addr_space.Read vaddr with
      | Error f -> Fault f
      | Ok tr ->
        Regfile.set regs rd (host.load ~cacheable:tr.Addr_space.cacheable tr.Addr_space.paddr);
        next ())
    | Isa.Store (rb, off, rv) -> (
      let vaddr = Regfile.get regs rb + off in
      match memory_access host Addr_space.Write vaddr with
      | Error f -> Fault f
      | Ok tr ->
        host.store ~cacheable:tr.Addr_space.cacheable tr.Addr_space.paddr (Regfile.get regs rv);
        next ())
    | Isa.Mb ->
      host.charge host.memory_barrier_ps;
      host.barrier ();
      next ()
    | Isa.Beq (ra, rb, tgt) ->
      if Regfile.get regs ra = Regfile.get regs rb then ctx.pc <- tgt else ctx.pc <- ctx.pc + 1;
      Continue
    | Isa.Bne (ra, rb, tgt) ->
      if Regfile.get regs ra <> Regfile.get regs rb then ctx.pc <- tgt else ctx.pc <- ctx.pc + 1;
      Continue
    | Isa.Blt (ra, rb, tgt) ->
      if Regfile.get regs ra < Regfile.get regs rb then ctx.pc <- tgt else ctx.pc <- ctx.pc + 1;
      Continue
    | Isa.Jmp tgt ->
      ctx.pc <- tgt;
      Continue
    | Isa.Syscall ->
      ctx.pc <- ctx.pc + 1;
      Syscall_trap
    | Isa.Call_pal n ->
      ctx.pc <- ctx.pc + 1;
      Pal_trap n
    | Isa.Nop -> next ()
    | Isa.Halt -> Halted
  end

let run_subprogram regs body host =
  let ctx = { regs; pc = 0; program = body } in
  let rec loop () =
    match step ctx host with
    | Continue -> loop ()
    | Halted -> Halted
    | Fault _ as f -> f
    | Syscall_trap | Pal_trap _ ->
      invalid_arg "Cpu.run_subprogram: trap inside an uninterruptible body"
  in
  loop ()

let pp_outcome ppf = function
  | Continue -> Format.pp_print_string ppf "continue"
  | Halted -> Format.pp_print_string ppf "halted"
  | Syscall_trap -> Format.pp_print_string ppf "syscall"
  | Pal_trap n -> Format.fprintf ppf "call_pal %d" n
  | Fault f -> Format.fprintf ppf "fault: %a" Addr_space.pp_fault f
