lib/net/link.mli: Format Uldma_util
