lib/net/netif.ml: Bytes Link List Uldma_util Units
