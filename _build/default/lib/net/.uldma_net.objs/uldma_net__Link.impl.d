lib/net/link.ml: Format Uldma_util Units
