lib/net/netif.mli: Bytes Link Uldma_util
