(** The machine's physical address map.

    Three regions share the physical address space:

    - RAM at [\[0, ram_size)];
    - the DMA engine's memory-mapped register window (register contexts,
      one page each, plus a kernel-only control page), at [mmio_base];
    - the shadow window: any physical address with [shadow_bit] set is a
      shadow alias. The engine strips the tag bits with [Shadow]
      (in the mmu library) to recover the real physical address.

    Word size is 8 bytes (64-bit machine, as the paper assumes for its
    "close to 60 bits available for the key" argument); pages are 8 KiB,
    as on the DEC Alpha the paper's prototype used. *)

val word_size : int
val page_size : int
val page_shift : int

val page_of : int -> int
(** Page number containing a (virtual or physical) address. *)

val page_base : int -> int
(** First address of the page containing the given address. *)

val page_offset : int -> int

val is_page_aligned : int -> bool
val is_word_aligned : int -> bool

val mmio_base : int
(** Base of the DMA engine register window (page-aligned, above RAM). *)

val mmio_pages : int
(** Number of pages in the register window: one per register context
    (up to [max_contexts]) plus one kernel-only control page. *)

val mmio_limit : int

val max_contexts : int
(** Hardware ceiling on register contexts ("say 4 to 8" in the paper). *)

val kernel_control_page : int
(** Physical base of the kernel-only engine control page. *)

val context_page : int -> int
(** [context_page i] is the physical base of register context [i]'s
    page. Raises [Invalid_argument] outside [\[0, max_contexts)]. *)

val context_of_mmio : int -> int option
(** Inverse of [context_page] for any address inside a context page. *)

val shadow_bit_index : int
(** Bit position that tags shadow physical addresses (bit 40). *)

val context_field_shift : int
(** Low bit of the context-id field inside an extended shadow address. *)

val context_field_width : int
(** Width in bits of the context-id field (paper: "1-2 bits"; we allow
    up to 2). *)

val max_ram_size : int
(** RAM must fit below the context field: [2^context_field_shift]. *)

val remote_base : int
(** Base of the remote-memory window (Telegraphos-style NOW shared
    memory): physical address [remote_base + a] names physical address
    [a] on the peer node. Stores and DMA destinations there become
    network packets; the window sits below the shadow tag so remote
    addresses can themselves be shadow-aliased. *)

val remote_limit : int
val in_remote : int -> bool
val remote_offset : int -> int
(** The peer-node physical address named by a remote-window address. *)

val in_mmio : int -> bool
val is_shadow : int -> bool
val in_ram : ram_size:int -> int -> bool
