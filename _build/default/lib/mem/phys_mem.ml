type t = { data : Bytes.t }

exception Fault of int

let create ~size =
  if size <= 0 || not (Layout.is_page_aligned size) then
    invalid_arg (Printf.sprintf "Phys_mem.create: size %d not page-aligned" size);
  if size > Layout.max_ram_size then
    invalid_arg "Phys_mem.create: size exceeds Layout.max_ram_size";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let copy t = { data = Bytes.copy t.data }

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then raise (Fault addr)

let check_word t addr =
  check t addr Layout.word_size;
  if not (Layout.is_word_aligned addr) then raise (Fault addr)

let load_word t addr =
  check_word t addr;
  Int64.to_int (Bytes.get_int64_le t.data addr)

let store_word t addr value =
  check_word t addr;
  Bytes.set_int64_le t.data addr (Int64.of_int value)

let load_byte t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let store_byte t addr value =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (value land 0xff))

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

let fill t ~addr ~len ~byte =
  check t addr len;
  Bytes.fill t.data addr len (Char.chr (byte land 0xff))

let checksum t ~addr ~len =
  check t addr len;
  let acc = ref 0 in
  for i = 0 to len - 1 do
    let b = Char.code (Bytes.get t.data (addr + i)) in
    acc := ((!acc * 131) + b) land max_int
  done;
  !acc

let equal_range a b ~addr ~len =
  check a addr len;
  check b addr len;
  Bytes.sub a.data addr len = Bytes.sub b.data addr len
