lib/mem/phys_mem.ml: Bytes Char Int64 Layout Printf
