lib/mem/phys_mem.ml: Array Bytes Char Int64 Layout Printf
