lib/mem/perms.mli: Format
