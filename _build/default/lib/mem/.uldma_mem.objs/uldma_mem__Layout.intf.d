lib/mem/layout.mli:
