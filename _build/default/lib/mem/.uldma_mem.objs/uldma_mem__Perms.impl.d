lib/mem/perms.ml: Format
