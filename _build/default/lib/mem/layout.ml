let word_size = 8
let page_shift = 13
let page_size = 1 lsl page_shift

let page_of addr = addr lsr page_shift
let page_base addr = addr land lnot (page_size - 1)
let page_offset addr = addr land (page_size - 1)
let is_page_aligned addr = page_offset addr = 0
let is_word_aligned addr = addr land (word_size - 1) = 0

let max_contexts = 8

let mmio_base = 1 lsl 32
let mmio_pages = max_contexts + 1
let mmio_limit = mmio_base + (mmio_pages * page_size)

let kernel_control_page = mmio_base

let context_page i =
  if i < 0 || i >= max_contexts then
    invalid_arg (Printf.sprintf "Layout.context_page: %d" i);
  mmio_base + ((i + 1) * page_size)

let context_of_mmio paddr =
  if paddr < mmio_base + page_size || paddr >= mmio_limit then None
  else Some (((paddr - mmio_base) lsr page_shift) - 1)

let shadow_bit_index = 40
let context_field_shift = 34
let context_field_width = 2
let max_ram_size = 1 lsl context_field_shift

let remote_base = 1 lsl 33
let remote_limit = remote_base + (1 lsl 32)
let in_remote paddr = paddr >= remote_base && paddr < remote_limit
let remote_offset paddr = paddr - remote_base

let in_mmio paddr = paddr >= mmio_base && paddr < mmio_limit
let is_shadow paddr = paddr land (1 lsl shadow_bit_index) <> 0
let in_ram ~ram_size paddr = paddr >= 0 && paddr < ram_size
