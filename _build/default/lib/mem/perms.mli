(** Page access permissions, as checked by the MMU on every access and
    by the kernel's [check_size] when it initiates a DMA itself. *)

type t = { read : bool; write : bool }

val none : t
val read_only : t
val read_write : t
val write_only : t

val allows_read : t -> bool
val allows_write : t -> bool

val subsumes : t -> t -> bool
(** [subsumes a b] iff every access allowed by [b] is allowed by [a]. *)

val union : t -> t -> t
val inter : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
