type t = { read : bool; write : bool }

let none = { read = false; write = false }
let read_only = { read = true; write = false }
let read_write = { read = true; write = true }
let write_only = { read = false; write = true }

let allows_read t = t.read
let allows_write t = t.write

let subsumes a b = (a.read || not b.read) && (a.write || not b.write)

let union a b = { read = a.read || b.read; write = a.write || b.write }
let inter a b = { read = a.read && b.read; write = a.write && b.write }

let equal a b = a.read = b.read && a.write = b.write

let to_string t =
  (if t.read then "r" else "-") ^ if t.write then "w" else "-"

let pp ppf t = Format.pp_print_string ppf (to_string t)
