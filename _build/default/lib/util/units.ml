type ps = int

let ps_per_ns = 1_000
let ps_per_us = 1_000_000

let ns x = int_of_float (Float.round (x *. float_of_int ps_per_ns))
let us x = int_of_float (Float.round (x *. float_of_int ps_per_us))
let to_ns p = float_of_int p /. float_of_int ps_per_ns
let to_us p = float_of_int p /. float_of_int ps_per_us

let cycle_ps ~hz =
  assert (hz > 0);
  int_of_float (Float.round (1e12 /. float_of_int hz))

let cycles ~hz n = n * cycle_ps ~hz

let pp_time ppf p =
  let abs = abs p in
  if abs < ps_per_ns then Format.fprintf ppf "%d ps" p
  else if abs < ps_per_us then Format.fprintf ppf "%.1f ns" (to_ns p)
  else if abs < 1_000 * ps_per_us then Format.fprintf ppf "%.2f us" (to_us p)
  else Format.fprintf ppf "%.3f ms" (to_us p /. 1000.0)

let kib n = n * 1024
let mib n = n * 1024 * 1024

let mbps m = m *. 1e6 /. 8.0

let transfer_ps ~bytes_per_s n =
  if n <= 0 then 0
  else int_of_float (Float.round (float_of_int n /. bytes_per_s *. 1e12))

let pp_bytes ppf n =
  if n < 1024 then Format.fprintf ppf "%d B" n
  else if n < 1024 * 1024 then
    if n mod 1024 = 0 then Format.fprintf ppf "%d KiB" (n / 1024)
    else Format.fprintf ppf "%.1f KiB" (float_of_int n /. 1024.0)
  else if n mod (1024 * 1024) = 0 then Format.fprintf ppf "%d MiB" (n / (1024 * 1024))
  else Format.fprintf ppf "%.1f MiB" (float_of_int n /. (1024.0 *. 1024.0))
