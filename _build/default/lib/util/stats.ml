type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
  sorted.(idx)

let of_array samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.of_array: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  let mean = sum /. float_of_int n in
  let sq_err = Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 sorted in
  let stddev = if n > 1 then sqrt (sq_err /. float_of_int (n - 1)) else 0.0 in
  {
    n;
    mean;
    stddev;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.5;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let of_list samples = of_array (Array.of_list samples)

let mean samples =
  match samples with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ :: _ -> List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
