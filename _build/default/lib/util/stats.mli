(** Summary statistics over samples of simulated measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val of_list : float list -> summary
(** Summary of a non-empty sample list. Raises [Invalid_argument] on []. *)

val of_array : float array -> summary

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,1\]]; nearest-rank on a sorted
    array. Raises [Invalid_argument] on an empty array. *)

val mean : float list -> float

val pp_summary : Format.formatter -> summary -> unit
