(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that whole experiments replay bit-for-bit from a seed.
    The global [Random] module is never used anywhere in this code base. *)

type t

val create : seed:int -> t
(** Fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent clone continuing from the same stream position. *)

val split : t -> t
(** Derive a statistically independent child generator, advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val dma_key : t -> int
(** A 58-bit non-negative key for the key-based DMA mechanism — the
    paper's "close to 60 bits available for the key field", trimmed so
    that KEY#CONTEXT_ID (key shifted left by the 4-bit context field)
    still fits OCaml's 63-bit [int]. *)
