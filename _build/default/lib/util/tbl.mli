(** ASCII / CSV table rendering for benchmark and experiment output.

    Every table or figure the benchmark harness regenerates is printed
    through this module so that output formatting is uniform and easily
    diffed against EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A fresh table with the given title and column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity does not match
    the number of columns. *)

val add_rule : t -> unit
(** Append a horizontal separator between row groups. *)

val render : t -> string
(** Render as an ASCII box table, title first. *)

val to_csv : t -> string
(** Render as CSV (header row + data rows; separators are skipped). *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_f : float -> string
(** Format a float cell with 3 decimals, trailing-zero trimmed. *)

val cell_us : float -> string
(** Format a microsecond quantity, e.g. "18.6". *)
