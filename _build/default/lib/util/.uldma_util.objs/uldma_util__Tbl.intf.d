lib/util/tbl.mli:
