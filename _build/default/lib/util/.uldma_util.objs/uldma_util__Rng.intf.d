lib/util/rng.mli:
