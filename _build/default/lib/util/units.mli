(** Time, size and bandwidth units.

    All simulated time in this code base is an integer number of
    picoseconds, so a 150 MHz CPU cycle (6666 ps) and an 80 ns bus cycle
    (80000 ps) are both exact and no floating point ever enters machine
    state. *)

type ps = int
(** Simulated time in picoseconds. *)

val ps_per_ns : int
val ps_per_us : int

val ns : float -> ps
(** Nanoseconds to picoseconds (rounded). *)

val us : float -> ps

val to_ns : ps -> float
val to_us : ps -> float

val cycle_ps : hz:int -> ps
(** Duration of one cycle of an [hz]-frequency clock, in ps (rounded). *)

val cycles : hz:int -> int -> ps
(** [cycles ~hz n] is the duration of [n] cycles. *)

val pp_time : Format.formatter -> ps -> unit
(** Human-readable time: picks ns / us / ms as appropriate. *)

val kib : int -> int
val mib : int -> int

val mbps : float -> float
(** [mbps m] is a bandwidth of [m] megabits per second, in bytes per
    second. *)

val transfer_ps : bytes_per_s:float -> int -> ps
(** Time to push [n] bytes at the given bandwidth. *)

val pp_bytes : Format.formatter -> int -> unit
(** "64 B", "4 KiB", "2 MiB". *)
