type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Tbl.add_row: %d cells for %d columns (table %S)"
         (List.length cells) (List.length t.columns) t.title);
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let data_rows t =
  List.filter_map (function Cells c -> Some c | Rule -> None) (List.rev t.rows)

let widths t =
  let init = List.map (fun (h, _) -> String.length h) t.columns in
  let max_row acc cells = List.map2 (fun w c -> max w (String.length c)) acc cells in
  List.fold_left max_row init (data_rows t)

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let ws = widths t in
  let aligns = List.map snd t.columns in
  let buf = Buffer.create 512 in
  let line ch =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      ws;
    Buffer.add_char buf '\n'
  in
  let row cells als =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth ws i and a = List.nth als i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  line '-';
  row (List.map fst t.columns) (List.map (fun _ -> Left) t.columns);
  line '=';
  List.iter
    (function Cells cells -> row cells aligns | Rule -> line '-')
    (List.rev t.rows);
  line '-';
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  emit (List.map fst t.columns);
  List.iter emit (data_rows t);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f x =
  let s = Printf.sprintf "%.3f" x in
  (* trim trailing zeros but keep at least one decimal *)
  let len = String.length s in
  let rec last i = if i > 0 && s.[i] = '0' && s.[i - 1] <> '.' then last (i - 1) else i in
  String.sub s 0 (last (len - 1) + 1)

let cell_us x = Printf.sprintf "%.1f" x
