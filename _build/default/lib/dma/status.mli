(** Engine status words, following §3.1: "A read operation from a
    register context returns the number of bytes that need to be
    transferred yet (-1 means failure, 0 means completed DMA
    operation)."

    The repeated-passing recogniser needs one more code: a load that
    was merely *accepted* as part of a not-yet-complete sequence must
    not be confusable with "transfer started", or a victim's final load
    spliced into another process's partial sequence would read as a
    phantom success (a status-truthfulness violation of exactly the
    kind Fig. 6 criticises). Hence [in_progress] = -2: initiation still
    incomplete. Fig. 7's retry tests specifically for [failure]. *)

val failure : int
(** -1: rejected initiation / broken sequence — Fig. 7 retries on this. *)

val complete : int
(** 0: transfer finished (or started with zero remaining). *)

val in_progress : int
(** -2: access accepted, sequence not yet complete; no transfer has
    started on account of this access. *)

val is_failure : int -> bool
(** True for [failure] and [in_progress] — no transfer started. *)

val is_success : int -> bool
(** True iff a transfer started: the status is its remaining bytes. *)
