let failure = -1
let complete = 0
let in_progress = -2

let is_failure s = s < 0
let is_success s = s >= 0
