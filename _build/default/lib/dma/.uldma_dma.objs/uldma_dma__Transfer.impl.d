lib/dma/transfer.ml: Bytes Char Format Printf Uldma_mem Uldma_util Units
