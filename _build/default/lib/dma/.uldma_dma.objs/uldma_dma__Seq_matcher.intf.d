lib/dma/seq_matcher.mli: Uldma_bus
