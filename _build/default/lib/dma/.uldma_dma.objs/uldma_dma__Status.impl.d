lib/dma/status.ml:
