lib/dma/engine.mli: Atomic_op Bytes Context_file Format Seq_matcher Transfer Uldma_bus Uldma_util
