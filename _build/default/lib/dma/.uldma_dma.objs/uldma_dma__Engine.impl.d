lib/dma/engine.ml: Atomic_op Bus Bytes Clock Context_file Format Hashtbl Int64 Layout List Regmap Seq_matcher Status Transfer Txn Uldma_bus Uldma_mem Uldma_mmu Uldma_util Units
