lib/dma/status.mli:
