lib/dma/atomic_op.mli: Format
