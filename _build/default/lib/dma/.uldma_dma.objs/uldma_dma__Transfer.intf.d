lib/dma/transfer.mli: Bytes Format Uldma_mem Uldma_util
