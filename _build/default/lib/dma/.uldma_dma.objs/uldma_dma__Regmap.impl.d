lib/dma/regmap.ml:
