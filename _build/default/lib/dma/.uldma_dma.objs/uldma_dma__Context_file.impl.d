lib/dma/context_file.ml: Array Atomic_op Printf Status Transfer Uldma_mem
