lib/dma/regmap.mli:
