lib/dma/atomic_op.ml: Format
