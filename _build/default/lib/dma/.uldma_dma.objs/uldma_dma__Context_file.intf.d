lib/dma/context_file.mli: Atomic_op Transfer
