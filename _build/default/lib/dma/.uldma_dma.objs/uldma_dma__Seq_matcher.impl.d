lib/dma/seq_matcher.ml: Array Txn Uldma_bus
