type entry = { vpage : int; pte : Pte.t }

type stats = { hits : int; misses : int }

type t = {
  slots : entry option array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(slots = 64) () =
  if not (is_power_of_two slots) then invalid_arg "Tlb.create: slots must be a power of two";
  { slots = Array.make slots None; mask = slots - 1; hits = 0; misses = 0 }

let copy t = { t with slots = Array.copy t.slots }

let slot_of t vpage = vpage land t.mask

let lookup t ~vpage =
  match t.slots.(slot_of t vpage) with
  | Some e when e.vpage = vpage -> Some e.pte
  | Some _ | None -> None

let fill t ~vpage pte = t.slots.(slot_of t vpage) <- Some { vpage; pte }

let translate t page_table ~vpage =
  match lookup t ~vpage with
  | Some pte ->
    t.hits <- t.hits + 1;
    Some (pte, `Hit)
  | None -> (
    t.misses <- t.misses + 1;
    match Page_table.find page_table ~vpage with
    | Some pte ->
      fill t ~vpage pte;
      Some (pte, `Miss)
    | None -> None)

let invalidate t ~vpage =
  match t.slots.(slot_of t vpage) with
  | Some e when e.vpage = vpage -> t.slots.(slot_of t vpage) <- None
  | Some _ | None -> ()

let flush t = Array.fill t.slots 0 (Array.length t.slots) None

let stats t : stats = { hits = t.hits; misses = t.misses }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
