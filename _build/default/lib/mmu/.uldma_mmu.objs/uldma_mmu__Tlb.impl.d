lib/mmu/tlb.ml: Array Page_table Pte
