lib/mmu/tlb.mli: Page_table Pte
