lib/mmu/pte.ml: Format Uldma_mem
