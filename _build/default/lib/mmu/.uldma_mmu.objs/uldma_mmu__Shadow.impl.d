lib/mmu/shadow.ml: Layout Printf Uldma_mem
