lib/mmu/addr_space.ml: Format Layout Page_table Perms Pte Tlb Uldma_mem
