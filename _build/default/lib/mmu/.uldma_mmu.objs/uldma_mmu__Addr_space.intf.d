lib/mmu/addr_space.mli: Format Page_table Pte Tlb Uldma_mem
