lib/mmu/page_table.mli: Pte Uldma_mem
