lib/mmu/shadow.mli:
