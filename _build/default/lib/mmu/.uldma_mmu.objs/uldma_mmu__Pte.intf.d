lib/mmu/pte.mli: Format Uldma_mem
