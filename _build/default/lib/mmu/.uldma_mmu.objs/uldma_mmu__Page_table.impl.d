lib/mmu/page_table.ml: Int Layout Map Perms Pte Uldma_mem
