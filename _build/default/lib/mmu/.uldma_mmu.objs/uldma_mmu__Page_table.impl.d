lib/mmu/page_table.ml: Hashtbl Layout Perms Pte Uldma_mem
