(** Page-table entries. *)

type t = {
  frame : int; (** physical page-frame number (may be a shadow frame) *)
  perms : Uldma_mem.Perms.t;
  cacheable : bool; (** shadow and MMIO pages are mapped uncacheable *)
}

val make : ?cacheable:bool -> frame:int -> perms:Uldma_mem.Perms.t -> unit -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
