(** Shadow-address algebra (paper §2.3 and §3.2).

    A shadow physical address is an alias of a real physical address:
    an access to it is routed to the DMA engine, which interprets the
    embedded physical address as an *argument* instead of performing
    the access. The OS builds user-space mappings whose PTEs point at
    shadow frames; the TLB therefore performs the virtual-to-physical
    translation (and the protection check) for free.

    Plain shadow addresses (SHRIMP/FLASH-style, §2.3):
      [shadow(p) = p | 1 << 40]

    Extended shadow addresses (§3.2) additionally carry the register
    context id of the owning process in dedicated bits:
      [shadow_ctx(c, p) = p | c << 34 | 1 << 40]

    A second tag bit (41) marks the *atomic-operation* shadow window
    used for user-level atomic operations (§3.5): an access there
    passes its physical address to the engine's atomic unit instead of
    its DMA argument registers. *)

type decoded = { context : int; paddr : int; atomic : bool }

val max_context : int
(** Largest encodable context id, [2^context_field_width - 1]. *)

val encode : int -> int
(** [encode paddr] is the plain shadow alias (context field = 0).
    Raises [Invalid_argument] if [paddr] does not fit below the context
    field or is itself a shadow address. *)

val encode_ctx : context:int -> int -> int
(** Extended shadow alias carrying [context]. *)

val encode_atomic : context:int -> int -> int
(** Alias in the atomic-operation shadow window (§3.5). *)

val decode : int -> decoded option
(** [decode a] strips the shadow tag, returning the embedded context id
    and real physical address; [None] if [a] is not a shadow address. *)

val decode_exn : int -> decoded

val is_shadow : int -> bool

val shadow_frame_of_frame : context:int -> int -> int
(** Same encoding, applied to page-frame numbers: the frame the OS puts
    in a shadow PTE so that translation of a shadow virtual address
    yields [encode_ctx ~context (frame * page_size + offset)]. *)
