open Uldma_mem

type access = Read | Write

type fault = No_mapping of int | Protection of int * access

type translation = { paddr : int; cacheable : bool; hit : [ `Hit | `Miss ] }

exception Page_fault of fault

type t = { table : Page_table.t; tlb : Tlb.t }

let create () = { table = Page_table.create (); tlb = Tlb.create () }

let copy t = { table = Page_table.copy t.table; tlb = Tlb.copy t.tlb }

let map_page t ~vpage pte =
  Page_table.map t.table ~vpage pte;
  Tlb.invalidate t.tlb ~vpage

let unmap_page t ~vpage =
  Page_table.unmap t.table ~vpage;
  Tlb.invalidate t.tlb ~vpage

let find_page t ~vpage = Page_table.find t.table ~vpage

let page_table t = t.table

let permitted access (perms : Perms.t) =
  match access with Read -> perms.read | Write -> perms.write

let translate t access vaddr =
  let vpage = Layout.page_of vaddr in
  match Tlb.translate t.tlb t.table ~vpage with
  | None -> Error (No_mapping vaddr)
  | Some (pte, hit) ->
    if not (permitted access pte.Pte.perms) then Error (Protection (vaddr, access))
    else
      Ok
        {
          paddr = (pte.Pte.frame lsl Layout.page_shift) lor Layout.page_offset vaddr;
          cacheable = pte.Pte.cacheable;
          hit;
        }

let translate_exn t access vaddr =
  match translate t access vaddr with
  | Ok tr -> tr
  | Error f -> raise (Page_fault f)

let peek_paddr t vaddr =
  match Page_table.find t.table ~vpage:(Layout.page_of vaddr) with
  | None -> None
  | Some pte -> Some ((pte.Pte.frame lsl Layout.page_shift) lor Layout.page_offset vaddr)

let check_range t ~vaddr ~len ~perms = Page_table.mapped_range t.table ~vaddr ~len ~perms

let flush_tlb t = Tlb.flush t.tlb

let tlb_stats t = Tlb.stats t.tlb

let pp_fault ppf = function
  | No_mapping v -> Format.fprintf ppf "no mapping for %#x" v
  | Protection (v, Read) -> Format.fprintf ppf "read protection fault at %#x" v
  | Protection (v, Write) -> Format.fprintf ppf "write protection fault at %#x" v
