type t = { frame : int; perms : Uldma_mem.Perms.t; cacheable : bool }

let make ?(cacheable = true) ~frame ~perms () = { frame; perms; cacheable }

let equal a b =
  a.frame = b.frame && Uldma_mem.Perms.equal a.perms b.perms && a.cacheable = b.cacheable

let pp ppf t =
  Format.fprintf ppf "{frame=%#x perms=%a %s}" t.frame Uldma_mem.Perms.pp t.perms
    (if t.cacheable then "cached" else "uncached")
