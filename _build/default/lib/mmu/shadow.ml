open Uldma_mem

let tag = 1 lsl Layout.shadow_bit_index
let atomic_tag = 1 lsl (Layout.shadow_bit_index + 1)
let ctx_shift = Layout.context_field_shift
let max_context = (1 lsl Layout.context_field_width) - 1
let ctx_mask = max_context lsl ctx_shift

type decoded = { context : int; paddr : int; atomic : bool }

let is_shadow a = a land tag <> 0

let encode_with ~tags ~context paddr =
  if paddr < 0 || paddr >= 1 lsl ctx_shift then
    invalid_arg (Printf.sprintf "Shadow.encode: paddr %#x out of range" paddr);
  if context < 0 || context > max_context then
    invalid_arg (Printf.sprintf "Shadow.encode: context %d out of range" context);
  tags lor (context lsl ctx_shift) lor paddr

let encode_ctx ~context paddr = encode_with ~tags:tag ~context paddr

let encode paddr = encode_ctx ~context:0 paddr

let encode_atomic ~context paddr = encode_with ~tags:(tag lor atomic_tag) ~context paddr

let decode a =
  if not (is_shadow a) then None
  else
    Some
      {
        context = (a land ctx_mask) lsr ctx_shift;
        paddr = a land lnot (tag lor atomic_tag lor ctx_mask);
        atomic = a land atomic_tag <> 0;
      }

let decode_exn a =
  match decode a with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Shadow.decode_exn: %#x is not a shadow address" a)

let shadow_frame_of_frame ~context frame =
  let paddr = frame lsl Layout.page_shift in
  encode_ctx ~context paddr lsr Layout.page_shift
