(** A process's virtual address space: page table + TLB + translation.

    Translation is where user-level DMA gets its protection for free:
    the only way a user process can emit a shadow *physical* address on
    the bus is by touching a shadow *virtual* page the OS mapped for
    it, and the OS only creates shadow mappings aliasing pages the
    process already owns with the same permissions. *)

type t

type access = Read | Write

type fault =
  | No_mapping of int (** unmapped virtual address *)
  | Protection of int * access (** mapped but access not permitted *)

type translation = {
  paddr : int;
  cacheable : bool;
  hit : [ `Hit | `Miss ]; (** TLB outcome, for the timing model *)
}

exception Page_fault of fault

val create : unit -> t

val copy : t -> t

val map_page : t -> vpage:int -> Pte.t -> unit
val unmap_page : t -> vpage:int -> unit
val find_page : t -> vpage:int -> Pte.t option
val page_table : t -> Page_table.t

val translate : t -> access -> int -> (translation, fault) result
(** Translate one virtual address for the given access kind. *)

val translate_exn : t -> access -> int -> translation

val peek_paddr : t -> int -> int option
(** Translation without permission check, TLB effects, or stats —
    used by the test oracle and by the kernel (Fig. 1's
    [virtual_to_physical]). *)

val check_range : t -> vaddr:int -> len:int -> perms:Uldma_mem.Perms.t -> bool
(** Fig. 1's [check_size]: the whole range mapped with the perms. *)

val flush_tlb : t -> unit
val tlb_stats : t -> Tlb.stats

val pp_fault : Format.formatter -> fault -> unit
