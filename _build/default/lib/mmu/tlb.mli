(** A direct-mapped TLB.

    Functionally it is a transparent cache over the page table; it
    exists so that (a) translation costs can distinguish hits from
    misses, and (b) context switches have a realistic TLB-flush effect,
    both of which feed the timing model's account of why kernel-level
    DMA initiation is expensive. *)

type t

type stats = { hits : int; misses : int }

val create : ?slots:int -> unit -> t
(** [slots] defaults to 64 and must be a power of two. *)

val copy : t -> t

val lookup : t -> vpage:int -> Pte.t option
(** Probe without filling. *)

val fill : t -> vpage:int -> Pte.t -> unit

val translate : t -> Page_table.t -> vpage:int -> (Pte.t * [ `Hit | `Miss ]) option
(** Probe, falling back to the page table and filling on a miss;
    [None] if the page table has no entry either. *)

val invalidate : t -> vpage:int -> unit
(** Remove one entry if present (used when the OS revokes a mapping). *)

val flush : t -> unit
(** Drop everything (context switch). *)

val stats : t -> stats
val reset_stats : t -> unit
