(** A per-process page table: virtual page number -> PTE. *)

type t

val create : unit -> t
val copy : t -> t

val map : t -> vpage:int -> Pte.t -> unit
(** Install or replace a mapping. *)

val unmap : t -> vpage:int -> unit
val find : t -> vpage:int -> Pte.t option
val mem : t -> vpage:int -> bool
val iter : t -> (int -> Pte.t -> unit) -> unit
val cardinal : t -> int

val mapped_range : t -> vaddr:int -> len:int -> perms:Uldma_mem.Perms.t -> bool
(** True iff every page of [\[vaddr, vaddr+len)] is mapped with at least
    the given permissions — the kernel's [check_size] from Fig. 1. *)
