open Uldma_mem

type t = { entries : (int, Pte.t) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let copy t = { entries = Hashtbl.copy t.entries }

let map t ~vpage pte = Hashtbl.replace t.entries vpage pte

let unmap t ~vpage = Hashtbl.remove t.entries vpage

let find t ~vpage = Hashtbl.find_opt t.entries vpage

let mem t ~vpage = Hashtbl.mem t.entries vpage

let iter t f = Hashtbl.iter f t.entries

let cardinal t = Hashtbl.length t.entries

let mapped_range t ~vaddr ~len ~perms =
  if len <= 0 then true
  else
    let first = Layout.page_of vaddr and last = Layout.page_of (vaddr + len - 1) in
    let rec check page =
      if page > last then true
      else
        match find t ~vpage:page with
        | Some pte when Perms.subsumes pte.Pte.perms perms -> check (page + 1)
        | Some _ | None -> false
    in
    check first
