lib/verify/explorer.mli: Uldma_os
