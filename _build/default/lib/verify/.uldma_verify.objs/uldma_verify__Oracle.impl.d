lib/verify/oracle.ml: Addr_space Engine Format Kernel List Perms Process Transfer Uldma_dma Uldma_mem Uldma_mmu Uldma_os
