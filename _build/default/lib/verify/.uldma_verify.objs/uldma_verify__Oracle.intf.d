lib/verify/oracle.mli: Format Uldma_dma Uldma_os
