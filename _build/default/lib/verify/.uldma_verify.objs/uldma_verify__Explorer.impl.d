lib/verify/explorer.ml: Bus Kernel List Uldma_bus Uldma_os
