lib/verify/explorer.ml: Bus Kernel List Txn Uldma_bus Uldma_os
