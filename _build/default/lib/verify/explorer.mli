(** Exhaustive bounded interleaving exploration — a machine-checked
    version of the paper's §3.3.1 correctness argument (Fig. 8).

    The explorer enumerates *every* schedule of a set of processes and
    evaluates a safety check at every terminal state. Enumerating at
    single-instruction granularity would be wasteful: instructions that
    do not touch the network interface only affect the issuing
    process's private registers and private memory, so interleavings
    that differ only in their placement commute. The explorer therefore
    branches at {e NI-access granularity}: one scheduling "leg" runs a
    process up to and including its next uncached (engine-visible) bus
    transaction. This is exactly the granularity of the paper's own
    Fig. 5/6/8 interleaving diagrams.

    States are forked with [Kernel.snapshot] (copy-on-write RAM and
    persistent page tables, so a fork is cheap even with large RAM) and
    a leg's NI accesses are counted by the bus's O(1) per-pid counters
    rather than by scanning the trace. *)

type 'v result = {
  paths : int; (** complete schedules explored *)
  violations : ('v * int list) list;
      (** violation + the pid schedule (one pid per leg) that reached it *)
  truncated : bool; (** a bound was hit; exploration is incomplete *)
}

val explore :
  root:Uldma_os.Kernel.t ->
  pids:int list ->
  ?max_instructions_per_leg:int ->
  ?max_paths:int ->
  check:(Uldma_os.Kernel.t -> 'v option) ->
  unit ->
  'v result
(** [check] runs at each terminal state (all of [pids] exited or
    stuck). Defaults: 2000 instructions per leg, 1_000_000 paths. The
    root kernel is not mutated. *)

val advance_one_leg : Uldma_os.Kernel.t -> int -> max_instructions:int -> [ `Progress | `Exited | `Stuck ]
(** Run pid until its next NI access completes (or it exits). Exposed
    for tests. *)
