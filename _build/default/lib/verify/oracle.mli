(** The safety oracle for user-level DMA initiation.

    A mechanism is correct when (paper §2.1 and §3.3.1):

    + {b protection} — every transfer the engine starts corresponds to
      a request some process was entitled to make;
    + {b atomicity / no argument mixing} — every started transfer is
      exactly one process's (source, destination, size) triple, never a
      splice of two processes' arguments (Fig. 5's C->B transfer);
    + {b status truthfulness} — a process is told success iff its
      transfer actually started, exactly once per request (Fig. 6's
      "DMA started but reported failed").

    The harness declares each process's *intents* (the transfers its
    stub will legitimately request, with both virtual and physical
    addresses) and, after the run, reports how many successes each
    stub observed (stubs count statuses >= 0 and store the count where
    the harness can read it). The oracle then audits the engine's
    transfer log against the declarations. *)

type intent = {
  pid : int;
  vsrc : int;
  vdst : int;
  psrc : int;
  pdst : int;
  size : int;
  requests : int; (** how many times the stub issues this DMA *)
}

type violation =
  | Unattributed_transfer of Uldma_dma.Transfer.t
      (** started transfer matching no declared intent: mixed or forged
          arguments (Fig. 5) *)
  | Rights_violation of { intent : intent; missing : string }
      (** a declared intent its own process had no right to make —
          would indicate a protection hole in the mechanism/setup *)
  | Phantom_success of { pid : int; reported : int; started : int }
      (** a stub observed more successes than transfers started for it *)
  | Lost_transfer of { pid : int; reported : int; started : int }
      (** transfers started exceed the successes the stub observed
          (Fig. 6: started but reported failed) *)

type report = {
  violations : violation list;
  transfers_checked : int;
  intents_checked : int;
}

val check :
  kernel:Uldma_os.Kernel.t ->
  intents:intent list ->
  reported_successes:(int * int) list ->
  report
(** [reported_successes] maps pid -> successes the stub counted.
    Transfers are read from the kernel's engine log. Intent attribution
    ignores the transfer's provenance pid — mechanisms must be judged
    on addresses alone, exactly like the hardware. *)

val ok : report -> bool
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit

val intent_of_regions :
  Uldma_os.Kernel.t ->
  Uldma_os.Process.t ->
  vsrc:int ->
  vdst:int ->
  size:int ->
  requests:int ->
  intent
(** Translate the virtual endpoints through the process's page table. *)
