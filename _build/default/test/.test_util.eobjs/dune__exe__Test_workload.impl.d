test/test_workload.ml: Alcotest Array Kernel List Printf Process Rng Sched Uldma Uldma_cpu Uldma_dma Uldma_mem Uldma_os Uldma_util Uldma_verify Uldma_workload
