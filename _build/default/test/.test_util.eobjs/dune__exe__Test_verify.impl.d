test/test_verify.ml: Alcotest Array Engine Kernel List Printf Process Sched Status Transfer Uldma Uldma_dma Uldma_mem Uldma_mmu Uldma_os Uldma_util Uldma_verify Uldma_workload
