test/test_mmu.ml: Addr_space Alcotest Hashtbl Layout List Page_table Perms Pte QCheck2 QCheck_alcotest Shadow Tlb Uldma_mem Uldma_mmu
