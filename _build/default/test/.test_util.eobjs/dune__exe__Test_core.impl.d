test/test_core.ml: Alcotest Array Asm Cpu Engine Isa Kernel Layout List Pal Perms Process Regfile Uldma Uldma_cpu Uldma_dma Uldma_mem Uldma_os Uldma_workload Vm
