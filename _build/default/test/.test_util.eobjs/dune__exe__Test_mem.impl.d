test/test_mem.ml: Alcotest Bytes Char Int64 Layout List Perms Phys_mem Printf QCheck2 QCheck_alcotest Uldma_mem
