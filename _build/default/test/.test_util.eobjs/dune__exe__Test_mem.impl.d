test/test_mem.ml: Alcotest Layout List Perms Phys_mem Printf QCheck2 QCheck_alcotest Uldma_mem
