test/test_io.ml: Alcotest Asm Bytes Char Cpu Isa Kernel Layout Perms Process Regfile Result Sched Sysno Uldma_cpu Uldma_io Uldma_mem Uldma_os Uldma_util Units
