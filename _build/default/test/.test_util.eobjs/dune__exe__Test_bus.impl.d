test/test_bus.ml: Alcotest Bus Clock Layout List Phys_mem QCheck2 QCheck_alcotest Timing Txn Uldma_bus Uldma_mem Uldma_util Units Write_buffer
