test/test_golden.ml: Alcotest Filename List Uldma_sim Uldma_util
