test/test_util.ml: Alcotest Array Format List Printf QCheck2 QCheck_alcotest Rng Stats String Tbl Uldma_util Units
