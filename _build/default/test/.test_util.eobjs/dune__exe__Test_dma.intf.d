test/test_dma.mli:
