test/test_cpu.ml: Addr_space Alcotest Array Asm Cpu Format Hashtbl Isa List Pal Printf QCheck2 QCheck_alcotest Regfile String Uldma_cpu Uldma_mem Uldma_mmu
