(* Tests for the cpu library: ISA validation, register file, assembler,
   interpreter semantics, PAL registry. *)

open Uldma_mmu
open Uldma_cpu

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A fake host: identity translation over one rw page at va 0, with a
   hashtable as memory and a charge accumulator. *)
type fake = {
  memory : (int, int) Hashtbl.t;
  mutable charged : int;
  mutable barriers : int;
  mutable read_only : bool;
}

let make_fake () = { memory = Hashtbl.create 16; charged = 0; barriers = 0; read_only = false }

let host_of fake =
  {
    Cpu.translate =
      (fun access vaddr ->
        if vaddr < 0 || vaddr >= Uldma_mem.Layout.page_size then
          Error (Addr_space.No_mapping vaddr)
        else if fake.read_only && access = Addr_space.Write then
          Error (Addr_space.Protection (vaddr, access))
        else Ok { Addr_space.paddr = vaddr; cacheable = true; hit = `Hit });
    load = (fun ~cacheable:_ paddr -> try Hashtbl.find fake.memory paddr with Not_found -> 0);
    store = (fun ~cacheable:_ paddr value -> Hashtbl.replace fake.memory paddr value);
    barrier = (fun () -> fake.barriers <- fake.barriers + 1);
    charge = (fun ps -> fake.charged <- fake.charged + ps);
    instruction_ps = 10;
    tlb_miss_ps = 100;
    memory_barrier_ps = 5;
  }

let run_program ?(fake = make_fake ()) instrs =
  let ctx = Cpu.make_ctx (Asm.assemble_list instrs) in
  let host = host_of fake in
  let rec loop n =
    if n > 10_000 then Alcotest.fail "program did not halt";
    match Cpu.step ctx host with
    | Cpu.Continue -> loop (n + 1)
    | outcome -> outcome
  in
  let outcome = loop 0 in
  (outcome, ctx, fake)

let expect_halt instrs =
  let outcome, ctx, fake = run_program instrs in
  (match outcome with
  | Cpu.Halted -> ()
  | other -> Alcotest.failf "expected halt, got %a" Cpu.pp_outcome other);
  (ctx, fake)

(* ------------------------------------------------------------------ *)
(* ISA / Regfile *)

let test_isa_validate () =
  checkb "good" true (Isa.validate (Isa.Add (1, 2, Isa.Reg 3)) = Ok ());
  checkb "bad rd" true (Isa.validate (Isa.Li (32, 0)) <> Ok ());
  checkb "bad operand reg" true (Isa.validate (Isa.Add (0, 0, Isa.Reg 40)) <> Ok ());
  checkb "branch regs checked" true (Isa.validate (Isa.Beq (-1, 0, 0)) <> Ok ())

let test_isa_is_branch () =
  checkb "jmp" true (Isa.is_branch (Isa.Jmp 0));
  checkb "beq" true (Isa.is_branch (Isa.Beq (0, 0, 0)));
  checkb "add" false (Isa.is_branch (Isa.Add (0, 0, Isa.Imm 1)))

let test_regfile_zero_register () =
  let r = Regfile.create () in
  Regfile.set r 31 42;
  checki "r31 stays zero" 0 (Regfile.get r 31);
  Regfile.set r 5 9;
  checki "other regs work" 9 (Regfile.get r 5)

let test_regfile_bounds () =
  let r = Regfile.create () in
  Alcotest.check_raises "r32" (Invalid_argument "Regfile: r32") (fun () ->
      ignore (Regfile.get r 32 : int))

(* ------------------------------------------------------------------ *)
(* Assembler *)

let test_asm_labels () =
  let asm = Asm.create () in
  Asm.li asm 1 0;
  let top = Asm.fresh_label asm "top" in
  Asm.label asm top;
  Asm.add asm 1 1 (Isa.Imm 1);
  Asm.li asm 2 5;
  Asm.blt asm 1 2 top;
  Asm.halt asm;
  let program = Asm.assemble asm in
  (match program.(3) with
  | Isa.Blt (1, 2, 1) -> ()
  | other -> Alcotest.failf "bad resolution: %s" (Isa.show_instr other));
  checki "length" 5 (Array.length program)

let test_asm_undefined_label () =
  let asm = Asm.create () in
  Asm.jmp asm "nowhere";
  checkb "undefined label" true
    (try
       ignore (Asm.assemble asm : Isa.instr array);
       false
     with Failure _ -> true)

let test_asm_duplicate_label () =
  let asm = Asm.create () in
  Asm.label asm "x";
  checkb "duplicate" true
    (try
       Asm.label asm "x";
       false
     with Invalid_argument _ -> true)

let test_asm_fresh_labels_unique () =
  let asm = Asm.create () in
  let a = Asm.fresh_label asm "l" and b = Asm.fresh_label asm "l" in
  checkb "unique" true (a <> b)

let test_asm_bad_register_rejected () =
  checkb "validation at assembly" true
    (try
       ignore (Asm.assemble_list [ Isa.Li (40, 0) ] : Isa.instr array);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let test_cpu_arithmetic () =
  let ctx, _ =
    expect_halt
      [
        Isa.Li (1, 10);
        Isa.Li (2, 3);
        Isa.Add (3, 1, Isa.Reg 2);
        Isa.Sub (4, 1, Isa.Imm 4);
        Isa.And_ (5, 1, Isa.Imm 6);
        Isa.Or_ (6, 1, Isa.Imm 5);
        Isa.Xor (7, 1, Isa.Reg 2);
        Isa.Shl (8, 2, 4);
        Isa.Shr (9, 1, 1);
        Isa.Mov (10, 3);
        Isa.Halt;
      ]
  in
  let r = ctx.Cpu.regs in
  checki "add" 13 (Regfile.get r 3);
  checki "sub" 6 (Regfile.get r 4);
  checki "and" 2 (Regfile.get r 5);
  checki "or" 15 (Regfile.get r 6);
  checki "xor" 9 (Regfile.get r 7);
  checki "shl" 48 (Regfile.get r 8);
  checki "shr" 5 (Regfile.get r 9);
  checki "mov" 13 (Regfile.get r 10)

let test_cpu_memory () =
  let ctx, fake =
    expect_halt
      [ Isa.Li (1, 64); Isa.Li (2, 123); Isa.Store (1, 8, 2); Isa.Load (3, 1, 8); Isa.Halt ]
  in
  checki "loaded back" 123 (Regfile.get ctx.Cpu.regs 3);
  checki "stored at 72" 123 (Hashtbl.find fake.memory 72)

let test_cpu_loop () =
  (* sum 1..10 via a branch loop *)
  let asm = Asm.create () in
  Asm.li asm 1 0 (* i *);
  Asm.li asm 2 0 (* sum *);
  Asm.li asm 3 10;
  let top = Asm.fresh_label asm "top" in
  Asm.label asm top;
  Asm.add asm 1 1 (Isa.Imm 1);
  Asm.add asm 2 2 (Isa.Reg 1);
  Asm.blt asm 1 3 top;
  Asm.halt asm;
  let ctx = Cpu.make_ctx (Asm.assemble asm) in
  let host = host_of (make_fake ()) in
  let rec loop () = match Cpu.step ctx host with Cpu.Continue -> loop () | o -> o in
  (match loop () with Cpu.Halted -> () | _ -> Alcotest.fail "no halt");
  checki "sum" 55 (Regfile.get ctx.Cpu.regs 2)

let test_cpu_branches () =
  let ctx, _ =
    expect_halt
      [
        Isa.Li (1, 5);
        Isa.Li (2, 5);
        Isa.Beq (1, 2, 4) (* taken *);
        Isa.Li (10, 99) (* skipped *);
        Isa.Bne (1, 2, 6) (* not taken *);
        Isa.Li (11, 1);
        Isa.Jmp 7;
        Isa.Halt;
      ]
  in
  checki "beq skipped li" 0 (Regfile.get ctx.Cpu.regs 10);
  checki "bne fell through" 1 (Regfile.get ctx.Cpu.regs 11)

let test_cpu_fall_off_end_halts () =
  let outcome, _, _ = run_program [ Isa.Nop ] in
  checkb "halted" true (outcome = Cpu.Halted)

let test_cpu_mb_calls_barrier () =
  let _, fake = expect_halt [ Isa.Mb; Isa.Mb; Isa.Halt ] in
  checki "two barriers" 2 fake.barriers

let test_cpu_traps () =
  let outcome, ctx, _ = run_program [ Isa.Li (0, 7); Isa.Syscall; Isa.Halt ] in
  checkb "syscall trap" true (outcome = Cpu.Syscall_trap);
  checki "pc advanced past trap" 2 ctx.Cpu.pc;
  let outcome2, _, _ = run_program [ Isa.Call_pal 3 ] in
  checkb "pal trap" true (outcome2 = Cpu.Pal_trap 3)

let test_cpu_fault_no_mapping () =
  let outcome, ctx, _ = run_program [ Isa.Li (1, 1 lsl 20); Isa.Load (2, 1, 0); Isa.Halt ] in
  (match outcome with
  | Cpu.Fault (Addr_space.No_mapping _) -> ()
  | other -> Alcotest.failf "expected fault, got %a" Cpu.pp_outcome other);
  checki "pc at faulting instruction" 1 ctx.Cpu.pc

let test_cpu_fault_protection () =
  let fake = make_fake () in
  fake.read_only <- true;
  let outcome, _, _ = run_program ~fake [ Isa.Li (1, 8); Isa.Store (1, 0, 1); Isa.Halt ] in
  match outcome with
  | Cpu.Fault (Addr_space.Protection (8, Addr_space.Write)) -> ()
  | other -> Alcotest.failf "expected protection fault, got %a" Cpu.pp_outcome other

let test_cpu_charges () =
  let _, fake = expect_halt [ Isa.Nop; Isa.Nop; Isa.Halt ] in
  (* 3 instructions x 10 ps *)
  checki "instruction charges" 30 fake.charged

let test_cpu_mb_extra_charge () =
  let _, fake = expect_halt [ Isa.Mb; Isa.Halt ] in
  checki "mb = instruction + barrier cost" 25 fake.charged

let test_cpu_run_subprogram () =
  let regs = Regfile.create () in
  Regfile.set regs 1 4;
  let body = Asm.assemble_list [ Isa.Add (1, 1, Isa.Imm 1); Isa.Add (1, 1, Isa.Imm 1) ] in
  let outcome = Cpu.run_subprogram regs body (host_of (make_fake ())) in
  checkb "completes" true (outcome = Cpu.Halted);
  checki "effect" 6 (Regfile.get regs 1)

let test_cpu_run_subprogram_rejects_traps () =
  let regs = Regfile.create () in
  let body = Asm.assemble_list [ Isa.Syscall ] in
  checkb "trap rejected" true
    (try
       ignore (Cpu.run_subprogram regs body (host_of (make_fake ())) : Cpu.outcome);
       false
     with Invalid_argument _ -> true)

let test_cpu_copy_ctx () =
  let ctx = Cpu.make_ctx (Asm.assemble_list [ Isa.Li (1, 5); Isa.Halt ]) in
  let host = host_of (make_fake ()) in
  ignore (Cpu.step ctx host : Cpu.outcome);
  let snap = Cpu.copy_ctx ctx in
  ignore (Cpu.step ctx host : Cpu.outcome);
  checki "snapshot pc frozen" 1 snap.Cpu.pc;
  Regfile.set ctx.Cpu.regs 1 0;
  checki "snapshot regs frozen" 5 (Regfile.get snap.Cpu.regs 1)

let test_isa_listing () =
  let program =
    Asm.assemble_list
      [ Isa.Li (1, 0x10000); Isa.Store (20, 0, 3); Isa.Load (0, 21, 8); Isa.Mb; Isa.Halt ]
  in
  let rendered = Format.asprintf "%a" Isa.pp_listing program in
  List.iter
    (fun needle ->
      let nl = String.length needle and sl = String.length rendered in
      let rec scan i = i + nl <= sl && (String.sub rendered i nl = needle || scan (i + 1)) in
      checkb (Printf.sprintf "listing contains %S" needle) true (scan 0))
    [ "0:  li    r1, 0x10000"; "store [r20+0], r3"; "load  r0, [r21+8]"; "mb"; "halt" ]

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: random straight-line programs vs an OCaml
   reference evaluation of the same operation list *)

type alu_op = O_li | O_add | O_addi | O_sub | O_and | O_or | O_xor | O_shl | O_shr | O_mov

let op_of_int = function
  | 0 -> O_li
  | 1 -> O_add
  | 2 -> O_addi
  | 3 -> O_sub
  | 4 -> O_and
  | 5 -> O_or
  | 6 -> O_xor
  | 7 -> O_shl
  | 8 -> O_shr
  | _ -> O_mov

let instr_of (opn, rd, rs, rt, imm) =
  let rd = 1 + (rd mod 8) and rs = 1 + (rs mod 8) and rt = 1 + (rt mod 8) in
  match op_of_int opn with
  | O_li -> Isa.Li (rd, imm)
  | O_add -> Isa.Add (rd, rs, Isa.Reg rt)
  | O_addi -> Isa.Add (rd, rs, Isa.Imm imm)
  | O_sub -> Isa.Sub (rd, rs, Isa.Reg rt)
  | O_and -> Isa.And_ (rd, rs, Isa.Reg rt)
  | O_or -> Isa.Or_ (rd, rs, Isa.Imm imm)
  | O_xor -> Isa.Xor (rd, rs, Isa.Reg rt)
  | O_shl -> Isa.Shl (rd, rs, imm land 7)
  | O_shr -> Isa.Shr (rd, rs, imm land 7)
  | O_mov -> Isa.Mov (rd, rs)

let reference_eval ops =
  let regs = Array.make 9 0 in
  List.iter
    (fun (opn, rd, rs, rt, imm) ->
      let rd = 1 + (rd mod 8) and rs = 1 + (rs mod 8) and rt = 1 + (rt mod 8) in
      regs.(rd) <-
        (match op_of_int opn with
        | O_li -> imm
        | O_add -> regs.(rs) + regs.(rt)
        | O_addi -> regs.(rs) + imm
        | O_sub -> regs.(rs) - regs.(rt)
        | O_and -> regs.(rs) land regs.(rt)
        | O_or -> regs.(rs) lor imm
        | O_xor -> regs.(rs) lxor regs.(rt)
        | O_shl -> regs.(rs) lsl (imm land 7)
        | O_shr -> regs.(rs) lsr (imm land 7)
        | O_mov -> regs.(rs)))
    ops;
  regs

let op_gen =
  QCheck2.Gen.(
    tup5 (int_range 0 9) (int_range 0 7) (int_range 0 7) (int_range 0 7)
      (int_range (-1000) 1000))

let cpu_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"interpreter agrees with reference evaluation" ~count:500
       QCheck2.Gen.(list_size (int_range 1 40) op_gen)
       (fun ops ->
         let program = Asm.assemble_list (List.map instr_of ops @ [ Isa.Halt ]) in
         let ctx = Cpu.make_ctx program in
         let host = host_of (make_fake ()) in
         let rec loop () =
           match Cpu.step ctx host with Cpu.Continue -> loop () | o -> o
         in
         (match loop () with Cpu.Halted -> () | _ -> failwith "no halt");
         let expected = reference_eval ops in
         let ok = ref true in
         for r = 1 to 8 do
           if Regfile.get ctx.Cpu.regs r <> expected.(r) then ok := false
         done;
         !ok))

let cpu_instruction_count_charged =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"every instruction charges its issue cost" ~count:200
       QCheck2.Gen.(list_size (int_range 1 30) op_gen)
       (fun ops ->
         let program = Asm.assemble_list (List.map instr_of ops @ [ Isa.Halt ]) in
         let ctx = Cpu.make_ctx program in
         let fake = make_fake () in
         let host = host_of fake in
         let rec loop () =
           match Cpu.step ctx host with Cpu.Continue -> loop () | o -> o
         in
         ignore (loop () : Cpu.outcome);
         (* ops + Halt, 10 ps each, no memory traffic *)
         fake.charged = 10 * (List.length ops + 1)))

(* ------------------------------------------------------------------ *)
(* PAL *)

let test_pal_install_get () =
  let pal = Pal.create () in
  let body = Asm.assemble_list [ Isa.Add (1, 1, Isa.Imm 1) ] in
  checkb "install" true (Pal.install pal ~index:2 body = Ok ());
  checkb "get" true (Pal.get pal 2 <> None);
  checkb "absent" true (Pal.get pal 3 = None);
  Alcotest.(check (list int)) "installed" [ 2 ] (Pal.installed pal)

let test_pal_length_limit () =
  let pal = Pal.create () in
  let body = Array.make 17 Isa.Nop in
  checkb "17 instructions rejected" true (Pal.install pal ~index:0 body <> Ok ());
  checkb "16 accepted" true (Pal.install pal ~index:0 (Array.make 16 Isa.Nop) = Ok ())

let test_pal_no_traps_inside () =
  let pal = Pal.create () in
  checkb "syscall rejected" true (Pal.install pal ~index:0 [| Isa.Syscall |] <> Ok ());
  checkb "call_pal rejected" true (Pal.install pal ~index:0 [| Isa.Call_pal 1 |] <> Ok ());
  checkb "halt rejected" true (Pal.install pal ~index:0 [| Isa.Halt |] <> Ok ())

let test_pal_branch_bounds () =
  let pal = Pal.create () in
  checkb "branch outside body" true (Pal.install pal ~index:0 [| Isa.Jmp 5 |] <> Ok ());
  checkb "branch to end = return" true (Pal.install pal ~index:0 [| Isa.Jmp 1 |] = Ok ())

let test_pal_index_bounds () =
  let pal = Pal.create () in
  checkb "negative" true (Pal.install pal ~index:(-1) [||] <> Ok ());
  checkb "too large" true (Pal.install pal ~index:Pal.num_slots [||] <> Ok ());
  checkb "get out of range" true (Pal.get pal (-1) = None)

let test_pal_copy_independent () =
  let pal = Pal.create () in
  ignore (Pal.install pal ~index:1 [| Isa.Nop |] : (unit, string) result);
  let pal2 = Pal.copy pal in
  ignore (Pal.install pal2 ~index:2 [| Isa.Nop |] : (unit, string) result);
  checkb "original lacks slot 2" true (Pal.get pal 2 = None)

let () =
  Alcotest.run "cpu"
    [
      ( "isa",
        [
          Alcotest.test_case "validate" `Quick test_isa_validate;
          Alcotest.test_case "is_branch" `Quick test_isa_is_branch;
          Alcotest.test_case "listing renderer" `Quick test_isa_listing;
        ] );
      ( "regfile",
        [
          Alcotest.test_case "zero register" `Quick test_regfile_zero_register;
          Alcotest.test_case "bounds" `Quick test_regfile_bounds;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels resolve" `Quick test_asm_labels;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "fresh labels unique" `Quick test_asm_fresh_labels_unique;
          Alcotest.test_case "bad register rejected" `Quick test_asm_bad_register_rejected;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "arithmetic" `Quick test_cpu_arithmetic;
          Alcotest.test_case "memory" `Quick test_cpu_memory;
          Alcotest.test_case "loop" `Quick test_cpu_loop;
          Alcotest.test_case "branches" `Quick test_cpu_branches;
          Alcotest.test_case "fall off end" `Quick test_cpu_fall_off_end_halts;
          Alcotest.test_case "mb calls barrier" `Quick test_cpu_mb_calls_barrier;
          Alcotest.test_case "traps" `Quick test_cpu_traps;
          Alcotest.test_case "no-mapping fault" `Quick test_cpu_fault_no_mapping;
          Alcotest.test_case "protection fault" `Quick test_cpu_fault_protection;
          Alcotest.test_case "charges time" `Quick test_cpu_charges;
          Alcotest.test_case "mb extra charge" `Quick test_cpu_mb_extra_charge;
          Alcotest.test_case "run_subprogram" `Quick test_cpu_run_subprogram;
          Alcotest.test_case "run_subprogram rejects traps" `Quick
            test_cpu_run_subprogram_rejects_traps;
          Alcotest.test_case "copy_ctx" `Quick test_cpu_copy_ctx;
          cpu_matches_reference;
          cpu_instruction_count_charged;
        ] );
      ( "pal",
        [
          Alcotest.test_case "install/get" `Quick test_pal_install_get;
          Alcotest.test_case "16-instruction limit" `Quick test_pal_length_limit;
          Alcotest.test_case "no traps inside" `Quick test_pal_no_traps_inside;
          Alcotest.test_case "branch bounds" `Quick test_pal_branch_bounds;
          Alcotest.test_case "index bounds" `Quick test_pal_index_bounds;
          Alcotest.test_case "copy independent" `Quick test_pal_copy_independent;
        ] );
    ]
