(* Tests for the workload library: the stub-loop builders, the random
   workload generator, and the differential oracle — the same random
   plan must produce byte-identical results through every correct
   mechanism, with and without preemptive interference. *)

open Uldma_util
open Uldma_os
module Mech = Uldma.Mech
module Api = Uldma.Api
module Generator = Uldma_workload.Generator
module Stub_loop = Uldma_workload.Stub_loop

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Generator basics *)

let test_plan_shape () =
  let rng = Rng.create ~seed:1 in
  let plan = Generator.random_plan rng ~pages:4 ~requests:20 ~max_size:4096 in
  checki "requests" 20 (List.length plan.Generator.requests);
  List.iter
    (fun (r : Generator.request) ->
      checkb "pages in range" true (r.Generator.src_page >= 0 && r.Generator.src_page < 4);
      checkb "dst in range" true (r.Generator.dst_page >= 0 && r.Generator.dst_page < 4);
      checkb "size sane" true (r.Generator.size >= 8 && r.Generator.size <= 4096);
      checki "word aligned" 0 (r.Generator.size land 7))
    plan.Generator.requests

let test_plan_deterministic () =
  let mk () = Generator.random_plan (Rng.create ~seed:5) ~pages:4 ~requests:10 ~max_size:1024 in
  checkb "same seed, same plan" true (mk () = mk ())

let test_run_counts () =
  let plan = Generator.random_plan (Rng.create ~seed:2) ~pages:2 ~requests:8 ~max_size:512 in
  let o =
    Generator.run plan ~mech:(Api.find_exn "ext-shadow") ~sched:Sched.Run_to_completion
      ~with_interference:false
  in
  checki "all succeed" 8 o.Generator.successes;
  checki "all started" 8 o.Generator.transfers;
  checkb "time advanced" true (o.Generator.simulated_us > 0.0)

(* ------------------------------------------------------------------ *)
(* Differential execution *)

let differential_mechs =
  [ "kernel"; "pal"; "key-based"; "ext-shadow"; "rep-args"; "shrimp-2"; "flash" ]

let run_all plan ~sched ~with_interference =
  List.map
    (fun name ->
      (name, Generator.run plan ~mech:(Api.find_exn name) ~sched ~with_interference))
    differential_mechs

let assert_all_agree outcomes ~requests =
  match outcomes with
  | [] -> Alcotest.fail "no outcomes"
  | (ref_name, reference) :: rest ->
    List.iter
      (fun (name, (o : Generator.outcome)) ->
        checki (name ^ ": successes") requests o.Generator.successes;
        checki (name ^ ": transfers") requests o.Generator.transfers;
        checki
          (Printf.sprintf "%s produces the same bytes as %s" name ref_name)
          reference.Generator.dst_checksum o.Generator.dst_checksum)
      rest;
    checki (ref_name ^ ": successes") requests reference.Generator.successes

let test_differential_sequential () =
  let plan = Generator.random_plan (Rng.create ~seed:11) ~pages:4 ~requests:15 ~max_size:2048 in
  assert_all_agree (run_all plan ~sched:Sched.Run_to_completion ~with_interference:false) ~requests:15

let test_differential_preempted () =
  (* a compute process preempts the DMA program every 9 instructions;
     results must not change for any mechanism (the baselines have
     their hooks installed by prepare) *)
  let plan = Generator.random_plan (Rng.create ~seed:12) ~pages:4 ~requests:12 ~max_size:1024 in
  assert_all_agree
    (run_all plan ~sched:(Sched.Round_robin { quantum = 9 }) ~with_interference:true)
    ~requests:12

let test_differential_random_preemption () =
  let plan = Generator.random_plan (Rng.create ~seed:13) ~pages:2 ~requests:10 ~max_size:512 in
  assert_all_agree
    (run_all plan ~sched:(Sched.Random_preempt { probability = 0.15; seed = 4 }) ~with_interference:true)
    ~requests:10

let test_user_mechs_keep_kernel_unmodified () =
  let plan = Generator.random_plan (Rng.create ~seed:14) ~pages:2 ~requests:5 ~max_size:512 in
  List.iter
    (fun name ->
      let o =
        Generator.run plan ~mech:(Api.find_exn name) ~sched:Sched.Run_to_completion
          ~with_interference:false
      in
      checkb (name ^ " unmodified kernel") false o.Generator.kernel_modified)
    [ "kernel"; "pal"; "key-based"; "ext-shadow"; "rep-args" ]

(* ------------------------------------------------------------------ *)
(* Soak: a full machine of mixed tenants under random preemption *)

let test_soak_mixed_tenants () =
  (* 4 key-based users (all contexts taken) + 2 kernel-path users on
     the same machine, heavily preempted; every DMA must complete and
     the oracle must stay clean *)
  let config =
    {
      Kernel.default_config with
      Kernel.mechanism = Uldma_dma.Engine.Key_based;
      backend = Kernel.Local { bytes_per_s = 1e9 };
      ram_size = 8 * 1024 * 1024;
      n_contexts = 4;
      sched = Sched.Random_preempt { probability = 0.1; seed = 21 };
    }
  in
  let kernel = Kernel.create config in
  let per_proc = 15 in
  let users = ref [] in
  let intents = ref [] in
  for i = 1 to 6 do
    let p = Kernel.spawn kernel ~name:(Printf.sprintf "tenant%d" i) ~program:[||] () in
    let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
    let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
    let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Uldma_mem.Perms.read_write in
    let emit =
      if i <= 4 then
        (Uldma.Key_dma.mech.Mech.prepare kernel p
           ~src:{ Mech.vaddr = src; pages = 1 }
           ~dst:{ Mech.vaddr = dst; pages = 1 })
          .Mech.emit_dma
      else Uldma.Kernel_dma.emit_dma
    in
    Process.set_program p
      (Stub_loop.build_repeat ~n:per_proc ~vsrc:src ~vdst:dst ~size:256 ~result_va ~emit_dma:emit);
    intents :=
      Uldma_verify.Oracle.intent_of_regions kernel p ~vsrc:src ~vdst:dst ~size:256
        ~requests:per_proc
      :: !intents;
    users := (p, result_va) :: !users
  done;
  (match Kernel.run kernel ~max_steps:5_000_000 () with
  | Kernel.All_exited -> ()
  | Kernel.Max_steps | Kernel.Predicate -> Alcotest.fail "soak did not finish");
  let reported =
    List.map (fun ((p : Process.t), rv) -> (p.Process.pid, Stub_loop.read_successes kernel p ~result_va:rv)) !users
  in
  List.iter (fun (pid, n) -> checki (Printf.sprintf "pid %d all succeeded" pid) per_proc n) reported;
  let report = Uldma_verify.Oracle.check ~kernel ~intents:!intents ~reported_successes:reported in
  if not (Uldma_verify.Oracle.ok report) then
    Alcotest.failf "%a" Uldma_verify.Oracle.pp_report report;
  checki "90 transfers" 90
    (List.length (Uldma_dma.Engine.transfers (Kernel.engine kernel)))

(* ------------------------------------------------------------------ *)
(* Stub_loop builders *)

let test_build_loop_rejects_bad_pages () =
  checkb "non power of two" true
    (try
       ignore
         (Stub_loop.build_loop
            {
              Stub_loop.iterations = 1;
              transfer_size = 8;
              src_base = 0;
              dst_base = 0;
              pages = 3;
              result_va = 0;
            }
            ~emit_dma:(fun _ -> ())
          : Uldma_cpu.Isa.instr array);
       false
     with Invalid_argument _ -> true)

let test_build_single_shape () =
  let program =
    Stub_loop.build_single ~vsrc:0x10000 ~vdst:0x12000 ~size:64 ~result_va:0x14000
      ~emit_dma:Uldma.Ext_shadow.emit_dma
  in
  checkb "non-trivial program" true (Array.length program > 8);
  checkb "ends with halt" true (program.(Array.length program - 1) = Uldma_cpu.Isa.Halt)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "plan shape" `Quick test_plan_shape;
          Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "run counts" `Quick test_run_counts;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sequential: all mechanisms agree" `Slow test_differential_sequential;
          Alcotest.test_case "preempted: all mechanisms agree" `Slow test_differential_preempted;
          Alcotest.test_case "random preemption: all agree" `Slow
            test_differential_random_preemption;
          Alcotest.test_case "user mechanisms: kernel unmodified" `Quick
            test_user_mechs_keep_kernel_unmodified;
        ] );
      ( "soak",
        [ Alcotest.test_case "mixed key/kernel tenants" `Slow test_soak_mixed_tenants ] );
      ( "stub_loop",
        [
          Alcotest.test_case "rejects bad pages" `Quick test_build_loop_rejects_bad_pages;
          Alcotest.test_case "single-shot shape" `Quick test_build_single_shape;
        ] );
    ]
