(* Tests for the io library (disk model) and the kernel's disk
   syscalls, including the asynchronous-overlap behaviour that lets
   other processes run during a disk operation. *)

open Uldma_util
open Uldma_mem
open Uldma_cpu
open Uldma_os
module Disk = Uldma_io.Disk

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Disk model *)

let test_disk_service_components () =
  let d = Disk.create Disk.disk_1996 in
  let t = Disk.service_time d ~block:(Disk.disk_1996.Disk.blocks / 3) in
  (* 1/3 stroke: setup 50us + seek ~9ms + rotation ~5.6ms + transfer ~0.8ms *)
  checkb "millisecond scale" true (t > Units.us 8_000.0 && t < Units.us 25_000.0)

let test_disk_seek_monotonic () =
  let d = Disk.create Disk.disk_1996 in
  let near = Disk.service_time d ~block:100 in
  let far = Disk.service_time d ~block:(Disk.disk_1996.Disk.blocks - 1) in
  checkb "longer seeks cost more" true (far > near);
  let same = Disk.service_time d ~block:0 in
  checkb "no seek is cheapest" true (same < near)

let test_disk_head_moves () =
  let d = Disk.create Disk.disk_1996 in
  (match Disk.read_block d ~block:500 with
  | Ok (_, _) -> ()
  | Error e -> Alcotest.fail e);
  checki "head at 500" 500 (Disk.head d);
  (* re-reading the same block is now cheap *)
  let again = Disk.service_time d ~block:500 in
  checkb "sequential cheap" true (again < Units.us 8_000.0);
  checki "requests counted" 1 (Disk.requests_served d)

let test_disk_rw_roundtrip () =
  let d = Disk.create Disk.disk_1996 in
  let block_size = Disk.disk_1996.Disk.block_size in
  let data = Bytes.init block_size (fun i -> Char.chr (i land 0xff)) in
  (match Disk.write_block d ~block:7 data with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Disk.read_block d ~block:7 with
  | Ok (back, _) -> checkb "roundtrip" true (Bytes.equal back data)
  | Error e -> Alcotest.fail e);
  (* unwritten blocks read as zeros *)
  match Disk.read_block d ~block:8 with
  | Ok (zeros, _) -> checki "zeroed" 0 (Char.code (Bytes.get zeros 0))
  | Error e -> Alcotest.fail e

let test_disk_bounds () =
  let d = Disk.create Disk.disk_1996 in
  checkb "negative block" true (Result.is_error (Disk.read_block d ~block:(-1)));
  checkb "past end" true (Result.is_error (Disk.read_block d ~block:Disk.disk_1996.Disk.blocks));
  checkb "short write" true (Result.is_error (Disk.write_block d ~block:0 (Bytes.make 8 'x')))

let test_disk_modern_faster_media () =
  let old_disk = Disk.create Disk.disk_1996 in
  let new_disk = Disk.create Disk.disk_modern in
  (* same block distance fraction; the modern disk only wins on media *)
  let t_old = Disk.service_time old_disk ~block:1000 in
  let t_new = Disk.service_time new_disk ~block:(Disk.disk_modern.Disk.blocks / 262) in
  checkb "modern faster" true (t_new < t_old);
  checkb "still millisecond-bound" true (t_new > Units.us 1_000.0)

(* ------------------------------------------------------------------ *)
(* Kernel disk syscalls *)

let disk_config =
  {
    Kernel.default_config with
    Kernel.ram_size = 64 * Layout.page_size;
    disk = Some Uldma_io.Disk.disk_1996;
  }

let test_sys_disk_roundtrip () =
  let kernel = Kernel.create disk_config in
  let p = Kernel.spawn kernel ~name:"io" ~program:[||] () in
  let buf = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Kernel.write_user kernel p buf 0xdeadbeef;
  Process.set_program p
    (Asm.assemble_list
       [
         (* write block 3 from buf *)
         Isa.Li (1, 3);
         Isa.Li (2, buf);
         Isa.Li (0, Sysno.sys_disk_write);
         Isa.Syscall;
         Isa.Mov (10, 0);
         (* wipe buf, then read it back *)
         Isa.Li (4, 0);
         Isa.Li (2, buf);
         Isa.Store (2, 0, 4);
         Isa.Li (1, 3);
         Isa.Li (0, Sysno.sys_disk_read);
         Isa.Syscall;
         Isa.Mov (11, 0);
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  let regs = p.Process.ctx.Cpu.regs in
  checki "write ok" 0 (Regfile.get regs 10);
  checki "read ok" 0 (Regfile.get regs 11);
  checki "data back from disk" 0xdeadbeef (Kernel.read_user kernel p buf);
  (* two requests took milliseconds of simulated time *)
  checkb "millisecond timing" true (Kernel.now_ps kernel > Units.us 10_000.0)

let test_sys_disk_errors () =
  let kernel = Kernel.create disk_config in
  let p = Kernel.spawn kernel ~name:"io" ~program:[||] () in
  let ro = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_only in
  Process.set_program p
    (Asm.assemble_list
       [
         (* read into a read-only page: rejected *)
         Isa.Li (1, 0);
         Isa.Li (2, ro);
         Isa.Li (0, Sysno.sys_disk_read);
         Isa.Syscall;
         Isa.Mov (10, 0);
         (* block out of range *)
         Isa.Li (1, 99_999_999);
         Isa.Li (2, ro);
         Isa.Li (0, Sysno.sys_disk_write);
         Isa.Syscall;
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "perm rejected" (-1) (Regfile.get p.Process.ctx.Cpu.regs 10);
  checki "range rejected" (-1) (Regfile.get p.Process.ctx.Cpu.regs 0)

let test_sys_disk_without_disk () =
  let kernel = Kernel.create { disk_config with Kernel.disk = None } in
  let p = Kernel.spawn kernel ~name:"io" ~program:[||] () in
  let buf = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Process.set_program p
    (Asm.assemble_list
       [ Isa.Li (1, 0); Isa.Li (2, buf); Isa.Li (0, Sysno.sys_disk_read); Isa.Syscall; Isa.Halt ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "no disk attached" (-1) (Regfile.get p.Process.ctx.Cpu.regs 0)

let test_disk_io_overlaps_compute () =
  (* while one process waits out a disk read, a compute process keeps
     the CPU busy: its instructions retire during the disk's
     milliseconds, proving the wait is asynchronous *)
  let config = { disk_config with Kernel.sched = Sched.Round_robin { quantum = 50 } } in
  let kernel = Kernel.create config in
  let io = Kernel.spawn kernel ~name:"io" ~program:[||] () in
  let buf = Kernel.alloc_pages kernel io ~n:1 ~perms:Perms.read_write in
  Process.set_program io
    (Asm.assemble_list
       [
         Isa.Li (1, 1000) (* far block: long seek *);
         Isa.Li (2, buf);
         Isa.Li (0, Sysno.sys_disk_read);
         Isa.Syscall;
         Isa.Halt;
       ]);
  let busy = Kernel.spawn kernel ~name:"busy" ~program:[||] () in
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "spin" in
  Asm.li asm 10 0;
  Asm.li asm 11 50_000;
  Asm.label asm loop;
  Asm.add asm 10 10 (Isa.Imm 1);
  Asm.blt asm 10 11 loop;
  Asm.halt asm;
  Process.set_program busy (Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:5_000_000 () : Kernel.run_result);
  checkb "io finished" true (io.Process.state = Process.Exited Process.Normal);
  checkb "busy finished" true (busy.Process.state = Process.Exited Process.Normal);
  (* the busy process accumulated CPU time while io slept *)
  checkb "compute overlapped the disk wait" true
    (busy.Process.instructions_retired > 90_000)

let () =
  Alcotest.run "io"
    [
      ( "disk-model",
        [
          Alcotest.test_case "service components" `Quick test_disk_service_components;
          Alcotest.test_case "seek monotonic" `Quick test_disk_seek_monotonic;
          Alcotest.test_case "head moves" `Quick test_disk_head_moves;
          Alcotest.test_case "read/write roundtrip" `Quick test_disk_rw_roundtrip;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
          Alcotest.test_case "modern media" `Quick test_disk_modern_faster_media;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "roundtrip through RAM" `Quick test_sys_disk_roundtrip;
          Alcotest.test_case "errors" `Quick test_sys_disk_errors;
          Alcotest.test_case "no disk attached" `Quick test_sys_disk_without_disk;
          Alcotest.test_case "I/O overlaps compute" `Quick test_disk_io_overlaps_compute;
        ] );
    ]
