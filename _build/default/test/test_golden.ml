(* Golden-output regression tests.

   The simulator is fully deterministic (integer picosecond clock, no
   wall-clock or global Random anywhere), so the rendered experiment
   tables are bit-for-bit stable. These tests pin the attack
   reproductions and security tables against checked-in golden files;
   regenerate them with `dune exec tools/gen_golden.exe` after an
   intentional behaviour change, and review the diff. *)

let golden_ids =
  [
    "fig5_attack3";
    "fig6_attack4";
    "fig2_shrimp";
    "fig8_proof";
    "ablate_wbuf";
    "key_security";
    "crossover";
    "disk_vs_net";
  ]

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden id () =
  let expected = read_file (Filename.concat "golden" (id ^ ".txt")) in
  match Uldma_sim.Experiments.find id with
  | None -> Alcotest.failf "experiment %s missing from the registry" id
  | Some e ->
    let actual = Uldma_util.Tbl.render (e.Uldma_sim.Experiments.run ()) in
    if actual <> expected then
      Alcotest.failf
        "%s drifted from its golden output.\n--- expected ---\n%s\n--- actual ---\n%s\n(regenerate with `dune exec tools/gen_golden.exe` if intentional)"
        id expected actual

let () =
  Alcotest.run "golden"
    [
      ( "experiments",
        List.map (fun id -> Alcotest.test_case id `Slow (test_golden id)) golden_ids );
    ]
