(* Tests for the os library: scheduler, frame allocator, processes,
   and the kernel (execution loop, syscalls, setup services, hooks). *)

open Uldma_mem
open Uldma_mmu
open Uldma_cpu
open Uldma_os
open Uldma_dma

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sched *)

let pick t ~current ~runnable = Sched.pick t ~current ~runnable

let test_sched_empty () =
  let s = Sched.create Sched.Run_to_completion in
  checkb "no runnable" true (pick s ~current:None ~runnable:[] = None)

let test_sched_run_to_completion () =
  let s = Sched.create Sched.Run_to_completion in
  Alcotest.(check (option int)) "picks first" (Some 1) (pick s ~current:None ~runnable:[ 1; 2 ]);
  Alcotest.(check (option int)) "stays" (Some 1) (pick s ~current:(Some 1) ~runnable:[ 1; 2 ]);
  Alcotest.(check (option int))
    "moves when current exits" (Some 2)
    (pick s ~current:(Some 1) ~runnable:[ 2 ])

let test_sched_round_robin () =
  let s = Sched.create (Sched.Round_robin { quantum = 2 }) in
  let take current runnable =
    match pick s ~current ~runnable with Some p -> p | None -> Alcotest.fail "no pick"
  in
  let p1 = take None [ 1; 2 ] in
  checki "starts at 1" 1 p1;
  checki "keeps within quantum" 1 (take (Some 1) [ 1; 2 ]);
  checki "preempts after quantum" 2 (take (Some 1) [ 1; 2 ])

let test_sched_round_robin_cycles () =
  let s = Sched.create (Sched.Round_robin { quantum = 1 }) in
  let seq = ref [] in
  let current = ref None in
  for _ = 1 to 6 do
    match pick s ~current:!current ~runnable:[ 1; 2; 3 ] with
    | Some p ->
      seq := p :: !seq;
      current := Some p
    | None -> Alcotest.fail "no pick"
  done;
  (* quantum 1: every instruction goes to the next process *)
  Alcotest.(check (list int)) "rotation" [ 1; 2; 3; 1; 2; 3 ] (List.rev !seq)

let test_sched_scripted () =
  let s = Sched.create (Sched.Scripted [ 2; 2; 1 ]) in
  Alcotest.(check (option int)) "first" (Some 2) (pick s ~current:None ~runnable:[ 1; 2 ]);
  Alcotest.(check (option int)) "second" (Some 2) (pick s ~current:(Some 2) ~runnable:[ 1; 2 ]);
  Alcotest.(check (option int)) "third" (Some 1) (pick s ~current:(Some 2) ~runnable:[ 1; 2 ]);
  (* script exhausted: falls back to quantum-1 round robin *)
  Alcotest.(check (option int)) "fallback" (Some 2) (pick s ~current:(Some 1) ~runnable:[ 1; 2 ])

let test_sched_scripted_skips_dead () =
  let s = Sched.create (Sched.Scripted [ 9 ]) in
  match pick s ~current:None ~runnable:[ 1 ] with
  | Some 1 -> ()
  | Some _ | None -> Alcotest.fail "should fall back to a runnable pid"

let test_sched_random_deterministic () =
  let run () =
    let s = Sched.create (Sched.Random_preempt { probability = 0.5; seed = 3 }) in
    let acc = ref [] in
    let current = ref None in
    for _ = 1 to 50 do
      match pick s ~current:!current ~runnable:[ 1; 2; 3 ] with
      | Some p ->
        acc := p :: !acc;
        current := Some p
      | None -> ()
    done;
    !acc
  in
  Alcotest.(check (list int)) "same seed, same schedule" (run ()) (run ())

let test_sched_copy () =
  let s = Sched.create (Sched.Scripted [ 1; 2 ]) in
  ignore (pick s ~current:None ~runnable:[ 1; 2 ]);
  let s2 = Sched.copy s in
  Alcotest.(check (option int)) "copy continues script" (Some 2)
    (pick s2 ~current:(Some 1) ~runnable:[ 1; 2 ]);
  Alcotest.(check (option int)) "original unaffected" (Some 2)
    (pick s ~current:(Some 1) ~runnable:[ 1; 2 ])

let test_sched_full_coverage_under_random () =
  (* under random preemption every runnable pid eventually runs *)
  let s = Sched.create (Sched.Random_preempt { probability = 0.5; seed = 9 }) in
  let seen = Hashtbl.create 8 in
  let current = ref None in
  for _ = 1 to 500 do
    match Sched.pick s ~current:!current ~runnable:[ 1; 2; 3; 4 ] with
    | Some p ->
      Hashtbl.replace seen p ();
      current := Some p
    | None -> ()
  done;
  checki "all four scheduled" 4 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Vm *)

let test_vm_alloc () =
  let vm = Vm.create ~ram_size:(32 * Layout.page_size) in
  checki "16 reserved of 32" 16 (Vm.frames_free vm);
  (match Vm.alloc_frame vm with
  | Some f -> checkb "first frame past reserved" true (f >= 16)
  | None -> Alcotest.fail "should allocate");
  checki "one gone" 15 (Vm.frames_free vm)

let test_vm_exhaustion_and_free () =
  let vm = Vm.create ~ram_size:(17 * Layout.page_size) in
  let f = match Vm.alloc_frame vm with Some f -> f | None -> Alcotest.fail "alloc" in
  checkb "exhausted" true (Vm.alloc_frame vm = None);
  Vm.free_frame vm f;
  checkb "freed frame reusable" true (Vm.alloc_frame vm = Some f)

let test_vm_distinct_frames () =
  let vm = Vm.create ~ram_size:(32 * Layout.page_size) in
  let frames = List.init 16 (fun _ -> match Vm.alloc_frame vm with Some f -> f | None -> -1) in
  checki "all distinct" 16 (List.length (List.sort_uniq compare frames))

(* ------------------------------------------------------------------ *)
(* Kernel helpers *)

let small_config =
  { Kernel.default_config with Kernel.ram_size = 64 * Layout.page_size }

let fresh ?(config = small_config) () = Kernel.create config

let spawn_with kernel instrs =
  Kernel.spawn kernel ~name:"t" ~program:(Asm.assemble_list instrs) ()

(* a program writing [value] to its page at [va] then exiting by Halt *)
let writer_program ~va ~value = [ Isa.Li (1, va); Isa.Li (2, value); Isa.Store (1, 0, 2); Isa.Halt ]

let test_kernel_run_simple_program () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"w" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Process.set_program p (Asm.assemble_list (writer_program ~va ~value:1234));
  checkb "all exited" true (Kernel.run kernel () = Kernel.All_exited);
  checki "memory effect" 1234 (Kernel.read_user kernel p va);
  checkb "state" true (p.Process.state = Process.Exited Process.Normal)

let test_kernel_spawn_pids_increase () =
  let kernel = fresh () in
  let a = spawn_with kernel [ Isa.Halt ] and b = spawn_with kernel [ Isa.Halt ] in
  checkb "distinct increasing" true (b.Process.pid > a.Process.pid);
  checki "two processes" 2 (List.length (Kernel.processes kernel))

let test_kernel_time_advances () =
  let kernel = fresh () in
  ignore (spawn_with kernel [ Isa.Nop; Isa.Nop; Isa.Halt ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checkb "clock moved" true (Kernel.now_ps kernel > 0)

let test_kernel_fault_kills () =
  let kernel = fresh () in
  let p = spawn_with kernel [ Isa.Li (1, 0x5000); Isa.Load (2, 1, 0); Isa.Halt ] in
  ignore (Kernel.run kernel () : Kernel.run_result);
  match p.Process.state with
  | Process.Exited (Process.Killed_fault (Addr_space.No_mapping _)) -> ()
  | s -> Alcotest.failf "expected fault kill, got %a" Process.pp_state s

let test_kernel_protection_kills () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"w" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_only in
  Process.set_program p (Asm.assemble_list (writer_program ~va ~value:1));
  ignore (Kernel.run kernel () : Kernel.run_result);
  match p.Process.state with
  | Process.Exited (Process.Killed_fault (Addr_space.Protection (_, Addr_space.Write))) -> ()
  | s -> Alcotest.failf "expected protection kill, got %a" Process.pp_state s

let test_kernel_sys_exit_and_print () =
  let kernel = fresh () in
  let p =
    spawn_with kernel
      [
        Isa.Li (1, 777);
        Isa.Li (0, Sysno.sys_print);
        Isa.Syscall;
        Isa.Li (0, Sysno.sys_exit);
        Isa.Syscall;
        Isa.Li (1, 888) (* unreachable *);
        Isa.Halt;
      ]
  in
  ignore (Kernel.run kernel () : Kernel.run_result);
  Alcotest.(check (list (pair int int))) "console" [ (p.Process.pid, 777) ] (Kernel.console kernel);
  checki "did not run past exit" 777 (Regfile.get p.Process.ctx.Cpu.regs 1)

let test_kernel_sys_get_time () =
  let kernel = fresh () in
  let p = spawn_with kernel [ Isa.Li (0, Sysno.sys_get_time); Isa.Syscall; Isa.Halt ] in
  ignore (Kernel.run kernel () : Kernel.run_result);
  let reported = Regfile.get p.Process.ctx.Cpu.regs 0 in
  checkb "nanoseconds sane" true (reported > 0 && reported < 1_000_000)

let test_kernel_bad_syscall_kills () =
  let kernel = fresh () in
  let p = spawn_with kernel [ Isa.Li (0, 99); Isa.Syscall; Isa.Halt ] in
  ignore (Kernel.run kernel () : Kernel.run_result);
  match p.Process.state with
  | Process.Exited (Process.Killed _) -> ()
  | s -> Alcotest.failf "expected kill, got %a" Process.pp_state s

let test_kernel_sys_yield_rotates () =
  let kernel = fresh () in
  let yield_then_print tag =
    [
      Isa.Li (0, Sysno.sys_yield);
      Isa.Syscall;
      Isa.Li (1, tag);
      Isa.Li (0, Sysno.sys_print);
      Isa.Syscall;
      Isa.Halt;
    ]
  in
  let a = spawn_with kernel (yield_then_print 1) in
  let b = spawn_with kernel (yield_then_print 2) in
  ignore (a, b);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "both printed" 2 (List.length (Kernel.console kernel))

let test_kernel_sys_dma () =
  let config = { small_config with Kernel.backend = Kernel.Local { bytes_per_s = 1e9 } } in
  let kernel = fresh ~config () in
  let p = Kernel.spawn kernel ~name:"dma" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Kernel.write_user kernel p src 0xfeedface;
  Process.set_program p
    (Asm.assemble_list
       [
         Isa.Li (1, src);
         Isa.Li (2, dst);
         Isa.Li (3, 64);
         Isa.Li (0, Sysno.sys_dma);
         Isa.Syscall;
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checkb "status success" true (Regfile.get p.Process.ctx.Cpu.regs 0 >= 0);
  checki "data copied" 0xfeedface (Kernel.read_user kernel p dst);
  checki "one transfer" 1 (List.length (Engine.transfers (Kernel.engine kernel)))

let test_kernel_sys_dma_rejects_bad_perms () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"dma" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_only in
  Process.set_program p
    (Asm.assemble_list
       [
         Isa.Li (1, src);
         Isa.Li (2, dst) (* read-only destination *);
         Isa.Li (3, 64);
         Isa.Li (0, Sysno.sys_dma);
         Isa.Syscall;
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "status failure" Status.failure (Regfile.get p.Process.ctx.Cpu.regs 0);
  checki "nothing started" 0 (List.length (Engine.transfers (Kernel.engine kernel)))

let test_kernel_sys_dma_rejects_unmapped () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"dma" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Process.set_program p
    (Asm.assemble_list
       [
         Isa.Li (1, src);
         Isa.Li (2, 0x700000) (* unmapped *);
         Isa.Li (3, 64);
         Isa.Li (0, Sysno.sys_dma);
         Isa.Syscall;
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "status failure" Status.failure (Regfile.get p.Process.ctx.Cpu.regs 0)

let test_kernel_sys_sbrk () =
  let kernel = fresh () in
  let p =
    spawn_with kernel
      [
        Isa.Li (1, 2);
        Isa.Li (0, Sysno.sys_sbrk);
        Isa.Syscall;
        Isa.Mov (10, 0) (* va *);
        Isa.Li (2, 9999);
        Isa.Store (10, 0, 2) (* write to the new page *);
        Isa.Load (11, 10, 0);
        Isa.Halt;
      ]
  in
  ignore (Kernel.run kernel () : Kernel.run_result);
  checkb "va returned" true (Regfile.get p.Process.ctx.Cpu.regs 10 > 0);
  checki "new page usable" 9999 (Regfile.get p.Process.ctx.Cpu.regs 11);
  (* exhaustion returns -1 instead of killing *)
  let q = spawn_with kernel [ Isa.Li (1, 100000); Isa.Li (0, Sysno.sys_sbrk); Isa.Syscall; Isa.Halt ] in
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "out of memory" (-1) (Regfile.get q.Process.ctx.Cpu.regs 0)

let test_kernel_sys_atomic () =
  let config = { small_config with Kernel.backend = Kernel.Local { bytes_per_s = 1e9 } } in
  let kernel = fresh ~config () in
  let p = Kernel.spawn kernel ~name:"at" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Kernel.write_user kernel p va 10;
  Process.set_program p
    (Asm.assemble_list
       [
         Isa.Li (1, va);
         Isa.Li (2, Sysno.atomic_add);
         Isa.Li (3, 5);
         Isa.Li (0, Sysno.sys_atomic);
         Isa.Syscall;
         Isa.Mov (10, 0) (* save old value *);
         Isa.Li (1, va);
         Isa.Li (2, Sysno.atomic_cas);
         Isa.Li (3, 15);
         Isa.Li (4, 99);
         Isa.Li (0, Sysno.sys_atomic);
         Isa.Syscall;
         Isa.Halt;
       ]);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "add returned old" 10 (Regfile.get p.Process.ctx.Cpu.regs 10);
  checki "cas returned old" 15 (Regfile.get p.Process.ctx.Cpu.regs 0);
  checki "final value" 99 (Kernel.read_user kernel p va)

let test_kernel_sys_sleep () =
  let kernel = fresh () in
  let p =
    spawn_with kernel
      [
        Isa.Li (1, 5000) (* 5 us *);
        Isa.Li (0, Sysno.sys_sleep);
        Isa.Syscall;
        Isa.Li (0, Sysno.sys_get_time);
        Isa.Syscall;
        Isa.Halt;
      ]
  in
  ignore (Kernel.run kernel () : Kernel.run_result);
  checkb "woke after 5us" true (Regfile.get p.Process.ctx.Cpu.regs 0 >= 5000);
  checkb "exited" true (p.Process.state = Process.Exited Process.Normal)

let test_kernel_sleepers_interleave () =
  (* two sleepers with different deadlines wake in order *)
  let kernel = fresh () in
  let sleeper ns tag =
    spawn_with kernel
      [
        Isa.Li (1, ns);
        Isa.Li (0, Sysno.sys_sleep);
        Isa.Syscall;
        Isa.Li (1, tag);
        Isa.Li (0, Sysno.sys_print);
        Isa.Syscall;
        Isa.Halt;
      ]
  in
  let _a = sleeper 50_000 1 (* 50 us *) in
  let _b = sleeper 5_000 2 (* 5 us *) in
  ignore (Kernel.run kernel () : Kernel.run_result);
  Alcotest.(check (list int)) "wake order" [ 2; 1 ] (List.map snd (Kernel.console kernel))

let test_kernel_sys_dma_wait () =
  (* slow backend: 8 KiB at ~19 MB/s is ~430 us of wire time *)
  let config =
    { small_config with
      Kernel.mechanism = Engine.Ext_shadow;
      backend = Kernel.Local { bytes_per_s = 19e6 } }
  in
  let kernel = fresh ~config () in
  let p = Kernel.spawn kernel ~name:"waiter" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  (match Kernel.alloc_dma_context kernel p with Some _ -> () | None -> Alcotest.fail "ctx");
  ignore (Kernel.map_shadow_alias kernel p ~vaddr:src ~n:1 ~window:`Dma : int);
  ignore (Kernel.map_shadow_alias kernel p ~vaddr:dst ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 1 src;
  Asm.li asm 2 dst;
  Asm.li asm 3 8192;
  Uldma.Ext_shadow.emit_dma asm;
  Asm.mov asm 10 0 (* status at initiation: remaining > 0 *);
  Asm.li asm 0 Sysno.sys_dma_wait;
  Asm.syscall asm;
  Asm.mov asm 11 0 (* wait result *);
  Asm.li asm 0 Sysno.sys_get_time;
  Asm.syscall asm;
  Asm.halt asm;
  Process.set_program p (Asm.assemble asm);
  ignore (Kernel.run kernel () : Kernel.run_result);
  let regs = p.Process.ctx.Cpu.regs in
  checkb "remaining at initiation" true (Regfile.get regs 10 > 0);
  checki "wait succeeded" 0 (Regfile.get regs 11);
  checkb "woke after the wire time" true (Regfile.get regs 0 > 400_000 (* ns *))

let test_kernel_sys_dma_wait_nothing () =
  let kernel = fresh () in
  let p =
    spawn_with kernel [ Isa.Li (0, Sysno.sys_dma_wait); Isa.Syscall; Isa.Halt ]
  in
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "nothing to wait for" (-1) (Regfile.get p.Process.ctx.Cpu.regs 0)

(* ------------------------------------------------------------------ *)
(* Kernel setup services *)

let test_kernel_alloc_pages_zeroed_and_mapped () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"m" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
  checkb "page aligned" true (Layout.is_page_aligned va);
  checki "zeroed" 0 (Kernel.read_user kernel p (va + Layout.page_size));
  let va2 = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  checki "bump allocated" (va + (2 * Layout.page_size)) va2

let test_kernel_share_pages () =
  let kernel = fresh () in
  let a = Kernel.spawn kernel ~name:"a" ~program:[||] () in
  let b = Kernel.spawn kernel ~name:"b" ~program:[||] () in
  let va = Kernel.alloc_pages kernel a ~n:1 ~perms:Perms.read_write in
  Kernel.write_user kernel a va 555;
  let vb = Kernel.share_pages kernel ~from_process:a ~vaddr:va ~n:1 ~into:b ~perms:Perms.read_only in
  checki "b sees a's data" 555 (Kernel.read_user kernel b vb);
  checki "same physical frame" (Kernel.user_paddr kernel a va) (Kernel.user_paddr kernel b vb);
  match Addr_space.find_page b.Process.addr_space ~vpage:(Layout.page_of vb) with
  | Some pte -> checkb "read-only in b" true (Perms.equal pte.Pte.perms Perms.read_only)
  | None -> Alcotest.fail "mapping missing"

let test_kernel_map_shadow_alias () =
  let kernel = fresh ~config:{ small_config with Kernel.mechanism = Engine.Key_based } () in
  let p = Kernel.spawn kernel ~name:"s" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let sva = Kernel.map_shadow_alias kernel p ~vaddr:va ~n:1 ~window:`Dma in
  checki "fixed offset" (va + Vm.shadow_va_offset) sva;
  (match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of sva) with
  | Some pte ->
    checkb "uncacheable" false pte.Pte.cacheable;
    let paddr = pte.Pte.frame lsl Layout.page_shift in
    checkb "shadow tagged" true (Shadow.is_shadow paddr);
    checki "aliases the data frame" (Kernel.user_paddr kernel p va)
      (Shadow.decode_exn paddr).Shadow.paddr
  | None -> Alcotest.fail "alias missing");
  (* permissions mirror the data page *)
  let ro = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_only in
  let sro = Kernel.map_shadow_alias kernel p ~vaddr:ro ~n:1 ~window:`Dma in
  match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of sro) with
  | Some pte -> checkb "alias read-only" true (Perms.equal pte.Pte.perms Perms.read_only)
  | None -> Alcotest.fail "alias missing"

let test_kernel_atomic_alias_window () =
  let kernel = fresh ~config:{ small_config with Kernel.mechanism = Engine.Key_based } () in
  let p = Kernel.spawn kernel ~name:"s" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let ava = Kernel.map_shadow_alias kernel p ~vaddr:va ~n:1 ~window:`Atomic in
  checki "atomic offset" (va + Vm.atomic_va_offset) ava;
  match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of ava) with
  | Some pte ->
    checkb "atomic window bit" true
      (Shadow.decode_exn (pte.Pte.frame lsl Layout.page_shift)).Shadow.atomic
  | None -> Alcotest.fail "alias missing"

let test_kernel_ext_shadow_alias_carries_context () =
  let config = { small_config with Kernel.mechanism = Engine.Ext_shadow } in
  let kernel = fresh ~config () in
  let p = Kernel.spawn kernel ~name:"s" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  (* without a context the kernel refuses *)
  checkb "requires context" true
    (try
       ignore (Kernel.map_shadow_alias kernel p ~vaddr:va ~n:1 ~window:`Dma : int);
       false
     with Failure _ -> true);
  let context, _, _ =
    match Kernel.alloc_dma_context kernel p with Some x -> x | None -> Alcotest.fail "no ctx"
  in
  let sva = Kernel.map_shadow_alias kernel p ~vaddr:va ~n:1 ~window:`Dma in
  match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of sva) with
  | Some pte ->
    checki "context in physical address" context
      (Shadow.decode_exn (pte.Pte.frame lsl Layout.page_shift)).Shadow.context
  | None -> Alcotest.fail "alias missing"

let test_kernel_map_remote_pages () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"r" ~program:[||] () in
  let va = Kernel.map_remote_pages kernel p ~remote_paddr:(4 * Layout.page_size) ~n:2 ~perms:Perms.read_write in
  (match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of va) with
  | Some pte ->
    checkb "uncacheable" false pte.Pte.cacheable;
    checki "frame in remote window" (Layout.remote_base + (4 * Layout.page_size))
      (pte.Pte.frame lsl Layout.page_shift)
  | None -> Alcotest.fail "mapping missing");
  checkb "unaligned rejected" true
    (try
       ignore (Kernel.map_remote_pages kernel p ~remote_paddr:12 ~n:1 ~perms:Perms.read_write : int);
       false
     with Invalid_argument _ -> true)

let test_kernel_alloc_dma_context () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"c" ~program:[||] () in
  let context, key, va =
    match Kernel.alloc_dma_context kernel p with Some x -> x | None -> Alcotest.fail "no ctx"
  in
  checki "context page va" Vm.context_page_va va;
  checkb "key non-trivial" true (key > 0xffff);
  checkb "process records it" true (p.Process.dma_context = Some context);
  (* the engine got the key *)
  checki "engine key" key (Context_file.get (Engine.contexts (Kernel.engine kernel)) context).Context_file.key;
  (* context page mapped uncacheable rw *)
  match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of va) with
  | Some pte ->
    checkb "uncacheable" false pte.Pte.cacheable;
    checki "frame is the context page" (Layout.context_page context)
      (pte.Pte.frame lsl Layout.page_shift)
  | None -> Alcotest.fail "context page unmapped"

let test_kernel_contexts_exhaust_and_free () =
  let config = { small_config with Kernel.n_contexts = 2 } in
  let kernel = fresh ~config () in
  let procs = List.init 3 (fun i -> Kernel.spawn kernel ~name:(string_of_int i) ~program:[||] ()) in
  let results = List.map (Kernel.alloc_dma_context kernel) procs in
  checki "two succeed" 2 (List.length (List.filter (fun r -> r <> None) results));
  (match procs with
  | first :: _ ->
    Kernel.free_dma_context kernel first;
    checkb "freed context reusable" true (Kernel.alloc_dma_context kernel first <> None)
  | [] -> assert false)

let test_kernel_hooks_flags () =
  let kernel = fresh () in
  checkb "unmodified by default" false (Kernel.kernel_modified kernel);
  Kernel.install_shrimp_hook kernel;
  checkb "modified after hook" true (Kernel.kernel_modified kernel)

let test_kernel_flash_hook_updates_engine () =
  let config = { small_config with Kernel.mechanism = Engine.Flash } in
  let kernel = fresh ~config () in
  Kernel.install_flash_hook kernel;
  let a = spawn_with kernel [ Isa.Nop; Isa.Halt ] in
  let b = spawn_with kernel [ Isa.Nop; Isa.Halt ] in
  ignore (a, b);
  ignore (Kernel.run kernel () : Kernel.run_result);
  checkb "context switches happened" true (Kernel.context_switches kernel >= 2)

let test_kernel_copy_independent () =
  let kernel = fresh () in
  let p = Kernel.spawn kernel ~name:"w" ~program:[||] () in
  let va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Process.set_program p (Asm.assemble_list (writer_program ~va ~value:42));
  let snap = Kernel.copy kernel in
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "original ran" 42 (Kernel.read_user kernel p va);
  (* the snapshot has not run; its process is still ready *)
  let sp = match Kernel.find_process snap p.Process.pid with Some x -> x | None -> Alcotest.fail "gone" in
  checkb "snapshot still ready" true (Process.is_runnable sp);
  checki "snapshot memory untouched" 0 (Kernel.read_user snap sp va);
  ignore (Kernel.run snap () : Kernel.run_result);
  checki "snapshot runs independently" 42 (Kernel.read_user snap sp va)

let test_kernel_step_pid () =
  let kernel = fresh () in
  let a = spawn_with kernel [ Isa.Li (1, 1); Isa.Halt ] in
  let b = spawn_with kernel [ Isa.Li (1, 2); Isa.Halt ] in
  checkb "step b" true (Kernel.step_pid kernel b.Process.pid = `Ok);
  checki "b advanced" 2 (Regfile.get b.Process.ctx.Cpu.regs 1);
  checki "a untouched" 0 (Regfile.get a.Process.ctx.Cpu.regs 1);
  checkb "unknown pid" true (Kernel.step_pid kernel 99 = `Not_runnable)

let test_kernel_run_until () =
  let kernel = fresh () in
  ignore (spawn_with kernel [ Isa.Nop; Isa.Nop; Isa.Nop; Isa.Halt ]);
  let r = Kernel.run_until kernel (fun k -> Kernel.now_ps k > 0) in
  checkb "predicate fired" true (r = Kernel.Predicate)

let test_kernel_max_steps () =
  let kernel = fresh () in
  (* infinite loop *)
  ignore (spawn_with kernel [ Isa.Jmp 0 ]);
  checkb "bounded" true (Kernel.run kernel ~max_steps:100 () = Kernel.Max_steps)

let test_kernel_pal_execution () =
  let kernel = fresh () in
  let body = Asm.assemble_list [ Isa.Add (1, 1, Isa.Imm 5) ] in
  (match Kernel.install_pal kernel ~index:3 body with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let p = spawn_with kernel [ Isa.Li (1, 10); Isa.Call_pal 3; Isa.Halt ] in
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "pal effect" 15 (Regfile.get p.Process.ctx.Cpu.regs 1)

let test_kernel_pal_missing_kills () =
  let kernel = fresh () in
  let p = spawn_with kernel [ Isa.Call_pal 9; Isa.Halt ] in
  ignore (Kernel.run kernel () : Kernel.run_result);
  match p.Process.state with
  | Process.Exited (Process.Killed _) -> ()
  | s -> Alcotest.failf "expected kill, got %a" Process.pp_state s

let test_kernel_pal_not_preempted () =
  (* Round-robin quantum 1 preempts between every instruction, but a
     PAL body must execute atomically. Two processes both increment a
     shared counter via read-modify-write in PAL: no update is lost. *)
  let config =
    { small_config with Kernel.sched = Sched.Round_robin { quantum = 1 } }
  in
  let kernel = fresh ~config () in
  let owner = Kernel.spawn kernel ~name:"owner" ~program:[||] () in
  let counter_va = Kernel.alloc_pages kernel owner ~n:1 ~perms:Perms.read_write in
  Process.set_program owner (Asm.assemble_list [ Isa.Halt ]);
  let body =
    Asm.assemble_list [ Isa.Load (2, 1, 0); Isa.Add (2, 2, Isa.Imm 1); Isa.Store (1, 0, 2) ]
  in
  (match Kernel.install_pal kernel ~index:1 body with Ok () -> () | Error e -> Alcotest.fail e);
  let increments = 20 in
  let make_proc name =
    let p = Kernel.spawn kernel ~name ~program:[||] () in
    let shared =
      Kernel.share_pages kernel ~from_process:owner ~vaddr:counter_va ~n:1 ~into:p
        ~perms:Perms.read_write
    in
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm "loop" in
    Asm.li asm 10 0;
    Asm.li asm 11 increments;
    Asm.li asm 1 shared;
    Asm.label asm loop;
    Asm.call_pal asm 1;
    Asm.add asm 10 10 (Isa.Imm 1);
    Asm.blt asm 10 11 loop;
    Asm.halt asm;
    Process.set_program p (Asm.assemble asm)
  in
  make_proc "inc1";
  make_proc "inc2";
  ignore (Kernel.run kernel () : Kernel.run_result);
  checki "no lost updates" (2 * increments) (Kernel.read_user kernel owner counter_va)

let () =
  Alcotest.run "os"
    [
      ( "sched",
        [
          Alcotest.test_case "empty" `Quick test_sched_empty;
          Alcotest.test_case "run to completion" `Quick test_sched_run_to_completion;
          Alcotest.test_case "round robin quantum" `Quick test_sched_round_robin;
          Alcotest.test_case "round robin cycles" `Quick test_sched_round_robin_cycles;
          Alcotest.test_case "scripted" `Quick test_sched_scripted;
          Alcotest.test_case "scripted skips dead" `Quick test_sched_scripted_skips_dead;
          Alcotest.test_case "random deterministic" `Quick test_sched_random_deterministic;
          Alcotest.test_case "copy" `Quick test_sched_copy;
          Alcotest.test_case "random covers all pids" `Quick test_sched_full_coverage_under_random;
        ] );
      ( "vm",
        [
          Alcotest.test_case "alloc" `Quick test_vm_alloc;
          Alcotest.test_case "exhaustion and free" `Quick test_vm_exhaustion_and_free;
          Alcotest.test_case "distinct frames" `Quick test_vm_distinct_frames;
        ] );
      ( "kernel-exec",
        [
          Alcotest.test_case "run simple program" `Quick test_kernel_run_simple_program;
          Alcotest.test_case "pids increase" `Quick test_kernel_spawn_pids_increase;
          Alcotest.test_case "time advances" `Quick test_kernel_time_advances;
          Alcotest.test_case "fault kills" `Quick test_kernel_fault_kills;
          Alcotest.test_case "protection kills" `Quick test_kernel_protection_kills;
          Alcotest.test_case "step_pid" `Quick test_kernel_step_pid;
          Alcotest.test_case "run_until" `Quick test_kernel_run_until;
          Alcotest.test_case "max_steps" `Quick test_kernel_max_steps;
          Alcotest.test_case "copy independent" `Quick test_kernel_copy_independent;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "exit and print" `Quick test_kernel_sys_exit_and_print;
          Alcotest.test_case "get_time" `Quick test_kernel_sys_get_time;
          Alcotest.test_case "bad syscall kills" `Quick test_kernel_bad_syscall_kills;
          Alcotest.test_case "yield rotates" `Quick test_kernel_sys_yield_rotates;
          Alcotest.test_case "sys_dma" `Quick test_kernel_sys_dma;
          Alcotest.test_case "sys_dma bad perms" `Quick test_kernel_sys_dma_rejects_bad_perms;
          Alcotest.test_case "sys_dma unmapped" `Quick test_kernel_sys_dma_rejects_unmapped;
          Alcotest.test_case "sys_sbrk" `Quick test_kernel_sys_sbrk;
          Alcotest.test_case "sys_sleep" `Quick test_kernel_sys_sleep;
          Alcotest.test_case "sleepers wake in order" `Quick test_kernel_sleepers_interleave;
          Alcotest.test_case "sys_dma_wait" `Quick test_kernel_sys_dma_wait;
          Alcotest.test_case "sys_dma_wait with nothing" `Quick test_kernel_sys_dma_wait_nothing;
          Alcotest.test_case "sys_atomic" `Quick test_kernel_sys_atomic;
        ] );
      ( "setup",
        [
          Alcotest.test_case "alloc_pages" `Quick test_kernel_alloc_pages_zeroed_and_mapped;
          Alcotest.test_case "share_pages" `Quick test_kernel_share_pages;
          Alcotest.test_case "map_shadow_alias" `Quick test_kernel_map_shadow_alias;
          Alcotest.test_case "atomic alias window" `Quick test_kernel_atomic_alias_window;
          Alcotest.test_case "ext-shadow alias context" `Quick
            test_kernel_ext_shadow_alias_carries_context;
          Alcotest.test_case "map_remote_pages" `Quick test_kernel_map_remote_pages;
          Alcotest.test_case "alloc_dma_context" `Quick test_kernel_alloc_dma_context;
          Alcotest.test_case "contexts exhaust/free" `Quick test_kernel_contexts_exhaust_and_free;
          Alcotest.test_case "hooks flag" `Quick test_kernel_hooks_flags;
          Alcotest.test_case "flash hook runs" `Quick test_kernel_flash_hook_updates_engine;
        ] );
      ( "pal",
        [
          Alcotest.test_case "execution" `Quick test_kernel_pal_execution;
          Alcotest.test_case "missing kills" `Quick test_kernel_pal_missing_kills;
          Alcotest.test_case "not preempted" `Quick test_kernel_pal_not_preempted;
        ] );
    ]
