(* Cluster bandwidth: the workload the paper's introduction motivates.

   A Network-of-Workstations application streams messages of varying
   sizes to a peer node. We compare achieved goodput when each message
   is launched with kernel-level DMA (a system call per message) vs
   extended shadow addressing (two uncached stores per message), on an
   ATM-155 link and on a Gigabit LAN.

   Run with: dune exec examples/cluster_bandwidth.exe *)

open Uldma_util
open Uldma_mem
open Uldma_os
module Mech = Uldma.Mech
module Api = Uldma.Api
module Cluster = Uldma_sim.Cluster
module Link = Uldma_net.Link

let messages = 64

let run ~link ~mech_name ~message_size =
  let mech = Api.find_exn mech_name in
  let config =
    Api.kernel_config mech
      ~base:
        {
          Kernel.default_config with
          Kernel.ram_size = 128 * Layout.page_size;
          backend = Kernel.Local { bytes_per_s = 1e9 };
        }
  in
  let cluster = Cluster.create ~link ~config in
  let kernel = Cluster.sender cluster in
  let p = Kernel.spawn kernel ~name:"streamer" ~program:[||] () in
  let pages = 8 in
  let src = Kernel.alloc_pages kernel p ~n:pages ~perms:Perms.read_write in
  (* the destination is the peer node's memory, Telegraphos style *)
  let dst =
    Kernel.map_remote_pages kernel p ~remote_paddr:(32 * Layout.page_size) ~n:pages
      ~perms:Perms.read_write
  in
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let prepared =
    mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages }
      ~dst:{ Mech.vaddr = dst; pages }
  in
  (* cycle through as many distinct page offsets as the message size
     allows within the region (power of two for the stub's mask) *)
  let pages_cycled =
    let fit = pages * Layout.page_size / max message_size Layout.page_size in
    let rec pow2 p = if 2 * p <= fit then pow2 (2 * p) else p in
    min pages (pow2 1)
  in
  Process.set_program p
    (Uldma_workload.Stub_loop.build_loop
       {
         Uldma_workload.Stub_loop.iterations = messages;
         transfer_size = message_size;
         src_base = src;
         dst_base = dst;
         pages = pages_cycled;
         result_va;
       }
       ~emit_dma:prepared.Mech.emit_dma);
  (match Kernel.run kernel ~max_steps:10_000_000 () with
  | Kernel.All_exited -> ()
  | _ -> failwith "streamer did not finish");
  ignore (Cluster.settle cluster : int);
  let elapsed_s = Units.to_us (Cluster.last_arrival_ps cluster) /. 1e6 in
  let bytes = Cluster.bytes_delivered cluster in
  float_of_int bytes /. elapsed_s /. 1e6 (* MB/s goodput *)

let () =
  print_endline "=== NOW message streaming: kernel vs user-level DMA initiation ===";
  Printf.printf "(%d messages per cell; goodput in MB/s at the receiver)\n\n" messages;
  List.iter
    (fun link ->
      let tbl =
        Tbl.create
          ~title:(Format.asprintf "%a" Link.pp link)
          ~columns:
            [
              ("message size", Tbl.Right);
              ("kernel DMA (MB/s)", Tbl.Right);
              ("ext-shadow (MB/s)", Tbl.Right);
              ("gain", Tbl.Right);
            ]
      in
      List.iter
        (fun message_size ->
          let k = run ~link ~mech_name:"kernel" ~message_size in
          let u = run ~link ~mech_name:"ext-shadow" ~message_size in
          Tbl.add_row tbl
            [
              Format.asprintf "%a" Units.pp_bytes message_size;
              Printf.sprintf "%.2f" k;
              Printf.sprintf "%.2f" u;
              Printf.sprintf "%+.0f%%" (100.0 *. ((u /. k) -. 1.0));
            ])
        [ 64; 256; 1024; 4096; 16384; 65536 ];
      Tbl.print tbl)
    [ Link.atm155; Link.gigabit ];
  print_endline
    "Small messages gain the most: the initiation cost dominates their total time,\n\
     which is exactly the trend the paper's introduction predicts."
