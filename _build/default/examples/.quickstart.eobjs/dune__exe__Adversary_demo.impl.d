examples/adversary_demo.ml: Format Kernel List Printf Process String Uldma_dma Uldma_os Uldma_verify Uldma_workload
