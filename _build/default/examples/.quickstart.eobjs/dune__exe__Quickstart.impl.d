examples/quickstart.ml: Format Kernel List Perms Printf Process Uldma Uldma_dma Uldma_mem Uldma_os Uldma_util Uldma_workload
