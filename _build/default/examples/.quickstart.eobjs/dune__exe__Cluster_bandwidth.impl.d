examples/cluster_bandwidth.ml: Format Kernel Layout List Perms Printf Process Tbl Uldma Uldma_mem Uldma_net Uldma_os Uldma_sim Uldma_util Uldma_workload Units
