examples/cluster_bandwidth.mli:
