examples/atomic_counter.mli:
