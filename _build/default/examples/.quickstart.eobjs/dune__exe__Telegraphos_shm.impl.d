examples/telegraphos_shm.ml: Asm Format Isa Kernel Layout List Perms Printf Process Sched Uldma Uldma_cpu Uldma_dma Uldma_mem Uldma_net Uldma_os Uldma_sim Uldma_util
