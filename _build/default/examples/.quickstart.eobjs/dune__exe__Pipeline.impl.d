examples/pipeline.ml: Asm Isa Kernel Layout List Perms Printf Process Regfile Uldma Uldma_cpu Uldma_dma Uldma_mem Uldma_os Uldma_util Vm
