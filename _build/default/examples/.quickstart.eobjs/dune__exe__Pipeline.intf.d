examples/pipeline.mli:
