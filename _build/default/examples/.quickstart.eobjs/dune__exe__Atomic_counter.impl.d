examples/atomic_counter.ml: Asm Format Isa Kernel Layout Perms Printf Process Sched Uldma Uldma_cpu Uldma_dma Uldma_mem Uldma_os Uldma_util
