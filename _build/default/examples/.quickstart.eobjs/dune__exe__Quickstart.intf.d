examples/quickstart.mli:
