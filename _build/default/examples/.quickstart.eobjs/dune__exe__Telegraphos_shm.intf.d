examples/telegraphos_shm.mli:
