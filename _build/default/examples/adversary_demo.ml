(* Adversary demo: watch the paper's attacks happen — and fail.

   Reproduces, step by step:
   - Fig. 5: a malicious process splices its own source address into a
     victim's 3-access sequence, transferring ITS data into the
     victim's buffer;
   - Fig. 6: the attacker completes a victim's 4-access sequence, so
     the DMA starts but the victim is told it failed;
   - the same adversary against the paper's 5-access method, which an
     exhaustive search over every schedule shows to be unbreakable.

   Run with: dune exec examples/adversary_demo.exe *)

open Uldma_os
module Oracle = Uldma_verify.Oracle
module Explorer = Uldma_verify.Explorer
module Scenario = Uldma_workload.Scenario

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let leg_name (s : Scenario.t) = function
  | Scenario.V -> Printf.sprintf "victim(%d)" s.Scenario.victim.Process.pid
  | Scenario.M -> Printf.sprintf "attacker(%d)" s.Scenario.attacker.Process.pid

let show_outcome (s : Scenario.t) =
  let transfers = Scenario.transfers s in
  Printf.printf "  transfers started: %d\n" (List.length transfers);
  List.iter (fun tr -> Format.printf "    %a@." Uldma_dma.Transfer.pp tr) transfers;
  Printf.printf "  victim believes:   %s (status %d)\n"
    (if Scenario.victim_successes s > 0 then "SUCCESS" else "failure")
    (Scenario.victim_last_status s);
  let report = Scenario.report s in
  if Oracle.ok report then print_endline "  safety oracle:     clean"
  else Format.printf "  safety oracle:     @[%a@]@." Oracle.pp_report report

let scripted title scenario schedule =
  banner title;
  let s = scenario () in
  Printf.printf "  schedule (one NI access per leg): %s\n"
    (String.concat " " (List.map (leg_name s) schedule));
  Scenario.run_legs s schedule;
  Scenario.finish s ();
  show_outcome s;
  s

let () =
  print_endline "=== Attacking user-level DMA initiation ===";
  print_endline "Victim wants DMA(A -> B, 256 bytes); the attacker owns pages foo, C.";

  let _ =
    scripted "Fig. 5 - the 3-access variant is exploitable" Scenario.fig5 Scenario.fig5_schedule
  in
  print_endline "  => the attacker moved ITS data (C) into the victim's buffer (B).";

  let _ =
    scripted "Fig. 6 - the 4-access variant misreports" Scenario.fig6 Scenario.fig6_schedule
  in
  print_endline
    "  => the victim's transfer DID start, but the victim was told it failed\n\
    \     (it would retry and double-transfer, or give up on delivered data).";

  let _ =
    scripted "Fig. 7 - the 5-access method under the same attacker" Scenario.rep5
      Scenario.fig5_schedule
  in
  print_endline "  => the sequence recogniser rejects the splice; nothing illegitimate starts.";

  banner "Sec. 3.3.1, machine-checked: every schedule of victim vs attacker";
  let s = Scenario.rep5 () in
  let pids = [ s.Scenario.victim.Process.pid; s.Scenario.attacker.Process.pid ] in
  let check kernel =
    let successes =
      match Kernel.find_process kernel s.Scenario.victim.Process.pid with
      | Some p ->
        Uldma_workload.Stub_loop.read_successes kernel p ~result_va:s.Scenario.victim_result_va
      | None -> 0
    in
    let report =
      Oracle.check ~kernel ~intents:s.Scenario.intents
        ~reported_successes:[ (s.Scenario.victim.Process.pid, successes) ]
    in
    match report.Oracle.violations with [] -> None | v :: _ -> Some v
  in
  let r = Explorer.explore ~root:s.Scenario.kernel ~pids ~check () in
  Printf.printf "  schedules explored: %d (complete: %b)\n" r.Explorer.paths
    (not r.Explorer.truncated);
  Printf.printf "  violating schedules: %d\n" (List.length r.Explorer.violations);
  print_endline
    (if r.Explorer.violations = [] then
       "  => the five-access repeated-passing method is SAFE under every interleaving."
     else "  => UNEXPECTED: violations found!")
