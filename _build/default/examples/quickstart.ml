(* Quickstart: initiate one user-level DMA with the paper's fastest
   mechanism (extended shadow addressing, Fig. 4) and watch what
   happens — two uncached accesses, no system call, data moved.

   Run with: dune exec examples/quickstart.exe *)

open Uldma_mem
open Uldma_os
module Mech = Uldma.Mech
module Api = Uldma.Api

let () =
  print_endline "=== uldma quickstart: extended shadow addressing ===\n";

  (* 1. Pick a mechanism and build a machine whose network interface
        speaks it. The default machine is the paper's: a 150 MHz Alpha
        with the NI on a 12.5 MHz TurboChannel. *)
  let mech = Api.find_exn "ext-shadow" in
  let config =
    Api.kernel_config mech
      ~base:{ Kernel.default_config with Kernel.backend = Kernel.Local { bytes_per_s = 19e6 } }
  in
  let kernel = Kernel.create config in

  (* 2. Create a process and give it a source and a destination
        buffer (one page each), plus a page for results. *)
  let p = Kernel.spawn kernel ~name:"app" ~program:[||] () in
  let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  Printf.printf "buffers:      src = %#x, dst = %#x (virtual)\n" src dst;

  (* 3. One-time setup: the OS allocates a register context and maps
        shadow aliases of both buffers. This is ordinary mmap-style
        work — no kernel modification anywhere. *)
  let prepared =
    mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages = 1 }
      ~dst:{ Mech.vaddr = dst; pages = 1 }
  in
  Printf.printf "context:      process got register context %s\n"
    (match p.Process.dma_context with Some c -> string_of_int c | None -> "-");
  Printf.printf "kernel:       modified? %b\n\n" (Kernel.kernel_modified kernel);

  (* 4. Put a recognisable pattern in the source buffer. *)
  for i = 0 to 255 do
    Kernel.write_user kernel p (src + (8 * i)) (0xabc000 + i)
  done;

  (* 5. The user program: a single DMA(src, dst, 2048) through the
        2-access stub, then halt. *)
  Process.set_program p
    (Uldma_workload.Stub_loop.build_single ~vsrc:src ~vdst:dst ~size:2048 ~result_va
       ~emit_dma:prepared.Mech.emit_dma);

  (* 6. Run the machine. *)
  (match Kernel.run kernel ~max_steps:100_000 () with
  | Kernel.All_exited -> ()
  | _ -> failwith "machine did not finish");

  (* 7. Inspect. *)
  let status = Uldma_workload.Stub_loop.read_last_status kernel p ~result_va in
  Printf.printf "status:       %d (bytes remaining at initiation; -1 would be failure)\n" status;
  Printf.printf "moved:        dst[0] = %#x, dst[255] = %#x\n"
    (Kernel.read_user kernel p dst)
    (Kernel.read_user kernel p (dst + (8 * 255)));
  List.iter
    (fun tr -> Format.printf "transfer:     %a@." Uldma_dma.Transfer.pp tr)
    (Uldma_dma.Engine.transfers (Kernel.engine kernel));
  Format.printf "elapsed:      %a of simulated time@."
    Uldma_util.Units.pp_time (Kernel.now_ps kernel);
  print_endline "\nThe whole initiation was: STORE size TO shadow(dst); LOAD status FROM shadow(src).";
  print_endline "Compare: dune exec bin/uldma_cli.exe -- run table1"
