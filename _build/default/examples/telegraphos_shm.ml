(* Telegraphos-style shared memory across two workstations.

   The paper's sec. 3.5 context: "several network interfaces that
   provide a shared-memory abstraction on a Network of Workstations
   have been developed [Telegraphos, Dolphin SCI]. To facilitate
   shared-memory programming, these interfaces also provide atomic
   operations."

   Node B hosts a shared page (a slot counter and a message board).
   Two writer processes on node A claim board slots with user-level
   *remote* fetch-and-add operations (two uncached accesses each; the
   old value returns over the wire into a kernel-set mailbox), then
   publish their messages with remote stores, and finally elect a
   finisher with a remote compare-and-swap. No system call after
   setup; no kernel modification anywhere.

   Run with: dune exec examples/telegraphos_shm.exe *)

open Uldma_mem
open Uldma_cpu
open Uldma_os
module Mech = Uldma.Mech
module Duplex = Uldma_sim.Duplex

let messages_per_writer = 3
let sentinel = 0x5e47

(* shared page layout on node B *)
let slot_counter_off = 0
let cas_winner_off = 8
let board_off = 64

let writer_program ~remote ~mailbox ~writer_id ~prepared =
  let asm = Asm.create () in
  let wait_reply () =
    let spin = Asm.fresh_label asm "wait_reply" in
    Asm.label asm spin;
    Asm.load asm 13 ~base:11 ~off:0;
    Asm.beq asm 13 12 spin;
    (* r13 = old value; rearm the mailbox for the next operation *)
    Asm.store asm ~base:11 ~off:0 12
  in
  Asm.li asm 11 mailbox;
  Asm.li asm 12 sentinel;
  Asm.li asm 14 (remote + board_off);
  Asm.li asm 10 0;
  Asm.li asm 15 messages_per_writer;
  let next = Asm.fresh_label asm "next_message" in
  Asm.label asm next;
  (* claim a board slot: remote fetch_and_add(slot_counter, 1) *)
  Asm.li asm 1 (remote + slot_counter_off);
  Asm.li asm 5 1;
  prepared.Uldma.Atomic.emit_add asm ~operand:5;
  wait_reply ();
  (* board[slot] <- writer_id * 100 + sequence, via a remote store *)
  Asm.shl asm 6 13 3;
  Asm.add asm 6 6 (Isa.Reg 14);
  Asm.li asm 7 (writer_id * 100);
  Asm.add asm 7 7 (Isa.Reg 10);
  Asm.store asm ~base:6 ~off:0 7;
  Asm.mb asm;
  Asm.add asm 10 10 (Isa.Imm 1);
  Asm.blt asm 10 15 next;
  (* leader election: remote CAS(cas_winner, 0 -> writer_id) *)
  Asm.li asm 1 (remote + cas_winner_off);
  Asm.li asm 5 0;
  Asm.li asm 6 writer_id;
  prepared.Uldma.Atomic.emit_cas asm ~expected:5 ~desired:6;
  wait_reply ();
  Asm.halt asm;
  Asm.assemble asm

let () =
  print_endline "=== Telegraphos shared memory: remote atomics over the wire ===\n";
  let config =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * Layout.page_size;
      mechanism = Uldma_dma.Engine.Ext_shadow;
      backend = Kernel.Local { bytes_per_s = 1e9 };
      sched = Sched.Round_robin { quantum = 25 };
    }
  in
  let d = Duplex.create ~link:Uldma_net.Link.gigabit ~config_a:config ~config_b:config in
  let node_a = Duplex.kernel d Duplex.A and node_b = Duplex.kernel d Duplex.B in

  (* node B: the memory host *)
  let host = Kernel.spawn node_b ~name:"host" ~program:(Asm.assemble_list [ Isa.Halt ]) () in
  let shared = Kernel.alloc_pages node_b host ~n:1 ~perms:Perms.read_write in
  let shared_paddr = Kernel.user_paddr node_b host shared in

  (* node A: two writers, each with its own context and mailbox *)
  let spawn_writer writer_id =
    let p = Kernel.spawn node_a ~name:(Printf.sprintf "writer%d" writer_id) ~program:[||] () in
    let mailbox = Kernel.alloc_pages node_a p ~n:1 ~perms:Perms.read_write in
    let remote =
      Kernel.map_remote_pages node_a p ~remote_paddr:shared_paddr ~n:1 ~perms:Perms.read_write
    in
    let prepared =
      Uldma.Atomic.prepare Uldma.Atomic.Ext_shadow_initiated node_a p
        ~region:{ Mech.vaddr = remote; pages = 1 }
    in
    Kernel.set_atomic_mailbox node_a p ~vaddr:mailbox;
    Kernel.write_user node_a p mailbox sentinel;
    Process.set_program p (writer_program ~remote ~mailbox ~writer_id ~prepared)
  in
  spawn_writer 1;
  spawn_writer 2;

  (match Duplex.run d () with
  | Duplex.All_exited -> ()
  | Duplex.Max_steps | Duplex.Predicate -> failwith "did not converge");

  let read off = Kernel.read_user node_b host (shared + off) in
  let slots = read slot_counter_off in
  Printf.printf "board slots claimed:  %d (expected %d)\n" slots (2 * messages_per_writer);
  Printf.printf "CAS leader:           writer %d\n" (read cas_winner_off);
  print_endline "board contents (slot: value = writer*100 + seq):";
  for slot = 0 to slots - 1 do
    Printf.printf "  %d: %d\n" slot (read (board_off + (8 * slot)))
  done;
  let seen = List.init slots (fun slot -> read (board_off + (8 * slot))) in
  let expected =
    List.concat_map (fun w -> List.init messages_per_writer (fun s -> (w * 100) + s)) [ 1; 2 ]
  in
  Printf.printf "\nall messages present, no slot clobbered: %b\n"
    (List.sort compare seen = List.sort compare expected);
  Printf.printf "packets delivered:    %d to B, %d replies to A\n"
    (Duplex.packets_delivered d Duplex.B)
    (Duplex.packets_delivered d Duplex.A);
  Format.printf "simulated time:       %a@." Uldma_util.Units.pp_time (Duplex.now_ps d);
  print_endline
    "\nEvery slot claim was a user-level remote fetch-and-add: one store + one load\n\
     on node A, the add executed at node B's memory, the old value returned into\n\
     a kernel-set mailbox. The kernels were never modified."
