tools/gen_golden.mli:
