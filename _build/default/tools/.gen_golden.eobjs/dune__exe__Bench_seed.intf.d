tools/bench_seed.mli:
