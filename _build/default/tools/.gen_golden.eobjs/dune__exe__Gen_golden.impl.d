tools/gen_golden.ml: List Printf Uldma_sim Uldma_util
