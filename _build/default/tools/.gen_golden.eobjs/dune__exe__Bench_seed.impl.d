tools/bench_seed.ml: Printf Uldma_os Uldma_verify Uldma_workload Unix
