let () =
  List.iter
    (fun id ->
      match Uldma_sim.Experiments.find id with
      | Some e ->
        let oc = open_out (Printf.sprintf "test/golden/%s.txt" id) in
        output_string oc (Uldma_util.Tbl.render (e.Uldma_sim.Experiments.run ()));
        close_out oc;
        Printf.printf "wrote %s\n%!" id
      | None -> failwith id)
    [ "fig5_attack3"; "fig6_attack4"; "fig2_shrimp"; "fig8_proof"; "ablate_wbuf"; "key_security"; "crossover"; "disk_vs_net" ]
