(* Quick standalone explorer-throughput probe: times the rep5
   exploration at max_paths=50 and in full. Handy for before/after
   comparisons when touching the snapshot path; the canonical
   machine-readable numbers come from bench/main.ml's
   BENCH_explorer.json. *)
let () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let explore_rep5 max_paths () =
    let s = Uldma_workload.Scenario.rep5 () in
    let pids =
      [ s.Uldma_workload.Scenario.victim.Uldma_os.Process.pid;
        s.Uldma_workload.Scenario.attacker.Uldma_os.Process.pid ] in
    Uldma_verify.Explorer.explore ~root:s.Uldma_workload.Scenario.kernel ~pids
      ~max_paths ~check:(fun _ -> None) ()
  in
  let r, dt = time (explore_rep5 50) in
  Printf.printf "rep5 max_paths=50: paths=%d %.3fs (%.1f paths/s)\n"
    r.Uldma_verify.Explorer.paths dt (float_of_int r.Uldma_verify.Explorer.paths /. dt);
  let r, dt = time (explore_rep5 200_000) in
  Printf.printf "rep5 full: paths=%d truncated=%b %.3fs (%.1f paths/s)\n"
    r.Uldma_verify.Explorer.paths r.Uldma_verify.Explorer.truncated dt
    (float_of_int r.Uldma_verify.Explorer.paths /. dt)
