(* An N-node NOW in a dozen lines: the unified Session/Cluster API.

   Session.cluster names the wire and the mechanism and hands back a
   fully meshed cluster of complete machines. We run two workloads on
   a 4-node ring over a Gigabit LAN:

   1. A ring burst at instruction level: every node stores a cacheline
      of words into its successor's memory through the paper's remote
      window (the zero node field routes to the successor, so the same
      program works at any cluster size), co-simulated causally across
      all four machines.

   2. The KV service in miniature: the calibrated load generator
      replays the measured doorbell/descriptor costs for a few thousand
      GET/PUTs and reports tail latency — the small-scale version of
      `uldma_cli cluster`.

   Run with: dune exec examples/cluster_nodes.exe *)

open Uldma_os
module C = Uldma.Cluster
module Kv = Uldma_workload.Kv_load
module Percentile = Uldma_obs.Percentile

let () =
  let nodes = 4 in
  let cluster = Uldma.Session.cluster_exn ~net:"gigabit" ~mech:"ext-shadow" ~nodes () in

  (* 1: instruction-level ring burst *)
  let words = 64 in
  for src = 0 to nodes - 1 do
    let kernel = C.node cluster src in
    let dst = (src + 1) mod nodes in
    let p = Kernel.spawn kernel ~name:(Printf.sprintf "ring%d" src) ~program:[||] () in
    let peer_ram = (Kernel.config (C.node cluster dst)).Kernel.ram_size in
    let vaddr =
      C.map_remote cluster ~src ~dst p
        ~remote_paddr:(peer_ram - Uldma_mem.Layout.page_size)
        ~n:1 ~perms:Uldma_mem.Perms.read_write
    in
    let open Uldma_cpu in
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm "loop" in
    Asm.li asm 10 vaddr;
    Asm.li asm 11 words;
    Asm.li asm 12 0;
    Asm.label asm loop;
    Asm.store asm ~base:10 ~off:0 12;
    Asm.add asm 10 10 (Isa.Imm 8);
    Asm.add asm 12 12 (Isa.Imm 1);
    Asm.blt asm 12 11 loop;
    Asm.halt asm;
    Process.set_program p (Asm.assemble asm)
  done;
  (match C.run cluster () with
  | C.All_exited -> ()
  | C.Max_steps | C.Predicate -> failwith "ring burst did not converge");
  let total = ref 0 in
  for i = 0 to nodes - 1 do
    total := !total + C.write_bytes_into cluster i
  done;
  Printf.printf "ring burst: %d nodes each stored %d words into their successor — %d bytes on\n"
    nodes words !total;
  Printf.printf "the mesh, co-simulation settled at %d ns\n\n" (C.now_ps cluster / 1000);

  (* 2: the KV service in miniature *)
  let params =
    { Kv.default_params with Kv.nodes; clients = 40; transfers = 5_000; seed = 3 }
  in
  let cal =
    match Kv.calibrate ~iterations:64 params.Kv.mech with
    | Ok c -> c
    | Error e -> failwith e
  in
  let net =
    match Uldma_net.Backend.of_string "gigabit" with Ok b -> b | Error e -> failwith e
  in
  let r = Kv.run params ~cal ~net in
  let us q = float_of_int (Percentile.percentile r.Kv.latency q) /. 1e6 in
  Printf.printf
    "kv service: %d clients, %d transfers (%d GET / %d PUT) over gigabit:\n" params.Kv.clients
    r.Kv.transfers r.Kv.gets r.Kv.puts;
  Printf.printf "  p50 %.1f us, p99 %.1f us, p999 %.1f us, %.0fk transfers/s, %.3f Gb/s\n"
    (us 0.50) (us 0.99) (us 0.999)
    (Kv.transfers_per_s r /. 1e3)
    (Kv.gbps r)
