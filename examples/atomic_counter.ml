(* Atomic counter: user-level atomic operations (paper sec. 3.5).

   Network interfaces that give a NOW a shared-memory abstraction
   (Telegraphos, SCI) offer atomic_add / compare_and_swap on memory.
   Four worker processes hammer one shared counter and one CAS-guarded
   slot, with every operation initiated FROM USER LEVEL through the
   extended-shadow atomic window — no system call, fully preemptible,
   and still exact.

   Run with: dune exec examples/atomic_counter.exe *)

open Uldma_mem
open Uldma_cpu
open Uldma_os
module Mech = Uldma.Mech

let workers = 4
let increments = 200

let () =
  print_endline "=== user-level atomic operations: shared counter ===\n";
  let s =
    Uldma.Session.create ~mech:"ext-shadow"
      ~config:
        {
          Kernel.default_config with
          Kernel.mechanism = Uldma_dma.Engine.Ext_shadow;
          backend = Kernel.Local { bytes_per_s = 1e9 };
          sched = Sched.Round_robin { quantum = 7 };
          ram_size = 128 * Layout.page_size;
        }
      ()
  in
  (* the atomic window needs host-level sharing between workers, so
     this example works through the session's kernel escape hatch *)
  let kernel = Uldma.Session.kernel s in

  (* the page owner allocates the shared words *)
  let owner = Kernel.spawn kernel ~name:"owner" ~program:[||] () in
  let shared = Kernel.alloc_pages kernel owner ~n:1 ~perms:Perms.read_write in
  Process.set_program owner (Asm.assemble_list [ Isa.Halt ]);
  let counter_off = 0 and winner_off = 8 in

  for w = 1 to workers do
    let p = Kernel.spawn kernel ~name:(Printf.sprintf "worker%d" w) ~program:[||] () in
    let page =
      Kernel.share_pages kernel ~from_process:owner ~vaddr:shared ~n:1 ~into:p
        ~perms:Perms.read_write
    in
    let prepared =
      Uldma.Atomic.prepare Uldma.Atomic.Ext_shadow_initiated kernel p
        ~region:{ Mech.vaddr = page; pages = 1 }
    in
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm "loop" in
    (* counter loop: increments x atomic_add(1) *)
    Asm.li asm 10 0;
    Asm.li asm 11 increments;
    Asm.li asm 5 1;
    Asm.label asm loop;
    Asm.li asm 1 (page + counter_off);
    prepared.Uldma.Atomic.emit_add asm ~operand:5;
    Asm.add asm 10 10 (Isa.Imm 1);
    Asm.blt asm 10 11 loop;
    (* leader election: CAS(winner: 0 -> my id); exactly one wins *)
    Asm.li asm 1 (page + winner_off);
    Asm.li asm 5 0;
    Asm.li asm 6 w;
    prepared.Uldma.Atomic.emit_cas asm ~expected:5 ~desired:6;
    Asm.halt asm;
    Process.set_program p (Asm.assemble asm)
  done;

  (match Kernel.run kernel ~max_steps:10_000_000 () with
  | Kernel.All_exited -> ()
  | _ -> failwith "workers did not finish");

  let counter = Kernel.read_user kernel owner (shared + counter_off) in
  let winner = Kernel.read_user kernel owner (shared + winner_off) in
  let counters = Uldma_dma.Engine.counters (Kernel.engine kernel) in
  Printf.printf "workers:            %d x %d atomic_add(1), preempted every 7 instructions\n"
    workers increments;
  Printf.printf "final counter:      %d (expected %d)%s\n" counter (workers * increments)
    (if counter = workers * increments then "  -- no lost updates" else "  -- LOST UPDATES!");
  Printf.printf "CAS leader:         worker %d (exactly one of %d CAS attempts won)\n" winner
    workers;
  Printf.printf "atomic ops served:  %d\n" counters.Uldma_dma.Engine.atomics;
  Printf.printf "context switches:   %d\n" (Kernel.context_switches kernel);
  Format.printf "simulated time:     %a@." Uldma_util.Units.pp_time (Kernel.now_ps kernel);
  print_endline
    "\nEvery operation was two uncached accesses through the atomic shadow window;\n\
     the kernel was never entered after setup (and never modified)."
