(* Pipeline: overlapping computation with communication.

   The reason cheap DMA initiation matters in a NOW is that a process
   can *keep computing* while the interface moves data. This example
   runs a double-buffered producer: in each round it launches the DMA
   of the buffer it just filled (two uncached accesses, ext-shadow) and
   immediately starts computing the next buffer, only polling the
   register context for completion when it needs the channel again.

   The same workload is then run serially (poll to completion right
   after each initiation) to show the overlap gain.

   Run with: dune exec examples/pipeline.exe *)

open Uldma_mem
open Uldma_cpu
open Uldma_os
module Mech = Uldma.Mech
module Session = Uldma.Session

let rounds = 16
let buffer_bytes = 8192
let compute_iterations = 2000

(* r10 round counter, r12/r13 buffer bases, r15 compute counter,
   r18 context-page pointer *)
let build_program ~overlap ~buf0 ~buf1 ~dst ~emit_dma =
  let asm = Asm.create () in
  let poll () =
    let again = Asm.fresh_label asm "poll" in
    Asm.label asm again;
    Asm.load asm 0 ~base:18 ~off:0;
    Asm.bne asm 0 Regfile.zero_reg again
  in
  let compute () =
    let loop = Asm.fresh_label asm "compute" in
    Asm.li asm 15 0;
    Asm.li asm 16 compute_iterations;
    Asm.label asm loop;
    Asm.add asm 14 14 (Isa.Imm 3);
    Asm.add asm 15 15 (Isa.Imm 1);
    Asm.blt asm 15 16 loop
  in
  Asm.li asm 10 0;
  Asm.li asm 11 rounds;
  Asm.li asm 12 buf0;
  Asm.li asm 13 buf1;
  Asm.li asm 18 Vm.context_page_va;
  let round = Asm.fresh_label asm "round" in
  Asm.label asm round;
  (* launch the DMA of the buffer for this round (alternating) *)
  Asm.and_ asm 19 10 (Isa.Imm 1);
  let use_buf1 = Asm.fresh_label asm "use_buf1" in
  let launched = Asm.fresh_label asm "launched" in
  Asm.bne asm 19 Regfile.zero_reg use_buf1;
  Asm.mov asm Mech.reg_vsrc 12;
  Asm.jmp asm launched;
  Asm.label asm use_buf1;
  Asm.mov asm Mech.reg_vsrc 13;
  Asm.label asm launched;
  Asm.li asm Mech.reg_vdst dst;
  Asm.li asm Mech.reg_size buffer_bytes;
  emit_dma asm;
  if not overlap then poll ();
  (* produce the next buffer while (in the overlapped version) the
     previous one is still on the wire *)
  compute ();
  if overlap then poll ();
  Asm.add asm 10 10 (Isa.Imm 1);
  Asm.blt asm 10 11 round;
  Asm.halt asm;
  Asm.assemble asm

let run ~overlap =
  let s =
    Session.create ~mech:"ext-shadow"
      ~config:
        {
          Kernel.default_config with
          Kernel.ram_size = 64 * Layout.page_size;
          (* a 19 MB/s wire: one 8 KiB buffer takes ~420 us *)
          backend = Kernel.Local { bytes_per_s = 19e6 };
        }
      ()
  in
  (* a 2-page source region holds both halves of the double buffer *)
  let p = Session.process s ~name:"producer" ~src_pages:2 ~dst_pages:1 () in
  let buf0 = p.Session.src.Mech.vaddr in
  let buf1 = buf0 + Layout.page_size in
  let dst = p.Session.dst.Mech.vaddr in
  Session.program s p
    (build_program ~overlap ~buf0 ~buf1 ~dst ~emit_dma:p.Session.emit_dma);
  Session.run_exn s ~max_steps:20_000_000;
  let transfers =
    List.length (Uldma_dma.Engine.transfers (Kernel.engine (Session.kernel s)))
  in
  (Uldma_util.Units.to_us (Session.now_ps s), transfers)

let () =
  print_endline "=== double-buffered producer: compute/communicate overlap ===\n";
  Printf.printf "%d rounds x (%d bytes on a 19 MB/s wire + %d compute iterations)\n\n" rounds
    buffer_bytes compute_iterations;
  let serial_us, serial_n = run ~overlap:false in
  let overlap_us, overlap_n = run ~overlap:true in
  Printf.printf "serial     (initiate, wait, compute): %8.1f us  (%d transfers)\n" serial_us
    serial_n;
  Printf.printf "overlapped (initiate, compute, wait): %8.1f us  (%d transfers)\n" overlap_us
    overlap_n;
  Printf.printf "overlap gain:                          %7.1f%%\n"
    (100.0 *. ((serial_us /. overlap_us) -. 1.0));
  print_endline
    "\nTwo-instruction initiation is what makes this overlap free: with an 18.6 us\n\
     syscall per launch the producer would burn the whole compute phase in the kernel."
