(* Quickstart: initiate one user-level DMA with the paper's fastest
   mechanism (extended shadow addressing, Fig. 4) and watch what
   happens — two uncached accesses, no system call, data moved.

   Run with: dune exec examples/quickstart.exe *)

open Uldma_os
module Mech = Uldma.Mech
module Session = Uldma.Session

let () =
  print_endline "=== uldma quickstart: extended shadow addressing ===\n";

  (* 1. Pick a mechanism and build a machine whose network interface
        speaks it. The default machine is the paper's: a 150 MHz Alpha
        with the NI on a 12.5 MHz TurboChannel; here we also give it a
        19 MB/s local backend so bytes actually move. *)
  let s =
    Session.create ~mech:"ext-shadow"
      ~preset:(Session.Local_backend { bytes_per_s = 19e6 })
      ()
  in

  (* 2. One call: spawn a process, give it source and destination
        buffers (one page each) plus a result page, and run the
        mechanism's setup — the OS allocates a register context and
        maps shadow aliases with ordinary mmap-style work. No kernel
        modification anywhere. *)
  let p = Session.process s ~name:"app" ~src_pages:1 ~dst_pages:1 () in
  let src = p.Session.src.Mech.vaddr and dst = p.Session.dst.Mech.vaddr in
  Printf.printf "buffers:      src = %#x, dst = %#x (virtual)\n" src dst;
  Printf.printf "context:      process got register context %s\n"
    (match p.Session.process.Process.dma_context with
    | Some c -> string_of_int c
    | None -> "-");
  Printf.printf "kernel:       modified? %b\n\n" (Kernel.kernel_modified (Session.kernel s));

  (* 3. Put a recognisable pattern in the source buffer. *)
  for i = 0 to 255 do
    Session.write s p (src + (8 * i)) (0xabc000 + i)
  done;

  (* 4. The user program: a single DMA(src, dst, 2048) through the
        2-access stub, then halt. *)
  Session.dma_once ~transfer_size:2048 s p;

  (* 5. Run the machine. *)
  Session.run_exn s ~max_steps:100_000;

  (* 6. Inspect. *)
  let status = Session.last_status s p in
  Printf.printf "status:       %d (bytes remaining at initiation; -1 would be failure)\n" status;
  Printf.printf "moved:        dst[0] = %#x, dst[255] = %#x\n" (Session.read s p dst)
    (Session.read s p (dst + (8 * 255)));
  List.iter
    (fun tr -> Format.printf "transfer:     %a@." Uldma_dma.Transfer.pp tr)
    (Uldma_dma.Engine.transfers (Kernel.engine (Session.kernel s)));
  Format.printf "elapsed:      %a of simulated time@." Uldma_util.Units.pp_time (Session.now_ps s);
  print_endline "\nThe whole initiation was: STORE size TO shadow(dst); LOAD status FROM shadow(src).";
  print_endline "Compare: dune exec bin/uldma_cli.exe -- run table1"
