(** Histogram-backed percentile estimation (HDR-histogram style).

    {!Counters}'s power-of-two histograms are fine for order-of-
    magnitude summaries but far too coarse for tail latency: a p999
    read off octave buckets can be off by 2x. This reporter subdivides
    every octave into [2^sub_bits] linear sub-buckets, bounding the
    relative quantisation error at [2^-sub_bits] (~3% at the default
    [sub_bits = 5]) while keeping memory constant (~2 KB) and
    [record] O(1) — the shape every production latency pipeline uses.

    Values below [2^sub_bits], and more generally any bucket of width
    1, are recorded {e exactly}. Percentiles use the nearest-rank
    definition and report the bucket's upper bound (clamped to the
    observed maximum), so estimates never understate the tail. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] in [0..16], default 5. *)

val sub_bits : t -> int

val max_relative_error : t -> float
(** [2^-sub_bits]: an estimate [e] for a true value [v] satisfies
    [v <= e <= v * (1 + max_relative_error)] (before clamping). *)

val record : t -> int -> unit
(** Record one value (negative values clamp to 0). O(1). *)

val count : t -> int
val total : t -> int
(** Sum of recorded values (exact, not bucketised). *)

val min_value : t -> int
val max_value : t -> int
(** Exact observed extremes; 0 when empty. *)

val mean : t -> float
(** Exact mean ([total / count]); 0 when empty. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [0..1]: the upper bound of the bucket
    holding the nearest-rank [ceil (q * count)]-th smallest value,
    clamped to [max_value t]. [percentile t 1.0 = max_value t]; 0 when
    empty. O(buckets). *)

val merge_into : dst:t -> t -> unit
(** Add [t]'s observations into [dst]. Raises [Invalid_argument] if
    the two differ in [sub_bits]. *)

val bucket_bounds : t -> int -> int * int
(** [(lower, upper)] of the bucket a value falls into (the quantisation
    a [record] of that value suffers). Exposed for the property
    tests. *)
