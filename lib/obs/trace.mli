(** Structured event tracing for the whole simulated machine.

    Every layer of the simulator (bus, cpu, os, dma, net, verify) can
    stamp typed events into a {!t} sink. An event carries the simulated
    time in picoseconds, a machine id (one per kernel instance; duplex
    and cluster runs have several), the pid on whose behalf the event
    happened ([-1] for the kernel itself), and a typed {!kind} payload.

    Cost contract: when a sink is disabled ({!enabled} is [false] —
    the default, and always true of {!null}), the per-event cost in
    instrumented code is a single load-and-branch; no event record is
    allocated. Enabled sinks append into a capped ring buffer: the
    newest [cap] events are retained and {!dropped} counts the rest, so
    tracing a long run cannot exhaust memory. *)

type layer = Bus | Cpu | Os | Dma | Net | Verify

type kind =
  | Instr_retired of { opcode : string }
  | Uncached_access of { op : [ `Load | `Store ]; paddr : int; value : int }
  | Wbuf_collapse of { paddr : int }
  | Wbuf_flush of { drained : int }
  | Syscall_enter of { sysno : int }
  | Syscall_exit of { sysno : int }
  | Ctx_switch of { from_pid : int; to_pid : int }
  | Pal_enter of { index : int }
  | Pal_exit of { index : int }
  | Engine_decode of { paddr : int }
  | Engine_match of { step : int }
  | Engine_reject of { reason : string }
  | Iotlb_miss of { vpage : int }
  | Iotlb_fill of { vpage : int }
  | Cap_check of { cap : int; ok : bool }
  | Transfer_start of { src : int; dst : int; size : int; duration : int }
  | Transfer_complete of { src : int; dst : int; size : int }
  | Packet_tx of { dst_paddr : int; bytes : int }
  | Packet_rx of { dst_paddr : int; bytes : int }
  | Oracle_violation of { detail : string }
  | Explorer_fork of { depth : int }
  | Explorer_prune of { depth : int; reason : string }
  | Explorer_steal of { depth : int }
      (** a worker domain popped a subtree root off the shared deque *)
  | Explorer_dedup of { depth : int }
      (** exploration reached an already-expanded engine-visible state *)

type record = { at : Uldma_util.Units.ps; machine : int; pid : int; kind : kind }

type t

val create : ?cap:int -> unit -> t
(** A fresh, enabled sink retaining at most [cap] events (default
    262144). *)

val null : t
(** The shared always-disabled sink. Every kernel starts wired to this
    unless an ambient sink is installed; emitting to it is a no-op. *)

val enabled : t -> bool
(** Cheap guard; instrumented code must test this before building an
    event payload. *)

val set_enabled : t -> bool -> unit
(** Pause/resume recording on a sink created with {!create}. Raises
    [Invalid_argument] on {!null}. *)

val emit : t -> at:Uldma_util.Units.ps -> machine:int -> pid:int -> kind -> unit
(** Record one event (no-op when disabled). *)

val events : t -> record list
(** The retained window, oldest first. *)

val total : t -> int
(** Events emitted since creation (or {!clear}), including dropped. *)

val dropped : t -> int
(** Events that fell out of the retained window. *)

val clear : t -> unit

val absorb : t -> t -> unit
(** [absorb dst src] appends [src]'s retained events (oldest first)
    into [dst] and carries over [src]'s drop count. Used by the
    parallel explorer to merge per-domain sinks into the root sink
    under a lock. Raises [Invalid_argument] on {!null} as [dst]. *)

val register_machine : t -> int
(** Allocate the next machine id (0, 1, 2, ...) for a kernel attached
    to this sink. On a disabled sink always returns 0 so that untraced
    runs are deterministic. *)

val ambient : unit -> t
(** The process-global default sink picked up by [Kernel.create];
    {!null} unless {!set_ambient} installed another. *)

val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run a thunk with the given ambient sink, restoring the previous one
    (even on exceptions). *)

val layer_of_kind : kind -> layer
val layer_name : layer -> string
val kind_name : kind -> string

val pp_record : Format.formatter -> record -> unit
