(** Named monotonic counters and simulated-time histograms.

    A registry is a flat namespace of ["layer.name"] keys. Counters are
    plain monotonic ints ({!incr}/{!add}); histograms record value
    distributions (e.g. initiation latency in ps, retry counts) in
    power-of-two buckets so that storage is O(log max) regardless of
    sample count.

    [Kernel.counter_snapshot] builds one of these from a kernel's live
    state, giving every layer's accounting a uniform surface without
    changing the O(1) per-event counters the explorer relies on. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val value : t -> string -> int
(** Current value of a counter; 0 if never touched. *)

val observe : t -> string -> int -> unit
(** Record one sample into the named histogram. Negative samples clamp
    to 0. *)

type summary = { count : int; sum : int; min : int; max : int; mean : float }

val summarize : t -> string -> summary option
(** Summary of a histogram; [None] if it has no samples. *)

val buckets : t -> string -> (int * int) list
(** Histogram buckets as [(upper_bound, count)] pairs for non-empty
    power-of-two buckets, ascending. *)

val counter_names : t -> string list
(** Sorted. *)

val histogram_names : t -> string list
(** Sorted. *)

val merge_into : dst:t -> t -> unit
(** Add every counter and histogram of the source into [dst]. *)

val rows : t -> (string * string) list
(** Rendered [(name, value)] pairs: counters first, then histogram
    summaries, both sorted by name. *)

val to_table : ?title:string -> t -> Uldma_util.Tbl.t
