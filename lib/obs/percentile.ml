(* Sub-bucketed logarithmic histogram. Bucket index of a value v with
   m = sub_bits, base = 2^m:

     v < base            -> v                      (width-1, exact)
     v >= base, p = msb v -> (p-m)*base + (v >> (p-m))

   i.e. each octave [2^p, 2^(p+1)) splits into [base] linear buckets of
   width 2^(p-m); the two cases agree on [base, 2*base). Indices are
   dense, so the whole structure is one flat int array. *)

type t = {
  sub_bits : int;
  base : int;
  buckets : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(sub_bits = 5) () =
  if sub_bits < 0 || sub_bits > 16 then invalid_arg "Percentile.create: sub_bits must be in 0..16";
  let base = 1 lsl sub_bits in
  {
    sub_bits;
    base;
    buckets = Array.make ((64 - sub_bits) * base) 0;
    count = 0;
    total = 0;
    min_v = 0;
    max_v = 0;
  }

let sub_bits t = t.sub_bits
let max_relative_error t = 1.0 /. float_of_int t.base

let msb v =
  (* position of the highest set bit; v > 0 *)
  let p = ref 0 in
  let x = ref v in
  while !x > 1 do
    incr p;
    x := !x lsr 1
  done;
  !p

let index_of t v =
  if v < t.base then v
  else
    let k = msb v - t.sub_bits in
    (k * t.base) + (v lsr k)

let bounds_of_index t i =
  if i < t.base then (i, i)
  else begin
    let k = (i / t.base) - 1 in
    let lower = (i - (k * t.base)) lsl k in
    (lower, lower + (1 lsl k) - 1)
  end

let bucket_bounds t v = bounds_of_index t (index_of t (max v 0))

let record t v =
  let v = max v 0 in
  t.buckets.(index_of t v) <- t.buckets.(index_of t v) + 1;
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.total <- t.total + v

let count t = t.count
let total t = t.total
let min_value t = t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let percentile t q =
  if t.count = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let rank = min rank t.count in
    let cum = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to Array.length t.buckets - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           result := snd (bounds_of_index t i);
           raise Exit
         end
       done
     with Exit -> ());
    min !result t.max_v
  end

let merge_into ~dst src =
  if dst.sub_bits <> src.sub_bits then
    invalid_arg "Percentile.merge_into: sub_bits mismatch";
  if src.count > 0 then begin
    Array.iteri (fun i n -> if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
    if dst.count = 0 then begin
      dst.min_v <- src.min_v;
      dst.max_v <- src.max_v
    end
    else begin
      dst.min_v <- min dst.min_v src.min_v;
      dst.max_v <- max dst.max_v src.max_v
    end;
    dst.count <- dst.count + src.count;
    dst.total <- dst.total + src.total
  end
