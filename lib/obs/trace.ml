type layer = Bus | Cpu | Os | Dma | Net | Verify

type kind =
  | Instr_retired of { opcode : string }
  | Uncached_access of { op : [ `Load | `Store ]; paddr : int; value : int }
  | Wbuf_collapse of { paddr : int }
  | Wbuf_flush of { drained : int }
  | Syscall_enter of { sysno : int }
  | Syscall_exit of { sysno : int }
  | Ctx_switch of { from_pid : int; to_pid : int }
  | Pal_enter of { index : int }
  | Pal_exit of { index : int }
  | Engine_decode of { paddr : int }
  | Engine_match of { step : int }
  | Engine_reject of { reason : string }
  | Iotlb_miss of { vpage : int }
  | Iotlb_fill of { vpage : int }
  | Cap_check of { cap : int; ok : bool }
  | Transfer_start of { src : int; dst : int; size : int; duration : int }
  | Transfer_complete of { src : int; dst : int; size : int }
  | Packet_tx of { dst_paddr : int; bytes : int }
  | Packet_rx of { dst_paddr : int; bytes : int }
  | Oracle_violation of { detail : string }
  | Explorer_fork of { depth : int }
  | Explorer_prune of { depth : int; reason : string }
  | Explorer_steal of { depth : int }
  | Explorer_dedup of { depth : int }

type record = { at : Uldma_util.Units.ps; machine : int; pid : int; kind : kind }

type t = {
  mutable enabled : bool;
  permanent_off : bool; (* the [null] singleton; set_enabled rejects it *)
  cap : int;
  mutable buf : record array; (* ring, grows geometrically up to cap *)
  mutable total : int;
  mutable next_machine : int;
}

let default_cap = 262_144

let create ?(cap = default_cap) () =
  if cap < 1 then invalid_arg "Trace.create: cap must be positive";
  { enabled = true; permanent_off = false; cap; buf = [||]; total = 0; next_machine = 0 }

let null = { enabled = false; permanent_off = true; cap = 1; buf = [||]; total = 0; next_machine = 0 }

let enabled t = t.enabled

let set_enabled t v =
  if t.permanent_off then invalid_arg "Trace.set_enabled: the null sink stays disabled";
  t.enabled <- v

let grow t =
  let cur = Array.length t.buf in
  let want = min t.cap (max 64 (cur * 2)) in
  if want > cur then begin
    (* [t.total <= cur] here: we only grow before wraparound, so the
       live events are exactly [buf.[0..total-1]] in order. *)
    let nbuf = Array.make want t.buf.(0) in
    Array.blit t.buf 0 nbuf 0 cur;
    t.buf <- nbuf
  end

let emit t ~at ~machine ~pid kind =
  if t.enabled then begin
    let r = { at; machine; pid; kind } in
    let len = Array.length t.buf in
    if len = 0 then t.buf <- Array.make (min t.cap 64) r
    else if t.total >= len && len < t.cap then grow t;
    t.buf.(t.total mod Array.length t.buf) <- r;
    t.total <- t.total + 1
  end

let total t = t.total
let dropped t = max 0 (t.total - Array.length t.buf)

let events t =
  let len = Array.length t.buf in
  if len = 0 then []
  else begin
    let n = min t.total len in
    let first = t.total - n in
    List.init n (fun i -> t.buf.((first + i) mod len))
  end

let clear t =
  t.buf <- [||];
  t.total <- 0

let register_machine t =
  if not t.enabled then 0
  else begin
    let id = t.next_machine in
    t.next_machine <- id + 1;
    id
  end

(* Merge the events retained by [src] into [dst], preserving order
   (dst's then src's) and accounting for src's drops. The parallel
   explorer gives each worker domain a private sink and absorbs them
   into the root sink under a lock at the end of the run. *)
let absorb dst src =
  if dst.permanent_off then invalid_arg "Trace.absorb: the null sink cannot absorb";
  List.iter (fun r -> emit dst ~at:r.at ~machine:r.machine ~pid:r.pid r.kind) (events src);
  dst.total <- dst.total + dropped src

let ambient_sink = ref null
let ambient () = !ambient_sink
let set_ambient t = ambient_sink := t

let with_ambient t f =
  let prev = !ambient_sink in
  ambient_sink := t;
  Fun.protect ~finally:(fun () -> ambient_sink := prev) f

let layer_of_kind = function
  | Uncached_access _ | Wbuf_collapse _ | Wbuf_flush _ -> Bus
  | Instr_retired _ | Pal_enter _ | Pal_exit _ -> Cpu
  | Syscall_enter _ | Syscall_exit _ | Ctx_switch _ -> Os
  | Engine_decode _ | Engine_match _ | Engine_reject _ | Iotlb_miss _ | Iotlb_fill _
  | Cap_check _ | Transfer_start _ | Transfer_complete _ ->
    Dma
  | Packet_tx _ | Packet_rx _ -> Net
  | Oracle_violation _ | Explorer_fork _ | Explorer_prune _ | Explorer_steal _ | Explorer_dedup _
    ->
    Verify

let layer_name = function
  | Bus -> "bus"
  | Cpu -> "cpu"
  | Os -> "os"
  | Dma -> "dma"
  | Net -> "net"
  | Verify -> "verify"

let kind_name = function
  | Instr_retired _ -> "instr_retired"
  | Uncached_access _ -> "uncached_access"
  | Wbuf_collapse _ -> "wbuf_collapse"
  | Wbuf_flush _ -> "wbuf_flush"
  | Syscall_enter _ -> "syscall_enter"
  | Syscall_exit _ -> "syscall_exit"
  | Ctx_switch _ -> "ctx_switch"
  | Pal_enter _ -> "pal_enter"
  | Pal_exit _ -> "pal_exit"
  | Engine_decode _ -> "engine_decode"
  | Engine_match _ -> "engine_match"
  | Engine_reject _ -> "engine_reject"
  | Iotlb_miss _ -> "iotlb_miss"
  | Iotlb_fill _ -> "iotlb_fill"
  | Cap_check _ -> "cap_check"
  | Transfer_start _ -> "transfer_start"
  | Transfer_complete _ -> "transfer_complete"
  | Packet_tx _ -> "packet_tx"
  | Packet_rx _ -> "packet_rx"
  | Oracle_violation _ -> "oracle_violation"
  | Explorer_fork _ -> "explorer_fork"
  | Explorer_prune _ -> "explorer_prune"
  | Explorer_steal _ -> "explorer_steal"
  | Explorer_dedup _ -> "explorer_dedup"

let pp_args ppf = function
  | Instr_retired { opcode } -> Fmt.pf ppf "opcode=%s" opcode
  | Uncached_access { op; paddr; value } ->
    Fmt.pf ppf "%s %#x value=%#x" (match op with `Load -> "load" | `Store -> "store") paddr value
  | Wbuf_collapse { paddr } -> Fmt.pf ppf "paddr=%#x" paddr
  | Wbuf_flush { drained } -> Fmt.pf ppf "drained=%d" drained
  | Syscall_enter { sysno } | Syscall_exit { sysno } -> Fmt.pf ppf "sysno=%d" sysno
  | Ctx_switch { from_pid; to_pid } -> Fmt.pf ppf "%d -> %d" from_pid to_pid
  | Pal_enter { index } | Pal_exit { index } -> Fmt.pf ppf "slot=%d" index
  | Engine_decode { paddr } -> Fmt.pf ppf "paddr=%#x" paddr
  | Engine_match { step } -> Fmt.pf ppf "step=%d" step
  | Engine_reject { reason } -> Fmt.pf ppf "reason=%s" reason
  | Iotlb_miss { vpage } | Iotlb_fill { vpage } -> Fmt.pf ppf "vpage=%#x" vpage
  | Cap_check { cap; ok } -> Fmt.pf ppf "cap=%#x %s" cap (if ok then "ok" else "denied")
  | Transfer_start { src; dst; size; duration } ->
    Fmt.pf ppf "%#x -> %#x (%d B, %d ps)" src dst size duration
  | Transfer_complete { src; dst; size } -> Fmt.pf ppf "%#x -> %#x (%d B)" src dst size
  | Packet_tx { dst_paddr; bytes } | Packet_rx { dst_paddr; bytes } ->
    Fmt.pf ppf "dst=%#x (%d B)" dst_paddr bytes
  | Oracle_violation { detail } -> Fmt.pf ppf "%s" detail
  | Explorer_fork { depth } -> Fmt.pf ppf "depth=%d" depth
  | Explorer_prune { depth; reason } -> Fmt.pf ppf "depth=%d reason=%s" depth reason
  | Explorer_steal { depth } -> Fmt.pf ppf "depth=%d" depth
  | Explorer_dedup { depth } -> Fmt.pf ppf "depth=%d" depth

let pp_record ppf r =
  Fmt.pf ppf "[%a m%d pid%d] %s/%s %a" Uldma_util.Units.pp_time r.at r.machine r.pid
    (layer_name (layer_of_kind r.kind))
    (kind_name r.kind) pp_args r.kind
