let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Event payload as a JSON object body (no braces), shared by both
   textual formats. *)
let args_body (kind : Trace.kind) =
  match kind with
  | Instr_retired { opcode } -> Printf.sprintf {|"opcode":"%s"|} (json_escape opcode)
  | Uncached_access { op; paddr; value } ->
    Printf.sprintf {|"op":"%s","paddr":%d,"value":%d|}
      (match op with `Load -> "load" | `Store -> "store")
      paddr value
  | Wbuf_collapse { paddr } -> Printf.sprintf {|"paddr":%d|} paddr
  | Wbuf_flush { drained } -> Printf.sprintf {|"drained":%d|} drained
  | Syscall_enter { sysno } | Syscall_exit { sysno } -> Printf.sprintf {|"sysno":%d|} sysno
  | Ctx_switch { from_pid; to_pid } ->
    Printf.sprintf {|"from_pid":%d,"to_pid":%d|} from_pid to_pid
  | Pal_enter { index } | Pal_exit { index } -> Printf.sprintf {|"index":%d|} index
  | Engine_decode { paddr } -> Printf.sprintf {|"paddr":%d|} paddr
  | Engine_match { step } -> Printf.sprintf {|"step":%d|} step
  | Engine_reject { reason } -> Printf.sprintf {|"reason":"%s"|} (json_escape reason)
  | Iotlb_miss { vpage } | Iotlb_fill { vpage } -> Printf.sprintf {|"vpage":%d|} vpage
  | Cap_check { cap; ok } -> Printf.sprintf {|"cap":%d,"ok":%b|} cap ok
  | Transfer_start { src; dst; size; duration } ->
    Printf.sprintf {|"src":%d,"dst":%d,"size":%d,"duration_ps":%d|} src dst size duration
  | Transfer_complete { src; dst; size } ->
    Printf.sprintf {|"src":%d,"dst":%d,"size":%d|} src dst size
  | Packet_tx { dst_paddr; bytes } | Packet_rx { dst_paddr; bytes } ->
    Printf.sprintf {|"dst_paddr":%d,"bytes":%d|} dst_paddr bytes
  | Oracle_violation { detail } -> Printf.sprintf {|"detail":"%s"|} (json_escape detail)
  | Explorer_fork { depth } | Explorer_steal { depth } | Explorer_dedup { depth } ->
    Printf.sprintf {|"depth":%d|} depth
  | Explorer_prune { depth; reason } ->
    Printf.sprintf {|"depth":%d,"reason":"%s"|} depth (json_escape reason)

let write_jsonl oc trace =
  List.iter
    (fun (r : Trace.record) ->
      Printf.fprintf oc {|{"at_ps":%d,"machine":%d,"pid":%d,"layer":"%s","kind":"%s","args":{%s}}|}
        r.Trace.at r.Trace.machine r.Trace.pid
        (Trace.layer_name (Trace.layer_of_kind r.Trace.kind))
        (Trace.kind_name r.Trace.kind) (args_body r.Trace.kind);
      output_char oc '\n')
    (Trace.events trace)

(* ps -> Chrome "ts" (microseconds, fractional). Emitted with enough
   digits that picosecond ordering survives the round-trip. *)
let chrome_ts ps = Printf.sprintf "%.6f" (float_of_int ps /. 1e6)

let sorted_events trace =
  (* Stable sort by timestamp: transfers stamp their completion in the
     future, so emission order alone is not time order. *)
  List.stable_sort
    (fun (a : Trace.record) (b : Trace.record) -> compare a.Trace.at b.Trace.at)
    (Trace.events trace)

let write_chrome oc trace =
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i (r : Trace.record) ->
      if i > 0 then output_string oc ",";
      output_string oc "\n";
      let ph, dur =
        match r.Trace.kind with
        | Transfer_start { duration; _ } -> ("X", Printf.sprintf {|,"dur":%s|} (chrome_ts duration))
        | _ -> ("i", "")
      in
      let scope = if ph = "i" then {|,"s":"t"|} else "" in
      Printf.fprintf oc
        {|{"name":"%s","cat":"%s","ph":"%s"%s%s,"ts":%s,"pid":%d,"tid":%d,"args":{%s}}|}
        (Trace.kind_name r.Trace.kind)
        (Trace.layer_name (Trace.layer_of_kind r.Trace.kind))
        ph dur scope (chrome_ts r.Trace.at) r.Trace.machine r.Trace.pid (args_body r.Trace.kind))
    (sorted_events trace);
  output_string oc "\n],\"displayTimeUnit\":\"ns\"}\n"

let to_file fmt path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> match fmt with `Jsonl -> write_jsonl oc trace | `Chrome -> write_chrome oc trace)

let summary trace =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (r : Trace.record) ->
      let key =
        (Trace.layer_name (Trace.layer_of_kind r.Trace.kind), Trace.kind_name r.Trace.kind)
      in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    (Trace.events trace);
  let rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  let out =
    Uldma_util.Tbl.create ~title:"trace summary (events per layer)"
      ~columns:
        [
          ("layer", Uldma_util.Tbl.Left);
          ("event", Uldma_util.Tbl.Left);
          ("count", Uldma_util.Tbl.Right);
        ]
  in
  List.iter
    (fun ((layer, kind), n) -> Uldma_util.Tbl.add_row out [ layer; kind; string_of_int n ])
    rows;
  if Trace.dropped trace > 0 then
    Uldma_util.Tbl.add_row out [ "(all)"; "dropped (ring overflow)"; string_of_int (Trace.dropped trace) ];
  out
