(** Trace exporters.

    Three formats:
    - JSONL — one JSON object per line per event, in emission order;
    - Chrome [trace_event] — a ["traceEvents"] array loadable in
      chrome://tracing or Perfetto (machine id becomes the Chrome
      "pid", the simulated pid the "tid", the layer the category;
      transfers become duration ["X"] events, everything else instant
      ["i"] events). Events are stably sorted by timestamp first, so
      future-stamped completions keep per-machine timestamps monotone;
    - an ASCII per-layer summary table. *)

val write_jsonl : out_channel -> Trace.t -> unit
val write_chrome : out_channel -> Trace.t -> unit

val to_file : [ `Jsonl | `Chrome ] -> string -> Trace.t -> unit
(** Write the trace to a fresh file at the given path. *)

val summary : Trace.t -> Uldma_util.Tbl.t
(** Per-layer event-kind counts, plus a dropped-events row when the
    ring overflowed. *)
