type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array; (* bucket i counts samples in (2^(i-1), 2^i]; bucket 0 is [0;1] *)
}

type t = { counters : (string, int ref) Hashtbl.t; hists : (string, hist) Hashtbl.t }

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let value t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let n_buckets = 63

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = { h_count = 0; h_sum = 0; h_min = max_int; h_max = 0; buckets = Array.make n_buckets 0 } in
    Hashtbl.add t.hists name h;
    h

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and x = ref (v - 1) in
    while !x > 0 do
      Stdlib.incr i;
      x := !x lsr 1
    done;
    min (n_buckets - 1) !i
  end

let observe t name v =
  let v = max 0 v in
  let h = hist t name in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

type summary = { count : int; sum : int; min : int; max : int; mean : float }

let summarize t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h ->
    if h.h_count = 0 then None
    else
      Some
        {
          count = h.h_count;
          sum = h.h_sum;
          min = h.h_min;
          max = h.h_max;
          mean = float_of_int h.h_sum /. float_of_int h.h_count;
        }

let buckets t name =
  match Hashtbl.find_opt t.hists name with
  | None -> []
  | Some h ->
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.buckets.(i) > 0 then out := ((if i = 0 then 1 else 1 lsl i), h.buckets.(i)) :: !out
    done;
    !out

let sorted_keys tbl = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
let counter_names t = sorted_keys t.counters
let histogram_names t = sorted_keys t.hists

let merge_into ~dst src =
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter
    (fun name h ->
      let d = hist dst name in
      d.h_count <- d.h_count + h.h_count;
      d.h_sum <- d.h_sum + h.h_sum;
      if h.h_count > 0 then begin
        if h.h_min < d.h_min then d.h_min <- h.h_min;
        if h.h_max > d.h_max then d.h_max <- h.h_max
      end;
      Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) + n) h.buckets)
    src.hists

let rows t =
  let cs = List.map (fun name -> (name, string_of_int (value t name))) (counter_names t) in
  let hs =
    List.filter_map
      (fun name ->
        match summarize t name with
        | None -> None
        | Some s ->
          Some
            ( name,
              Printf.sprintf "n=%d mean=%.1f min=%d max=%d" s.count s.mean s.min s.max ))
      (histogram_names t)
  in
  cs @ hs

let to_table ?(title = "counters") t =
  let tbl =
    Uldma_util.Tbl.create ~title
      ~columns:[ ("counter", Uldma_util.Tbl.Left); ("value", Uldma_util.Tbl.Right) ]
  in
  List.iter (fun (name, v) -> Uldma_util.Tbl.add_row tbl [ name; v ]) (rows t);
  tbl
