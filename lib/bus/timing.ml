open Uldma_util

type t = {
  name : string;
  cpu_hz : int;
  bus_hz : int;
  uncached_store_bus_cycles : int;
  uncached_load_bus_cycles : int;
  cached_access_cpu_cycles : int;
  instruction_cpu_cycles : int;
  memory_barrier_cpu_cycles : int;
  syscall_cpu_cycles : int;
  translate_cpu_cycles : int;
  check_size_cpu_cycles : int;
  context_switch_cpu_cycles : int;
  pal_call_cpu_cycles : int;
  tlb_miss_cpu_cycles : int;
  iotlb_walk_bus_cycles : int;
  dma_setup_ps : Units.ps;
}

let alpha3000_300 =
  {
    name = "alpha3000/300 + TurboChannel 12.5MHz";
    cpu_hz = 150_000_000;
    bus_hz = 12_500_000;
    uncached_store_bus_cycles = 7;
    uncached_load_bus_cycles = 5;
    cached_access_cpu_cycles = 1;
    instruction_cpu_cycles = 2;
    memory_barrier_cpu_cycles = 5;
    syscall_cpu_cycles = 2300;
    translate_cpu_cycles = 60;
    check_size_cpu_cycles = 40;
    context_switch_cpu_cycles = 600;
    pal_call_cpu_cycles = 30;
    tlb_miss_cpu_cycles = 30;
    (* IOMMU page-table walk: two dependent memory reads over the I/O
       bus plus compare/merge — comparable to an uncached load pair *)
    iotlb_walk_bus_cycles = 12;
    dma_setup_ps = Units.ns 400.0;
  }

let pci33 =
  { alpha3000_300 with name = "alpha + PCI 33MHz"; bus_hz = 33_000_000 }

let pci66 =
  { alpha3000_300 with name = "alpha + PCI 66MHz"; bus_hz = 66_000_000 }

let modern =
  {
    alpha3000_300 with
    name = "2GHz CPU + PCI 66MHz";
    cpu_hz = 2_000_000_000;
    bus_hz = 66_000_000;
    syscall_cpu_cycles = 4500;
    context_switch_cpu_cycles = 2000;
  }

let with_bus_hz t hz = { t with name = Printf.sprintf "%s @bus %dMHz" t.name (hz / 1_000_000); bus_hz = hz }

let with_syscall_cycles t c = { t with syscall_cpu_cycles = c }

let cpu_cycle_ps t = Units.cycle_ps ~hz:t.cpu_hz
let bus_cycle_ps t = Units.cycle_ps ~hz:t.bus_hz

let cpu t n = n * cpu_cycle_ps t
let bus t n = n * bus_cycle_ps t

let instruction_ps t = cpu t t.instruction_cpu_cycles
let cached_access_ps t = cpu t t.cached_access_cpu_cycles

let uncached_ps t op =
  match (op : Txn.op) with
  | Txn.Store -> bus t t.uncached_store_bus_cycles
  | Txn.Load -> bus t t.uncached_load_bus_cycles

let memory_barrier_ps t = cpu t t.memory_barrier_cpu_cycles
let syscall_ps t = cpu t t.syscall_cpu_cycles
let translate_ps t = cpu t t.translate_cpu_cycles
let check_size_ps t = cpu t t.check_size_cpu_cycles
let context_switch_ps t = cpu t t.context_switch_cpu_cycles
let pal_call_ps t = cpu t t.pal_call_cpu_cycles
let tlb_miss_ps t = cpu t t.tlb_miss_cpu_cycles
let iotlb_walk_ps t = bus t t.iotlb_walk_bus_cycles
