type mode = Ordered | Bypass of { forward : bool; collapse : bool }

type event = Collapsed of { paddr : int } | Drained of { count : int }

type t = {
  mode : mode;
  capacity : int;
  mutable queue : (int * int) list; (* oldest first *)
  mutable observer : (event -> unit) option;
}

let create ?(capacity = 4) mode =
  if capacity < 1 then invalid_arg "Write_buffer.create: capacity < 1";
  { mode; capacity; queue = []; observer = None }

let copy t = { t with queue = t.queue; observer = None }

let set_observer t f = t.observer <- Some f

let notify t ev = match t.observer with Some f -> f ev | None -> ()

let mode t = t.mode

let pending t = t.queue

let drain_all t emit =
  let n = List.length t.queue in
  List.iter (fun (paddr, value) -> emit ~paddr ~value) t.queue;
  t.queue <- [];
  if n > 0 then notify t (Drained { count = n })

let store t ~emit ~paddr ~value =
  match t.mode with
  | Ordered -> emit ~paddr ~value
  | Bypass { collapse; _ } ->
    let collapsed =
      collapse && List.exists (fun (p, _) -> p = paddr) t.queue
    in
    if collapsed then begin
      t.queue <- List.map (fun (p, v) -> if p = paddr then (p, value) else (p, v)) t.queue;
      notify t (Collapsed { paddr })
    end
    else begin
      t.queue <- t.queue @ [ (paddr, value) ];
      if List.length t.queue > t.capacity then
        match t.queue with
        | (p, v) :: rest ->
          t.queue <- rest;
          emit ~paddr:p ~value:v
        | [] -> ()
    end

let load t ~paddr =
  match t.mode with
  | Ordered -> `To_bus
  | Bypass { forward; _ } ->
    if not forward then `To_bus
    else begin
      (* most recent buffered store to this address wins *)
      let hit =
        List.fold_left
          (fun acc (p, v) -> if p = paddr then Some v else acc)
          None t.queue
      in
      match hit with Some v -> `Forwarded v | None -> `To_bus
    end

let barrier t ~emit = drain_all t emit

let flush t ~emit = drain_all t emit
