(** The calibrated cost model.

    Every simulated action is charged a duration derived from a
    [Timing.t]. The default preset, [alpha3000_300], models the paper's
    evaluation platform — a DEC Alpha 3000 model 300 (150 MHz 21064)
    whose TurboChannel I/O bus, and the prototype FPGA board on it, run
    at 12.5 MHz — and is calibrated from the two anchors the paper
    gives: an empty system call costs thousands of CPU cycles (we use
    2300, inside the 1000-5000 range of [McVoy & Staelin 96] quoted in
    §2.2), and one uncached crossing of the 12.5 MHz bus costs a
    handful of 80 ns bus cycles (stores 7, loads 5), which reproduces
    Table 1's 1.1 / 2.3 / 2.6 / 18.6 µs split.

    §3.4's closing remark — "recent buses, like the PCI bus, run at
    frequencies as high as 66 MHz" — is covered by the [pci33] /
    [pci66] presets used in the bus-sweep benchmark. *)

type t = {
  name : string;
  cpu_hz : int;
  bus_hz : int;
  uncached_store_bus_cycles : int;
  uncached_load_bus_cycles : int;
  cached_access_cpu_cycles : int; (** cache-hit load/store *)
  instruction_cpu_cycles : int; (** base cost of any instruction *)
  memory_barrier_cpu_cycles : int;
  syscall_cpu_cycles : int; (** trap + kernel entry/exit (empty syscall) *)
  translate_cpu_cycles : int; (** kernel software translation, per address *)
  check_size_cpu_cycles : int; (** kernel protection check over a range *)
  context_switch_cpu_cycles : int;
  pal_call_cpu_cycles : int; (** CALL_PAL dispatch + return *)
  tlb_miss_cpu_cycles : int;
  iotlb_walk_bus_cycles : int;
      (** IOMMU table walk serviced by the engine on an IOTLB miss *)
  dma_setup_ps : Uldma_util.Units.ps; (** engine latency before wire time *)
}

val alpha3000_300 : t
(** The paper's platform: 150 MHz CPU, 12.5 MHz TurboChannel. *)

val pci33 : t
val pci66 : t
val modern : t
(** A 2 GHz CPU on a 66 MHz bus — for "soon, the OS overhead will
    dominate" projections. *)

val with_bus_hz : t -> int -> t
(** Same machine, different bus frequency (bus-sweep experiments). *)

val with_syscall_cycles : t -> int -> t
(** Same machine, different OS-entry cost (OS-overhead sweep). *)

val cpu_cycle_ps : t -> Uldma_util.Units.ps
val bus_cycle_ps : t -> Uldma_util.Units.ps

val instruction_ps : t -> Uldma_util.Units.ps
val cached_access_ps : t -> Uldma_util.Units.ps
val uncached_ps : t -> Txn.op -> Uldma_util.Units.ps
val memory_barrier_ps : t -> Uldma_util.Units.ps
val syscall_ps : t -> Uldma_util.Units.ps
val translate_ps : t -> Uldma_util.Units.ps
val check_size_ps : t -> Uldma_util.Units.ps
val context_switch_ps : t -> Uldma_util.Units.ps
val pal_call_ps : t -> Uldma_util.Units.ps
val tlb_miss_ps : t -> Uldma_util.Units.ps
val iotlb_walk_ps : t -> Uldma_util.Units.ps
