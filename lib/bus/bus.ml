open Uldma_mem

exception Bus_error of int

type device = { claims : int -> bool; handle : Txn.t -> int }

let default_trace_cap = 16384

(* Per-pid uncached-access counters, indexed by [pid + 1] so the
   kernel's pid -1 lands in slot 0. Maintained unconditionally (cheap),
   unlike the trace which records only while tracing is on. *)
type t = {
  clock : Clock.t;
  mutable timing : Timing.t;
  ram : Phys_mem.t;
  mutable devices : device array; (* registration order *)
  mutable tracing : bool;
  trace_cap : int;
  mutable trace_buf : Txn.t array; (* ring, grown lazily up to trace_cap *)
  mutable trace_total : int; (* transactions recorded since last clear *)
  mutable busy_ps : int; (* cumulative uncached-crossing time *)
  mutable counts : int array; (* counts.(pid + 1) = uncached accesses *)
  mutable sink : Uldma_obs.Trace.t;
  mutable machine : int;
}

let create ?(trace_cap = default_trace_cap) ~clock ~timing ~ram () =
  if trace_cap <= 0 then invalid_arg "Bus.create: trace_cap must be positive";
  {
    clock;
    timing;
    ram;
    devices = [||];
    tracing = false;
    trace_cap;
    trace_buf = [||];
    trace_total = 0;
    busy_ps = 0;
    counts = Array.make 8 0;
    sink = Uldma_obs.Trace.null;
    machine = 0;
  }

let clock t = t.clock
let set_sink t ~machine sink =
  t.sink <- sink;
  t.machine <- machine
let timing t = t.timing
let ram t = t.ram
let set_timing t timing = t.timing <- timing

let register_device t d = t.devices <- Array.append t.devices [| d |]

let find_device t paddr =
  let n = Array.length t.devices in
  let rec probe i =
    if i >= n then None
    else if (Array.unsafe_get t.devices i).claims paddr then Some t.devices.(i)
    else probe (i + 1)
  in
  probe 0

let bump_count t pid =
  let slot = pid + 1 in
  if slot >= Array.length t.counts then begin
    let fresh = Array.make (max (slot + 1) (2 * Array.length t.counts)) 0 in
    Array.blit t.counts 0 fresh 0 (Array.length t.counts);
    t.counts <- fresh
  end;
  t.counts.(slot) <- t.counts.(slot) + 1

let pid_access_count t pid =
  let slot = pid + 1 in
  if slot < 0 || slot >= Array.length t.counts then 0 else t.counts.(slot)

let record t txn =
  if t.tracing then begin
    if Array.length t.trace_buf < t.trace_cap then begin
      (* grow the ring geometrically until it reaches the cap *)
      let cur = Array.length t.trace_buf in
      if t.trace_total >= cur then begin
        let fresh = Array.make (min t.trace_cap (max 16 (2 * cur))) txn in
        Array.blit t.trace_buf 0 fresh 0 cur;
        t.trace_buf <- fresh
      end
    end;
    t.trace_buf.(t.trace_total mod Array.length t.trace_buf) <- txn;
    t.trace_total <- t.trace_total + 1
  end

let uncached_access t ~pid op paddr value =
  t.busy_ps <- t.busy_ps + Timing.uncached_ps t.timing op;
  Clock.advance t.clock (Timing.uncached_ps t.timing op);
  bump_count t pid;
  let txn = { Txn.op; paddr; value; pid; at = Clock.now t.clock } in
  record t txn;
  if Uldma_obs.Trace.enabled t.sink then
    Uldma_obs.Trace.emit t.sink ~at:txn.Txn.at ~machine:t.machine ~pid
      (Uldma_obs.Trace.Uncached_access
         { op = (match op with Txn.Load -> `Load | Txn.Store -> `Store); paddr; value });
  match find_device t paddr with
  | Some d -> d.handle txn
  | None ->
    if paddr >= 0 && paddr + Layout.word_size <= Phys_mem.size t.ram then begin
      match op with
      | Txn.Load -> Phys_mem.load_word t.ram paddr
      | Txn.Store ->
        Phys_mem.store_word t.ram paddr value;
        0
    end
    else raise (Bus_error paddr)

let load t ~pid ~cacheable paddr =
  if cacheable then begin
    Clock.advance t.clock (Timing.cached_access_ps t.timing);
    if paddr >= 0 && paddr + Layout.word_size <= Phys_mem.size t.ram then
      Phys_mem.load_word t.ram paddr
    else raise (Bus_error paddr)
  end
  else uncached_access t ~pid Txn.Load paddr 0

let store t ~pid ~cacheable paddr value =
  if cacheable then begin
    Clock.advance t.clock (Timing.cached_access_ps t.timing);
    if paddr >= 0 && paddr + Layout.word_size <= Phys_mem.size t.ram then
      Phys_mem.store_word t.ram paddr value
    else raise (Bus_error paddr)
  end
  else ignore (uncached_access t ~pid Txn.Store paddr value)

let clear_trace t =
  t.trace_total <- 0;
  t.trace_buf <- [||]

let set_trace t on =
  t.tracing <- on;
  if not on then clear_trace t

let trace t =
  let cap = Array.length t.trace_buf in
  if cap = 0 then []
  else begin
    let n = min t.trace_total cap in
    let first = t.trace_total - n in
    List.init n (fun i -> t.trace_buf.((first + i) mod cap))
  end

let trace_len t = t.trace_total
let trace_cap t = t.trace_cap

let busy_ps t = t.busy_ps

let copy t ~ram ~clock =
  {
    clock;
    timing = t.timing;
    ram;
    devices = [||];
    tracing = t.tracing;
    trace_cap = t.trace_cap;
    trace_buf = [||]; (* forks start with an empty retained window *)
    trace_total = 0;
    busy_ps = t.busy_ps;
    counts = Array.copy t.counts;
    sink = t.sink;
    machine = t.machine;
  }
