(** The I/O bus: routes physical accesses to RAM or to a memory-mapped
    device (the DMA engine), charging simulated time per crossing.

    Device claims are registered by the machine at construction time;
    an access that neither RAM nor a device claims raises
    [Bus_error]. *)

type t

exception Bus_error of int

type device = {
  claims : int -> bool;
  handle : Txn.t -> int; (** returns the load reply; ignored for stores *)
}

val create :
  ?trace_cap:int -> clock:Clock.t -> timing:Timing.t -> ram:Uldma_mem.Phys_mem.t -> unit -> t
(** [trace_cap] bounds the retained transaction window (default
    [16384]); older transactions are overwritten ring-buffer style but
    still counted by [trace_len] and the per-pid counters. *)

val clock : t -> Clock.t

val set_sink : t -> machine:int -> Uldma_obs.Trace.t -> unit
(** Attach a structured trace sink (default [Trace.null]): every
    uncached crossing then also emits an [Uncached_access] event
    stamped with the given machine id. Carried across [copy]. *)

val timing : t -> Timing.t
val ram : t -> Uldma_mem.Phys_mem.t
val set_timing : t -> Timing.t -> unit

val register_device : t -> device -> unit
(** Devices are probed in registration order. *)

val load : t -> pid:int -> cacheable:bool -> int -> int
(** Word load. Cacheable accesses must target RAM and are charged the
    cache-hit cost; uncacheable accesses are charged bus cycles and are
    visible to devices. *)

val store : t -> pid:int -> cacheable:bool -> int -> int -> unit

val set_trace : t -> bool -> unit
val trace : t -> Txn.t list
(** The retained window of recorded transactions, oldest first (only
    while tracing). At most [trace_cap] entries; [trace_len] tells
    whether older ones were dropped. *)

val trace_len : t -> int
(** Total transactions recorded since tracing was enabled (or the trace
    cleared), including any that have fallen out of the ring. *)

val trace_cap : t -> int

val clear_trace : t -> unit

val pid_access_count : t -> int -> int
(** O(1) count of uncached accesses issued on behalf of a pid (the
    kernel's pid -1 included) since the bus — or the snapshot lineage
    it belongs to — was created. Counted whether or not tracing is on;
    consumers should compare deltas, not absolute values. *)

val busy_ps : t -> Uldma_util.Units.ps
(** Cumulative time the bus spent on uncached crossings — utilization
    numerator for the accounting report. *)

val copy : t -> ram:Uldma_mem.Phys_mem.t -> clock:Clock.t -> t
(** Snapshot with the given already-copied RAM and clock: carries the
    timing model, tracing flag, [busy_ps] and the per-pid counters, but
    starts with an empty retained trace window and no devices — the
    caller re-registers devices that hold state. *)
