(** The CPU's write buffer.

    Footnote 6 and the Table 1 methodology both warn that "some
    hardware devices (e.g. write buffers) may attempt to collapse
    successive read/write operations to the same address", which is why
    the repeated-passing-of-arguments method must issue memory
    barriers. This module models both behaviours:

    - [Ordered]: the bus preserves program order and never collapses —
      stores reach the device immediately. Memory barriers are cheap
      no-ops. This is the default for latency measurements.
    - [Bypass]: stores are buffered; loads *bypass* buffered stores
      (reaching the device first), optionally get *forwarded* data from
      a buffered store to the same address (so the device never sees
      the load), and consecutive stores to the same address optionally
      *collapse*. Only [MB] (or a full buffer) drains it. This is the
      hazardous real-machine behaviour the ablation benchmark and the
      write-buffer tests exercise. *)

type mode = Ordered | Bypass of { forward : bool; collapse : bool }

type event = Collapsed of { paddr : int } | Drained of { count : int }
(** Observable hazards: a store collapsed into an already-buffered one
    (the device will never see the first value), or a barrier/overflow
    drained [count] buffered stores. *)

type t

val create : ?capacity:int -> mode -> t
(** [capacity] (default 4) bounds the [Bypass] queue; an overflowing
    store drains the oldest entry first. *)

val copy : t -> t
(** Copies share the queue contents but drop the observer; the owner of
    the copy installs its own. *)

val set_observer : t -> (event -> unit) -> unit
(** Install the single observer called on collapse and drain events
    (the machine uses it to feed the structured trace). *)

val mode : t -> mode
val pending : t -> (int * int) list
(** Buffered (paddr, value) pairs, oldest first. *)

val store : t -> emit:(paddr:int -> value:int -> unit) -> paddr:int -> value:int -> unit
(** Process a store: in [Ordered] mode it is emitted at once; in
    [Bypass] mode it is buffered (collapsing if configured), draining
    the oldest entry through [emit] on overflow. *)

val load : t -> paddr:int -> [ `Forwarded of int | `To_bus ]
(** Process a load: [`Forwarded v] if a buffered store to the same
    address satisfies it (the device never sees the load); [`To_bus]
    otherwise — note the load then *overtakes* any buffered stores. *)

val barrier : t -> emit:(paddr:int -> value:int -> unit) -> unit
(** [MB]: drain everything, oldest first. *)

val flush : t -> emit:(paddr:int -> value:int -> unit) -> unit
(** Same as [barrier]; used by the machine at traps and halts. *)
