(** Every table and figure of the paper, regenerated.

    Each experiment is a pure function producing a rendered table; the
    registry maps experiment ids (the ones DESIGN.md and EXPERIMENTS.md
    use) to implementations. [bench/main.exe] runs all of them;
    [bin/uldma_cli] runs them selectively. *)

type experiment = {
  id : string;
  title : string;
  paper_ref : string; (** where in the paper this comes from *)
  run : unit -> Uldma_util.Tbl.t;
}

val table1 : ?iterations:int -> unit -> Uldma_util.Tbl.t
(** The headline: DMA initiation latency per mechanism, with the
    paper's measured column alongside ours. *)

val matrix6 : unit -> Uldma_util.Tbl.t
(** The six-mechanism matrix (pal, key-based, ext-shadow, rep-args,
    iommu, capio): measured initiation cost, NI access count and
    kernel-modification requirement alongside an exhaustive-exploration
    protection/atomicity verdict and the slots-2 collusion-campaign
    cell (violating candidates / candidates, witness program). *)

val bus_sweep : unit -> Uldma_util.Tbl.t
(** §3.4's remark: Table 1 re-run at TurboChannel 12.5, PCI 33 and
    PCI 66 MHz. *)

val os_sweep : unit -> Uldma_util.Tbl.t
(** §2.2's range: kernel-level initiation as the empty-syscall cost
    sweeps 1000..5000 cycles; user-level mechanisms are unaffected. *)

val crossover : unit -> Uldma_util.Tbl.t
(** §1/§2.2 motivation: initiation overhead vs wire time across
    message sizes and networks; the regime where the OS overhead
    exceeds the data transfer itself. *)

val fig2_shrimp : unit -> Uldma_util.Tbl.t
(** SHRIMP-2 / FLASH argument-mixing race, with and without the kernel
    modification each requires. *)

val fig5_attack3 : unit -> Uldma_util.Tbl.t
val fig6_attack4 : unit -> Uldma_util.Tbl.t
val fig7_retry : unit -> Uldma_util.Tbl.t
(** The five-access method under heavy random preemption: retries
    happen, the DMA still completes exactly once, oracle clean. *)

val fig8_proof : unit -> Uldma_util.Tbl.t
(** Exhaustive interleaving exploration of all three variants against
    the adversary: violations found for 3 and 4, none for 5. *)

val atomics : unit -> Uldma_util.Tbl.t
(** §3.5: user-level vs kernel-level atomic operation initiation. *)

val key_security : unit -> Uldma_util.Tbl.t
(** §3.1: key-guessing — analytic bound and a Monte-Carlo campaign. *)

val calibration : unit -> Uldma_util.Tbl.t
(** lmbench-style validation: measure the primitive costs (empty
    syscall, PAL dispatch, bus crossings, cache hits) inside the
    simulator by differential loop timing and compare them with the
    configured model — the same methodology the paper's §2.2 citation
    used on real machines. *)

type pingpong_send = Remote_store | Ext_shadow_dma | Kernel_dma

val pingpong_rtt : link:Uldma_net.Link.t -> send:pingpong_send -> rounds:int -> float
(** Round-trip time in µs per round (exposed for tests). *)

val latency_tail : unit -> Uldma_util.Tbl.t
(** One-initiation wall-clock latency distribution while a compute
    process preempts at random: the retry-free mechanisms pay only for
    lost quanta; the repeated-passing method also pays for broken
    sequences. *)

val disk_vs_net : unit -> Uldma_util.Tbl.t
(** §1's opening contrast: initiation overhead as a fraction of the
    device service time — negligible for millisecond magnetic disks,
    dominant for fast-network messages. *)

val accounting : unit -> Uldma_util.Tbl.t
(** Machine accounting (Metrics) for a mixed DMA + compute workload:
    per-process CPU attribution, bus utilization, engine activity. *)

val pingpong : unit -> Uldma_util.Tbl.t
(** Two full machines (Duplex) exchanging 8-byte messages: round-trip
    time when each message is launched by a Telegraphos remote store,
    by ext-shadow user-level DMA, and by a kernel-level DMA syscall. *)

val ablate_key_width : unit -> Uldma_util.Tbl.t
(** §3.1's "60 bits" sized empirically: brute-force acceptance rate as
    the key field narrows. *)

val ablate_wbuf : unit -> Uldma_util.Tbl.t
(** Why the paper's memory barriers matter: mechanisms under a
    collapsing/forwarding write buffer, with and without barriers. *)

val ablate_contexts : unit -> Uldma_util.Tbl.t
(** §3.1 "say 4 to 8": aggregate initiation throughput of 8 processes
    as the number of register contexts varies (losers use the kernel
    path). *)

val ablate_quantum : unit -> Uldma_util.Tbl.t
(** Preemption frequency vs rep-args retries: two five-access users
    under quanta from 1 to 500 instructions. *)

val all : experiment list

val find : string -> experiment option
