open Uldma_mem
open Uldma_os
open Uldma_dma
open Uldma_net

type node = A | B

type side = {
  kernel : Kernel.t;
  nif : Netif.t; (* packets in flight *toward* this side *)
  mutable delivered : int;
}

type t = { a : side; b : side }

let create ~link ~config_a ~config_b =
  let make config =
    let kernel = Kernel.create config in
    let nif = Netif.create ~link in
    (* arrivals at this side are traced on this side's machine id *)
    Netif.set_sink nif ~machine:(Kernel.machine_id kernel) (Kernel.trace kernel);
    { kernel; nif; delivered = 0 }
  in
  { a = make config_a; b = make config_b }

let side t = function A -> t.a | B -> t.b

let kernel t node = (side t node).kernel

let peer = function A -> B | B -> A

(* On the wire we distinguish plain writes from atomic requests by the
   destination: atomic requests travel to [atomic_tag + remote_addr]
   and carry the encoded op + the reply address in their payload. *)
let atomic_tag = 1 lsl 60

let encode_atomic (op : Uldma_dma.Atomic_op.t) ~reply_paddr =
  let payload = Bytes.create 32 in
  let opcode, a, b =
    match op with
    | Uldma_dma.Atomic_op.Add v -> (1, v, 0)
    | Uldma_dma.Atomic_op.Fetch_store v -> (2, v, 0)
    | Uldma_dma.Atomic_op.Cas { expected; new_value } -> (3, expected, new_value)
  in
  Bytes.set_int64_le payload 0 (Int64.of_int opcode);
  Bytes.set_int64_le payload 8 (Int64.of_int a);
  Bytes.set_int64_le payload 16 (Int64.of_int b);
  Bytes.set_int64_le payload 24 (Int64.of_int reply_paddr);
  payload

let decode_atomic payload =
  let word i = Int64.to_int (Bytes.get_int64_le payload (8 * i)) in
  let op =
    match word 0 with
    | 1 -> Uldma_dma.Atomic_op.Add (word 1)
    | 2 -> Uldma_dma.Atomic_op.Fetch_store (word 1)
    | _ -> Uldma_dma.Atomic_op.Cas { expected = word 1; new_value = word 2 }
  in
  (op, word 3)

(* move freshly sent packets of [from_side] onto the wire toward its peer *)
let pump_outbound from_side to_side =
  List.iter
    (fun (p : Engine.outbound_packet) ->
      match p.Engine.kind with
      | Engine.Remote_write ->
        Netif.send to_side.nif ~now:p.Engine.sent_at ~dst_paddr:p.Engine.remote_addr
          ~payload:p.Engine.payload
      | Engine.Remote_atomic { op; reply_paddr } ->
        Netif.send to_side.nif ~now:p.Engine.sent_at
          ~dst_paddr:(atomic_tag lor p.Engine.remote_addr)
          ~payload:(encode_atomic op ~reply_paddr))
    (Engine.take_outbound (Kernel.engine from_side.kernel))

(* [origin] is the side the packet came from (for atomic replies) *)
let apply_packet side ~origin (p : Netif.packet) =
  let ram = Kernel.ram side.kernel in
  if p.Netif.dst_paddr land atomic_tag <> 0 then begin
    let target = p.Netif.dst_paddr land lnot atomic_tag in
    let op, reply_paddr = decode_atomic p.Netif.payload in
    let old_value =
      Uldma_dma.Atomic_op.execute op ~read:(Phys_mem.load_word ram)
        ~write:(Phys_mem.store_word ram) ~target
    in
    let reply = Bytes.create 8 in
    Bytes.set_int64_le reply 0 (Int64.of_int old_value);
    (* the reply rides the wire back to the originator's mailbox *)
    Netif.send origin.nif ~now:p.Netif.arrive_at ~dst_paddr:reply_paddr ~payload:reply
  end
  else begin
    let len = Bytes.length p.Netif.payload in
    for i = 0 to len - 1 do
      Phys_mem.store_byte ram (p.Netif.dst_paddr + i) (Char.code (Bytes.get p.Netif.payload i))
    done
  end;
  side.delivered <- side.delivered + 1

let deliver_arrived side ~origin =
  ignore (Netif.poll side.nif ~now:(Kernel.now_ps side.kernel) (apply_packet side ~origin) : int)

let pump t =
  pump_outbound t.a t.b;
  pump_outbound t.b t.a;
  deliver_arrived t.a ~origin:t.b;
  deliver_arrived t.b ~origin:t.a

type stop = All_exited | Max_steps | Predicate

(* If a node is idle but has packets in flight toward it, advance its
   clock to the next arrival so the packet can land. *)
let settle_idle side =
  match Netif.next_arrival side.nif with
  | Some at when at > Kernel.now_ps side.kernel ->
    Uldma_bus.Clock.advance (Kernel.clock side.kernel) (at - Kernel.now_ps side.kernel)
  | Some _ | None -> ()

let run t ?(max_steps = 20_000_000) ?(until = fun _ -> false) () =
  let rec loop n =
    if until t then Predicate
    else if n >= max_steps then Max_steps
    else begin
      let runnable side = Kernel.runnable_pids side.kernel <> [] in
      (* an exited node's RAM still receives packets: advance its dead
         clock to the next arrival so deliveries are not starved *)
      if not (runnable t.a) then settle_idle t.a;
      if not (runnable t.b) then settle_idle t.b;
      pump t;
      let choice =
        match (runnable t.a, runnable t.b) with
        | true, true ->
          if Kernel.now_ps t.a.kernel <= Kernel.now_ps t.b.kernel then Some t.a else Some t.b
        | true, false -> Some t.a
        | false, true -> Some t.b
        | false, false -> None
      in
      match choice with
      | Some side -> (
        match Kernel.step side.kernel with
        | `Stepped _ -> loop (n + 1)
        | `Idle -> loop (n + 1))
      | None ->
        (* both machines idle: let in-flight packets land, then stop *)
        settle_idle t.a;
        settle_idle t.b;
        pump t;
        if Netif.in_flight t.a.nif = 0 && Netif.in_flight t.b.nif = 0 then All_exited
        else loop (n + 1)
    end
  in
  loop 0

let now_ps t = max (Kernel.now_ps t.a.kernel) (Kernel.now_ps t.b.kernel)

let packets_delivered t node = (side t node).delivered
