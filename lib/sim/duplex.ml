(* The historical two-node API, now a shim over the N-node mesh
   ({!Uldma.Cluster} with nodes = 2): node A is index 0, node B is
   index 1, and the co-simulation loop, wire protocol and atomic
   round-trip behaviour are the core cluster's. *)

module Core = Uldma.Cluster

type node = A | B

let idx = function A -> 0 | B -> 1

type t = Core.t

let create ~link ~config_a ~config_b =
  Core.create ~net:(Uldma_net.Backend.linked link) ~nodes:2
    ~config_of:(fun i -> if i = 0 then config_a else config_b)
    ~config:config_a ()

let kernel t n = Core.node t (idx n)

let peer = function A -> B | B -> A

type stop = All_exited | Max_steps | Predicate

let run t ?max_steps ?until () =
  match Core.run t ?max_steps ?until () with
  | Core.All_exited -> All_exited
  | Core.Max_steps -> Max_steps
  | Core.Predicate -> Predicate

let now_ps = Core.now_ps

let packets_delivered t n = Core.packets_into t (idx n)
