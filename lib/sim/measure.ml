open Uldma_util
open Uldma_mem
open Uldma_cpu
open Uldma_os
module Mech = Uldma.Mech
module Session = Uldma.Session

type result = {
  mechanism : string;
  iterations : int;
  successes : int;
  total_us : float;
  us_per_initiation : float;
  ni_accesses : int;
}

let pages = 8 (* distinct pages cycled through, power of two *)

let initiation ?(base = Kernel.default_config) ?(iterations = 1000) ?(transfer_size = 1024)
    (mech : Mech.t) =
  let s = Session.of_mech ~config:base mech in
  let p =
    Session.process s ~name:("measure-" ^ mech.Mech.name) ~src_pages:pages ~dst_pages:pages ()
  in
  Session.dma_stub ~iterations ~transfer_size s p;
  let t0 = Session.now_ps s in
  (match Session.run s ~max_steps:(200 * iterations * 10) with
  | Kernel.All_exited -> ()
  | Kernel.Max_steps -> failwith ("Measure.initiation: " ^ mech.Mech.name ^ " did not finish")
  | Kernel.Predicate -> assert false);
  let total_ps = Session.now_ps s - t0 in
  {
    mechanism = mech.Mech.name;
    iterations;
    successes = Session.successes s p;
    total_us = Units.to_us total_ps;
    us_per_initiation = Units.to_us total_ps /. float_of_int iterations;
    ni_accesses = mech.Mech.ni_accesses;
  }

type contention_result = { mechanism : string; runs : int; latency_us : Stats.summary }

(* One complete initiation, wall-clock, with a compute process
   stealing the CPU at random instruction boundaries: the latency the
   *user* observes, including preemptions landing mid-stub (and, for
   the repeated-passing method, the retries they cause). *)
let single_contended_run (mech : Mech.t) ~seed =
  let base =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * 8192;
      sched = Sched.Random_preempt { probability = 0.25; seed };
    }
  in
  let s = Session.of_mech ~config:base mech in
  let kernel = Session.kernel s in
  let victim = Session.process s ~name:"victim" ~src_pages:1 ~dst_pages:1 () in
  Session.dma_once ~transfer_size:1024 s victim;
  let busy = Kernel.spawn kernel ~name:"busy" ~program:[||] () in
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "busy" in
  Asm.li asm 10 0;
  Asm.li asm 11 100_000;
  Asm.label asm loop;
  Asm.add asm 12 12 (Isa.Imm 1);
  Asm.add asm 10 10 (Isa.Imm 1);
  Asm.blt asm 10 11 loop;
  Asm.halt asm;
  Process.set_program busy (Asm.assemble asm);
  let t0 = Session.now_ps s in
  (match
     Kernel.run_until kernel ~max_steps:2_000_000 (fun _ ->
         not (Process.is_runnable victim.Session.process))
   with
  | Kernel.Predicate -> ()
  | Kernel.All_exited | Kernel.Max_steps ->
    failwith ("Measure.single_contended_run: " ^ mech.Mech.name ^ " did not finish"));
  if Session.successes s victim <> 1 then
    failwith ("Measure.single_contended_run: " ^ mech.Mech.name ^ " failed its DMA");
  Units.to_us (Session.now_ps s - t0)

let initiation_under_contention ?(runs = 150) (mech : Mech.t) =
  let samples = List.init runs (fun i -> single_contended_run mech ~seed:(i + 1)) in
  { mechanism = mech.Mech.name; runs; latency_us = Stats.of_list samples }

type atomic_result = {
  variant : string;
  iterations : int;
  us_per_op : float;
  final_counter : int;
}

let atomic_add_initiation ?(base = Kernel.default_config) ?(iterations = 1000) variant =
  let config =
    match Uldma.Atomic.engine_mechanism variant with
    | Some mechanism -> { base with Kernel.mechanism; backend = Kernel.Local { bytes_per_s = 1e9 } }
    | None -> { base with Kernel.backend = Kernel.Local { bytes_per_s = 1e9 } }
  in
  let kernel = Kernel.create config in
  let p = Kernel.spawn kernel ~name:"measure-atomic" ~program:[||] () in
  let counter_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let prepared =
    Uldma.Atomic.prepare variant kernel p ~region:{ Mech.vaddr = counter_va; pages = 1 }
  in
  let asm = Asm.create () in
  let loop = Asm.fresh_label asm "atomic_loop" in
  Asm.li asm 10 0;
  Asm.li asm 11 iterations;
  Asm.li asm 5 1 (* operand: add 1 *);
  Asm.label asm loop;
  Asm.li asm 1 counter_va (* r1 = vtarget *);
  prepared.Uldma.Atomic.emit_add asm ~operand:5;
  Asm.add asm 10 10 (Isa.Imm 1);
  Asm.blt asm 10 11 loop;
  Asm.halt asm;
  Process.set_program p (Asm.assemble asm);
  let t0 = Kernel.now_ps kernel in
  (match Kernel.run kernel ~max_steps:(200 * iterations * 10) () with
  | Kernel.All_exited -> ()
  | Kernel.Max_steps -> failwith "Measure.atomic_add_initiation: did not finish"
  | Kernel.Predicate -> assert false);
  let total_ps = Kernel.now_ps kernel - t0 in
  {
    variant = Uldma.Atomic.variant_name variant;
    iterations;
    us_per_op = Units.to_us total_ps /. float_of_int iterations;
    final_counter = Kernel.read_user kernel p counter_va;
  }
