open Uldma_util
open Uldma_mem
open Uldma_os
open Uldma_dma
open Uldma_net

type t = {
  sender : Kernel.t;
  receiver_ram : Phys_mem.t;
  nif : Netif.t;
  reply_nif : Netif.t; (* atomic replies travelling back *)
  atomic_requests : (int, Uldma_dma.Atomic_op.t * int) Hashtbl.t;
      (* in-flight atomic requests keyed by peer address *)
  mutable transfers_seen : int;
  mutable bytes_delivered : int;
  mutable last_arrival : Units.ps;
}

let create ~link ~config =
  let sender = Kernel.create config in
  let nif = Netif.create ~link in
  let reply_nif = Netif.create ~link in
  (* the passive receiver has no kernel; trace its deliveries on the
     sender's sink under the next machine id *)
  let sink = Kernel.trace sender in
  let receiver_machine = Uldma_obs.Trace.register_machine sink in
  Netif.set_sink nif ~machine:receiver_machine sink;
  (* atomic replies arrive back at the sender *)
  Netif.set_sink reply_nif ~machine:(Kernel.machine_id sender) sink;
  {
    sender;
    receiver_ram = Phys_mem.create ~size:config.Kernel.ram_size;
    nif;
    reply_nif;
    atomic_requests = Hashtbl.create 16;
    transfers_seen = 0;
    bytes_delivered = 0;
    last_arrival = 0;
  }

let sender t = t.sender
let receiver_ram t = t.receiver_ram
let netif t = t.nif

type payload_kind = Write | Atomic of Uldma_dma.Atomic_op.t * int

let deliver t kind (p : Netif.packet) =
  (match kind p.Netif.dst_paddr with
  | Write ->
    let len = Bytes.length p.Netif.payload in
    for i = 0 to len - 1 do
      Phys_mem.store_byte t.receiver_ram (p.Netif.dst_paddr + i)
        (Char.code (Bytes.get p.Netif.payload i))
    done;
    t.bytes_delivered <- t.bytes_delivered + len
  | Atomic (op, reply_paddr) ->
    let old_value =
      Uldma_dma.Atomic_op.execute op
        ~read:(Phys_mem.load_word t.receiver_ram)
        ~write:(Phys_mem.store_word t.receiver_ram)
        ~target:p.Netif.dst_paddr
    in
    let reply = Bytes.create 8 in
    Bytes.set_int64_le reply 0 (Int64.of_int old_value);
    Netif.send t.reply_nif ~now:p.Netif.arrive_at ~dst_paddr:reply_paddr ~payload:reply);
  t.last_arrival <- max t.last_arrival p.Netif.arrive_at

let enqueue_new t =
  List.iter
    (fun (p : Engine.outbound_packet) ->
      t.transfers_seen <- t.transfers_seen + 1;
      (match p.Engine.kind with
      | Engine.Remote_write -> ()
      | Engine.Remote_atomic { op; reply_paddr } ->
        Hashtbl.replace t.atomic_requests p.Engine.remote_addr (op, reply_paddr));
      Netif.send t.nif ~now:p.Engine.sent_at ~dst_paddr:p.Engine.remote_addr
        ~payload:p.Engine.payload)
    (Engine.take_outbound (Kernel.engine t.sender))

let kind_of t dst =
  match Hashtbl.find_opt t.atomic_requests dst with
  | Some (op, reply) ->
    Hashtbl.remove t.atomic_requests dst;
    Atomic (op, reply)
  | None -> Write

let deliver_reply t (p : Netif.packet) =
  let ram = Kernel.ram t.sender in
  Phys_mem.store_word ram p.Netif.dst_paddr (Int64.to_int (Bytes.get_int64_le p.Netif.payload 0));
  t.last_arrival <- max t.last_arrival p.Netif.arrive_at

let pump t =
  enqueue_new t;
  let n = Netif.poll t.nif ~now:(Kernel.now_ps t.sender) (deliver t (kind_of t)) in
  n + Netif.poll t.reply_nif ~now:(Kernel.now_ps t.sender) (deliver_reply t)

let settle t =
  enqueue_new t;
  let n = Netif.drain_all t.nif (deliver t (kind_of t)) in
  let n = n + Netif.drain_all t.reply_nif (deliver_reply t) in
  if t.last_arrival > Kernel.now_ps t.sender then
    Uldma_bus.Clock.advance (Kernel.clock t.sender) (t.last_arrival - Kernel.now_ps t.sender);
  n

let bytes_delivered t = t.bytes_delivered
let last_arrival_ps t = t.last_arrival
