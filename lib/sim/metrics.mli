(** Machine accounting: where the simulated time went.

    A [snapshot] summarises a finished (or running) machine — per
    process: instructions retired, syscalls, attributed CPU time;
    machine-wide: context switches, engine activity, bus utilization.
    Useful for fairness checks and for understanding what a workload
    actually did ([to_table] renders the standard report). *)

type process_row = {
  pid : int;
  name : string;
  state : string;
  instructions : int;
  syscalls : int;
  cpu_time_us : float;
  share : float; (** fraction of all attributed CPU time *)
}

type t = {
  processes : process_row list;
  elapsed_us : float;
  context_switches : int;
  bus_busy_us : float;
  bus_utilization : float; (** busy / elapsed *)
  transfers_started : int;
  initiations_rejected : int;
  atomics : int;
  remote_sends : int;
  counters : Uldma_obs.Counters.t;
      (** the machine's full named-counter registry
          ([Kernel.counter_snapshot]); the flat fields above are typed
          views of the most-used entries *)
}

val snapshot : Uldma_os.Kernel.t -> t

val to_table : t -> Uldma_util.Tbl.t

val fairness_spread : t -> float
(** max/min CPU-time ratio across non-exited-abnormally processes with
    any attributed time; 1.0 = perfectly fair. *)
