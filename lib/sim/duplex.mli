(** A two-node NOW with a full machine on each side — the historical
    A/B spelling of a 2-node {!Uldma.Cluster} mesh.

    Both nodes run kernels, processes and engines; each node's
    remote-window traffic is delivered into the *other* node's physical
    RAM after the link's wire time. The co-simulation loop always
    advances the node whose clock is behind, so cross-node timing
    (e.g. ping-pong round trips) is causally consistent: a packet sent
    at sender-time t arrives no earlier than receiver-time t + wire.

    New code should use {!Uldma.Cluster} (or {!Uldma.Session.cluster})
    directly; this wrapper remains for the ping-pong experiment's
    original callers. *)

type node = A | B

type t

val create :
  link:Uldma_net.Link.t -> config_a:Uldma_os.Kernel.config -> config_b:Uldma_os.Kernel.config -> t

val kernel : t -> node -> Uldma_os.Kernel.t
val peer : node -> node

type stop = All_exited | Max_steps | Predicate

val run : t -> ?max_steps:int -> ?until:(t -> bool) -> unit -> stop
(** Interleave the two machines (lowest clock first), shipping
    remote-window packets between them, until both machines have
    exited and the wire is empty — or the bound/predicate fires.
    In-flight packets are still delivered to an exited node (its RAM
    outlives its processes). *)

val now_ps : t -> Uldma_util.Units.ps
(** The later of the two node clocks. *)

val packets_delivered : t -> node -> int
(** Packets delivered *into* the given node so far. *)
