open Uldma_util
open Uldma_mem
open Uldma_bus
open Uldma_os
open Uldma_dma
module Mech = Uldma.Mech
module Api = Uldma.Api
module Oracle = Uldma_verify.Oracle
module Explorer = Uldma_verify.Explorer
module Scenario = Uldma_workload.Scenario
module Stub_loop = Uldma_workload.Stub_loop

type experiment = {
  id : string;
  title : string;
  paper_ref : string;
  run : unit -> Tbl.t;
}

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let paper_us = [ ("kernel", 18.6); ("ext-shadow", 1.1); ("rep-args", 2.6); ("key-based", 2.3) ]

let paper_cell name =
  match List.assoc_opt name paper_us with Some v -> Tbl.cell_us v | None -> "-"

let extra_rows = [ Uldma.Pal_dma.mech; Uldma.Shrimp1.mech; Uldma.Shrimp2.mech; Uldma.Flash.mech ]

let table1 ?(iterations = 1000) () =
  let tbl =
    Tbl.create ~title:"Table 1: DMA initiation latency (DEC Alpha 3000/300, TurboChannel 12.5 MHz)"
      ~columns:
        [
          ("mechanism", Tbl.Left);
          ("paper (us)", Tbl.Right);
          ("measured (us)", Tbl.Right);
          ("NI accesses", Tbl.Right);
          ("kernel modification", Tbl.Left);
        ]
  in
  let kernel_us = ref 0.0 in
  let row (m : Mech.t) =
    let r = Measure.initiation ~iterations m in
    if r.Measure.successes <> r.Measure.iterations then
      failwith (Printf.sprintf "table1: %s had failures" m.Mech.name);
    if m.Mech.name = "kernel" then kernel_us := r.Measure.us_per_initiation;
    Tbl.add_row tbl
      [
        m.Mech.name;
        paper_cell m.Mech.name;
        Printf.sprintf "%.2f" r.Measure.us_per_initiation;
        string_of_int m.Mech.ni_accesses;
        (if m.Mech.requires_kernel_modification then "required" else "none");
      ]
  in
  List.iter row Api.table1;
  Tbl.add_rule tbl;
  List.iter row extra_rows;
  ignore !kernel_us;
  tbl

(* ------------------------------------------------------------------ *)
(* Six-mechanism matrix: cost, protection, atomicity *)

let matrix6 () =
  let module Synth = Uldma_workload.Synth in
  let tbl =
    Tbl.create
      ~title:
        "Six-mechanism matrix: initiation cost, exhaustive protection verdict, collusion \
         surface (slots 2)"
      ~columns:
        [
          ("mechanism", Tbl.Left);
          ("initiation (us)", Tbl.Right);
          ("NI accesses", Tbl.Right);
          ("kernel modification", Tbl.Left);
          ("exhaustive scenario", Tbl.Left);
          ("schedules", Tbl.Right);
          ("verdict", Tbl.Left);
          ("collusion (viol/cand)", Tbl.Left);
        ]
  in
  let subjects =
    [
      Synth.Pal;
      Synth.Key;
      Synth.Ext;
      Synth.Rep Uldma_dma.Seq_matcher.Five;
      Synth.Iommu;
      Synth.Capio;
    ]
  in
  List.iter
    (fun subject ->
      let m = Synth.subject_mech subject in
      let r = Measure.initiation ~iterations:300 m in
      if r.Measure.successes <> r.Measure.iterations then
        failwith (Printf.sprintf "matrix6: %s had failures" m.Mech.name);
      let scenario_name, s =
        match subject with
        | Synth.Pal -> ("pal contested", Scenario.pal_contested ())
        | Synth.Key -> ("key contested", Scenario.key_contested ())
        | Synth.Ext -> ("ext-shadow contested", Scenario.ext_shadow_contested ())
        | Synth.Rep _ -> ("rep5 vs Fig. 5 splicer", Scenario.rep5 ())
        | Synth.Iommu -> ("iommu contested", Scenario.iommu_contested ())
        | Synth.Capio -> ("capio contested", Scenario.capio_contested ())
      in
      let er =
        Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
          ~max_paths:1_000_000 ~check:(Scenario.oracle_check s) ()
      in
      if er.Explorer.truncated then
        failwith (Printf.sprintf "matrix6: %s exploration truncated" m.Mech.name);
      let verdict =
        match er.Explorer.violations with
        | [] -> "SAFE (exactly-once)"
        | vs -> Printf.sprintf "VULNERABLE (%d)" (List.length vs)
      in
      let cr = Synth.run_cell ~slots:2 subject in
      let cell = cr.Synth.cr_cell in
      let collusion =
        if cell.Synth.cell_violating = 0 then
          Printf.sprintf "0/%d" cell.Synth.cell_candidates
        else
          Printf.sprintf "%d/%d (%s)" cell.Synth.cell_violating cell.Synth.cell_candidates
            cell.Synth.cell_witness
      in
      Tbl.add_row tbl
        [
          m.Mech.name;
          Printf.sprintf "%.2f" r.Measure.us_per_initiation;
          string_of_int m.Mech.ni_accesses;
          (if m.Mech.requires_kernel_modification then "required" else "none");
          scenario_name;
          string_of_int er.Explorer.paths;
          verdict;
          collusion;
        ])
    subjects;
  tbl

(* ------------------------------------------------------------------ *)
(* Bus and OS sweeps *)

let bus_presets = [ ("12.5 MHz", Timing.alpha3000_300); ("33 MHz", Timing.pci33); ("66 MHz", Timing.pci66) ]

let bus_sweep () =
  let tbl =
    Tbl.create ~title:"Bus-frequency sweep (sec. 3.4 remark: 'recent buses, like PCI, run at 66 MHz')"
      ~columns:
        (("mechanism", Tbl.Left)
        :: List.map (fun (name, _) -> (name ^ " (us)", Tbl.Right)) bus_presets)
  in
  List.iter
    (fun (m : Mech.t) ->
      let cells =
        List.map
          (fun (_, timing) ->
            let base = { Kernel.default_config with Kernel.timing } in
            let r = Measure.initiation ~base ~iterations:300 m in
            Printf.sprintf "%.2f" r.Measure.us_per_initiation)
          bus_presets
      in
      Tbl.add_row tbl (m.Mech.name :: cells))
    Api.table1;
  tbl

let os_sweep () =
  let tbl =
    Tbl.create
      ~title:
        "OS-overhead sweep (sec. 2.2: empty syscall costs 1000-5000 cycles on commercial UNIX)"
      ~columns:
        [
          ("syscall cycles", Tbl.Right);
          ("kernel DMA (us)", Tbl.Right);
          ("ext-shadow (us)", Tbl.Right);
          ("ratio", Tbl.Right);
        ]
  in
  List.iter
    (fun cycles ->
      let timing = Timing.with_syscall_cycles Timing.alpha3000_300 cycles in
      let base = { Kernel.default_config with Kernel.timing } in
      let k = Measure.initiation ~base ~iterations:300 Uldma.Kernel_dma.mech in
      let e = Measure.initiation ~base ~iterations:300 Uldma.Ext_shadow.mech in
      Tbl.add_row tbl
        [
          string_of_int cycles;
          Printf.sprintf "%.2f" k.Measure.us_per_initiation;
          Printf.sprintf "%.2f" e.Measure.us_per_initiation;
          Printf.sprintf "%.0fx" (k.Measure.us_per_initiation /. e.Measure.us_per_initiation);
        ])
    [ 1000; 2000; 2300; 3000; 4000; 5000 ];
  tbl

(* ------------------------------------------------------------------ *)
(* Crossover: initiation overhead vs wire time *)

let crossover () =
  let kernel_us =
    (Measure.initiation ~iterations:300 Uldma.Kernel_dma.mech).Measure.us_per_initiation
  in
  let ext_us =
    (Measure.initiation ~iterations:300 Uldma.Ext_shadow.mech).Measure.us_per_initiation
  in
  let tbl =
    Tbl.create
      ~title:
        (Printf.sprintf
           "Initiation overhead as %% of total message time (kernel %.1f us vs ext-shadow %.2f us)"
           kernel_us ext_us)
      ~columns:
        [
          ("network", Tbl.Left);
          ("message", Tbl.Right);
          ("wire (us)", Tbl.Right);
          ("kernel init %", Tbl.Right);
          ("user init %", Tbl.Right);
        ]
  in
  let sizes = [ 64; 256; 1024; 4096; 16384; 65536 ] in
  let first = ref true in
  List.iter
    (fun link ->
      if not !first then Tbl.add_rule tbl;
      first := false;
      List.iter
        (fun size ->
          let wire_us = Units.to_us (Uldma_net.Link.wire_time_ps link size) in
          let pct init = 100.0 *. init /. (init +. wire_us) in
          Tbl.add_row tbl
            [
              link.Uldma_net.Link.name;
              Format.asprintf "%a" Units.pp_bytes size;
              Printf.sprintf "%.1f" wire_us;
              Printf.sprintf "%.0f%%" (pct kernel_us);
              Printf.sprintf "%.0f%%" (pct ext_us);
            ])
        sizes)
    [ Uldma_net.Link.atm155; Uldma_net.Link.atm622; Uldma_net.Link.gigabit ];
  tbl

(* ------------------------------------------------------------------ *)
(* Attack reproductions *)

let describe_violations report =
  match report.Oracle.violations with
  | [] -> "none"
  | vs -> String.concat "; " (List.map (Format.asprintf "%a" Oracle.pp_violation) vs)

let race_row tbl name hooked (s : Scenario.t) schedule =
  Scenario.run_legs s schedule;
  Scenario.finish s ();
  let report = Scenario.report s in
  Tbl.add_row tbl
    [
      name;
      (if hooked then "modified (hook installed)" else "UNMODIFIED");
      string_of_int (List.length (Scenario.transfers s));
      string_of_int (Scenario.victim_last_status s);
      describe_violations report;
    ]

let fig2_shrimp () =
  let tbl =
    Tbl.create
      ~title:
        "Fig. 2 baselines under the argument-mixing race (victim store / attacker store / victim load)"
      ~columns:
        [
          ("mechanism", Tbl.Left);
          ("kernel", Tbl.Left);
          ("transfers", Tbl.Right);
          ("victim status", Tbl.Right);
          ("oracle violations", Tbl.Left);
        ]
  in
  race_row tbl "shrimp-2" false (Scenario.shrimp2_race ~hook:false) Scenario.shrimp2_schedule;
  race_row tbl "shrimp-2" true (Scenario.shrimp2_race ~hook:true) Scenario.shrimp2_schedule;
  race_row tbl "flash" false (Scenario.flash_race ~hook:false) Scenario.shrimp2_schedule;
  race_row tbl "flash" true (Scenario.flash_race ~hook:true) Scenario.shrimp2_schedule;
  race_row tbl "ext-shadow-stateless" false (Scenario.ext_stateless_race ())
    Scenario.shrimp2_schedule;
  tbl

let attack_table ~title scenario schedule =
  let s = scenario () in
  Scenario.run_legs s schedule;
  Scenario.finish s ();
  let report = Scenario.report s in
  let tbl = Tbl.create ~title ~columns:[ ("observation", Tbl.Left); ("value", Tbl.Left) ] in
  (* the interleaving diagram, as in the paper's figure *)
  List.iteri
    (fun i (_, actor, access) ->
      Tbl.add_row tbl [ Printf.sprintf "%d: %s" (i + 1) actor; access ])
    (Scenario.access_timeline s);
  Tbl.add_rule tbl;
  Tbl.add_row tbl [ "transfers started"; string_of_int (List.length (Scenario.transfers s)) ];
  List.iter
    (fun tr -> Tbl.add_row tbl [ "  transfer"; Format.asprintf "%a" Transfer.pp tr ])
    (Scenario.transfers s);
  Tbl.add_row tbl [ "victim observed successes"; string_of_int (Scenario.victim_successes s) ];
  Tbl.add_row tbl [ "victim final status"; string_of_int (Scenario.victim_last_status s) ];
  Tbl.add_row tbl [ "oracle"; describe_violations report ];
  tbl

let fig5_attack3 () =
  attack_table
    ~title:
      "Fig. 5: attack on the 3-access variant — attacker transfers its data (C) into the victim's destination (B)"
    (fun () -> Scenario.fig5 ()) Scenario.fig5_schedule

let fig6_attack4 () =
  attack_table
    ~title:
      "Fig. 6: attack on the 4-access variant — the DMA starts but the victim is told it failed"
    Scenario.fig6 Scenario.fig6_schedule

let fig7_retry () =
  let tbl =
    Tbl.create
      ~title:
        "Fig. 7: the five-access method under heavy random preemption (with the Fig. 5 attacker running)"
      ~columns:
        [
          ("seed", Tbl.Right);
          ("victim successes", Tbl.Right);
          ("transfers", Tbl.Right);
          ("broken sequences (retries)", Tbl.Right);
          ("oracle", Tbl.Left);
        ]
  in
  List.iter
    (fun seed ->
      let s = Scenario.rep5_with_retry () in
      Scenario.run_random s ~seed ~switch_probability:0.25;
      let report = Scenario.report s in
      let counters = Engine.counters (Kernel.engine s.Scenario.kernel) in
      Tbl.add_row tbl
        [
          string_of_int seed;
          string_of_int (Scenario.victim_successes s);
          string_of_int (List.length (Scenario.transfers s));
          string_of_int counters.Engine.rejected;
          describe_violations report;
        ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  tbl

(* With copy-on-write snapshots the explorer comfortably affords a much
   higher path bound than the seed's 200k default; state it explicitly
   so the proof's coverage envelope is visible in one place. All seven
   variants complete exhaustively far below this. *)
let fig8_max_paths = 1_000_000

let fig8_proof () =
  let tbl =
    Tbl.create
      ~title:
        "Fig. 8 / sec. 3.3.1: exhaustive interleaving exploration of the repeated-passing variants vs the adversary"
      ~columns:
        [
          ("variant", Tbl.Left);
          ("schedules", Tbl.Right);
          ("violating schedules", Tbl.Right);
          ("complete", Tbl.Left);
          ("verdict", Tbl.Left);
        ]
  in
  let explore name scenario =
    let s = scenario () in
    let r =
      Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
        ~max_paths:fig8_max_paths ~check:(Scenario.oracle_check s) ()
    in
    let n_viol = List.length r.Explorer.violations in
    Tbl.add_row tbl
      [
        name;
        string_of_int r.Explorer.paths;
        string_of_int n_viol;
        (if r.Explorer.truncated then "TRUNCATED" else "yes");
        (if n_viol = 0 then "SAFE under all schedules" else "VULNERABLE");
      ]
  in
  explore "rep-args-3 (Fig. 5)" (fun () -> Scenario.fig5 ());
  explore "rep-args-4 (Fig. 6)" Scenario.fig6;
  explore "rep-args-5 (Fig. 7)" (fun () -> Scenario.rep5 ());
  explore "rep-args-5 vs store-splice" Scenario.rep5_splice;
  explore "ext-shadow, two tenants" Scenario.ext_shadow_contested;
  explore "key-based, two tenants" (fun () -> Scenario.key_contested ());
  explore "pal, two tenants" Scenario.pal_contested;
  tbl

(* ------------------------------------------------------------------ *)
(* Atomic operations (sec. 3.5) *)

let atomics () =
  let tbl =
    Tbl.create ~title:"Sec. 3.5: atomic operation (atomic_add) initiation cost"
      ~columns:
        [
          ("variant", Tbl.Left);
          ("us per op", Tbl.Right);
          ("speedup vs kernel", Tbl.Right);
          ("final counter", Tbl.Right);
        ]
  in
  let kernel_r = Measure.atomic_add_initiation Uldma.Atomic.Kernel_initiated in
  List.iter
    (fun variant ->
      let r = Measure.atomic_add_initiation variant in
      if r.Measure.final_counter <> r.Measure.iterations then
        failwith ("atomics: lost updates in " ^ r.Measure.variant);
      Tbl.add_row tbl
        [
          r.Measure.variant;
          Printf.sprintf "%.2f" r.Measure.us_per_op;
          Printf.sprintf "%.1fx" (kernel_r.Measure.us_per_op /. r.Measure.us_per_op);
          string_of_int r.Measure.final_counter;
        ])
    [
      Uldma.Atomic.Kernel_initiated;
      Uldma.Atomic.Ext_shadow_initiated;
      Uldma.Atomic.Key_initiated;
      Uldma.Atomic.Pal_initiated;
    ];
  tbl

(* ------------------------------------------------------------------ *)
(* Latency tails under contention *)

let latency_tail () =
  let tbl =
    Tbl.create
      ~title:
        "Initiation latency under contention (one DMA vs a compute process, 25%-per-instruction random preemption, 150 runs)"
      ~columns:
        [
          ("mechanism", Tbl.Left);
          ("p50 (us)", Tbl.Right);
          ("p95 (us)", Tbl.Right);
          ("p99 (us)", Tbl.Right);
          ("max (us)", Tbl.Right);
        ]
  in
  List.iter
    (fun name ->
      let r = Measure.initiation_under_contention (Uldma.Api.find_exn name) in
      let s = r.Measure.latency_us in
      Tbl.add_row tbl
        [
          name;
          Printf.sprintf "%.1f" s.Uldma_util.Stats.p50;
          Printf.sprintf "%.1f" s.Uldma_util.Stats.p95;
          Printf.sprintf "%.1f" s.Uldma_util.Stats.p99;
          Printf.sprintf "%.1f" s.Uldma_util.Stats.max;
        ])
    [ "ext-shadow"; "key-based"; "rep-args"; "pal"; "kernel" ];
  tbl

(* ------------------------------------------------------------------ *)
(* Disk vs network: the paper's opening contrast *)

let disk_vs_net () =
  let kernel_us =
    (Measure.initiation ~iterations:300 Uldma.Kernel_dma.mech).Measure.us_per_initiation
  in
  let ext_us =
    (Measure.initiation ~iterations:300 Uldma.Ext_shadow.mech).Measure.us_per_initiation
  in
  let tbl =
    Tbl.create
      ~title:
        "Sec. 1: why disk DMA tolerated kernel initiation and network DMA does not (4 KiB requests)"
      ~columns:
        [
          ("device", Tbl.Left);
          ("service time", Tbl.Right);
          ("kernel init overhead", Tbl.Right);
          ("user init overhead", Tbl.Right);
        ]
  in
  let pct init_us total_us = Printf.sprintf "%.2f%%" (100.0 *. init_us /. (init_us +. total_us)) in
  let disk_row geometry =
    let disk = Uldma_io.Disk.create geometry in
    (* a representative 1/3-stroke random access *)
    let service =
      Units.to_us (Uldma_io.Disk.service_time disk ~block:(geometry.Uldma_io.Disk.blocks / 3))
    in
    Tbl.add_row tbl
      [
        geometry.Uldma_io.Disk.name;
        Printf.sprintf "%.0f us" service;
        pct kernel_us service;
        pct ext_us service;
      ]
  in
  disk_row Uldma_io.Disk.disk_1996;
  disk_row Uldma_io.Disk.disk_modern;
  Tbl.add_rule tbl;
  List.iter
    (fun (link : Uldma_net.Link.t) ->
      let wire = Units.to_us (Uldma_net.Link.wire_time_ps link 4096) in
      Tbl.add_row tbl
        [ link.Uldma_net.Link.name ^ " (4 KiB message)"; Printf.sprintf "%.0f us" wire; pct kernel_us wire; pct ext_us wire ])
    [ Uldma_net.Link.atm155; Uldma_net.Link.atm622; Uldma_net.Link.gigabit ];
  tbl

(* ------------------------------------------------------------------ *)
(* Accounting: where the time goes in a mixed workload *)

let accounting () =
  let config =
    {
      Kernel.default_config with
      Kernel.mechanism = Engine.Ext_shadow;
      backend = Kernel.Local { bytes_per_s = 1e9 };
      sched = Sched.Round_robin { quantum = 40 };
      ram_size = 2 * 1024 * 1024;
    }
  in
  let kernel = Kernel.create config in
  let mech = Uldma.Api.find_exn "ext-shadow" in
  let add_dma_user name iterations =
    let p = Kernel.spawn kernel ~name ~program:[||] () in
    let src = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
    let dst = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
    let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
    let prepared =
      mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages = 2 }
        ~dst:{ Mech.vaddr = dst; pages = 2 }
    in
    Process.set_program p
      (Stub_loop.build_loop
         {
           Stub_loop.iterations;
           transfer_size = 1024;
           src_base = src;
           dst_base = dst;
           pages = 2;
           result_va;
         }
         ~emit_dma:prepared.Mech.emit_dma)
  in
  add_dma_user "sender-a" 150;
  add_dma_user "sender-b" 150;
  let busy = Kernel.spawn kernel ~name:"compute" ~program:[||] () in
  let asm = Uldma_cpu.Asm.create () in
  let loop = Uldma_cpu.Asm.fresh_label asm "busy" in
  Uldma_cpu.Asm.li asm 10 0;
  Uldma_cpu.Asm.li asm 11 4000;
  Uldma_cpu.Asm.label asm loop;
  Uldma_cpu.Asm.add asm 12 12 (Uldma_cpu.Isa.Imm 1);
  Uldma_cpu.Asm.add asm 10 10 (Uldma_cpu.Isa.Imm 1);
  Uldma_cpu.Asm.blt asm 10 11 loop;
  Uldma_cpu.Asm.halt asm;
  Process.set_program busy (Uldma_cpu.Asm.assemble asm);
  ignore (Kernel.run kernel ~max_steps:5_000_000 () : Kernel.run_result);
  Metrics.to_table (Metrics.snapshot kernel)

(* ------------------------------------------------------------------ *)
(* Ping-pong: two full machines exchanging messages over the wire *)

type pingpong_send = Remote_store | Ext_shadow_dma | Kernel_dma

(* Both nodes run the same program shape: the pinger sends k then
   spins on its local flag until the peer echoes k; the ponger waits
   first. Flags travel as Telegraphos remote writes or as 8-byte DMAs
   into the peer's flag word. *)
let pingpong_program ~rounds ~is_pinger ~local_flag ~remote_flag ~send =
  let asm = Uldma_cpu.Asm.create () in
  let send_k () =
    (match send with
    | Remote_store -> Uldma_cpu.Asm.store asm ~base:13 ~off:0 16
    | Ext_shadow_dma ->
      (* place k in the out-buffer (r14), then a 2-access DMA *)
      Uldma_cpu.Asm.store asm ~base:14 ~off:0 16;
      Uldma_cpu.Asm.mov asm Mech.reg_vsrc 14;
      Uldma_cpu.Asm.mov asm Mech.reg_vdst 13;
      Uldma_cpu.Asm.li asm Mech.reg_size 8;
      Uldma.Ext_shadow.emit_dma asm
    | Kernel_dma ->
      Uldma_cpu.Asm.store asm ~base:14 ~off:0 16;
      Uldma_cpu.Asm.mov asm Mech.reg_vsrc 14;
      Uldma_cpu.Asm.mov asm Mech.reg_vdst 13;
      Uldma_cpu.Asm.li asm Mech.reg_size 8;
      Uldma.Kernel_dma.emit_dma asm);
    Uldma_cpu.Asm.mb asm
  in
  let wait_k () =
    let spin = Uldma_cpu.Asm.fresh_label asm "spin" in
    Uldma_cpu.Asm.label asm spin;
    Uldma_cpu.Asm.load asm 4 ~base:12 ~off:0;
    Uldma_cpu.Asm.bne asm 4 16 spin
  in
  Uldma_cpu.Asm.li asm 12 local_flag;
  Uldma_cpu.Asm.li asm 13 remote_flag;
  Uldma_cpu.Asm.li asm 14 (local_flag + 64) (* out-buffer word *);
  Uldma_cpu.Asm.li asm 16 0 (* k *);
  Uldma_cpu.Asm.li asm 17 rounds;
  let round = Uldma_cpu.Asm.fresh_label asm "round" in
  Uldma_cpu.Asm.label asm round;
  Uldma_cpu.Asm.add asm 16 16 (Uldma_cpu.Isa.Imm 1);
  if is_pinger then begin
    send_k ();
    wait_k ()
  end
  else begin
    wait_k ();
    send_k ()
  end;
  Uldma_cpu.Asm.blt asm 16 17 round;
  Uldma_cpu.Asm.halt asm;
  Uldma_cpu.Asm.assemble asm

let pingpong_rtt ~link ~send ~rounds =
  let mechanism =
    match send with
    | Remote_store | Kernel_dma -> Engine.Ext_shadow
    | Ext_shadow_dma -> Engine.Ext_shadow
  in
  let config =
    {
      Kernel.default_config with
      Kernel.ram_size = 64 * Layout.page_size;
      mechanism;
      backend = Kernel.Local { bytes_per_s = 1e9 };
    }
  in
  (* a 2-node mesh on the new N-node surface: ping is node 0, pong is
     node 1 (plain remote offsets route to the successor, i.e. the peer) *)
  let cluster =
    Uldma.Cluster.create ~net:(Uldma_net.Backend.linked link) ~nodes:2 ~config ()
  in
  let setup node ~is_pinger =
    let kernel = Uldma.Cluster.node cluster node in
    let p = Kernel.spawn kernel ~name:(if is_pinger then "ping" else "pong") ~program:[||] () in
    let flag = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
    (p, flag)
  in
  (* two passes: allocate flags first to learn their physical bases *)
  let a, flag_a = setup 0 ~is_pinger:true in
  let b, flag_b = setup 1 ~is_pinger:false in
  let paddr_of node p flag = Kernel.user_paddr (Uldma.Cluster.node cluster node) p flag in
  let remote_for ~src ~dst p peer_paddr =
    Uldma.Cluster.map_remote cluster ~src ~dst p ~remote_paddr:peer_paddr ~n:1
      ~perms:Perms.read_write
  in
  let remote_a = remote_for ~src:0 ~dst:1 a (Layout.page_base (paddr_of 1 b flag_b)) in
  let remote_b = remote_for ~src:1 ~dst:0 b (Layout.page_base (paddr_of 0 a flag_a)) in
  let finish_setup node p ~is_pinger ~local_flag ~remote_flag =
    let kernel = Uldma.Cluster.node cluster node in
    (match send with
    | Ext_shadow_dma ->
      (match Kernel.alloc_dma_context kernel p with Some _ -> () | None -> failwith "ctx");
      ignore (Kernel.map_shadow_alias kernel p ~vaddr:local_flag ~n:1 ~window:`Dma : int);
      ignore (Kernel.map_shadow_alias kernel p ~vaddr:remote_flag ~n:1 ~window:`Dma : int)
    | Remote_store | Kernel_dma -> ());
    Process.set_program p
      (pingpong_program ~rounds ~is_pinger ~local_flag ~remote_flag ~send)
  in
  finish_setup 0 a ~is_pinger:true ~local_flag:flag_a ~remote_flag:remote_a;
  finish_setup 1 b ~is_pinger:false ~local_flag:flag_b ~remote_flag:remote_b;
  (match Uldma.Cluster.run cluster () with
  | Uldma.Cluster.All_exited -> ()
  | Uldma.Cluster.Max_steps | Uldma.Cluster.Predicate -> failwith "pingpong did not converge");
  Units.to_us (Uldma.Cluster.now_ps cluster) /. float_of_int rounds

let pingpong () =
  let tbl =
    Tbl.create
      ~title:"Ping-pong round-trip time between two full machines (one 8-byte message each way)"
      ~columns:
        [
          ("message launch", Tbl.Left);
          ("NI accesses", Tbl.Right);
          ("ATM 155 RTT (us)", Tbl.Right);
          ("GbE RTT (us)", Tbl.Right);
        ]
  in
  let rounds = 20 in
  List.iter
    (fun (name, send, accesses) ->
      let rtt link = pingpong_rtt ~link ~send ~rounds in
      Tbl.add_row tbl
        [
          name;
          accesses;
          Printf.sprintf "%.1f" (rtt Uldma_net.Link.atm155);
          Printf.sprintf "%.1f" (rtt Uldma_net.Link.gigabit);
        ])
    [
      ("remote store (Telegraphos write)", Remote_store, "1");
      ("ext-shadow user-level DMA", Ext_shadow_dma, "2");
      ("kernel-level DMA (syscall)", Kernel_dma, "4+trap");
    ];
  tbl

(* ------------------------------------------------------------------ *)
(* Key-width ablation: why "close to 60 bits" *)

let ablate_key_width () =
  let tbl =
    Tbl.create
      ~title:
        "Key-width ablation: Monte-Carlo acceptance of 200,000 random guesses per width"
      ~columns:
        [
          ("key width (bits)", Tbl.Right);
          ("expected hits", Tbl.Right);
          ("observed hits", Tbl.Right);
          ("verdict", Tbl.Left);
        ]
  in
  let guesses = 200_000 in
  List.iter
    (fun width ->
      let config = { Kernel.default_config with Kernel.mechanism = Engine.Key_based } in
      let kernel = Kernel.create config in
      let p = Kernel.spawn kernel ~name:"victim" ~program:[||] () in
      let data = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
      let context, key, _ =
        match Kernel.alloc_dma_context kernel p with Some x -> x | None -> assert false
      in
      (* narrow the key space: re-key the context to [width] bits *)
      let mask = (1 lsl width) - 1 in
      let narrow_key = key land mask in
      let engine = Kernel.engine kernel in
      let device = Engine.device engine in
      ignore
        (device.Bus.handle
           {
             Txn.op = Txn.Store;
             paddr = Layout.kernel_control_page + Regmap.key_offset ~context;
             value = narrow_key;
             pid = -1;
             at = 0;
           }
          : int);
      let shadow = Uldma_mmu.Shadow.encode (Kernel.user_paddr kernel p data) in
      let rng = Rng.create ~seed:(1000 + width) in
      let hits = ref 0 in
      for _ = 1 to guesses do
        let guess = Rng.dma_key rng land mask in
        let c = Context_file.get (Engine.contexts engine) context in
        Context_file.clear_args c;
        ignore
          (device.Bus.handle
             {
               Txn.op = Txn.Store;
               paddr = shadow;
               value = Uldma.Key_dma.key_context_word ~key:guess ~context;
               pid = 99;
               at = 0;
             }
            : int);
        if c.Context_file.dest <> None then incr hits
      done;
      let expected = float_of_int guesses /. (2.0 ** float_of_int width) in
      Tbl.add_row tbl
        [
          string_of_int width;
          Printf.sprintf "%.1f" expected;
          string_of_int !hits;
          (if width >= 40 then "practically unguessable"
           else if !hits > 0 then "BREAKABLE by brute force"
           else "marginal");
        ])
    [ 8; 12; 16; 24; 40; 58 ];
  tbl

(* ------------------------------------------------------------------ *)
(* Calibration (lmbench-style validation of the cost model) *)

(* Run a loop program in a fresh machine and return the per-iteration
   cost in picoseconds, after subtracting the empty-loop baseline. *)
let loop_cost ~iterations ~setup ~body =
  let run with_body =
    let config = { Kernel.default_config with Kernel.ram_size = 64 * Layout.page_size } in
    let kernel = Kernel.create config in
    let p = Kernel.spawn kernel ~name:"cal" ~program:[||] () in
    setup kernel p;
    let asm = Uldma_cpu.Asm.create () in
    let loop = Uldma_cpu.Asm.fresh_label asm "cal_loop" in
    Uldma_cpu.Asm.li asm 10 0;
    Uldma_cpu.Asm.li asm 11 iterations;
    Uldma_cpu.Asm.label asm loop;
    if with_body then body kernel p asm;
    Uldma_cpu.Asm.add asm 10 10 (Uldma_cpu.Isa.Imm 1);
    Uldma_cpu.Asm.blt asm 10 11 loop;
    Uldma_cpu.Asm.halt asm;
    Process.set_program p (Uldma_cpu.Asm.assemble asm);
    let t0 = Kernel.now_ps kernel in
    (match Kernel.run kernel ~max_steps:(100 * iterations) () with
    | Kernel.All_exited -> ()
    | Kernel.Max_steps | Kernel.Predicate -> failwith "calibration loop did not finish");
    (Kernel.now_ps kernel - t0) / iterations
  in
  run true - run false

let calibration () =
  let tm = Timing.alpha3000_300 in
  let tbl =
    Tbl.create
      ~title:
        "Calibration check (lmbench-style): measured primitive costs vs the configured model"
      ~columns:
        [
          ("primitive", Tbl.Left);
          ("configured", Tbl.Right);
          ("measured", Tbl.Right);
          ("note", Tbl.Left);
        ]
  in
  let iterations = 500 in
  let ps_cell ps = Format.asprintf "%a" Units.pp_time ps in
  let no_setup _ _ = () in
  let row name ~configured ~extra_instr ~setup ~body note =
    let measured = loop_cost ~iterations ~setup ~body in
    (* the body's own instruction-issue costs are part of the model *)
    let measured = measured - (extra_instr * Timing.instruction_ps tm) in
    Tbl.add_row tbl [ name; ps_cell configured; ps_cell measured; note ]
  in
  row "empty system call"
    ~configured:(Timing.syscall_ps tm)
    ~extra_instr:2 ~setup:no_setup
    ~body:(fun _ _ asm ->
      Uldma_cpu.Asm.li asm 0 Sysno.sys_get_time;
      Uldma_cpu.Asm.syscall asm)
    "sec. 2.2: '1,000-5,000 processor cycles'";
  row "null PAL call"
    ~configured:(Timing.pal_call_ps tm)
    ~extra_instr:2
    ~setup:(fun kernel _ ->
      match Kernel.install_pal kernel ~index:7 [| Uldma_cpu.Isa.Nop |] with
      | Ok () -> ()
      | Error e -> failwith e)
    ~body:(fun _ _ asm -> Uldma_cpu.Asm.call_pal asm 7)
    "CALL_PAL dispatch + 1-instr body";
  row "uncached store (bus crossing)"
    ~configured:(Timing.uncached_ps tm Uldma_bus.Txn.Store)
    ~extra_instr:2
    ~setup:(fun kernel p ->
      match Kernel.alloc_dma_context kernel p with
      | Some _ -> ()
      | None -> failwith "no context")
    ~body:(fun _ _ asm ->
      Uldma_cpu.Asm.li asm 12 Vm.context_page_va;
      Uldma_cpu.Asm.store asm ~base:12 ~off:0 10)
    "7 bus cycles at 12.5 MHz";
  row "cached access"
    ~configured:(Timing.cached_access_ps tm)
    ~extra_instr:2
    ~setup:(fun kernel p ->
      ignore (Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write : int))
    ~body:(fun _ p asm ->
      Uldma_cpu.Asm.li asm 12 p.Process.next_va;
      Uldma_cpu.Asm.store asm ~base:12 ~off:(-8) 10)
    "cache-hit store to own page";
  tbl

(* ------------------------------------------------------------------ *)
(* Key security (sec. 3.1) *)

let key_security () =
  let tbl =
    Tbl.create
      ~title:"Sec. 3.1: 'It would be easier to guess the UNIX password than to guess a DMA key'"
      ~columns:[ ("observation", Tbl.Left); ("value", Tbl.Left) ]
  in
  let config = { Kernel.default_config with Kernel.mechanism = Engine.Key_based } in
  let kernel = Kernel.create config in
  let p = Kernel.spawn kernel ~name:"victim" ~program:[||] () in
  let data = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let context, key, _ =
    match Kernel.alloc_dma_context kernel p with Some x -> x | None -> assert false
  in
  let engine = Kernel.engine kernel in
  let device = Engine.device engine in
  let paddr = Kernel.user_paddr kernel p data in
  let shadow = Uldma_mmu.Shadow.encode paddr in
  let rng = Rng.create ~seed:7 in
  let guesses = 200_000 in
  for _ = 1 to guesses do
    let guess = Rng.dma_key rng in
    ignore
      (device.Bus.handle
         {
           Txn.op = Txn.Store;
           paddr = shadow;
           value = Uldma.Key_dma.key_context_word ~key:guess ~context;
           pid = 99;
           at = 0;
         }
        : int)
  done;
  let counters = Engine.counters engine in
  (* positive control: the real key is accepted *)
  ignore
    (device.Bus.handle
       {
         Txn.op = Txn.Store;
         paddr = shadow;
         value = Uldma.Key_dma.key_context_word ~key ~context;
         pid = p.Process.pid;
         at = 0;
       }
      : int);
  let accepted_ctx = Context_file.get (Engine.contexts engine) context in
  Tbl.add_row tbl [ "key width (bits)"; "58" ];
  Tbl.add_row tbl [ "analytic P(single guess)"; "2^-58 ~= 3.5e-18" ];
  Tbl.add_row tbl [ "random guesses tried"; string_of_int guesses ];
  Tbl.add_row tbl [ "guesses rejected"; string_of_int counters.Engine.key_rejected ];
  Tbl.add_row tbl
    [ "guesses accepted"; string_of_int (guesses - counters.Engine.key_rejected) ];
  Tbl.add_row tbl
    [
      "correct key accepted (control)";
      (match accepted_ctx.Context_file.dest with Some _ -> "yes" | None -> "NO (bug!)");
    ];
  tbl

(* ------------------------------------------------------------------ *)
(* Ablations *)

let single_stub_run ~mechanism ~write_buffer ~get_emit =
  let config =
    {
      Kernel.default_config with
      Kernel.mechanism;
      write_buffer;
      ram_size = 64 * Layout.page_size;
    }
  in
  let kernel = Kernel.create config in
  let p = Kernel.spawn kernel ~name:"app" ~program:[||] () in
  let a = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let b = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
  let emit = get_emit kernel p ~src:{ Mech.vaddr = a; pages = 1 } ~dst:{ Mech.vaddr = b; pages = 1 } in
  Process.set_program p
    (Stub_loop.build_single ~vsrc:a ~vdst:b ~size:256 ~result_va ~emit_dma:emit);
  ignore (Kernel.run kernel ~max_steps:100_000 () : Kernel.run_result);
  let status = Stub_loop.read_last_status kernel p ~result_va in
  let started = List.length (Engine.transfers (Kernel.engine kernel)) in
  (status, started)

let verdict (status, started) =
  if started = 1 && status >= 0 then "OK"
  else if started = 0 && status < 0 then "initiation failed (safe)"
  else if started = 0 && status >= 0 then "PHANTOM SUCCESS (unsafe)"
  else "started but reported failed (unsafe)"

let ablate_wbuf () =
  let tbl =
    Tbl.create
      ~title:
        "Write-buffer ablation: why the paper inserts memory barriers (collapse+forwarding buffer)"
      ~columns:
        [
          ("stub", Tbl.Left);
          ("write buffer", Tbl.Left);
          ("status", Tbl.Right);
          ("transfers", Tbl.Right);
          ("verdict", Tbl.Left);
        ]
  in
  let hazardous = Write_buffer.Bypass { forward = true; collapse = true } in
  let aliases_then emit k p ~src ~dst =
    Mech.map_dma_aliases k p ~src ~dst;
    emit
  in
  let prepared_of (m : Mech.t) k p ~src ~dst = (m.Mech.prepare k p ~src ~dst).Mech.emit_dma in
  let stubs =
    [
      ( "rep-args-5 with MBs",
        Engine.Rep_args Seq_matcher.Five,
        aliases_then Uldma.Rep_args.emit_dma_five_no_retry );
      ( "rep-args-5 without MBs",
        Engine.Rep_args Seq_matcher.Five,
        aliases_then Uldma.Rep_args.emit_dma_five_no_retry_no_mb );
      ("key-based (has MB)", Engine.Key_based, prepared_of Uldma.Key_dma.mech);
      ("ext-shadow", Engine.Ext_shadow, prepared_of Uldma.Ext_shadow.mech);
    ]
  in
  List.iter
    (fun (name, mechanism, get_emit) ->
      List.iter
        (fun (wb_name, write_buffer) ->
          let r = single_stub_run ~mechanism ~write_buffer ~get_emit in
          Tbl.add_row tbl
            [ name; wb_name; string_of_int (fst r); string_of_int (snd r); verdict r ])
        [ ("ordered", Write_buffer.Ordered); ("collapse+forward", hazardous) ])
    stubs;
  tbl

let ablate_contexts () =
  let tbl =
    Tbl.create
      ~title:
        "Register-context ablation ('say 4 to 8'): 8 processes, losers fall back to kernel DMA"
      ~columns:
        [
          ("contexts", Tbl.Right);
          ("user-level procs", Tbl.Right);
          ("kernel-path procs", Tbl.Right);
          ("avg init (us)", Tbl.Right);
        ]
  in
  let procs = 8 and per_proc = 50 in
  List.iter
    (fun n_contexts ->
      let config =
        {
          Kernel.default_config with
          Kernel.mechanism = Engine.Key_based;
          n_contexts = max n_contexts 1;
          sched = Sched.Round_robin { quantum = 500 };
          ram_size = 8 * 1024 * 1024;
        }
      in
      let kernel = Kernel.create config in
      (* burn contexts so that effectively [n_contexts] are available *)
      if n_contexts = 0 then begin
        let burner = Kernel.spawn kernel ~name:"burner" ~program:[||] () in
        let rec burn () =
          match Kernel.alloc_dma_context kernel burner with Some _ -> burn () | None -> ()
        in
        burn ()
      end;
      let user = ref 0 and via_kernel = ref 0 in
      for i = 1 to procs do
        let p = Kernel.spawn kernel ~name:(Printf.sprintf "p%d" i) ~program:[||] () in
        let src = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
        let dst = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
        let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
        let emit =
          try
            let prepared =
              Uldma.Key_dma.mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages = 2 }
                ~dst:{ Mech.vaddr = dst; pages = 2 }
            in
            incr user;
            prepared.Mech.emit_dma
          with Failure _ ->
            incr via_kernel;
            Uldma.Kernel_dma.emit_dma
        in
        Process.set_program p
          (Stub_loop.build_loop
             {
               Stub_loop.iterations = per_proc;
               transfer_size = 512;
               src_base = src;
               dst_base = dst;
               pages = 2;
               result_va;
             }
             ~emit_dma:emit)
      done;
      let t0 = Kernel.now_ps kernel in
      ignore (Kernel.run kernel ~max_steps:20_000_000 () : Kernel.run_result);
      let total_us = Units.to_us (Kernel.now_ps kernel - t0) in
      Tbl.add_row tbl
        [
          string_of_int n_contexts;
          string_of_int !user;
          string_of_int !via_kernel;
          Printf.sprintf "%.2f" (total_us /. float_of_int (procs * per_proc));
        ])
    [ 0; 1; 2; 4; 8 ];
  tbl

let ablate_quantum () =
  let tbl =
    Tbl.create
      ~title:
        "Scheduler-quantum ablation: two five-access users sharing the engine (100 DMAs each)"
      ~columns:
        [
          ("quantum (instr)", Tbl.Right);
          ("completed", Tbl.Right);
          ("broken sequences", Tbl.Right);
          ("context switches", Tbl.Right);
          ("outcome", Tbl.Left);
        ]
  in
  let per_proc = 100 in
  List.iter
    (fun quantum ->
      let config =
        {
          Kernel.default_config with
          Kernel.mechanism = Engine.Rep_args Seq_matcher.Five;
          sched = Sched.Round_robin { quantum };
          ram_size = 2 * 1024 * 1024;
        }
      in
      let kernel = Kernel.create config in
      let results = ref [] in
      for i = 1 to 2 do
        let p = Kernel.spawn kernel ~name:(Printf.sprintf "user%d" i) ~program:[||] () in
        let src = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
        let dst = Kernel.alloc_pages kernel p ~n:2 ~perms:Perms.read_write in
        let result_va = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
        let prepared =
          Uldma.Rep_args.mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages = 2 }
            ~dst:{ Mech.vaddr = dst; pages = 2 }
        in
        Process.set_program p
          (Stub_loop.build_loop
             {
               Stub_loop.iterations = per_proc;
               transfer_size = 512;
               src_base = src;
               dst_base = dst;
               pages = 2;
               result_va;
             }
             ~emit_dma:prepared.Mech.emit_dma);
        results := (p, result_va) :: !results
      done;
      let finished =
        match Kernel.run kernel ~max_steps:3_000_000 () with
        | Kernel.All_exited -> true
        | Kernel.Max_steps -> false
        | Kernel.Predicate -> false
      in
      let completed =
        List.fold_left
          (fun acc (p, result_va) ->
            acc + if finished then Stub_loop.read_successes kernel p ~result_va else 0)
          0 !results
      in
      let counters = Engine.counters (Kernel.engine kernel) in
      Tbl.add_row tbl
        [
          string_of_int quantum;
          Printf.sprintf "%d/%d" completed (2 * per_proc);
          string_of_int counters.Engine.rejected;
          string_of_int (Kernel.context_switches kernel);
          (if not finished then "LIVELOCK (step budget exhausted)"
           else if completed = 2 * per_proc then "all DMAs completed"
           else "finished with failures");
        ])
    [ 1; 3; 5; 10; 20; 50; 200; 1000 ];
  tbl

(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "table1"; title = "Table 1: initiation latency"; paper_ref = "sec. 3.4, Table 1"; run = (fun () -> table1 ()) };
    { id = "matrix6"; title = "Six-mechanism cost/protection/atomicity matrix"; paper_ref = "sec. 3.4 + related work (IOMMU, CAPIO)"; run = matrix6 };
    { id = "bus_sweep"; title = "Bus frequency sweep"; paper_ref = "sec. 3.4"; run = bus_sweep };
    { id = "os_sweep"; title = "Syscall overhead sweep"; paper_ref = "sec. 2.2"; run = os_sweep };
    { id = "crossover"; title = "Initiation vs wire-time crossover"; paper_ref = "sec. 1-2.2"; run = crossover };
    { id = "fig2_shrimp"; title = "SHRIMP-2/FLASH race"; paper_ref = "Fig. 2, sec. 2.5-2.6"; run = fig2_shrimp };
    { id = "fig5_attack3"; title = "Attack on 3-access variant"; paper_ref = "Fig. 5"; run = fig5_attack3 };
    { id = "fig6_attack4"; title = "Attack on 4-access variant"; paper_ref = "Fig. 6"; run = fig6_attack4 };
    { id = "fig7_retry"; title = "Five-access method under preemption"; paper_ref = "Fig. 7"; run = fig7_retry };
    { id = "fig8_proof"; title = "Exhaustive interleaving exploration"; paper_ref = "Fig. 8, sec. 3.3.1"; run = fig8_proof };
    { id = "atomics"; title = "User-level atomic operations"; paper_ref = "sec. 3.5"; run = atomics };
    { id = "key_security"; title = "Key-guessing security"; paper_ref = "sec. 3.1"; run = key_security };
    { id = "calibration"; title = "Cost-model calibration check"; paper_ref = "sec. 2.2/3.4 anchors"; run = calibration };
    { id = "pingpong"; title = "Two-node ping-pong latency"; paper_ref = "sec. 3.5 context (NOW messaging)"; run = pingpong };
    { id = "accounting"; title = "Machine accounting for a mixed workload"; paper_ref = "methodology"; run = accounting };
    { id = "disk_vs_net"; title = "Disk vs network service times"; paper_ref = "sec. 1 motivation"; run = disk_vs_net };
    { id = "latency_tail"; title = "Initiation latency under contention"; paper_ref = "sec. 3.1-3.3 atomicity"; run = latency_tail };
    { id = "ablate_key_width"; title = "Key-width security ablation"; paper_ref = "sec. 3.1"; run = ablate_key_width };
    { id = "ablate_wbuf"; title = "Write-buffer / memory-barrier ablation"; paper_ref = "Table 1 methodology"; run = ablate_wbuf };
    { id = "ablate_contexts"; title = "Register-context count ablation"; paper_ref = "sec. 3.1"; run = ablate_contexts };
    { id = "ablate_quantum"; title = "Scheduler quantum ablation"; paper_ref = "sec. 3.3"; run = ablate_quantum };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
