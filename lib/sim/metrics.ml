open Uldma_util
open Uldma_os
open Uldma_dma

type process_row = {
  pid : int;
  name : string;
  state : string;
  instructions : int;
  syscalls : int;
  cpu_time_us : float;
  share : float;
}

type t = {
  processes : process_row list;
  elapsed_us : float;
  context_switches : int;
  bus_busy_us : float;
  bus_utilization : float;
  transfers_started : int;
  initiations_rejected : int;
  atomics : int;
  remote_sends : int;
  counters : Uldma_obs.Counters.t;
}

let snapshot kernel =
  let procs = Kernel.processes kernel in
  let total_cpu =
    List.fold_left (fun acc p -> acc + p.Process.cpu_time_ps) 0 procs |> max 1
  in
  let row (p : Process.t) =
    {
      pid = p.Process.pid;
      name = p.Process.name;
      state = Format.asprintf "%a" Process.pp_state p.Process.state;
      instructions = p.Process.instructions_retired;
      syscalls = p.Process.syscalls;
      cpu_time_us = Units.to_us p.Process.cpu_time_ps;
      share = float_of_int p.Process.cpu_time_ps /. float_of_int total_cpu;
    }
  in
  (* the uniform named-counter registry is the source of truth; the
     flat record fields remain as convenient typed views of it *)
  let named = Kernel.counter_snapshot kernel in
  let counters = Engine.counters (Kernel.engine kernel) in
  let elapsed = Kernel.now_ps kernel in
  let busy = Uldma_bus.Bus.busy_ps (Kernel.bus kernel) in
  {
    processes = List.map row procs;
    elapsed_us = Units.to_us elapsed;
    context_switches = Kernel.context_switches kernel;
    bus_busy_us = Units.to_us busy;
    bus_utilization = (if elapsed = 0 then 0.0 else float_of_int busy /. float_of_int elapsed);
    transfers_started = counters.Engine.started;
    initiations_rejected = counters.Engine.rejected;
    atomics = counters.Engine.atomics;
    remote_sends = counters.Engine.remote_sends;
    counters = named;
  }

let to_table t =
  let tbl =
    Tbl.create ~title:"machine accounting"
      ~columns:
        [
          ("process", Tbl.Left);
          ("state", Tbl.Left);
          ("instructions", Tbl.Right);
          ("syscalls", Tbl.Right);
          ("cpu time (us)", Tbl.Right);
          ("share", Tbl.Right);
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row tbl
        [
          Printf.sprintf "%d:%s" r.pid r.name;
          r.state;
          string_of_int r.instructions;
          string_of_int r.syscalls;
          Printf.sprintf "%.1f" r.cpu_time_us;
          Printf.sprintf "%.0f%%" (100.0 *. r.share);
        ])
    t.processes;
  Tbl.add_rule tbl;
  let summary label value = Tbl.add_row tbl [ label; value; ""; ""; ""; "" ] in
  summary "elapsed" (Printf.sprintf "%.1f us" t.elapsed_us);
  summary "context switches" (string_of_int t.context_switches);
  summary "bus utilization" (Printf.sprintf "%.0f%% (%.1f us busy)" (100.0 *. t.bus_utilization) t.bus_busy_us);
  summary "transfers / rejects" (Printf.sprintf "%d / %d" t.transfers_started t.initiations_rejected);
  summary "atomic ops" (string_of_int t.atomics);
  summary "remote sends" (string_of_int t.remote_sends);
  Tbl.add_rule tbl;
  List.iter (fun (name, v) -> summary name v) (Uldma_obs.Counters.rows t.counters);
  tbl

let fairness_spread t =
  let times =
    List.filter_map
      (fun r -> if r.cpu_time_us > 0.0 then Some r.cpu_time_us else None)
      t.processes
  in
  match times with
  | [] -> 1.0
  | first :: rest ->
    let mn = List.fold_left min first rest and mx = List.fold_left max first rest in
    if mn = 0.0 then infinity else mx /. mn
