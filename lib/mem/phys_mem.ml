(* Page-granular copy-on-write physical memory.

   RAM is an array of page-sized [Bytes.t] buffers. [copy] shares every
   page between the two instances (O(#pages) pointer copies, no byte is
   moved); the first store into a shared page faults in a private copy
   of that page only. Pages that were never written since [create] all
   alias one immutable all-zero page, so a fresh machine costs one page
   of backing store regardless of its RAM size.

   The ownership protocol: [owned.(i)] is true iff [pages.(i)] is
   referenced by this instance alone and may be mutated in place.
   [copy] clears the flag on both sides — a page can only regain
   ownership by being re-copied on the next write. This over-copies in
   the rare case where every other sharer has already faulted the page
   in, but it never aliases a mutation. *)

module Iset = Set.Make (Int)

type t = {
  size : int;
  pages : Bytes.t array; (* length size / Layout.page_size *)
  owned : bool array; (* owned.(i): pages.(i) is private to this t *)
  mutable touched : Iset.t;
      (* indices of pages ever written since [create], inherited across
         [copy]. A page outside this set still aliases [zero_page], so
         state hashing only needs to visit [touched] — O(dirtied), not
         O(RAM). Persistent set: sharing it with a copy is safe because
         each side grows its own version. *)
  dg_lo : int array; (* cached per-page content digests (two Fp128 lanes) *)
  dg_hi : int array;
  dg_ok : bool array;
      (* dg_ok.(i): dg_lo/hi.(i) hold the digest of pages.(i)'s current
         content. Under COW a shared page is immutable, so the cache
         survives [copy] on both sides and is invalidated only when
         [page_rw] hands out a writable view. *)
  mutable digest_fills : int;
      (* number of times a page was actually hashed to (re)fill the
         cache — the zero-page shortcut and cache hits don't count. *)
}

exception Fault of int

(* The distinguished all-zero page. Shared by every never-written page
   of every instance; the write path never mutates a non-owned page, so
   it stays zero forever. *)
let zero_page = Bytes.make Layout.page_size '\000'

let create ~size =
  if size <= 0 || not (Layout.is_page_aligned size) then
    invalid_arg (Printf.sprintf "Phys_mem.create: size %d not page-aligned" size);
  if size > Layout.max_ram_size then
    invalid_arg "Phys_mem.create: size exceeds Layout.max_ram_size";
  let n = size lsr Layout.page_shift in
  {
    size;
    pages = Array.make n zero_page;
    owned = Array.make n false;
    touched = Iset.empty;
    dg_lo = Array.make n 0;
    dg_hi = Array.make n 0;
    dg_ok = Array.make n false;
    digest_fills = 0;
  }

let size t = t.size

let copy t =
  Array.fill t.owned 0 (Array.length t.owned) false;
  {
    size = t.size;
    pages = Array.copy t.pages;
    owned = Array.make (Array.length t.pages) false;
    touched = t.touched;
    (* Shared pages are immutable, so their cached digests stay valid on
       both sides of the copy. *)
    dg_lo = Array.copy t.dg_lo;
    dg_hi = Array.copy t.dg_hi;
    dg_ok = Array.copy t.dg_ok;
    digest_fills = 0;
  }

let page_count t = Array.length t.pages

let owned_pages t =
  let n = ref 0 in
  Array.iter (fun o -> if o then incr n) t.owned;
  !n

(* A writable view of page [i]: fault in a private copy first if the
   page is (possibly) shared. Owned implies touched ([owned.(i)] is only
   ever set below, right after the [Iset.add]), so an already-owned page
   skips the persistent-set insertion entirely. *)
let page_rw t i =
  t.dg_ok.(i) <- false;
  if t.owned.(i) then t.pages.(i)
  else begin
    t.touched <- Iset.add i t.touched;
    let fresh = Bytes.copy t.pages.(i) in
    t.pages.(i) <- fresh;
    t.owned.(i) <- true;
    fresh
  end

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then raise (Fault addr)

let check_word t addr =
  check t addr Layout.word_size;
  if not (Layout.is_word_aligned addr) then raise (Fault addr)

(* Words never straddle a page: the page size is a multiple of the word
   size and word accesses are aligned. *)
let load_word t addr =
  check_word t addr;
  Int64.to_int
    (Bytes.get_int64_le t.pages.(addr lsr Layout.page_shift) (addr land (Layout.page_size - 1)))

let store_word t addr value =
  check_word t addr;
  Bytes.set_int64_le
    (page_rw t (addr lsr Layout.page_shift))
    (addr land (Layout.page_size - 1))
    (Int64.of_int value)

let load_byte t addr =
  check t addr 1;
  Char.code (Bytes.get t.pages.(addr lsr Layout.page_shift) (addr land (Layout.page_size - 1)))

let store_byte t addr value =
  check t addr 1;
  Bytes.set
    (page_rw t (addr lsr Layout.page_shift))
    (addr land (Layout.page_size - 1))
    (Char.chr (value land 0xff))

(* Apply [f page_index offset_in_page position_in_range span_len] to
   each maximal single-page span of [addr, addr+len). Bounds must have
   been checked already. *)
let iter_spans addr len f =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let i = a lsr Layout.page_shift in
    let off = a land (Layout.page_size - 1) in
    let span = min (len - !pos) (Layout.page_size - off) in
    f i off !pos span;
    pos := !pos + span
  done

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  if len > 0 && src <> dst then begin
    (* Stage through a scratch buffer: overlapping ranges then behave
       like memmove, and page boundaries of src and dst need not line
       up. *)
    let tmp = Bytes.create len in
    iter_spans src len (fun i off pos span -> Bytes.blit t.pages.(i) off tmp pos span);
    iter_spans dst len (fun i off pos span -> Bytes.blit tmp pos (page_rw t i) off span)
  end

let fill t ~addr ~len ~byte =
  check t addr len;
  let c = Char.chr (byte land 0xff) in
  iter_spans addr len (fun i off _pos span ->
      if c = '\000' && off = 0 && span = Layout.page_size then begin
        (* Zeroing a whole page re-shares the canonical zero page
           instead of dirtying a private one (frame recycling stays
           cheap under copy-on-write). *)
        t.pages.(i) <- zero_page;
        t.owned.(i) <- false;
        t.dg_ok.(i) <- false;
        t.touched <- Iset.add i t.touched
      end
      else Bytes.fill (page_rw t i) off span c)

let checksum t ~addr ~len =
  check t addr len;
  let acc = ref 0 in
  iter_spans addr len (fun i off _pos span ->
      let page = t.pages.(i) in
      for j = off to off + span - 1 do
        let b = Char.code (Bytes.get page j) in
        acc := ((!acc * 131) + b) land max_int
      done);
  !acc

(* Digest of the canonical zero page, computed at most once per run. *)
let zero_digest = lazy (Uldma_util.Fp128.digest zero_page)

let page_digest t i =
  if t.dg_ok.(i) then (t.dg_lo.(i), t.dg_hi.(i))
  else begin
    let ((lo, hi) as d) =
      if t.pages.(i) == zero_page then Lazy.force zero_digest
      else begin
        t.digest_fills <- t.digest_fills + 1;
        Uldma_util.Fp128.digest t.pages.(i)
      end
    in
    t.dg_lo.(i) <- lo;
    t.dg_hi.(i) <- hi;
    t.dg_ok.(i) <- true;
    d
  end

let digest_fills t = t.digest_fills

let touched_count t = Iset.cardinal t.touched

let iter_touched t f = Iset.iter (fun i -> f i t.pages.(i)) t.touched

let iter_diverged t ~baseline f =
  if baseline.size <> t.size then invalid_arg "Phys_mem.iter_diverged: size mismatch";
  Iset.iter (fun i -> if t.pages.(i) != baseline.pages.(i) then f i t.pages.(i)) t.touched

let equal_range a b ~addr ~len =
  check a addr len;
  check b addr len;
  let equal = ref true in
  iter_spans addr len (fun i off _pos span ->
      if !equal then begin
        let pa = a.pages.(i) and pb = b.pages.(i) in
        if pa != pb then
          (* physically shared spans are equal for free *)
          let j = ref off in
          while !equal && !j < off + span do
            if Bytes.get pa !j <> Bytes.get pb !j then equal := false;
            incr j
          done
      end);
  !equal
