(** Byte-addressable physical RAM.

    The DMA engine's transfer executor and the CPU's cacheable accesses
    both resolve here. MMIO and shadow addresses never reach this
    module: the bus routes them to the engine first. *)

type t

exception Fault of int
(** Raised with the offending physical address on an out-of-range or
    misaligned access. *)

val create : size:int -> t
(** Zero-initialised RAM of [size] bytes; [size] must be page-aligned
    and at most [Layout.max_ram_size]. *)

val size : t -> int

val copy : t -> t
(** Copy-on-write snapshot, for interleaving-explorer forks: O(#pages)
    pointer sharing, with a private page copy faulted in on first write
    to either side. Semantically equivalent to a deep copy. *)

val page_count : t -> int
(** Number of page frames backing this RAM. *)

val owned_pages : t -> int
(** Introspection for tests: how many pages this instance holds a
    private (unshared, writable-in-place) copy of. A fresh or
    just-snapshotted RAM owns none. *)

val page_digest : t -> int -> int * int
(** [page_digest t i] is the {!Uldma_util.Fp128.digest} of page [i]'s
    current content, served from a per-slot cache when valid. Under
    copy-on-write a shared page is immutable, so cached digests survive
    [copy] on both sides and are invalidated only when a writable view
    of the page is handed out. Never-written pages hit a shared
    zero-page digest without hashing anything. *)

val digest_fills : t -> int
(** Number of times [page_digest] actually hashed a page on this
    instance (cache hits and the zero-page shortcut excluded) — for
    bytes-hashed accounting and cache tests. Reset to 0 by [copy] on
    the new instance. *)

val touched_count : t -> int
(** Number of pages ever written since [create] (inherited across
    [copy]). A fresh RAM has touched none. *)

val iter_touched : t -> (int -> Bytes.t -> unit) -> unit
(** [iter_touched t f] applies [f index page] to every page that was
    ever written since [create], in increasing index order. Pages
    outside the touched set still alias the canonical zero page, so
    state hashing over the touched set alone covers all content that
    can differ between two forks of a common root — O(dirtied) work,
    not O(RAM). [f] must not mutate the page. *)

val iter_diverged : t -> baseline:t -> (int -> Bytes.t -> unit) -> unit
(** Like [iter_touched], but restricted to touched pages whose backing
    buffer is no longer physically shared with [baseline] (a common
    ancestor under [copy] that has not been written since, e.g. the
    explorer's root snapshot). Physical sharing implies equal content,
    so skipping shared pages is exact; a page rewritten to
    byte-identical content in a private buffer is still reported —
    harmless for state dedup (a missed merge, never a false one).
    Raises [Invalid_argument] on a size mismatch. *)

val load_word : t -> int -> int
(** 8-byte aligned load. The top byte is truncated into OCaml's 63-bit
    [int]; all simulated programs use values that fit. *)

val store_word : t -> int -> int -> unit

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** The DMA copy primitive. Handles overlapping ranges correctly. *)

val fill : t -> addr:int -> len:int -> byte:int -> unit

val checksum : t -> addr:int -> len:int -> int
(** Order-sensitive checksum of a byte range, used by tests to compare
    regions cheaply. *)

val equal_range : t -> t -> addr:int -> len:int -> bool
