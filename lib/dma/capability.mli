(** CAPIO-style DMA capability table.

    The OS mints a 64-bit unforgeable value per granted region
    (via [Os.grant_dma_cap]) and installs it here through the kernel
    control page; the engine checks every [Capio]-mechanism initiation
    against this table. Revoked entries are retained (flagged) so a
    once-valid capability replayed after revocation is distinguishable
    from a value that was never minted. *)

type cap = {
  value : int;
  ctx : int; (** register context the capability was granted to *)
  pid : int; (** granting process, for revoke-on-exit *)
  base : int; (** physical base of the granted range *)
  len : int;
  rights : Uldma_mem.Perms.t;
  mutable revoked : bool;
}

type t

val create : unit -> t
val copy : t -> t

val install : t -> cap -> unit
(** Add an entry (a re-minted value supersedes the old entry). *)

val find : t -> value:int -> cap option

val revoke_value : t -> value:int -> unit
val revoke_ctx : t -> ctx:int -> unit
val revoke_pid : t -> pid:int -> unit

val revoke_range : t -> base:int -> len:int -> unit
(** Revoke every capability whose physical range overlaps
    [[base, base+len)] — the unmap hook. *)

val live : t -> cap list
(** Unrevoked entries, newest first. *)

val length : t -> int

val encode : Uldma_util.Enc.t -> t -> unit
(** Canonical encoding in table order, including revocation flags. *)
