(** The network-interface DMA engine.

    One engine instance implements one of the paper's initiation
    mechanisms on its shadow window, *plus* the classic kernel path
    through the kernel control page (always available — Fig. 1's
    baseline works no matter which user-level mechanism the board is
    configured with), *plus* the atomic-operation unit (§3.5).

    The engine is a bus device: it claims every MMIO and shadow
    physical address and decodes the transaction stream. It never looks
    at a transaction's provenance pid — with one deliberate exception:
    the FLASH mechanism reads the [current_pid] register that a
    *modified kernel* updates on every context switch, which is exactly
    the kernel modification the paper is arguing against. *)

type mechanism =
  | Shrimp_mapped (** §2.4: one-access DMA to the page's mapped-out twin *)
  | Shrimp_two_step (** §2.5 (and §2.7 PAL): store dest+size, load src *)
  | Flash (** §2.6: two-step, validated against the kernel-maintained pid *)
  | Key_based (** §3.1, Fig. 3 *)
  | Ext_shadow (** §3.2, Fig. 4, with register contexts *)
  | Ext_shadow_stateless
      (** §3.2's no-register-context engine: "when it receives pairs of
          STORE and LOAD instructions, it checks the CONTEXT_ID values
          of the two physical addresses. If they are different, the DMA
          operation is not started and an error code is returned." *)
  | Rep_args of Seq_matcher.variant (** §3.3, Fig. 7 *)
  | Iommu
      (** IOMMU virtual-address DMA (related work): initiation passes
          *virtual* source/destination through the context page's
          argument registers; the engine translates them itself via a
          bounded IOTLB backed by the owning process's page table. No
          shadow-address setup, but misses cost a charged table walk
          and an unmapped page is a [Not_present] reject. *)
  | Capio
      (** CAPIO-style capability-checked initiation (related work):
          requests name 64-bit unforgeable capabilities minted by
          [Os.grant_dma_cap]; the engine checks context, rights, range
          and revocation before firing from the capability's physical
          base. *)

type reject_reason =
  | Bad_key
  | No_context
  | Wrong_context
  | Incomplete_arguments
  | Broken_sequence
  | Bad_range
  | Not_mapped_out
  | Wrong_pid (** FLASH: pending args belong to a switched-out process *)
  | Unsupported
  | Not_present (** IOMMU: translation fault (no mapping / wrong rights) *)
  | Bad_capability (** CAPIO: unknown, foreign or under-privileged value *)
  | Revoked_capability (** CAPIO: once-valid value used after revocation *)

type event =
  | Started of Transfer.t
  | Rejected of { reason : reject_reason; pid : int; at : Uldma_util.Units.ps }
  | Atomic_done of {
      op : Atomic_op.t;
      target : int;
      result : int;
      context : int option;
      pid : int;
      at : Uldma_util.Units.ps;
    }

type counters = {
  mutable started : int;
  mutable rejected : int;
  mutable key_rejected : int;
  mutable atomics : int;
  mutable remote_sends : int;
}

type packet_kind =
  | Remote_write
  | Remote_atomic of { op : Atomic_op.t; reply_paddr : int }
      (** execute at the peer's [remote_addr]; the old value is
          delivered back into the sender's local word [reply_paddr]
          (the context's kernel-set mailbox) *)

type outbound_packet = {
  remote_addr : int; (** physical address on the peer node *)
  payload : Bytes.t; (** [Remote_write] payload; empty for atomics *)
  sent_at : Uldma_util.Units.ps;
  kind : packet_kind;
}

type t

val create :
  clock:Uldma_bus.Clock.t ->
  backend:Transfer.backend ->
  ram_size:int ->
  mechanism:mechanism ->
  ?n_contexts:int ->
  ?iotlb_walk_ps:int ->
  unit ->
  t
(** [n_contexts] defaults to 4 ("say 4 to 8", §3.1). [iotlb_walk_ps]
    (default 0) is charged on the machine clock for every IOTLB miss
    under the [Iommu] mechanism. *)

val mechanism : t -> mechanism
val contexts : t -> Context_file.t

val set_sink : t -> machine:int -> Uldma_obs.Trace.t -> unit
(** Attach a structured trace sink (default [Trace.null]): decodes,
    matches, rejections, transfer start/completion and outbound packets
    then emit typed events. Carried across [copy]. *)

val device : t -> Uldma_bus.Bus.device
(** Register with [Bus.register_device]. *)

val copy : t -> clock:Uldma_bus.Clock.t -> backend:Transfer.backend -> t
(** Snapshot for the interleaving explorer; the caller supplies the
    copied clock and a backend bound to the copied RAM. *)

(** {1 Privileged operations}

    These model kernel accesses to the (never user-mapped) control
    page. The kernel performs them through the bus so they are charged
    bus time; tests may also call the direct helpers below. *)

val set_context_owner : t -> context:int -> pid:int option -> unit
(** Oracle metadata only (which process the OS gave the context to). *)

val invalidate_pending : t -> unit
(** SHRIMP-2 context-switch hook action. *)

val set_current_pid : t -> int -> unit
(** FLASH context-switch hook action. *)

val map_out : t -> src_page:int -> dst_page:int -> unit
(** SHRIMP-1: install a mapped-out entry (physical page bases). *)

val mapped_out_dst : t -> src_page:int -> int option

val iommu_bind : t -> context:int -> table:Uldma_mmu.Page_table.t -> unit
(** Iommu: bind a register context to the owning process's page table
    (the structure the engine walks on an IOTLB miss). The kernel
    re-binds after every fork so the engine never walks a stale
    snapshot's table. *)

val iommu_unbind : t -> context:int -> unit

val iotlb_invalidate : t -> vpage:int -> unit
(** Unmap shootdown (also reachable as a charged kernel-page store to
    [Regmap.k_iotlb_invalidate]). *)

val iotlb_flush : t -> unit
val iotlb_stats : t -> Uldma_mmu.Iotlb.stats

val revoke_cap : t -> value:int -> unit
val revoke_caps_ctx : t -> context:int -> unit
val revoke_caps_pid : t -> pid:int -> unit
(** Capio revocation on exit: every capability the process was granted
    dies with it. *)

val revoke_caps_range : t -> base:int -> len:int -> unit
(** Capio revocation on unmap: kill capabilities overlapping the
    physical range. *)

val capabilities : t -> Capability.t

(** {1 Observation} *)

val events : t -> event list
(** All events, oldest first. *)

val clear_events : t -> unit
val transfers : t -> Transfer.t list
(** Started transfers, oldest first. *)

val take_outbound : t -> outbound_packet list
(** Drain the outbound network queue, oldest first. Remote-window
    stores contribute single-word packets; DMA transfers whose
    destination names remote memory contribute their whole payload
    (Telegraphos-style remote writes). *)

val counters : t -> counters
val context_status : t -> int -> int

val encode : Uldma_util.Enc.t -> t -> unit
(** Feed a canonical encoding of the engine's observable
    state (matcher, contexts, pending deposits, atomic slots, transfer
    observables, mapped-out table, outbound queue), for the explorer's
    state fingerprint. In-flight transfers are encoded by their
    clock-relative view — exact remaining-wire-time-at-now plus total
    duration — so two engines that differ only in absolute clock but
    agree on every deadline encode identically; under a zero-duration
    backend the extra fields are constant and the encoding merges the
    same states it always did. Two engines with equal encodings are
    indistinguishable to the simulated programs and to the Fig. 8
    oracle. Diagnostic state (event log, counters, trace sink, absolute
    timestamps) is excluded. *)

val next_transfer_deadline : t -> Uldma_util.Units.ps option
(** Earliest [end_time] strictly after [now] among started transfers —
    the next instant at which waiting (advancing the clock without
    running any process) changes an observable. [None] when nothing is
    in flight, in particular always under a zero-duration backend. *)

val context_transfer_end : t -> int -> Uldma_util.Units.ps option
(** Completion time of the context's last transfer (for sys_dma_wait). *)

val last_transfer_end : t -> Uldma_util.Units.ps option
val pp_reject_reason : Format.formatter -> reject_reason -> unit
val pp_event : Format.formatter -> event -> unit
