type t = Add of int | Fetch_store of int | Cas of { expected : int; new_value : int }

type pending = P_none | P_cas_expected of int | P_ready of t

let opcode_add = 1
let opcode_fetch_store = 2
let opcode_cas_expected = 3
let opcode_cas_new = 4

let encode ~opcode ~operand = (operand lsl 4) lor opcode
let encode_add v = encode ~opcode:opcode_add ~operand:v
let encode_fetch_store v = encode ~opcode:opcode_fetch_store ~operand:v
let encode_cas_expected v = encode ~opcode:opcode_cas_expected ~operand:v
let encode_cas_new v = encode ~opcode:opcode_cas_new ~operand:v

let accumulate pending value =
  let opcode = value land 0xf in
  let operand = value asr 4 in
  if opcode = opcode_add then P_ready (Add operand)
  else if opcode = opcode_fetch_store then P_ready (Fetch_store operand)
  else if opcode = opcode_cas_expected then P_cas_expected operand
  else if opcode = opcode_cas_new then
    match pending with
    | P_cas_expected expected -> P_ready (Cas { expected; new_value = operand })
    | P_none | P_ready _ -> P_none
  else P_none

let execute t ~read ~write ~target =
  let old_value = read target in
  (match t with
  | Add operand -> write target (old_value + operand)
  | Fetch_store operand -> write target operand
  | Cas { expected; new_value } -> if old_value = expected then write target new_value);
  old_value

let encode_value enc = function
  | Add v ->
    Uldma_util.Enc.char enc 'a';
    Uldma_util.Enc.int enc v
  | Fetch_store v ->
    Uldma_util.Enc.char enc 'f';
    Uldma_util.Enc.int enc v
  | Cas { expected; new_value } ->
    Uldma_util.Enc.char enc 'c';
    Uldma_util.Enc.int enc expected;
    Uldma_util.Enc.int enc new_value

let encode_pending enc = function
  | P_none -> Uldma_util.Enc.char enc 'n'
  | P_cas_expected e ->
    Uldma_util.Enc.char enc 'e';
    Uldma_util.Enc.int enc e
  | P_ready op ->
    Uldma_util.Enc.char enc 'r';
    encode_value enc op

let pp ppf = function
  | Add v -> Format.fprintf ppf "atomic_add(%d)" v
  | Fetch_store v -> Format.fprintf ppf "fetch_and_store(%d)" v
  | Cas { expected; new_value } ->
    Format.fprintf ppf "compare_and_swap(%d, %d)" expected new_value
