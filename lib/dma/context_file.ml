type slot = Dest | Src

type context = {
  index : int;
  mutable key : int;
  mutable owner_pid : int option;
  mutable dest : int option;
  mutable src : int option;
  mutable size : int option;
  mutable next_slot : slot;
  mutable status : int;
  mutable last_transfer : Transfer.t option;
  mutable atomic_target : int option;
  mutable atomic_pending : Atomic_op.pending;
  mutable mailbox : int option;
}

type t = context array

let fresh index =
  {
    index;
    key = 0;
    owner_pid = None;
    dest = None;
    src = None;
    size = None;
    next_slot = Dest;
    status = Status.complete;
    last_transfer = None;
    atomic_target = None;
    atomic_pending = Atomic_op.P_none;
    mailbox = None;
  }

let create ~n =
  if n < 1 || n > Uldma_mem.Layout.max_contexts then
    invalid_arg (Printf.sprintf "Context_file.create: %d contexts" n);
  Array.init n fresh

let copy t = Array.map (fun c -> { c with index = c.index }) t

let length = Array.length

let get t i =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Context_file.get: context %d" i);
  t.(i)

let get_opt t i = if i < 0 || i >= Array.length t then None else Some t.(i)

let set_key t ~context ~key = (get t context).key <- key

let set_owner t ~context ~pid = (get t context).owner_pid <- pid

let push_address c paddr =
  match c.next_slot with
  | Dest ->
    c.dest <- Some paddr;
    c.next_slot <- Src
  | Src ->
    c.src <- Some paddr;
    c.next_slot <- Dest

let args_ready c =
  match (c.src, c.dest, c.size) with
  | Some src, Some dest, Some size -> Some (src, dest, size)
  | _, _, _ -> None

let clear_args c =
  c.dest <- None;
  c.src <- None;
  c.size <- None;
  c.next_slot <- Dest

(* Canonical textual encoding for state fingerprinting. [last_transfer]
   is deliberately skipped: the engine encodes transfer observables
   (including per-context status-at-now) itself, with clock access. *)
let encode enc t =
  let i v = Uldma_util.Enc.int enc v in
  let opt = function None -> min_int | Some v -> v in
  Array.iter
    (fun c ->
      Uldma_util.Enc.char enc 'c';
      i c.index;
      i c.key;
      i (opt c.owner_pid);
      i (opt c.dest);
      i (opt c.src);
      i (opt c.size);
      i (match c.next_slot with Dest -> 0 | Src -> 1);
      i c.status;
      i (opt c.atomic_target);
      i (opt c.mailbox);
      Atomic_op.encode_pending enc c.atomic_pending)
    t

let reset c =
  clear_args c;
  c.status <- Status.complete;
  c.last_transfer <- None;
  c.atomic_target <- None;
  c.atomic_pending <- Atomic_op.P_none;
  c.mailbox <- None
