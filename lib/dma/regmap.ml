let k_source = 0x00
let k_dest = 0x08
let k_size = 0x10
let k_status = 0x18
let k_current_pid = 0x20
let k_invalidate = 0x28
let k_map_out_src = 0x30
let k_map_out_dst = 0x38
let k_atomic_target = 0x40
let k_atomic_op = 0x48

(* CAPIO capability install (value/base/len staged, meta commits) and
   revocation-by-value; IOMMU IOTLB shootdown. Kernel-only, like the
   rest of the control page. *)
let k_cap_value = 0x50
let k_cap_base = 0x58
let k_cap_len = 0x60
let k_cap_commit = 0x68
let k_cap_revoke = 0x70
let k_iotlb_invalidate = 0x78

let k_key_base = 0x80

let key_offset ~context = k_key_base + (8 * context)

let k_mailbox_base = 0x100

let mailbox_offset ~context = k_mailbox_base + (8 * context)

let c_size = 0x00
let c_atomic = 0x08
let c_arg_src = 0x10
let c_arg_dst = 0x18
