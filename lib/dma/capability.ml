open Uldma_mem

(* CAPIO-style DMA capabilities: each initiation request names a 64-bit
   unforgeable value minted by the OS. The engine's table maps values to
   (owning context, owning pid, physical range, rights). Revoked entries
   are *kept* (flagged) rather than removed so the engine can tell a
   once-valid capability used after revocation ([Revoked_capability])
   from a value that was never minted ([Bad_capability]) — the two
   failures mean different things to the oracle and to the tests. *)

type cap = {
  value : int;
  ctx : int;
  pid : int;
  base : int; (* physical *)
  len : int;
  rights : Perms.t;
  mutable revoked : bool;
}

type t = { mutable caps : cap list (* newest first *) }

let create () = { caps = [] }

(* entries carry a mutable [revoked] flag, so forks deep-copy them *)
let copy t = { caps = List.map (fun c -> { c with value = c.value }) t.caps }

let install t cap =
  (* re-minting an existing value supersedes the old entry *)
  t.caps <- cap :: List.filter (fun c -> c.value <> cap.value) t.caps

let find t ~value = List.find_opt (fun c -> c.value = value) t.caps

let revoke_value t ~value =
  match find t ~value with Some c -> c.revoked <- true | None -> ()

let revoke_ctx t ~ctx =
  List.iter (fun c -> if c.ctx = ctx then c.revoked <- true) t.caps

let revoke_pid t ~pid =
  List.iter (fun c -> if c.pid = pid then c.revoked <- true) t.caps

let revoke_range t ~base ~len =
  List.iter
    (fun c -> if c.base < base + len && base < c.base + c.len then c.revoked <- true)
    t.caps

let live t = List.filter (fun c -> not c.revoked) t.caps

let length t = List.length t.caps

(* Canonical encoding in table order (installation history is
   deterministic, so table order is too). Every field a future check
   can observe is included — notably [revoked], which decides between
   two distinct reject paths. *)
let encode enc t =
  let i v = Uldma_util.Enc.int enc v in
  List.iter
    (fun c ->
      Uldma_util.Enc.char enc 'y';
      i c.value;
      i c.ctx;
      i c.pid;
      i c.base;
      i c.len;
      i ((if c.rights.Perms.read then 1 else 0) lor if c.rights.Perms.write then 2 else 0);
      i (if c.revoked then 1 else 0))
    t.caps
