(** Atomic operations offered by the network interface (§3.5):
    "Such atomic operations include atomic_add, fetch_and_store,
    compare_and_swap, etc."

    An operation is encoded into store values as
    [operand << 4 | opcode]; compare-and-swap needs two data arguments
    and therefore two stores (expected, then new value). *)

type t =
  | Add of int (** fetch-and-add; returns the old value *)
  | Fetch_store of int (** swap in the operand; returns the old value *)
  | Cas of { expected : int; new_value : int } (** returns the old value *)

type pending =
  | P_none
  | P_cas_expected of int (** first half of a CAS received *)
  | P_ready of t

val opcode_add : int
val opcode_fetch_store : int
val opcode_cas_expected : int
val opcode_cas_new : int

val encode : opcode:int -> operand:int -> int
val encode_add : int -> int
val encode_fetch_store : int -> int
val encode_cas_expected : int -> int
val encode_cas_new : int -> int

val accumulate : pending -> int -> pending
(** Feed one encoded store value into the pending state. An invalid
    opcode or an out-of-order CAS half resets to [P_none]. *)

val execute : t -> read:(int -> int) -> write:(int -> int -> unit) -> target:int -> int
(** Perform the operation on memory; returns the old value. *)

val encode_value : Uldma_util.Enc.t -> t -> unit
(** Feed a canonical encoding of the operation, for state
    fingerprinting. Injective per constructor. *)

val encode_pending : Uldma_util.Enc.t -> pending -> unit

val pp : Format.formatter -> t -> unit
