(** Started DMA transfers and the data-movement backend.

    The engine applies a transfer's memory effect at initiation time
    and models its wire time as a duration; status reads report the
    bytes remaining as of the current simulated instant, which is what
    §3.1 says a register-context read returns.

    The [pid] field is provenance for the test oracle only — the engine
    never consults it when deciding whether to start a transfer. *)

type t = {
  src : int; (** source physical address *)
  dst : int;
  size : int;
  context : int option; (** register context, when one was involved *)
  pid : int; (** provenance of the initiating transaction (oracle only) *)
  started_at : Uldma_util.Units.ps;
  duration : Uldma_util.Units.ps;
}

type backend = {
  copy : src:int -> dst:int -> len:int -> unit;
  read_word : int -> int; (** for the atomic unit *)
  write_word : int -> int -> unit;
  read_bytes : int -> int -> Bytes.t; (** payload extraction for remote sends *)
  duration_ps : int -> Uldma_util.Units.ps; (** wire time for n bytes *)
}

val null_backend : backend
(** No data is moved and transfers complete instantly — Table 1's
    methodology ("No DMA data transfer was actually performed. Only the
    DMA arguments were passed to the network interface."). *)

val local_backend :
  Uldma_mem.Phys_mem.t -> setup_ps:Uldma_util.Units.ps -> bytes_per_s:float -> backend
(** Copies within local RAM, with wire time [setup + size/bandwidth]. *)

val remaining : t -> now:Uldma_util.Units.ps -> int
(** Bytes still to transfer at [now]: [size] at the start, 0 from
    [started_at + duration] on. *)

val end_time : t -> Uldma_util.Units.ps

val remaining_ps : t -> now:Uldma_util.Units.ps -> Uldma_util.Units.ps
(** Wire time still to elapse at [now]; 0 once complete (and always 0
    under a zero-duration backend). Together with [duration] this is a
    clock-relative view of the transfer: two transfers with equal
    [size]/[duration]/[remaining_ps] are indistinguishable to every
    future observation, whatever the absolute clock reads — which is
    exactly what the explorer's state encoding needs. *)

val pp : Format.formatter -> t -> unit
