(** The engine's register contexts (§3.1).

    "The DMA engine is equipped with several (say 4 to 8) register
    contexts. Each context has a source register, a destination
    register, and a size register. [...] Distinct contexts are mapped
    into distinct memory pages so that each process gets access rights
    for only a single context."

    A context accumulates the physical-address arguments delivered by
    key-carrying stores (key-based method) or by extended shadow
    accesses; the engine fires when the set is complete. Keys and
    owners are written by the kernel only. *)

type slot = Dest | Src

type context = {
  index : int;
  mutable key : int;
  mutable owner_pid : int option; (** oracle metadata, engine-invisible *)
  mutable dest : int option;
  mutable src : int option;
  mutable size : int option;
  mutable next_slot : slot;
  mutable status : int;
  mutable last_transfer : Transfer.t option;
  mutable atomic_target : int option;
  mutable atomic_pending : Atomic_op.pending;
  mutable mailbox : int option;
      (** local physical word for remote-atomic replies (kernel-set) *)
}

type t

val create : n:int -> t
(** [n] contexts; 1 <= n <= [Uldma_mem.Layout.max_contexts]. *)

val copy : t -> t
val length : t -> int
val get : t -> int -> context
(** Raises [Invalid_argument] out of range. *)

val get_opt : t -> int -> context option

val set_key : t -> context:int -> key:int -> unit
val set_owner : t -> context:int -> pid:int option -> unit

val push_address : context -> int -> unit
(** Deposit a physical-address argument into the next slot
    (dest first, then src, then wrapping back to dest). *)

val args_ready : context -> (int * int * int) option
(** [(src, dest, size)] when all three arguments are present. *)

val clear_args : context -> unit
(** Reset the argument slots (after a fire or a rejection), keeping
    key, owner and status. *)

val reset : context -> unit
(** Full reset including status and pending atomics (context switch of
    ownership). *)

val encode : Uldma_util.Enc.t -> t -> unit
(** Feed a canonical encoding of every context's registers
    (key, owner, args, status, pending atomic, mailbox), for state
    fingerprinting. [last_transfer] is excluded — the engine encodes
    transfer observables itself. *)
