open Uldma_bus

type variant = Three | Four | Five

type fire = { src : int; dst : int; size : int }

type reply = Accepted | Fired of fire | Rejected

(* What each step of a pattern expects. [Dest_set]/[Src_set] bind the
   address role; the [_match] forms require equality with the binding. *)
type addr_role = Dest_set | Dest_match | Src_set | Src_match

type step = { op : Txn.op; role : addr_role; carries_size : bool }

let pattern = function
  | Three ->
    [|
      { op = Txn.Load; role = Src_set; carries_size = false };
      { op = Txn.Store; role = Dest_set; carries_size = true };
      { op = Txn.Load; role = Src_match; carries_size = false };
    |]
  | Four ->
    [|
      { op = Txn.Store; role = Dest_set; carries_size = true };
      { op = Txn.Load; role = Src_set; carries_size = false };
      { op = Txn.Store; role = Dest_match; carries_size = true };
      { op = Txn.Load; role = Src_match; carries_size = false };
    |]
  | Five ->
    [|
      { op = Txn.Store; role = Dest_set; carries_size = true };
      { op = Txn.Load; role = Src_set; carries_size = false };
      { op = Txn.Store; role = Dest_match; carries_size = true };
      { op = Txn.Load; role = Src_match; carries_size = false };
      { op = Txn.Load; role = Dest_match; carries_size = false };
    |]

type t = {
  variant : variant;
  steps : step array;
  mutable index : int;
  mutable dest : int;
  mutable src : int;
  mutable size : int;
}

let create variant = { variant; steps = pattern variant; index = 0; dest = -1; src = -1; size = -1 }

let copy t = { t with variant = t.variant }

let variant t = t.variant

let sequence_length v = Array.length (pattern v)

let reset t =
  t.index <- 0;
  t.dest <- -1;
  t.src <- -1;
  t.size <- -1

let position t = t.index

(* Canonical textual encoding of the matcher's mutable registers, for
   state fingerprinting. [steps] is a pure function of [variant]. *)
let encode enc t =
  let i v = Uldma_util.Enc.int enc v in
  Uldma_util.Enc.char enc 'm';
  i (match t.variant with Three -> 3 | Four -> 4 | Five -> 5);
  i t.index;
  i t.dest;
  i t.src;
  i t.size;
  Uldma_util.Enc.char enc ';'

(* Try to accept [op/paddr/value] as step [t.index]. *)
let accept t op paddr value =
  let step = t.steps.(t.index) in
  if step.op <> op then false
  else
    let addr_ok =
      match step.role with
      | Dest_set ->
        t.dest <- paddr;
        true
      | Src_set ->
        t.src <- paddr;
        true
      | Dest_match -> paddr = t.dest
      | Src_match -> paddr = t.src
    in
    let size_ok =
      if not step.carries_size then true
      else if t.size < 0 then begin
        t.size <- value;
        true
      end
      else value = t.size
    in
    if addr_ok && size_ok then begin
      t.index <- t.index + 1;
      true
    end
    else false

let feed t op ~paddr ~value =
  if accept t op paddr value then
    if t.index = Array.length t.steps then begin
      let fire = { src = t.src; dst = t.dest; size = t.size } in
      reset t;
      Fired fire
    end
    else Accepted
  else begin
    (* "If it sees anything out of this order, the DMA engine resets
       itself" — and the offending access may begin a new sequence. *)
    reset t;
    ignore (accept t op paddr value : bool);
    Rejected
  end
