(** The engine's memory-mapped register layout.

    The *kernel control page* ([Uldma_mem.Layout.kernel_control_page])
    is never mapped into user address spaces; the kernel programs the
    engine through it exactly as Fig. 1 does (three stores + one load).
    Each *register context page* ([Layout.context_page i]) can be
    mapped into the one process the OS assigned context [i] to. *)

(** {1 Kernel control page offsets} *)

val k_source : int
val k_dest : int

val k_size : int
(** Storing the size starts the kernel-level DMA (Fig. 1). *)

val k_status : int

val k_current_pid : int
(** FLASH baseline: the modified kernel stores the running pid here on
    every context switch (§2.6). *)

val k_invalidate : int
(** SHRIMP baseline: the modified kernel stores here on every context
    switch to abort half-started user-level DMAs (§2.5). *)

val k_map_out_src : int
val k_map_out_dst : int
(** SHRIMP-1 mapped-out pages (§2.4): store the source page base, then
    the destination page base, to install one entry. *)

val k_atomic_target : int
val k_atomic_op : int
(** Kernel-level atomic operations (§3.5 baseline): store the physical
    target, store the encoded op, load to execute and read the result. *)

val k_cap_value : int
val k_cap_base : int
val k_cap_len : int

val k_cap_commit : int
(** CAPIO grant: stage value/base/len, then store the metadata word
    (context in bits 0-7, read right bit 8, write right bit 9, granting
    pid from bit 16) here to install the capability atomically. *)

val k_cap_revoke : int
(** Store a capability value to revoke it (the entry is retained and
    flagged, so later use is distinguishable from a forged value). *)

val k_iotlb_invalidate : int
(** IOMMU shootdown: store a virtual page number to invalidate its
    IOTLB entry, or -1 to flush the whole cache (context switch). *)

val k_key_base : int
(** [k_key_base + 8*i] holds register context [i]'s key (write-only,
    "in memory locations unreadable by user processes", §3.1). *)

val key_offset : context:int -> int

val k_mailbox_base : int
(** [k_mailbox_base + 8*i] holds register context [i]'s atomic reply
    mailbox: the *local physical* word where the old value of a remote
    atomic operation is delivered when the reply packet arrives. Only
    the kernel can write it (it is a translated physical address). *)

val mailbox_offset : context:int -> int

(** {1 Register context page offsets} *)

val c_size : int
(** "Any store operation to any register within a context is performed
    to the size register only" — any offset except [c_atomic]. Loads
    anywhere except [c_atomic] return the context status and, when all
    arguments are present, initiate the DMA. *)

val c_atomic : int
(** The atomic-operation argument/result register (§3.5 extension). *)

val c_arg_src : int
val c_arg_dst : int
(** Explicit argument registers, decoded only under the [Iommu] and
    [Capio] mechanisms (virtual source/destination addresses for the
    former, capability values for the latter). Under the paper's
    mechanisms stores at these offsets keep their historical
    store-goes-to-size semantics. *)
