(** The repeated-passing-of-arguments recogniser (§3.3).

    The engine watches the *global* stream of shadow accesses (it has
    no register contexts in this mode — that is the method's selling
    point) and fires a DMA only when it sees a complete well-formed
    sequence:

    - [Three] (Dubnicki's original): LOAD s, STORE d, LOAD s — with
      accesses 1 and 3 to the same address. Vulnerable (Fig. 5).
    - [Four]: STORE d, LOAD s, STORE d, LOAD s — 1,3 equal and 2,4
      equal. Vulnerable (Fig. 6).
    - [Five] (the paper's method, Fig. 7): STORE d, LOAD s, STORE d,
      LOAD s, LOAD d — 1,3,5 equal and 2,4 equal. "If it sees anything
      out of this order, the DMA engine resets itself."

    Both stores carry the transfer size and must agree.

    On a mismatch the engine resets and then considers the offending
    access as a potential first element of a fresh sequence (this is
    exactly what makes the Fig. 5 attack on [Three] work, so it must be
    modelled faithfully). *)

type variant = Three | Four | Five

type fire = { src : int; dst : int; size : int }

type reply =
  | Accepted (** consistent continuation, sequence not yet complete *)
  | Fired of fire (** this access completed a valid sequence *)
  | Rejected (** inconsistent: the engine reset itself *)

type t

val create : variant -> t
val copy : t -> t
val variant : t -> variant

val sequence_length : variant -> int

val feed : t -> Uldma_bus.Txn.op -> paddr:int -> value:int -> reply

val reset : t -> unit

val position : t -> int
(** How many accesses of the current candidate sequence have been
    accepted (0 = idle). *)

val encode : Uldma_util.Enc.t -> t -> unit
(** Feed a canonical encoding of the matcher's mutable
    registers (variant, position, bound dest/src/size), for state
    fingerprinting: two matchers with equal encodings behave
    identically on every future access stream. *)
