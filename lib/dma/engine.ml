open Uldma_util
open Uldma_mem
open Uldma_bus
module Shadow = Uldma_mmu.Shadow
module Iotlb = Uldma_mmu.Iotlb
module Page_table = Uldma_mmu.Page_table
module Pte = Uldma_mmu.Pte

type mechanism =
  | Shrimp_mapped
  | Shrimp_two_step
  | Flash
  | Key_based
  | Ext_shadow
  | Ext_shadow_stateless
  | Rep_args of Seq_matcher.variant
  | Iommu
  | Capio

type reject_reason =
  | Bad_key
  | No_context
  | Wrong_context
  | Incomplete_arguments
  | Broken_sequence
  | Bad_range
  | Not_mapped_out
  | Wrong_pid
  | Unsupported
  | Not_present
  | Bad_capability
  | Revoked_capability

type event =
  | Started of Transfer.t
  | Rejected of { reason : reject_reason; pid : int; at : Units.ps }
  | Atomic_done of {
      op : Atomic_op.t;
      target : int;
      result : int;
      context : int option;
      pid : int;
      at : Units.ps;
    }

type counters = {
  mutable started : int;
  mutable rejected : int;
  mutable key_rejected : int;
  mutable atomics : int;
  mutable remote_sends : int;
}

type packet_kind =
  | Remote_write
  | Remote_atomic of { op : Atomic_op.t; reply_paddr : int }
      (* execute at the peer's [remote_addr]; deliver the old value to
         the *local* physical word [reply_paddr] (the context mailbox) *)

type outbound_packet = {
  remote_addr : int; (* physical address on the peer node *)
  payload : Bytes.t; (* Remote_write payload; empty for atomics *)
  sent_at : Units.ps;
  kind : packet_kind;
}

type pending_two_step = { p_dest : int; p_size : int; p_pid : int; p_ctx : int }
(* [p_pid] is only consulted by the FLASH mechanism, and holds the
   engine's [current_pid] register value at deposit time (maintained by
   the modified kernel) — never the transaction's provenance. [p_ctx]
   is only consulted by the contextless extended-shadow variant and is
   the context id carried by the depositing shadow address. *)

type t = {
  clock : Clock.t;
  backend : Transfer.backend;
  ram_size : int;
  mechanism : mechanism;
  contexts : Context_file.t;
  matcher : Seq_matcher.t;
  mapped_out : (int, int) Hashtbl.t; (* src page base -> dst page base *)
  mutable map_out_staged : int option;
  mutable pending : pending_two_step option;
  mutable current_pid : int;
  mutable k_src : int;
  mutable k_dst : int;
  mutable k_status : int;
  mutable k_atomic_target : int;
  mutable k_atomic_pending : Atomic_op.pending;
  mutable g_atomic_target : int option; (* shared atomic slot (PAL use) *)
  mutable g_atomic_pending : Atomic_op.pending;
  iotlb : Iotlb.t; (* Iommu: device-side translation cache *)
  iotlb_walk_ps : int; (* cost of one table walk on a miss *)
  mutable iommu_tables : (int * Page_table.t) list; (* context -> bound table *)
  caps : Capability.t; (* Capio: the engine's capability table *)
  mutable cap_stage_value : int; (* staged grant (committed by k_cap_commit) *)
  mutable cap_stage_base : int;
  mutable cap_stage_len : int;
  mutable last_transfer : Transfer.t option; (* for two-step status loads *)
  mutable last_status : int;
  mutable transfers : Transfer.t list; (* newest first *)
  mutable events : event list; (* newest first *)
  mutable outbound : outbound_packet list; (* newest first *)
  counters : counters;
  mutable sink : Uldma_obs.Trace.t;
  mutable machine : int;
}

let create ~clock ~backend ~ram_size ~mechanism ?(n_contexts = 4) ?(iotlb_walk_ps = 0) () =
  {
    clock;
    backend;
    ram_size;
    mechanism;
    contexts = Context_file.create ~n:n_contexts;
    matcher =
      (match mechanism with Rep_args v -> Seq_matcher.create v | _ -> Seq_matcher.create Seq_matcher.Five);
    mapped_out = Hashtbl.create 16;
    map_out_staged = None;
    pending = None;
    iotlb = Iotlb.create ();
    iotlb_walk_ps;
    iommu_tables = [];
    caps = Capability.create ();
    cap_stage_value = 0;
    cap_stage_base = 0;
    cap_stage_len = 0;
    current_pid = -1;
    k_src = 0;
    k_dst = 0;
    k_status = Status.complete;
    k_atomic_target = 0;
    k_atomic_pending = Atomic_op.P_none;
    g_atomic_target = None;
    g_atomic_pending = Atomic_op.P_none;
    last_transfer = None;
    last_status = Status.failure;
    transfers = [];
    events = [];
    counters = { started = 0; rejected = 0; key_rejected = 0; atomics = 0; remote_sends = 0 };
    outbound = [];
    sink = Uldma_obs.Trace.null;
    machine = 0;
  }

let mechanism t = t.mechanism
let contexts t = t.contexts

let set_sink t ~machine sink =
  t.sink <- sink;
  t.machine <- machine

let tracing t = Uldma_obs.Trace.enabled t.sink

let trace t ~at ~pid kind = Uldma_obs.Trace.emit t.sink ~at ~machine:t.machine ~pid kind

(* Engine snapshot for kernel forks. Everything mutable is duplicated;
   transfers/events/outbound are immutable lists and are shared. On the
   explorer's fork hot path [mapped_out] is almost always empty (only
   SHRIMP-style mapped-out regions populate it), so skip the bucket
   copy then. *)
let copy t ~clock ~backend =
  {
    t with
    clock;
    backend;
    contexts = Context_file.copy t.contexts;
    matcher = Seq_matcher.copy t.matcher;
    mapped_out =
      (if Hashtbl.length t.mapped_out = 0 then Hashtbl.create 8 else Hashtbl.copy t.mapped_out);
    iotlb = Iotlb.copy t.iotlb;
    (* the bindings still point at the parent's page tables here; the
       kernel fork re-binds each live context to its copied table
       immediately after copying the processes *)
    iommu_tables = t.iommu_tables;
    caps = Capability.copy t.caps;
    counters = { t.counters with started = t.counters.started };
  }

let now t = Clock.now t.clock

let push_event t e = t.events <- e :: t.events

(* exhaustive by construction: a new [reject_reason] variant must be
   named here, it cannot fall through a wildcard *)
let reject_name r =
  match[@warning "+8"] r with
  | Bad_key -> "bad_key"
  | No_context -> "no_context"
  | Wrong_context -> "wrong_context"
  | Incomplete_arguments -> "incomplete_arguments"
  | Broken_sequence -> "broken_sequence"
  | Bad_range -> "bad_range"
  | Not_mapped_out -> "not_mapped_out"
  | Wrong_pid -> "wrong_pid"
  | Unsupported -> "unsupported"
  | Not_present -> "not_present"
  | Bad_capability -> "bad_capability"
  | Revoked_capability -> "revoked_capability"

let reject t ~reason ~pid =
  t.counters.rejected <- t.counters.rejected + 1;
  if reason = Bad_key then t.counters.key_rejected <- t.counters.key_rejected + 1;
  push_event t (Rejected { reason; pid; at = now t });
  if tracing t then
    trace t ~at:(now t) ~pid (Uldma_obs.Trace.Engine_reject { reason = reject_name reason });
  Status.failure

let in_ram_range t addr size = addr >= 0 && size >= 0 && addr + size <= t.ram_size

let in_remote_range addr size =
  Layout.in_remote addr && size >= 0 && addr + size <= Layout.remote_limit

let send_remote ?(kind = Remote_write) t ~remote_paddr ~payload =
  t.outbound <-
    { remote_addr = Layout.remote_offset remote_paddr; payload; sent_at = now t; kind }
    :: t.outbound;
  t.counters.remote_sends <- t.counters.remote_sends + 1;
  if tracing t then
    trace t ~at:(now t) ~pid:t.current_pid
      (Uldma_obs.Trace.Packet_tx
         { dst_paddr = Layout.remote_offset remote_paddr; bytes = Bytes.length payload })

let start_transfer t ~src ~dst ~size ~context ~pid =
  let dst_ok = in_ram_range t dst size || in_remote_range dst size in
  if size <= 0 || not (in_ram_range t src size) || not dst_ok then
    reject t ~reason:Bad_range ~pid
  else begin
    if Layout.in_remote dst then
      (* Telegraphos-style remote DMA: the payload leaves on the wire
         instead of being copied locally *)
      send_remote t ~remote_paddr:dst ~payload:(t.backend.Transfer.read_bytes src size)
    else t.backend.Transfer.copy ~src ~dst ~len:size;
    let tr =
      {
        Transfer.src;
        dst;
        size;
        context;
        pid;
        started_at = now t;
        duration = t.backend.Transfer.duration_ps size;
      }
    in
    t.transfers <- tr :: t.transfers;
    t.counters.started <- t.counters.started + 1;
    push_event t (Started tr);
    if tracing t then begin
      trace t ~at:tr.Transfer.started_at ~pid
        (Uldma_obs.Trace.Transfer_start { src; dst; size; duration = tr.Transfer.duration });
      (* stamped at completion time, in the future of the emission
         point; the Chrome exporter re-sorts by timestamp *)
      trace t ~at:(Transfer.end_time tr) ~pid
        (Uldma_obs.Trace.Transfer_complete { src; dst; size })
    end;
    (match context with
    | Some i ->
      let c = Context_file.get t.contexts i in
      c.Context_file.last_transfer <- Some tr;
      c.Context_file.status <- Transfer.remaining tr ~now:(now t)
    | None -> ());
    t.last_transfer <- Some tr;
    t.last_status <- Transfer.remaining tr ~now:(now t);
    Transfer.remaining tr ~now:(now t)
  end

let context_transfer_end t i =
  match (Context_file.get t.contexts i).Context_file.last_transfer with
  | Some tr -> Some (Transfer.end_time tr)
  | None -> None

let last_transfer_end t =
  match t.last_transfer with Some tr -> Some (Transfer.end_time tr) | None -> None

let context_status t i =
  let c = Context_file.get t.contexts i in
  if Status.is_failure c.Context_file.status then c.Context_file.status
  else
    match c.Context_file.last_transfer with
    | Some tr -> Transfer.remaining tr ~now:(now t)
    | None -> c.Context_file.status

let two_step_status t =
  if Status.is_failure t.last_status then t.last_status
  else
    match t.last_transfer with
    | Some tr -> Transfer.remaining tr ~now:(now t)
    | None -> t.last_status

(* ------------------------------------------------------------------ *)
(* IOMMU: device-side translation of virtual DMA arguments *)

let iommu_bind t ~context ~table =
  t.iommu_tables <- (context, table) :: List.remove_assoc context t.iommu_tables

let iommu_unbind t ~context = t.iommu_tables <- List.remove_assoc context t.iommu_tables

let iotlb_invalidate t ~vpage = Iotlb.invalidate t.iotlb ~vpage

let iotlb_flush t = Iotlb.flush t.iotlb

let iotlb_stats t = Iotlb.stats t.iotlb

(* One page lookup through the IOTLB. A miss walks the bound table and
   is charged [iotlb_walk_ps] on the machine clock whether or not the
   walk finds a mapping (the engine has to look either way). *)
let iotlb_lookup t ~table ~vpage ~pid =
  match Iotlb.translate t.iotlb table ~vpage with
  | `Hit pte -> Some pte
  | `Miss pte ->
    Clock.advance t.clock t.iotlb_walk_ps;
    if tracing t then begin
      trace t ~at:(now t) ~pid (Uldma_obs.Trace.Iotlb_miss { vpage });
      trace t ~at:(now t) ~pid (Uldma_obs.Trace.Iotlb_fill { vpage })
    end;
    Some pte
  | `Fault ->
    Clock.advance t.clock t.iotlb_walk_ps;
    if tracing t then trace t ~at:(now t) ~pid (Uldma_obs.Trace.Iotlb_miss { vpage });
    None

(* Resolve a virtual range to one physical base: every page must be
   present with the required right ([Not_present] otherwise), and the
   physical image must be contiguous — the copy unit takes a single
   base+length ([Bad_range] otherwise). *)
let iommu_resolve t ~table ~vaddr ~size ~access ~pid =
  if size <= 0 || vaddr < 0 then Error Bad_range
  else begin
    let first = Layout.page_of vaddr and last = Layout.page_of (vaddr + size - 1) in
    let permitted (pte : Pte.t) =
      match access with
      | `Read -> Perms.allows_read pte.Pte.perms
      | `Write -> Perms.allows_write pte.Pte.perms
    in
    let rec walk page expected base =
      if page > last then Ok base
      else
        match iotlb_lookup t ~table ~vpage:page ~pid with
        | None -> Error Not_present
        | Some pte ->
          if not (permitted pte) then Error Not_present
          else begin
            let page_base = pte.Pte.frame lsl Layout.page_shift in
            match expected with
            | Some e when page_base <> e -> Error Bad_range
            | _ ->
              let base =
                if page = first then page_base lor Layout.page_offset vaddr else base
              in
              walk (page + 1) (Some (page_base + Layout.page_size)) base
          end
    in
    walk first None 0
  end

let fire_iommu t ~context ~vsrc ~vdst ~size ~pid =
  match List.assoc_opt context t.iommu_tables with
  | None -> reject t ~reason:Not_present ~pid
  | Some table -> (
    match iommu_resolve t ~table ~vaddr:vsrc ~size ~access:`Read ~pid with
    | Error reason -> reject t ~reason ~pid
    | Ok src -> (
      match iommu_resolve t ~table ~vaddr:vdst ~size ~access:`Write ~pid with
      | Error reason -> reject t ~reason ~pid
      | Ok dst -> start_transfer t ~src ~dst ~size ~context:(Some context) ~pid))

(* ------------------------------------------------------------------ *)
(* CAPIO: capability-checked initiation *)

let cap_check t ~value ~context ~size ~access ~pid =
  let verdict ok = if tracing t then trace t ~at:(now t) ~pid (Uldma_obs.Trace.Cap_check { cap = value; ok }) in
  match Capability.find t.caps ~value with
  | None ->
    verdict false;
    Error Bad_capability
  | Some cap ->
    if cap.Capability.revoked then begin
      verdict false;
      Error Revoked_capability
    end
    else if cap.Capability.ctx <> context then begin
      (* a capability laundered into a context it was not granted to
         (e.g. an accomplice replaying a victim's value) is as bad as a
         forged one *)
      verdict false;
      Error Bad_capability
    end
    else if
      not
        (match access with
        | `Read -> Perms.allows_read cap.Capability.rights
        | `Write -> Perms.allows_write cap.Capability.rights)
    then begin
      verdict false;
      Error Bad_capability
    end
    else if size <= 0 || size > cap.Capability.len then begin
      verdict false;
      Error Bad_range
    end
    else begin
      verdict true;
      Ok cap.Capability.base
    end

let fire_capio t ~context ~cap_src ~cap_dst ~size ~pid =
  match cap_check t ~value:cap_src ~context ~size ~access:`Read ~pid with
  | Error reason -> reject t ~reason ~pid
  | Ok src -> (
    match cap_check t ~value:cap_dst ~context ~size ~access:`Write ~pid with
    | Error reason -> reject t ~reason ~pid
    | Ok dst -> start_transfer t ~src ~dst ~size ~context:(Some context) ~pid)

let revoke_cap t ~value = Capability.revoke_value t.caps ~value
let revoke_caps_ctx t ~context = Capability.revoke_ctx t.caps ~ctx:context
let revoke_caps_pid t ~pid = Capability.revoke_pid t.caps ~pid
let revoke_caps_range t ~base ~len = Capability.revoke_range t.caps ~base ~len
let capabilities t = t.caps

(* ------------------------------------------------------------------ *)
(* Atomic unit *)

let run_atomic t ~op ~target ~context ~pid =
  if not (Layout.is_word_aligned target) then reject t ~reason:Bad_range ~pid
  else if in_ram_range t target Layout.word_size then begin
    let result =
      Atomic_op.execute op ~read:t.backend.Transfer.read_word ~write:t.backend.Transfer.write_word
        ~target
    in
    t.counters.atomics <- t.counters.atomics + 1;
    push_event t (Atomic_done { op; target; result; context; pid; at = now t });
    result
  end
  else if in_remote_range target Layout.word_size then begin
    (* Telegraphos-style remote atomic: ship the operation; the old
       value comes back later into the context's kernel-set mailbox.
       Without a mailbox there is nowhere to deliver the reply. *)
    let mailbox =
      match context with
      | Some i -> (Context_file.get t.contexts i).Context_file.mailbox
      | None -> None
    in
    match mailbox with
    | None -> reject t ~reason:Incomplete_arguments ~pid
    | Some reply_paddr ->
      send_remote t ~remote_paddr:target ~payload:Bytes.empty
        ~kind:(Remote_atomic { op; reply_paddr });
      t.counters.atomics <- t.counters.atomics + 1;
      push_event t
        (Atomic_done { op; target; result = Status.in_progress; context; pid; at = now t });
      Status.in_progress
  end
  else reject t ~reason:Bad_range ~pid

let context_atomic_store c paddr_opt value =
  (match paddr_opt with
  | Some paddr -> c.Context_file.atomic_target <- Some paddr
  | None -> ());
  c.Context_file.atomic_pending <- Atomic_op.accumulate c.Context_file.atomic_pending value

let context_atomic_exec t c ~expected_target ~pid =
  let target_ok =
    match (c.Context_file.atomic_target, expected_target) with
    | Some tgt, Some expect -> if tgt = expect then Some tgt else None
    | Some tgt, None -> Some tgt
    | None, _ -> None
  in
  let finish result =
    c.Context_file.atomic_target <- None;
    c.Context_file.atomic_pending <- Atomic_op.P_none;
    result
  in
  match (target_ok, c.Context_file.atomic_pending) with
  | Some target, Atomic_op.P_ready op ->
    finish (run_atomic t ~op ~target ~context:(Some c.Context_file.index) ~pid)
  | Some _, (Atomic_op.P_none | Atomic_op.P_cas_expected _) | None, _ ->
    finish (reject t ~reason:Incomplete_arguments ~pid)

(* ------------------------------------------------------------------ *)
(* Kernel control page *)

let kernel_store t offset value ~pid =
  if offset = Regmap.k_source then t.k_src <- value
  else if offset = Regmap.k_dest then t.k_dst <- value
  else if offset = Regmap.k_size then
    t.k_status <- start_transfer t ~src:t.k_src ~dst:t.k_dst ~size:value ~context:None ~pid
  else if offset = Regmap.k_current_pid then t.current_pid <- value
  else if offset = Regmap.k_invalidate then begin
    t.pending <- None;
    t.g_atomic_target <- None;
    t.g_atomic_pending <- Atomic_op.P_none
  end
  else if offset = Regmap.k_map_out_src then t.map_out_staged <- Some (Layout.page_base value)
  else if offset = Regmap.k_map_out_dst then begin
    match t.map_out_staged with
    | Some src_page ->
      Hashtbl.replace t.mapped_out src_page (Layout.page_base value);
      t.map_out_staged <- None
    | None -> ()
  end
  else if offset = Regmap.k_atomic_target then t.k_atomic_target <- value
  else if offset = Regmap.k_atomic_op then
    t.k_atomic_pending <- Atomic_op.accumulate t.k_atomic_pending value
  else if offset = Regmap.k_cap_value then t.cap_stage_value <- value
  else if offset = Regmap.k_cap_base then t.cap_stage_base <- value
  else if offset = Regmap.k_cap_len then t.cap_stage_len <- value
  else if offset = Regmap.k_cap_commit then begin
    let ctx = value land 0xff in
    let rights =
      {
        Perms.read = value land 0x100 <> 0;
        write = value land 0x200 <> 0;
      }
    in
    let owner = value asr 16 in
    if t.cap_stage_value <> 0 then
      Capability.install t.caps
        {
          Capability.value = t.cap_stage_value;
          ctx;
          pid = owner;
          base = t.cap_stage_base;
          len = t.cap_stage_len;
          rights;
          revoked = false;
        };
    t.cap_stage_value <- 0;
    t.cap_stage_base <- 0;
    t.cap_stage_len <- 0
  end
  else if offset = Regmap.k_cap_revoke then Capability.revoke_value t.caps ~value
  else if offset = Regmap.k_iotlb_invalidate then begin
    if value < 0 then Iotlb.flush t.iotlb else Iotlb.invalidate t.iotlb ~vpage:value
  end
  else if
    offset >= Regmap.k_mailbox_base
    && offset < Regmap.k_mailbox_base + (8 * Context_file.length t.contexts)
  then begin
    let context = (offset - Regmap.k_mailbox_base) / 8 in
    (Context_file.get t.contexts context).Context_file.mailbox <-
      (if value = 0 then None else Some value)
  end
  else if offset >= Regmap.k_key_base && offset < Regmap.k_key_base + (8 * Context_file.length t.contexts)
  then begin
    (* a key change is a change of ownership: wipe any argument state
       the previous owner left behind, or the new owner's size+go could
       fire a transfer with the old owner's physical addresses *)
    let context = (offset - Regmap.k_key_base) / 8 in
    Context_file.reset (Context_file.get t.contexts context);
    Context_file.set_key t.contexts ~context ~key:value;
    (* and for the same reason, capabilities granted to the previous
       owner of the context die with the ownership change *)
    Capability.revoke_ctx t.caps ~ctx:context
  end

let kernel_load t offset ~pid =
  if offset = Regmap.k_status then
    if Status.is_failure t.k_status then t.k_status
    else
      match t.last_transfer with
      | Some tr -> Transfer.remaining tr ~now:(now t)
      | None -> t.k_status
  else if offset = Regmap.k_atomic_op then begin
    let pending = t.k_atomic_pending in
    t.k_atomic_pending <- Atomic_op.P_none;
    match pending with
    | Atomic_op.P_ready op -> run_atomic t ~op ~target:t.k_atomic_target ~context:None ~pid
    | Atomic_op.P_none | Atomic_op.P_cas_expected _ ->
      reject t ~reason:Incomplete_arguments ~pid
  end
  else 0

(* ------------------------------------------------------------------ *)
(* Register context pages *)

(* Only the Iommu and Capio protocols decode the explicit argument
   registers; under the paper's mechanisms every non-atomic store keeps
   its historical any-offset-goes-to-size semantics. *)
let decodes_arg_regs t = match t.mechanism with Iommu | Capio -> true | _ -> false

let context_page_store t context offset value ~pid =
  match Context_file.get_opt t.contexts context with
  | None -> ignore (reject t ~reason:No_context ~pid : int)
  | Some c ->
    if offset = Regmap.c_atomic then context_atomic_store c None value
    else if decodes_arg_regs t && offset = Regmap.c_arg_src then c.Context_file.src <- Some value
    else if decodes_arg_regs t && offset = Regmap.c_arg_dst then c.Context_file.dest <- Some value
    else c.Context_file.size <- Some value

let context_page_load t context offset ~pid =
  match Context_file.get_opt t.contexts context with
  | None -> reject t ~reason:No_context ~pid
  | Some c ->
    if offset = Regmap.c_atomic then context_atomic_exec t c ~expected_target:None ~pid
    else begin
      match Context_file.args_ready c with
      | Some (src, dest, size) ->
        let status =
          match t.mechanism with
          | Iommu -> fire_iommu t ~context ~vsrc:src ~vdst:dest ~size ~pid
          | Capio -> fire_capio t ~context ~cap_src:src ~cap_dst:dest ~size ~pid
          | Shrimp_mapped | Shrimp_two_step | Flash | Key_based | Ext_shadow
          | Ext_shadow_stateless | Rep_args _ ->
            start_transfer t ~src ~dst:dest ~size ~context:(Some context) ~pid
        in
        Context_file.clear_args c;
        c.Context_file.status <- status;
        status
      | None ->
        if c.Context_file.dest <> None || c.Context_file.src <> None || c.Context_file.size <> None
        then begin
          Context_file.clear_args c;
          let status = reject t ~reason:Incomplete_arguments ~pid in
          c.Context_file.status <- status;
          status
        end
        else context_status t context
    end

(* ------------------------------------------------------------------ *)
(* Shadow window: atomic accesses (§3.5) *)

let decode_key value = (value asr 4, value land 0xf)

let shadow_atomic t (d : Shadow.decoded) (op : Txn.op) value ~pid =
  match (t.mechanism, op) with
  | Ext_shadow, Txn.Store ->
    (match Context_file.get_opt t.contexts d.Shadow.context with
    | None -> ignore (reject t ~reason:No_context ~pid : int)
    | Some c -> context_atomic_store c (Some d.Shadow.paddr) value);
    0
  | Ext_shadow, Txn.Load -> (
    match Context_file.get_opt t.contexts d.Shadow.context with
    | None -> reject t ~reason:No_context ~pid
    | Some c -> context_atomic_exec t c ~expected_target:(Some d.Shadow.paddr) ~pid)
  | Key_based, Txn.Store ->
    (let key, context = decode_key value in
     match Context_file.get_opt t.contexts context with
     | None -> ignore (reject t ~reason:No_context ~pid : int)
     | Some c ->
       if c.Context_file.key = key then c.Context_file.atomic_target <- Some d.Shadow.paddr
       else ignore (reject t ~reason:Bad_key ~pid : int));
    0
  | Key_based, Txn.Load -> reject t ~reason:Unsupported ~pid
  | (Shrimp_two_step | Flash | Ext_shadow_stateless), Txn.Store ->
    (* the shared atomic slot: one (target, op) pair for the whole
       engine. Safe only when the two accesses cannot be interleaved,
       i.e. when issued from PAL mode (sec. 2.7 + 3.5). *)
    t.g_atomic_target <- Some d.Shadow.paddr;
    t.g_atomic_pending <- Atomic_op.accumulate t.g_atomic_pending value;
    0
  | (Shrimp_two_step | Flash | Ext_shadow_stateless), Txn.Load -> (
    let target = t.g_atomic_target and pending = t.g_atomic_pending in
    t.g_atomic_target <- None;
    t.g_atomic_pending <- Atomic_op.P_none;
    match (target, pending) with
    | Some target, Atomic_op.P_ready op when target = d.Shadow.paddr ->
      run_atomic t ~op ~target ~context:None ~pid
    | _, _ -> reject t ~reason:Incomplete_arguments ~pid)
  | (Shrimp_mapped | Rep_args _ | Iommu | Capio), Txn.Load -> reject t ~reason:Unsupported ~pid
  | (Shrimp_mapped | Rep_args _ | Iommu | Capio), Txn.Store ->
    ignore (reject t ~reason:Unsupported ~pid : int);
    0

(* ------------------------------------------------------------------ *)
(* Shadow window: DMA argument passing *)

let shadow_store t (d : Shadow.decoded) value ~pid =
  let discard r = ignore (r : int) in
  match t.mechanism with
  | Shrimp_mapped -> (
    let src = d.Shadow.paddr in
    match Hashtbl.find_opt t.mapped_out (Layout.page_base src) with
    | Some dst_page ->
      let dst = dst_page lor Layout.page_offset src in
      t.last_status <- start_transfer t ~src ~dst ~size:value ~context:None ~pid
    | None ->
      t.last_status <- Status.failure;
      discard (reject t ~reason:Not_mapped_out ~pid))
  | Shrimp_two_step | Flash ->
    t.pending <-
      Some { p_dest = d.Shadow.paddr; p_size = value; p_pid = t.current_pid; p_ctx = 0 }
  | Ext_shadow_stateless ->
    (* sec. 3.2, no-register-context engine: remember the context id
       carried in the shadow physical address itself *)
    t.pending <-
      Some
        { p_dest = d.Shadow.paddr; p_size = value; p_pid = 0; p_ctx = d.Shadow.context }
  | Key_based -> (
    let key, context = decode_key value in
    match Context_file.get_opt t.contexts context with
    | None -> discard (reject t ~reason:No_context ~pid)
    | Some c ->
      if c.Context_file.key = key then Context_file.push_address c d.Shadow.paddr
      else discard (reject t ~reason:Bad_key ~pid))
  | Ext_shadow -> (
    match Context_file.get_opt t.contexts d.Shadow.context with
    | None -> discard (reject t ~reason:No_context ~pid)
    | Some c ->
      c.Context_file.dest <- Some d.Shadow.paddr;
      c.Context_file.size <- Some value)
  | Rep_args _ -> (
    match Seq_matcher.feed t.matcher Txn.Store ~paddr:d.Shadow.paddr ~value with
    | Seq_matcher.Accepted ->
      if tracing t then
        trace t ~at:(now t) ~pid
          (Uldma_obs.Trace.Engine_match { step = Seq_matcher.position t.matcher })
    | Seq_matcher.Rejected -> ()
    | Seq_matcher.Fired { src; dst; size } ->
      (* cannot happen: all patterns end on a load; fire anyway *)
      t.last_status <- start_transfer t ~src ~dst ~size ~context:None ~pid)
  | Iommu | Capio ->
    (* arguments travel through the register context page only; the
       shadow window is not decoded by these mechanisms *)
    discard (reject t ~reason:Unsupported ~pid)

let shadow_load t (d : Shadow.decoded) ~pid =
  match t.mechanism with
  | Shrimp_mapped -> two_step_status t
  | Shrimp_two_step -> (
    match t.pending with
    | Some { p_dest; p_size; _ } ->
      t.pending <- None;
      let status = start_transfer t ~src:d.Shadow.paddr ~dst:p_dest ~size:p_size ~context:None ~pid in
      t.last_status <- status;
      status
    | None ->
      t.last_status <- Status.failure;
      reject t ~reason:Incomplete_arguments ~pid)
  | Ext_shadow_stateless -> (
    match t.pending with
    | Some { p_dest; p_size; p_ctx; _ } ->
      t.pending <- None;
      if p_ctx <> d.Shadow.context then begin
        t.last_status <- Status.failure;
        reject t ~reason:Wrong_context ~pid
      end
      else begin
        let status =
          start_transfer t ~src:d.Shadow.paddr ~dst:p_dest ~size:p_size ~context:None ~pid
        in
        t.last_status <- status;
        status
      end
    | None ->
      t.last_status <- Status.failure;
      reject t ~reason:Incomplete_arguments ~pid)
  | Flash -> (
    match t.pending with
    | Some { p_dest; p_size; p_pid; _ } ->
      t.pending <- None;
      if p_pid <> t.current_pid then begin
        t.last_status <- Status.failure;
        reject t ~reason:Wrong_pid ~pid
      end
      else begin
        let status =
          start_transfer t ~src:d.Shadow.paddr ~dst:p_dest ~size:p_size ~context:None ~pid
        in
        t.last_status <- status;
        status
      end
    | None ->
      t.last_status <- Status.failure;
      reject t ~reason:Incomplete_arguments ~pid)
  | Key_based ->
    (* the key-based protocol never loads from the shadow window *)
    reject t ~reason:Unsupported ~pid
  | Ext_shadow -> (
    match Context_file.get_opt t.contexts d.Shadow.context with
    | None -> reject t ~reason:No_context ~pid
    | Some c -> (
      match (c.Context_file.dest, c.Context_file.size) with
      | Some dest, Some size ->
        let status =
          start_transfer t ~src:d.Shadow.paddr ~dst:dest ~size ~context:(Some d.Shadow.context) ~pid
        in
        Context_file.clear_args c;
        c.Context_file.status <- status;
        status
      | None, _ | _, None ->
        Context_file.clear_args c;
        let status = reject t ~reason:Incomplete_arguments ~pid in
        c.Context_file.status <- status;
        status))
  | Rep_args _ -> (
    match Seq_matcher.feed t.matcher Txn.Load ~paddr:d.Shadow.paddr ~value:0 with
    | Seq_matcher.Accepted ->
      if tracing t then
        trace t ~at:(now t) ~pid
          (Uldma_obs.Trace.Engine_match { step = Seq_matcher.position t.matcher });
      Status.in_progress
    | Seq_matcher.Rejected -> reject t ~reason:Broken_sequence ~pid
    | Seq_matcher.Fired { src; dst; size } ->
      let status = start_transfer t ~src ~dst ~size ~context:None ~pid in
      t.last_status <- status;
      status)
  | Iommu | Capio -> reject t ~reason:Unsupported ~pid

(* ------------------------------------------------------------------ *)

(* Telegraphos remote write: an ordinary uncached store to a
   remote-window page becomes a single-word packet. Remote loads would
   need a round trip; like Telegraphos, we reject them. *)
let handle_remote t (txn : Txn.t) =
  match txn.Txn.op with
  | Txn.Store ->
    let payload = Bytes.create Layout.word_size in
    Bytes.set_int64_le payload 0 (Int64.of_int txn.Txn.value);
    send_remote t ~remote_paddr:txn.Txn.paddr ~payload;
    0
  | Txn.Load -> reject t ~reason:Unsupported ~pid:txn.Txn.pid

let handle t (txn : Txn.t) =
  let pid = txn.Txn.pid in
  if Layout.in_remote txn.Txn.paddr then handle_remote t txn
  else if Layout.in_mmio txn.Txn.paddr then begin
    let page = Layout.page_base txn.Txn.paddr and offset = Layout.page_offset txn.Txn.paddr in
    if page = Layout.kernel_control_page then
      match txn.Txn.op with
      | Txn.Store ->
        kernel_store t offset txn.Txn.value ~pid;
        0
      | Txn.Load -> kernel_load t offset ~pid
    else
      match Layout.context_of_mmio txn.Txn.paddr with
      | Some context -> (
        match txn.Txn.op with
        | Txn.Store ->
          context_page_store t context offset txn.Txn.value ~pid;
          0
        | Txn.Load -> context_page_load t context offset ~pid)
      | None -> 0
  end
  else
    match Shadow.decode txn.Txn.paddr with
    | Some d ->
      if tracing t then
        trace t ~at:txn.Txn.at ~pid (Uldma_obs.Trace.Engine_decode { paddr = txn.Txn.paddr });
      if d.Shadow.atomic then shadow_atomic t d txn.Txn.op txn.Txn.value ~pid
      else begin
        match txn.Txn.op with
        | Txn.Store ->
          shadow_store t d txn.Txn.value ~pid;
          0
        | Txn.Load -> shadow_load t d ~pid
      end
    | None -> 0

(* Canonical textual encoding of the engine's observable state, for the
   explorer's state fingerprint. Includes everything a future load can
   reveal: matcher/context registers, the pending two-step deposit, the
   kernel-page registers, atomic slots, started transfers (src/dst/
   size/pid/context plus the clock-relative in-flight view:
   remaining-wire-time-at-now and total duration — remaining bytes are
   a pure function of size/duration/remaining_ps, so two states that
   agree on those agree on every future status load however the
   absolute clock differs; under the zero-duration Null backend both
   extra fields are constant 0 and the encoding is as before, merging
   exactly the same states), mapped-out entries (sorted for canonicity)
   and the outbound network queue. Excludes diagnostics the simulated
   programs cannot read back: event log, counters, trace sink, absolute
   timestamps. Note the remaining time is encoded *exactly*: bucketing
   it (e.g. to the timed backend's tick) would be unsound, because two
   states in the same bucket can diverge observably one tick later —
   quantisation belongs in the backend's duration_ps, where it shrinks
   the set of deadlines without ever merging distinct ones. *)
let encode enc t =
  let i v = Uldma_util.Enc.int enc v in
  let ch c = Uldma_util.Enc.char enc c in
  let opt = function None -> min_int | Some v -> v in
  Uldma_util.Enc.string enc "E:";
  Seq_matcher.encode enc t.matcher;
  Context_file.encode enc t.contexts;
  (* per-context status as loads would see it right now *)
  ch 's';
  for c = 0 to Context_file.length t.contexts - 1 do
    i (context_status t c)
  done;
  ch 'p';
  (match t.pending with
  | None -> ()
  | Some { p_dest; p_size; p_pid; p_ctx } ->
    i p_dest;
    i p_size;
    i p_pid;
    i p_ctx);
  ch 'k';
  i t.current_pid;
  i t.k_src;
  i t.k_dst;
  i t.k_status;
  i t.k_atomic_target;
  Atomic_op.encode_pending enc t.k_atomic_pending;
  ch 'g';
  i (opt t.g_atomic_target);
  Atomic_op.encode_pending enc t.g_atomic_pending;
  ch 'l';
  i t.last_status;
  i (match t.last_transfer with None -> min_int | Some tr -> Transfer.remaining tr ~now:(now t));
  (* IOTLB contents + victim cursors and the capability table are
     engine-visible state: they decide future hit/miss charges and
     grant/reject outcomes. Under the paper's mechanisms both are
     empty/constant and the encoding partitions states as before. *)
  ch 'I';
  Iotlb.encode enc t.iotlb;
  ch 'C';
  Capability.encode enc t.caps;
  i t.cap_stage_value;
  i t.cap_stage_base;
  i t.cap_stage_len;
  List.iter
    (fun (tr : Transfer.t) ->
      ch 't';
      i tr.Transfer.src;
      i tr.Transfer.dst;
      i tr.Transfer.size;
      i tr.Transfer.pid;
      i (opt tr.Transfer.context);
      i (Transfer.remaining_ps tr ~now:(now t));
      i tr.Transfer.duration)
    t.transfers;
  (match t.map_out_staged with
  | None -> ()
  | Some p ->
    ch 'M';
    i p;
    ch ';');
  if Hashtbl.length t.mapped_out > 0 then begin
    let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.mapped_out [] in
    List.iter
      (fun (k, v) ->
        ch 'o';
        i k;
        i v;
        ch ';')
      (List.sort compare bindings)
  end;
  List.iter
    (fun p ->
      ch 'w';
      i p.remote_addr;
      Uldma_util.Enc.string enc (Bytes.to_string p.payload |> String.escaped);
      ch ',';
      match p.kind with
      | Remote_write -> ch ';'
      | Remote_atomic { op; reply_paddr } ->
        Atomic_op.encode_value enc op;
        ch '@';
        i reply_paddr;
        ch ';')
    t.outbound

(* Earliest future completion among in-flight transfers, if any. Under
   a zero-duration backend every end_time equals its started_at, which
   is never after now, so this is always None there. *)
let next_transfer_deadline t =
  let now = now t in
  List.fold_left
    (fun acc (tr : Transfer.t) ->
      let fin = Transfer.end_time tr in
      if fin > now then
        match acc with Some best when best <= fin -> acc | _ -> Some fin
      else acc)
    None t.transfers

let device t =
  {
    Bus.claims =
      (fun paddr -> Layout.in_mmio paddr || Layout.is_shadow paddr || Layout.in_remote paddr);
    Bus.handle = handle t;
  }

let set_context_owner t ~context ~pid = Context_file.set_owner t.contexts ~context ~pid

let invalidate_pending t = t.pending <- None

let set_current_pid t pid = t.current_pid <- pid

let map_out t ~src_page ~dst_page =
  Hashtbl.replace t.mapped_out (Layout.page_base src_page) (Layout.page_base dst_page)

let mapped_out_dst t ~src_page = Hashtbl.find_opt t.mapped_out (Layout.page_base src_page)

let events t = List.rev t.events

let clear_events t = t.events <- []

let transfers t = List.rev t.transfers

let take_outbound t =
  let packets = List.rev t.outbound in
  t.outbound <- [];
  packets

let counters t = t.counters

let pp_reject_reason ppf r =
  Format.pp_print_string ppf
    (match[@warning "+8"] r with
    | Bad_key -> "bad key"
    | No_context -> "no such register context"
    | Wrong_context -> "wrong register context"
    | Incomplete_arguments -> "incomplete arguments"
    | Broken_sequence -> "broken access sequence"
    | Bad_range -> "address range outside RAM"
    | Not_mapped_out -> "page has no mapped-out twin"
    | Wrong_pid -> "pending arguments belong to another process"
    | Unsupported -> "operation unsupported by this mechanism"
    | Not_present -> "IOMMU translation fault (page not present or wrong rights)"
    | Bad_capability -> "unknown, foreign or under-privileged capability"
    | Revoked_capability -> "capability has been revoked")

let pp_event ppf = function
  | Started tr -> Format.fprintf ppf "started: %a" Transfer.pp tr
  | Rejected { reason; pid; at } ->
    Format.fprintf ppf "rejected (%a) pid=%d at %a" pp_reject_reason reason pid Units.pp_time at
  | Atomic_done { op; target; result; pid; _ } ->
    Format.fprintf ppf "%a at %#x -> %d (pid %d)" Atomic_op.pp op target result pid
