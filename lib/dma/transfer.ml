open Uldma_util

type t = {
  src : int;
  dst : int;
  size : int;
  context : int option;
  pid : int;
  started_at : Units.ps;
  duration : Units.ps;
}

type backend = {
  copy : src:int -> dst:int -> len:int -> unit;
  read_word : int -> int;
  write_word : int -> int -> unit;
  read_bytes : int -> int -> Bytes.t;
  duration_ps : int -> Units.ps;
}

let null_backend =
  {
    copy = (fun ~src:_ ~dst:_ ~len:_ -> ());
    read_word = (fun _ -> 0);
    write_word = (fun _ _ -> ());
    read_bytes = (fun _ len -> Bytes.make len '\000');
    duration_ps = (fun _ -> 0);
  }

let local_backend ram ~setup_ps ~bytes_per_s =
  {
    copy = (fun ~src ~dst ~len -> Uldma_mem.Phys_mem.blit ram ~src ~dst ~len);
    read_word = Uldma_mem.Phys_mem.load_word ram;
    write_word = Uldma_mem.Phys_mem.store_word ram;
    read_bytes =
      (fun addr len ->
        let b = Bytes.create len in
        for i = 0 to len - 1 do
          Bytes.set b i (Char.chr (Uldma_mem.Phys_mem.load_byte ram (addr + i)))
        done;
        b);
    duration_ps = (fun n -> setup_ps + Units.transfer_ps ~bytes_per_s n);
  }

let remaining t ~now =
  if t.duration <= 0 then 0
  else
    let elapsed = now - t.started_at in
    if elapsed >= t.duration then 0
    else if elapsed <= 0 then t.size
    else t.size - (t.size * elapsed / t.duration)

let end_time t = t.started_at + t.duration

let remaining_ps t ~now = if t.duration <= 0 then 0 else max 0 (end_time t - now)

let pp ppf t =
  Format.fprintf ppf "DMA %#x -> %#x (%d bytes, pid %d%s, at %a, %a on the wire)" t.src t.dst
    t.size t.pid
    (match t.context with Some c -> Printf.sprintf ", ctx %d" c | None -> "")
    Units.pp_time t.started_at Units.pp_time t.duration
