open Uldma_cpu
open Uldma_os

let emit_dma_with ~cap_src ~cap_dst ~context_page_va asm =
  let ctx_page = Mech.reg_scratch0
  and src_cap = Mech.reg_scratch1
  and dst_cap = Mech.reg_scratch2 in
  Asm.li asm ctx_page context_page_va;
  Asm.li asm src_cap cap_src;
  Asm.li asm dst_cap cap_dst;
  (* STORE source capability       TO REGISTER_CONTEXT.arg_src *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_arg_src src_cap;
  (* STORE destination capability  TO REGISTER_CONTEXT.arg_dst *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_arg_dst dst_cap;
  (* STORE size                    TO REGISTER_CONTEXT *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_size Mech.reg_size;
  Asm.mb asm;
  (* LOAD return_status FROM REGISTER_CONTEXT — checks + initiates *)
  Asm.load asm Mech.reg_status ~base:ctx_page ~off:Uldma_dma.Regmap.c_size

let prepare kernel process ~src ~dst =
  Mech.check_prepared src dst;
  let context_page_va =
    match process.Process.dma_context with
    | Some _ -> Vm.context_page_va
    | None -> (
      match Kernel.alloc_dma_context kernel process with
      | Some (_, _, va) -> va
      | None -> failwith "Capio_dma.prepare: no free register context")
  in
  let grant region ~rights what =
    match
      Kernel.grant_dma_cap kernel process ~vaddr:region.Mech.vaddr
        ~len:(Mech.region_bytes region) ~rights
    with
    | Some value -> value
    | None -> failwith (Printf.sprintf "Capio_dma.prepare: cannot grant %s capability" what)
  in
  let cap_src = grant src ~rights:Uldma_mem.Perms.read_only "source" in
  let cap_dst = grant dst ~rights:Uldma_mem.Perms.write_only "destination" in
  { Mech.emit_dma = emit_dma_with ~cap_src ~cap_dst ~context_page_va }

let mech =
  {
    Mech.name = "capio";
    engine_mechanism = Some Uldma_dma.Engine.Capio;
    requires_kernel_modification = true;
    ni_accesses = 4;
    prepare;
  }
