(** IOMMU virtual-address DMA — the related-work contrast row.

    The process passes {e virtual} source and destination straight to
    its register context; the engine translates them itself through a
    bounded IOTLB backed by the process's page table:

    {v
    STORE vsource        TO REGISTER_CONTEXT.arg_src
    STORE vdestination   TO REGISTER_CONTEXT.arg_dst
    STORE size           TO REGISTER_CONTEXT
    LOAD  return_status  FROM REGISTER_CONTEXT
    v}

    Four NI accesses and {e zero} per-buffer setup (no shadow aliases
    to mmap), but the mechanism is exactly what the paper's title
    rules out: the kernel must bind page tables to the engine, flush
    the untagged IOTLB on every context switch and shoot down entries
    on unmap — [requires_kernel_modification = true]. An IOTLB miss
    costs a charged table walk ([Timing.iotlb_walk_ps]); an unmapped
    or under-privileged page is a [Not_present] reject. *)

val mech : Mech.t

val emit_dma_with : context_page_va:int -> Uldma_cpu.Asm.t -> unit
