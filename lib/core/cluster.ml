open Uldma_util
open Uldma_mem
open Uldma_os
open Uldma_dma
open Uldma_net

(* ------------------------------------------------------------------ *)
(* Addressing: bits 26..31 of the remote-window offset carry the       *)
(* destination node (value = node + 1; 0 = "my successor", which keeps *)
(* every pre-existing two-node program routing to its peer). 64 MiB of *)
(* peer RAM is addressable per node; the window holds 63 field values, *)
(* i.e. up to 62 explicitly named nodes.                               *)
(* ------------------------------------------------------------------ *)

let node_shift = 26
let node_mask = 0x3f
let per_node_bytes = 1 lsl node_shift
let max_nodes = node_mask - 1

(* On the wire, atomic requests are distinguished from plain writes by
   a tag bit far above the remote window (same convention the old
   duplex used). *)
let atomic_tag = 1 lsl 60

(* strip both the tag and the node field to recover the destination's
   local physical address *)
let local_mask = lnot (atomic_tag lor (node_mask lsl node_shift))

let remote_paddr ~node off =
  if node < 0 || node >= max_nodes then
    invalid_arg (Printf.sprintf "Cluster.remote_paddr: node %d out of range" node);
  if off < 0 || off >= per_node_bytes then
    invalid_arg
      (Printf.sprintf "Cluster.remote_paddr: offset %#x outside the per-node 64 MiB window" off);
  ((node + 1) lsl node_shift) lor off

type t = {
  kernels : Kernel.t array;
  mesh : Netif.t option array array; (* mesh.(src).(dst); None on the diagonal *)
  net : Backend.t;
  packets_into : int array;
  write_bytes_into : int array;
  mutable last_arrival : Units.ps;
}

let create ?(net = Backend.null) ?config_of ~nodes:n ~config () =
  if n < 2 || n > max_nodes then
    invalid_arg (Printf.sprintf "Cluster.create: nodes must be in 2..%d (got %d)" max_nodes n);
  let config_of = match config_of with Some f -> f | None -> fun _ -> config in
  let link = match Backend.link net with Some l -> l | None -> Link.instant in
  (* kernels first, in index order, so trace machine ids follow node
     indices on a shared ambient sink *)
  let kernels = Array.init n (fun i -> Kernel.create (config_of i)) in
  let mesh =
    Array.init n (fun src ->
      Array.init n (fun dst ->
        if src = dst then None
        else begin
          let nif = Netif.create ~link in
          (* arrivals at [dst] are traced on [dst]'s machine id *)
          Netif.set_sink nif ~machine:(Kernel.machine_id kernels.(dst)) (Kernel.trace kernels.(dst));
          Some nif
        end))
  in
  {
    kernels;
    mesh;
    net;
    packets_into = Array.make n 0;
    write_bytes_into = Array.make n 0;
    last_arrival = 0;
  }

let nodes t = Array.length t.kernels

let node t i =
  if i < 0 || i >= nodes t then
    invalid_arg (Printf.sprintf "Cluster.node: %d out of range (cluster has %d nodes)" i (nodes t));
  t.kernels.(i)

let net t = t.net

let mesh_netif t ~src ~dst =
  match t.mesh.(src).(dst) with
  | Some nif -> nif
  | None -> invalid_arg "Cluster.mesh_netif: src = dst"

let map_remote t ~src ~dst p ~remote_paddr:off ~n ~perms =
  ignore (node t src);
  ignore (node t dst);
  Kernel.map_remote_pages t.kernels.(src) p ~remote_paddr:(remote_paddr ~node:dst off) ~n ~perms

(* ------------------------------------------------------------------ *)
(* Wire protocol (inherited from the duplex): plain writes carry their *)
(* payload; atomics carry opcode + operands + reply address in a       *)
(* 32-byte record and are answered with an 8-byte write to the         *)
(* originator's mailbox.                                               *)
(* ------------------------------------------------------------------ *)

let encode_atomic (op : Atomic_op.t) ~reply_paddr =
  let payload = Bytes.create 32 in
  let opcode, a, b =
    match op with
    | Atomic_op.Add v -> (1, v, 0)
    | Atomic_op.Fetch_store v -> (2, v, 0)
    | Atomic_op.Cas { expected; new_value } -> (3, expected, new_value)
  in
  Bytes.set_int64_le payload 0 (Int64.of_int opcode);
  Bytes.set_int64_le payload 8 (Int64.of_int a);
  Bytes.set_int64_le payload 16 (Int64.of_int b);
  Bytes.set_int64_le payload 24 (Int64.of_int reply_paddr);
  payload

let decode_atomic payload =
  let word i = Int64.to_int (Bytes.get_int64_le payload (8 * i)) in
  let op =
    match word 0 with
    | 1 -> Atomic_op.Add (word 1)
    | 2 -> Atomic_op.Fetch_store (word 1)
    | _ -> Atomic_op.Cas { expected = word 1; new_value = word 2 }
  in
  (op, word 3)

let route t ~src addr =
  let f = (addr lsr node_shift) land node_mask in
  let n = nodes t in
  if f = 0 then (src + 1) mod n
  else if f - 1 < n then f - 1
  else
    failwith
      (Printf.sprintf "Cluster: packet from node %d addresses node %d, but the cluster has %d nodes"
         src (f - 1) n)

(* move freshly initiated transfers of node [src] onto the wires *)
let pump_outbound t src =
  List.iter
    (fun (p : Engine.outbound_packet) ->
      let dst = route t ~src p.Engine.remote_addr in
      let nif = mesh_netif t ~src ~dst in
      match p.Engine.kind with
      | Engine.Remote_write ->
        Netif.send nif ~now:p.Engine.sent_at ~dst_paddr:p.Engine.remote_addr
          ~payload:p.Engine.payload
      | Engine.Remote_atomic { op; reply_paddr } ->
        Netif.send nif ~now:p.Engine.sent_at
          ~dst_paddr:(atomic_tag lor p.Engine.remote_addr)
          ~payload:(encode_atomic op ~reply_paddr))
    (Engine.take_outbound (Kernel.engine t.kernels.(src)))

let pump_outbound_all t =
  for src = 0 to nodes t - 1 do
    pump_outbound t src
  done

(* [origin] is the node the packet came from (for atomic replies) *)
let apply t ~dst ~origin (p : Netif.packet) =
  let ram = Kernel.ram t.kernels.(dst) in
  if p.Netif.dst_paddr land atomic_tag <> 0 then begin
    let target = p.Netif.dst_paddr land local_mask in
    let op, reply_paddr = decode_atomic p.Netif.payload in
    let old_value =
      Atomic_op.execute op ~read:(Phys_mem.load_word ram) ~write:(Phys_mem.store_word ram) ~target
    in
    let reply = Bytes.create 8 in
    Bytes.set_int64_le reply 0 (Int64.of_int old_value);
    (* the reply rides the wire back to the originator's mailbox *)
    Netif.send (mesh_netif t ~src:dst ~dst:origin) ~now:p.Netif.arrive_at ~dst_paddr:reply_paddr
      ~payload:reply
  end
  else begin
    let local = p.Netif.dst_paddr land local_mask in
    let len = Bytes.length p.Netif.payload in
    for i = 0 to len - 1 do
      Phys_mem.store_byte ram (local + i) (Char.code (Bytes.get p.Netif.payload i))
    done;
    t.write_bytes_into.(dst) <- t.write_bytes_into.(dst) + len
  end;
  t.packets_into.(dst) <- t.packets_into.(dst) + 1;
  t.last_arrival <- max t.last_arrival p.Netif.arrive_at

let deliver_arrived ?now t dst =
  let cutoff = match now with Some x -> x | None -> Kernel.now_ps t.kernels.(dst) in
  let n = ref 0 in
  for origin = 0 to nodes t - 1 do
    if origin <> dst then
      n := !n + Netif.poll (mesh_netif t ~src:origin ~dst) ~now:cutoff (apply t ~dst ~origin)
  done;
  !n

let pump ?now t =
  pump_outbound_all t;
  let delivered = ref 0 in
  for dst = 0 to nodes t - 1 do
    delivered := !delivered + deliver_arrived ?now t dst
  done;
  !delivered

let settle t =
  let total = ref 0 in
  let progress = ref true in
  (* replies generated while draining land on other wires, so sweep
     until a whole pass moves nothing *)
  while !progress do
    pump_outbound_all t;
    let sweep = ref 0 in
    for src = 0 to nodes t - 1 do
      for dst = 0 to nodes t - 1 do
        if src <> dst then
          sweep := !sweep + Netif.drain_all (mesh_netif t ~src ~dst) (apply t ~dst ~origin:src)
      done
    done;
    total := !total + !sweep;
    progress := !sweep > 0
  done;
  Array.iter
    (fun k ->
      if t.last_arrival > Kernel.now_ps k then
        Uldma_bus.Clock.advance (Kernel.clock k) (t.last_arrival - Kernel.now_ps k))
    t.kernels;
  !total

type stop = All_exited | Max_steps | Predicate

let in_flight_total t =
  let n = ref 0 in
  for src = 0 to nodes t - 1 do
    for dst = 0 to nodes t - 1 do
      if src <> dst then n := !n + Netif.in_flight (mesh_netif t ~src ~dst)
    done
  done;
  !n

(* If a node is idle but has packets in flight toward it, advance its
   clock to the next arrival so the packet can land (an exited node's
   RAM still receives packets). *)
let settle_idle t dst =
  let next = ref None in
  for origin = 0 to nodes t - 1 do
    if origin <> dst then
      match Netif.next_arrival (mesh_netif t ~src:origin ~dst) with
      | Some at -> (
        match !next with Some cur when cur <= at -> () | _ -> next := Some at)
      | None -> ()
  done;
  match !next with
  | Some at when at > Kernel.now_ps t.kernels.(dst) ->
    Uldma_bus.Clock.advance (Kernel.clock t.kernels.(dst)) (at - Kernel.now_ps t.kernels.(dst))
  | Some _ | None -> ()

let run t ?(max_steps = 20_000_000) ?(until = fun _ -> false) () =
  let n = nodes t in
  let runnable i = Kernel.runnable_pids t.kernels.(i) <> [] in
  let rec loop steps =
    if until t then Predicate
    else if steps >= max_steps then Max_steps
    else begin
      for i = 0 to n - 1 do
        if not (runnable i) then settle_idle t i
      done;
      ignore (pump t : int);
      (* step the runnable node with the lowest clock; lowest index on
         ties (scanning downward with <= leaves the smallest index) *)
      let choice = ref (-1) in
      for i = n - 1 downto 0 do
        if
          runnable i
          && (!choice < 0 || Kernel.now_ps t.kernels.(i) <= Kernel.now_ps t.kernels.(!choice))
        then choice := i
      done;
      if !choice >= 0 then begin
        (match Kernel.step t.kernels.(!choice) with `Stepped _ | `Idle -> ());
        loop (steps + 1)
      end
      else begin
        (* every machine idle: let in-flight packets land, then stop *)
        for i = 0 to n - 1 do
          settle_idle t i
        done;
        ignore (pump t : int);
        if in_flight_total t = 0 then All_exited else loop (steps + 1)
      end
    end
  in
  loop 0

let now_ps t = Array.fold_left (fun acc k -> max acc (Kernel.now_ps k)) 0 t.kernels
let last_arrival_ps t = t.last_arrival
let packets_into t i = t.packets_into.(i)
let write_bytes_into t i = t.write_bytes_into.(i)
