(** An N-node NOW: one full machine per node, connected by a full mesh
    of timed links.

    This generalises the old two-node duplex ({!Uldma_sim.Duplex}) to
    [n] kernels. Every ordered pair [(i, j)] of distinct nodes gets its
    own {!Uldma_net.Netif} channel, so traffic [i -> j] serialises
    against other [i -> j] traffic but not against [j -> i] or against
    other pairs — the model of a switched point-to-point fabric
    (ATM / HIC), not a shared bus.

    {2 Addressing and routing}

    The paper's remote window ([Layout.remote_base], 2^32 bytes wide)
    is subdivided: bits [26..31] of the remote {e offset} carry a node
    field. [remote_paddr ~node k off] yields the offset that routes to
    node [k]; a zero node field (plain offsets below 64 MiB, i.e.
    everything pre-existing code produces) routes to the sender's
    successor [(i + 1) mod n] — which is exactly "the peer" in a
    two-node cluster, so duplex-era programs run unchanged. Each
    destination node exposes 64 MiB of addressable RAM through the
    window; the field supports up to {!max_nodes} nodes.

    On the wire, remote atomics travel as 32-byte encoded requests
    (tagged with a high destination bit) and their replies return as
    plain 8-byte writes to the originator's mailbox — the same protocol
    the duplex used, now mesh-wide.

    {2 Co-simulation}

    [run] interleaves the kernels causally: the runnable node with the
    lowest clock steps next (lowest index on ties), idle nodes have
    their clocks advanced to the next packet arrival so deliveries are
    never starved, and the run ends when every node has exited and all
    wires are empty. *)

open Uldma_os

type t

val max_nodes : int
(** 62 — the widest node field the remote window can carry. *)

val create :
  ?net:Uldma_net.Backend.t ->
  ?config_of:(int -> Kernel.config) ->
  nodes:int ->
  config:Kernel.config ->
  unit ->
  t
(** [create ~nodes ~config ()] builds [nodes] kernels (in index order,
    so trace machine ids follow node indices) and the full mesh of
    netifs. [?config_of] overrides the configuration per node index;
    [?net] picks the wire model (default [Backend.null], i.e. instant
    links). Raises [Invalid_argument] unless
    [2 <= nodes <= max_nodes]. *)

val nodes : t -> int
val node : t -> int -> Kernel.t
(** The kernel of node [i]; raises [Invalid_argument] out of range. *)

val net : t -> Uldma_net.Backend.t

val mesh_netif : t -> src:int -> dst:int -> Uldma_net.Netif.t
(** The directed channel carrying [src]'s packets toward [dst]. *)

(** {2 Remote addressing} *)

val remote_paddr : node:int -> int -> int
(** [remote_paddr ~node off] is the remote-window offset (suitable for
    [Kernel.map_remote_pages]) addressing physical address [off] on
    node [node]. [off] must stay below 64 MiB. *)

val map_remote :
  t -> src:int -> dst:int -> Process.t -> remote_paddr:int -> n:int ->
  perms:Uldma_mem.Perms.t -> int
(** Map [n] pages of node [dst]'s physical memory (starting at its
    local page-aligned address [remote_paddr]) into a process running
    on node [src]. Returns the fresh virtual address. *)

(** {2 Driving the co-simulation} *)

val pump : ?now:Uldma_util.Units.ps -> t -> int
(** Move freshly initiated transfers onto the wires, then deliver every
    packet that has arrived by each destination's clock ([?now]
    overrides the per-destination cutoff). Returns packets delivered. *)

val settle : t -> int
(** Deliver everything still in flight regardless of time (end of run),
    looping until the mesh is empty — atomic requests generate replies,
    which are drained too. Advances every node clock to the last
    arrival. Returns packets delivered. *)

type stop = All_exited | Max_steps | Predicate

val run : t -> ?max_steps:int -> ?until:(t -> bool) -> unit -> stop
(** Causally interleave all nodes (see the header comment) until every
    machine has exited and the mesh is empty, the step bound is hit, or
    the predicate fires. *)

val now_ps : t -> Uldma_util.Units.ps
(** The maximum of the node clocks. *)

val last_arrival_ps : t -> Uldma_util.Units.ps
(** Arrival time of the latest packet delivered so far. *)

val packets_into : t -> int -> int
(** Packets delivered {e into} node [i] (writes + atomic requests +
    replies). *)

val write_bytes_into : t -> int -> int
(** Payload bytes of plain remote writes delivered into node [i]
    (excludes atomic requests and replies — the "useful data"
    measure the old two-node cluster reported). *)
