open Uldma_cpu
open Uldma_os

let emit_dma_with ~context_page_va asm =
  let ctx_page = Mech.reg_scratch0 in
  Asm.li asm ctx_page context_page_va;
  (* STORE vsource      TO REGISTER_CONTEXT.arg_src  — virtual! *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_arg_src Mech.reg_vsrc;
  (* STORE vdestination TO REGISTER_CONTEXT.arg_dst *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_arg_dst Mech.reg_vdst;
  (* STORE size         TO REGISTER_CONTEXT *)
  Asm.store asm ~base:ctx_page ~off:Uldma_dma.Regmap.c_size Mech.reg_size;
  Asm.mb asm;
  (* LOAD return_status FROM REGISTER_CONTEXT — translates + initiates *)
  Asm.load asm Mech.reg_status ~base:ctx_page ~off:Uldma_dma.Regmap.c_size

let prepare kernel process ~src ~dst =
  Mech.check_prepared src dst;
  let context_page_va =
    match process.Process.dma_context with
    | Some _ -> Vm.context_page_va
    | None -> (
      match Kernel.alloc_dma_context kernel process with
      | Some (_, _, va) -> va
      | None -> failwith "Iommu_dma.prepare: no free register context")
  in
  (* no shadow aliases, no per-buffer setup at all: the engine
     translates the virtual addresses itself through the IOTLB *)
  ignore (src : Mech.region);
  ignore (dst : Mech.region);
  { Mech.emit_dma = emit_dma_with ~context_page_va }

let mech =
  {
    Mech.name = "iommu";
    engine_mechanism = Some Uldma_dma.Engine.Iommu;
    requires_kernel_modification = true;
    ni_accesses = 4;
    prepare;
  }
