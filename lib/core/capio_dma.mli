(** CAPIO-style capability-checked DMA — the related-work contrast row.

    A [Sysno.sys_grant_dma_cap] syscall (one per buffer, setup time)
    mints an unforgeable 64-bit capability encoding a physical range,
    rights and the owning register context. Initiation then names the
    two capabilities instead of addresses:

    {v
    STORE source capability       TO REGISTER_CONTEXT.arg_src
    STORE destination capability  TO REGISTER_CONTEXT.arg_dst
    STORE size                    TO REGISTER_CONTEXT
    LOAD  return_status           FROM REGISTER_CONTEXT
    v}

    Four NI accesses. The engine rejects an unknown, foreign or
    under-privileged value with [Bad_capability], and a once-valid
    value used after revocation (owner exit, unmap, key rotation) with
    [Revoked_capability]. The kernel mints, installs and revokes —
    [requires_kernel_modification = true]: this is the syscall-per-
    buffer design the paper's user-level mechanisms avoid. *)

val mech : Mech.t

val emit_dma_with :
  cap_src:int -> cap_dst:int -> context_page_va:int -> Uldma_cpu.Asm.t -> unit
