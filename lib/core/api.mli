(** The unified front-end over all DMA-initiation mechanisms.

    Typical use:
    {[
      let m = Api.find_exn "ext-shadow" in
      let config = Api.kernel_config m in
      let kernel = Kernel.create config in
      let p = Kernel.spawn kernel ~name:"app" ~program:[||] () in
      let src = Kernel.alloc_pages kernel p ~n:4 ~perms:Perms.read_write in
      ...
      let prepared = m.prepare kernel p ~src:{vaddr=src; pages=4} ~dst:... in
      (* build a program with prepared.emit_dma and Process.set_program *)
    ]} *)

val all : Mech.t list
(** Every mechanism, baselines included, in presentation order:
    kernel, shrimp-1, shrimp-2, flash, pal, key-based, ext-shadow
    (register-context and stateless engines), rep-args (plus the
    deliberately vulnerable rep-args-3/-4), iommu, capio. *)

val table1 : Mech.t list
(** The four rows of the paper's Table 1, in its order: kernel-level,
    extended shadow addressing, repeated passing, key-based. *)

val no_kernel_modification : Mech.t list
(** The paper's contributions: mechanisms needing no kernel change
    (pal, key-based, ext-shadow, rep-args). *)

val matrix6 : Mech.t list
(** The six-mechanism protection matrix: the paper's four user-level
    mechanisms (pal, key-based, ext-shadow, rep-args) plus the two
    kernel-modifying related-work designs (iommu, capio). *)

val find : string -> Mech.t option
val find_exn : string -> Mech.t
val names : string list

val kernel_config :
  ?base:Uldma_os.Kernel.config -> Mech.t -> Uldma_os.Kernel.config
(** [base] (default [Kernel.default_config]) with the engine mechanism
    this method requires. *)
