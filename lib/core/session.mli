(** The one-stop front door: mechanism lookup, kernel construction,
    process + region setup, stub installation and result readout in a
    handful of calls.

    The classic seven-step dance
    ([Api.find_exn] → [Api.kernel_config] → [Kernel.create] →
    [Kernel.spawn] → [Kernel.alloc_pages] ×3 → [Mech.prepare] →
    build a program around [prepared.emit_dma]) collapses to:

    {[
      let s = Session.create ~mech:"ext-shadow" () in
      let p = Session.process s ~name:"app" () in
      Session.dma_stub s p ~iterations:1000;
      Session.run_exn s;
      Printf.printf "%d successes\n" (Session.successes s p)
    ]}

    Sessions compose with the observability layer: pass [?trace] (or
    install an ambient sink with [Uldma_obs.Trace.with_ambient] before
    [create]) and read the machine's named counters back with
    [metrics]. *)

open Uldma_cpu
open Uldma_os

(** {1 Stub-loop builders}

    Program builders around the mechanism stubs. Every built program
    counts the initiations whose status was non-negative (success,
    §3.1) in a register and stores, on exit, the success count at
    [result_va] and the last status at [result_va + 8].

    [Uldma_workload.Stub_loop] re-exports this module under its
    historical name. *)

module Stub : sig
  type spec = {
    iterations : int;
    transfer_size : int;
    src_base : int;  (** base of the source region *)
    dst_base : int;
    pages : int;  (** pages cycled through; must be a power of two *)
    result_va : int;
  }

  val build_loop : spec -> emit_dma:(Asm.t -> unit) -> Isa.instr array
  (** The paper's Table 1 methodology: "initiating 1,000 DMA
      operations ... to (from) different addresses, so as to eliminate
      any caching effects". *)

  val build_single :
    vsrc:int -> vdst:int -> size:int -> result_va:int ->
    emit_dma:(Asm.t -> unit) -> Isa.instr array
  (** One initiation, then record results and halt. *)

  val build_repeat :
    n:int -> vsrc:int -> vdst:int -> size:int -> result_va:int ->
    emit_dma:(Asm.t -> unit) -> Isa.instr array
  (** [n] initiations of the same transfer (contention scenarios). *)

  val read_successes : Kernel.t -> Process.t -> result_va:int -> int
  val read_last_status : Kernel.t -> Process.t -> result_va:int -> int
end

(** {1 Sessions} *)

type preset =
  | Paper_machine
      (** [Kernel.default_config]: alpha3000_300 timing, null backend,
          run-to-completion scheduling. *)
  | Local_backend of { bytes_per_s : float }
      (** Paper machine plus a local DMA backend that actually moves
          bytes at the given rate. *)
  | Timeshared of { quantum : int; bytes_per_s : float }
      (** Round-robin preemption every [quantum] instructions, local
          backend — the multiprogrammed setting of §4. *)

type t

type proc = {
  process : Process.t;
  src : Mech.region;
  dst : Mech.region;
  result_va : int;
  emit_dma : Asm.t -> unit;
      (** emit one DMA initiation using this process's prepared
          mechanism state; reads [Mech.reg_vsrc]/[reg_vdst]/[reg_size],
          leaves status in [Mech.reg_status] *)
}

val create :
  mech:string -> ?preset:preset -> ?config:Kernel.config ->
  ?trace:Uldma_obs.Trace.t -> unit -> t
(** Look the mechanism up by name ([Api.find_exn] — raises
    [Invalid_argument] on unknown names), derive the kernel
    configuration ([?config] wins over [?preset] wins over
    [Paper_machine]), build the kernel and, when [?trace] is given,
    attach the sink ([Kernel.set_trace]). *)

val of_mech :
  ?preset:preset -> ?config:Kernel.config -> ?trace:Uldma_obs.Trace.t ->
  Mech.t -> t
(** [create] for an already-resolved mechanism value. *)

val process : t -> name:string -> ?src_pages:int -> ?dst_pages:int -> unit -> proc
(** Spawn a process, allocate source/destination regions (default 8
    pages each; power of two required by [dma_stub]) plus a one-page
    result area, and run the mechanism's [prepare] step. *)

val dma_stub : ?iterations:int -> ?transfer_size:int -> t -> proc -> unit
(** Install the standard measurement loop (default 1000 iterations of
    1024 bytes) as the process's program. Successive iterations cycle
    through [min src.pages dst.pages] distinct pages. *)

val dma_once : ?transfer_size:int -> t -> proc -> unit
(** Install a single-initiation program (latency probes). *)

val program : t -> proc -> Isa.instr array -> unit
(** Install a custom program (typically built around [proc.emit_dma]). *)

val run : ?max_steps:int -> t -> Kernel.run_result
val run_exn : ?max_steps:int -> t -> unit
(** [run], raising [Failure] if the step budget ran out. *)

val successes : t -> proc -> int
(** Initiations the process counted as successful (status >= 0). *)

val last_status : t -> proc -> int
(** Status of the process's last initiation. *)

val read : t -> proc -> int -> int
val write : t -> proc -> int -> int -> unit
(** Peek/poke a word in the process's address space (host-level). *)

(** {1 Clusters}

    The same front-door philosophy for N-node co-simulations: name the
    wire and the mechanism, get back a fully meshed {!Cluster}. *)

val cluster :
  ?net:string ->
  ?tick_ps:Uldma_util.Units.ps ->
  ?mech:string ->
  ?preset:preset ->
  ?config:Kernel.config ->
  ?config_of:(int -> Kernel.config) ->
  nodes:int ->
  unit ->
  (Cluster.t, string) result
(** [cluster ~nodes ()] builds an [nodes]-way full mesh over the named
    wire. [?net] accepts exactly the [Backend.of_string] spellings the
    CLI's [--net] uses ([null], [atm155], [atm622], [gigabit], [hic];
    default [atm155]) and [?tick_ps] its quantisation (must be
    positive). [?mech] names a mechanism ([Api.find]) applied to every
    node's configuration; [?config] wins over [?preset] wins over the
    paper machine, and [?config_of] overrides per node (the mechanism,
    when given, is applied on top). All validation failures come back
    as [Error], never as exceptions. *)

val cluster_exn :
  ?net:string ->
  ?tick_ps:Uldma_util.Units.ps ->
  ?mech:string ->
  ?preset:preset ->
  ?config:Kernel.config ->
  ?config_of:(int -> Kernel.config) ->
  nodes:int ->
  unit ->
  Cluster.t
(** [cluster], raising [Invalid_argument] on error. *)

val metrics : t -> Uldma_obs.Counters.t
(** The machine's named-counter registry ([Kernel.counter_snapshot]):
    [os.*], [bus.*] and [dma.*] sections. *)

val kernel : t -> Kernel.t
(** Escape hatch to the full kernel surface. *)

val mech : t -> Mech.t
val trace : t -> Uldma_obs.Trace.t
val now_ps : t -> Uldma_util.Units.ps
