open Uldma_mem
open Uldma_cpu
open Uldma_os

(* ------------------------------------------------------------------ *)
(* Stub-loop builders.                                                 *)
(*                                                                     *)
(* These live here (rather than in the workload layer) so that the     *)
(* Session front-end below can install measurement programs without a  *)
(* dependency cycle; [Uldma_workload.Stub_loop] re-exports them under  *)
(* its historical name.                                                *)
(* ------------------------------------------------------------------ *)

module Stub = struct
  type spec = {
    iterations : int;
    transfer_size : int;
    src_base : int;
    dst_base : int;
    pages : int;
    result_va : int;
  }

  (* register assignments private to the harness loop (the mechanism
     stubs clobber r0-r3 and r20-r28 only) *)
  let r_i = 10
  let r_n = 11
  let r_src = 12
  let r_dst = 13
  let r_mask = 14
  let r_offset = 15
  let r_successes = 16
  let r_result = 17

  let zero = Regfile.zero_reg

  let emit_success_count asm =
    let skip = Asm.fresh_label asm "skip_count" in
    Asm.blt asm Mech.reg_status zero skip;
    Asm.add asm r_successes r_successes (Isa.Imm 1);
    Asm.label asm skip

  let emit_epilogue asm ~result_va =
    Asm.li asm r_result result_va;
    Asm.store asm ~base:r_result ~off:0 r_successes;
    Asm.store asm ~base:r_result ~off:8 Mech.reg_status;
    Asm.halt asm

  let is_power_of_two n = n > 0 && n land (n - 1) = 0

  let build_loop spec ~emit_dma =
    if not (is_power_of_two spec.pages) then
      invalid_arg "Session.Stub.build_loop: pages must be a power of two";
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm "loop" in
    Asm.li asm r_i 0;
    Asm.li asm r_n spec.iterations;
    Asm.li asm r_src spec.src_base;
    Asm.li asm r_dst spec.dst_base;
    Asm.li asm r_mask (spec.pages - 1);
    Asm.li asm r_successes 0;
    Asm.label asm loop;
    (* successive DMAs use different pages: offset = (i mod pages) << 13 *)
    Asm.and_ asm r_offset r_i (Isa.Reg r_mask);
    Asm.shl asm r_offset r_offset Layout.page_shift;
    Asm.add asm Mech.reg_vsrc r_src (Isa.Reg r_offset);
    Asm.add asm Mech.reg_vdst r_dst (Isa.Reg r_offset);
    Asm.li asm Mech.reg_size spec.transfer_size;
    emit_dma asm;
    emit_success_count asm;
    Asm.add asm r_i r_i (Isa.Imm 1);
    Asm.blt asm r_i r_n loop;
    emit_epilogue asm ~result_va:spec.result_va;
    Asm.assemble asm

  let build_repeat ~n ~vsrc ~vdst ~size ~result_va ~emit_dma =
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm "loop" in
    Asm.li asm r_i 0;
    Asm.li asm r_n n;
    Asm.li asm r_successes 0;
    Asm.label asm loop;
    Asm.li asm Mech.reg_vsrc vsrc;
    Asm.li asm Mech.reg_vdst vdst;
    Asm.li asm Mech.reg_size size;
    emit_dma asm;
    emit_success_count asm;
    Asm.add asm r_i r_i (Isa.Imm 1);
    Asm.blt asm r_i r_n loop;
    emit_epilogue asm ~result_va;
    Asm.assemble asm

  let build_single ~vsrc ~vdst ~size ~result_va ~emit_dma =
    build_repeat ~n:1 ~vsrc ~vdst ~size ~result_va ~emit_dma

  let read_successes kernel p ~result_va = Kernel.read_user kernel p result_va
  let read_last_status kernel p ~result_va = Kernel.read_user kernel p (result_va + 8)
end

(* ------------------------------------------------------------------ *)
(* The one-stop session                                                *)
(* ------------------------------------------------------------------ *)

type preset =
  | Paper_machine
  | Local_backend of { bytes_per_s : float }
  | Timeshared of { quantum : int; bytes_per_s : float }

type t = { mech : Mech.t; kernel : Kernel.t }

type proc = {
  process : Process.t;
  src : Mech.region;
  dst : Mech.region;
  result_va : int;
  emit_dma : Asm.t -> unit;
}

let config_of_preset = function
  | Paper_machine -> Kernel.default_config
  | Local_backend { bytes_per_s } ->
    { Kernel.default_config with Kernel.backend = Kernel.Local { bytes_per_s } }
  | Timeshared { quantum; bytes_per_s } ->
    {
      Kernel.default_config with
      Kernel.sched = Sched.Round_robin { quantum };
      backend = Kernel.Local { bytes_per_s };
    }

let create ~mech ?preset ?config ?trace () =
  let m = Api.find_exn mech in
  let base =
    match (config, preset) with
    | Some c, _ -> c
    | None, Some p -> config_of_preset p
    | None, None -> Kernel.default_config
  in
  let kernel = Kernel.create (Api.kernel_config ~base m) in
  (match trace with None -> () | Some sink -> Kernel.set_trace kernel sink);
  { mech = m; kernel }

let of_mech ?preset ?config ?trace m =
  let base =
    match (config, preset) with
    | Some c, _ -> c
    | None, Some p -> config_of_preset p
    | None, None -> Kernel.default_config
  in
  let kernel = Kernel.create (Api.kernel_config ~base m) in
  (match trace with None -> () | Some sink -> Kernel.set_trace kernel sink);
  { mech = m; kernel }

let kernel t = t.kernel
let mech t = t.mech
let trace t = Kernel.trace t.kernel
let now_ps t = Kernel.now_ps t.kernel

let process t ~name ?(src_pages = 8) ?(dst_pages = 8) () =
  let p = Kernel.spawn t.kernel ~name ~program:[||] () in
  let src = Kernel.alloc_pages t.kernel p ~n:src_pages ~perms:Perms.read_write in
  let dst = Kernel.alloc_pages t.kernel p ~n:dst_pages ~perms:Perms.read_write in
  let result_va = Kernel.alloc_pages t.kernel p ~n:1 ~perms:Perms.read_write in
  let src = { Mech.vaddr = src; pages = src_pages } in
  let dst = { Mech.vaddr = dst; pages = dst_pages } in
  let prepared = t.mech.Mech.prepare t.kernel p ~src ~dst in
  { process = p; src; dst; result_va; emit_dma = prepared.Mech.emit_dma }

let dma_stub ?(iterations = 1000) ?(transfer_size = 1024) _t proc =
  let pages = min proc.src.Mech.pages proc.dst.Mech.pages in
  Process.set_program proc.process
    (Stub.build_loop
       {
         Stub.iterations;
         transfer_size;
         src_base = proc.src.Mech.vaddr;
         dst_base = proc.dst.Mech.vaddr;
         pages;
         result_va = proc.result_va;
       }
       ~emit_dma:proc.emit_dma)

let dma_once ?(transfer_size = 1024) _t proc =
  Process.set_program proc.process
    (Stub.build_single ~vsrc:proc.src.Mech.vaddr ~vdst:proc.dst.Mech.vaddr ~size:transfer_size
       ~result_va:proc.result_va ~emit_dma:proc.emit_dma)

let program _t proc instrs = Process.set_program proc.process instrs

let run ?max_steps t = Kernel.run t.kernel ?max_steps ()

let run_exn ?max_steps t =
  match run ?max_steps t with
  | Kernel.All_exited -> ()
  | Kernel.Max_steps -> failwith ("Session.run_exn: " ^ t.mech.Mech.name ^ " did not finish")
  | Kernel.Predicate -> assert false

(* ------------------------------------------------------------------ *)
(* Cluster front door                                                  *)
(* ------------------------------------------------------------------ *)

let cluster ?(net = "atm155") ?tick_ps ?mech ?preset ?config ?config_of ~nodes () =
  match Uldma_net.Backend.of_string ?tick_ps net with
  | Error e -> Error e
  | Ok backend -> (
    if nodes < 2 || nodes > Cluster.max_nodes then
      Error
        (Printf.sprintf "cluster size must be in 2..%d nodes (got %d)" Cluster.max_nodes nodes)
    else
      let base =
        match (config, preset) with
        | Some c, _ -> c
        | None, Some p -> config_of_preset p
        | None, None -> Kernel.default_config
      in
      let apply_mech =
        match mech with
        | None -> Ok (fun c -> c)
        | Some name -> (
          match Api.find name with
          | Some m -> Ok (fun c -> Api.kernel_config ~base:c m)
          | None ->
            Error
              (Printf.sprintf "unknown mechanism %S (expected one of: %s)" name
                 (String.concat ", " Api.names)))
      in
      match apply_mech with
      | Error e -> Error e
      | Ok apply ->
        let config_of =
          match config_of with
          | Some f -> fun i -> apply (f i)
          | None -> fun _ -> apply base
        in
        Ok (Cluster.create ~net:backend ~config_of ~nodes ~config:(apply base) ()))

let cluster_exn ?net ?tick_ps ?mech ?preset ?config ?config_of ~nodes () =
  match cluster ?net ?tick_ps ?mech ?preset ?config ?config_of ~nodes () with
  | Ok c -> c
  | Error e -> invalid_arg ("Session.cluster: " ^ e)

let successes t proc = Kernel.read_user t.kernel proc.process proc.result_va
let last_status t proc = Kernel.read_user t.kernel proc.process (proc.result_va + 8)
let read t proc va = Kernel.read_user t.kernel proc.process va
let write t proc va v = Kernel.write_user t.kernel proc.process va v
let metrics t = Kernel.counter_snapshot t.kernel
