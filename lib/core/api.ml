open Uldma_os

let all =
  [
    Kernel_dma.mech;
    Shrimp1.mech;
    Shrimp2.mech;
    Flash.mech;
    Pal_dma.mech;
    Key_dma.mech;
    Ext_shadow.mech;
    Ext_shadow.mech_stateless;
    Rep_args.mech;
    Rep_args.mech_of_variant Uldma_dma.Seq_matcher.Three;
    Rep_args.mech_of_variant Uldma_dma.Seq_matcher.Four;
    Iommu_dma.mech;
    Capio_dma.mech;
  ]

let table1 = [ Kernel_dma.mech; Ext_shadow.mech; Rep_args.mech; Key_dma.mech ]

let matrix6 =
  [
    Pal_dma.mech;
    Key_dma.mech;
    Ext_shadow.mech;
    Rep_args.mech;
    Iommu_dma.mech;
    Capio_dma.mech;
  ]

let no_kernel_modification =
  [ Pal_dma.mech; Key_dma.mech; Ext_shadow.mech; Rep_args.mech ]

let find name = List.find_opt (fun m -> m.Mech.name = name) all

let find_exn name =
  match find name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Api.find_exn: unknown mechanism %S" name)

let names = List.map (fun m -> m.Mech.name) all

let kernel_config ?(base = Kernel.default_config) m =
  match m.Mech.engine_mechanism with
  | Some mechanism -> { base with Kernel.mechanism }
  | None -> base
