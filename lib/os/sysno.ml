let sys_exit = 0
let sys_yield = 1
let sys_dma = 2
let sys_atomic = 3
let sys_get_time = 4
let sys_print = 5
let sys_sbrk = 6
let sys_sleep = 7
let sys_dma_wait = 8
let sys_disk_read = 9
let sys_disk_write = 10
let sys_grant_dma_cap = 11

let cap_read = 1
let cap_write = 2

let atomic_add = 1
let atomic_fetch_store = 2
let atomic_cas = 3
