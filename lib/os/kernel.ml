open Uldma_util
open Uldma_mem
open Uldma_mmu
open Uldma_bus
open Uldma_cpu
open Uldma_dma

type backend_spec =
  | Null
  | Local of { bytes_per_s : float }
  | Timed of { label : string; duration_of_bytes : int -> int }

type config = {
  timing : Timing.t;
  ram_size : int;
  mechanism : Engine.mechanism;
  n_contexts : int;
  backend : backend_spec;
  write_buffer : Write_buffer.mode;
  sched : Sched.policy;
  seed : int;
  disk : Uldma_io.Disk.geometry option;
}

let default_config =
  {
    timing = Timing.alpha3000_300;
    ram_size = 4 * 1024 * 1024;
    mechanism = Engine.Ext_shadow;
    n_contexts = 4;
    backend = Null;
    write_buffer = Write_buffer.Ordered;
    sched = Sched.Run_to_completion;
    seed = 42;
    disk = None;
  }

type hook = Shrimp_invalidate | Flash_inform

type t = {
  config : config;
  clock : Clock.t;
  ram : Phys_mem.t;
  bus : Bus.t;
  engine : Engine.t;
  write_buffer : Write_buffer.t;
  mutable sched : Sched.t;
  vm : Vm.t;
  pal : Pal.t;
  rng : Rng.t;
  mutable procs : Process.t list; (* ascending pid *)
  mutable next_pid : int;
  mutable running : int option;
  mutable force_switch : bool;
  mutable hooks : hook list;
  mutable console : (int * int) list; (* newest first *)
  mutable context_switches : int;
  mutable contexts_free : int list;
  disk : Uldma_io.Disk.t option;
  mutable trace : Uldma_obs.Trace.t;
  mutable machine : int;
}

let kernel_pid = -1

let build_backend spec ram =
  match spec with
  | Null -> Transfer.null_backend
  | Local { bytes_per_s } -> Transfer.local_backend ram ~setup_ps:(Units.ns 400.0) ~bytes_per_s
  | Timed { duration_of_bytes; _ } ->
    (* Null's no-data-movement semantics (Table 1 methodology), but
       with a real wire time: status loads taken before the deadline
       see bytes remaining, and sys_dma_wait genuinely blocks. The
       closure is pure in RAM so sharing it across kernel copies is
       fine. *)
    { Transfer.null_backend with Transfer.duration_ps = duration_of_bytes }

(* The machine emits trace events on behalf of whichever process is
   running; [kernel_pid] when none is. *)
let trace_pid t = match t.running with Some pid -> pid | None -> kernel_pid

let emit t kind =
  if Uldma_obs.Trace.enabled t.trace then
    Uldma_obs.Trace.emit t.trace ~at:(Clock.now t.clock) ~machine:t.machine ~pid:(trace_pid t) kind

let install_wbuf_observer t =
  Write_buffer.set_observer t.write_buffer (fun ev ->
      if Uldma_obs.Trace.enabled t.trace then
        emit t
          (match ev with
          | Write_buffer.Collapsed { paddr } -> Uldma_obs.Trace.Wbuf_collapse { paddr }
          | Write_buffer.Drained { count } -> Uldma_obs.Trace.Wbuf_flush { drained = count }))

let attach_sink t sink ~machine =
  t.trace <- sink;
  t.machine <- machine;
  Bus.set_sink t.bus ~machine sink;
  Engine.set_sink t.engine ~machine sink;
  install_wbuf_observer t

let set_trace t sink = attach_sink t sink ~machine:(Uldma_obs.Trace.register_machine sink)

let trace t = t.trace
let machine_id t = t.machine

let create config =
  let clock = Clock.create () in
  let ram = Phys_mem.create ~size:config.ram_size in
  let bus = Bus.create ~clock ~timing:config.timing ~ram () in
  let backend = build_backend config.backend ram in
  let engine =
    Engine.create ~clock ~backend ~ram_size:config.ram_size ~mechanism:config.mechanism
      ~n_contexts:config.n_contexts
      ~iotlb_walk_ps:(Timing.iotlb_walk_ps config.timing) ()
  in
  Bus.register_device bus (Engine.device engine);
  let rec range i n = if i >= n then [] else i :: range (i + 1) n in
  let t =
    {
      config;
      clock;
      ram;
      bus;
      engine;
      write_buffer = Write_buffer.create config.write_buffer;
      sched = Sched.create config.sched;
      vm = Vm.create ~ram_size:config.ram_size;
      pal = Pal.create ();
      rng = Rng.create ~seed:config.seed;
      procs = [];
      next_pid = 1;
      running = None;
      force_switch = false;
      hooks = [];
      console = [];
      context_switches = 0;
      contexts_free = range 0 config.n_contexts;
      disk = Option.map Uldma_io.Disk.create config.disk;
      trace = Uldma_obs.Trace.null;
      machine = 0;
    }
  in
  (* pick up the process-global ambient sink so that kernels built deep
     inside experiment harnesses are traced without parameter threading;
     on the (disabled) null sink this is all free *)
  set_trace t (Uldma_obs.Trace.ambient ());
  t

(* Snapshot for explorer forks. RAM is shared copy-on-write
   (Phys_mem.copy is O(#pages)); the bus carries its timing model and
   per-pid access counters but starts a fresh trace window; page tables
   fork by persistent-map sharing inside Process.copy. The result is a
   fully independent kernel whose construction cost is proportional to
   the amount of live bookkeeping, not to RAM size. *)
let copy t =
  let clock = Clock.copy t.clock in
  let ram = Phys_mem.copy t.ram in
  let bus = Bus.copy t.bus ~ram ~clock in
  let backend = build_backend t.config.backend ram in
  let engine = Engine.copy t.engine ~clock ~backend in
  Bus.register_device bus (Engine.device engine);
  let fork =
    {
      t with
      clock;
      ram;
      bus;
      engine;
      write_buffer = Write_buffer.copy t.write_buffer;
      sched = Sched.copy t.sched;
      vm = Vm.copy t.vm;
      pal = Pal.copy t.pal;
      rng = Rng.copy t.rng;
      procs = List.map Process.copy t.procs;
      disk = Option.map Uldma_io.Disk.copy t.disk;
    }
  in
  (* forks share the parent's sink and machine id (the copied bus and
     engine already carry them); the write-buffer observer must capture
     the fork, not the parent *)
  install_wbuf_observer fork;
  (* the engine was copied before the processes, so its IOMMU bindings
     still point at the parent's page tables — re-bind each context to
     the freshly copied process's table *)
  (match t.config.mechanism with
  | Engine.Iommu ->
    List.iter
      (fun (p : Process.t) ->
        match p.Process.dma_context with
        | Some context ->
          Engine.iommu_bind fork.engine ~context
            ~table:(Addr_space.page_table p.Process.addr_space)
        | None -> ())
      fork.procs
  | _ -> ());
  fork

let snapshot = copy

(* ------------------------------------------------------------------ *)
(* Accessors *)

let config t = t.config
let clock t = t.clock
let now_ps t = Clock.now t.clock
let bus t = t.bus
let engine t = t.engine
let timing t = Bus.timing t.bus
let ram t = t.ram
let pal t = t.pal
let processes t = t.procs
let find_process t pid = List.find_opt (fun p -> p.Process.pid = pid) t.procs
let runnable_pids t =
  List.filter_map (fun p -> if Process.is_runnable p then Some p.Process.pid else None) t.procs
let running t = t.running
let console t = List.rev t.console
let context_switches t = t.context_switches

let set_sched_policy t policy = t.sched <- Sched.create policy

let charge t ps = Clock.advance t.clock ps

(* privileged uncached access, charged bus time, issued as the kernel *)
let kstore t paddr value = Bus.store t.bus ~pid:kernel_pid ~cacheable:false paddr value

(* ------------------------------------------------------------------ *)
(* Setup services *)

let spawn t ~name ~program ?(superuser = false) () =
  let p = Process.make ~pid:t.next_pid ~name ~program ~superuser in
  t.next_pid <- t.next_pid + 1;
  t.procs <- t.procs @ [ p ];
  p

let alloc_pages t (p : Process.t) ~n ~perms =
  if n <= 0 then invalid_arg "Kernel.alloc_pages: n <= 0";
  let base = p.Process.next_va in
  if base + (n * Layout.page_size) > Vm.shadow_va_offset then
    failwith "Kernel.alloc_pages: user data region exhausted";
  for i = 0 to n - 1 do
    match Vm.alloc_frame t.vm with
    | None -> failwith "Kernel.alloc_pages: out of physical frames"
    | Some frame ->
      Phys_mem.fill t.ram ~addr:(frame * Layout.page_size) ~len:Layout.page_size ~byte:0;
      Addr_space.map_page p.Process.addr_space
        ~vpage:(Layout.page_of (base + (i * Layout.page_size)))
        (Pte.make ~frame ~perms ())
  done;
  p.Process.next_va <- base + (n * Layout.page_size);
  base

let share_pages t ~from_process ~vaddr ~n ~into ~perms =
  ignore t;
  let base = into.Process.next_va in
  for i = 0 to n - 1 do
    let src_page = Layout.page_of (vaddr + (i * Layout.page_size)) in
    match Addr_space.find_page from_process.Process.addr_space ~vpage:src_page with
    | None -> failwith "Kernel.share_pages: source page unmapped"
    | Some pte ->
      Addr_space.map_page into.Process.addr_space
        ~vpage:(Layout.page_of (base + (i * Layout.page_size)))
        (Pte.make ~frame:pte.Pte.frame ~perms ())
  done;
  into.Process.next_va <- base + (n * Layout.page_size);
  base

let map_remote_pages t (p : Process.t) ~remote_paddr ~n ~perms =
  ignore t;
  if not (Layout.is_page_aligned remote_paddr) || n <= 0 then
    invalid_arg "Kernel.map_remote_pages: unaligned or empty";
  if not (Layout.in_remote (Layout.remote_base + remote_paddr)) then
    invalid_arg "Kernel.map_remote_pages: peer address outside the remote window";
  let base = p.Process.next_va in
  for i = 0 to n - 1 do
    let frame = (Layout.remote_base + remote_paddr + (i * Layout.page_size)) lsr Layout.page_shift in
    Addr_space.map_page p.Process.addr_space
      ~vpage:(Layout.page_of (base + (i * Layout.page_size)))
      (Pte.make ~cacheable:false ~frame ~perms ())
  done;
  p.Process.next_va <- base + (n * Layout.page_size);
  base

let shadow_context t (p : Process.t) =
  match (t.config.mechanism, p.Process.dma_context) with
  | (Engine.Ext_shadow | Engine.Ext_shadow_stateless), Some context -> context
  | (Engine.Ext_shadow | Engine.Ext_shadow_stateless), None ->
    failwith "Kernel.map_shadow_alias: extended shadow addressing requires an allocated DMA context"
  | _, _ -> 0

let map_shadow_alias t (p : Process.t) ~vaddr ~n ~window =
  let context = shadow_context t p in
  let va_offset =
    match window with `Dma -> Vm.shadow_va_offset | `Atomic -> Vm.atomic_va_offset
  in
  for i = 0 to n - 1 do
    let va = vaddr + (i * Layout.page_size) in
    match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of va) with
    | None -> failwith "Kernel.map_shadow_alias: data page unmapped"
    | Some pte ->
      let paddr = pte.Pte.frame lsl Layout.page_shift in
      let shadow_paddr =
        match window with
        | `Dma -> Shadow.encode_ctx ~context paddr
        | `Atomic -> Shadow.encode_atomic ~context paddr
      in
      Addr_space.map_page p.Process.addr_space
        ~vpage:(Layout.page_of (va + va_offset))
        (Pte.make ~cacheable:false ~frame:(shadow_paddr lsr Layout.page_shift)
           ~perms:pte.Pte.perms ())
  done;
  vaddr + va_offset

let alloc_dma_context t (p : Process.t) =
  match t.contexts_free with
  | [] -> None
  | context :: rest ->
    t.contexts_free <- rest;
    let key = Rng.dma_key t.rng in
    kstore t (Layout.kernel_control_page + Regmap.key_offset ~context) key;
    Engine.set_context_owner t.engine ~context ~pid:(Some p.Process.pid);
    let frame = Layout.context_page context lsr Layout.page_shift in
    Addr_space.map_page p.Process.addr_space
      ~vpage:(Layout.page_of Vm.context_page_va)
      (Pte.make ~cacheable:false ~frame ~perms:Perms.read_write ());
    (match t.config.mechanism with
    | Engine.Iommu ->
      Engine.iommu_bind t.engine ~context ~table:(Addr_space.page_table p.Process.addr_space)
    | _ -> ());
    p.Process.dma_context <- Some context;
    p.Process.dma_key <- Some key;
    Some (context, key, Vm.context_page_va)

let set_atomic_mailbox t (p : Process.t) ~vaddr =
  match p.Process.dma_context with
  | None -> invalid_arg "Kernel.set_atomic_mailbox: process has no DMA context"
  | Some context ->
    if not (Layout.is_word_aligned vaddr) then
      invalid_arg "Kernel.set_atomic_mailbox: unaligned mailbox";
    if
      not
        (Addr_space.check_range p.Process.addr_space ~vaddr ~len:Layout.word_size
           ~perms:Perms.read_write)
    then invalid_arg "Kernel.set_atomic_mailbox: mailbox not writable by the process";
    (match Addr_space.peek_paddr p.Process.addr_space vaddr with
    | Some paddr -> kstore t (Layout.kernel_control_page + Regmap.mailbox_offset ~context) paddr
    | None -> invalid_arg "Kernel.set_atomic_mailbox: mailbox unmapped")

let free_dma_context t (p : Process.t) =
  match p.Process.dma_context with
  | None -> ()
  | Some context ->
    t.contexts_free <- context :: t.contexts_free;
    (* rotate the key immediately: the engine wipes the context's
       argument state and any copy of the old key becomes worthless
       (under CAPIO the rotation also revokes the context's
       capabilities engine-side) *)
    kstore t (Layout.kernel_control_page + Regmap.key_offset ~context) (Rng.dma_key t.rng);
    (match t.config.mechanism with
    | Engine.Iommu ->
      Engine.iommu_unbind t.engine ~context;
      kstore t (Layout.kernel_control_page + Regmap.k_iotlb_invalidate) (-1)
    | _ -> ());
    Engine.set_context_owner t.engine ~context ~pid:None;
    Addr_space.unmap_page p.Process.addr_space ~vpage:(Layout.page_of Vm.context_page_va);
    p.Process.dma_context <- None;
    p.Process.dma_key <- None

(* CAPIO: mint an unforgeable capability over [len] bytes at [vaddr]
   and install it in the engine through the control page (value, base,
   length, then a commit word carrying context | rights | owning pid).
   The engine fires from one physical base, so the region must be
   physically contiguous page by page — discontiguous ranges are
   refused rather than silently covering the wrong frames. *)
let grant_dma_cap t (p : Process.t) ~vaddr ~len ~rights =
  match p.Process.dma_context with
  | None -> None
  | Some context ->
    if len <= 0 then None
    else if not (Addr_space.check_range p.Process.addr_space ~vaddr ~len ~perms:rights) then None
    else (
      match Addr_space.peek_paddr p.Process.addr_space vaddr with
      | None -> None
      | Some base ->
        let contiguous = ref true in
        let first_page = Layout.page_of vaddr and last_page = Layout.page_of (vaddr + len - 1) in
        for vpage = first_page + 1 to last_page do
          let va = vpage lsl Layout.page_shift in
          match Addr_space.peek_paddr p.Process.addr_space va with
          | Some paddr when paddr = base + (va - vaddr) -> ()
          | Some _ | None -> contiguous := false
        done;
        if not !contiguous then None
        else begin
          let value = Rng.dma_key t.rng in
          kstore t (Layout.kernel_control_page + Regmap.k_cap_value) value;
          kstore t (Layout.kernel_control_page + Regmap.k_cap_base) base;
          kstore t (Layout.kernel_control_page + Regmap.k_cap_len) len;
          let meta =
            context
            lor (if rights.Perms.read then 0x100 else 0)
            lor (if rights.Perms.write then 0x200 else 0)
            lor (p.Process.pid lsl 16)
          in
          kstore t (Layout.kernel_control_page + Regmap.k_cap_commit) meta;
          Some value
        end)

(* Tear down [n] pages of a process mapping with the DMA-protection
   shootdowns each mechanism needs: IOMMU translations die in the IOTLB
   (a charged control-page store per page), CAPIO capabilities over the
   freed frames are revoked, and only then does the PTE go away. *)
let unmap_pages t (p : Process.t) ~vaddr ~n =
  for i = 0 to n - 1 do
    let va = vaddr + (i * Layout.page_size) in
    let vpage = Layout.page_of va in
    (match t.config.mechanism with
    | Engine.Iommu -> kstore t (Layout.kernel_control_page + Regmap.k_iotlb_invalidate) vpage
    | Engine.Capio -> (
      match Addr_space.find_page p.Process.addr_space ~vpage with
      | Some pte ->
        Engine.revoke_caps_range t.engine ~base:(pte.Pte.frame lsl Layout.page_shift)
          ~len:Layout.page_size
      | None -> ())
    | _ -> ());
    Addr_space.unmap_page p.Process.addr_space ~vpage
  done

let install_pal t ~index body = Pal.install t.pal ~index body

let map_out_page t (p : Process.t) ~vaddr ~dst_paddr =
  match Addr_space.find_page p.Process.addr_space ~vpage:(Layout.page_of vaddr) with
  | None -> failwith "Kernel.map_out_page: source page unmapped"
  | Some pte ->
    kstore t (Layout.kernel_control_page + Regmap.k_map_out_src) (pte.Pte.frame lsl Layout.page_shift);
    kstore t (Layout.kernel_control_page + Regmap.k_map_out_dst) dst_paddr

let install_shrimp_hook t = if not (List.mem Shrimp_invalidate t.hooks) then t.hooks <- Shrimp_invalidate :: t.hooks
let install_flash_hook t = if not (List.mem Flash_inform t.hooks) then t.hooks <- Flash_inform :: t.hooks
let kernel_modified t = t.hooks <> []

(* ------------------------------------------------------------------ *)
(* Execution *)

let wbuf_emit t pid ~paddr ~value = Bus.store t.bus ~pid ~cacheable:false paddr value

let flush_write_buffer t pid = Write_buffer.flush t.write_buffer ~emit:(wbuf_emit t pid)

let context_switch t (next : Process.t) =
  let prev_pid = match t.running with Some pid -> pid | None -> kernel_pid in
  charge t (Timing.context_switch_ps (timing t));
  flush_write_buffer t prev_pid;
  Addr_space.flush_tlb next.Process.addr_space;
  List.iter
    (fun hook ->
      match hook with
      | Shrimp_invalidate -> kstore t (Layout.kernel_control_page + Regmap.k_invalidate) 0
      | Flash_inform ->
        kstore t (Layout.kernel_control_page + Regmap.k_current_pid) next.Process.pid)
    t.hooks;
  (* the IOTLB is untagged, so a switch must flush it — part of the
     IOMMU mechanism's (kernel-modifying) context-switch cost *)
  (match t.config.mechanism with
  | Engine.Iommu -> kstore t (Layout.kernel_control_page + Regmap.k_iotlb_invalidate) (-1)
  | _ -> ());
  Sched.note_switch t.sched;
  t.context_switches <- t.context_switches + 1;
  t.running <- Some next.Process.pid;
  emit t (Uldma_obs.Trace.Ctx_switch { from_pid = prev_pid; to_pid = next.Process.pid })

let host_for t (p : Process.t) =
  let tm = timing t in
  {
    Cpu.translate = (fun access vaddr -> Addr_space.translate p.Process.addr_space access vaddr);
    load =
      (fun ~cacheable paddr ->
        if cacheable then Bus.load t.bus ~pid:p.Process.pid ~cacheable:true paddr
        else
          match Write_buffer.load t.write_buffer ~paddr with
          | `Forwarded v ->
            charge t (Timing.cached_access_ps tm);
            v
          | `To_bus -> Bus.load t.bus ~pid:p.Process.pid ~cacheable:false paddr);
    store =
      (fun ~cacheable paddr value ->
        if cacheable then Bus.store t.bus ~pid:p.Process.pid ~cacheable:true paddr value
        else
          Write_buffer.store t.write_buffer ~emit:(wbuf_emit t p.Process.pid) ~paddr ~value);
    barrier = (fun () -> Write_buffer.barrier t.write_buffer ~emit:(wbuf_emit t p.Process.pid));
    charge = charge t;
    instruction_ps = Timing.instruction_ps tm;
    tlb_miss_ps = Timing.tlb_miss_ps tm;
    memory_barrier_ps = Timing.memory_barrier_ps tm;
  }

let regs (p : Process.t) = p.Process.ctx.Cpu.regs
let reg p i = Regfile.get (regs p) i
let set_reg p i v = Regfile.set (regs p) i v

let control_reg offset = Layout.kernel_control_page + offset

let sys_dma_impl t (p : Process.t) =
  let tm = timing t in
  let vsrc = reg p 1 and vdst = reg p 2 and size = reg p 3 in
  charge t (2 * Timing.translate_ps tm);
  charge t (Timing.check_size_ps tm);
  let space = p.Process.addr_space in
  let ok =
    size > 0
    && Addr_space.check_range space ~vaddr:vsrc ~len:size ~perms:Perms.read_only
    && Addr_space.check_range space ~vaddr:vdst ~len:size ~perms:Perms.write_only
  in
  if not ok then set_reg p 0 Status.failure
  else
    match (Addr_space.peek_paddr space vsrc, Addr_space.peek_paddr space vdst) with
    | Some psrc, Some pdst ->
      (* Fig. 1: three stores then a status load, all uninterrupted in
         kernel mode. *)
      Bus.store t.bus ~pid:p.Process.pid ~cacheable:false (control_reg Regmap.k_source) psrc;
      Bus.store t.bus ~pid:p.Process.pid ~cacheable:false (control_reg Regmap.k_dest) pdst;
      Bus.store t.bus ~pid:p.Process.pid ~cacheable:false (control_reg Regmap.k_size) size;
      set_reg p 0 (Bus.load t.bus ~pid:p.Process.pid ~cacheable:false (control_reg Regmap.k_status))
    | None, _ | _, None -> set_reg p 0 Status.failure

let sys_atomic_impl t (p : Process.t) =
  let tm = timing t in
  let vtarget = reg p 1 and op = reg p 2 and arg1 = reg p 3 and arg2 = reg p 4 in
  charge t (Timing.translate_ps tm);
  charge t (Timing.check_size_ps tm);
  let space = p.Process.addr_space in
  let ok =
    Addr_space.check_range space ~vaddr:vtarget ~len:Layout.word_size ~perms:Perms.read_write
  in
  match (ok, Addr_space.peek_paddr space vtarget) with
  | true, Some ptarget ->
    let pid = p.Process.pid in
    Bus.store t.bus ~pid ~cacheable:false (control_reg Regmap.k_atomic_target) ptarget;
    if op = Sysno.atomic_add then
      Bus.store t.bus ~pid ~cacheable:false (control_reg Regmap.k_atomic_op)
        (Atomic_op.encode_add arg1)
    else if op = Sysno.atomic_fetch_store then
      Bus.store t.bus ~pid ~cacheable:false (control_reg Regmap.k_atomic_op)
        (Atomic_op.encode_fetch_store arg1)
    else if op = Sysno.atomic_cas then begin
      Bus.store t.bus ~pid ~cacheable:false (control_reg Regmap.k_atomic_op)
        (Atomic_op.encode_cas_expected arg1);
      Bus.store t.bus ~pid ~cacheable:false (control_reg Regmap.k_atomic_op)
        (Atomic_op.encode_cas_new arg2)
    end;
    if op = Sysno.atomic_add || op = Sysno.atomic_fetch_store || op = Sysno.atomic_cas then
      set_reg p 0 (Bus.load t.bus ~pid ~cacheable:false (control_reg Regmap.k_atomic_op))
    else set_reg p 0 Status.failure
  | false, _ | _, None -> set_reg p 0 Status.failure

let block_until t (p : Process.t) at = p.Process.state <- Process.Blocked_until (max at (now_ps t))

(* Centralised teardown for every exit path (sys_exit, halt, fault, bad
   syscall, missing PAL function): under CAPIO each capability minted
   for the process dies with it, so a dead victim's capabilities cannot
   be replayed by an accomplice. *)
let kill_process t (p : Process.t) reason =
  (match t.config.mechanism with
  | Engine.Capio -> Engine.revoke_caps_pid t.engine ~pid:p.Process.pid
  | _ -> ());
  Process.kill p reason

let sys_dma_wait_impl t (p : Process.t) =
  let completion =
    match p.Process.dma_context with
    | Some context -> Engine.context_transfer_end t.engine context
    | None -> Engine.last_transfer_end t.engine
  in
  match completion with
  | Some at ->
    set_reg p 0 0;
    if at > now_ps t then block_until t p at
  | None -> set_reg p 0 (-1)

(* Disk DMA, the classic way: the kernel checks and translates, the
   controller moves a block while the process sleeps and others run. *)
let sys_disk_impl t (p : Process.t) ~write =
  let tm = timing t in
  charge t (Timing.translate_ps tm);
  charge t (Timing.check_size_ps tm);
  match t.disk with
  | None -> set_reg p 0 (-1)
  | Some disk ->
    let block = reg p 1 and vaddr = reg p 2 in
    let block_size = (Uldma_io.Disk.geometry disk).Uldma_io.Disk.block_size in
    let perms = if write then Perms.read_only else Perms.write_only in
    let ok = Addr_space.check_range p.Process.addr_space ~vaddr ~len:block_size ~perms in
    (match (ok, Addr_space.peek_paddr p.Process.addr_space vaddr) with
    | true, Some paddr ->
      let outcome =
        if write then begin
          let data = Bytes.create block_size in
          for i = 0 to block_size - 1 do
            Bytes.set data i (Char.chr (Phys_mem.load_byte t.ram (paddr + i)))
          done;
          Uldma_io.Disk.write_block disk ~block data
        end
        else
          match Uldma_io.Disk.read_block disk ~block with
          | Ok (data, time) ->
            for i = 0 to block_size - 1 do
              Phys_mem.store_byte t.ram (paddr + i) (Char.code (Bytes.get data i))
            done;
            Ok time
          | Error message -> Error message
      in
      (match outcome with
      | Ok service ->
        set_reg p 0 0;
        block_until t p (now_ps t + service)
      | Error _ -> set_reg p 0 (-1))
    | false, _ | _, None -> set_reg p 0 (-1))

let rec handle_syscall t (p : Process.t) =
  charge t (Timing.syscall_ps (timing t));
  flush_write_buffer t p.Process.pid;
  p.Process.syscalls <- p.Process.syscalls + 1;
  let number = reg p 0 in
  emit t (Uldma_obs.Trace.Syscall_enter { sysno = number });
  dispatch_syscall t p number;
  emit t (Uldma_obs.Trace.Syscall_exit { sysno = number })

and sys_grant_dma_cap_impl t (p : Process.t) =
  let tm = timing t in
  let vaddr = reg p 1 and len = reg p 2 and bits = reg p 3 in
  charge t (Timing.translate_ps tm);
  charge t (Timing.check_size_ps tm);
  let rights =
    { Perms.read = bits land Sysno.cap_read <> 0; write = bits land Sysno.cap_write <> 0 }
  in
  if (not rights.Perms.read) && not rights.Perms.write then set_reg p 0 Status.failure
  else
    match grant_dma_cap t p ~vaddr ~len ~rights with
    | Some value -> set_reg p 0 value
    | None -> set_reg p 0 Status.failure

and dispatch_syscall t (p : Process.t) number =
  if number = Sysno.sys_exit then kill_process t p Process.Normal
  else if number = Sysno.sys_yield then t.force_switch <- true
  else if number = Sysno.sys_dma then sys_dma_impl t p
  else if number = Sysno.sys_atomic then sys_atomic_impl t p
  else if number = Sysno.sys_get_time then
    set_reg p 0 (now_ps t / Units.ps_per_ns)
  else if number = Sysno.sys_print then t.console <- (p.Process.pid, reg p 1) :: t.console
  else if number = Sysno.sys_disk_read then sys_disk_impl t p ~write:false
  else if number = Sysno.sys_disk_write then sys_disk_impl t p ~write:true
  else if number = Sysno.sys_sleep then
    block_until t p (now_ps t + (reg p 1 * Units.ps_per_ns))
  else if number = Sysno.sys_dma_wait then sys_dma_wait_impl t p
  else if number = Sysno.sys_grant_dma_cap then sys_grant_dma_cap_impl t p
  else if number = Sysno.sys_sbrk then begin
    let n = reg p 1 in
    match alloc_pages t p ~n ~perms:Perms.read_write with
    | va -> set_reg p 0 va
    | exception (Failure _ | Invalid_argument _) -> set_reg p 0 (-1)
  end
  else kill_process t p (Process.Killed (Printf.sprintf "bad syscall %d" number))

let handle_pal t (p : Process.t) index =
  charge t (Timing.pal_call_ps (timing t));
  (* PAL mode: the whole body executes with interrupts off. *)
  match
    Pal.invoke t.pal ~index ~sink:t.trace ~machine:t.machine ~pid:p.Process.pid
      ~now:(fun () -> now_ps t)
      ~run:(fun body -> Cpu.run_subprogram (regs p) body (host_for t p))
  with
  | None -> kill_process t p (Process.Killed (Printf.sprintf "PAL function %d not installed" index))
  | Some Cpu.Halted -> ()
  | Some (Cpu.Fault f) ->
    flush_write_buffer t p.Process.pid;
    kill_process t p (Process.Killed_fault f)
  | Some (Cpu.Continue | Cpu.Syscall_trap | Cpu.Pal_trap _) -> assert false

let mnemonic : Isa.instr -> string = function
  | Isa.Li _ -> "li"
  | Isa.Mov _ -> "mov"
  | Isa.Add _ -> "add"
  | Isa.Sub _ -> "sub"
  | Isa.And_ _ -> "and"
  | Isa.Or_ _ -> "or"
  | Isa.Xor _ -> "xor"
  | Isa.Shl _ -> "shl"
  | Isa.Shr _ -> "shr"
  | Isa.Load _ -> "load"
  | Isa.Store _ -> "store"
  | Isa.Mb -> "mb"
  | Isa.Beq _ -> "beq"
  | Isa.Bne _ -> "bne"
  | Isa.Blt _ -> "blt"
  | Isa.Jmp _ -> "jmp"
  | Isa.Syscall -> "syscall"
  | Isa.Call_pal _ -> "call_pal"
  | Isa.Nop -> "nop"
  | Isa.Halt -> "halt"

let exec_one t (p : Process.t) =
  let t0 = now_ps t in
  let fetched =
    (* sample the opcode before the step moves pc; only when tracing *)
    if Uldma_obs.Trace.enabled t.trace then begin
      let ctx = p.Process.ctx in
      if ctx.Cpu.pc >= 0 && ctx.Cpu.pc < Array.length ctx.Cpu.program then
        Some ctx.Cpu.program.(ctx.Cpu.pc)
      else None
    end
    else None
  in
  let outcome = Cpu.step p.Process.ctx (host_for t p) in
  p.Process.instructions_retired <- p.Process.instructions_retired + 1;
  (match fetched with
  | Some instr -> emit t (Uldma_obs.Trace.Instr_retired { opcode = mnemonic instr })
  | None -> ());
  (match outcome with
  | Cpu.Continue -> ()
  | Cpu.Halted ->
    flush_write_buffer t p.Process.pid;
    kill_process t p Process.Normal
  | Cpu.Fault f ->
    flush_write_buffer t p.Process.pid;
    kill_process t p (Process.Killed_fault f)
  | Cpu.Syscall_trap -> handle_syscall t p
  | Cpu.Pal_trap index -> handle_pal t p index);
  p.Process.cpu_time_ps <- p.Process.cpu_time_ps + (now_ps t - t0)

let wake_sleepers t =
  List.iter
    (fun (p : Process.t) ->
      match p.Process.state with
      | Process.Blocked_until at when at <= now_ps t -> p.Process.state <- Process.Ready
      | Process.Blocked_until _ | Process.Ready | Process.Exited _ -> ())
    t.procs

(* Next instant at which pure waiting changes an observable: the
   earliest in-flight transfer completion. Always None under the
   zero-duration Null backend. *)
let next_transfer_deadline t = Engine.next_transfer_deadline t.engine

(* Idle the machine forward to the next transfer completion. Explored
   as a scheduling leg of its own (Explorer.wait_leg): at NI-access
   granularity "let the wire drain" is a scheduling decision just like
   "run pid p next". Wakes sys_dma_wait sleepers whose deadline has
   now passed. *)
let advance_to_next_completion t =
  match next_transfer_deadline t with
  | Some at ->
    charge t (at - now_ps t);
    wake_sleepers t;
    true
  | None -> false

let soonest_wake t =
  List.fold_left
    (fun acc (p : Process.t) ->
      match p.Process.state with
      | Process.Blocked_until at -> (
        match acc with Some best -> Some (min best at) | None -> Some at)
      | Process.Ready | Process.Exited _ -> acc)
    None t.procs

let rec step t =
  wake_sleepers t;
  let runnable = runnable_pids t in
  let runnable =
    if t.force_switch then begin
      t.force_switch <- false;
      match (t.running, runnable) with
      | Some cur, _ :: _ :: _ -> List.filter (fun pid -> pid <> cur) runnable
      | _, _ -> runnable
    end
    else runnable
  in
  match Sched.pick t.sched ~current:t.running ~runnable with
  | None -> (
    (* nothing runnable: if someone is sleeping, idle the machine
       forward to the next wake time *)
    match soonest_wake t with
    | Some at ->
      charge t (at - now_ps t);
      step t
    | None -> `Idle)
  | Some pid -> (
    match find_process t pid with
    | None -> `Idle
    | Some p ->
      if t.running <> Some pid then context_switch t p;
      exec_one t p;
      `Stepped pid)

let step_pid t pid =
  match find_process t pid with
  | Some p when Process.is_runnable p ->
    if t.running <> Some pid then context_switch t p;
    exec_one t p;
    `Ok
  | Some _ | None -> `Not_runnable

type run_result = All_exited | Max_steps | Predicate

let run_until t ?(max_steps = 20_000_000) pred =
  let rec loop n =
    if pred t then Predicate
    else if n >= max_steps then Max_steps
    else match step t with `Idle -> All_exited | `Stepped _ -> loop (n + 1)
  in
  loop 0

let run t ?max_steps () =
  match run_until t ?max_steps (fun _ -> false) with
  | Predicate -> assert false
  | (All_exited | Max_steps) as r -> r

(* ------------------------------------------------------------------ *)
(* Harness access *)

let user_paddr _t (p : Process.t) vaddr =
  match Addr_space.peek_paddr p.Process.addr_space vaddr with
  | Some paddr -> paddr
  | None -> failwith (Printf.sprintf "Kernel.user_paddr: %#x unmapped" vaddr)

let read_user t p vaddr = Phys_mem.load_word t.ram (user_paddr t p vaddr)

let write_user t p vaddr value = Phys_mem.store_word t.ram (user_paddr t p vaddr) value

(* ------------------------------------------------------------------ *)
(* Engine-visible state fingerprint (explorer dedup support) *)

(* Canonical encoding of everything the simulated programs and the
   Fig. 8 oracle can observe: the running pid and pending force-switch,
   installed hooks, per-process control state (state tag, pc, register
   file, DMA context/key, uncached-access progress), the write-buffer
   drain frontier, console output, the context free list, the DMA
   engine's observable registers and the RAM pages dirtied since the
   root snapshot (O(dirtied) via Phys_mem.iter_touched). Deliberately
   *excluded*: clocks, charged bus time, context-switch and
   instruction counters, trace state — pure cost bookkeeping that
   differs between commuting schedule prefixes but cannot influence
   any future observable step. Time-dependent observables are folded
   in *relative to now* rather than excluded: in-flight transfers by
   their exact remaining-wire-time and duration (Engine.encode), and a
   blocked process by its remaining sleep. Thus two kernels that
   differ only by an absolute clock offset but agree on every pending
   deadline still merge — the offset cannot influence any future
   observable — while states whose deadlines genuinely differ never
   do. Under the zero-duration Null backend all these relative fields
   are constants and the encoding partitions states exactly as it did
   before timed backends existed. Two kernels with equal encodings
   evolve identically under identical future schedules.

   [relative_to] (the explorer's root snapshot) restricts the RAM part
   to pages that physically diverged from the root: pages still shared
   with the root are byte-identical in every fork, so skipping them is
   exact and keeps encodings proportional to the work done since the
   root rather than to setup-time writes. *)
let encode_state enc ?relative_to t =
  let module E = Uldma_util.Enc in
  let i v = E.int enc v in
  let ch c = E.char enc c in
  ch 'K';
  i (match t.running with None -> min_int | Some pid -> pid);
  if t.force_switch then ch 'F';
  List.iter (fun h -> ch (match h with Shrimp_invalidate -> 'S' | Flash_inform -> 'I')) t.hooks;
  List.iter
    (fun (p : Process.t) ->
      ch 'P';
      i p.Process.pid;
      i
        (match p.Process.state with
        | Process.Ready -> 0
        | Process.Blocked_until _ -> 1
        | Process.Exited _ -> 2);
      (* remaining sleep, not the absolute wake instant *)
      (match p.Process.state with
      | Process.Blocked_until at -> i (max 0 (at - now_ps t))
      | Process.Ready | Process.Exited _ -> ());
      i p.Process.ctx.Cpu.pc;
      i (match p.Process.dma_context with None -> min_int | Some c -> c);
      i (match p.Process.dma_key with None -> min_int | Some k -> k);
      i (Bus.pid_access_count t.bus p.Process.pid);
      List.iter i (Regfile.to_list p.Process.ctx.Cpu.regs))
    t.procs;
  ch 'W';
  List.iter
    (fun (paddr, value) ->
      i paddr;
      i value)
    (Write_buffer.pending t.write_buffer);
  ch 'o';
  List.iter
    (fun (pid, value) ->
      i pid;
      i value)
    t.console;
  ch 'f';
  List.iter i t.contexts_free;
  Engine.encode enc t.engine;
  ch 'R';
  (* Text mode embeds the raw page bytes (the key *is* the state);
     fingerprint mode feeds the cached per-page content digest instead
     — equal bytes give equal digests, so both modes observe the same
     page partition. *)
  let add_page =
    match enc with
    | E.Buf _ ->
      fun idx page ->
        i idx;
        E.bytes enc page
    | E.Fp _ ->
      fun idx _page ->
        let lo, hi = Phys_mem.page_digest t.ram idx in
        i idx;
        i lo;
        i hi
  in
  match relative_to with
  | Some root -> Phys_mem.iter_diverged t.ram ~baseline:root.ram add_page
  | None -> Phys_mem.iter_touched t.ram add_page

let state_encoding ?relative_to t =
  let buf = Buffer.create 1024 in
  encode_state (Uldma_util.Enc.Buf buf) ?relative_to t;
  Buffer.contents buf

(* Memo key for the explorer. Fingerprint mode streams the same token
   walk into a two-lane 126-bit hash and returns its 16-byte packed key
   — nothing is materialised, page content is folded in via cached
   digests — and reports how many bytes were actually hashed (streamed
   tokens plus any page-digest cache fills). Paranoid mode returns the
   full textual encoding, under which key equality is exactly state
   equality. *)
let state_key ?relative_to ~paranoid t =
  if paranoid then begin
    let s = state_encoding ?relative_to t in
    (s, String.length s)
  end
  else begin
    let fills0 = Phys_mem.digest_fills t.ram in
    let fp = Uldma_util.Fp128.create () in
    encode_state (Uldma_util.Enc.Fp fp) ?relative_to t;
    let filled = Phys_mem.digest_fills t.ram - fills0 in
    (Uldma_util.Fp128.key fp, Uldma_util.Fp128.fed fp + (filled * Layout.page_size))
  end

(* FNV-1a over the canonical encoding. The 64-bit hash is for shard
   selection and reporting; dedup itself keys on the full encoding, so
   a hash collision can never merge distinct states. *)
let fingerprint_of_encoding s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let fingerprint ?relative_to t = fingerprint_of_encoding (state_encoding ?relative_to t)

let attach_trace t sink ~machine = attach_sink t sink ~machine

(* ------------------------------------------------------------------ *)
(* Uniform named-counter snapshot *)

let counter_snapshot t =
  let module C = Uldma_obs.Counters in
  let c = C.create () in
  C.add c "os.elapsed_ps" (now_ps t);
  C.add c "os.context_switches" t.context_switches;
  List.iter
    (fun (p : Process.t) ->
      C.add c "os.instructions" p.Process.instructions_retired;
      C.add c "os.syscalls" p.Process.syscalls)
    t.procs;
  C.add c "bus.busy_ps" (Bus.busy_ps t.bus);
  C.add c "bus.uncached.kernel" (Bus.pid_access_count t.bus kernel_pid);
  List.iter
    (fun (p : Process.t) ->
      C.add c
        (Printf.sprintf "bus.uncached.pid%d" p.Process.pid)
        (Bus.pid_access_count t.bus p.Process.pid))
    t.procs;
  let e = Engine.counters t.engine in
  C.add c "dma.transfers_started" e.Engine.started;
  C.add c "dma.rejected" e.Engine.rejected;
  C.add c "dma.key_rejected" e.Engine.key_rejected;
  C.add c "dma.atomics" e.Engine.atomics;
  C.add c "dma.remote_sends" e.Engine.remote_sends;
  c
