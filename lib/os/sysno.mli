(** System call numbers and conventions.

    Convention: the syscall number is in r0; arguments in r1..r5; the
    result is returned in r0. *)

val sys_exit : int
val sys_yield : int

val sys_dma : int
(** Fig. 1: r1 = vsource, r2 = vdestination, r3 = size; returns the
    engine status (-1 on any protection/translation failure). *)

val sys_atomic : int
(** §3.5 kernel baseline: r1 = vtarget, r2 = op (see below), r3 =
    operand (CAS: expected), r4 = CAS new value; returns the old
    value, or -1 on failure. *)

val atomic_add : int
val atomic_fetch_store : int
val atomic_cas : int

val sys_get_time : int
(** Returns the simulated time in nanoseconds. *)

val sys_print : int
(** Appends (pid, r1) to the kernel console, for test observation. *)

val sys_sbrk : int
(** r1 = number of pages; maps fresh zeroed read-write pages and
    returns their base virtual address in r0 (-1 when out of memory). *)

val sys_sleep : int
(** r1 = nanoseconds; blocks the process for at least that long. *)

val sys_dma_wait : int
(** Block until the last DMA transfer of the process's register context
    (or, without a context, the engine's last transfer) completes.
    r0 = 0, or -1 when there is nothing to wait for. *)

val sys_disk_read : int
(** r1 = block number, r2 = destination virtual address (one block).
    The process blocks for the disk service time while other processes
    run; r0 = 0 or -1. Kernel-initiated by design — the paper's point
    is that millisecond disk service dwarfs the syscall, unlike network
    transfers. *)

val sys_disk_write : int
(** r1 = block number, r2 = source virtual address (one block). *)

val sys_grant_dma_cap : int
(** CAPIO mechanism only: r1 = virtual base, r2 = length, r3 = rights
    bits ([cap_read] lor [cap_write]). The kernel checks the process
    owns the range with those permissions, mints an unforgeable 64-bit
    capability bound to the process's register context, installs it in
    the engine through the control page and returns it in r0 (-1 on any
    failure, including no DMA context or a physically discontiguous
    range). *)

val cap_read : int
val cap_write : int
