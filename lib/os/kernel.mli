(** The operating-system kernel — and, because this simulator has one
    CPU, the machine's execution loop.

    The kernel is deliberately *unmodified* by default: it knows
    nothing about user-level DMA beyond the standard services any UNIX
    provides (build address spaces, create mappings — including shadow
    mappings, which are set up with ordinary mmap-like calls at
    initialisation time — and serve [sys_dma] the classic way).

    The SHRIMP-2 and FLASH baselines *require* a modified context
    switch handler; that modification is modelled as explicit,
    installable hooks ([install_shrimp_hook], [install_flash_hook]).
    [kernel_modified] reports whether any such hook is installed — the
    paper's mechanisms all run with it false, and the safety test suite
    checks exactly that. *)

type backend_spec =
  | Null  (** zero-duration, no data movement (Table 1 methodology) *)
  | Local of { bytes_per_s : float }  (** real copies within local RAM *)
  | Timed of { label : string; duration_of_bytes : int -> int }
      (** Null's no-data-movement semantics with a real wire time:
          [duration_of_bytes n] picoseconds for an [n]-byte transfer.
          [label] names the model (e.g. a net backend's cache key) for
          reporting; [duration_of_bytes] must be pure. This is how
          [Uldma_net.Backend] plugs into the kernel without [lib/os]
          depending on [lib/net]. *)

type config = {
  timing : Uldma_bus.Timing.t;
  ram_size : int;
  mechanism : Uldma_dma.Engine.mechanism;
  n_contexts : int;
  backend : backend_spec;
  write_buffer : Uldma_bus.Write_buffer.mode;
  sched : Sched.policy;
  seed : int;
  disk : Uldma_io.Disk.geometry option;
      (** attach a disk (served by [sys_disk_read]/[sys_disk_write]);
          [None] by default *)
}

val default_config : config
(** alpha3000_300 timing, 4 MiB RAM, [Ext_shadow], 4 contexts, [Null]
    backend, ordered write buffer, run-to-completion scheduling. *)

type t

val create : config -> t

val copy : t -> t
(** Independent snapshot (explorer support): processes, engine, clock,
    scheduler and write buffer are duplicated; RAM and page tables are
    shared copy-on-write, so a snapshot costs O(live bookkeeping), not
    O(RAM size). The bus carries timing and per-pid access counters but
    starts an empty trace window. *)

val snapshot : t -> t
(** Alias for [copy]; the intent-revealing name for explorer forks. *)

(** {1 Accessors} *)

val config : t -> config
val clock : t -> Uldma_bus.Clock.t
val now_ps : t -> Uldma_util.Units.ps
val bus : t -> Uldma_bus.Bus.t
val engine : t -> Uldma_dma.Engine.t
val timing : t -> Uldma_bus.Timing.t
val ram : t -> Uldma_mem.Phys_mem.t
val pal : t -> Uldma_cpu.Pal.t
val processes : t -> Process.t list
val find_process : t -> int -> Process.t option
val runnable_pids : t -> int list
val running : t -> int option
val console : t -> (int * int) list
(** (pid, value) pairs from [sys_print], oldest first. *)

val context_switches : t -> int

(** {1 Observability}

    Every kernel owns a structured trace sink ({!Uldma_obs.Trace}) and
    a machine id. [create] adopts the process-global ambient sink
    ([Trace.ambient ()]) — the (disabled) null sink unless an
    experiment driver installed one — and registers a fresh machine id
    on it. Forks made by [copy]/[snapshot] share the parent's sink and
    machine id. *)

val set_trace : t -> Uldma_obs.Trace.t -> unit
(** Attach a sink after construction: registers a new machine id on it
    and rewires the bus, engine and write-buffer instrumentation. *)

val attach_trace : t -> Uldma_obs.Trace.t -> machine:int -> unit
(** Rewire the bus/engine/write-buffer instrumentation onto [sink]
    under an existing machine id (no fresh registration). The parallel
    explorer uses this to give each worker domain a private sink that
    is merged into the root's at the end. *)

val trace : t -> Uldma_obs.Trace.t
val machine_id : t -> int

val state_encoding : ?relative_to:t -> t -> string
(** Canonical encoding of the machine's engine-visible state: running
    pid, per-process control state (state tag, pc, registers, DMA
    context/key, uncached-access count), write-buffer drain frontier,
    console, DMA engine observables and RAM pages dirtied since the
    root (O(dirtied), not O(RAM)). Cost bookkeeping (clock, charged bus
    time, switch/instruction counters, trace state) is excluded: it
    differs between commuting schedule prefixes but cannot influence
    future observable steps. Time-dependent observables are folded in
    {e relative to now}: each in-flight transfer's exact remaining wire
    time and duration, and each blocked process's remaining sleep — so
    states differing only by an absolute clock offset merge while
    states with genuinely different pending deadlines never do. Under
    the [Null] backend these fields are constants and the encoding
    partitions states exactly as before. Equal encodings => identical
    evolution under identical schedules; the explorer's memo table keys
    on this string, so dedup can miss a merge but never merge distinct
    states. [relative_to] (a common snapshot ancestor, e.g. the
    explorer root) restricts the RAM part to pages physically diverged
    from it — exact, and O(work since the root) instead of O(all
    setup-time writes). *)

val state_key : ?relative_to:t -> paranoid:bool -> t -> string * int
(** Memo key for the explorer, plus the number of bytes hashed to
    produce it. With [~paranoid:false] (the default exploration mode)
    the same token walk as [state_encoding] is streamed into a two-lane
    126-bit fingerprint ({!Uldma_util.Fp128}) and the 16-byte packed
    key is returned — no encoding string is materialised, and RAM pages
    are folded in via cached per-page digests ({!Phys_mem.page_digest})
    so an unchanged page costs two ints instead of a page-size hash.
    Two states with equal encodings always get equal keys; distinct
    states collide only if both 63-bit lanes collide (~2^-126 —
    [tools/diff_explore] checks fingerprint runs against paranoid runs
    differentially). With [~paranoid:true] the key is the full
    [state_encoding] string, under which key equality is exactly
    encoding equality. *)

val fingerprint : ?relative_to:t -> t -> int64
(** FNV-1a hash of [state_encoding] — for the persisted-memo root
    guard and reporting. Dedup never trusts this hash alone. *)

val counter_snapshot : t -> Uldma_obs.Counters.t
(** The machine's accounting as a uniform named-counter registry:
    [os.*] (elapsed time, context switches, instructions, syscalls),
    [bus.*] (busy time, per-pid uncached crossings) and [dma.*]
    (transfers started, rejections, atomics, remote sends). *)

val set_sched_policy : t -> Sched.policy -> unit
(** Replace the scheduling policy mid-run (used by randomized attack
    campaigns that set up deterministically, then run preemptively). *)

(** {1 Process and memory setup (host-level kernel services)} *)

val spawn : t -> name:string -> program:Uldma_cpu.Isa.instr array -> ?superuser:bool -> unit -> Process.t

val alloc_pages : t -> Process.t -> n:int -> perms:Uldma_mem.Perms.t -> int
(** Map [n] fresh zeroed pages; returns the first virtual address.
    Raises [Failure] when out of frames. *)

val share_pages :
  t -> from_process:Process.t -> vaddr:int -> n:int -> into:Process.t -> perms:Uldma_mem.Perms.t -> int
(** Map the frames backing [from_process]'s pages into [into]'s address
    space with (possibly weaker) [perms]; returns the new vaddr. *)

val map_remote_pages :
  t -> Process.t -> remote_paddr:int -> n:int -> perms:Uldma_mem.Perms.t -> int
(** Map [n] pages of the peer node's physical memory (Telegraphos-style
    NOW shared memory) into the process at a fresh virtual address.
    [remote_paddr] is the page-aligned physical address on the peer.
    Uncached stores there become single-word network packets; passing
    such an address as a DMA destination ships the payload remotely
    (drain with [Uldma_dma.Engine.take_outbound] or [Uldma_sim.Cluster]). *)

val map_shadow_alias : t -> Process.t -> vaddr:int -> n:int -> window:[ `Dma | `Atomic ] -> int
(** Create the process's shadow aliases for [n] existing data pages.
    The alias of address [a] is [a + Vm.shadow_va_offset] (or
    [atomic_va_offset]); aliases are uncacheable and carry the
    process's register-context id in the physical address when the
    engine mechanism is [Ext_shadow] (§3.2). Alias permissions mirror
    the data pages' permissions — this is precisely how shadow
    addressing inherits protection from the MMU. *)

val alloc_dma_context : t -> Process.t -> (int * int * int) option
(** Assign a free register context: returns (context id, key, va of the
    mapped context page). The key is stored in the engine "in memory
    locations unreadable by user processes" via the control page. *)

val set_atomic_mailbox : t -> Process.t -> vaddr:int -> unit
(** Point the process's register context's atomic-reply mailbox at one
    of its own writable words: the old value of a *remote* atomic
    operation is delivered there when the reply packet arrives. Only
    the kernel can set it, because it is stored as a physical address
    (the process cannot aim it at memory it does not own). *)

val free_dma_context : t -> Process.t -> unit

val grant_dma_cap :
  t -> Process.t -> vaddr:int -> len:int -> rights:Uldma_mem.Perms.t -> int option
(** CAPIO: mint an unforgeable 64-bit capability over the process's
    [vaddr, vaddr+len) (which must be owned with [rights] and be
    physically contiguous) and install it in the engine through the
    control page. Requires an allocated DMA context — the capability is
    bound to it. Also reachable from user code as
    [Sysno.sys_grant_dma_cap]. [None] on any check failure. *)

val unmap_pages : t -> Process.t -> vaddr:int -> n:int -> unit
(** Tear down [n] page mappings with the mechanism's DMA-protection
    shootdowns: per-page IOTLB invalidation under [Iommu], revocation
    of capabilities over the freed frames under [Capio]. *)

val install_pal : t -> index:int -> Uldma_cpu.Isa.instr array -> (unit, string) result
(** Privileged: install a PAL function (§2.7). *)

val map_out_page : t -> Process.t -> vaddr:int -> dst_paddr:int -> unit
(** SHRIMP-1: declare [dst_paddr]'s page the mapped-out twin of the
    page backing [vaddr]. *)

(** {1 Kernel modification (for the SHRIMP-2 / FLASH baselines only)} *)

val install_shrimp_hook : t -> unit
val install_flash_hook : t -> unit
val kernel_modified : t -> bool

(** {1 Execution} *)

type run_result = All_exited | Max_steps | Predicate

val step : t -> [ `Stepped of int | `Idle ]
(** Let the scheduler pick a process and execute one instruction
    (handling any trap it raises to completion). [`Idle] when nothing
    is runnable. *)

val step_pid : t -> int -> [ `Ok | `Not_runnable ]
(** Force one instruction of a specific process (interleaving
    explorer); performs a context switch if needed. *)

val next_transfer_deadline : t -> Uldma_util.Units.ps option
(** Earliest in-flight transfer completion strictly after now — the
    next instant at which pure waiting changes an observable. Always
    [None] under the zero-duration [Null] backend. *)

val advance_to_next_completion : t -> bool
(** Idle the machine forward to [next_transfer_deadline] (waking any
    sleepers whose deadline passed) and return [true]; [false] (and no
    effect) when nothing is in flight. The explorer exposes this as a
    scheduling leg of its own ({!Uldma_verify.Explorer.wait_leg}): at
    NI-access granularity "let the wire drain before anyone touches
    the NI again" is a scheduling decision like any other. *)

val run : t -> ?max_steps:int -> unit -> run_result
val run_until : t -> ?max_steps:int -> (t -> bool) -> run_result
(** The predicate is evaluated after every instruction. *)

(** {1 Harness access to user memory} *)

val read_user : t -> Process.t -> int -> int
(** Word-read a user virtual address, bypassing timing (harness only).
    Raises [Failure] if unmapped. *)

val write_user : t -> Process.t -> int -> int -> unit

val user_paddr : t -> Process.t -> int -> int
(** Translate without access checks (harness/oracle use). *)
