(** Interconnect link models.

    §2.2's motivation: "ATM networks that provide 155 Mbps are common
    today, and will soon be upgraded to 622 Mbps. Gigabit LANs have
    already started to appear in the market." These three presets (plus
    a HIC/IEEE-1355 one, the technology of the ARCHES project that
    funded the paper) drive the initiation-overhead-versus-wire-time
    crossover experiment. *)

type t = {
  name : string;
  bytes_per_s : float;
  latency_ps : Uldma_util.Units.ps; (** propagation + switch latency *)
}

val atm155 : t
val atm622 : t
val gigabit : t
val hic1355 : t

val all : t list
(** The four timed presets (not [instant]). *)

val instant : t
(** Infinite bandwidth, zero latency — the wire model of the [Null]
    backend, for meshes that want uniform plumbing without wire time. *)

val wire_time_ps : t -> int -> Uldma_util.Units.ps
(** Latency + serialisation time for a payload of n bytes. *)

val pp : Format.formatter -> t -> unit
