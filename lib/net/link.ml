open Uldma_util

type t = { name : string; bytes_per_s : float; latency_ps : Units.ps }

let atm155 = { name = "ATM 155Mbps"; bytes_per_s = Units.mbps 155.0; latency_ps = Units.us 10.0 }
let atm622 = { name = "ATM 622Mbps"; bytes_per_s = Units.mbps 622.0; latency_ps = Units.us 8.0 }
let gigabit = { name = "Gigabit LAN"; bytes_per_s = Units.mbps 1000.0; latency_ps = Units.us 5.0 }
let hic1355 = { name = "HIC/IEEE-1355"; bytes_per_s = Units.mbps 800.0; latency_ps = Units.us 2.0 }

let all = [ atm155; atm622; gigabit; hic1355 ]

(* Infinite bandwidth, zero latency: the wire model matching the Null
   backend, so N-node meshes can be built uniformly over links even
   when the scenario wants zero-duration transfers. *)
let instant = { name = "instant"; bytes_per_s = infinity; latency_ps = 0 }

let wire_time_ps t n = t.latency_ps + Units.transfer_ps ~bytes_per_s:t.bytes_per_s n

let pp ppf t =
  Format.fprintf ppf "%s (%.0f MB/s, %a latency)" t.name (t.bytes_per_s /. 1e6) Units.pp_time
    t.latency_ps
