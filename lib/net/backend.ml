open Uldma_util

type t = Null | Linked of { link : Link.t; tick_ps : Units.ps }

let default_tick_ps = Units.us 1.0

let null = Null

let linked ?(tick_ps = default_tick_ps) link =
  if tick_ps <= 0 then invalid_arg "Backend.linked: tick_ps must be positive";
  Linked { link; tick_ps }

(* Round a wire time up to a whole number of ticks. Ceiling, never
   floor: a nonzero transfer must cost at least one tick, or a timed
   run would silently degenerate into the Null backend (and the
   explorer would lose the in-flight window the tick exists to model). *)
let quantise ~tick_ps ps = if ps <= 0 then 0 else (ps + tick_ps - 1) / tick_ps * tick_ps

let duration_ps t n =
  match t with
  | Null -> 0
  | Linked { link; tick_ps } -> quantise ~tick_ps (Link.wire_time_ps link n)

let tick_ps = function Null -> 0 | Linked { tick_ps; _ } -> tick_ps

let link = function Null -> None | Linked { link; _ } -> Some link

let name = function Null -> "null" | Linked { link; _ } -> link.Link.name

(* The canonical identity of a backend for persistent-cache keying:
   same link, different tick => different schedule trees, so the tick
   is part of the key. *)
let cache_key = function
  | Null -> "null"
  | Linked { link; tick_ps } -> Printf.sprintf "%s@%dps" link.Link.name tick_ps

let all_names = [ "null"; "atm155"; "atm622"; "gigabit"; "hic" ]

let of_string ?tick_ps s =
  (* validate the tick here rather than letting [linked] raise: CLI
     callers pattern-match on the Result and should get a message, not
     an exception, for --tick-ps 0 *)
  match tick_ps with
  | Some t when t <= 0 ->
    Error (Printf.sprintf "tick_ps must be positive (got %d)" t)
  | _ -> (
    match String.lowercase_ascii s with
    | "null" -> Ok Null
    | "atm155" -> Ok (linked ?tick_ps Link.atm155)
    | "atm622" -> Ok (linked ?tick_ps Link.atm622)
    | "gigabit" -> Ok (linked ?tick_ps Link.gigabit)
    | "hic" | "hic1355" -> Ok (linked ?tick_ps Link.hic1355)
    | other ->
      Error
        (Printf.sprintf "unknown net backend %S (expected one of: %s)" other
           (String.concat ", " all_names)))

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null (zero-duration)"
  | Linked { link; tick_ps } ->
    Format.fprintf ppf "%a, tick %a" Link.pp link Units.pp_time tick_ps
