open Uldma_util

type packet = {
  dst_paddr : int;
  payload : Bytes.t;
  depart_at : Units.ps;
  arrive_at : Units.ps;
}

type t = {
  link : Link.t;
  mutable queue : packet list; (* arrival order: oldest first *)
  mutable delivered : int;
  mutable busy_until : Units.ps; (* link serialisation point *)
  mutable sink : Uldma_obs.Trace.t;
  mutable machine : int; (* the *receiving* machine's id *)
}

let create ~link =
  { link; queue = []; delivered = 0; busy_until = 0; sink = Uldma_obs.Trace.null; machine = 0 }

let link t = t.link

let set_sink t ~machine sink =
  t.sink <- sink;
  t.machine <- machine

(* Delivery happens on the receiving machine; the engine's Packet_tx
   carries the sending side. pid -1: arrival is not on any process's
   behalf. *)
let trace_rx t p =
  if Uldma_obs.Trace.enabled t.sink then
    Uldma_obs.Trace.emit t.sink ~at:p.arrive_at ~machine:t.machine ~pid:(-1)
      (Uldma_obs.Trace.Packet_rx { dst_paddr = p.dst_paddr; bytes = Bytes.length p.payload })

let send t ~now ~dst_paddr ~payload =
  (* serialisation starts when the link is free *)
  let depart_at = max now t.busy_until in
  let arrive_at = depart_at + Link.wire_time_ps t.link (Bytes.length payload) in
  t.busy_until <- depart_at + Units.transfer_ps ~bytes_per_s:t.link.Link.bytes_per_s (Bytes.length payload);
  t.queue <- t.queue @ [ { dst_paddr; payload; depart_at; arrive_at } ]

let poll t ~now apply =
  let arrived, pending = List.partition (fun p -> p.arrive_at <= now) t.queue in
  t.queue <- pending;
  List.iter (trace_rx t) arrived;
  List.iter apply arrived;
  t.delivered <- t.delivered + List.length arrived;
  List.length arrived

let in_flight t = List.length t.queue

let delivered t = t.delivered

let next_arrival t =
  match t.queue with [] -> None | p :: _ -> Some p.arrive_at

let drain_all t apply =
  let n = List.length t.queue in
  List.iter (trace_rx t) t.queue;
  List.iter apply t.queue;
  t.delivered <- t.delivered + n;
  t.queue <- [];
  n
