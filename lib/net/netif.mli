(** A point-to-point network interface: packets depart when the DMA
    engine hands them over and arrive after the link's wire time.
    The receiving side applies arrived packets to its own physical
    memory when polled. *)

type packet = {
  dst_paddr : int;
  payload : Bytes.t;
  depart_at : Uldma_util.Units.ps;
  arrive_at : Uldma_util.Units.ps;
}

type t

val create : link:Link.t -> t
val link : t -> Link.t

val set_sink : t -> machine:int -> Uldma_obs.Trace.t -> unit
(** Attach a structured trace sink: every delivery ([poll] or
    [drain_all]) then emits a [Packet_rx] event stamped with the
    packet's arrival time and the given (receiving) machine id. *)

val send : t -> now:Uldma_util.Units.ps -> dst_paddr:int -> payload:Bytes.t -> unit

val poll : t -> now:Uldma_util.Units.ps -> (packet -> unit) -> int
(** Deliver (in arrival order) every packet whose [arrive_at] has
    passed; returns how many were delivered. *)

val in_flight : t -> int
val delivered : t -> int
val next_arrival : t -> Uldma_util.Units.ps option
val drain_all : t -> (packet -> unit) -> int
(** Deliver everything regardless of time (end-of-run settling). *)
