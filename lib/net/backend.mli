(** Net backends for the verified explorer.

    A backend decides how long a DMA transfer of [n] bytes stays in
    flight. [Null] is the paper's Table-1 methodology (no data moved,
    zero duration — every status load sees a completed transfer).
    [Linked] models a real interconnect from {!Link} (§5's ATM-155/622,
    Gigabit and HIC links): a transfer of [n] bytes occupies the wire
    for [Link.wire_time_ps] — latency plus serialisation — and status
    loads taken before that deadline see the bytes still remaining.

    {2 Tick quantisation}

    [Linked] durations are rounded {e up} to a whole number of
    [tick_ps] ticks. This is what keeps exhaustive exploration over
    time finite and well-merged: durations (and hence every in-flight
    deadline the state encoding folds in) are drawn from the small set
    [{k * tick_ps}] instead of the raw picosecond range, so schedule
    prefixes that start the same transfers reach states that agree on
    their deadlines far more often. Quantisation is applied to the
    {e duration} a transfer is born with — never to the encoded
    remaining time, which must stay exact for dedup to be sound (two
    states whose remaining times merely fall in the same bucket can
    diverge observably one tick later). Ceiling rounding guarantees a
    nonzero transfer never quantises to zero ticks, i.e. a timed
    backend never silently degenerates into [Null]. *)

type t =
  | Null  (** zero-duration transfers (the default, golden-stable) *)
  | Linked of { link : Link.t; tick_ps : Uldma_util.Units.ps }

val default_tick_ps : Uldma_util.Units.ps
(** 1 us — coarse enough to merge aggressively, fine enough that the
    ATM-155 wire time of a 256-byte scenario transfer (~23 us) spans
    many scheduling legs. *)

val null : t

val linked : ?tick_ps:Uldma_util.Units.ps -> Link.t -> t
(** [tick_ps] defaults to {!default_tick_ps}; must be positive. *)

val duration_ps : t -> int -> Uldma_util.Units.ps
(** Wire time for [n] bytes: 0 for [Null], the link's
    [wire_time_ps] ceiling-quantised to the tick for [Linked]. *)

val quantise : tick_ps:Uldma_util.Units.ps -> Uldma_util.Units.ps -> Uldma_util.Units.ps
(** Ceiling-round a duration to a whole number of ticks ([0] stays
    [0]; anything positive rounds to at least one tick). Exposed for
    the property tests. *)

val tick_ps : t -> Uldma_util.Units.ps
(** The backend's tick; 0 for [Null]. *)

val link : t -> Link.t option
val name : t -> string

val cache_key : t -> string
(** Canonical identity for persistent-cache keying ("null",
    "ATM 155Mbps@1000000ps", ...): two backends with equal keys produce
    equal schedule trees, and the tick is part of the key. *)

val all_names : string list
(** The CLI spellings accepted by [of_string]. *)

val of_string : ?tick_ps:Uldma_util.Units.ps -> string -> (t, string) result
(** Parse a CLI spelling ([null], [atm155], [atm622], [gigabit],
    [hic]); [tick_ps] applies to the linked backends. Unknown names and
    non-positive ticks come back as [Error] with the valid spellings
    listed — never as an exception. *)

val pp : Format.formatter -> t -> unit
