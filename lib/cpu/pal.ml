type t = { slots : Isa.instr array option array }

let max_instructions = 16
let num_slots = 32

let create () = { slots = Array.make num_slots None }

let copy t = { slots = Array.copy t.slots }

let check_instr len i =
  match i with
  | Isa.Syscall -> Error "PAL body may not contain Syscall"
  | Isa.Call_pal _ -> Error "PAL body may not contain Call_pal"
  | Isa.Halt -> Error "PAL body may not contain Halt"
  | Isa.Beq (_, _, tgt) | Isa.Bne (_, _, tgt) | Isa.Blt (_, _, tgt) | Isa.Jmp tgt ->
    if tgt < 0 || tgt > len then Error "PAL branch target outside body" else Ok ()
  | Isa.Li _ | Isa.Mov _ | Isa.Add _ | Isa.Sub _ | Isa.And_ _ | Isa.Or_ _ | Isa.Xor _
  | Isa.Shl _ | Isa.Shr _ | Isa.Load _ | Isa.Store _ | Isa.Mb | Isa.Nop ->
    Ok ()

let install t ~index body =
  if index < 0 || index >= num_slots then Error (Printf.sprintf "PAL index %d out of range" index)
  else if Array.length body > max_instructions then
    Error
      (Printf.sprintf "PAL body of %d instructions exceeds the %d-instruction limit"
         (Array.length body) max_instructions)
  else
    let len = Array.length body in
    let rec check i =
      if i >= len then Ok ()
      else
        match check_instr len body.(i) with Ok () -> check (i + 1) | Error _ as e -> e
    in
    match check 0 with
    | Ok () ->
      t.slots.(index) <- Some (Array.copy body);
      Ok ()
    | Error _ as e -> e

let get t index =
  if index < 0 || index >= num_slots then None else t.slots.(index)

let invoke t ~index ~sink ~machine ~pid ~now ~run =
  match get t index with
  | None -> None
  | Some body ->
    if Uldma_obs.Trace.enabled sink then
      Uldma_obs.Trace.emit sink ~at:(now ()) ~machine ~pid (Uldma_obs.Trace.Pal_enter { index });
    let result = run body in
    if Uldma_obs.Trace.enabled sink then
      Uldma_obs.Trace.emit sink ~at:(now ()) ~machine ~pid (Uldma_obs.Trace.Pal_exit { index });
    Some result

let installed t =
  let acc = ref [] in
  Array.iteri (fun i s -> if s <> None then acc := i :: !acc) t.slots;
  List.rev !acc
