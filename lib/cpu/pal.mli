(** PALcode registry (paper §2.7).

    The DEC Alpha's PAL mode executes short routines uninterruptibly.
    "PAL code is organized in 16-instruction long PAL calls. A PAL call
    is executed uninterrupted. To ensure protection, only super-users
    are allowed to write and install PAL functions. However, once a PAL
    function is installed, any ordinary user is allowed to invoke it."

    The machine consults this registry on [Call_pal n] and executes the
    body with preemption disabled. Installation is a privileged kernel
    operation. *)

type t

val max_instructions : int
(** 16, as on the Alpha. *)

val num_slots : int

val create : unit -> t
val copy : t -> t

val install : t -> index:int -> Isa.instr array -> (unit, string) result
(** Validates: index in range, body length within [max_instructions],
    no [Syscall] / [Call_pal] / [Halt] inside, and branch targets
    within the body. *)

val get : t -> int -> Isa.instr array option
val installed : t -> int list

val invoke :
  t ->
  index:int ->
  sink:Uldma_obs.Trace.t ->
  machine:int ->
  pid:int ->
  now:(unit -> Uldma_util.Units.ps) ->
  run:(Isa.instr array -> 'a) ->
  'a option
(** Look up slot [index] and execute its body through [run], bracketed
    by [Pal_enter]/[Pal_exit] trace events ([now] is sampled before and
    after so the exit carries the post-execution time). [None] if the
    slot is empty. *)
