(** The IOMMU's I/O TLB: a bounded set-associative translation cache
    consulted by the DMA engine when it accepts *virtual* addresses.

    A miss is serviced by a hardware walk of the bound process page
    table (charged on the machine timing model by the caller) and fills
    the missing entry, evicting the set's round-robin victim. The OS
    flushes the cache on context switch and invalidates single pages on
    unmap — the untagged-IOTLB discipline.

    Both slot contents and the per-set victim cursors are observable
    state (they decide future hit/miss behaviour and thus charged walk
    time), so {!encode} streams both; equal encodings evolve
    identically under identical future request streams. *)

type t

type stats = { hits : int; misses : int }

val create : ?sets:int -> ?ways:int -> unit -> t
(** [sets] defaults to 16 (must be a power of two), [ways] to 4. *)

val copy : t -> t

val lookup : t -> vpage:int -> Pte.t option
(** Probe without filling or touching statistics. *)

val fill : t -> vpage:int -> Pte.t -> unit
(** Install a translation, evicting the set's round-robin victim (an
    existing entry for the same page is refilled in place). *)

val translate :
  t -> Page_table.t -> vpage:int -> [ `Hit of Pte.t | `Miss of Pte.t | `Fault ]
(** Look up [vpage]; on miss, walk [table] and fill. [`Fault] means the
    walk found no mapping (nothing is cached). Updates statistics. *)

val invalidate : t -> vpage:int -> unit
(** Drop any entry for [vpage] (unmap shootdown). *)

val flush : t -> unit
(** Drop everything and reset the victim cursors (context switch). *)

val entries : t -> (int * Pte.t) list
(** Live (vpage, pte) pairs in slot order, for tests. *)

val stats : t -> stats
val reset_stats : t -> unit

val encode : Uldma_util.Enc.t -> t -> unit
(** Canonical encoding of slots + victim cursors (statistics excluded). *)
