(** A per-process page table: virtual page number -> PTE. *)

type t

val create : unit -> t

val copy : t -> t
(** O(1): the underlying map is persistent, so the copy shares
    structure with the original until either side remaps. *)

val iter : t -> (int -> Pte.t -> unit) -> unit
(** Visits mappings in increasing virtual-page order. *)

val map : t -> vpage:int -> Pte.t -> unit
(** Install or replace a mapping. *)

val unmap : t -> vpage:int -> unit
val find : t -> vpage:int -> Pte.t option
val mem : t -> vpage:int -> bool
val cardinal : t -> int

val mapped_range : t -> vaddr:int -> len:int -> perms:Uldma_mem.Perms.t -> bool
(** True iff every page of [\[vaddr, vaddr+len)] is mapped with at least
    the given permissions — the kernel's [check_size] from Fig. 1. *)
