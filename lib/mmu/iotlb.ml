(* The IOMMU's I/O TLB: a bounded set-associative translation cache in
   front of a process page table. Unlike the CPU's [Tlb] (direct-mapped,
   private to one address space, consulted on every access), the IOTLB
   lives on the DMA engine, is filled by hardware table walks charged on
   the machine timing model, and is flushed by the OS on context switch
   and invalidated on unmap — the classic untagged-IOTLB discipline.

   Replacement is per-set round robin: a mutable victim cursor per set,
   advanced on every fill. Both the slot contents and the cursors are
   part of the canonical encoding — the cursor decides which entry the
   *next* fill evicts, so two caches with equal slots but different
   cursors can diverge observably (a future hit vs miss changes charged
   walk time), and merging them would be unsound. *)

type entry = { vpage : int; pte : Pte.t }

type stats = { hits : int; misses : int }

type t = {
  sets : int;
  ways : int;
  slots : entry option array; (* set s occupies [s*ways, (s+1)*ways) *)
  victim : int array; (* per-set round-robin refill cursor *)
  mutable hits : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let default_sets = 16
let default_ways = 4

let create ?(sets = default_sets) ?(ways = default_ways) () =
  if not (is_power_of_two sets) then invalid_arg "Iotlb.create: sets must be a power of two";
  if ways < 1 then invalid_arg "Iotlb.create: ways must be positive";
  {
    sets;
    ways;
    slots = Array.make (sets * ways) None;
    victim = Array.make sets 0;
    hits = 0;
    misses = 0;
  }

let copy t = { t with slots = Array.copy t.slots; victim = Array.copy t.victim }

let set_of t vpage = vpage land (t.sets - 1)

let lookup t ~vpage =
  let base = set_of t vpage * t.ways in
  let rec probe w =
    if w >= t.ways then None
    else
      match t.slots.(base + w) with
      | Some e when e.vpage = vpage -> Some e.pte
      | Some _ | None -> probe (w + 1)
  in
  probe 0

let fill t ~vpage pte =
  let set = set_of t vpage in
  let base = set * t.ways in
  (* refill an existing entry for the page in place; otherwise take the
     set's round-robin victim way *)
  let rec existing w = if w >= t.ways then None
    else match t.slots.(base + w) with
      | Some e when e.vpage = vpage -> Some w
      | Some _ | None -> existing (w + 1)
  in
  let way =
    match existing 0 with
    | Some w -> w
    | None ->
      let w = t.victim.(set) in
      t.victim.(set) <- (w + 1) mod t.ways;
      w
  in
  t.slots.(base + way) <- Some { vpage; pte }

let translate t table ~vpage =
  match lookup t ~vpage with
  | Some pte ->
    t.hits <- t.hits + 1;
    `Hit pte
  | None -> (
    t.misses <- t.misses + 1;
    match Page_table.find table ~vpage with
    | Some pte ->
      fill t ~vpage pte;
      `Miss pte
    | None -> `Fault)

let invalidate t ~vpage =
  let base = set_of t vpage * t.ways in
  for w = 0 to t.ways - 1 do
    match t.slots.(base + w) with
    | Some e when e.vpage = vpage -> t.slots.(base + w) <- None
    | Some _ | None -> ()
  done

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Array.fill t.victim 0 (Array.length t.victim) 0

let stats t : stats = { hits = t.hits; misses = t.misses }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let entries t =
  Array.to_list t.slots
  |> List.filter_map (fun e -> Option.map (fun e -> (e.vpage, e.pte)) e)

(* Canonical encoding: slot layout plus the victim cursors. Replacement
   is deterministic, so equal encodings evolve identically; hit/miss
   counters are diagnostics and are excluded. *)
let encode enc t =
  let i v = Uldma_util.Enc.int enc v in
  Array.iter
    (fun slot ->
      match slot with
      | None -> i min_int
      | Some e ->
        i e.vpage;
        i e.pte.Pte.frame;
        i ((if e.pte.Pte.perms.Uldma_mem.Perms.read then 1 else 0)
          lor (if e.pte.Pte.perms.Uldma_mem.Perms.write then 2 else 0)
          lor if e.pte.Pte.cacheable then 4 else 0))
    t.slots;
  Array.iter i t.victim
