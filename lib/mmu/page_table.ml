open Uldma_mem

(* Backed by a persistent map so [copy] is O(1) structural sharing —
   kernel snapshots fork page tables on every explorer branch point.
   PTEs are immutable, so sharing them between snapshots is safe;
   map/unmap on one side rebuilds only the touched spine. *)

module Int_map = Map.Make (Int)

type t = { mutable entries : Pte.t Int_map.t }

let create () = { entries = Int_map.empty }

let copy t = { entries = t.entries }

let map t ~vpage pte = t.entries <- Int_map.add vpage pte t.entries

let unmap t ~vpage = t.entries <- Int_map.remove vpage t.entries

let find t ~vpage = Int_map.find_opt vpage t.entries

let mem t ~vpage = Int_map.mem vpage t.entries

let iter t f = Int_map.iter f t.entries

let cardinal t = Int_map.cardinal t.entries

let mapped_range t ~vaddr ~len ~perms =
  if len <= 0 then true
  else
    let first = Layout.page_of vaddr and last = Layout.page_of (vaddr + len - 1) in
    let rec check page =
      if page > last then true
      else
        match find t ~vpage:page with
        | Some pte when Perms.subsumes pte.Pte.perms perms -> check (page + 1)
        | Some _ | None -> false
    in
    check first
