(* Chase–Lev work-stealing deque (see ws_deque.mli for the protocol
   argument). [top] only ever increases; [bottom] is owner-written.
   Indices are logical (never wrapped); the slot for index [i] in a
   buffer of length [2^k] is [i land (2^k - 1)]. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  mutable tab : 'a option array; (* length a power of two; owner-resized *)
}

let create () = { top = Atomic.make 0; bottom = Atomic.make 0; tab = Array.make 16 None }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner only. The superseded buffer is deliberately left intact: a
   thief that read [t.tab] before the swap still finds every live index
   at its old slot, and the owner never writes the old buffer again. *)
let grow t b tp =
  let old = t.tab in
  let old_mask = Array.length old - 1 in
  let tab = Array.make (Array.length old * 2) None in
  let mask = Array.length tab - 1 in
  for i = tp to b - 1 do
    tab.(i land mask) <- old.(i land old_mask)
  done;
  t.tab <- tab

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp >= Array.length t.tab - 1 then grow t b tp;
  let tab = t.tab in
  tab.(b land (Array.length tab - 1)) <- Some v;
  (* the atomic store publishes the plain slot write to thieves *)
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  (* claim index [b] before reading [top]: a thief that still sees the
     old bottom and races us for the last element must go through the
     CAS below either way *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty; restore the canonical empty shape bottom = top *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let tab = t.tab in
    let slot = b land (Array.length tab - 1) in
    let v = tab.(slot) in
    if b > tp then begin
      (* more than one element: index [b] is unreachable by thieves *)
      tab.(slot) <- None;
      v
    end
    else begin
      (* exactly one element: race thieves for it via [top] *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        tab.(slot) <- None;
        v
      end
      else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* read the value BEFORE the CAS: a successful CAS proves [top] was
       still [tp] when we read, so the slot could not have been
       recycled (any overwrite of index [tp]'s slot requires [top] to
       have advanced past it first) *)
    let tab = t.tab in
    let v = tab.(tp land (Array.length tab - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else None
  end
