(** Encoding sink: one canonical state walk, two consumers.

    [Buf] appends the textual encoding to a buffer (the pre-v5 format:
    ints are decimal with a trailing [','], tags and raw bytes verbatim).
    [Fp] streams the same tokens into a {!Fp128} fingerprint without
    materialising anything.  Encoders (kernel, DMA engine, matchers)
    take an [Enc.t] so both modes are guaranteed to observe exactly the
    same state components. *)

type t = Buf of Buffer.t | Fp of Fp128.t

val int : t -> int -> unit
val char : t -> char -> unit
val string : t -> string -> unit
val bytes : t -> bytes -> unit
