(** Streaming two-lane 126-bit fingerprint.

    Allocation-free on the hot path: both lanes are native 63-bit ints
    mixed word-at-a-time.  Used by [Kernel.state_key] to fingerprint
    canonical state walks without materialising the encoding string, and
    by [Phys_mem] to digest immutable COW pages (bytes are packed into
    48-bit words so no bit is dropped by int conversion). *)

type t

val create : unit -> t
val reset : t -> unit

val add_int : t -> int -> unit
(** Feed one integer word. *)

val add_tag : t -> char -> unit
(** Feed a section-tag character, domain-separated from [add_int] values
    (the sign bit is set), so a tag can never alias a small value. *)

val add_string : t -> string -> unit
(** Feed a variable-length string, length-prefixed for injectivity. *)

val add_bytes : t -> bytes -> unit
(** Feed a variable-length byte run, length-prefixed for injectivity. *)

val fed : t -> int
(** Bytes accounted so far (ints count as 8, tags as 1, strings as
    8 + length).  Used for [bytes_hashed] statistics. *)

val lanes : t -> int * int
(** Finalised (avalanched) lane values.  Does not mutate [t]; more input
    may be fed afterwards. *)

val key : t -> string
(** 16-byte packed key of the finalised lanes — suitable as a compact
    hashtable key. *)

val key_of_lanes : int -> int -> string
(** Pack two already-finalised lanes into a 16-byte key. *)

val digest : bytes -> int * int
(** One-shot digest of a byte block (e.g. a physical page).  Equal
    contents give equal digests; the result feeds back into a stream via
    {!add_int} on both lanes. *)
