(* Streaming two-lane 126-bit fingerprint.

   Each lane is a native 63-bit OCaml int updated with an independent
   multiply-xor mix (FNV/xxhash-style), so the streaming hot path never
   allocates: no Int64 boxing, no intermediate buffer.  The two lanes use
   different primes and different injection functions, so a collision
   requires both 63-bit lanes to collide simultaneously (~2^-126 for
   adversary-free inputs; see DESIGN.md for the collision argument and
   the paranoid mode that removes even that risk).

   Byte feeding is lossless: bytes are packed three-uint16-per-word into
   48-bit words (6-byte strides), because [Int64.to_int] of a raw 64-bit
   load would silently drop bit 63 on a tagged-int target. *)

type t = {
  mutable a : int;
  mutable b : int;
  mutable fed : int; (* bytes/words accounted so far, for bytes-hashed stats *)
}

(* Lane seeds: FNV-1a 64-bit offset basis truncated to 62 bits, and a
   splitmix64 increment truncated likewise.  Any odd constants work; we
   just need the lanes decorrelated. *)
let seed_a = 0xbf29ce484222325
let seed_b = 0x1e3779b97f4a7c15

let prime_a = 0x100000001b3 (* FNV 64-bit prime *)
let prime_b = 0x2545f4914f6cdd1d (* splitmix64 mix constant, < 2^62 *)
let prime_c = 0x369dea0f31a53f85 (* xorshift1024* constant, < 2^62 *)

let[@inline] mix_a h v = (h lxor v) * prime_a

let[@inline] mix_b h v = ((h + (v * 0x9e3779b97f4a7c1)) * prime_b) lxor (h lsr 31)

let create () = { a = seed_a; b = seed_b; fed = 0 }

let reset t =
  t.a <- seed_a;
  t.b <- seed_b;
  t.fed <- 0

let fed t = t.fed

let[@inline] add_int t v =
  t.a <- mix_a t.a v;
  t.b <- mix_b t.b v;
  t.fed <- t.fed + 8

(* Tag characters (section markers in the canonical state walk) are fed
   with the sign bit set so they can never alias a small non-negative
   value fed through [add_int]. *)
let[@inline] add_tag t c =
  let v = Char.code c lor min_int in
  t.a <- mix_a t.a v;
  t.b <- mix_b t.b v;
  t.fed <- t.fed + 1

(* Feed [len] raw bytes of [b] starting at [off], packed losslessly into
   48-bit words.  The caller is responsible for length-prefixing when the
   byte run has variable length. *)
let feed_raw t b off len =
  let a = ref t.a and bb = ref t.b in
  let i = ref off in
  let stop = off + len in
  while !i + 6 <= stop do
    let w =
      Bytes.get_uint16_le b !i
      lor (Bytes.get_uint16_le b (!i + 2) lsl 16)
      lor (Bytes.get_uint16_le b (!i + 4) lsl 32)
    in
    a := mix_a !a w;
    bb := mix_b !bb w;
    i := !i + 6
  done;
  while !i < stop do
    let w = Char.code (Bytes.unsafe_get b !i) in
    a := mix_a !a w;
    bb := mix_b !bb w;
    incr i
  done;
  t.a <- !a;
  t.b <- !bb;
  t.fed <- t.fed + len

let add_bytes t b =
  let len = Bytes.length b in
  add_int t len;
  feed_raw t b 0 len

let add_string t s =
  add_bytes t (Bytes.unsafe_of_string s)

(* Murmur3-style finalizer: avalanche each lane so that low-entropy
   tails (e.g. a single differing register) spread across all bits. *)
let[@inline] fmix h =
  let h = h lxor (h lsr 33) in
  let h = h * prime_b in
  let h = h lxor (h lsr 29) in
  let h = h * prime_c in
  h lxor (h lsr 32)

let lanes t = (fmix (t.a lxor t.fed), fmix (t.b + (t.fed * prime_a)))

let key_of_lanes lo hi =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int lo);
  Bytes.set_int64_le b 8 (Int64.of_int hi);
  Bytes.unsafe_to_string b

let key t =
  let lo, hi = lanes t in
  key_of_lanes lo hi

let digest b =
  let t = create () in
  feed_raw t b 0 (Bytes.length b);
  lanes t
