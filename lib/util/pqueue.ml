(* Classic array-backed binary heap. The comparison key is the pair
   (key, seq): seq is a global insertion counter, which makes the pop
   order among equal keys exactly the insertion order — the property
   the event-driven cluster simulation relies on for determinism. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let fresh = Array.make cap t.heap.(0) in
  Array.blit t.heap 0 fresh 0 t.size;
  t.heap <- fresh

let push t ~key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.heap.(0).key
