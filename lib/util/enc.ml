(* Encoding sink for the canonical kernel-state walk.

   The same token walk drives two consumers:
   - [Buf]: the original textual encoding (paranoid mode, debugging,
     the QCheck equivalence property) — bytes land in a [Buffer.t];
   - [Fp]: a streaming 126-bit fingerprint — nothing is materialised.

   Keeping one walk for both modes is what makes the equivalence
   argument local: the only divergence between a fingerprint key and a
   paranoid string key is hash collision, never a difference in which
   state components are observed. *)

type t = Buf of Buffer.t | Fp of Fp128.t

let int t v =
  match t with
  | Buf b ->
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ','
  | Fp f -> Fp128.add_int f v

let char t c =
  match t with
  | Buf b -> Buffer.add_char b c
  | Fp f -> Fp128.add_tag f c

let string t s =
  match t with
  | Buf b -> Buffer.add_string b s
  | Fp f -> Fp128.add_string f s

let bytes t b =
  match t with
  | Buf buf -> Buffer.add_bytes buf b
  | Fp f -> Fp128.add_bytes f b
