(** A deterministic binary min-heap keyed by [int] priorities.

    Built for discrete-event simulation: [pop] returns the element with
    the smallest key, and elements inserted with {e equal} keys come
    back in insertion order (a monotonically increasing sequence number
    breaks ties), so a simulation driven off this heap is reproducible
    regardless of heap-internal layout. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> key:int -> 'a -> unit
(** O(log n). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element (FIFO among equal keys);
    [None] when empty. O(log n). *)

val peek_key : 'a t -> int option

val length : 'a t -> int
val is_empty : 'a t -> bool
