(** Chase–Lev work-stealing deque.

    One {e owner} domain pushes and pops at the bottom (LIFO, so the
    owner works depth-first on its freshest subtree); any number of
    {e thief} domains steal from the top (FIFO, so thieves take the
    oldest — largest — published subtrees). The hot path is entirely
    [Atomic]-based: no mutex is ever taken. Only the single-element
    case races owner against thieves, resolved by a compare-and-set on
    [top]; [top] is monotonic, so there is no ABA window.

    The element buffer is a circular array grown only by the owner;
    thieves may keep reading a superseded buffer, which is safe because
    a grow copies every live index to the same logical position and the
    owner never writes a superseded buffer again. Publication safety of
    the plain-array writes follows from the release/acquire semantics
    of the [bottom]/[top] atomics (the OCaml memory model's publication
    idiom). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: push at the bottom. Amortized O(1); grows the buffer
    when full. *)

val pop : 'a t -> 'a option
(** Owner only: pop the most recently pushed element, or [None] when
    the deque is empty (including when a thief wins the race for the
    last element). *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest element. [None] means empty {e or} a
    CAS contention loss — callers treat both as "try elsewhere", so no
    retry loop is needed here. *)

val size : 'a t -> int
(** Racy estimate of the current element count (load-balancing
    heuristics only; never exact under concurrency). *)
