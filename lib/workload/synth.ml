(* Bounded adversary-program synthesis: enumerate every small
   accomplice program over a 2-page S/L grammar, canonicalised up to
   page renaming, and drive the whole family through the campaign
   engine. See the mli for the contract. *)

open Uldma_mem
open Uldma_cpu
open Uldma_os
open Uldma_dma
module Oracle = Uldma_verify.Oracle
module Explorer = Uldma_verify.Explorer
module Campaign = Uldma_verify.Campaign

type op = S of int | L of int

let pages = 2

let show_op = function
  | S p -> Printf.sprintf "S%d" p
  | L p -> Printf.sprintf "L%d" p

let mnemonic ops = String.concat "." (List.map show_op ops)

(* All canonical op sequences of length 1..slots, lengths ascending and
   lexicographic (S before L, low page first) within a length. A
   sequence is canonical when pages appear in first-use order: page k
   may occur only after 0..k-1 all have. Page identities are symmetric
   by construction (two fresh same-sized shadow-mapped pages), so each
   pruned sequence behaves identically to the canonical one that
   renames its pages. The swap acts freely, so over 2 pages this
   halves the raw count to 4^n / 2 per length n — 682 candidates
   cumulative for slots = 5. *)
let enumerate ?(exact = false) ~slots () =
  if slots < 1 then invalid_arg "Synth.enumerate: slots must be >= 1";
  let out = ref [] in
  let rec gen seq used left =
    if left = 0 then out := List.rev seq :: !out
    else
      for p = 0 to min used (pages - 1) do
        let used' = max used (p + 1) in
        gen (S p :: seq) used' (left - 1);
        gen (L p :: seq) used' (left - 1)
      done
  in
  for len = (if exact then slots else 1) to slots do
    gen [] 0 len
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)

type base = {
  b_scenario : Scenario.t;
  b_pid : int; (* the accomplice's pid *)
  b_p0 : int; (* its two data page vas (shadow-mapped at spawn) *)
  b_p1 : int;
}

let variant_label = function
  | Seq_matcher.Three -> "rep3"
  | Seq_matcher.Four -> "rep4"
  | Seq_matcher.Five -> "rep5"

(* The campaign's mechanism axis: the three repeated-passing variants
   plus the other five matrix mechanisms, so one grammar of accomplice
   programs probes the whole six-mechanism protection matrix. *)
type subject =
  | Rep of Seq_matcher.variant
  | Pal
  | Key
  | Ext
  | Iommu
  | Capio

let subject_label = function
  | Rep v -> variant_label v
  | Pal -> "pal"
  | Key -> "key-based"
  | Ext -> "ext-shadow"
  | Iommu -> "iommu"
  | Capio -> "capio"

let subject_of_string = function
  | "rep3" -> Some (Rep Seq_matcher.Three)
  | "rep4" -> Some (Rep Seq_matcher.Four)
  | "rep5" -> Some (Rep Seq_matcher.Five)
  | "pal" -> Some Pal
  | "key" | "key-based" -> Some Key
  | "ext" | "ext-shadow" -> Some Ext
  | "iommu" -> Some Iommu
  | "capio" -> Some Capio
  | _ -> None

let subject_mech = function
  | Rep v -> Uldma.Rep_args.mech_of_variant v
  | Pal -> Uldma.Pal_dma.mech
  | Key -> Uldma.Key_dma.mech
  | Ext -> Uldma.Ext_shadow.mech
  | Iommu -> Uldma.Iommu_dma.mech
  | Capio -> Uldma.Capio_dma.mech

let subject_engine_mechanism subject =
  match (subject_mech subject).Uldma.Mech.engine_mechanism with
  | Some m -> m
  | None -> invalid_arg "Synth.subject_engine_mechanism: mechanism drives no engine"

let net_label = function
  | None -> "null"
  | Some b -> Uldma_net.Backend.cache_key b

(* The matrix-cell base: the standard victim (through the subject's
   mechanism) and the Fig. 5 attacker, plus an accomplice slot — two
   fresh shadow-mapped pages and an empty program for each candidate to
   fill in. Only the victim declares an intent, so any
   adversary-attributable transfer is a violation. Under IOMMU/CAPIO
   the shadow window itself is dead (every access rejects
   [Unsupported]), which is exactly the differential fact the
   six-mechanism catalogue is after. *)
let make_base ?net ?repeat subject =
  let mech = subject_mech subject in
  let kernel = Scenario.make_kernel ?net (subject_engine_mechanism subject) in
  let emit_override =
    (* the retrying five-access stub spins forever under exploration *)
    match subject with
    | Rep Seq_matcher.Five -> Some Uldma.Rep_args.emit_dma_five_no_retry
    | Rep (Seq_matcher.Three | Seq_matcher.Four) | Pal | Key | Ext | Iommu | Capio -> None
  in
  (* extended shadow addressing encodes the register context in the
     alias, so the adversaries need contexts before they can map *)
  let needs_context = match subject with Ext -> true | _ -> false in
  let victim, a, b, result, intent = Scenario.make_victim ?repeat kernel mech ~emit_override in
  let attacker, attacker_labels = Scenario.fig5_attacker ~with_context:needs_context kernel in
  let accomplice = Kernel.spawn kernel ~name:"accomplice" ~program:[||] () in
  if needs_context then (
    match Kernel.alloc_dma_context kernel accomplice with
    | Some _ -> ()
    | None -> failwith "Synth.make_base: no free context for the accomplice");
  let p0 = Kernel.alloc_pages kernel accomplice ~n:1 ~perms:Perms.read_write in
  let p1 = Kernel.alloc_pages kernel accomplice ~n:1 ~perms:Perms.read_write in
  ignore (Kernel.map_shadow_alias kernel accomplice ~vaddr:p0 ~n:1 ~window:`Dma : int);
  ignore (Kernel.map_shadow_alias kernel accomplice ~vaddr:p1 ~n:1 ~window:`Dma : int);
  let scenario =
    {
      Scenario.kernel;
      victim;
      attacker;
      intents = [ intent ];
      victim_result_va = result;
      attacker_result_va = None;
      extras = [ (accomplice, None) ];
      transfer_size = Scenario.transfer_size;
      labels =
        Scenario.page_label kernel victim a "A"
        :: Scenario.page_label kernel victim b "B"
        :: Scenario.page_label kernel accomplice p0 "P0"
        :: Scenario.page_label kernel accomplice p1 "P1"
        :: attacker_labels;
    }
  in
  { b_scenario = scenario; b_pid = accomplice.Process.pid; b_p0 = p0; b_p1 = p1 }

let base_scenario base = base.b_scenario

(* Accomplice program: the same prologue for every candidate (page vas
   into 12/13, shadow aliases into 20/21, the transfer size into 3),
   then the ops — S p initiates on page p like the Fig. 5 attacker's
   store (store + mb), L p reads the page's shadow alias. *)
let assemble base ops =
  let asm = Asm.create () in
  Asm.li asm 12 base.b_p0;
  Asm.li asm 13 base.b_p1;
  Scenario.shadow 12 20 asm;
  Scenario.shadow 13 21 asm;
  Asm.li asm 3 Scenario.transfer_size;
  List.iter
    (fun op ->
      match op with
      | S p ->
        Asm.store asm ~base:(20 + p) ~off:0 3;
        Asm.mb asm
      | L p -> Asm.load asm 4 ~base:(20 + p) ~off:0)
    ops;
  Asm.halt asm;
  Asm.assemble asm

let zero_tag = String.make 16 '\000'

(* tags.(pc) = fingerprint of the instruction suffix from pc. The
   candidate grammar is straight-line (no branches), so the residual
   suffix fully determines the accomplice's future execution — exactly
   the property Explorer.explore's [key_tag] contract needs. *)
let residual_tags prog =
  let n = Array.length prog in
  Array.init (n + 1) (fun pc ->
      if pc >= n then zero_tag
      else begin
        let fp = Uldma_util.Fp128.create () in
        for i = pc to n - 1 do
          Uldma_util.Fp128.add_string fp (Isa.show_instr prog.(i))
        done;
        Uldma_util.Fp128.key fp
      end)

(* NOT domain-safe against its base: Kernel.snapshot clears the base's
   page-ownership flags, so build all of a campaign's candidates
   sequentially before Campaign.run spawns outer domains. *)
let candidate base ops =
  let root = Kernel.snapshot base.b_scenario.Scenario.kernel in
  let prog = assemble base ops in
  (match Kernel.find_process root base.b_pid with
  | Some p -> Process.set_program p prog
  | None -> invalid_arg "Synth.candidate: accomplice not in base kernel");
  let tags = residual_tags prog in
  let n = Array.length prog in
  let pid = base.b_pid in
  let key_tag kernel =
    match Kernel.find_process kernel pid with
    | Some p -> (
      match p.Process.state with
      | Process.Exited _ -> zero_tag
      | Process.Ready | Process.Blocked_until _ -> tags.(min p.Process.ctx.Cpu.pc n))
    | None -> zero_tag
  in
  { Campaign.c_label = mnemonic ops; c_root = root; c_key_tag = Some key_tag }

(* ------------------------------------------------------------------ *)
(* Cell runner and collusion catalogue. *)

let kind_name = function
  | Oracle.Unattributed_transfer _ -> "unattributed"
  | Oracle.Rights_violation _ -> "rights"
  | Oracle.Phantom_success _ -> "phantom"
  | Oracle.Lost_transfer _ -> "lost"

(* Deterministic digest of one candidate's result: label, path count,
   truncation, and each violation's kind + schedule. Violation
   *payloads* (simulated timestamps inside transfers) depend on which
   schedule prefix first discovered a memoized subtree, so they are
   deliberately left out — kind and schedule are the
   warmth-independent facts the explorer guarantees. *)
let add_result fp label (r : Oracle.violation Explorer.result) =
  let module F = Uldma_util.Fp128 in
  F.add_string fp label;
  F.add_int fp r.Explorer.paths;
  F.add_int fp (if r.Explorer.truncated then 1 else 0);
  List.iter
    (fun (v, schedule) ->
      F.add_string fp (kind_name v);
      List.iter (F.add_int fp) schedule)
    r.Explorer.violations

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

type cell = {
  cell_mech : string;
  cell_net : string;
  cell_slots : int;
  cell_candidates : int;
  cell_violating : int; (* candidates with at least one violation *)
  cell_truncated : int; (* candidates clipped by max_paths *)
  cell_paths : int;
  cell_states : int;
  cell_hits : int;
  cell_witness : string; (* minimal violating program, "-" when safe *)
  cell_witness_violations : int;
  cell_witness_kinds : string;
  cell_results_fp : string; (* hex digest of every per-candidate result *)
}

type cell_run = {
  cr_cell : cell;
  cr_ops : op list array;
  cr_results : Oracle.violation Explorer.result array;
  cr_stats : Campaign.stats;
}

let dedup_sorted xs = List.sort_uniq compare xs

let make_cell ~mech ~net ~slots ~ops ~results ~(stats : Campaign.stats) =
  let n = Array.length results in
  let violating = ref 0 and truncated = ref 0 in
  let witness = ref None in
  let fp = Uldma_util.Fp128.create () in
  Array.iteri
    (fun i (r : Oracle.violation Explorer.result) ->
      let label = mnemonic ops.(i) in
      add_result fp label r;
      if r.Explorer.truncated then incr truncated;
      if r.Explorer.violations <> [] then begin
        incr violating;
        (* enumeration order is shortest-first, so the first violating
           candidate is a minimal witness *)
        if !witness = None then witness := Some (label, r)
      end)
    results;
  let witness_label, witness_viols, witness_kinds =
    match !witness with
    | None -> ("-", 0, "-")
    | Some (label, r) ->
      let kinds =
        dedup_sorted (List.map (fun (v, _) -> kind_name v) r.Explorer.violations)
      in
      (label, List.length r.Explorer.violations, String.concat "+" kinds)
  in
  {
    cell_mech = mech;
    cell_net = net;
    cell_slots = slots;
    cell_candidates = n;
    cell_violating = !violating;
    cell_truncated = !truncated;
    cell_paths = stats.Campaign.g_paths;
    cell_states = stats.Campaign.g_states;
    cell_hits = stats.Campaign.g_hits;
    cell_witness = witness_label;
    cell_witness_violations = witness_viols;
    cell_witness_kinds = witness_kinds;
    cell_results_fp = hex (Uldma_util.Fp128.key fp);
  }

let run_cell ?net ?repeat ?(slots = 3) ?exact ?(jobs = 1) ?(max_paths = 1_000_000) ?shared
    ?cutoff ?merge_batch subject =
  let base = make_base ?net ?repeat subject in
  let ops = enumerate ?exact ~slots () in
  (* sequential on purpose; see [candidate] *)
  let candidates = Array.map (candidate base) ops in
  let results, stats =
    Campaign.run ~candidates ~pids:(Scenario.explore_pids base.b_scenario)
      ~baseline:base.b_scenario.Scenario.kernel ~jobs ~max_paths ?shared ?cutoff
      ?merge_batch
      ~check:(Scenario.oracle_check base.b_scenario)
      ()
  in
  {
    cr_cell =
      make_cell ~mech:(subject_label subject) ~net:(net_label net) ~slots ~ops ~results
        ~stats;
    cr_ops = ops;
    cr_results = results;
    cr_stats = stats;
  }

(* The catalogue records only jobs- and warmth-independent facts, so
   two catalogues from any --jobs settings diff byte-identical.
   states/hits stay out: which domain first expands a state (and hence
   who scores the memo hit) races across outer workers. The CLI table
   still displays them from the cell. *)
let catalogue_header =
  "mech,net,slots,candidates,violating,truncated,paths,witness,witness_violations,witness_kinds,results_fp"

let catalogue_row c =
  Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%s,%d,%s,%s" c.cell_mech c.cell_net c.cell_slots
    c.cell_candidates c.cell_violating c.cell_truncated c.cell_paths c.cell_witness
    c.cell_witness_violations c.cell_witness_kinds c.cell_results_fp

let write_catalogue path cells =
  let oc = open_out path in
  output_string oc (catalogue_header ^ "\n");
  List.iter (fun c -> output_string oc (catalogue_row c ^ "\n")) cells;
  close_out oc
