open Uldma_mem
open Uldma_cpu
open Uldma_os
open Uldma_dma
module Mech = Uldma.Mech
module Oracle = Uldma_verify.Oracle
module Explorer = Uldma_verify.Explorer

type t = {
  kernel : Kernel.t;
  victim : Process.t;
  attacker : Process.t;
  intents : Oracle.intent list;
  victim_result_va : int;
  attacker_result_va : int option; (* when the attacker also reports *)
  extras : (Process.t * int option) list;
      (* third and further processes (3-process contested workloads),
         each with its result page when it reports an outcome *)
  transfer_size : int;
  mutable labels : (int * string) list; (* physical page base -> name *)
}

type leg = V | M

let transfer_size = 256

(* A timed scenario swaps the default Null backend for a Kernel.Timed
   spec carrying the net backend's (tick-quantised) wire-time model;
   explicitly passing Backend.null is byte-identical to the default. *)
let backend_of_net : Uldma_net.Backend.t option -> Kernel.backend_spec = function
  | None | Some Uldma_net.Backend.Null -> Kernel.Null
  | Some b ->
    Kernel.Timed
      {
        label = Uldma_net.Backend.cache_key b;
        duration_of_bytes = Uldma_net.Backend.duration_ps b;
      }

(* A small machine is plenty for two processes and keeps
   explorer snapshots cheap. *)
let make_kernel ?net mechanism =
  let kernel =
    Kernel.create
      {
        Kernel.default_config with
        Kernel.ram_size = 64 * Layout.page_size;
        mechanism;
        sched = Sched.Round_robin { quantum = 50 };
        backend = backend_of_net net;
      }
  in
  (* record the engine-visible access stream for [access_timeline] *)
  Uldma_bus.Bus.set_trace (Kernel.bus kernel) true;
  kernel

let page_label kernel p va name = (Layout.page_base (Kernel.user_paddr kernel p va), name)

(* Victim: [repeat] DMAs A -> B through [mech], reporting its result. *)
let make_victim ?(repeat = 1) kernel (mech : Mech.t) ~emit_override =
  let victim = Kernel.spawn kernel ~name:"victim" ~program:[||] () in
  let a = Kernel.alloc_pages kernel victim ~n:1 ~perms:Perms.read_write in
  let b = Kernel.alloc_pages kernel victim ~n:1 ~perms:Perms.read_write in
  let result = Kernel.alloc_pages kernel victim ~n:1 ~perms:Perms.read_write in
  let prepared =
    mech.Mech.prepare kernel victim ~src:{ Mech.vaddr = a; pages = 1 }
      ~dst:{ Mech.vaddr = b; pages = 1 }
  in
  let emit = match emit_override with Some e -> e | None -> prepared.Mech.emit_dma in
  Process.set_program victim
    (Stub_loop.build_repeat ~n:repeat ~vsrc:a ~vdst:b ~size:transfer_size ~result_va:result
       ~emit_dma:emit);
  let intent =
    Oracle.intent_of_regions kernel victim ~vsrc:a ~vdst:b ~size:transfer_size ~requests:repeat
  in
  (victim, a, b, result, intent)

let shadow reg_data reg_shadow asm =
  Asm.add asm reg_shadow reg_data (Isa.Imm Vm.shadow_va_offset)

(* The Fig. 5 attacker: S(foo) L(foo) L(C) L(C) over its own pages.
   [with_context] allocates it a register context first — required
   before shadow-mapping under the extended-shadow mechanism. *)
let fig5_attacker ?(with_context = false) kernel =
  let attacker = Kernel.spawn kernel ~name:"attacker" ~program:[||] () in
  if with_context then (
    match Kernel.alloc_dma_context kernel attacker with
    | Some _ -> ()
    | None -> failwith "Scenario.fig5_attacker: no free register context");
  let foo = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  let c = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  ignore (Kernel.map_shadow_alias kernel attacker ~vaddr:foo ~n:1 ~window:`Dma : int);
  ignore (Kernel.map_shadow_alias kernel attacker ~vaddr:c ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 12 foo;
  Asm.li asm 13 c;
  shadow 12 20 asm;
  shadow 13 21 asm;
  Asm.li asm 3 transfer_size;
  Asm.store asm ~base:20 ~off:0 3 (* STORE foo-sized TO shadow(foo) *);
  Asm.mb asm;
  Asm.load asm 4 ~base:20 ~off:0 (* LOAD FROM shadow(foo) *);
  Asm.load asm 4 ~base:21 ~off:0 (* LOAD FROM shadow(C) *);
  Asm.load asm 4 ~base:21 ~off:0 (* LOAD FROM shadow(C) - fires C->B *);
  Asm.halt asm;
  Process.set_program attacker (Asm.assemble asm);
  (attacker, [ page_label kernel attacker foo "foo"; page_label kernel attacker c "C" ])

let fig5 ?net () =
  let mech = Uldma.Rep_args.mech_of_variant Seq_matcher.Three in
  let kernel = make_kernel ?net (Engine.Rep_args Seq_matcher.Three) in
  let victim, a, b, result, intent = make_victim kernel mech ~emit_override:None in
  let attacker, attacker_labels = fig5_attacker kernel in
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels =
      page_label kernel victim a "A" :: page_label kernel victim b "B" :: attacker_labels;
  }

(* V's accesses: L(A) S(B) L(A); M's: S(foo) L(foo) L(C) L(C). *)
let fig5_schedule = [ V; M; M; M; V; M; V ]

(* The Fig. 6 attacker: a single LOAD from shadow(A), where it has
   legitimate read access to A. *)
let fig6 () =
  let mech = Uldma.Rep_args.mech_of_variant Seq_matcher.Four in
  let kernel = make_kernel (Engine.Rep_args Seq_matcher.Four) in
  let victim, a, _b, result, intent = make_victim kernel mech ~emit_override:None in
  let attacker = Kernel.spawn kernel ~name:"attacker" ~program:[||] () in
  let a_shared =
    Kernel.share_pages kernel ~from_process:victim ~vaddr:a ~n:1 ~into:attacker
      ~perms:Perms.read_only
  in
  ignore (Kernel.map_shadow_alias kernel attacker ~vaddr:a_shared ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 12 a_shared;
  shadow 12 20 asm;
  Asm.load asm 4 ~base:20 ~off:0 (* LOAD FROM shadow(A): completes V's sequence *);
  Asm.halt asm;
  Process.set_program attacker (Asm.assemble asm);
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels =
      [
        page_label kernel victim a "A";
        page_label kernel victim _b "B";
      ];
  }

(* V's accesses: S(B) L(A) S(B) [M: L(A) fires] V: L(A) rejected. *)
let fig6_schedule = [ V; V; V; M; V ]

(* The §2.5 race: the attacker overwrites the single pending
   (dest,size) slot between the victim's store and load. *)
let two_step_race ~mech ~mechanism ~hook =
  let kernel = make_kernel mechanism in
  let victim, _a, _b, result, intent =
    make_victim kernel
      {
        mech with
        Mech.prepare =
          (fun k p ~src ~dst ->
            match mechanism with
            | Engine.Shrimp_two_step -> Uldma.Shrimp2.prepare_raw ~install_hook:hook k p ~src ~dst
            | Engine.Flash -> Uldma.Flash.prepare_raw ~install_hook:hook k p ~src ~dst
            | _ -> mech.Mech.prepare k p ~src ~dst);
      }
      ~emit_override:None
  in
  let attacker = Kernel.spawn kernel ~name:"attacker" ~program:[||] () in
  let d = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  ignore (Kernel.map_shadow_alias kernel attacker ~vaddr:d ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 12 d;
  shadow 12 20 asm;
  Asm.li asm 3 transfer_size;
  Asm.store asm ~base:20 ~off:0 3 (* STORE size TO shadow(D): overwrites pending dest *);
  Asm.mb asm;
  Asm.halt asm;
  Process.set_program attacker (Asm.assemble asm);
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels = [ page_label kernel attacker d "D" ];
  }

let shrimp2_race ~hook = two_step_race ~mech:Uldma.Shrimp2.mech ~mechanism:Engine.Shrimp_two_step ~hook

let flash_race ~hook = two_step_race ~mech:Uldma.Flash.mech ~mechanism:Engine.Flash ~hook

let shrimp2_schedule = [ V; M; V ]

(* The same three-leg race against the contextless extended-shadow
   engine: the interloper's store carries ITS context bits, so the
   victim's load makes a mismatched pair and the engine refuses —
   safety without any kernel hook (sec. 3.2). *)
let ext_stateless_race () =
  let mech = Uldma.Ext_shadow.mech_stateless in
  let kernel = make_kernel Engine.Ext_shadow_stateless in
  let victim, a, b, result, intent = make_victim kernel mech ~emit_override:None in
  let attacker = Kernel.spawn kernel ~name:"attacker" ~program:[||] () in
  (match Kernel.alloc_dma_context kernel attacker with
  | Some _ -> ()
  | None -> failwith "no context for attacker");
  let d = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  ignore (Kernel.map_shadow_alias kernel attacker ~vaddr:d ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 12 d;
  shadow 12 20 asm;
  Asm.li asm 3 transfer_size;
  Asm.store asm ~base:20 ~off:0 3;
  Asm.mb asm;
  Asm.halt asm;
  Process.set_program attacker (Asm.assemble asm);
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels =
      [
        page_label kernel victim a "A";
        page_label kernel victim b "B";
        page_label kernel attacker d "D";
      ];
  }

let rep5_scenario ?net ~emit () =
  let mech = Uldma.Rep_args.mech in
  let kernel = make_kernel ?net (Engine.Rep_args Seq_matcher.Five) in
  let victim, a, b, result, intent = make_victim kernel mech ~emit_override:emit in
  let attacker, attacker_labels = fig5_attacker kernel in
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels =
      page_label kernel victim a "A" :: page_label kernel victim b "B" :: attacker_labels;
  }

let rep5 ?net () = rep5_scenario ?net ~emit:(Some Uldma.Rep_args.emit_dma_five_no_retry) ()

(* A second adversary shape against the five-access method: the
   attacker issues S(X) S(X) L(X) on its own page X, trying to splice
   the victim's loads of A into steps 2/4 of its own sequence and so
   exfiltrate A into X. The victim's interleaved stores make this
   impossible (sec. 3.3.1), which the explorer verifies. *)
let rep5_splice () =
  let mech = Uldma.Rep_args.mech in
  let kernel = make_kernel (Engine.Rep_args Seq_matcher.Five) in
  let victim, a, b, result, intent =
    make_victim kernel mech ~emit_override:(Some Uldma.Rep_args.emit_dma_five_no_retry)
  in
  let attacker = Kernel.spawn kernel ~name:"attacker" ~program:[||] () in
  let x = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  ignore (Kernel.map_shadow_alias kernel attacker ~vaddr:x ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 12 x;
  shadow 12 20 asm;
  Asm.li asm 3 transfer_size;
  Asm.store asm ~base:20 ~off:0 3;
  Asm.mb asm;
  Asm.store asm ~base:20 ~off:0 3;
  Asm.mb asm;
  Asm.load asm 4 ~base:20 ~off:0;
  Asm.halt asm;
  Process.set_program attacker (Asm.assemble asm);
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels =
      [
        page_label kernel victim a "A";
        page_label kernel victim b "B";
        page_label kernel attacker x "X";
      ];
  }

let rep5_with_retry () = rep5_scenario ~emit:None ()

(* Both processes legitimately use the same mechanism on their own
   buffers; the "attacker" here is just a concurrent tenant. Safety =
   both DMAs happen exactly once with no argument mixing, under every
   schedule — the atomicity claim of sec. 3.1/3.2. *)
let contested ?net (mech : Mech.t) mechanism =
  let kernel = make_kernel ?net mechanism in
  let victim, a, b, result, intent = make_victim kernel mech ~emit_override:None in
  let attacker = Kernel.spawn kernel ~name:"tenant" ~program:[||] () in
  let c = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  let d = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  let tenant_result = Kernel.alloc_pages kernel attacker ~n:1 ~perms:Perms.read_write in
  let prepared =
    mech.Mech.prepare kernel attacker ~src:{ Mech.vaddr = c; pages = 1 }
      ~dst:{ Mech.vaddr = d; pages = 1 }
  in
  Process.set_program attacker
    (Stub_loop.build_single ~vsrc:c ~vdst:d ~size:transfer_size ~result_va:tenant_result
       ~emit_dma:prepared.Mech.emit_dma);
  let tenant_intent =
    Oracle.intent_of_regions kernel attacker ~vsrc:c ~vdst:d ~size:transfer_size ~requests:1
  in
  {
    kernel;
    victim;
    attacker;
    intents = [ intent; tenant_intent ];
    victim_result_va = result;
    attacker_result_va = Some tenant_result;
    extras = [];
    transfer_size;
    labels =
      [
        page_label kernel victim a "A";
        page_label kernel victim b "B";
        page_label kernel attacker c "C";
        page_label kernel attacker d "D";
      ];
  }

let ext_shadow_contested () = contested Uldma.Ext_shadow.mech Engine.Ext_shadow

let key_contested ?net () = contested ?net Uldma.Key_dma.mech Engine.Key_based

let pal_contested () = contested Uldma.Pal_dma.mech Engine.Shrimp_two_step

let iommu_contested ?net () = contested ?net Uldma.Iommu_dma.mech Engine.Iommu

let capio_contested ?net () = contested ?net Uldma.Capio_dma.mech Engine.Capio

(* ------------------------------------------------------------------ *)
(* The Fig. 5 splicer against a mechanism whose initiation never
   touches the shadow window (IOMMU / CAPIO): every attacker shadow
   access is rejected [Unsupported], so exploration must find every
   schedule SAFE — there is no argument stream to splice into. *)

let fig5_vs ?net (mech : Mech.t) mechanism =
  let kernel = make_kernel ?net mechanism in
  let victim, a, b, result, intent = make_victim kernel mech ~emit_override:None in
  let attacker, attacker_labels = fig5_attacker kernel in
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels =
      page_label kernel victim a "A" :: page_label kernel victim b "B" :: attacker_labels;
  }

let iommu_fig5 ?net () = fig5_vs ?net Uldma.Iommu_dma.mech Engine.Iommu

let capio_fig5 ?net () = fig5_vs ?net Uldma.Capio_dma.mech Engine.Capio

(* The rep5-style accomplice, retargeted at CAPIO: the accomplice has
   somehow learned the victim's capability *values* (they are plain
   words; secrecy is not the protection) and replays them through its
   OWN register context. The engine's context binding must reject the
   laundering attempt with [Bad_capability] under every schedule. *)
let capio_launder ?net () =
  let mech = Uldma.Capio_dma.mech in
  let kernel = make_kernel ?net Engine.Capio in
  let victim, a, b, result, intent = make_victim kernel mech ~emit_override:None in
  let victim_caps = Capability.live (Engine.capabilities (Kernel.engine kernel)) in
  let cap_with pred =
    match List.find_opt pred victim_caps with
    | Some c -> c.Capability.value
    | None -> failwith "Scenario.capio_launder: victim capability missing"
  in
  let cap_src = cap_with (fun c -> c.Capability.rights.Perms.read) in
  let cap_dst = cap_with (fun c -> c.Capability.rights.Perms.write) in
  let accomplice = Kernel.spawn kernel ~name:"accomplice" ~program:[||] () in
  let context_page_va =
    match Kernel.alloc_dma_context kernel accomplice with
    | Some (_, _, va) -> va
    | None -> failwith "Scenario.capio_launder: no context for accomplice"
  in
  let asm = Asm.create () in
  Asm.li asm Mech.reg_size transfer_size;
  Uldma.Capio_dma.emit_dma_with ~cap_src ~cap_dst ~context_page_va asm;
  Asm.halt asm;
  Process.set_program accomplice (Asm.assemble asm);
  {
    kernel;
    victim;
    attacker = accomplice;
    intents = [ intent ];
    victim_result_va = result;
    transfer_size;
    attacker_result_va = None;
    extras = [];
    labels = [ page_label kernel victim a "A"; page_label kernel victim b "B" ];
  }

(* ------------------------------------------------------------------ *)
(* Three-process contested workloads. Two-process trees top out around
   10^2..10^3 schedules — too small for --jobs to matter. A third
   process and repeated initiations push the tree to 10^5..10^6
   schedules (the multinomial of the three leg counts), which is where
   work stealing and the bounded memo earn their keep. Safety is the
   same atomicity claim as [contested], now with three concurrent
   register-context users. *)

let contested3 ?(victim_repeat = 2) ?(tenant_repeat = 2) (mech : Mech.t) mechanism =
  let kernel = make_kernel mechanism in
  let victim, a, b, result, intent =
    make_victim ~repeat:victim_repeat kernel mech ~emit_override:None
  in
  let spawn_tenant name =
    let p = Kernel.spawn kernel ~name ~program:[||] () in
    let src = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
    let dst = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
    let res = Kernel.alloc_pages kernel p ~n:1 ~perms:Perms.read_write in
    let prepared =
      mech.Mech.prepare kernel p ~src:{ Mech.vaddr = src; pages = 1 }
        ~dst:{ Mech.vaddr = dst; pages = 1 }
    in
    Process.set_program p
      (Stub_loop.build_repeat ~n:tenant_repeat ~vsrc:src ~vdst:dst ~size:transfer_size
         ~result_va:res ~emit_dma:prepared.Mech.emit_dma);
    let intent =
      Oracle.intent_of_regions kernel p ~vsrc:src ~vdst:dst ~size:transfer_size
        ~requests:tenant_repeat
    in
    (p, src, dst, res, intent)
  in
  let t1, c, d, r1, i1 = spawn_tenant "tenant1" in
  let t2, e, f, r2, i2 = spawn_tenant "tenant2" in
  {
    kernel;
    victim;
    attacker = t1;
    intents = [ intent; i1; i2 ];
    victim_result_va = result;
    attacker_result_va = Some r1;
    extras = [ (t2, Some r2) ];
    transfer_size;
    labels =
      [
        page_label kernel victim a "A";
        page_label kernel victim b "B";
        page_label kernel t1 c "C";
        page_label kernel t1 d "D";
        page_label kernel t2 e "E";
        page_label kernel t2 f "F";
      ];
  }

(* Key-based initiation costs 4 NI accesses, so even a single
   initiation per process (5 legs each) already yields ~7.6e5
   schedules; repeats would blow past any practical path budget. *)
let key_contested3 ?(victim_repeat = 1) ?(tenant_repeat = 1) () =
  contested3 ~victim_repeat ~tenant_repeat Uldma.Key_dma.mech Engine.Key_based

let ext_shadow_contested3 ?victim_repeat ?tenant_repeat () =
  contested3 ?victim_repeat ?tenant_repeat Uldma.Ext_shadow.mech Engine.Ext_shadow

(* IOMMU initiation is also 4 NI accesses; one initiation per process
   keeps the tree in the same ~7.6e5-schedule band as key_contested3. *)
let iommu_contested3 ?(victim_repeat = 1) ?(tenant_repeat = 1) () =
  contested3 ~victim_repeat ~tenant_repeat Uldma.Iommu_dma.mech Engine.Iommu

let capio_contested3 ?(victim_repeat = 1) ?(tenant_repeat = 1) () =
  contested3 ~victim_repeat ~tenant_repeat Uldma.Capio_dma.mech Engine.Capio

(* The five-access method against BOTH adversary shapes at once: the
   Fig. 5 splicer and the store-splice attacker race one rep5 victim.
   Neither attacker reports an outcome; safety is the victim's DMA
   happening exactly once with no argument mixing under every
   three-way interleaving. *)
let rep5_contested3 () =
  let mech = Uldma.Rep_args.mech in
  let kernel = make_kernel (Engine.Rep_args Seq_matcher.Five) in
  let victim, a, b, result, intent =
    make_victim kernel mech ~emit_override:(Some Uldma.Rep_args.emit_dma_five_no_retry)
  in
  let attacker, attacker_labels = fig5_attacker kernel in
  let splicer = Kernel.spawn kernel ~name:"splicer" ~program:[||] () in
  let x = Kernel.alloc_pages kernel splicer ~n:1 ~perms:Perms.read_write in
  ignore (Kernel.map_shadow_alias kernel splicer ~vaddr:x ~n:1 ~window:`Dma : int);
  let asm = Asm.create () in
  Asm.li asm 12 x;
  shadow 12 20 asm;
  Asm.li asm 3 transfer_size;
  Asm.store asm ~base:20 ~off:0 3;
  Asm.mb asm;
  Asm.store asm ~base:20 ~off:0 3;
  Asm.mb asm;
  Asm.load asm 4 ~base:20 ~off:0;
  Asm.halt asm;
  Process.set_program splicer (Asm.assemble asm);
  {
    kernel;
    victim;
    attacker;
    intents = [ intent ];
    victim_result_va = result;
    attacker_result_va = None;
    extras = [ (splicer, None) ];
    transfer_size;
    labels =
      page_label kernel victim a "A" :: page_label kernel victim b "B"
      :: page_label kernel splicer x "X" :: attacker_labels;
  }

(* ------------------------------------------------------------------ *)
(* Explorer plumbing shared by every consumer (experiments, CLI,
   trace-checker, bench): the pid list to interleave and the oracle as
   a terminal-state check, both covering [extras]. *)

let processes t = t.victim :: t.attacker :: List.map fst t.extras

let explore_pids t = List.map (fun p -> p.Process.pid) (processes t)

let oracle_report t kernel =
  let read p result_va =
    match Kernel.find_process kernel p.Process.pid with
    | Some p' -> Stub_loop.read_successes kernel p' ~result_va
    | None -> 0
  in
  let reported =
    (t.victim.Process.pid, read t.victim t.victim_result_va)
    ::
    (match t.attacker_result_va with
    | Some result_va -> [ (t.attacker.Process.pid, read t.attacker result_va) ]
    | None -> [])
    @ List.filter_map
        (fun (p, rva) -> Option.map (fun rva -> (p.Process.pid, read p rva)) rva)
        t.extras
  in
  Oracle.check ~kernel ~intents:t.intents ~reported_successes:reported

let oracle_check t kernel =
  match (oracle_report t kernel).Oracle.violations with [] -> None | v :: _ -> Some v

let pid_of t = function V -> t.victim.Process.pid | M -> t.attacker.Process.pid

let run_legs t legs =
  List.iter
    (fun leg ->
      ignore
        (Explorer.advance_one_leg t.kernel (pid_of t leg) ~max_instructions:2000
          : [ `Progress | `Exited | `Stuck ]))
    legs

let finish t ?(max_steps = 200_000) () =
  ignore (Kernel.run t.kernel ~max_steps () : Kernel.run_result)

let run_random t ~seed ~switch_probability =
  Kernel.set_sched_policy t.kernel (Sched.Random_preempt { probability = switch_probability; seed });
  finish t ()

let report t =
  let successes = Stub_loop.read_successes t.kernel t.victim ~result_va:t.victim_result_va in
  let reported = [ (t.victim.Process.pid, successes) ] in
  let reported =
    match t.attacker_result_va with
    | Some result_va ->
      (t.attacker.Process.pid, Stub_loop.read_successes t.kernel t.attacker ~result_va) :: reported
    | None -> reported
  in
  Oracle.check ~kernel:t.kernel ~intents:t.intents ~reported_successes:reported

let victim_successes t = Stub_loop.read_successes t.kernel t.victim ~result_va:t.victim_result_va

let victim_last_status t = Stub_loop.read_last_status t.kernel t.victim ~result_va:t.victim_result_va

let transfers t = Engine.transfers (Kernel.engine t.kernel)

(* ------------------------------------------------------------------ *)
(* Access-timeline rendering (the paper's interleaving diagrams) *)

let label_of_paddr t paddr =
  let describe base offset =
    match List.assoc_opt (Layout.page_base base) t.labels with
    | Some name -> if offset = 0 then name else Printf.sprintf "%s+%#x" name offset
    | None -> Printf.sprintf "%#x" (base lor offset)
  in
  match Uldma_mmu.Shadow.decode paddr with
  | Some d ->
    let inner = describe (Layout.page_base d.Uldma_mmu.Shadow.paddr) (Layout.page_offset d.Uldma_mmu.Shadow.paddr) in
    if d.Uldma_mmu.Shadow.atomic then Printf.sprintf "atomic_shadow(%s)" inner
    else Printf.sprintf "shadow(%s)" inner
  | None -> (
    match Layout.context_of_mmio paddr with
    | Some context -> Printf.sprintf "context%d_page" context
    | None ->
      if Layout.in_mmio paddr then "engine_control_page"
      else describe (Layout.page_base paddr) (Layout.page_offset paddr))

let access_timeline t =
  let actor pid =
    if pid = t.victim.Process.pid then "victim"
    else if pid = t.attacker.Process.pid then "attacker"
    else if pid < 0 then "kernel"
    else
      match List.find_opt (fun (p, _) -> p.Process.pid = pid) t.extras with
      | Some (p, _) -> p.Process.name
      | None -> Printf.sprintf "pid%d" pid
  in
  List.filter_map
    (fun (txn : Uldma_bus.Txn.t) ->
      if txn.Uldma_bus.Txn.pid < 0 then None
      else
        let rendered =
          match txn.Uldma_bus.Txn.op with
          | Uldma_bus.Txn.Store ->
            Printf.sprintf "STORE %#x TO %s" txn.Uldma_bus.Txn.value
              (label_of_paddr t txn.Uldma_bus.Txn.paddr)
          | Uldma_bus.Txn.Load ->
            Printf.sprintf "LOAD FROM %s" (label_of_paddr t txn.Uldma_bus.Txn.paddr)
        in
        Some (txn.Uldma_bus.Txn.at, actor txn.Uldma_bus.Txn.pid, rendered))
    (Uldma_bus.Bus.trace (Kernel.bus t.kernel))
