(** Key-value load generation at cluster scale.

    The paper's argument is that 2–5-instruction DMA initiation makes
    {e fine-grained cluster communication} cheap. This module puts a
    number on that at service scale: thousands of simulated client
    processes spread over an N-node mesh issue millions of small
    GET/PUT transfers through per-process submission queues with
    batched doorbells, and completion latency comes back as
    p50/p99/p999 plus aggregate Gb/s per wire.

    Two levels of fidelity cooperate:

    - {b Calibration} ({!calibrate}) runs the {e real} verified
      initiation mechanism through {!Uldma.Session} on the
      instruction-level machine and reads the per-doorbell cost off the
      simulated clock; the per-descriptor enqueue cost comes from the
      same machine's timing model. {!cosim_burst} additionally drives
      full kernels through the {!Uldma.Cluster} mesh to validate the
      wire path end to end.
    - {b Load generation} ({!run}) replays those measured costs in a
      discrete-event simulation of clients, node CPUs, NI engines and
      the full mesh of links (exact {!Uldma_net.Netif} timing algebra:
      serialisation occupies the wire, latency pipelines), which is
      what makes 10^6-transfer runs take seconds instead of hours.

    Everything is deterministic: all randomness comes from
    {!Uldma_util.Rng} streams derived from [params.seed], and event
    ties break by insertion order ({!Uldma_util.Pqueue}), so equal
    seeds give byte-identical reports. *)

type params = {
  nodes : int;  (** mesh size (2..62) *)
  clients : int;  (** client processes, spread round-robin over nodes *)
  transfers : int;  (** total GET/PUT requests across all clients *)
  batch : int;  (** descriptors per doorbell (1 = unbatched) *)
  window : int;  (** max outstanding requests per client *)
  value_size : int;  (** value payload bytes *)
  get_ratio : float;  (** fraction of GETs (rest are PUTs) *)
  seed : int;
  mech : string;  (** mechanism whose initiation cost is calibrated *)
}

val default_params : params
(** 4 nodes, 1000 clients, 10^6 transfers, batch 8, window 32, 64-byte
    values, 50% GETs, seed 42, ext-shadow. *)

val validate_params : params -> (params, string) result

(** {1 Calibration} *)

type calibration = {
  cal_mech : string;
  initiation_ps : int;
      (** measured cost of one verified initiation sequence (the
          doorbell): simulated clock delta per iteration of the
          Table-1 stub loop *)
  submit_ps : int;
      (** cost of enqueueing one descriptor in the process's submission
          queue (a few cached stores, from the machine timing model) *)
  service_base_ps : int;  (** fixed NI cost to serve a request *)
  ram_bytes_per_s : float;  (** server-side memory bandwidth *)
}

val calibrate :
  ?iterations:int -> ?config:Uldma_os.Kernel.config -> string -> (calibration, string) result
(** [calibrate mech] runs [iterations] (default 256) real initiations
    through {!Uldma.Session} and derives the cost constants above.
    Unknown mechanism names come back as [Error]. *)

val cosim_burst : Uldma.Cluster.t -> words:int -> int * int
(** Instruction-level validation of the wire path: on every node of the
    given cluster, spawn a process that issues [words] remote
    single-word stores to its successor through the verified
    remote-window path, co-simulate to completion, and return
    [(write_bytes, packets)] summed over all nodes (expected:
    [nodes * words * 8] bytes). *)

(** {1 Load generation} *)

type result = {
  net_name : string;
  transfers : int;
  gets : int;
  puts : int;
  doorbells : int;
  value_bytes : int;  (** payload bytes moved (the useful work) *)
  wire_bytes : int;  (** bytes on the wire incl. headers/acks *)
  latency : Uldma_obs.Percentile.t;  (** submit -> response, ps *)
  sim_ps : int;  (** simulated makespan *)
  counters : Uldma_obs.Counters.t;  (** kv.* counters + pow2 histogram *)
}

val run : params -> cal:calibration -> net:Uldma_net.Backend.t -> result

val sweep :
  ?jobs:int ->
  params ->
  cal:calibration ->
  (string * Uldma_net.Backend.t) list ->
  (string * result) list
(** [run] over several backends; [jobs > 1] fans the runs out over
    that many domains (each run is independent and deterministic, so
    the output does not depend on [jobs]). *)

val transfers_per_s : result -> float
val gbps : result -> float
(** Useful-payload goodput: [value_bytes * 8 / sim_seconds / 1e9]. *)

(** {1 The machine-readable report (_results/BENCH_cluster.json)} *)

module Report : sig
  type batching = {
    bat_net : string;
    batch1 : result;
    batched : result;  (** at [params.batch] *)
  }

  type t = {
    params : params;
    cal : calibration;
    headline_net : string;
    sweep : (string * result) list;  (** includes the headline *)
    batching : batching;
    cosim_nodes : int;
    cosim_bytes : int;
    cosim_packets : int;
  }

  val speedup : batching -> float
  (** [transfers_per_s batched / transfers_per_s batch1]. *)

  val to_json : ?wall_seconds:float -> t -> string
  (** Schema v1. With equal seeds the output is byte-identical except
      for the single ["wall_seconds"] line (only emitted when given) —
      strip lines containing [wall_seconds] before comparing. *)

  val write : path:string -> ?wall_seconds:float -> t -> unit
  (** [to_json] to [path], creating the parent directory if needed. *)
end
