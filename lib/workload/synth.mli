(** Bounded adversary-program synthesis — the campaign engine's first
    real client (ROADMAP "map the whole consent-collusion surface").

    The hand-built rep5-3 collusion channel showed that two adversaries
    can jointly complete a five-access sequence. This module replaces
    the hand-built accomplice with a bounded search: every program of
    up to [slots] ops from a small grammar over the accomplice's two
    shadow-mapped pages —

    - [S p]: initiate on page [p] (a transfer-sized store to its
      shadow alias, plus a memory barrier, exactly the Fig. 5
      attacker's store idiom);
    - [L p]: read page [p]'s shadow alias;

    canonicalised up to page renaming (pages in first-use order; the
    two pages are symmetric by construction, so each pruned sequence
    behaves identically to a canonical one). Each candidate becomes a
    {!Uldma_verify.Campaign.candidate}: a snapshot of a common base
    kernel (rep5-class victim + Fig. 5 attacker + accomplice slot)
    with the candidate program installed and a residual-program
    [key_tag] (a fingerprint of the instruction suffix from the
    current pc — sound because the grammar is straight-line). The
    campaign explores every candidate under every schedule, and a
    {e cell} summarises one (mechanism, net backend) pair into a row
    of the collusion catalogue, including a minimal witness program
    when the cell admits collusion. *)

type op = S of int | L of int  (** page index 0 or 1 *)

val show_op : op -> string

val mnemonic : op list -> string
(** Stable program label, e.g. ["S0.L0.L1"]. *)

val enumerate : ?exact:bool -> slots:int -> unit -> op list array
(** All canonical candidate programs of length 1..[slots], lengths
    ascending and lexicographic within a length (so minimal witnesses
    are simply the first violating entry). The page swap acts freely
    on raw sequences, so there are [4^n / 2] canonical programs per
    length [n]: 2, 10, 42, 170, 682 cumulative for slots 1..5.
    [exact] keeps only the length-[slots] programs — the family whose
    candidates share the most state (cross-candidate memo hits need
    matching bus access counts, which same-length op mixes give),
    used by the bench throughput experiment. *)

type subject =
  | Rep of Uldma_dma.Seq_matcher.variant
  | Pal
  | Key
  | Ext
  | Iommu
  | Capio
      (** The campaign's mechanism axis: the repeated-passing variants
          plus the five other matrix mechanisms. Under [Iommu]/[Capio]
          the shadow window rejects every accomplice access
          ([Unsupported]) — the differential fact the six-mechanism
          catalogue records. *)

val subject_label : subject -> string
(** ["rep3".."rep5"], ["pal"], ["key-based"], ["ext-shadow"],
    ["iommu"], ["capio"] — the catalogue's mech column. *)

val subject_of_string : string -> subject option
(** Inverse of {!subject_label}; also accepts the ["key"] and ["ext"]
    short spellings. *)

val subject_mech : subject -> Uldma.Mech.t
val subject_engine_mechanism : subject -> Uldma_dma.Engine.mechanism

type base
(** A base kernel: victim (one DMA through the cell's mechanism, the
    only declared intent), the Fig. 5 attacker, and the accomplice —
    two fresh shadow-mapped pages and an empty program slot. *)

val make_base : ?net:Uldma_net.Backend.t -> ?repeat:int -> subject -> base
(** [repeat] is the victim's DMA iteration count (default 1). More
    iterations deepen the victim's own subtree — the part every
    candidate shares once the accomplice has exited. Under [Ext] the
    attacker and accomplice are allocated register contexts (extended
    shadow addressing cannot map aliases without one). *)

val base_scenario : base -> Scenario.t

val candidate : base -> op list -> Uldma_verify.Oracle.violation Uldma_verify.Campaign.candidate
(** Snapshot the base, install the program, attach the residual tag.
    NOT safe to call concurrently (snapshotting mutates the base's
    page-ownership flags): build all candidates sequentially, before
    {!Uldma_verify.Campaign.run} spawns domains. *)

val variant_label : Uldma_dma.Seq_matcher.variant -> string
(** ["rep3"] / ["rep4"] / ["rep5"]. *)

val net_label : Uldma_net.Backend.t option -> string
(** [Backend.cache_key], or ["null"]. *)

val kind_name : Uldma_verify.Oracle.violation -> string

(** {2 Campaign cells and the collusion catalogue} *)

type cell = {
  cell_mech : string;
  cell_net : string;
  cell_slots : int;
  cell_candidates : int;
  cell_violating : int;  (** candidates with at least one violation *)
  cell_truncated : int;  (** candidates clipped by [max_paths] *)
  cell_paths : int;
  cell_states : int;
  cell_hits : int;
  cell_witness : string;  (** minimal violating program, ["-"] when safe *)
  cell_witness_violations : int;
  cell_witness_kinds : string;
  cell_results_fp : string;
      (** hex digest of every candidate's (label, paths, truncated,
          violation kinds + schedules) — the warmth- and
          jobs-independent facts, so equal digests mean byte-identical
          per-candidate results. Violation {e payloads} (simulated
          timestamps) are excluded: which schedule prefix first
          discovers a memoized subtree legitimately varies. *)
}

type cell_run = {
  cr_cell : cell;
  cr_ops : op list array;
  cr_results : Uldma_verify.Oracle.violation Uldma_verify.Explorer.result array;
  cr_stats : Uldma_verify.Campaign.stats;
}

val run_cell :
  ?net:Uldma_net.Backend.t ->
  ?repeat:int ->
  ?slots:int ->
  ?exact:bool ->
  ?jobs:int ->
  ?max_paths:int ->
  ?shared:Uldma_verify.Oracle.violation Uldma_verify.Explorer.shared_memo ->
  ?cutoff:int ->
  ?merge_batch:int ->
  subject ->
  cell_run
(** Build the base, enumerate, and run the whole candidate family
    through {!Uldma_verify.Campaign.run}. Defaults: [slots] 3 (49
    candidates), [jobs] 1, [max_paths] 1e6 per candidate. Pass
    [shared] to chain several cells through one table (the generation
    bump keeps their key spaces disjoint). *)

val catalogue_header : string
val catalogue_row : cell -> string

val write_catalogue : string -> cell list -> unit
(** CSV: [catalogue_header] then one row per cell. *)
