(* The builders moved into the core library ([Uldma.Session.Stub]) so
   the Session front-end can use them without a dependency cycle; this
   module keeps the historical name and interface. *)

module S = Uldma.Session.Stub

type loop_spec = S.spec = {
  iterations : int;
  transfer_size : int;
  src_base : int;
  dst_base : int;
  pages : int;
  result_va : int;
}

let build_loop = S.build_loop
let build_repeat = S.build_repeat
let build_single = S.build_single
let read_successes = S.read_successes
let read_last_status = S.read_last_status
