(** Two-process attack scenarios reproducing the paper's interleaving
    figures, plus randomized adversarial campaigns.

    A scenario holds a victim that initiates one DMA (A -> B) with some
    mechanism, and an attacker running an adversarial access sequence.
    [run_legs] drives an exact interleaving at NI-access granularity
    (the granularity of the paper's Fig. 5/6/8 diagrams); [finish] lets
    both run to completion afterwards; [report] audits the run with the
    safety oracle. *)

type t = {
  kernel : Uldma_os.Kernel.t;
  victim : Uldma_os.Process.t;
  attacker : Uldma_os.Process.t;
  intents : Uldma_verify.Oracle.intent list;
  victim_result_va : int;
  attacker_result_va : int option;
      (** set in the contested scenarios, where the second process also
          runs a legitimate DMA and reports its outcome *)
  extras : (Uldma_os.Process.t * int option) list;
      (** third and further processes (the 3-process contested
          workloads), each with its result page when it reports an
          outcome; empty in every two-process scenario *)
  transfer_size : int;
  mutable labels : (int * string) list;
      (** physical page base -> symbolic name (A, B, C, foo, D) *)
}

type leg = V | M

(** The [?net] parameter on {!fig5}, {!rep5} and {!key_contested}
    selects the DMA wire-time model ({!Uldma_net.Backend}): omitted or
    [Backend.Null], transfers complete instantly (the Table-1
    methodology every golden output uses — passing [Backend.null]
    explicitly is byte-identical to the default); a [Backend.Linked]
    backend gives every transfer its link's tick-quantised wire time,
    sys_dma_wait genuinely blocks, and the explorer gains the
    transfer-completion wait leg ({!Uldma_verify.Explorer.wait_leg}). *)

val fig5 : ?net:Uldma_net.Backend.t -> unit -> t
(** The Fig. 5 attack on the 3-access repeated-passing variant: the
    attacker splices shadow(C) into the victim's sequence, starting a
    C -> B transfer. Drive with [fig5_schedule]. *)

val fig5_schedule : leg list

val fig6 : unit -> t
(** The Fig. 6 attack on the 4-access variant: the attacker (with
    read-only access to A) completes the victim's sequence; the DMA
    starts but the victim is told it failed. *)

val fig6_schedule : leg list

val shrimp2_race : hook:bool -> t
(** The §2.5 argument-mixing race on SHRIMP-2. With [hook:false] the
    kernel is unmodified and the race starts an A -> D transfer into
    the attacker's page; with [hook:true] the modified kernel
    invalidates pending arguments at every context switch. *)

val shrimp2_schedule : leg list

val ext_stateless_race : unit -> t
(** The same race against §3.2's contextless extended-shadow engine:
    safe with an unmodified kernel, because the attacker's store
    carries its own context bits and the pair mismatches. *)

val flash_race : hook:bool -> t
(** Same race against the FLASH mechanism; safe only with the
    kernel-maintained current-process register ([hook:true]). *)

val rep5 : ?net:Uldma_net.Backend.t -> unit -> t
(** The five-access method (no retry loop, for bounded exploration)
    against the Fig. 5-style attacker. *)

val rep5_with_retry : unit -> t

val rep5_splice : unit -> t
(** The five-access method against a store-splice adversary: the
    attacker issues S(X) S(X) L(X) on its own page, hoping the victim's
    loads of A fill its sequence's load slots and exfiltrate A into X.
    The §3.3.1 argument covers this shape too; the explorer confirms. *)

val ext_shadow_contested : unit -> t
(** Two tenants, each running one legitimate ext-shadow DMA on its own
    register context. Exhaustive exploration must find both transfers
    happening exactly once under every schedule (§3.2 atomicity). *)

val key_contested : ?net:Uldma_net.Backend.t -> unit -> t
(** Same, for the key-based mechanism (§3.1). *)

val pal_contested : unit -> t
(** Same, for the PAL method (§2.7): the two-access window is
    uninterruptible, so even the single pending slot cannot mix. *)

val iommu_contested : ?net:Uldma_net.Backend.t -> unit -> t
(** Same, for IOMMU virtual-address DMA: two tenants pass virtual
    addresses through their own register contexts; the engine
    translates through the IOTLB. *)

val capio_contested : ?net:Uldma_net.Backend.t -> unit -> t
(** Same, for CAPIO capability-checked DMA: each tenant fires with its
    own kernel-minted capabilities. *)

val iommu_fig5 : ?net:Uldma_net.Backend.t -> unit -> t
(** The Fig. 5 splicer against an IOMMU victim. IOMMU initiation never
    touches the shadow window, so every attacker access is rejected
    [Unsupported] — exploration must find every schedule SAFE. *)

val capio_fig5 : ?net:Uldma_net.Backend.t -> unit -> t
(** Same splicer against a CAPIO victim; same expectation. *)

val capio_launder : ?net:Uldma_net.Backend.t -> unit -> t
(** The rep5-style accomplice retargeted at CAPIO: the accomplice has
    learned the victim's capability values and replays them through
    its {e own} register context. The laundering is rejected under
    every schedule — [Bad_capability] (context binding) while the
    victim is alive, [Revoked_capability] once the victim has exited
    and its caps were revoked by pid — a capability is not a bearer
    token here, it names its context and dies with its grantor. *)

val key_contested3 : ?victim_repeat:int -> ?tenant_repeat:int -> unit -> t
(** Three concurrent tenants of the key-based mechanism: one victim and
    two tenants, each initiating [victim_repeat] / [tenant_repeat]
    (default 1 each — key-based initiation is 4 NI accesses, so one
    initiation per process already gives a ~7.6e5-schedule tree)
    legitimate DMAs on its own pages. Sized so parallel exploration
    ([--jobs]) has real work to divide. Safety: every DMA happens
    exactly its requested number of times with no argument mixing,
    under every three-way schedule. *)

val ext_shadow_contested3 : ?victim_repeat:int -> ?tenant_repeat:int -> unit -> t
(** Same, for the extended-shadow mechanism (defaults 2 and 2: also a
    ~7.6e5-schedule tree). [~victim_repeat:1 ~tenant_repeat:1] gives a
    1680-schedule tree, small enough for unit tests that still
    exercise three-way interleaving. *)

val iommu_contested3 : ?victim_repeat:int -> ?tenant_repeat:int -> unit -> t
(** Three concurrent IOMMU tenants (defaults 1 and 1: 4-NI-access
    initiation gives the same ~7.6e5-schedule band as
    [key_contested3]). *)

val capio_contested3 : ?victim_repeat:int -> ?tenant_repeat:int -> unit -> t
(** Three concurrent CAPIO tenants, same sizing. *)

val rep5_contested3 : unit -> t
(** The five-access method against both adversary shapes at once: the
    Fig. 5 splicer and the store-splice attacker race one rep5 victim
    in a single three-process (~6.3e5-schedule) tree. Exploration
    shows the victim's §3.3.1 property holds — no violation ever
    touches a victim page and the victim's outcome is always truthful
    — while the strict oracle additionally flags a {e collusion
    channel}: the two adversaries can jointly complete a five-access
    sequence and start a C -> X transfer between their {e own} pages.
    Each colluder could legitimately request the same transfer, so the
    channel is benign by consent and outside the paper's threat model,
    but the oracle (which audits addresses against declared intents,
    like the hardware would) rightly reports it as unattributed. *)

val processes : t -> Uldma_os.Process.t list
(** Victim, attacker, then [extras], in spawn order. *)

val explore_pids : t -> int list
(** The pid list to hand to {!Uldma_verify.Explorer.explore} —
    [processes] projected to pids. *)

val oracle_report : t -> Uldma_os.Kernel.t -> Uldma_verify.Oracle.report
(** Audit an arbitrary kernel state (typically an explorer terminal
    snapshot) against the scenario's intents, reading each reporting
    process's success count out of that state. *)

val oracle_check : t -> Uldma_os.Kernel.t -> Uldma_verify.Oracle.violation option
(** [oracle_report] as an explorer [check]: the first violation, if
    any. Pure — safe on worker domains. *)

val run_legs : t -> leg list -> unit
(** Advance the named process by one NI access per leg. *)

val finish : t -> ?max_steps:int -> unit -> unit
(** Round-robin both processes until they exit. *)

val run_random : t -> seed:int -> switch_probability:float -> unit
(** Run the whole scenario under a randomized preemptive schedule
    (10%-per-instruction switches by default semantics of the seed). *)

val report : t -> Uldma_verify.Oracle.report
val victim_successes : t -> int
val victim_last_status : t -> int
val transfers : t -> Uldma_dma.Transfer.t list

val access_timeline : t -> (Uldma_util.Units.ps * string * string) list
(** The engine-visible access stream of the run, in bus order, with
    symbolic page names (A, B, C, foo, D) — a regeneration of the
    paper's Fig. 5/6 interleaving diagrams. Each entry is
    (time, actor, rendered access). Requires the scenario to have been
    driven by [run_legs]/[finish] (tracing is on by default). *)

val label_of_paddr : t -> int -> string
(** Symbolic name for a physical address ("A+0x40", "shadow(C)"), used
    by [access_timeline]. *)

(** {2 Scenario building blocks}

    The pieces the hand-built scenarios above are assembled from,
    exposed so program synthesis ({!Synth}) can build whole families
    of scenarios that differ only in one process's program. *)

val transfer_size : int
(** Bytes per DMA in every scenario (one cache-line-ish unit). *)

val make_kernel : ?net:Uldma_net.Backend.t -> Uldma_dma.Engine.mechanism -> Uldma_os.Kernel.t
(** A 64-page machine with round-robin scheduling, bus tracing on and
    the given protection mechanism / net backend. *)

val make_victim :
  ?repeat:int ->
  Uldma_os.Kernel.t ->
  Uldma.Mech.t ->
  emit_override:(Uldma_cpu.Asm.t -> unit) option ->
  Uldma_os.Process.t * int * int * int * Uldma_verify.Oracle.intent
(** Spawn the standard victim ([repeat] DMAs A -> B, reporting into a
    result page): [(victim, a_va, b_va, result_va, intent)]. *)

val fig5_attacker :
  ?with_context:bool -> Uldma_os.Kernel.t -> Uldma_os.Process.t * (int * string) list
(** Spawn the Fig. 5 attacker (S(foo) L(foo) L(C) L(C) over its own
    shadow-mapped pages): [(attacker, page labels)]. [with_context]
    (default false) allocates it a register context first — required
    before shadow-mapping under the extended-shadow mechanism. *)

val shadow : int -> int -> Uldma_cpu.Asm.t -> unit
(** [shadow rd rs asm]: emit [rs := rd + shadow_va_offset], turning a
    data va in [rd] into its DMA-window shadow alias in [rs]. *)

val page_label : Uldma_os.Kernel.t -> Uldma_os.Process.t -> int -> string -> int * string
(** [(physical page base of va, name)] for the [labels] field. *)
