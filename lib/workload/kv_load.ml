open Uldma_util
open Uldma_net

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

type params = {
  nodes : int;
  clients : int;
  transfers : int;
  batch : int;
  window : int;
  value_size : int;
  get_ratio : float;
  seed : int;
  mech : string;
}

let default_params =
  {
    nodes = 4;
    clients = 1000;
    transfers = 1_000_000;
    batch = 8;
    window = 32;
    value_size = 64;
    get_ratio = 0.5;
    seed = 42;
    mech = "ext-shadow";
  }

let validate_params p =
  if p.nodes < 2 || p.nodes > Uldma.Cluster.max_nodes then
    Error (Printf.sprintf "nodes must be in 2..%d (got %d)" Uldma.Cluster.max_nodes p.nodes)
  else if p.clients < 1 then Error "clients must be >= 1"
  else if p.transfers < 1 then Error "transfers must be >= 1"
  else if p.batch < 1 then Error "batch must be >= 1"
  else if p.window < 1 then Error "window must be >= 1"
  else if p.value_size < 1 then Error "value-size must be >= 1"
  else if not (p.get_ratio >= 0.0 && p.get_ratio <= 1.0) then
    Error "get-ratio must be in [0, 1]"
  else Ok p

(* ------------------------------------------------------------------ *)
(* Calibration: run the real mechanism, read the clock.                *)
(* ------------------------------------------------------------------ *)

type calibration = {
  cal_mech : string;
  initiation_ps : int;
  submit_ps : int;
  service_base_ps : int;
  ram_bytes_per_s : float;
}

let calibrate ?(iterations = 256) ?config mech =
  match Uldma.Api.find mech with
  | None ->
    Error
      (Printf.sprintf "unknown mechanism %S (expected one of: %s)" mech
         (String.concat ", " Uldma.Api.names))
  | Some m ->
    (* Table-1 methodology on the Null backend: the clock delta per
       iteration is pure initiation cost (loop overhead included, which
       is honest — a real submission loop pays it too). *)
    let s = Uldma.Session.of_mech ?config m in
    let p = Uldma.Session.process s ~name:"cal" () in
    Uldma.Session.dma_stub ~iterations ~transfer_size:64 s p;
    Uldma.Session.run_exn s;
    let initiation_ps = Uldma.Session.now_ps s / iterations in
    let timing = Uldma_os.Kernel.timing (Uldma.Session.kernel s) in
    (* enqueue one descriptor: build it in registers and store it to
       the (cached) submission queue *)
    let submit_ps =
      (2 * Uldma_bus.Timing.instruction_ps timing) + (2 * Uldma_bus.Timing.cached_access_ps timing)
    in
    Ok
      {
        cal_mech = mech;
        initiation_ps;
        submit_ps;
        service_base_ps = Units.ns 500.0;
        ram_bytes_per_s = 1e9;
      }

(* ------------------------------------------------------------------ *)
(* Instruction-level validation burst over the real mesh.              *)
(* ------------------------------------------------------------------ *)

let cosim_burst cluster ~words =
  let open Uldma_os in
  let module C = Uldma.Cluster in
  let n = C.nodes cluster in
  for src = 0 to n - 1 do
    let kernel = C.node cluster src in
    let dst = (src + 1) mod n in
    let p = Kernel.spawn kernel ~name:(Printf.sprintf "burst%d" src) ~program:[||] () in
    (* write into the last page of the successor's RAM: the frame
       allocator hands out low frames first, so the top page is free *)
    let peer_ram = (Kernel.config (C.node cluster dst)).Kernel.ram_size in
    let vaddr =
      C.map_remote cluster ~src ~dst p
        ~remote_paddr:(peer_ram - Uldma_mem.Layout.page_size)
        ~n:1 ~perms:Uldma_mem.Perms.read_write
    in
    let open Uldma_cpu in
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm "loop" in
    Asm.li asm 10 vaddr;
    Asm.li asm 11 words;
    Asm.li asm 12 0;
    Asm.label asm loop;
    Asm.store asm ~base:10 ~off:0 12;
    Asm.add asm 10 10 (Isa.Imm 8);
    Asm.add asm 12 12 (Isa.Imm 1);
    Asm.blt asm 12 11 loop;
    Asm.halt asm;
    Process.set_program p (Asm.assemble asm)
  done;
  (match C.run cluster () with
  | C.All_exited -> ()
  | C.Max_steps | C.Predicate -> failwith "Kv_load.cosim_burst: cluster did not converge");
  let bytes = ref 0 and packets = ref 0 in
  for i = 0 to n - 1 do
    bytes := !bytes + C.write_bytes_into cluster i;
    packets := !packets + C.packets_into cluster i
  done;
  (!bytes, !packets)

(* ------------------------------------------------------------------ *)
(* The discrete-event load generator.                                  *)
(*                                                                     *)
(* Resources: one shared CPU per node (clients contend FCFS for        *)
(* descriptor writes and doorbells), one NI engine per node (serves    *)
(* GET/PUT value movement), and one wire per ordered node pair with    *)
(* exactly Netif's timing algebra: departure waits for the wire to be  *)
(* free, serialisation occupies it, latency pipelines.                 *)
(* ------------------------------------------------------------------ *)

type result = {
  net_name : string;
  transfers : int;
  gets : int;
  puts : int;
  doorbells : int;
  value_bytes : int;
  wire_bytes : int;
  latency : Uldma_obs.Percentile.t;
  sim_ps : int;
  counters : Uldma_obs.Counters.t;
}

let header_bytes = 32 (* request header: op, key, length, sequence *)
let ack_bytes = 16 (* PUT acknowledgement *)

type desc = {
  d_dst : int;
  d_req_bytes : int;
  d_resp_bytes : int;
  d_submit_at : int;
}

type ev =
  | Step of int  (** client wakes to submit / flush *)
  | Rx of { rx_c : int; rx_src : int; rx_dst : int; rx_resp : int; rx_submit : int }
  | Done of { dn_c : int; dn_submit : int }

let run p ~cal ~net =
  (match validate_params p with Ok _ -> () | Error e -> invalid_arg ("Kv_load.run: " ^ e));
  let n = p.nodes in
  let link = match Backend.link net with Some l -> l | None -> Link.instant in
  let client_node c = c mod n in
  (* per-ordered-pair wire occupancy, Netif's busy_until *)
  let wire_busy = Array.make (n * n) 0 in
  let cpu_free = Array.make n 0 in
  let engine_free = Array.make n 0 in
  let remaining = Array.make p.clients 0 in
  let outstanding = Array.make p.clients 0 in
  let ready = Array.make p.clients 0 in
  let parked = Array.make p.clients false in
  let pending = Array.make p.clients [] in
  let pending_len = Array.make p.clients 0 in
  let base = p.transfers / p.clients and extra = p.transfers mod p.clients in
  for c = 0 to p.clients - 1 do
    remaining.(c) <- (base + if c < extra then 1 else 0)
  done;
  let rngs = Array.init p.clients (fun c -> Rng.create ~seed:(p.seed + (31 * c) + 1)) in
  let heap = Pqueue.create () in
  let latency = Uldma_obs.Percentile.create () in
  let counters = Uldma_obs.Counters.create () in
  let gets = ref 0 and puts = ref 0 and doorbells = ref 0 in
  let value_bytes = ref 0 and wire_bytes = ref 0 in
  let completed = ref 0 and sim_end = ref 0 in
  let send ~src ~dst ~now bytes =
    let k = (src * n) + dst in
    let depart = max now wire_busy.(k) in
    wire_busy.(k) <- depart + Units.transfer_ps ~bytes_per_s:link.Link.bytes_per_s bytes;
    wire_bytes := !wire_bytes + bytes;
    depart + Link.wire_time_ps link bytes
  in
  let flush c =
    if pending_len.(c) > 0 then begin
      let node = client_node c in
      (* the doorbell: one verified initiation sequence, whatever the
         batch size — this is the scaling lever *)
      let start = max ready.(c) cpu_free.(node) in
      let fin = start + cal.initiation_ps in
      ready.(c) <- fin;
      cpu_free.(node) <- fin;
      incr doorbells;
      List.iter
        (fun d ->
          let arrive = send ~src:node ~dst:d.d_dst ~now:fin d.d_req_bytes in
          Pqueue.push heap ~key:arrive
            (Rx
               {
                 rx_c = c;
                 rx_src = node;
                 rx_dst = d.d_dst;
                 rx_resp = d.d_resp_bytes;
                 rx_submit = d.d_submit_at;
               }))
        (List.rev pending.(c));
      pending.(c) <- [];
      pending_len.(c) <- 0
    end
  in
  let step c now =
    let node = client_node c in
    if remaining.(c) > 0 && outstanding.(c) < p.window then begin
      (* enqueue one descriptor in the process's submission queue *)
      let start = max (max now ready.(c)) cpu_free.(node) in
      let fin = start + cal.submit_ps in
      ready.(c) <- fin;
      cpu_free.(node) <- fin;
      let rng = rngs.(c) in
      let dst = (node + 1 + Rng.int rng (n - 1)) mod n in
      let is_get = Rng.chance rng p.get_ratio in
      if is_get then incr gets else incr puts;
      let d_req_bytes = header_bytes + if is_get then 0 else p.value_size in
      let d_resp_bytes = if is_get then header_bytes + p.value_size else ack_bytes in
      pending.(c) <- { d_dst = dst; d_req_bytes; d_resp_bytes; d_submit_at = fin } :: pending.(c);
      pending_len.(c) <- pending_len.(c) + 1;
      remaining.(c) <- remaining.(c) - 1;
      outstanding.(c) <- outstanding.(c) + 1;
      if pending_len.(c) >= p.batch || remaining.(c) = 0 then flush c;
      Pqueue.push heap ~key:ready.(c) (Step c)
    end
    else if remaining.(c) > 0 then begin
      (* window full: push out what we have and sleep on a completion *)
      flush c;
      parked.(c) <- true
    end
    else flush c
  in
  for c = 0 to p.clients - 1 do
    if remaining.(c) > 0 then Pqueue.push heap ~key:0 (Step c)
  done;
  let total = p.transfers in
  let continue = ref true in
  while !continue do
    match Pqueue.pop heap with
    | None -> continue := false
    | Some (now, ev) -> (
      match ev with
      | Step c -> step c now
      | Rx { rx_c; rx_src; rx_dst; rx_resp; rx_submit } ->
        (* the target node's NI serves the request: fixed cost plus the
           value moving through its memory system. No server CPU — the
           whole point of user-level DMA as a service. *)
        let start = max now engine_free.(rx_dst) in
        let fin =
          start + cal.service_base_ps
          + Units.transfer_ps ~bytes_per_s:cal.ram_bytes_per_s p.value_size
        in
        engine_free.(rx_dst) <- fin;
        let arrive = send ~src:rx_dst ~dst:rx_src ~now:fin rx_resp in
        Pqueue.push heap ~key:arrive (Done { dn_c = rx_c; dn_submit = rx_submit })
      | Done { dn_c; dn_submit } ->
        Uldma_obs.Percentile.record latency (now - dn_submit);
        Uldma_obs.Counters.observe counters "kv.latency_ps" (now - dn_submit);
        value_bytes := !value_bytes + p.value_size;
        outstanding.(dn_c) <- outstanding.(dn_c) - 1;
        incr completed;
        if now > !sim_end then sim_end := now;
        if parked.(dn_c) then begin
          parked.(dn_c) <- false;
          Pqueue.push heap ~key:(max now ready.(dn_c)) (Step dn_c)
        end)
  done;
  if !completed <> total then
    failwith
      (Printf.sprintf "Kv_load.run: internal stall (%d of %d transfers completed)" !completed
         total);
  Uldma_obs.Counters.add counters "kv.requests" total;
  Uldma_obs.Counters.add counters "kv.gets" !gets;
  Uldma_obs.Counters.add counters "kv.puts" !puts;
  Uldma_obs.Counters.add counters "kv.doorbells" !doorbells;
  Uldma_obs.Counters.add counters "kv.wire_bytes" !wire_bytes;
  Uldma_obs.Counters.add counters "kv.value_bytes" !value_bytes;
  {
    net_name = Backend.name net;
    transfers = total;
    gets = !gets;
    puts = !puts;
    doorbells = !doorbells;
    value_bytes = !value_bytes;
    wire_bytes = !wire_bytes;
    latency;
    sim_ps = !sim_end;
    counters;
  }

let sweep ?(jobs = 1) p ~cal backends =
  if jobs <= 1 || List.length backends <= 1 then
    List.map (fun (name, net) -> (name, run p ~cal ~net)) backends
  else begin
    (* each run is pure and deterministic, so fanning out over domains
       cannot change the result — only the wall clock *)
    let slots = Array.of_list backends in
    let out = Array.map (fun (name, _) -> (name, None)) slots in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length slots then begin
          let name, net = slots.(i) in
          out.(i) <- (name, Some (run p ~cal ~net));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (min (jobs - 1) (Array.length slots - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function name, Some r -> (name, r) | _, None -> assert false)
         out)
  end

let sim_seconds r = float_of_int r.sim_ps *. 1e-12
let transfers_per_s r = float_of_int r.transfers /. sim_seconds r
let gbps r = float_of_int (r.value_bytes * 8) /. sim_seconds r /. 1e9

(* ------------------------------------------------------------------ *)
(* Machine-readable report                                             *)
(* ------------------------------------------------------------------ *)

module Report = struct
  type batching = { bat_net : string; batch1 : result; batched : result }

  type t = {
    params : params;
    cal : calibration;
    headline_net : string;
    sweep : (string * result) list;
    batching : batching;
    cosim_nodes : int;
    cosim_bytes : int;
    cosim_packets : int;
  }

  let speedup b = transfers_per_s b.batched /. transfers_per_s b.batch1

  let pct r q = Uldma_obs.Percentile.percentile r.latency q

  let emit_result buf ~indent r =
    let pad = String.make indent ' ' in
    Printf.bprintf buf "%s\"transfers\": %d,\n" pad r.transfers;
    Printf.bprintf buf "%s\"gets\": %d,\n" pad r.gets;
    Printf.bprintf buf "%s\"puts\": %d,\n" pad r.puts;
    Printf.bprintf buf "%s\"doorbells\": %d,\n" pad r.doorbells;
    Printf.bprintf buf "%s\"value_bytes\": %d,\n" pad r.value_bytes;
    Printf.bprintf buf "%s\"wire_bytes\": %d,\n" pad r.wire_bytes;
    Printf.bprintf buf "%s\"p50_ps\": %d,\n" pad (pct r 0.50);
    Printf.bprintf buf "%s\"p99_ps\": %d,\n" pad (pct r 0.99);
    Printf.bprintf buf "%s\"p999_ps\": %d,\n" pad (pct r 0.999);
    Printf.bprintf buf "%s\"mean_ps\": %.1f,\n" pad (Uldma_obs.Percentile.mean r.latency);
    Printf.bprintf buf "%s\"min_ps\": %d,\n" pad (Uldma_obs.Percentile.min_value r.latency);
    Printf.bprintf buf "%s\"max_ps\": %d,\n" pad (Uldma_obs.Percentile.max_value r.latency);
    Printf.bprintf buf "%s\"sim_seconds\": %.9f,\n" pad (sim_seconds r);
    Printf.bprintf buf "%s\"transfers_per_s\": %.1f,\n" pad (transfers_per_s r);
    Printf.bprintf buf "%s\"goodput_gbps\": %.6f\n" pad (gbps r)

  let to_json ?wall_seconds t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"schema_version\": 1,\n";
    Printf.bprintf buf "  \"bench\": \"cluster\",\n";
    (match wall_seconds with
    | Some w -> Printf.bprintf buf "  \"wall_seconds\": %.3f,\n" w
    | None -> ());
    Printf.bprintf buf "  \"params\": {\n";
    Printf.bprintf buf "    \"nodes\": %d,\n" t.params.nodes;
    Printf.bprintf buf "    \"clients\": %d,\n" t.params.clients;
    Printf.bprintf buf "    \"transfers\": %d,\n" t.params.transfers;
    Printf.bprintf buf "    \"batch\": %d,\n" t.params.batch;
    Printf.bprintf buf "    \"window\": %d,\n" t.params.window;
    Printf.bprintf buf "    \"value_size_bytes\": %d,\n" t.params.value_size;
    Printf.bprintf buf "    \"get_ratio\": %.3f,\n" t.params.get_ratio;
    Printf.bprintf buf "    \"seed\": %d,\n" t.params.seed;
    Printf.bprintf buf "    \"mech\": %S,\n" t.params.mech;
    Printf.bprintf buf "    \"net\": %S\n" t.headline_net;
    Printf.bprintf buf "  },\n";
    Printf.bprintf buf "  \"calibration\": {\n";
    Printf.bprintf buf "    \"mech\": %S,\n" t.cal.cal_mech;
    Printf.bprintf buf "    \"initiation_ps\": %d,\n" t.cal.initiation_ps;
    Printf.bprintf buf "    \"submit_ps\": %d,\n" t.cal.submit_ps;
    Printf.bprintf buf "    \"service_base_ps\": %d,\n" t.cal.service_base_ps;
    Printf.bprintf buf "    \"ram_bytes_per_s\": %.0f\n" t.cal.ram_bytes_per_s;
    Printf.bprintf buf "  },\n";
    Printf.bprintf buf "  \"cosim\": {\n";
    Printf.bprintf buf "    \"nodes\": %d,\n" t.cosim_nodes;
    Printf.bprintf buf "    \"write_bytes\": %d,\n" t.cosim_bytes;
    Printf.bprintf buf "    \"packets\": %d\n" t.cosim_packets;
    Printf.bprintf buf "  },\n";
    Printf.bprintf buf "  \"backends\": {\n";
    let rec emit_sweep = function
      | [] -> ()
      | (name, r) :: rest ->
        Printf.bprintf buf "    %S: {\n" name;
        emit_result buf ~indent:6 r;
        Printf.bprintf buf "    }%s\n" (if rest = [] then "" else ",");
        emit_sweep rest
    in
    emit_sweep t.sweep;
    Printf.bprintf buf "  },\n";
    Printf.bprintf buf "  \"batching\": {\n";
    Printf.bprintf buf "    \"net\": %S,\n" t.batching.bat_net;
    Printf.bprintf buf "    \"batch1\": {\n";
    emit_result buf ~indent:6 t.batching.batch1;
    Printf.bprintf buf "    },\n";
    Printf.bprintf buf "    \"batched\": {\n";
    emit_result buf ~indent:6 t.batching.batched;
    Printf.bprintf buf "    },\n";
    Printf.bprintf buf "    \"batch\": %d,\n" t.params.batch;
    Printf.bprintf buf "    \"speedup\": %.3f\n" (speedup t.batching);
    Printf.bprintf buf "  }\n";
    Buffer.add_string buf "}\n";
    Buffer.contents buf

  let write ~path ?wall_seconds t =
    let dir = Filename.dirname path in
    if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out path in
    output_string oc (to_json ?wall_seconds t);
    close_out oc
end
