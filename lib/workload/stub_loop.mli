(** User-program builders around the mechanism stubs.

    Every built program counts the initiations whose status was
    non-negative (success, §3.1) in a register and stores, on exit,
    the success count at [result_va] and the last status at
    [result_va + 8] — the channel through which the harness and the
    oracle learn what the process believes happened.

    The measurement loop reproduces the paper's Table 1 methodology:
    "we perform a simple test of initiating 1,000 DMA operations.
    Successive DMA operations were done to (from) different addresses,
    so as to eliminate any caching effects". *)

type loop_spec = Uldma.Session.Stub.spec = {
  iterations : int;
  transfer_size : int;
  src_base : int; (** base of the source region *)
  dst_base : int;
  pages : int; (** pages cycled through; must be a power of two *)
  result_va : int;
}

val build_loop : loop_spec -> emit_dma:(Uldma_cpu.Asm.t -> unit) -> Uldma_cpu.Isa.instr array

val build_single :
  vsrc:int ->
  vdst:int ->
  size:int ->
  result_va:int ->
  emit_dma:(Uldma_cpu.Asm.t -> unit) ->
  Uldma_cpu.Isa.instr array
(** One initiation, then record results and halt. *)

val build_repeat :
  n:int ->
  vsrc:int ->
  vdst:int ->
  size:int ->
  result_va:int ->
  emit_dma:(Uldma_cpu.Asm.t -> unit) ->
  Uldma_cpu.Isa.instr array
(** [n] initiations of the same transfer (for contention scenarios). *)

val read_successes : Uldma_os.Kernel.t -> Uldma_os.Process.t -> result_va:int -> int
val read_last_status : Uldma_os.Kernel.t -> Uldma_os.Process.t -> result_va:int -> int
