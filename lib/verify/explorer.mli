(** Exhaustive bounded interleaving exploration — a machine-checked
    version of the paper's §3.3.1 correctness argument (Fig. 8).

    The explorer enumerates *every* schedule of a set of processes and
    evaluates a safety check at every terminal state. Enumerating at
    single-instruction granularity would be wasteful: instructions that
    do not touch the network interface only affect the issuing
    process's private registers and private memory, so interleavings
    that differ only in their placement commute. The explorer therefore
    branches at {e NI-access granularity}: one scheduling "leg" runs a
    process up to and including its next uncached (engine-visible) bus
    transaction. This is exactly the granularity of the paper's own
    Fig. 5/6/8 interleaving diagrams.

    States are forked with [Kernel.snapshot] (copy-on-write RAM and
    persistent page tables, so a fork is cheap even with large RAM) and
    a leg's NI accesses are counted by the bus's O(1) per-pid counters
    rather than by scanning the trace.

    On top of the leg-granular tree the explorer {e deduplicates
    states}: two schedule prefixes that reach the same engine-visible
    state ([Kernel.state_encoding]) share one subtree expansion, and
    [paths] is counted through the resulting DAG rather than re-walked.
    Memoized subtrees carry their violation schedules as suffixes and
    re-emit them under each new prefix, so deduplication (and
    parallelism) change cost, never results: [paths], the violating
    schedules, and even their order are identical with [dedup] on or
    off and with any [jobs] value (exactly, whenever [max_paths] is not
    hit; under truncation a parallel run may tie-break differently).
    One caveat: a memo hit re-emits the ['v] value computed on the
    first-discovered prefix, so payload fields outside the dedup
    abstraction — simulated timestamps, chiefly — may differ from what
    a brute-force run would compute for the same schedule.
    With [jobs > 1] a sequential prefix expansion seeds a deque of
    subtree roots that worker domains drain, sharing a sharded memo
    table; [check] then runs on worker domains and must be pure (the
    standard oracles are). *)

type 'v result = {
  paths : int; (** complete schedules explored (counted through the DAG) *)
  violations : ('v * int list) list;
      (** violation + the pid schedule (one pid per leg) that reached it *)
  truncated : bool; (** the path budget was hit; exploration is incomplete *)
  states_visited : int;
      (** nodes actually expanded (memo misses + terminals); with dedup
          this is the DAG size, without it the full tree size *)
  dedup_hits : int; (** subtree expansions avoided by the memo table *)
  stuck_legs : int;
      (** legs abandoned because a pid exceeded the per-leg instruction
          budget without an NI access; only those branches are pruned,
          their siblings are still explored *)
}

val explore :
  root:Uldma_os.Kernel.t ->
  pids:int list ->
  ?max_instructions_per_leg:int ->
  ?max_paths:int ->
  ?dedup:bool ->
  ?jobs:int ->
  check:(Uldma_os.Kernel.t -> 'v option) ->
  unit ->
  'v result
(** [check] runs at each terminal state (all of [pids] exited or
    stuck). Defaults: 2000 instructions per leg, 1_000_000 paths,
    [dedup] on, [jobs] 1. The root kernel is not mutated. With
    [jobs > 1], [check] runs on worker domains and must be pure. *)

val advance_one_leg : Uldma_os.Kernel.t -> int -> max_instructions:int -> [ `Progress | `Exited | `Stuck ]
(** Run pid until its next NI access completes (or it exits). Exposed
    for tests. *)
