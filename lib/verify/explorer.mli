(** Exhaustive bounded interleaving exploration — a machine-checked
    version of the paper's §3.3.1 correctness argument (Fig. 8).

    The explorer enumerates *every* schedule of a set of processes and
    evaluates a safety check at every terminal state. Enumerating at
    single-instruction granularity would be wasteful: instructions that
    do not touch the network interface only affect the issuing
    process's private registers and private memory, so interleavings
    that differ only in their placement commute. The explorer therefore
    branches at {e NI-access granularity}: one scheduling "leg" runs a
    process up to and including its next uncached (engine-visible) bus
    transaction. This is exactly the granularity of the paper's own
    Fig. 5/6/8 interleaving diagrams.

    {2 Timed backends and the wait leg}

    Under a timed net backend ([Kernel.Timed], built from
    {!Uldma_net.Backend}) transfers stay in flight for a real wire
    time, and "let the wire drain before anyone touches the NI again"
    becomes a scheduling decision of its own. Whenever a transfer is in
    flight the explorer therefore offers one extra leg, {!wait_leg}
    (pseudo-pid [-2], ordered after every real pid): it idles the
    machine to the next transfer completion instead of running a
    process. Terminal states require both no runnable process and
    nothing in flight. Dedup stays sound because the state encoding
    folds in each transfer's {e exact} remaining-time-at-now (see
    [Kernel.state_encoding]); the schedule tree stays finite because a
    backend's durations are quantised to its tick, which caps how many
    distinct deadline patterns the legs between two NI accesses can
    produce. With the zero-duration Null backend no deadline ever
    exists, no wait leg is ever offered, and trees (and goldens) are
    exactly as before.

    States are forked with [Kernel.snapshot] (copy-on-write RAM and
    persistent page tables, so a fork is cheap even with large RAM) and
    a leg's NI accesses are counted by the bus's O(1) per-pid counters
    rather than by scanning the trace.

    On top of the leg-granular tree the explorer {e deduplicates
    states}: two schedule prefixes that reach the same engine-visible
    state ([Kernel.state_encoding]) share one subtree expansion, and
    [paths] is counted through the resulting DAG rather than re-walked.
    Memoized subtrees carry their violation schedules as suffixes and
    re-emit them under each new prefix, so deduplication (and
    parallelism) change cost, never results: [paths], the violating
    schedules, and even their order are identical with [dedup] on or
    off and with any [jobs] value — including under truncation (see
    the lease discussion below). One caveat: a memo hit re-emits the
    ['v] value computed on the first-discovered prefix, so payload
    fields outside the dedup abstraction — simulated timestamps,
    chiefly — may differ from what a brute-force run would compute for
    the same schedule.

    {2 Parallel driver (work stealing)}

    With [jobs > 1] every worker domain owns a private Chase–Lev deque
    ([Ws_deque]); the root subtree seeds one of them and load balance
    is dynamic: while any domain is hungry, a worker expanding a tree
    node publishes the node's unexpanded sibling legs onto its own
    deque and descends only into the first, so thieves peel off the
    shallowest — largest — published subtrees and a long-running
    subtree keeps shedding work for as long as anyone is idle.
    Termination is detected with an atomic in-flight task counter.
    [check] then runs on worker domains and must be pure (the standard
    oracles are).

    Three mechanisms keep the parallel driver from paying for its own
    machinery (DESIGN.md §5f):

    - {e Sequential cutoff}: a node is published only when its
      estimated subtree size (remaining depth × spare width) clears an
      adaptive threshold; small subtrees run inline with no deque, no
      fork a thief could take, and — with domain-local generations —
      no shard locks. Hungry domains failing to steal lower the
      threshold (bootstrapping an empty system); publications nobody
      steals raise it. The equilibrium value is reported as [cutoff].
    - {e Domain-local memo generations}: each worker writes summaries
      to a private unsynchronised generation, merged into the shared
      sharded table in batches at task boundaries ([memo_merges]
      counts them). Shards are owned by the first domain to merge into
      them, and a worker hitting another domain's shard prefers
      stealing from that domain next.
    - {e Truncation leases}: [max_paths] is split into per-task leases
      at publication, and every run logs what it finds in DFS order; a
      final settlement walk replays the log against the real budget.
      Violations therefore come out in DFS (pid-rank lexicographic)
      order — the sequential emission order — with no sorting, and a
      truncated parallel run reproduces the {e exact} sequential
      clipped frontier: same [paths], same violation list and order,
      same [truncated] flag at every [jobs] value. The one field that
      stays best-effort in a {e truncated parallel} run is
      [stuck_legs] (stuck legs are not individually positioned in the
      log); it is exact sequentially and whenever the run completes.

    {2 Memo bounding and persistence}

    The memo table is {e bounded} ([memo_cap] summaries in the hot
    generation; two-generation rotation with promotion on touch — see
    {!Memo}). Eviction costs re-expansion only, so sequential results
    are bit-identical to an unbounded table while peak memory stays
    capped. [evictions] in the result counts discarded summaries.

    [memo_file] names an optional {e persistent} cache: violation-free
    subtree summaries are saved on completion and seed lookups on the
    next run, keyed by [memo_key] and guarded by a schema version plus
    the root kernel's fingerprint (see {!Memo.Persist}); a stale or
    foreign file is ignored wholesale. Because only safe summaries are
    persisted, a warm start can skip work but can never mask a
    violation. *)

type 'v result = {
  paths : int; (** complete schedules explored (counted through the DAG) *)
  violations : ('v * int list) list;
      (** violation + the pid schedule (one pid per leg) that reached it *)
  truncated : bool; (** the path budget was hit; exploration is incomplete *)
  states_visited : int;
      (** nodes actually expanded (memo misses + terminals); with dedup
          this is the DAG size, without it the full tree size *)
  dedup_hits : int; (** subtree expansions avoided by the memo table *)
  stuck_legs : int;
      (** legs abandoned because a pid exceeded the per-leg instruction
          budget without an NI access; only those branches are pruned,
          their siblings are still explored *)
  evictions : int;
      (** memo summaries discarded by the bounded table's generation
          rotation (0 when the table never filled) *)
  steals : int;
      (** tasks taken from another domain's deque (0 when [jobs] = 1) *)
  publications : int;
      (** subtree-root tasks published for stealing (0 when [jobs] = 1);
          kept low by the adaptive cutoff *)
  lease_splits : int;
      (** published tasks whose lease was strictly below [max_paths] —
          i.e. publications where truncation accounting actually had to
          split the budget *)
  memo_merges : int;
      (** domain-local memo generations merged into the shared table
          (0 when [jobs] = 1, where writes go straight to the single
          unlocked shard) *)
  cutoff : int;
      (** final value of the adaptive publication threshold (the
          initial default when [jobs] = 1, where nothing adapts it) *)
  snapshots : int;
      (** [Kernel.snapshot] calls made (seed + per-leg forks). A node's
          final leg advances its parent in place — the parent is dead
          after the expansion loop — so a width-w node pays w-1 copies
          and width-1 chains pay none. *)
  bytes_hashed : int;
      (** bytes fed into memo-key computation: streamed walk tokens
          plus page-digest cache fills in fingerprint mode, full
          encoding lengths in [paranoid_memo] mode. The per-node ratio
          is the bench's [bytes_hashed_per_node]. *)
  counters : Uldma_obs.Counters.t;
      (** per-domain observability: [explorer.d<i>.steals],
          [.publications], [.lease_splits], [.memo_merges] for each
          worker domain [i]. Filled after all domains join. *)
}

(** {2 Cross-exploration shared memo (campaign mode)}

    A ['v shared_memo] is one bounded memo table that outlives many
    [explore] calls in one process, so exploration N warm-starts from
    the in-memory union of what explorations 1..N-1 memoized — this is
    what makes a campaign of thousands of near-identical candidate
    programs cost far less than that many cold runs (see {!Campaign}).

    Sharing across candidates is sound only with two key decorations,
    both applied automatically when [?shared] is passed to [explore]:

    - a fixed 8-byte {e generation} prefix. The campaign driver bumps
      it ({!bump_generation}) whenever the root baseline or net
      backend changes, so keys minted against one baseline can never
      alias keys minted against another — root-relative encodings are
      only comparable under one baseline. Bumping makes the old
      generation's entries unreachable (they age out of the bounded
      table) without a stop-the-world clear.
    - a per-candidate [?key_tag]. Program text is deliberately absent
      from [Kernel.state_encoding] (programs live in [Cpu.ctx], not
      RAM), so two candidates that differ only in one process's
      program can reach identical engine-visible states with different
      futures. The tag must determine that process's residual
      behaviour — for straight-line candidate programs, a fingerprint
      of the instruction suffix from the current pc (equal once two
      candidates' remaining code is equal, and constant after exit,
      which is where most cross-candidate sharing comes from). The tag
      must be fixed-width so key concatenation stays unambiguous. *)

type 'v shared_memo

val create_shared : ?cap:int -> ?locked:bool -> unit -> 'v shared_memo
(** A fresh shared table (64 shards, [cap] defaulting to the explore
    default, [locked] defaulting to [true] — pass [false] only when a
    single domain will ever touch it). *)

val bump_generation : 'v shared_memo -> unit
(** Start a new key generation: every key minted afterwards is
    disjoint from every key minted before. Call between campaign cells
    (baseline or backend change); never concurrently with [explore]. *)

val shared_generation : 'v shared_memo -> int
val shared_length : 'v shared_memo -> int
(** Resident summaries (all generations); racy under concurrency. *)

val shared_evictions : 'v shared_memo -> int
(** Cumulative evictions over the table's whole life. *)

val explore :
  root:Uldma_os.Kernel.t ->
  pids:int list ->
  ?baseline:Uldma_os.Kernel.t ->
  ?max_instructions_per_leg:int ->
  ?max_paths:int ->
  ?dedup:bool ->
  ?paranoid_memo:bool ->
  ?jobs:int ->
  ?memo_cap:int ->
  ?memo_file:string ->
  ?memo_key:string ->
  ?memo_net:string ->
  ?shared:'v shared_memo ->
  ?key_tag:(Uldma_os.Kernel.t -> string) ->
  ?cutoff:int ->
  ?merge_batch:int ->
  check:(Uldma_os.Kernel.t -> 'v option) ->
  unit ->
  'v result
(** [check] runs at each terminal state (all of [pids] exited or
    stuck, and nothing in flight). Defaults: 2000 instructions per
    leg, 1_000_000 paths, [dedup] on, [paranoid_memo] off, [jobs] 1,
    [memo_cap] 262144 summaries, no [memo_file], [memo_key]
    ["default"], [memo_net] ["null"]. [paranoid_memo] keys the memo on
    full encoding strings instead of streamed 126-bit fingerprints:
    slower, but a key equality is then exactly a state equality — the
    verification mode [tools/diff_explore] runs differentially against
    the fingerprint default. A paranoid run neither reads nor writes
    [memo_file] (the persistent cache stores fingerprint keys).
    The root kernel is not mutated. With [jobs > 1], [check]
    runs on worker domains and must be pure. [memo_key] distinguishes
    scenarios sharing one [memo_file]; [memo_net] must name the
    kernel's net backend (e.g. [Uldma_net.Backend.cache_key]) whenever
    it is not the Null backend — the persistent cache keys sections by
    (scenario, net) because the root fingerprint alone cannot tell
    backends apart (nothing is in flight at the root). Reusing a key
    across different scenarios is safe (the root fingerprint guard
    rejects the stale section) but forfeits the warm start.

    [baseline] overrides the encoding baseline (default: [root]). A
    campaign passes the common base kernel all candidate roots were
    snapshotted from, so every candidate's keys live in one comparable
    space; the baseline must not be mutated (or snapshotted from
    another domain) while any exploration that uses it runs.

    [shared] routes all memo traffic through a cross-exploration table
    instead of a private one (see above); [memo_file] is then ignored
    — decorated keys are meaningless outside their own table. Pass
    [key_tag] (fixed-width, residual-behaviour-determining) whenever
    candidates sharing the table differ in program text.

    [cutoff] sets the {e initial} adaptive publication threshold
    (default 8; clamped to [1, 2^20]). Raising it biases against
    intra-tree splitting — a campaign with plentiful candidates sets
    it high so small trees stay sequential and parallelism comes from
    the outer candidate queue. [merge_batch] sets the forced
    domain-local generation merge threshold (default 256; the boundary
    merge minimum scales down with it). Both are pure performance
    knobs: results are identical at any setting. *)

val wait_leg : int
(** The pseudo-pid ([-2]) recorded in a schedule when the leg idled the
    machine to the next in-flight transfer completion instead of
    running a process. Never appears under the Null backend. *)

val advance_one_leg : Uldma_os.Kernel.t -> int -> max_instructions:int -> [ `Progress | `Exited | `Stuck ]
(** Run pid until its next NI access completes (or it exits). Exposed
    for tests. *)
